package orpheusdb

import (
	"fmt"

	"orpheusdb/internal/engine"
	"orpheusdb/internal/wal"
)

// Replication. The WAL is already a totally ordered, CRC-framed mutation
// stream, so read scaling falls out of shipping it: a follower bootstraps
// from a snapshot at LSN W, replays the log strictly after W, and then tails
// live appends, applying each record through the same replay path crash
// recovery uses (applyRecord, including its vid/membership divergence
// verification). The follower's Store is read-only — every mutator calls
// writable() first — until an explicit promotion flips it writable, which is
// also the failover story. This file is the store-side surface; the state
// machine that drives it over HTTP lives in internal/repl.

// SetReadOnly flips the store's write gate. A read-only store rejects every
// mutation (commits, merges, drops, SQL writes, optimizer migrations) with an
// error containing "read-only", which the HTTP layer maps to 403; reads and
// checkouts are unaffected. Replication applies records through
// ApplyReplicated, which bypasses the gate by design.
func (s *Store) SetReadOnly(ro bool) { s.readOnly.Store(ro) }

// IsReadOnly reports whether the store rejects local writes.
func (s *Store) IsReadOnly() bool { return s.readOnly.Load() }

// writable is the gate every mutator checks before taking locks.
func (s *Store) writable() error {
	if s.readOnly.Load() {
		return fmt.Errorf("orpheusdb: store is read-only (follower replica; send writes to the primary)")
	}
	return nil
}

// NewStoreFromSnapshot builds an in-memory store from an engine snapshot —
// the follower bootstrap path: the primary streams its checkpoint snapshot
// (engine.DBSnapshot gob), the follower materializes it here and then tails
// the WAL from snap.WalLSN.
func NewStoreFromSnapshot(snap *engine.DBSnapshot) (*Store, error) {
	db, err := engine.FromSnapshot(snap)
	if err != nil {
		return nil, err
	}
	return newStore(db, ""), nil
}

// ReplicationSnapshot captures a snapshot for follower bootstrap. Like Save,
// the exclusive lock is held only for the in-memory copy; the caller encodes
// and ships the result without blocking writers. The snapshot's WalLSN is the
// watermark the follower resumes the stream from.
func (s *Store) ReplicationSnapshot() *engine.DBSnapshot {
	s.ioMu.Lock()
	snap := s.db.Snapshot()
	s.ioMu.Unlock()
	return snap
}

// OpenWALStream returns a tailing iterator over the store's WAL records with
// LSN > from (see wal.Log.OpenAt). The primary's stream endpoint drives it;
// a store without a WAL cannot ship one. A from below the log's retained
// floor is rejected with a gap error up front — the iterator's own dense
// check only fires once a record arrives, which on an idle primary could be
// never, leaving a truncated-away follower hanging instead of
// re-bootstrapping.
func (s *Store) OpenWALStream(from uint64) (*wal.Iterator, error) {
	if s.wal == nil {
		return nil, fmt.Errorf("orpheusdb: WAL not enabled; replication requires a WAL on the primary")
	}
	it, err := s.wal.OpenAt(from)
	if err != nil {
		return nil, err
	}
	if floor, ferr := s.wal.FirstRetained(); ferr == nil && floor > from+1 {
		it.Close()
		return nil, fmt.Errorf("orpheusdb: wal stream: gap: records from LSN %d truncated by a checkpoint (retained floor %d)", from+1, floor)
	}
	return it, nil
}

// WALNotify returns a channel closed on the next WAL append — the long-poll
// primitive for the stream endpoint (see wal.Log.AppendWait). Nil when no WAL
// is attached (a nil channel never fires; pair it with a deadline).
func (s *Store) WALNotify() <-chan struct{} {
	if s.wal == nil {
		return nil
	}
	return s.wal.AppendWait()
}

// ApplyReplicated applies one record shipped from the primary. Records must
// arrive in dense LSN order; a duplicate (LSN at or below the applied
// watermark, normal after a reconnect re-sends the boundary) is skipped, a
// gap is an error telling the follower to re-bootstrap. The record goes
// through the same replay path crash recovery uses — including commit
// version-id and membership-bitmap divergence verification — under the same
// locks the primary's mutators hold, so concurrent follower reads never
// observe a half-applied record.
func (s *Store) ApplyReplicated(lsn uint64, rec *wal.Record) error {
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	applied := s.db.WalLSN()
	if lsn <= applied {
		return nil
	}
	if lsn != applied+1 {
		return fmt.Errorf("orpheusdb: replication gap: want LSN %d, got %d", applied+1, lsn)
	}
	if rec.Dataset != "" && rec.Type != wal.TypeInit {
		d, err := s.dataset(rec.Dataset)
		if err != nil {
			return fmt.Errorf("orpheusdb: replication apply LSN %d: %w", lsn, err)
		}
		d.mu.Lock()
		defer d.mu.Unlock()
	}
	if err := s.applyRecord(rec); err != nil {
		return fmt.Errorf("orpheusdb: replication apply LSN %d (%s %s): %w", lsn, rec.Type, rec.Dataset, err)
	}
	if rec.Dataset != "" {
		// Same rule as every primary-side mutator: invalidate inside the
		// critical section so no reader revalidates a stale materialization.
		s.cache.InvalidateDataset(rec.Dataset)
	}
	s.db.SetWalLSN(lsn)
	return nil
}

// ReplicationInfo describes a store's replication role and progress for
// /healthz and orpheus top.
type ReplicationInfo struct {
	// Role is "follower" or "promoted".
	Role string `json:"role"`
	// Primary is the upstream base URL the follower replicates from.
	Primary string `json:"primary,omitempty"`
	// State is the follower state machine's phase: "bootstrapping",
	// "streaming", "disconnected", or "promoted".
	State string `json:"state"`
	// AppliedLSN is the last record applied locally; PrimaryLSN is the
	// primary's latest known LSN, so LagRecords = PrimaryLSN - AppliedLSN.
	AppliedLSN uint64 `json:"appliedLSN"`
	PrimaryLSN uint64 `json:"primaryLSN"`
	LagRecords uint64 `json:"lagRecords"`
	// LagSeconds is the time since the follower was last caught up with the
	// primary's stream (0 while caught up).
	LagSeconds float64 `json:"lagSeconds"`
	// Reconnects counts stream re-establishments; Snapshots counts
	// bootstrap downloads (>1 means the follower fell off the retained log
	// and re-bootstrapped).
	Reconnects uint64 `json:"reconnects"`
	Snapshots  uint64 `json:"snapshots"`
	// LastError is the most recent stream/apply failure, cleared on
	// recovery.
	LastError string `json:"lastError,omitempty"`
}

// Replication is the follower state machine attached to a read-only store
// (implemented by internal/repl.Follower). The server surfaces Info on
// /healthz and drives Promote from POST /api/v1/promote.
type Replication interface {
	// Info reports role, state, and lag.
	Info() ReplicationInfo
	// Promote drains the stream and flips the store writable. Idempotent.
	Promote() error
}

// SetReplication attaches (or, with nil, detaches) the store's replication
// driver.
func (s *Store) SetReplication(r Replication) {
	s.replMu.Lock()
	s.repl = r
	s.replMu.Unlock()
}

// Replication returns the attached replication driver, nil on a primary.
func (s *Store) Replication() Replication {
	s.replMu.Lock()
	defer s.replMu.Unlock()
	return s.repl
}
