package orpheusdb

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// The cache invalidation tests prove the tentpole invariant of the checkout
// cache: a reader can never observe a stale materialization, because every
// mutator invalidates the dataset's entries inside its critical section
// (while holding the dataset write lock), and readers populate entries only
// while holding the read lock. Run under -race.

// commitMarkerVersion commits a version whose contents are fully determined
// by its version number: row i of version k carries val "k" in every row,
// and the version has k rows. Any checkout observing a mix is a torn or
// stale read.
func commitMarkerVersion(t testing.TB, ds *Dataset, k int) VersionID {
	t.Helper()
	rows := make([]Row, k)
	for i := range rows {
		rows[i] = Row{Int(int64(i)), String(fmt.Sprintf("k%d", k))}
	}
	var parents []VersionID
	if prev := ds.LatestVersion(); prev != 0 {
		parents = []VersionID{prev}
	}
	v, err := ds.Commit(rows, parents, fmt.Sprintf("marker %d", k))
	if err != nil {
		t.Fatalf("commit marker %d: %v", k, err)
	}
	return v
}

// verifyMarker asserts rows are exactly version k's deterministic contents.
func verifyMarker(rows []Row, k int) error {
	if len(rows) != k {
		return fmt.Errorf("version %d: got %d rows, want %d", k, len(rows), k)
	}
	want := fmt.Sprintf("k%d", k)
	for _, r := range rows {
		if r[1].S != want {
			return fmt.Errorf("version %d: row carries %q, want %q", k, r[1].S, want)
		}
	}
	return nil
}

// TestCachedCheckoutNeverStale hammers cached checkouts of a dataset while a
// writer streams commits into it, asserting every observed record set is
// exactly the committed content of the requested version — across the Go
// API, multi-version scans, and SQL — and that reads of the just-published
// latest version are never served from a pre-commit entry.
func TestCachedCheckoutNeverStale(t *testing.T) {
	store := NewStore()
	cols := []Column{
		{Name: "id", Type: KindInt},
		{Name: "val", Type: KindString},
	}
	ds, err := store.Init("hammer", cols, InitOptions{PrimaryKey: []string{"id"}})
	if err != nil {
		t.Fatal(err)
	}

	const commits = 60
	var published atomic.Int64 // highest marker k whose commit returned
	published.Store(int64(1))
	commitMarkerVersion(t, ds, 1)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 64)
	report := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}

	// Writer: stream commits; version id == marker k by construction.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for k := 2; k <= commits; k++ {
			commitMarkerVersion(t, ds, k)
			published.Store(int64(k))
		}
	}()

	// Hot readers: re-checkout the same published version repeatedly (cache
	// hits) and verify contents. Each observed version must be internally
	// consistent with its marker.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := int(published.Load())
				rows, err := ds.Checkout(VersionID(k))
				if err != nil {
					report(fmt.Errorf("checkout %d: %w", k, err))
					return
				}
				if err := verifyMarker(rows, k); err != nil {
					report(fmt.Errorf("stale checkout: %w", err))
					return
				}
			}
		}()
	}

	// Scan readers: multi-version EXCEPT between latest and its parent must
	// reflect exactly the rows added by the newer marker.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			k := int(published.Load())
			if k < 2 {
				continue
			}
			rows, err := ds.MultiVersionCheckout(
				[]VersionID{VersionID(k), VersionID(k - 1)}, []SetOp{SetExcept})
			if err != nil {
				report(fmt.Errorf("scan %d EXCEPT %d: %w", k, k-1, err))
				return
			}
			// Version k rewrites every row's val, so k EXCEPT k-1 is all k
			// rows of version k.
			if err := verifyMarker(rows, k); err != nil {
				report(fmt.Errorf("stale scan: %w", err))
				return
			}
		}
	}()

	// SQL readers: the translator's cached materialization path.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			k := int(published.Load())
			res, err := store.Run(fmt.Sprintf(
				"SELECT count(*) AS c, min(val) AS lo, max(val) AS hi FROM VERSION %d OF CVD hammer", k))
			if err != nil {
				report(fmt.Errorf("sql checkout %d: %w", k, err))
				return
			}
			row := res.Rows[0]
			want := fmt.Sprintf("k%d", k)
			if row[0].I != int64(k) || row[1].S != want || row[2].S != want {
				report(fmt.Errorf("stale sql read of version %d: count=%d lo=%q hi=%q",
					k, row[0].I, row[1].S, row[2].S))
				return
			}
		}
	}()

	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	// Every version must still verify after the storm (cache warm or cold).
	for k := 1; k <= commits; k++ {
		rows, err := ds.Checkout(VersionID(k))
		if err != nil {
			t.Fatalf("final checkout %d: %v", k, err)
		}
		if err := verifyMarker(rows, k); err != nil {
			t.Fatalf("final verify: %v", err)
		}
	}
	if st := store.CacheStats(); st.Hits == 0 {
		t.Fatalf("test never exercised the cache: %+v", st)
	}
}

// TestCacheInvalidationAcrossDatasets checks commits on one dataset leave the
// other dataset's cached materializations resident (no false invalidation)
// while its own are dropped.
func TestCacheInvalidationAcrossDatasets(t *testing.T) {
	store := NewStore()
	cols := []Column{{Name: "id", Type: KindInt}, {Name: "val", Type: KindString}}
	a, err := store.Init("dsa", cols, InitOptions{PrimaryKey: []string{"id"}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := store.Init("dsb", cols, InitOptions{PrimaryKey: []string{"id"}})
	if err != nil {
		t.Fatal(err)
	}
	commitMarkerVersion(t, a, 3)
	commitMarkerVersion(t, b, 4)
	if _, err := a.Checkout(1); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Checkout(1); err != nil {
		t.Fatal(err)
	}
	if n := store.DatasetCacheStats("dsb").Entries; n != 1 {
		t.Fatalf("dsb entries = %d, want 1", n)
	}
	genB := b.CacheGeneration()
	commitMarkerVersion(t, a, 5)
	if n := store.DatasetCacheStats("dsa").Entries; n != 0 {
		t.Fatalf("dsa entries after commit = %d, want 0", n)
	}
	if n := store.DatasetCacheStats("dsb").Entries; n != 1 {
		t.Fatalf("dsb entries after commit on dsa = %d, want 1", n)
	}
	if b.CacheGeneration() != genB {
		t.Fatal("commit on dsa advanced dsb's generation")
	}
}

// TestDropInvalidatesCache checks a dropped-and-recreated dataset of the same
// name cannot serve the old incarnation's entries.
func TestDropInvalidatesCache(t *testing.T) {
	store := NewStore()
	cols := []Column{{Name: "id", Type: KindInt}, {Name: "val", Type: KindString}}
	ds, err := store.Init("phoenix", cols, InitOptions{PrimaryKey: []string{"id"}})
	if err != nil {
		t.Fatal(err)
	}
	commitMarkerVersion(t, ds, 3)
	if _, err := ds.Checkout(1); err != nil {
		t.Fatal(err)
	}
	if err := store.Drop("phoenix"); err != nil {
		t.Fatal(err)
	}
	ds2, err := store.Init("phoenix", cols, InitOptions{PrimaryKey: []string{"id"}})
	if err != nil {
		t.Fatal(err)
	}
	commitMarkerVersion(t, ds2, 5)
	rows, err := ds2.Checkout(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := verifyMarker(rows, 5); err != nil {
		t.Fatalf("recreated dataset served old entry: %v", err)
	}
}

// TestRawSQLWritesFlushCache checks the conservative rule for raw DML: any
// write statement flushes the whole cache inside its exclusive window, so a
// statement rewriting a dataset's backing tables cannot leave a stale entry
// resident.
func TestRawSQLWritesFlushCache(t *testing.T) {
	store := NewStore()
	cols := []Column{{Name: "id", Type: KindInt}, {Name: "val", Type: KindString}}
	ds, err := store.Init("raw", cols, InitOptions{PrimaryKey: []string{"id"}})
	if err != nil {
		t.Fatal(err)
	}
	commitMarkerVersion(t, ds, 2)
	if _, err := ds.Checkout(1); err != nil {
		t.Fatal(err)
	}
	if st := store.CacheStats(); st.Entries == 0 {
		t.Fatal("no entry cached before DML")
	}
	if _, err := store.Run("CREATE TABLE scratch (x integer)"); err != nil {
		t.Fatal(err)
	}
	if st := store.CacheStats(); st.Entries != 0 {
		t.Fatalf("DML left %d cache entries resident", st.Entries)
	}
}
