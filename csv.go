package orpheusdb

import (
	"encoding/csv"
	"fmt"
	"os"
	"strconv"
	"strings"

	"orpheusdb/internal/core"
	"orpheusdb/internal/engine"
)

// CSV checkout/commit (the -f flag of Section 2.2): versions materialize as
// CSV files whose header carries the schema as name:type pairs, so external
// tools (Python, R, spreadsheets) can edit them before committing back.

// CheckoutToCSV writes versions to a CSV file and registers its provenance.
func (d *Dataset) CheckoutToCSV(path string, vids ...VersionID) error {
	// One lock acquisition for schema and rows, so a concurrent
	// schema-evolving commit cannot desynchronize header and data.
	cols, rows, err := d.CheckoutWithColumns(vids...)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	header := make([]string, len(cols))
	for i, c := range cols {
		header[i] = c.Name + ":" + c.Type.String()
	}
	if err := w.Write(header); err != nil {
		return err
	}
	rec := make([]string, len(header))
	for _, row := range rows {
		for i, v := range row {
			if v.IsNull() {
				rec[i] = ""
			} else {
				rec[i] = v.String()
			}
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return err
	}
	return d.store.recordProvenance(core.Provenance{
		Name:      path,
		CVD:       d.Name(),
		Parents:   vids,
		User:      d.store.WhoAmI(),
		CreatedAt: d.cvd.Clock(),
		IsFile:    true,
	})
}

// recordProvenance registers a checkout artifact in the shared staging
// tables. The save lock is held exclusively because SQL statements may scan
// these tables under the shared lock.
func (s *Store) recordProvenance(p core.Provenance) error {
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	s.stagingMu.Lock()
	defer s.stagingMu.Unlock()
	if err := core.RecordProvenance(s.db, p); err != nil {
		return err
	}
	s.ScheduleSave()
	return nil
}

// lookupProvenance reads a staging registration under the staging lock.
func (s *Store) lookupProvenance(name string) (*core.Provenance, error) {
	s.ioMu.RLock() // the staging table is SQL-nameable; exclude DML writes
	defer s.ioMu.RUnlock()
	s.stagingMu.Lock()
	defer s.stagingMu.Unlock()
	return core.LookupProvenance(s.db, name)
}

// releaseProvenance removes a staging registration.
func (s *Store) releaseProvenance(name string) error {
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	s.stagingMu.Lock()
	defer s.stagingMu.Unlock()
	if err := core.ReleaseProvenance(s.db, name); err != nil {
		return err
	}
	s.ScheduleSave()
	return nil
}

// CommitCSV commits a CSV file (typically produced by CheckoutToCSV and then
// edited) back as a new version. If the file is registered in the staging
// area its recorded parents are used; otherwise parents may be passed
// explicitly.
func (d *Dataset) CommitCSV(path, msg string, parents ...VersionID) (VersionID, error) {
	if p, err := d.store.lookupProvenance(path); err == nil {
		if p.CVD != d.Name() {
			return 0, fmt.Errorf("orpheusdb: %s was checked out from CVD %q, not %q", path, p.CVD, d.Name())
		}
		if len(parents) == 0 {
			parents = p.Parents
		}
	}
	cols, rows, err := ReadCSV(path)
	if err != nil {
		return 0, err
	}
	vid, err := d.CommitWithSchema(cols, rows, parents, msg)
	if err != nil {
		return 0, err
	}
	return vid, d.store.releaseProvenance(path)
}

// ReadCSV loads a CSV file with a name:type header into columns and rows.
// Types default to string when the header omits them.
func ReadCSV(path string) ([]Column, []Row, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	r := csv.NewReader(f)
	records, err := r.ReadAll()
	if err != nil {
		return nil, nil, err
	}
	if len(records) == 0 {
		return nil, nil, fmt.Errorf("orpheusdb: %s: empty csv", path)
	}
	cols := make([]Column, len(records[0]))
	for i, h := range records[0] {
		name, typeName, found := strings.Cut(h, ":")
		k := engine.KindString
		if found {
			k, err = engine.KindFromName(typeName)
			if err != nil {
				return nil, nil, fmt.Errorf("orpheusdb: %s: column %q: %w", path, h, err)
			}
		}
		cols[i] = Column{Name: strings.TrimSpace(name), Type: k}
	}
	rows := make([]Row, 0, len(records)-1)
	for lineNo, rec := range records[1:] {
		if len(rec) != len(cols) {
			return nil, nil, fmt.Errorf("orpheusdb: %s: line %d has %d fields, want %d", path, lineNo+2, len(rec), len(cols))
		}
		row := make(Row, len(cols))
		for i, field := range rec {
			v, err := parseField(field, cols[i].Type)
			if err != nil {
				return nil, nil, fmt.Errorf("orpheusdb: %s: line %d column %s: %w", path, lineNo+2, cols[i].Name, err)
			}
			row[i] = v
		}
		rows = append(rows, row)
	}
	return cols, rows, nil
}

// parseField converts one CSV field into a typed value; empty means NULL for
// non-string kinds.
func parseField(field string, k engine.Kind) (Value, error) {
	if field == "" && k != engine.KindString {
		return Null(), nil
	}
	switch k {
	case engine.KindInt:
		n, err := strconv.ParseInt(strings.TrimSpace(field), 10, 64)
		if err != nil {
			return Value{}, err
		}
		return Int(n), nil
	case engine.KindFloat:
		f, err := strconv.ParseFloat(strings.TrimSpace(field), 64)
		if err != nil {
			return Value{}, err
		}
		return Float(f), nil
	case engine.KindBool:
		b, err := strconv.ParseBool(strings.TrimSpace(field))
		if err != nil {
			return Value{}, err
		}
		return Bool(b), nil
	case engine.KindIntArray:
		body := strings.Trim(strings.TrimSpace(field), "{}")
		if body == "" {
			return Array(nil), nil
		}
		parts := strings.Split(body, ",")
		arr := make([]int64, len(parts))
		for i, p := range parts {
			n, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
			if err != nil {
				return Value{}, err
			}
			arr[i] = n
		}
		return Array(arr), nil
	}
	return String(field), nil
}

// InitFromCSV creates a new CVD from a CSV file and commits its contents as
// version 1 (the init command).
func (s *Store) InitFromCSV(name, path string, opts InitOptions) (*Dataset, VersionID, error) {
	cols, rows, err := ReadCSV(path)
	if err != nil {
		return nil, 0, err
	}
	d, err := s.Init(name, cols, opts)
	if err != nil {
		return nil, 0, err
	}
	v, err := d.Commit(rows, nil, "init from "+path)
	if err != nil {
		return nil, 0, err
	}
	return d, v, nil
}
