package bitmap

import (
	"bytes"
	"testing"
)

// Fuzz harness for ORBM deserialization: arbitrary (and corrupted) byte
// strings must never panic or hang the decoder — they either decode into a
// bitmap whose re-serialization round-trips, or fail with an error. CI runs
// this with a short -fuzztime as a smoke test; the seed corpus covers every
// container layout plus hand-corrupted frames.

func seedCorpus(f *testing.F) {
	f.Helper()
	seeds := []*Bitmap{
		New(),
		FromSlice([]int64{1, 2, 3}),
		FromSlice([]int64{0, 65535, 65536, 1 << 20}),
	}
	// Dense chunk → bitset container.
	dense := New()
	for v := int64(0); v < 5000; v++ {
		dense.Add(v)
	}
	seeds = append(seeds, dense)
	// Contiguous chunk → run container after Optimize.
	run := New()
	for v := int64(10); v < 2000; v++ {
		run.Add(v)
	}
	run.Optimize()
	seeds = append(seeds, run)

	for _, b := range seeds {
		data, err := b.MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		// Hand-corrupted variants: truncations and byte flips.
		if len(data) > 6 {
			f.Add(data[:len(data)/2])
			flipped := append([]byte(nil), data...)
			flipped[5] ^= 0xff // container count
			f.Add(flipped)
			flipped2 := append([]byte(nil), data...)
			flipped2[len(flipped2)-1] ^= 0x55
			f.Add(flipped2)
		}
	}
	f.Add([]byte("ORBM"))
	f.Add([]byte{})
}

func FuzzORBMUnmarshal(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := FromBytes(data)
		if err != nil {
			return // rejected: fine, as long as it didn't panic
		}
		// Accepted payloads must describe an internally consistent bitmap:
		// iteration, cardinality, and re-serialization all agree.
		var n int64
		var prev int64 = -1
		b.Iterate(func(v int64) bool {
			if v <= prev {
				t.Fatalf("iteration not strictly ascending: %d after %d", v, prev)
			}
			prev = v
			n++
			return true
		})
		if n != b.Cardinality() {
			t.Fatalf("iterated %d values, Cardinality says %d", n, b.Cardinality())
		}
		out, err := b.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal of accepted payload failed: %v", err)
		}
		back, err := FromBytes(out)
		if err != nil {
			t.Fatalf("re-decode of re-marshal failed: %v", err)
		}
		if !back.Equal(b) {
			t.Fatal("re-marshal round-trip diverged")
		}
		// Canonical payloads (what MarshalBinary itself produces) are stable.
		out2, _ := back.MarshalBinary()
		if !bytes.Equal(out, out2) {
			t.Fatal("canonical serialization not stable")
		}
	})
}
