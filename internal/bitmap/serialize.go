package bitmap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Binary serialization. The format is little-endian and self-describing:
//
//	magic   [4]byte  "ORBM"
//	version uint8    (1)
//	nChunks uint32
//	per chunk:
//	  key  uint64    (value >> 16)
//	  typ  uint8     (0 array, 1 bitset, 2 run)
//	  n    uint32    (array: cardinality; bitset: cardinality; run: #runs)
//	  payload:
//	    array:  n × uint16
//	    bitset: 1024 × uint64
//	    run:    n × (uint16 start, uint16 last)
//
// The same bytes back GobEncode/GobDecode, so engine rows holding bitmap
// values persist through the database's gob snapshots unchanged.

var magic = [4]byte{'O', 'R', 'B', 'M'}

// ErrCorrupt marks structurally invalid ORBM input: truncated payloads,
// length fields that exceed the remaining bytes, out-of-order or overlapping
// content, bad magic. Every UnmarshalBinary/FromBytes failure wraps it, so
// callers handling untrusted bytes can match with errors.Is instead of
// string-mangling. The length checks run before any count-sized allocation —
// a hostile uint32 count cannot make the decoder allocate gigabytes.
var ErrCorrupt = errors.New("corrupt ORBM data")

const formatVersion = 1

// SerializedSizeBytes returns the exact size MarshalBinary would produce.
func (b *Bitmap) SerializedSizeBytes() int64 {
	if b == nil {
		return int64(len(magic)) + 1 + 4
	}
	n := int64(len(magic)) + 1 + 4
	for _, c := range b.cts {
		n += 8 + 1 + 4 + int64(c.sizeInBytes())
	}
	return n
}

// MarshalBinary serializes the bitmap.
func (b *Bitmap) MarshalBinary() ([]byte, error) {
	out := make([]byte, 0, b.SerializedSizeBytes())
	out = append(out, magic[:]...)
	out = append(out, formatVersion)
	var n int
	if b != nil {
		n = len(b.cts)
	}
	out = binary.LittleEndian.AppendUint32(out, uint32(n))
	if b == nil {
		return out, nil
	}
	for i, c := range b.cts {
		out = binary.LittleEndian.AppendUint64(out, b.keys[i])
		out = append(out, c.typ)
		switch c.typ {
		case typeArray:
			out = binary.LittleEndian.AppendUint32(out, uint32(len(c.arr)))
			for _, v := range c.arr {
				out = binary.LittleEndian.AppendUint16(out, v)
			}
		case typeBitmap:
			out = binary.LittleEndian.AppendUint32(out, uint32(c.card))
			for _, w := range c.bits {
				out = binary.LittleEndian.AppendUint64(out, w)
			}
		case typeRun:
			out = binary.LittleEndian.AppendUint32(out, uint32(len(c.runs)))
			for _, r := range c.runs {
				out = binary.LittleEndian.AppendUint16(out, r.Start)
				out = binary.LittleEndian.AppendUint16(out, r.Last)
			}
		}
	}
	return out, nil
}

// UnmarshalBinary restores a bitmap serialized by MarshalBinary.
func (b *Bitmap) UnmarshalBinary(data []byte) error {
	if len(data) < len(magic)+1+4 {
		return fmt.Errorf("bitmap: truncated header (%d bytes): %w", len(data), ErrCorrupt)
	}
	if [4]byte(data[:4]) != magic {
		return fmt.Errorf("bitmap: bad magic %q: %w", data[:4], ErrCorrupt)
	}
	if v := data[4]; v != formatVersion {
		return fmt.Errorf("bitmap: unsupported format version %d: %w", v, ErrCorrupt)
	}
	n := binary.LittleEndian.Uint32(data[5:])
	pos := 9
	// The container count is untrusted: clamp it against what the payload
	// could possibly hold (13 bytes minimum per chunk) before it sizes any
	// allocation or drives the loop. A count like 0xFFFFFFFF over a
	// 20-byte input fails here, immediately.
	if int64(n) > int64(len(data)-pos)/13 {
		return fmt.Errorf("bitmap: chunk count %d exceeds input (%d bytes): %w", n, len(data), ErrCorrupt)
	}
	b.keys = make([]uint64, 0, int(n))
	b.cts = make([]*container, 0, int(n))
	need := func(k int) error {
		if pos+k > len(data) {
			return fmt.Errorf("bitmap: truncated at byte %d (need %d of %d): %w", pos, k, len(data), ErrCorrupt)
		}
		return nil
	}
	var prevKey uint64
	for i := uint32(0); i < n; i++ {
		if err := need(8 + 1 + 4); err != nil {
			return err
		}
		key := binary.LittleEndian.Uint64(data[pos:])
		typ := data[pos+8]
		cnt := int(binary.LittleEndian.Uint32(data[pos+9:]))
		pos += 13
		if i > 0 && key <= prevKey {
			return fmt.Errorf("bitmap: chunk keys out of order at %d: %w", key, ErrCorrupt)
		}
		// Values are non-negative int64s (Add rejects negatives), so a key
		// whose values would overflow into the sign bit cannot come from a
		// legitimate serialization — only from corruption.
		if key > uint64(math.MaxInt64)>>16 {
			return fmt.Errorf("bitmap: chunk key %d exceeds the value space: %w", key, ErrCorrupt)
		}
		prevKey = key
		c := &container{typ: typ}
		switch typ {
		case typeArray:
			if cnt > (len(data)-pos)/2 {
				return fmt.Errorf("bitmap: array count %d exceeds remaining %d bytes: %w", cnt, len(data)-pos, ErrCorrupt)
			}
			c.arr = make([]uint16, cnt)
			for j := 0; j < cnt; j++ {
				c.arr[j] = binary.LittleEndian.Uint16(data[pos+2*j:])
				if j > 0 && c.arr[j] <= c.arr[j-1] {
					return fmt.Errorf("bitmap: array container values out of order at %d: %w", c.arr[j], ErrCorrupt)
				}
			}
			pos += 2 * cnt
			c.card = cnt
		case typeBitmap:
			if err := need(8 * bitmapWords); err != nil {
				return err
			}
			c.bits = make([]uint64, bitmapWords)
			for j := 0; j < bitmapWords; j++ {
				c.bits[j] = binary.LittleEndian.Uint64(data[pos+8*j:])
			}
			pos += 8 * bitmapWords
			c.card = cnt
			if got := popcount(c.bits); got != cnt {
				return fmt.Errorf("bitmap: bitset cardinality mismatch: header %d, bits %d: %w", cnt, got, ErrCorrupt)
			}
		case typeRun:
			if cnt > (len(data)-pos)/4 {
				return fmt.Errorf("bitmap: run count %d exceeds remaining %d bytes: %w", cnt, len(data)-pos, ErrCorrupt)
			}
			c.runs = make([]interval, cnt)
			card := 0
			for j := 0; j < cnt; j++ {
				r := interval{
					Start: binary.LittleEndian.Uint16(data[pos+4*j:]),
					Last:  binary.LittleEndian.Uint16(data[pos+4*j+2:]),
				}
				if r.Last < r.Start {
					return fmt.Errorf("bitmap: inverted run [%d,%d]: %w", r.Start, r.Last, ErrCorrupt)
				}
				if j > 0 && int(r.Start) <= int(c.runs[j-1].Last) {
					return fmt.Errorf("bitmap: overlapping runs at [%d,%d]: %w", r.Start, r.Last, ErrCorrupt)
				}
				c.runs[j] = r
				card += int(r.Last-r.Start) + 1
			}
			pos += 4 * cnt
			c.card = card
		default:
			return fmt.Errorf("bitmap: unknown container type %d: %w", typ, ErrCorrupt)
		}
		b.keys = append(b.keys, key)
		b.cts = append(b.cts, c)
	}
	return nil
}

// FromBytes deserializes a bitmap.
func FromBytes(data []byte) (*Bitmap, error) {
	b := New()
	if err := b.UnmarshalBinary(data); err != nil {
		return nil, err
	}
	return b, nil
}

// GobEncode implements gob.GobEncoder so bitmap values survive the engine's
// snapshot persistence.
func (b *Bitmap) GobEncode() ([]byte, error) { return b.MarshalBinary() }

// GobDecode implements gob.GobDecoder.
func (b *Bitmap) GobDecode(data []byte) error { return b.UnmarshalBinary(data) }
