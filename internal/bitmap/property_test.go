package bitmap

import (
	"math/rand"
	"sort"
	"testing"
)

// Property-based randomized suite: every set-algebra operation is driven
// against a naive map[int64]bool reference model, with value distributions
// tuned to cross all three container layouts (sparse arrays, dense bitsets
// past the 4096-cardinality threshold, and runs) and multiple chunks.

// model is the reference implementation.
type model map[int64]bool

func (m model) slice() []int64 {
	out := make([]int64, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func modelOf(b *Bitmap) model {
	m := make(model)
	b.Iterate(func(v int64) bool { m[v] = true; return true })
	return m
}

func (m model) equal(o model) bool {
	if len(m) != len(o) {
		return false
	}
	for v := range m {
		if !o[v] {
			return false
		}
	}
	return true
}

// genValue draws values from a regime-dependent distribution so containers
// land in array, bitset, and run layouts across trials:
//   - sparse: scattered values within one chunk (array containers)
//   - dense: thousands of values in one chunk (bitset containers)
//   - runs: contiguous ranges (run containers after Optimize)
//   - multi: values spread across several 65536-value chunks
func genValue(rng *rand.Rand, regime int) int64 {
	switch regime {
	case 0:
		return int64(rng.Intn(60000))
	case 1:
		return int64(rng.Intn(8192)) // dense: Intn range << trial count
	case 2:
		base := int64(rng.Intn(8)) * 100
		return base + int64(rng.Intn(40)) // clustered: runs after Optimize
	default:
		return int64(rng.Intn(6))<<16 | int64(rng.Intn(3000))
	}
}

func genPair(t *testing.T, rng *rand.Rand, regime, n int) (*Bitmap, model, *Bitmap, model) {
	t.Helper()
	a, b := New(), New()
	am, bm := make(model), make(model)
	for i := 0; i < n; i++ {
		v := genValue(rng, regime)
		if rng.Intn(2) == 0 {
			a.Add(v)
			am[v] = true
		}
		if rng.Intn(2) == 0 {
			b.Add(v)
			bm[v] = true
		}
	}
	if rng.Intn(2) == 0 {
		a.Optimize()
	}
	if rng.Intn(2) == 0 {
		b.Optimize()
	}
	if !modelOf(a).equal(am) || !modelOf(b).equal(bm) {
		t.Fatal("construction diverged from model")
	}
	return a, am, b, bm
}

func TestBitmapPropertySetAlgebra(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		regime := trial % 4
		n := 50
		if regime == 1 {
			n = 6000 // push past arrayMaxCard so bitset containers appear
		}
		a, am, b, bm := genPair(t, rng, regime, n)

		refAnd, refOr, refAndNot, refXor := make(model), make(model), make(model), make(model)
		for v := range am {
			if bm[v] {
				refAnd[v] = true
			} else {
				refAndNot[v] = true
				refXor[v] = true
			}
			refOr[v] = true
		}
		for v := range bm {
			refOr[v] = true
			if !am[v] {
				refXor[v] = true
			}
		}

		if got := modelOf(And(a, b)); !got.equal(refAnd) {
			t.Fatalf("trial %d (regime %d): And diverged", trial, regime)
		}
		if got := modelOf(Or(a, b)); !got.equal(refOr) {
			t.Fatalf("trial %d (regime %d): Or diverged", trial, regime)
		}
		if got := modelOf(AndNot(a, b)); !got.equal(refAndNot) {
			t.Fatalf("trial %d (regime %d): AndNot diverged", trial, regime)
		}
		if got := modelOf(Xor(a, b)); !got.equal(refXor) {
			t.Fatalf("trial %d (regime %d): Xor diverged", trial, regime)
		}
		if got := a.AndCardinality(b); got != int64(len(refAnd)) {
			t.Fatalf("trial %d: AndCardinality = %d, want %d", trial, got, len(refAnd))
		}
		if got := a.Intersects(b); got != (len(refAnd) > 0) {
			t.Fatalf("trial %d: Intersects = %v, want %v", trial, got, len(refAnd) > 0)
		}

		// OrInPlace on a clone matches Or.
		c := a.Clone()
		c.OrInPlace(b)
		if !modelOf(c).equal(refOr) {
			t.Fatalf("trial %d: OrInPlace diverged", trial)
		}
		// The clone's mutation must not have leaked into a.
		if !modelOf(a).equal(am) {
			t.Fatalf("trial %d: Clone aliases its source", trial)
		}
	}
}

func TestBitmapPropertyQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 120; trial++ {
		regime := trial % 4
		n := 60
		if regime == 1 {
			n = 5500
		}
		a, am, _, _ := genPair(t, rng, regime, n)
		vals := am.slice()

		if got := a.Cardinality(); got != int64(len(vals)) {
			t.Fatalf("trial %d: Cardinality = %d, want %d", trial, got, len(vals))
		}
		if got := a.ToSlice(); len(got) != len(vals) {
			t.Fatalf("trial %d: ToSlice length %d, want %d", trial, len(got), len(vals))
		} else {
			for i := range got {
				if got[i] != vals[i] {
					t.Fatalf("trial %d: ToSlice[%d] = %d, want %d", trial, i, got[i], vals[i])
				}
			}
		}
		if len(vals) > 0 {
			if mn, ok := a.Min(); !ok || mn != vals[0] {
				t.Fatalf("trial %d: Min = %d,%v want %d", trial, mn, ok, vals[0])
			}
			if mx, ok := a.Max(); !ok || mx != vals[len(vals)-1] {
				t.Fatalf("trial %d: Max = %d,%v want %d", trial, mx, ok, vals[len(vals)-1])
			}
		}
		// Contains / Rank / Select against the model at probe points.
		for probe := 0; probe < 30; probe++ {
			v := genValue(rng, regime)
			if a.Contains(v) != am[v] {
				t.Fatalf("trial %d: Contains(%d) = %v, want %v", trial, v, a.Contains(v), am[v])
			}
			wantRank := int64(sort.Search(len(vals), func(i int) bool { return vals[i] > v }))
			if got := a.Rank(v); got != wantRank {
				t.Fatalf("trial %d: Rank(%d) = %d, want %d", trial, v, got, wantRank)
			}
		}
		for i := 0; i < len(vals); i += 1 + len(vals)/17 {
			if got, ok := a.Select(int64(i)); !ok || got != vals[i] {
				t.Fatalf("trial %d: Select(%d) = %d,%v want %d", trial, i, got, ok, vals[i])
			}
		}
		if _, ok := a.Select(int64(len(vals))); ok {
			t.Fatalf("trial %d: Select past the end succeeded", trial)
		}

		// Serialization round-trips, with and without run optimization.
		data, err := a.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		back, err := FromBytes(data)
		if err != nil {
			t.Fatalf("trial %d: round-trip decode: %v", trial, err)
		}
		if !back.Equal(a) {
			t.Fatalf("trial %d: serialization round-trip diverged", trial)
		}
		a.Optimize()
		data2, err := a.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		back2, err := FromBytes(data2)
		if err != nil || !back2.Equal(a) {
			t.Fatalf("trial %d: post-Optimize round-trip diverged (%v)", trial, err)
		}
		if int64(len(data2)) != a.SerializedSizeBytes() {
			t.Fatalf("trial %d: SerializedSizeBytes %d != actual %d", trial, a.SerializedSizeBytes(), len(data2))
		}
	}
}

// TestBitmapPropertyContainerBoundaries walks cardinality across the
// array→bitset threshold and back (via AndNot), checking the model at every
// step where the representation flips.
func TestBitmapPropertyContainerBoundaries(t *testing.T) {
	a := New()
	m := make(model)
	// Grow through the arrayMaxCard boundary.
	for v := int64(0); v < int64(arrayMaxCard)+50; v++ {
		a.Add(v * 2) // even spacing prevents run coalescing
		m[v*2] = true
	}
	if ar, bs, _ := a.ContainerCounts(); ar != 0 || bs == 0 {
		t.Fatalf("expected a bitset container past the threshold, got array=%d bitset=%d", ar, bs)
	}
	if !modelOf(a).equal(m) {
		t.Fatal("grown bitmap diverged from model")
	}
	// Shrink back below the threshold through AndNot.
	drop := New()
	for v := int64(0); v < int64(arrayMaxCard); v++ {
		drop.Add(v * 2)
		delete(m, v*2)
	}
	small := AndNot(a, drop)
	if !modelOf(small).equal(m) {
		t.Fatal("shrunk bitmap diverged from model")
	}
	// Run containers appear for contiguous ranges after Optimize and behave.
	r := New()
	rm := make(model)
	for v := int64(100000); v < 101000; v++ {
		r.Add(v)
		rm[v] = true
	}
	r.Optimize()
	if _, _, runs := r.ContainerCounts(); runs == 0 {
		t.Fatal("contiguous range did not become a run container")
	}
	if !modelOf(r).equal(rm) {
		t.Fatal("run-encoded bitmap diverged from model")
	}
	if got := modelOf(And(r, a)); !got.equal(func() model {
		out := make(model)
		for v := range rm {
			if modelOf(a)[v] {
				out[v] = true
			}
		}
		return out
	}()) {
		t.Fatal("run ∩ bitset diverged from model")
	}
}
