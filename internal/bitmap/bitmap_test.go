package bitmap

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
)

// refSet is the map-based reference implementation ops are checked against.
type refSet map[int64]bool

func refFrom(vals []int64) refSet {
	s := make(refSet, len(vals))
	for _, v := range vals {
		s[v] = true
	}
	return s
}

func (s refSet) sorted() []int64 {
	out := make([]int64, 0, len(s))
	for v := range s {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalSlices(t *testing.T, name string, got, want []int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d values, want %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: [%d] = %d, want %d", name, i, got[i], want[i])
		}
	}
}

// testShapes yields value sets that exercise each container layout: sparse
// (array), dense (bitset), contiguous (run), plus chunk-boundary straddlers.
func testShapes() map[string][]int64 {
	rng := rand.New(rand.NewSource(7))
	sparse := make([]int64, 300)
	for i := range sparse {
		sparse[i] = rng.Int63n(1 << 40)
	}
	dense := make([]int64, 0, 30000)
	for i := 0; i < 30000; i++ {
		dense = append(dense, int64(rng.Intn(60000)))
	}
	runs := make([]int64, 0, 20000)
	for v := int64(100); v < 20100; v++ {
		runs = append(runs, v)
	}
	straddle := []int64{65534, 65535, 65536, 65537, 131071, 131072}
	return map[string][]int64{
		"sparse":   sparse,
		"dense":    dense,
		"runs":     runs,
		"straddle": straddle,
		"empty":    nil,
		"single":   {42},
	}
}

func TestBuildContainsIterate(t *testing.T) {
	for name, vals := range testShapes() {
		t.Run(name, func(t *testing.T) {
			ref := refFrom(vals)
			b := FromSlice(vals)
			if b.Cardinality() != int64(len(ref)) {
				t.Fatalf("cardinality %d, want %d", b.Cardinality(), len(ref))
			}
			equalSlices(t, "ToSlice", b.ToSlice(), ref.sorted())
			for v := range ref {
				if !b.Contains(v) {
					t.Fatalf("missing %d", v)
				}
			}
			for _, probe := range []int64{-1, 0, 1, 65536, 1 << 41} {
				if b.Contains(probe) != ref[probe] {
					t.Fatalf("Contains(%d) = %v, want %v", probe, b.Contains(probe), ref[probe])
				}
			}
		})
	}
}

func TestAddIncremental(t *testing.T) {
	b := New()
	ref := make(refSet)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 10000; i++ {
		v := rng.Int63n(200000)
		b.Add(v)
		ref[v] = true
	}
	b.Add(-5) // ignored
	equalSlices(t, "incremental", b.ToSlice(), ref.sorted())
	// Adding into a run-optimized bitmap still works.
	b.Optimize()
	b.Add(999999)
	ref[999999] = true
	equalSlices(t, "post-optimize add", b.ToSlice(), ref.sorted())
}

func TestAlgebra(t *testing.T) {
	shapes := testShapes()
	names := make([]string, 0, len(shapes))
	for n := range shapes {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, na := range names {
		for _, nb := range names {
			a, bb := FromSlice(shapes[na]), FromSlice(shapes[nb])
			ra, rb := refFrom(shapes[na]), refFrom(shapes[nb])

			var wantAnd, wantOr, wantAndNot, wantXor []int64
			for v := range ra {
				if rb[v] {
					wantAnd = append(wantAnd, v)
				} else {
					wantAndNot = append(wantAndNot, v)
					wantXor = append(wantXor, v)
				}
				wantOr = append(wantOr, v)
			}
			for v := range rb {
				if !ra[v] {
					wantOr = append(wantOr, v)
					wantXor = append(wantXor, v)
				}
			}
			for _, s := range [][]int64{wantAnd, wantOr, wantAndNot, wantXor} {
				sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
			}

			label := na + "/" + nb
			equalSlices(t, label+" And", And(a, bb).ToSlice(), wantAnd)
			equalSlices(t, label+" Or", Or(a, bb).ToSlice(), wantOr)
			equalSlices(t, label+" AndNot", AndNot(a, bb).ToSlice(), wantAndNot)
			equalSlices(t, label+" Xor", Xor(a, bb).ToSlice(), wantXor)
			if got := a.AndCardinality(bb); got != int64(len(wantAnd)) {
				t.Fatalf("%s AndCardinality = %d, want %d", label, got, len(wantAnd))
			}
			if got := a.Intersects(bb); got != (len(wantAnd) > 0) {
				t.Fatalf("%s Intersects = %v, want %v", label, got, len(wantAnd) > 0)
			}
			// OrInPlace matches Or.
			acc := a.Clone()
			acc.OrInPlace(bb)
			equalSlices(t, label+" OrInPlace", acc.ToSlice(), wantOr)
		}
	}
}

func TestRankSelectMinMax(t *testing.T) {
	for name, vals := range testShapes() {
		t.Run(name, func(t *testing.T) {
			b := FromSlice(vals)
			sorted := refFrom(vals).sorted()
			if len(sorted) == 0 {
				if _, ok := b.Min(); ok {
					t.Fatal("Min on empty")
				}
				if _, ok := b.Select(0); ok {
					t.Fatal("Select on empty")
				}
				return
			}
			if mn, _ := b.Min(); mn != sorted[0] {
				t.Fatalf("Min = %d, want %d", mn, sorted[0])
			}
			if mx, _ := b.Max(); mx != sorted[len(sorted)-1] {
				t.Fatalf("Max = %d, want %d", mx, sorted[len(sorted)-1])
			}
			for i, v := range sorted {
				if got, ok := b.Select(int64(i)); !ok || got != v {
					t.Fatalf("Select(%d) = %d,%v, want %d", i, got, ok, v)
				}
				if got := b.Rank(v); got != int64(i+1) {
					t.Fatalf("Rank(%d) = %d, want %d", v, got, i+1)
				}
			}
			if _, ok := b.Select(int64(len(sorted))); ok {
				t.Fatal("Select past end")
			}
			if got := b.Rank(sorted[len(sorted)-1] + 1000); got != int64(len(sorted)) {
				t.Fatalf("Rank past end = %d, want %d", got, len(sorted))
			}
		})
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	for name, vals := range testShapes() {
		t.Run(name, func(t *testing.T) {
			b := FromSlice(vals)
			data, err := b.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			if int64(len(data)) != b.SerializedSizeBytes() {
				t.Fatalf("size = %d, SerializedSizeBytes = %d", len(data), b.SerializedSizeBytes())
			}
			back, err := FromBytes(data)
			if err != nil {
				t.Fatal(err)
			}
			if !b.Equal(back) {
				t.Fatal("round trip changed contents")
			}
			// Gob path is the same bytes.
			gb, err := b.GobEncode()
			if err != nil {
				t.Fatal(err)
			}
			var back2 Bitmap
			if err := back2.GobDecode(gb); err != nil {
				t.Fatal(err)
			}
			if !b.Equal(&back2) {
				t.Fatal("gob round trip changed contents")
			}
		})
	}
}

func TestSerializationRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("xx"),
		[]byte("XXXX\x01\x00\x00\x00\x00"),
		[]byte("ORBM\x09\x00\x00\x00\x00"),
		// Hostile chunk count (0xFFFFFFFF) over an empty payload.
		[]byte("ORBM\x01\xff\xff\xff\xff"),
		// One chunk whose array container claims 0xFFFFFFFF values.
		[]byte("ORBM\x01\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\xff\xff\xff\xff"),
		// One chunk whose run container claims 0xFFFFFFFF intervals.
		[]byte("ORBM\x01\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x02\xff\xff\xff\xff"),
	}
	for i, data := range cases {
		_, err := FromBytes(data)
		if err == nil {
			t.Fatalf("case %d: garbage accepted", i)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("case %d: error %v does not wrap ErrCorrupt", i, err)
		}
	}
	// Truncated valid payload.
	good, _ := FromSlice([]int64{1, 2, 3, 100000}).MarshalBinary()
	if _, err := FromBytes(good[:len(good)-3]); err == nil {
		t.Fatal("truncated payload accepted")
	}
	if _, err := FromBytes(good[:len(good)-3]); !errors.Is(err, ErrCorrupt) {
		t.Fatal("truncation error does not wrap ErrCorrupt")
	}
}

func TestContainerChoice(t *testing.T) {
	// A contiguous range must land in a run container after Optimize.
	vals := make([]int64, 0, 10000)
	for v := int64(0); v < 10000; v++ {
		vals = append(vals, v)
	}
	b := FromSorted(vals)
	if _, _, runN := b.ContainerCounts(); runN != 1 {
		t.Fatalf("contiguous range not run-encoded: %v", func() []int { a, bm, r := b.ContainerCounts(); return []int{a, bm, r} }())
	}
	if b.SerializedSizeBytes() > 64 {
		t.Fatalf("run-encoded 10k range serialized to %d bytes", b.SerializedSizeBytes())
	}
	// Dense random fill past 4096 in one chunk becomes a bitset.
	rng := rand.New(rand.NewSource(3))
	b2 := New()
	for i := 0; i < 30000; i++ {
		b2.Add(int64(rng.Intn(32768))*2 + 1) // odds in one chunk: never run-friendly
	}
	if _, bitN, _ := b2.ContainerCounts(); bitN != 1 {
		a, bm, r := b2.ContainerCounts()
		t.Fatalf("dense chunk layout = array %d bitset %d run %d, want one bitset", a, bm, r)
	}
	// Sparse values stay arrays.
	b3 := FromSlice([]int64{1, 70000, 140000})
	if arrN, _, _ := b3.ContainerCounts(); arrN != 3 {
		t.Fatalf("sparse values not array-encoded")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromSlice([]int64{1, 2, 3})
	c := a.Clone()
	c.Add(99)
	if a.Contains(99) {
		t.Fatal("Clone shares storage")
	}
	if !c.Contains(2) {
		t.Fatal("Clone lost values")
	}
}

func TestNilReceivers(t *testing.T) {
	var b *Bitmap
	if b.Cardinality() != 0 || !b.IsEmpty() || b.Contains(1) {
		t.Fatal("nil receiver basics")
	}
	if got := And(b, FromSlice([]int64{1})).Cardinality(); got != 0 {
		t.Fatal("And with nil")
	}
	if got := Or(b, FromSlice([]int64{1})).Cardinality(); got != 1 {
		t.Fatal("Or with nil")
	}
	if got := AndNot(FromSlice([]int64{1}), b).Cardinality(); got != 1 {
		t.Fatal("AndNot with nil")
	}
	if b.ToSlice() != nil {
		t.Fatal("nil ToSlice")
	}
}
