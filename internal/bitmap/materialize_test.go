package bitmap

import (
	"math/rand"
	"testing"
)

// TestParallelMaterializeMatchesSequential checks that the segmented parallel
// fill produces exactly the sequential ordering across container layouts
// (dense runs, bitset-grade density, sparse arrays) and worker counts.
func TestParallelMaterializeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := map[string]*Bitmap{}

	dense := New()
	for v := int64(1); v <= 150_000; v++ {
		dense.Add(v)
	}
	shapes["dense-runs"] = dense

	half := New()
	for v := int64(0); v < 300_000; v++ {
		if rng.Intn(2) == 0 {
			half.Add(v)
		}
	}
	shapes["bitset"] = half

	sparse := New()
	for i := 0; i < 40_000; i++ {
		sparse.Add(rng.Int63n(1 << 30))
	}
	shapes["sparse-arrays"] = sparse

	mixed := Or(dense, sparse)
	mixed.Optimize()
	shapes["mixed-optimized"] = mixed

	small := FromSlice([]int64{3, 5, 65536, 70000})
	shapes["tiny"] = small

	for name, bm := range shapes {
		want := make([]int64, bm.Cardinality())
		bm.fillSequential(want)
		for _, workers := range []int{1, 2, 3, 8} {
			SetMaterializeWorkers(workers)
			got := bm.ToSlice()
			if len(got) != len(want) {
				t.Fatalf("%s workers=%d: len %d, want %d", name, workers, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s workers=%d: got[%d]=%d, want %d", name, workers, i, got[i], want[i])
				}
			}
		}
		SetMaterializeWorkers(0)
	}
}
