// Package bitmap implements a dependency-free compressed bitmap in the
// roaring style: the 64-bit value space is chunked by the high bits, and each
// chunk stores its low 16 bits in whichever of three container layouts is
// smallest — a sorted uint16 array for sparse chunks, a 65536-bit bitset for
// dense ones, and run-length intervals for contiguous ranges (the common case
// for OrpheusDB rlists, whose record ids are allocated densely).
//
// It is the membership substrate behind every version: rlists and vlists are
// stored, persisted, and combined (checkout, diff, multi-version scans,
// partition migration) as Bitmaps, so set algebra costs O(chunks touched)
// instead of O(records).
package bitmap

import "sort"

// Container type tags.
const (
	typeArray  uint8 = iota // sorted []uint16
	typeBitmap              // 1024 words of 64 bits
	typeRun                 // sorted, disjoint [start,last] intervals
)

// arrayMaxCard is the cardinality threshold above which an array container is
// converted to a bitset container (the roaring constant).
const arrayMaxCard = 4096

// bitmapWords is the word count of a bitset container (65536 bits).
const bitmapWords = 1024

// interval is one run [Start, Last], inclusive on both ends.
type interval struct {
	Start, Last uint16
}

// container holds one 65536-value chunk in exactly one of three layouts,
// selected by typ.
type container struct {
	typ  uint8
	card int      // cardinality, maintained for all layouts
	arr  []uint16 // typeArray
	bits []uint64 // typeBitmap, len bitmapWords
	runs []interval
}

// Bitmap is a compressed set of non-negative int64 values. The zero value is
// not usable; call New or a From* constructor. A Bitmap is not safe for
// concurrent mutation; once stored in the engine it is treated as immutable
// and may be shared freely.
type Bitmap struct {
	keys []uint64 // sorted chunk keys (value >> 16)
	cts  []*container
}

// New returns an empty bitmap.
func New() *Bitmap { return &Bitmap{} }

// FromSlice builds a bitmap from values in any order. Negative values are
// ignored (record ids are positive).
func FromSlice(vals []int64) *Bitmap {
	sorted := make([]int64, 0, len(vals))
	for _, v := range vals {
		if v >= 0 {
			sorted = append(sorted, v)
		}
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return FromSorted(sorted)
}

// FromSorted builds a bitmap from ascending values (duplicates allowed).
// Negative values are ignored.
func FromSorted(vals []int64) *Bitmap {
	b := New()
	var cur *container
	var curKey uint64
	for _, v := range vals {
		if v < 0 {
			continue
		}
		key := uint64(v) >> 16
		low := uint16(v)
		if cur == nil || key != curKey {
			cur = &container{typ: typeArray}
			curKey = key
			b.keys = append(b.keys, key)
			b.cts = append(b.cts, cur)
		}
		cur.add(low)
	}
	for _, c := range b.cts {
		c.shrink()
	}
	b.Optimize()
	return b
}

// Add inserts v. Negative values are ignored.
func (b *Bitmap) Add(v int64) {
	if v < 0 {
		return
	}
	key := uint64(v) >> 16
	low := uint16(v)
	i := b.findKey(key)
	if i < 0 {
		c := &container{typ: typeArray}
		c.add(low)
		b.insertContainer(key, c)
		return
	}
	b.cts[i].add(low)
}

// AddMany inserts every value of vals.
func (b *Bitmap) AddMany(vals []int64) {
	for _, v := range vals {
		b.Add(v)
	}
}

// Contains reports whether v is in the set.
func (b *Bitmap) Contains(v int64) bool {
	if b == nil || v < 0 {
		return false
	}
	i := b.findKey(uint64(v) >> 16)
	return i >= 0 && b.cts[i].contains(uint16(v))
}

// Cardinality returns the number of values in the set.
func (b *Bitmap) Cardinality() int64 {
	if b == nil {
		return 0
	}
	var n int64
	for _, c := range b.cts {
		n += int64(c.card)
	}
	return n
}

// IsEmpty reports whether the set has no values.
func (b *Bitmap) IsEmpty() bool { return b == nil || b.Cardinality() == 0 }

// Iterate calls f on every value in ascending order until f returns false.
func (b *Bitmap) Iterate(f func(v int64) bool) {
	if b == nil {
		return
	}
	for i, key := range b.keys {
		hi := int64(key) << 16
		if !b.cts[i].iterate(func(low uint16) bool { return f(hi | int64(low)) }) {
			return
		}
	}
}

// ToSlice materializes the set as an ascending []int64. The output is
// preallocated at exact cardinality and filled with typed per-container loops
// (no per-value closure); sets past a few thousand values are filled by a
// worker pool over sub-container segments (see materialize.go), sized by
// MaterializeWorkers.
func (b *Bitmap) ToSlice() []int64 {
	if b == nil {
		return nil
	}
	out := make([]int64, b.Cardinality())
	b.fillInto(out, MaterializeWorkers())
	return out
}

// Min returns the smallest value, or ok=false when empty.
func (b *Bitmap) Min() (int64, bool) {
	for i, key := range b.keys {
		if b.cts[i].card > 0 {
			low, _ := b.cts[i].minimum()
			return int64(key)<<16 | int64(low), true
		}
	}
	return 0, false
}

// Max returns the largest value, or ok=false when empty.
func (b *Bitmap) Max() (int64, bool) {
	for i := len(b.keys) - 1; i >= 0; i-- {
		if b.cts[i].card > 0 {
			low, _ := b.cts[i].maximum()
			return int64(b.keys[i])<<16 | int64(low), true
		}
	}
	return 0, false
}

// Rank returns the number of set values <= v.
func (b *Bitmap) Rank(v int64) int64 {
	if b == nil || v < 0 {
		return 0
	}
	key := uint64(v) >> 16
	var n int64
	for i, k := range b.keys {
		if k < key {
			n += int64(b.cts[i].card)
			continue
		}
		if k == key {
			n += b.cts[i].rank(uint16(v))
		}
		break
	}
	return n
}

// Select returns the i-th smallest value (0-based), or ok=false when the set
// holds fewer than i+1 values.
func (b *Bitmap) Select(i int64) (int64, bool) {
	if b == nil || i < 0 {
		return 0, false
	}
	for j, c := range b.cts {
		if i < int64(c.card) {
			low, ok := c.selectAt(int(i))
			if !ok {
				return 0, false
			}
			return int64(b.keys[j])<<16 | int64(low), true
		}
		i -= int64(c.card)
	}
	return 0, false
}

// Clone deep-copies the bitmap.
func (b *Bitmap) Clone() *Bitmap {
	if b == nil {
		return New()
	}
	out := &Bitmap{
		keys: append([]uint64(nil), b.keys...),
		cts:  make([]*container, len(b.cts)),
	}
	for i, c := range b.cts {
		out.cts[i] = c.clone()
	}
	return out
}

// Equal reports whether two bitmaps hold the same values.
func (b *Bitmap) Equal(o *Bitmap) bool {
	if b.Cardinality() != o.Cardinality() {
		return false
	}
	eq := true
	i := 0
	other := o.ToSlice()
	b.Iterate(func(v int64) bool {
		if other[i] != v {
			eq = false
			return false
		}
		i++
		return true
	})
	return eq
}

// ContainerCounts reports how many chunks use each layout — surfaced by the
// storage-breakdown endpoint and useful when tuning Optimize.
func (b *Bitmap) ContainerCounts() (array, bitset, run int) {
	if b == nil {
		return
	}
	for _, c := range b.cts {
		switch c.typ {
		case typeArray:
			array++
		case typeBitmap:
			bitset++
		case typeRun:
			run++
		}
	}
	return
}

// Optimize converts containers to run encoding where that is the smallest
// layout (roaring's runOptimize). Safe to call at any time.
func (b *Bitmap) Optimize() {
	for _, c := range b.cts {
		c.runOptimize()
	}
}

// findKey locates key in b.keys, or -1.
func (b *Bitmap) findKey(key uint64) int {
	i := sort.Search(len(b.keys), func(i int) bool { return b.keys[i] >= key })
	if i < len(b.keys) && b.keys[i] == key {
		return i
	}
	return -1
}

// insertContainer inserts (key, c) preserving key order.
func (b *Bitmap) insertContainer(key uint64, c *container) {
	i := sort.Search(len(b.keys), func(i int) bool { return b.keys[i] >= key })
	b.keys = append(b.keys, 0)
	b.cts = append(b.cts, nil)
	copy(b.keys[i+1:], b.keys[i:])
	copy(b.cts[i+1:], b.cts[i:])
	b.keys[i] = key
	b.cts[i] = c
}

// And returns the intersection a ∩ b.
func And(a, b *Bitmap) *Bitmap {
	out := New()
	if a == nil || b == nil {
		return out
	}
	i, j := 0, 0
	for i < len(a.keys) && j < len(b.keys) {
		switch {
		case a.keys[i] < b.keys[j]:
			i++
		case a.keys[i] > b.keys[j]:
			j++
		default:
			if c := andContainers(a.cts[i], b.cts[j]); c.card > 0 {
				out.keys = append(out.keys, a.keys[i])
				out.cts = append(out.cts, c)
			}
			i++
			j++
		}
	}
	return out
}

// Or returns the union a ∪ b.
func Or(a, b *Bitmap) *Bitmap {
	out := New()
	if a == nil {
		return b.Clone()
	}
	if b == nil {
		return a.Clone()
	}
	i, j := 0, 0
	for i < len(a.keys) || j < len(b.keys) {
		switch {
		case j >= len(b.keys) || (i < len(a.keys) && a.keys[i] < b.keys[j]):
			out.keys = append(out.keys, a.keys[i])
			out.cts = append(out.cts, a.cts[i].clone())
			i++
		case i >= len(a.keys) || b.keys[j] < a.keys[i]:
			out.keys = append(out.keys, b.keys[j])
			out.cts = append(out.cts, b.cts[j].clone())
			j++
		default:
			out.keys = append(out.keys, a.keys[i])
			out.cts = append(out.cts, orContainers(a.cts[i], b.cts[j]))
			i++
			j++
		}
	}
	return out
}

// OrAll unions any number of bitmaps.
func OrAll(bs ...*Bitmap) *Bitmap {
	out := New()
	for _, b := range bs {
		out.OrInPlace(b)
	}
	return out
}

// OrInPlace folds o into b (b ∪= o).
func (b *Bitmap) OrInPlace(o *Bitmap) {
	if o == nil {
		return
	}
	for j, key := range o.keys {
		i := b.findKey(key)
		if i < 0 {
			b.insertContainer(key, o.cts[j].clone())
			continue
		}
		b.cts[i] = orContainers(b.cts[i], o.cts[j])
	}
}

// AndNot returns the difference a \ b.
func AndNot(a, b *Bitmap) *Bitmap {
	out := New()
	if a == nil {
		return out
	}
	if b == nil {
		return a.Clone()
	}
	for i, key := range a.keys {
		j := b.findKey(key)
		if j < 0 {
			out.keys = append(out.keys, key)
			out.cts = append(out.cts, a.cts[i].clone())
			continue
		}
		if c := andNotContainers(a.cts[i], b.cts[j]); c.card > 0 {
			out.keys = append(out.keys, key)
			out.cts = append(out.cts, c)
		}
	}
	return out
}

// Xor returns the symmetric difference a △ b.
func Xor(a, b *Bitmap) *Bitmap {
	// a△b = (a\b) ∪ (b\a); container-local work dominates either way.
	return Or(AndNot(a, b), AndNot(b, a))
}

// AndCardinality returns |a ∩ b| without materializing the intersection —
// the hot operation of the partition planner (edge weights, migration cost
// estimates).
func (b *Bitmap) AndCardinality(o *Bitmap) int64 {
	if b == nil || o == nil {
		return 0
	}
	var n int64
	i, j := 0, 0
	for i < len(b.keys) && j < len(o.keys) {
		switch {
		case b.keys[i] < o.keys[j]:
			i++
		case b.keys[i] > o.keys[j]:
			j++
		default:
			n += andCardContainers(b.cts[i], o.cts[j])
			i++
			j++
		}
	}
	return n
}

// Intersects reports whether a ∩ b is non-empty.
func (b *Bitmap) Intersects(o *Bitmap) bool {
	if b == nil || o == nil {
		return false
	}
	i, j := 0, 0
	for i < len(b.keys) && j < len(o.keys) {
		switch {
		case b.keys[i] < o.keys[j]:
			i++
		case b.keys[i] > o.keys[j]:
			j++
		default:
			if andCardContainers(b.cts[i], o.cts[j]) > 0 {
				return true
			}
			i++
			j++
		}
	}
	return false
}
