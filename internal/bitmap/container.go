package bitmap

import (
	"math/bits"
	"sort"
)

// This file implements the per-chunk container operations. Every mutating
// entry point keeps card correct and converts between layouts at the roaring
// thresholds: arrays hold at most arrayMaxCard values; a bitset that drains
// below that converts back to an array; runOptimize picks run encoding when
// it is the smallest of the three.

func (c *container) clone() *container {
	out := &container{typ: c.typ, card: c.card}
	out.arr = append([]uint16(nil), c.arr...)
	out.bits = append([]uint64(nil), c.bits...)
	out.runs = append([]interval(nil), c.runs...)
	return out
}

// add inserts low into the container, converting array→bitset on overflow.
// Run containers are expanded first (adds after Optimize are rare).
func (c *container) add(low uint16) {
	switch c.typ {
	case typeArray:
		i := sort.Search(len(c.arr), func(i int) bool { return c.arr[i] >= low })
		if i < len(c.arr) && c.arr[i] == low {
			return
		}
		if len(c.arr) >= arrayMaxCard {
			c.toBitmap()
			c.add(low)
			return
		}
		c.arr = append(c.arr, 0)
		copy(c.arr[i+1:], c.arr[i:])
		c.arr[i] = low
		c.card++
	case typeBitmap:
		w, m := low>>6, uint64(1)<<(low&63)
		if c.bits[w]&m == 0 {
			c.bits[w] |= m
			c.card++
		}
	case typeRun:
		if c.runContains(low) {
			return
		}
		c.expandRuns()
		c.add(low)
	}
}

func (c *container) contains(low uint16) bool {
	switch c.typ {
	case typeArray:
		i := sort.Search(len(c.arr), func(i int) bool { return c.arr[i] >= low })
		return i < len(c.arr) && c.arr[i] == low
	case typeBitmap:
		return c.bits[low>>6]&(uint64(1)<<(low&63)) != 0
	case typeRun:
		return c.runContains(low)
	}
	return false
}

func (c *container) runContains(low uint16) bool {
	i := sort.Search(len(c.runs), func(i int) bool { return c.runs[i].Last >= low })
	return i < len(c.runs) && c.runs[i].Start <= low
}

// iterate visits values ascending; stops early when f returns false,
// reporting false in that case.
func (c *container) iterate(f func(low uint16) bool) bool {
	switch c.typ {
	case typeArray:
		for _, v := range c.arr {
			if !f(v) {
				return false
			}
		}
	case typeBitmap:
		for w, word := range c.bits {
			for word != 0 {
				t := word & -word
				if !f(uint16(w<<6 | bits.TrailingZeros64(word))) {
					return false
				}
				word ^= t
			}
		}
	case typeRun:
		for _, r := range c.runs {
			for v := int(r.Start); v <= int(r.Last); v++ {
				if !f(uint16(v)) {
					return false
				}
			}
		}
	}
	return true
}

func (c *container) minimum() (uint16, bool) {
	switch c.typ {
	case typeArray:
		if len(c.arr) > 0 {
			return c.arr[0], true
		}
	case typeBitmap:
		for w, word := range c.bits {
			if word != 0 {
				return uint16(w<<6 | bits.TrailingZeros64(word)), true
			}
		}
	case typeRun:
		if len(c.runs) > 0 {
			return c.runs[0].Start, true
		}
	}
	return 0, false
}

func (c *container) maximum() (uint16, bool) {
	switch c.typ {
	case typeArray:
		if len(c.arr) > 0 {
			return c.arr[len(c.arr)-1], true
		}
	case typeBitmap:
		for w := len(c.bits) - 1; w >= 0; w-- {
			if word := c.bits[w]; word != 0 {
				return uint16(w<<6 | (63 - bits.LeadingZeros64(word))), true
			}
		}
	case typeRun:
		if len(c.runs) > 0 {
			return c.runs[len(c.runs)-1].Last, true
		}
	}
	return 0, false
}

// rank counts values <= low.
func (c *container) rank(low uint16) int64 {
	switch c.typ {
	case typeArray:
		return int64(sort.Search(len(c.arr), func(i int) bool { return c.arr[i] > low }))
	case typeBitmap:
		var n int64
		w := int(low >> 6)
		for i := 0; i < w; i++ {
			n += int64(bits.OnesCount64(c.bits[i]))
		}
		mask := ^uint64(0) >> (63 - (low & 63))
		n += int64(bits.OnesCount64(c.bits[w] & mask))
		return n
	case typeRun:
		var n int64
		for _, r := range c.runs {
			if r.Start > low {
				break
			}
			if r.Last <= low {
				n += int64(r.Last-r.Start) + 1
			} else {
				n += int64(low-r.Start) + 1
			}
		}
		return n
	}
	return 0
}

// selectAt returns the i-th smallest value (0-based) of the container.
func (c *container) selectAt(i int) (uint16, bool) {
	if i < 0 || i >= c.card {
		return 0, false
	}
	switch c.typ {
	case typeArray:
		return c.arr[i], true
	case typeBitmap:
		for w, word := range c.bits {
			n := bits.OnesCount64(word)
			if i < n {
				for ; word != 0; word &= word - 1 {
					if i == 0 {
						return uint16(w<<6 | bits.TrailingZeros64(word)), true
					}
					i--
				}
			}
			i -= n
		}
	case typeRun:
		for _, r := range c.runs {
			n := int(r.Last-r.Start) + 1
			if i < n {
				return r.Start + uint16(i), true
			}
			i -= n
		}
	}
	return 0, false
}

// toBitmap converts the container to the bitset layout.
func (c *container) toBitmap() {
	bitsArr := make([]uint64, bitmapWords)
	card := 0
	c.iterate(func(low uint16) bool {
		bitsArr[low>>6] |= uint64(1) << (low & 63)
		card++
		return true
	})
	*c = container{typ: typeBitmap, bits: bitsArr, card: card}
}

// toArray converts the container to the sorted-array layout. Caller
// guarantees card <= arrayMaxCard.
func (c *container) toArray() {
	arr := make([]uint16, 0, c.card)
	c.iterate(func(low uint16) bool {
		arr = append(arr, low)
		return true
	})
	*c = container{typ: typeArray, arr: arr, card: len(arr)}
}

// expandRuns converts a run container to array or bitset, whichever fits.
func (c *container) expandRuns() {
	if c.card > arrayMaxCard {
		c.toBitmap()
	} else {
		c.toArray()
	}
}

// shrink trims spare capacity after bulk construction.
func (c *container) shrink() {
	if c.typ == typeArray && cap(c.arr) > len(c.arr) {
		c.arr = append(make([]uint16, 0, len(c.arr)), c.arr...)
	}
}

// countRuns returns the number of maximal runs in the container.
func (c *container) countRuns() int {
	n := 0
	prev := -2
	c.iterate(func(low uint16) bool {
		if int(low) != prev+1 {
			n++
		}
		prev = int(low)
		return true
	})
	return n
}

// sizeInBytes estimates the in-memory/serialized payload of the layout.
func (c *container) sizeInBytes() int {
	switch c.typ {
	case typeArray:
		return 2 * len(c.arr)
	case typeBitmap:
		return 8 * bitmapWords
	case typeRun:
		return 4 * len(c.runs)
	}
	return 0
}

// runOptimize converts to run encoding when that is strictly smaller than
// the current layout, and demotes oversized arrays / drained bitsets.
func (c *container) runOptimize() {
	if c.card == 0 {
		return
	}
	// Normalize array/bitset choice first.
	if c.typ == typeBitmap && c.card <= arrayMaxCard {
		c.toArray()
	}
	nRuns := c.countRuns()
	runBytes := 4 * nRuns
	if runBytes < c.sizeInBytes() {
		runs := make([]interval, 0, nRuns)
		var cur interval
		started := false
		c.iterate(func(low uint16) bool {
			if !started {
				cur = interval{Start: low, Last: low}
				started = true
				return true
			}
			if low == cur.Last+1 {
				cur.Last = low
				return true
			}
			runs = append(runs, cur)
			cur = interval{Start: low, Last: low}
			return true
		})
		if started {
			runs = append(runs, cur)
		}
		*c = container{typ: typeRun, runs: runs, card: c.card}
	}
}

// asBits returns a bitset view of the container, reusing c.bits when the
// container already is one. The returned slice must not be mutated unless
// owned is true.
func (c *container) asBits() (words []uint64, owned bool) {
	if c.typ == typeBitmap {
		return c.bits, false
	}
	words = make([]uint64, bitmapWords)
	c.iterate(func(low uint16) bool {
		words[low>>6] |= uint64(1) << (low & 63)
		return true
	})
	return words, true
}

// fromBits builds a container from a bitset with known cardinality, choosing
// the array layout when small. Takes ownership of words.
func fromBits(words []uint64, card int) *container {
	c := &container{typ: typeBitmap, bits: words, card: card}
	if card <= arrayMaxCard {
		c.toArray()
	}
	return c
}

// trailingZeros is bits.TrailingZeros64, aliased so bitmap.go needs no
// second math/bits import site.
func trailingZeros(w uint64) int { return bits.TrailingZeros64(w) }

func popcount(words []uint64) int {
	n := 0
	for _, w := range words {
		n += bits.OnesCount64(w)
	}
	return n
}

// intersectIntervals merge-intersects two sorted disjoint interval lists.
func intersectIntervals(a, b []interval) []interval {
	var out []interval
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		lo, hi := a[i].Start, a[i].Last
		if b[j].Start > lo {
			lo = b[j].Start
		}
		if b[j].Last < hi {
			hi = b[j].Last
		}
		if lo <= hi {
			out = append(out, interval{Start: lo, Last: hi})
		}
		if a[i].Last < b[j].Last {
			i++
		} else {
			j++
		}
	}
	return out
}

// subtractIntervals computes a \ b over sorted disjoint interval lists.
func subtractIntervals(a, b []interval) []interval {
	var out []interval
	j := 0
	for _, r := range a {
		lo := int(r.Start)
		hi := int(r.Last)
		for j < len(b) && int(b[j].Last) < lo {
			j++
		}
		k := j
		for k < len(b) && int(b[k].Start) <= hi {
			if int(b[k].Start) > lo {
				out = append(out, interval{Start: uint16(lo), Last: b[k].Start - 1})
			}
			if int(b[k].Last) >= hi {
				lo = hi + 1
				break
			}
			lo = int(b[k].Last) + 1
			k++
		}
		if lo <= hi {
			out = append(out, interval{Start: uint16(lo), Last: uint16(hi)})
		}
	}
	return out
}

// unionIntervals merge-unions two sorted disjoint interval lists, coalescing
// touching runs.
func unionIntervals(a, b []interval) []interval {
	out := make([]interval, 0, len(a)+len(b))
	i, j := 0, 0
	push := func(r interval) {
		if n := len(out); n > 0 && int(out[n-1].Last)+1 >= int(r.Start) {
			if r.Last > out[n-1].Last {
				out[n-1].Last = r.Last
			}
			return
		}
		out = append(out, r)
	}
	for i < len(a) || j < len(b) {
		if j >= len(b) || (i < len(a) && a[i].Start <= b[j].Start) {
			push(a[i])
			i++
		} else {
			push(b[j])
			j++
		}
	}
	return out
}

func intervalsCard(runs []interval) int {
	n := 0
	for _, r := range runs {
		n += int(r.Last-r.Start) + 1
	}
	return n
}

// runContainer wraps an interval list as a normalized container, demoting to
// array/bitset when run encoding is not the smallest layout.
func runContainer(runs []interval) *container {
	c := &container{typ: typeRun, runs: runs, card: intervalsCard(runs)}
	if len(runs) == 0 {
		return &container{typ: typeArray}
	}
	if 4*len(runs) >= 2*c.card && c.card <= arrayMaxCard {
		c.toArray()
	} else if 4*len(runs) >= 8*bitmapWords {
		c.toBitmap()
	}
	return c
}

// andContainers returns a ∩ b as a fresh container.
func andContainers(a, b *container) *container {
	if a.typ == typeRun && b.typ == typeRun {
		return runContainer(intersectIntervals(a.runs, b.runs))
	}
	// Array-vs-anything: probe the other side.
	if a.typ == typeArray || b.typ == typeArray {
		small, big := a, b
		if b.typ == typeArray && (a.typ != typeArray || len(b.arr) < len(a.arr)) {
			small, big = b, a
		}
		out := &container{typ: typeArray}
		for _, v := range small.arr {
			if big.contains(v) {
				out.arr = append(out.arr, v)
			}
		}
		out.card = len(out.arr)
		return out
	}
	aw, _ := a.asBits()
	bw, _ := b.asBits()
	words := make([]uint64, bitmapWords)
	for i := range words {
		words[i] = aw[i] & bw[i]
	}
	return fromBits(words, popcount(words))
}

// andCardContainers returns |a ∩ b| without building the result.
func andCardContainers(a, b *container) int64 {
	if a.typ == typeRun && b.typ == typeRun {
		return int64(intervalsCard(intersectIntervals(a.runs, b.runs)))
	}
	if a.typ == typeArray || b.typ == typeArray {
		small, big := a, b
		if b.typ == typeArray && (a.typ != typeArray || len(b.arr) < len(a.arr)) {
			small, big = b, a
		}
		var n int64
		for _, v := range small.arr {
			if big.contains(v) {
				n++
			}
		}
		return n
	}
	aw, _ := a.asBits()
	bw, _ := b.asBits()
	var n int64
	for i := range aw {
		n += int64(bits.OnesCount64(aw[i] & bw[i]))
	}
	return n
}

// orContainers returns a ∪ b as a fresh container.
func orContainers(a, b *container) *container {
	if a.typ == typeRun && b.typ == typeRun {
		return runContainer(unionIntervals(a.runs, b.runs))
	}
	if a.typ == typeArray && b.typ == typeArray && a.card+b.card <= arrayMaxCard {
		out := &container{typ: typeArray, arr: make([]uint16, 0, a.card+b.card)}
		i, j := 0, 0
		for i < len(a.arr) || j < len(b.arr) {
			switch {
			case j >= len(b.arr) || (i < len(a.arr) && a.arr[i] < b.arr[j]):
				out.arr = append(out.arr, a.arr[i])
				i++
			case i >= len(a.arr) || b.arr[j] < a.arr[i]:
				out.arr = append(out.arr, b.arr[j])
				j++
			default:
				out.arr = append(out.arr, a.arr[i])
				i++
				j++
			}
		}
		out.card = len(out.arr)
		return out
	}
	aw, _ := a.asBits()
	bw, _ := b.asBits()
	words := make([]uint64, bitmapWords)
	for i := range words {
		words[i] = aw[i] | bw[i]
	}
	return fromBits(words, popcount(words))
}

// andNotContainers returns a \ b as a fresh container.
func andNotContainers(a, b *container) *container {
	if a.typ == typeRun && b.typ == typeRun {
		return runContainer(subtractIntervals(a.runs, b.runs))
	}
	if a.typ == typeArray {
		out := &container{typ: typeArray}
		for _, v := range a.arr {
			if !b.contains(v) {
				out.arr = append(out.arr, v)
			}
		}
		out.card = len(out.arr)
		return out
	}
	aw, _ := a.asBits()
	bw, _ := b.asBits()
	words := make([]uint64, bitmapWords)
	for i := range words {
		words[i] = aw[i] &^ bw[i]
	}
	return fromBits(words, popcount(words))
}
