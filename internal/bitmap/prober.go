package bitmap

// Prober answers repeated Contains probes against one bitmap, caching the
// container of the last probed high key. Scan-side probe streams (the
// engine's bitmap-probe join walks a rid-clustered heap in order) hit the
// same 64Ki-value container for long stretches, so the per-probe binary
// search over container keys collapses to a single comparison. A Prober is
// not safe for concurrent use — each worker takes its own — but any number
// of Probers may share one bitmap as long as nothing mutates it.
type Prober struct {
	b     *Bitmap
	key   uint64
	c     *container
	valid bool
}

// NewProber returns a probe cursor over b (which must not be mutated while
// the prober is in use). A nil bitmap yields a prober that always answers
// false.
func NewProber(b *Bitmap) *Prober { return &Prober{b: b} }

// Contains reports whether v is in the set.
func (p *Prober) Contains(v int64) bool {
	if p.b == nil || v < 0 {
		return false
	}
	key := uint64(v) >> 16
	if !p.valid || key != p.key {
		p.key = key
		p.valid = true
		if i := p.b.findKey(key); i >= 0 {
			p.c = p.b.cts[i]
		} else {
			p.c = nil
		}
	}
	return p.c != nil && p.c.contains(uint16(v))
}
