package bitmap

import (
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
)

// Materialization: turning a bitmap back into an ascending []int64 is the
// inner loop of every checkout (the record fetch joins against the
// materialized rid list), so it gets two fast paths. Small sets fill a
// preallocated slice with one sequential typed loop per container. Large sets
// split the work into segments — sub-container ranges whose destination
// offsets are known up front from cardinality prefix sums — and a worker pool
// fills the segments concurrently. Sub-container splitting matters: a 10k-rid
// membership usually lives in a single 64Ki-value container, so
// container-granularity parallelism would degenerate to one worker.

// materializeMinValues is the cardinality below which the sequential fill
// always wins: goroutine fan-out costs a few microseconds, about what filling
// 8k values costs in one loop.
const materializeMinValues = 8192

// materializeWorkers, when set, overrides the GOMAXPROCS-derived worker count
// (tests pin it; 0 restores the default).
var materializeWorkers atomic.Int32

// SetMaterializeWorkers overrides the parallel-fill worker count. n <= 0
// restores the GOMAXPROCS-aware default. Intended for tests and benchmarks.
func SetMaterializeWorkers(n int) {
	if n < 0 {
		n = 0
	}
	materializeWorkers.Store(int32(n))
}

// MaterializeWorkers reports the worker count parallel fills will use:
// GOMAXPROCS capped at 16 (memory bandwidth saturates well before that on
// wider boxes), unless overridden by SetMaterializeWorkers.
func MaterializeWorkers() int {
	if v := materializeWorkers.Load(); v > 0 {
		return int(v)
	}
	w := runtime.GOMAXPROCS(0)
	if w > 16 {
		w = 16
	}
	if w < 1 {
		w = 1
	}
	return w
}

// matSeg is one independently fillable slice of the output: a sub-range of a
// single container plus the destination window its values land in.
type matSeg struct {
	c   *container
	dst []int64
	hi  int64 // container key << 16
	typ uint8
	// typeArray: arr index range [lo,end). typeBitmap: word index range
	// [lo,end). typeRun: inclusive value range [lo,end].
	lo, end int
}

func (s *matSeg) fill() {
	d := s.dst
	switch s.typ {
	case typeArray:
		for i, low := range s.c.arr[s.lo:s.end] {
			d[i] = s.hi | int64(low)
		}
	case typeBitmap:
		idx := 0
		for w := s.lo; w < s.end; w++ {
			word := s.c.bits[w]
			base := s.hi | int64(w<<6)
			for word != 0 {
				d[idx] = base | int64(trailingZeros(word))
				idx++
				word &= word - 1
			}
		}
	case typeRun:
		idx := 0
		for v := s.lo; v <= s.end; v++ {
			d[idx] = s.hi | int64(v)
			idx++
		}
	}
}

// planSegments cuts the bitmap into segments of roughly target values each,
// assigning every segment its destination window in out. The plan pass is a
// single cheap walk: array and run containers cut on index arithmetic alone,
// bitset containers pay one popcount per word (64 values) to learn the
// destination offsets.
func (b *Bitmap) planSegments(out []int64, target int) []matSeg {
	segs := make([]matSeg, 0, len(b.cts)+len(out)/target)
	off := 0
	for i, key := range b.keys {
		c := b.cts[i]
		hi := int64(key) << 16
		switch c.typ {
		case typeArray:
			for lo := 0; lo < len(c.arr); lo += target {
				end := lo + target
				if end > len(c.arr) {
					end = len(c.arr)
				}
				segs = append(segs, matSeg{c: c, dst: out[off : off+end-lo], hi: hi, typ: typeArray, lo: lo, end: end})
				off += end - lo
			}
		case typeBitmap:
			lo, cnt := 0, 0
			for w := range c.bits {
				cnt += bits.OnesCount64(c.bits[w])
				if cnt >= target || w == len(c.bits)-1 {
					if cnt > 0 {
						segs = append(segs, matSeg{c: c, dst: out[off : off+cnt], hi: hi, typ: typeBitmap, lo: lo, end: w + 1})
						off += cnt
					}
					lo, cnt = w+1, 0
				}
			}
		case typeRun:
			for _, r := range c.runs {
				for v := int(r.Start); v <= int(r.Last); v += target {
					end := v + target - 1
					if end > int(r.Last) {
						end = int(r.Last)
					}
					segs = append(segs, matSeg{c: c, dst: out[off : off+end-v+1], hi: hi, typ: typeRun, lo: v, end: end})
					off += end - v + 1
				}
			}
		}
	}
	return segs
}

// fillInto materializes the set into out (len(out) must equal Cardinality),
// in parallel when the set is large enough and workers allow.
func (b *Bitmap) fillInto(out []int64, workers int) {
	if int64(len(out)) < materializeMinValues || workers <= 1 {
		b.fillSequential(out)
		return
	}
	target := len(out) / (workers * 4)
	if target < 2048 {
		target = 2048
	}
	segs := b.planSegments(out, target)
	if len(segs) <= 1 {
		b.fillSequential(out)
		return
	}
	if workers > len(segs) {
		workers = len(segs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(len(segs)) {
					return
				}
				segs[i].fill()
			}
		}()
	}
	// The calling goroutine works the same queue instead of blocking idle.
	for {
		i := next.Add(1) - 1
		if i >= int64(len(segs)) {
			break
		}
		segs[i].fill()
	}
	wg.Wait()
}

// fillSequential is the single-goroutine fill: the same typed per-container
// loops as the parallel segments, writing through one running index.
func (b *Bitmap) fillSequential(out []int64) {
	idx := 0
	for i, key := range b.keys {
		hi := int64(key) << 16
		c := b.cts[i]
		switch c.typ {
		case typeArray:
			for _, low := range c.arr {
				out[idx] = hi | int64(low)
				idx++
			}
		case typeBitmap:
			for w, word := range c.bits {
				base := hi | int64(w<<6)
				for word != 0 {
					out[idx] = base | int64(trailingZeros(word))
					idx++
					word &= word - 1
				}
			}
		case typeRun:
			for _, r := range c.runs {
				for v := int(r.Start); v <= int(r.Last); v++ {
					out[idx] = hi | int64(v)
					idx++
				}
			}
		}
	}
}
