package merge

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"orpheusdb/internal/bitmap"
	"orpheusdb/internal/engine"
	"orpheusdb/internal/vgraph"
)

func bm(vals ...int64) *bitmap.Bitmap { return bitmap.FromSlice(vals) }

// refThreeWay is the naive reference: keep base records not deleted by
// either side, plus everything either side added.
func refThreeWay(base, a, b map[int64]bool) map[int64]bool {
	out := make(map[int64]bool)
	for v := range base {
		if a[v] && b[v] {
			out[v] = true
		}
	}
	for v := range a {
		if !base[v] {
			out[v] = true
		}
	}
	for v := range b {
		if !base[v] {
			out[v] = true
		}
	}
	// Records in both sides but not base (shared non-base ancestry).
	for v := range a {
		if b[v] {
			out[v] = true
		}
	}
	return out
}

func toMap(b *bitmap.Bitmap) map[int64]bool {
	out := make(map[int64]bool)
	b.Iterate(func(v int64) bool { out[v] = true; return true })
	return out
}

func mapsEqual(a, b map[int64]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for v := range a {
		if !b[v] {
			return false
		}
	}
	return true
}

func TestThreeWayBasics(t *testing.T) {
	cases := []struct {
		name               string
		base, ours, theirs []int64
		want               []int64
	}{
		{"identity", []int64{1, 2}, []int64{1, 2}, []int64{1, 2}, []int64{1, 2}},
		{"ours-adds", []int64{1}, []int64{1, 2}, []int64{1}, []int64{1, 2}},
		{"theirs-adds", []int64{1}, []int64{1}, []int64{1, 3}, []int64{1, 3}},
		{"both-add", []int64{1}, []int64{1, 2}, []int64{1, 3}, []int64{1, 2, 3}},
		{"ours-deletes", []int64{1, 2}, []int64{1}, []int64{1, 2}, []int64{1}},
		{"theirs-deletes", []int64{1, 2}, []int64{1, 2}, []int64{2}, []int64{2}},
		{"delete-both-sides", []int64{1, 2, 3}, []int64{1, 2}, []int64{2, 3}, []int64{2}},
		{"empty-base", nil, []int64{1, 2}, []int64{2, 3}, []int64{1, 2, 3}},
		{"disjoint", []int64{9}, []int64{1}, []int64{2}, []int64{1, 2}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := ThreeWay(bm(c.base...), bm(c.ours...), bm(c.theirs...))
			if !got.Equal(bm(c.want...)) {
				t.Fatalf("ThreeWay(%v, %v, %v) = %v, want %v",
					c.base, c.ours, c.theirs, got.ToSlice(), c.want)
			}
		})
	}
}

// TestThreeWayProperties checks the formula against the map reference and
// its algebraic laws over random sets.
func TestThreeWayProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	randSet := func(n int) *bitmap.Bitmap {
		s := bitmap.New()
		for i := 0; i < n; i++ {
			s.Add(int64(rng.Intn(200)))
		}
		return s
	}
	for trial := 0; trial < 500; trial++ {
		base := randSet(rng.Intn(50))
		ours := bitmap.Or(bitmap.AndNot(base, randSet(rng.Intn(30))), randSet(rng.Intn(20)))
		theirs := bitmap.Or(bitmap.AndNot(base, randSet(rng.Intn(30))), randSet(rng.Intn(20)))

		got := ThreeWay(base, ours, theirs)
		want := refThreeWay(toMap(base), toMap(ours), toMap(theirs))
		if !mapsEqual(toMap(got), want) {
			t.Fatalf("trial %d: ThreeWay disagrees with reference model", trial)
		}
		// Commutative in (ours, theirs).
		if !got.Equal(ThreeWay(base, theirs, ours)) {
			t.Fatalf("trial %d: ThreeWay not commutative", trial)
		}
		// Idempotent: merging a version with itself against itself is it.
		if !ThreeWay(ours, ours, ours).Equal(ours) {
			t.Fatalf("trial %d: ThreeWay(x,x,x) != x", trial)
		}
		// Merging an unchanged side returns the other side.
		if !ThreeWay(base, base, theirs).Equal(theirs) {
			t.Fatalf("trial %d: ThreeWay(base,base,theirs) != theirs", trial)
		}
	}
}

// memFetch builds a Fetch over an in-memory record table.
func memFetch(records map[int64]Record) func(*bitmap.Bitmap) ([]Record, error) {
	return func(set *bitmap.Bitmap) ([]Record, error) {
		var out []Record
		var err error
		set.Iterate(func(v int64) bool {
			r, ok := records[v]
			if !ok {
				err = fmt.Errorf("no record %d", v)
				return false
			}
			out = append(out, r)
			return true
		})
		return out, err
	}
}

func rec(rid int64, key string, val string) Record {
	return Record{
		RID:     rid,
		Key:     engine.EncodeKey(engine.StringValue(key)),
		Display: key,
		Row:     engine.Row{engine.StringValue(key), engine.StringValue(val)},
	}
}

func TestMergeConflicts(t *testing.T) {
	// Base: k1@1, k2@2. Ours modifies k1 (rid 3) and deletes k2.
	// Theirs modifies k1 differently (rid 4) and keeps k2.
	records := map[int64]Record{
		1: rec(1, "k1", "base"),
		2: rec(2, "k2", "base"),
		3: rec(3, "k1", "ours"),
		4: rec(4, "k1", "theirs"),
	}
	in := Input{
		Base:   bm(1, 2),
		Ours:   bm(3),
		Theirs: bm(4, 2),
		Keyed:  true,
		Fetch:  memFetch(records),
	}

	res, err := Merge(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Members != nil {
		t.Fatalf("fail policy with conflicts should not produce members, got %v", res.Members.ToSlice())
	}
	if len(res.Conflicts) != 1 || res.Conflicts[0].Key != "k1" || res.Conflicts[0].Kind() != "modify/modify" {
		t.Fatalf("conflicts = %+v", res.Conflicts)
	}

	in.Policy = PolicyOurs
	res, err = Merge(in)
	if err != nil {
		t.Fatal(err)
	}
	// k1 resolves to ours (rid 3); k2 deleted by ours (only ours touched it).
	if !res.Members.Equal(bm(3)) {
		t.Fatalf("ours policy members = %v, want [3]", res.Members.ToSlice())
	}

	in.Policy = PolicyTheirs
	res, err = Merge(in)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Members.Equal(bm(4)) {
		t.Fatalf("theirs policy members = %v, want [4]", res.Members.ToSlice())
	}
}

func TestMergeModifyDelete(t *testing.T) {
	records := map[int64]Record{
		1: rec(1, "k1", "base"),
		3: rec(3, "k1", "ours"),
	}
	in := Input{
		Base:   bm(1),
		Ours:   bm(3),        // modified k1
		Theirs: bitmap.New(), // deleted k1
		Keyed:  true,
		Fetch:  memFetch(records),
	}
	res, err := Merge(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Conflicts) != 1 || res.Conflicts[0].Kind() != "modify/delete" {
		t.Fatalf("conflicts = %+v", res.Conflicts)
	}
	in.Policy = PolicyTheirs
	if res, err = Merge(in); err != nil {
		t.Fatal(err)
	}
	if !res.Members.IsEmpty() {
		t.Fatalf("theirs (deletion) should win: members = %v", res.Members.ToSlice())
	}
	in.Policy = PolicyOurs
	if res, err = Merge(in); err != nil {
		t.Fatal(err)
	}
	if !res.Members.Equal(bm(3)) {
		t.Fatalf("ours (modification) should win: members = %v", res.Members.ToSlice())
	}
}

func TestMergeAddAddIdentical(t *testing.T) {
	// Both sides independently add identical content under different rids:
	// converged, not a conflict, and only one rid survives.
	records := map[int64]Record{
		1: rec(1, "k0", "base"),
		5: rec(5, "new", "same"),
		6: rec(6, "new", "same"),
	}
	in := Input{
		Base:   bm(1),
		Ours:   bm(1, 5),
		Theirs: bm(1, 6),
		Keyed:  true,
		Fetch:  memFetch(records),
	}
	res, err := Merge(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Conflicts) != 0 {
		t.Fatalf("identical adds conflicted: %+v", res.Conflicts)
	}
	if !res.Members.Equal(bm(1, 5)) {
		t.Fatalf("members = %v, want [1 5]", res.Members.ToSlice())
	}
}

func TestMergeAddAddDifferent(t *testing.T) {
	records := map[int64]Record{
		5: rec(5, "new", "ours"),
		6: rec(6, "new", "theirs"),
	}
	in := Input{
		Base:   bitmap.New(),
		Ours:   bm(5),
		Theirs: bm(6),
		Keyed:  true,
		Fetch:  memFetch(records),
	}
	res, err := Merge(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Conflicts) != 1 || res.Conflicts[0].Kind() != "add/add" {
		t.Fatalf("conflicts = %+v", res.Conflicts)
	}
	in.Policy = PolicyTheirs
	if res, err = Merge(in); err != nil {
		t.Fatal(err)
	}
	if !res.Members.Equal(bm(6)) {
		t.Fatalf("theirs policy: members = %v, want [6]", res.Members.ToSlice())
	}
}

func TestMergeKeylessNeverConflicts(t *testing.T) {
	in := Input{
		Base:   bm(1, 2),
		Ours:   bm(2, 3),
		Theirs: bm(2, 4),
		Keyed:  false,
		Fetch: func(*bitmap.Bitmap) ([]Record, error) {
			return nil, fmt.Errorf("keyless merge must not fetch")
		},
	}
	res, err := Merge(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Conflicts) != 0 || !res.Members.Equal(bm(2, 3, 4)) {
		t.Fatalf("keyless merge = %+v", res)
	}
}

// TestMergeConflictSymmetry: swapping ours and theirs yields the same
// conflict keys and mirrored policy outcomes.
func TestMergeConflictSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		nKeys := 2 + rng.Intn(6)
		records := make(map[int64]Record)
		nextRID := int64(1)
		addRec := func(k int, val string) int64 {
			rid := nextRID
			nextRID++
			records[rid] = rec(rid, fmt.Sprintf("k%d", k), val)
			return rid
		}
		base, ours, theirs := bitmap.New(), bitmap.New(), bitmap.New()
		for k := 0; k < nKeys; k++ {
			inBase := rng.Intn(2) == 0
			var baseRID int64
			if inBase {
				baseRID = addRec(k, "base")
				base.Add(baseRID)
			}
			for _, side := range []*bitmap.Bitmap{ours, theirs} {
				switch rng.Intn(3) {
				case 0: // keep/absent
					if inBase {
						side.Add(baseRID)
					}
				case 1: // modify/add
					side.Add(addRec(k, fmt.Sprintf("v%d", rng.Intn(3))))
				case 2: // delete/absent
				}
			}
		}
		fwd, err := Merge(Input{Base: base, Ours: ours, Theirs: theirs, Keyed: true, Fetch: memFetch(records)})
		if err != nil {
			t.Fatal(err)
		}
		rev, err := Merge(Input{Base: base, Ours: theirs, Theirs: ours, Keyed: true, Fetch: memFetch(records)})
		if err != nil {
			t.Fatal(err)
		}
		keysOf := func(cs []Conflict) []string {
			out := make([]string, len(cs))
			for i, c := range cs {
				out[i] = c.Key
			}
			sort.Strings(out)
			return out
		}
		fk, rk := keysOf(fwd.Conflicts), keysOf(rev.Conflicts)
		if len(fk) != len(rk) {
			t.Fatalf("trial %d: conflict count asymmetric: %v vs %v", trial, fk, rk)
		}
		for i := range fk {
			if fk[i] != rk[i] {
				t.Fatalf("trial %d: conflict keys asymmetric: %v vs %v", trial, fk, rk)
			}
		}
		if len(fwd.Conflicts) == 0 {
			// Conflict-free: result must equal the pure bitmap formula up to
			// converged add/add dedup, and commute up to record content.
			if !rowsOf(t, fwd.Members, records).equal(rowsOf(t, rev.Members, records)) {
				t.Fatalf("trial %d: conflict-free merge not content-commutative", trial)
			}
		} else {
			// PolicyOurs one way == PolicyTheirs the other way.
			po, err := Merge(Input{Base: base, Ours: ours, Theirs: theirs, Keyed: true, Fetch: memFetch(records), Policy: PolicyOurs})
			if err != nil {
				t.Fatal(err)
			}
			pt, err := Merge(Input{Base: base, Ours: theirs, Theirs: ours, Keyed: true, Fetch: memFetch(records), Policy: PolicyTheirs})
			if err != nil {
				t.Fatal(err)
			}
			if !rowsOf(t, po.Members, records).equal(rowsOf(t, pt.Members, records)) {
				t.Fatalf("trial %d: ours/theirs not mirror images", trial)
			}
		}
	}
}

// rowSet is a content multiset for order/rid-insensitive comparison.
type rowSet map[string]int

func rowsOf(t *testing.T, members *bitmap.Bitmap, records map[int64]Record) rowSet {
	t.Helper()
	out := make(rowSet)
	members.Iterate(func(v int64) bool {
		r, ok := records[v]
		if !ok {
			t.Fatalf("merged member %d has no record", v)
		}
		out[engine.EncodeKey(r.Row...)]++
		return true
	})
	return out
}

func (a rowSet) equal(b rowSet) bool {
	if len(a) != len(b) {
		return false
	}
	for k, n := range a {
		if b[k] != n {
			return false
		}
	}
	return true
}

func TestLCA(t *testing.T) {
	// DAG:      1
	//          / \
	//         2   3
	//         |  / \
	//         4 5   6
	//          \|
	//           7 (merge of 4,5)
	g := vgraph.New()
	add := func(v vgraph.VersionID, parents ...vgraph.VersionID) {
		w := make([]int64, len(parents))
		if err := g.AddVersion(v, parents, 1, w); err != nil {
			t.Fatal(err)
		}
	}
	add(1)
	add(2, 1)
	add(3, 1)
	add(4, 2)
	add(5, 3)
	add(6, 3)
	add(7, 4, 5)

	cases := []struct {
		a, b, want vgraph.VersionID
	}{
		{2, 3, 1},
		{4, 5, 1},
		{5, 6, 3},
		{7, 6, 3}, // 7 reaches 3 via 5
		{4, 4, 4},
		{1, 7, 1},
	}
	for _, c := range cases {
		got, ok := LCA(g, c.a, c.b)
		if !ok || got != c.want {
			t.Errorf("LCA(%d,%d) = %d,%v; want %d", c.a, c.b, got, ok, c.want)
		}
	}

	// Disjoint roots share no ancestor.
	add(10)
	if _, ok := LCA(g, 10, 7); ok {
		t.Error("disjoint roots should have no LCA")
	}
}

func TestParsePolicy(t *testing.T) {
	for _, s := range []string{"", "fail", "ours", "theirs", "OURS", "THEIRS", "FAIL"} {
		if _, err := ParsePolicy(s); err != nil {
			t.Errorf("ParsePolicy(%q): %v", s, err)
		}
	}
	if _, err := ParsePolicy("nonsense"); err == nil {
		t.Error("ParsePolicy should reject unknown policies")
	}
}
