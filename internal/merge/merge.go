// Package merge implements three-way reconciliation of version record sets:
// lowest-common-ancestor discovery over the version DAG and the record-set
// merge itself, computed entirely with bitmap algebra over version rlists.
// The defining operation of branchable storage (ForkBase-style) reduces to
// cheap set operations here because membership is already compressed bitmaps:
//
//	merged = (ours ∩ theirs) ∪ (ours − base) ∪ (theirs − base)
//
// which keeps every record both sides still hold, adds what either side
// added, and honors deletions made on either side. On datasets with a primary
// key the package additionally detects record-level conflicts — both sides
// changed the record behind the same key to different outcomes — and applies
// a pluggable resolution policy (ours/theirs/fail).
//
// The package is deliberately ignorant of internal/core: it sees membership
// bitmaps and a fetch callback that materializes records with their key
// encoding, so it can be property-tested in isolation against naive
// reference implementations.
package merge

import (
	"fmt"
	"sort"

	"orpheusdb/internal/bitmap"
	"orpheusdb/internal/engine"
	"orpheusdb/internal/vgraph"
)

// Policy selects how record-level conflicts are resolved.
type Policy uint8

// Resolution policies: PolicyFail surfaces conflicts to the caller without
// producing a merged set; PolicyOurs keeps the first (ours) side's outcome;
// PolicyTheirs keeps the second side's.
const (
	PolicyFail Policy = iota
	PolicyOurs
	PolicyTheirs
)

// ParsePolicy maps the SQL/CLI/HTTP spellings onto a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "fail", "FAIL":
		return PolicyFail, nil
	case "ours", "OURS":
		return PolicyOurs, nil
	case "theirs", "THEIRS":
		return PolicyTheirs, nil
	}
	return 0, fmt.Errorf("merge: unknown policy %q (want fail, ours, or theirs)", s)
}

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyFail:
		return "fail"
	case PolicyOurs:
		return "ours"
	case PolicyTheirs:
		return "theirs"
	}
	return fmt.Sprintf("policy(%d)", uint8(p))
}

// Record is one materialized record as the merge sees it: the record id, the
// primary-key encoding (empty on keyless datasets), a human-readable form of
// the key for reports, and the data row.
type Record struct {
	RID int64
	// Key is the collision-free key encoding records are matched by.
	Key string
	// Display is the key rendered for humans (conflict reports, errors).
	Display string
	Row     engine.Row
}

// Conflict reports one key both sides changed to different outcomes. A nil
// side means that side deleted the record; a nil Base means both sides added
// the key independently (add/add). Key is the human-readable key form.
type Conflict struct {
	Key    string
	Base   *Record
	Ours   *Record
	Theirs *Record
}

// Kind classifies the conflict for reports: "add/add", "modify/modify",
// "modify/delete", or "delete/modify" (ours side named first).
func (c *Conflict) Kind() string {
	switch {
	case c.Base == nil:
		return "add/add"
	case c.Ours == nil:
		return "delete/modify"
	case c.Theirs == nil:
		return "modify/delete"
	}
	return "modify/modify"
}

// Input describes one three-way merge.
type Input struct {
	// Base, Ours, Theirs are the record-membership bitmaps (rlists) of the
	// merge base (typically the LCA) and the two sides.
	Base, Ours, Theirs *bitmap.Bitmap
	// Keyed marks a dataset with a primary key; without one, records are
	// content-addressed and conflicts cannot exist.
	Keyed bool
	// Fetch materializes the records of a membership set, Key filled when
	// the dataset is keyed. Only the changed slices (side − base and
	// base − side) are ever fetched, never a full version.
	Fetch func(*bitmap.Bitmap) ([]Record, error)
	// Policy resolves conflicts; PolicyFail reports them instead.
	Policy Policy
}

// Result is the outcome of a merge computation.
type Result struct {
	// Members is the merged record set. With PolicyFail and conflicts
	// present it is nil: there is no merged set to commit.
	Members *bitmap.Bitmap
	// Conflicts lists the keys both sides changed incompatibly, sorted by
	// key. Under PolicyOurs/PolicyTheirs they were resolved into Members.
	Conflicts []Conflict
}

// ThreeWay computes the record-set merge formula over membership bitmaps:
// keep what both sides kept, add what either side added, drop what either
// side deleted. Pure bitmap algebra — no record is materialized.
func ThreeWay(base, ours, theirs *bitmap.Bitmap) *bitmap.Bitmap {
	kept := bitmap.And(ours, theirs)
	added := bitmap.Or(bitmap.AndNot(ours, base), bitmap.AndNot(theirs, base))
	return bitmap.Or(kept, added)
}

// sideOutcome is what one side did to a key: rec == nil means deleted.
type sideOutcome struct {
	touched bool
	rec     *Record
}

// outcomes folds a side's added and deleted records into a key → outcome
// map. A modification appears as both a delete (old rid) and an add (new
// rid) for the same key; the add wins, because the key's new state is what
// matters.
func outcomes(added, deleted []Record) map[string]sideOutcome {
	out := make(map[string]sideOutcome, len(added)+len(deleted))
	for i := range added {
		out[added[i].Key] = sideOutcome{touched: true, rec: &added[i]}
	}
	for i := range deleted {
		if _, ok := out[deleted[i].Key]; !ok {
			out[deleted[i].Key] = sideOutcome{touched: true}
		}
	}
	return out
}

// sameOutcome reports whether two non-conflicting outcomes converged: both
// deleted, the same record, or byte-identical content under different rids
// (both sides added an indistinguishable record independently).
func sameOutcome(a, b sideOutcome) bool {
	if a.rec == nil || b.rec == nil {
		return a.rec == nil && b.rec == nil
	}
	if a.rec.RID == b.rec.RID {
		return true
	}
	return engine.EncodeKey(a.rec.Row...) == engine.EncodeKey(b.rec.Row...)
}

// Merge computes the three-way merge of Input. The membership result always
// starts from the ThreeWay formula; on keyed datasets, keys changed on both
// sides are then reconciled record by record, and the policy decides
// conflicting outcomes. The conflict scan touches only the changed slices
// (adds and deletes relative to base), so merge cost scales with the size of
// the divergence, not the size of the versions.
func Merge(in Input) (*Result, error) {
	members := ThreeWay(in.Base, in.Ours, in.Theirs)
	if !in.Keyed {
		return &Result{Members: members}, nil
	}
	addO := bitmap.AndNot(in.Ours, in.Base)
	addT := bitmap.AndNot(in.Theirs, in.Base)
	delO := bitmap.AndNot(in.Base, in.Ours)
	delT := bitmap.AndNot(in.Base, in.Theirs)
	if (addO.IsEmpty() && delO.IsEmpty()) || (addT.IsEmpty() && delT.IsEmpty()) {
		// One side never diverged from base: nothing to conflict with.
		return &Result{Members: members}, nil
	}
	fetch4 := func(sets ...*bitmap.Bitmap) ([][]Record, error) {
		out := make([][]Record, len(sets))
		for i, s := range sets {
			if s.IsEmpty() {
				continue
			}
			recs, err := in.Fetch(s)
			if err != nil {
				return nil, err
			}
			out[i] = recs
		}
		return out, nil
	}
	recs, err := fetch4(addO, addT, delO, delT)
	if err != nil {
		return nil, err
	}
	oursOut := outcomes(recs[0], recs[2])
	theirsOut := outcomes(recs[1], recs[3])

	// Base records behind every changed key, for conflict reports.
	baseByKey := make(map[string]*Record, len(recs[2])+len(recs[3]))
	for _, side := range [][]Record{recs[2], recs[3]} {
		for i := range side {
			baseByKey[side[i].Key] = &side[i]
		}
	}

	var conflicts []Conflict
	for key, ours := range oursOut {
		theirs, ok := theirsOut[key]
		if !ok {
			continue // only ours touched the key; ThreeWay already applied it
		}
		if sameOutcome(ours, theirs) {
			// Converged. When both sides added identical content under
			// different rids, keep ours' rid so the merged version holds
			// the key once.
			if ours.rec != nil && theirs.rec != nil && ours.rec.RID != theirs.rec.RID {
				members = bitmap.AndNot(members, one(theirs.rec.RID))
			}
			continue
		}
		conflicts = append(conflicts, Conflict{
			Key:    displayOf(baseByKey[key], ours.rec, theirs.rec),
			Base:   baseByKey[key],
			Ours:   ours.rec,
			Theirs: theirs.rec,
		})
	}
	sort.Slice(conflicts, func(i, j int) bool { return conflicts[i].Key < conflicts[j].Key })

	switch in.Policy {
	case PolicyFail:
		if len(conflicts) > 0 {
			return &Result{Conflicts: conflicts}, nil
		}
	case PolicyOurs:
		for _, c := range conflicts {
			members = applyOutcome(members, c.Ours, c.Theirs)
		}
	case PolicyTheirs:
		for _, c := range conflicts {
			members = applyOutcome(members, c.Theirs, c.Ours)
		}
	default:
		return nil, fmt.Errorf("merge: unknown policy %d", in.Policy)
	}
	return &Result{Members: members, Conflicts: conflicts}, nil
}

// applyOutcome enforces the winning side's record for a conflicted key:
// the loser's added rid (if any) leaves the set, the winner's (if any) is
// guaranteed in. A winning deletion therefore just removes the loser's add —
// the base rid is already excluded by the ThreeWay formula, since the winner
// deleted it.
func applyOutcome(members *bitmap.Bitmap, winner, loser *Record) *bitmap.Bitmap {
	if loser != nil {
		members = bitmap.AndNot(members, one(loser.RID))
	}
	if winner != nil && !members.Contains(winner.RID) {
		members = bitmap.Or(members, one(winner.RID))
	}
	return members
}

// displayOf picks the human-readable key form from whichever record exists.
func displayOf(recs ...*Record) string {
	for _, r := range recs {
		if r != nil {
			return r.Display
		}
	}
	return ""
}

// one builds a single-value bitmap.
func one(v int64) *bitmap.Bitmap {
	b := bitmap.New()
	b.Add(v)
	return b
}

// LCA returns the lowest common ancestor of a and b in the version graph:
// the common ancestor (a and b count as their own ancestors) with the
// greatest depth, ties broken toward the highest version id so the choice is
// deterministic. ok is false when the two versions share no ancestry
// (disjoint roots); merging then proceeds against an empty base.
func LCA(g *vgraph.Graph, a, b vgraph.VersionID) (vgraph.VersionID, bool) {
	return LCAFromSets(AncestrySet(g, a), AncestrySet(g, b), func(v vgraph.VersionID) int {
		if n := g.Node(v); n != nil {
			return n.Level
		}
		return 0
	})
}

// AncestrySet builds the bitmap of v and all its transitive ancestors — the
// same shape the branch registry persists as a branch's lineage.
func AncestrySet(g *vgraph.Graph, v vgraph.VersionID) *bitmap.Bitmap {
	set := bitmap.New()
	if g.Has(v) {
		set.Add(int64(v))
		for _, p := range g.Ancestors(v) {
			set.Add(int64(p))
		}
	}
	return set
}

// LCAFromSets picks the deepest version common to two ancestry bitmaps (ties
// broken toward the highest id). Branch lineage bitmaps feed straight in, so
// branch-to-branch LCA discovery costs one bitmap intersection.
func LCAFromSets(a, b *bitmap.Bitmap, level func(vgraph.VersionID) int) (vgraph.VersionID, bool) {
	common := bitmap.And(a, b)
	best, bestLevel, found := vgraph.VersionID(0), -1, false
	common.Iterate(func(v int64) bool {
		vid := vgraph.VersionID(v)
		if l := level(vid); l > bestLevel || (l == bestLevel && vid > best) {
			best, bestLevel, found = vid, l, true
		}
		return true
	})
	return best, found
}
