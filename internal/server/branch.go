package server

import (
	"errors"
	"net/http"
	"time"

	orpheusdb "orpheusdb"
)

// Branch & merge endpoints: the HTTP face of the git-style branch workflow.
// Merges return the full conflict report; a merge refused under the fail
// policy answers 409 with the report in the error payload, so clients can
// render record-level conflicts and retry with ours/theirs.

type branchJSON struct {
	Name    string `json:"name"`
	Head    int64  `json:"head"`
	Created string `json:"created"`
	// LineageSize is the number of versions on the branch's ancestry
	// (head plus transitive ancestors).
	LineageSize int64 `json:"lineageSize"`
}

func branchToJSON(b *orpheusdb.BranchInfo) branchJSON {
	return branchJSON{
		Name:        b.Name,
		Head:        int64(b.Head),
		Created:     b.CreatedAt.UTC().Format(time.RFC3339Nano),
		LineageSize: b.Lineage.Cardinality(),
	}
}

func (s *Server) handleListBranches(w http.ResponseWriter, r *http.Request) {
	d, err := s.store.Dataset(r.PathValue("name"))
	if err != nil {
		writeError(w, err)
		return
	}
	branches := d.Branches()
	out := make([]branchJSON, 0, len(branches))
	for _, b := range branches {
		out = append(out, branchToJSON(b))
	}
	writeJSON(w, http.StatusOK, map[string]any{"dataset": d.Name(), "branches": out})
}

func (s *Server) handleCreateBranch(w http.ResponseWriter, r *http.Request) {
	d, err := s.store.Dataset(r.PathValue("name"))
	if err != nil {
		writeError(w, err)
		return
	}
	var req struct {
		Name string `json:"name"`
		// At anchors the branch: a version id or a branch name; empty
		// means the dataset's latest version.
		At string `json:"at"`
	}
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if req.Name == "" {
		writeError(w, badRequest("name is required"))
		return
	}
	at := orpheusdb.VersionID(0)
	if req.At != "" {
		if at, err = d.ResolveRef(req.At); err != nil {
			writeError(w, err)
			return
		}
	}
	b, err := d.CreateBranch(req.Name, at)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, branchToJSON(b))
}

func (s *Server) handleDeleteBranch(w http.ResponseWriter, r *http.Request) {
	d, err := s.store.Dataset(r.PathValue("name"))
	if err != nil {
		writeError(w, err)
		return
	}
	if err := d.DeleteBranch(r.PathValue("branch")); err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// conflictJSON is one record-level conflict in a merge report.
type conflictJSON struct {
	Key    string  `json:"key"`
	Kind   string  `json:"kind"`
	Base   [][]any `json:"base,omitempty"`
	Ours   [][]any `json:"ours,omitempty"`
	Theirs [][]any `json:"theirs,omitempty"`
}

func conflictsToJSON(conflicts []orpheusdb.MergeConflict) []conflictJSON {
	out := make([]conflictJSON, 0, len(conflicts))
	for _, c := range conflicts {
		cj := conflictJSON{Key: c.Key, Kind: c.Kind()}
		if c.Base != nil {
			cj.Base = encodeRows([]orpheusdb.Row{c.Base.Row})
		}
		if c.Ours != nil {
			cj.Ours = encodeRows([]orpheusdb.Row{c.Ours.Row})
		}
		if c.Theirs != nil {
			cj.Theirs = encodeRows([]orpheusdb.Row{c.Theirs.Row})
		}
		out = append(out, cj)
	}
	return out
}

func (s *Server) handleMerge(w http.ResponseWriter, r *http.Request) {
	d, err := s.store.Dataset(r.PathValue("name"))
	if err != nil {
		writeError(w, err)
		return
	}
	var req struct {
		// Ours is the merge target, Theirs the side merged in; each is a
		// version id or branch name. When Ours names a branch its head
		// advances to the result.
		Ours    string `json:"ours"`
		Theirs  string `json:"theirs"`
		Policy  string `json:"policy"`
		Message string `json:"message"`
	}
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if req.Ours == "" || req.Theirs == "" {
		writeError(w, badRequest("ours and theirs are required"))
		return
	}
	policy, err := orpheusdb.ParseMergePolicy(req.Policy)
	if err != nil {
		writeError(w, badRequest(err.Error()))
		return
	}
	res, err := d.MergeCtx(r.Context(), req.Ours, req.Theirs, policy, req.Message)
	if err != nil {
		var ce *orpheusdb.MergeConflictError
		if errors.As(err, &ce) {
			// Refused under the fail policy: 409 with the full report so
			// the client can render conflicts and retry with a policy.
			writeJSON(w, http.StatusConflict, map[string]any{
				"error": map[string]any{
					"code":      "merge_conflict",
					"message":   err.Error(),
					"conflicts": conflictsToJSON(res.Conflicts),
				},
			})
			return
		}
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"dataset":     d.Name(),
		"version":     int64(res.Version),
		"base":        int64(res.Base),
		"ours":        int64(res.Ours),
		"theirs":      int64(res.Theirs),
		"upToDate":    res.UpToDate,
		"fastForward": res.FastForward,
		"conflicts":   conflictsToJSON(res.Conflicts),
	})
}
