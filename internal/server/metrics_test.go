package server

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	orpheusdb "orpheusdb"
	"orpheusdb/internal/obs"
)

// promSample is one parsed exposition sample line.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

var promNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// parseProm parses the Prometheus text format strictly enough to catch
// malformed output: every line must be a comment, blank, or a sample of the
// form name{labels} value, and every sample's family must carry HELP and
// TYPE metadata.
func parseProm(t *testing.T, text string) (samples []promSample, types map[string]string) {
	t.Helper()
	types = map[string]string{}
	helps := map[string]string{}
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(parts) != 2 || !promNameRE.MatchString(parts[0]) {
				t.Fatalf("line %d: malformed HELP: %q", ln+1, line)
			}
			helps[parts[0]] = parts[1]
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# TYPE "), " ", 2)
			if len(parts) != 2 || !promNameRE.MatchString(parts[0]) {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			switch parts[1] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("line %d: unknown metric type %q", ln+1, parts[1])
			}
			types[parts[0]] = parts[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unexpected comment %q", ln+1, line)
		}
		s := promSample{labels: map[string]string{}}
		rest := line
		if i := strings.IndexByte(rest, '{'); i >= 0 {
			s.name = rest[:i]
			close := strings.LastIndexByte(rest, '}')
			if close < i {
				t.Fatalf("line %d: unbalanced braces: %q", ln+1, line)
			}
			for _, pair := range splitLabels(rest[i+1 : close]) {
				k, v, ok := strings.Cut(pair, "=")
				if !ok || len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
					t.Fatalf("line %d: malformed label %q", ln+1, pair)
				}
				uq := strings.NewReplacer(`\\`, `\`, `\"`, `"`, `\n`, "\n")
				s.labels[k] = uq.Replace(v[1 : len(v)-1])
			}
			rest = strings.TrimSpace(rest[close+1:])
		} else {
			fields := strings.Fields(rest)
			if len(fields) != 2 {
				t.Fatalf("line %d: malformed sample %q", ln+1, line)
			}
			s.name, rest = fields[0], fields[1]
		}
		if !promNameRE.MatchString(s.name) {
			t.Fatalf("line %d: bad metric name %q", ln+1, s.name)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			t.Fatalf("line %d: bad value in %q: %v", ln+1, line, err)
		}
		s.value = v
		fam := familyOf(s.name)
		if _, ok := types[fam]; !ok {
			t.Fatalf("line %d: sample %q before TYPE for %q", ln+1, s.name, fam)
		}
		if _, ok := helps[fam]; !ok {
			t.Fatalf("line %d: sample %q before HELP for %q", ln+1, s.name, fam)
		}
		samples = append(samples, s)
	}
	return samples, types
}

// splitLabels splits a label body on commas outside quotes.
func splitLabels(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}

// familyOf strips histogram sample suffixes back to the family name.
func familyOf(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

// labelsKey renders labels minus `le` as a stable series key.
func labelsKey(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != "le" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k + "=" + labels[k] + ";")
	}
	return b.String()
}

func scrape(t *testing.T, base string) (string, []promSample, map[string]string) {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("unexpected content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples, types := parseProm(t, string(body))
	return string(body), samples, types
}

func findSample(samples []promSample, name string, match map[string]string) (promSample, bool) {
	for _, s := range samples {
		if s.name != name {
			continue
		}
		ok := true
		for k, v := range match {
			if s.labels[k] != v {
				ok = false
				break
			}
		}
		if ok {
			return s, true
		}
	}
	return promSample{}, false
}

// TestMetricsExposition drives real traffic through the API, then checks the
// /metrics output parses, its histograms are internally consistent (buckets
// cumulative, +Inf bucket equal to _count), the expected families from every
// layer are present, and counters are monotonic across scrapes.
func TestMetricsExposition(t *testing.T) {
	ts, _ := newTestServer(t)
	initProtein(t, ts.URL)
	commitRows(t, ts.URL, [][]any{{1, 1, 0.5, "a"}, {1, 2, 1.25, "b"}}, nil, "first")

	checkout := func() {
		resp, err := http.Get(ts.URL + "/api/v1/datasets/prot/checkout?versions=1")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("checkout: %d", resp.StatusCode)
		}
	}
	checkout() // miss
	checkout() // hit
	if code, _ := doJSON(t, "POST", ts.URL+"/api/v1/query", map[string]any{
		"sql": "SELECT count(*) FROM VERSION 1 OF CVD prot",
	}); code != http.StatusOK {
		t.Fatalf("query: %d", code)
	}

	_, samples, types := scrape(t, ts.URL)

	// Histogram self-consistency: per series, buckets cumulative in le order
	// and the +Inf bucket equals the _count sample.
	type seriesKey struct{ fam, key string }
	buckets := map[seriesKey][]promSample{}
	counts := map[seriesKey]float64{}
	sums := map[seriesKey]bool{}
	for _, s := range samples {
		fam := familyOf(s.name)
		if types[fam] != "histogram" {
			continue
		}
		k := seriesKey{fam, labelsKey(s.labels)}
		switch {
		case strings.HasSuffix(s.name, "_bucket"):
			buckets[k] = append(buckets[k], s)
		case strings.HasSuffix(s.name, "_count"):
			counts[k] = s.value
		case strings.HasSuffix(s.name, "_sum"):
			sums[k] = true
		}
	}
	if len(buckets) == 0 {
		t.Fatal("no histogram series found")
	}
	for k, bs := range buckets {
		sort.Slice(bs, func(i, j int) bool { return parseLe(t, bs[i]) < parseLe(t, bs[j]) })
		prev := -1.0
		for _, b := range bs {
			if b.value < prev {
				t.Fatalf("%s{%s}: bucket counts not cumulative", k.fam, k.key)
			}
			prev = b.value
		}
		last := bs[len(bs)-1]
		if last.labels["le"] != "+Inf" {
			t.Fatalf("%s{%s}: missing +Inf bucket", k.fam, k.key)
		}
		if cnt, ok := counts[k]; !ok || cnt != last.value {
			t.Fatalf("%s{%s}: +Inf bucket %v != _count %v", k.fam, k.key, last.value, counts[k])
		}
		if !sums[k] {
			t.Fatalf("%s{%s}: missing _sum", k.fam, k.key)
		}
	}

	// Coverage: one family per instrumented layer.
	for _, want := range []struct {
		name   string
		labels map[string]string
	}{
		{"orpheus_http_request_seconds_count", map[string]string{"method": "GET", "route": "/api/v1/datasets/{name}/checkout"}},
		{"orpheus_http_requests_total", map[string]string{"method": "GET", "route": "/api/v1/datasets/{name}/checkout", "status": "200"}},
		{"orpheus_http_response_bytes_total", nil},
		{"orpheus_checkout_seconds_count", map[string]string{"result": "miss"}},
		{"orpheus_checkout_seconds_count", map[string]string{"result": "hit"}},
		{"orpheus_commit_seconds_count", nil},
		{"orpheus_merge_seconds_count", nil},
		{"orpheus_sql_parse_seconds_count", nil},
		{"orpheus_sql_execute_seconds_count", nil},
		{"orpheus_cache_hits_total", nil},
		{"orpheus_cache_misses_total", nil},
		{"orpheus_wal_enabled", nil},
		{"orpheus_engine_rows_scanned_total", nil},
		{"orpheus_datasets", nil},
	} {
		s, ok := findSample(samples, want.name, want.labels)
		if !ok {
			t.Fatalf("missing sample %s %v", want.name, want.labels)
		}
		// The traffic above must actually have moved the core series.
		switch want.name {
		case "orpheus_checkout_seconds_count", "orpheus_commit_seconds_count",
			"orpheus_sql_parse_seconds_count", "orpheus_sql_execute_seconds_count":
			if s.value < 1 {
				t.Fatalf("%s %v = %v, want >= 1", want.name, want.labels, s.value)
			}
		}
	}

	// Monotonic counters: re-drive traffic, re-scrape, and every counter
	// series present in the first scrape must not have decreased.
	first := map[string]float64{}
	for _, s := range samples {
		fam := familyOf(s.name)
		if types[fam] == "counter" || strings.HasSuffix(s.name, "_count") || strings.HasSuffix(s.name, "_bucket") {
			first[s.name+"|"+labelsKeyWithLe(s.labels)] = s.value
		}
	}
	checkout()
	_, again, _ := scrape(t, ts.URL)
	seen := map[string]float64{}
	for _, s := range again {
		seen[s.name+"|"+labelsKeyWithLe(s.labels)] = s.value
	}
	for key, v0 := range first {
		v1, ok := seen[key]
		if !ok {
			t.Fatalf("series %s disappeared between scrapes", key)
		}
		if v1 < v0 {
			t.Fatalf("counter %s went backwards: %v -> %v", key, v0, v1)
		}
	}
	if key := "orpheus_http_requests_total|method=GET;route=/metrics;status=200;"; seen[key] <= first[key] {
		t.Fatalf("scrape counter did not advance: %v -> %v", first[key], seen[key])
	}
}

func parseLe(t *testing.T, s promSample) float64 {
	t.Helper()
	le := s.labels["le"]
	if le == "+Inf" {
		return float64(1 << 62)
	}
	v, err := strconv.ParseFloat(le, 64)
	if err != nil {
		t.Fatalf("bad le %q", le)
	}
	return v
}

func labelsKeyWithLe(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k + "=" + labels[k] + ";")
	}
	return b.String()
}

// TestSlowTraceCaptured forces every request over the slow threshold and
// checks a checkout trace lands in /debug/traces with the nested span tree
// the core layer emits: checkout.cache over bitmap.resolve + record.fetch.
func TestSlowTraceCaptured(t *testing.T) {
	ts, store := newTestServer(t)
	store.Tracer().SetSlowThreshold(0)
	initProtein(t, ts.URL)
	commitRows(t, ts.URL, [][]any{{1, 1, 0.5, "a"}, {1, 2, 1.25, "b"}}, nil, "first")

	resp, err := http.Get(ts.URL + "/api/v1/datasets/prot/checkout?versions=1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	traceID := resp.Header.Get("X-Orpheus-Trace")
	if traceID == "" {
		t.Fatal("checkout response missing X-Orpheus-Trace")
	}

	tresp, err := http.Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(tresp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.SlowTotal == 0 {
		t.Fatal("no slow traces recorded under a zero threshold")
	}
	var trace *obs.TraceData
	for i := range snap.Slow {
		if snap.Slow[i].ID == traceID {
			trace = &snap.Slow[i]
			break
		}
	}
	if trace == nil {
		t.Fatalf("trace %s not in slow ring (%d slow traces)", traceID, len(snap.Slow))
	}
	if want := "GET /api/v1/datasets/{name}/checkout"; trace.Name != want {
		t.Fatalf("trace name = %q, want %q", trace.Name, want)
	}
	cache := findSpan(trace.Root, "checkout.cache")
	if cache == nil {
		t.Fatalf("trace missing checkout.cache span: %+v", trace.Root)
	}
	if cache.Attrs["hit"] != "false" {
		t.Fatalf("first checkout should be a cache miss, attrs %v", cache.Attrs)
	}
	for _, child := range []string{"bitmap.resolve", "record.fetch"} {
		found := false
		for _, c := range cache.Children {
			if c.Name == child {
				found = true
			}
		}
		if !found {
			t.Fatalf("checkout.cache missing child %q (children %+v)", child, cache.Children)
		}
	}
}

// findSpan depth-first searches a span tree by name.
func findSpan(s obs.SpanData, name string) *obs.SpanData {
	if s.Name == name {
		return &s
	}
	for i := range s.Children {
		if found := findSpan(s.Children[i], name); found != nil {
			return found
		}
	}
	return nil
}

// TestSecondServerOnSameStorePanics documents the one-Server-per-Store rule:
// the second registration of the HTTP metric families must panic rather than
// silently double-count.
func TestSecondServerOnSameStorePanics(t *testing.T) {
	store := orpheusdb.NewStore()
	_ = New(store, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("second New on the same store should panic on duplicate metrics")
		}
	}()
	_ = New(store, nil)
}

// TestAccessLogRecordsStatusAndBytes exercises the slog access log: the line
// must carry the real status code and the response body size, not just
// method and path.
func TestAccessLogRecordsStatusAndBytes(t *testing.T) {
	var buf bytes.Buffer
	store := orpheusdb.NewStore()
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	ts := httptest.NewServer(New(store, logger))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/api/v1/datasets/nope")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
	line := buf.String()
	if !strings.Contains(line, "status=404") {
		t.Fatalf("access log missing status: %q", line)
	}
	if !strings.Contains(line, "bytes="+strconv.Itoa(len(body))) {
		t.Fatalf("access log missing body size %d: %q", len(body), line)
	}
	if !strings.Contains(line, "route=/api/v1/datasets/{name}") {
		t.Fatalf("access log missing route: %q", line)
	}
	if !strings.Contains(line, "trace=") {
		t.Fatalf("access log missing trace id: %q", line)
	}
}
