package server

import (
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	orpheusdb "orpheusdb"
)

// newWALServer starts an httptest server over a WAL-backed persistent store.
func newWALServer(t *testing.T) (*httptest.Server, *orpheusdb.Store) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "srv.odb")
	store, err := orpheusdb.OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.EnableWAL(orpheusdb.WALConfig{Policy: orpheusdb.FsyncOff}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(store, nil))
	t.Cleanup(ts.Close)
	return ts, store
}

func TestWALStatusEndpoint(t *testing.T) {
	ts, _ := newWALServer(t)
	initProtein(t, ts.URL)

	status, body := doJSON(t, "GET", ts.URL+"/api/v1/wal/status", nil)
	if status != http.StatusOK {
		t.Fatalf("wal/status = %d: %v", status, body)
	}
	if body["enabled"] != true {
		t.Fatalf("wal/status reports disabled: %v", body)
	}
	if body["policy"] != "off" {
		t.Fatalf("policy = %v, want off", body["policy"])
	}
	applied, _ := body["appliedLSN"].(interface{ Int64() (int64, error) })
	if applied == nil {
		t.Fatalf("appliedLSN missing: %v", body)
	}
	if n, _ := applied.Int64(); n == 0 {
		t.Fatalf("appliedLSN = 0 after init: %v", body)
	}
}

func TestWALCheckpointEndpoint(t *testing.T) {
	ts, _ := newWALServer(t)
	initProtein(t, ts.URL)

	status, body := doJSON(t, "POST", ts.URL+"/api/v1/wal/checkpoint", nil)
	if status != http.StatusOK {
		t.Fatalf("wal/checkpoint = %d: %v", status, body)
	}
	ckpt := body["checkpointLSN"].(interface{ Int64() (int64, error) })
	applied := body["appliedLSN"].(interface{ Int64() (int64, error) })
	c, _ := ckpt.Int64()
	a, _ := applied.Int64()
	if c == 0 || c != a {
		t.Fatalf("checkpointLSN = %d, appliedLSN = %d; want equal and nonzero", c, a)
	}
	n, _ := body["checkpoints"].(interface{ Int64() (int64, error) }).Int64()
	if n < 1 {
		t.Fatalf("checkpoints = %d, want >= 1", n)
	}
}

func TestHealthIncludesWAL(t *testing.T) {
	ts, _ := newWALServer(t)
	status, body := doJSON(t, "GET", ts.URL+"/healthz", nil)
	if status != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthz = %d %v", status, body)
	}
	wal, ok := body["wal"].(map[string]any)
	if !ok || wal["enabled"] != true {
		t.Fatalf("healthz wal block missing or disabled: %v", body)
	}
}

// TestDatasetListCleanOfErrors: a healthy store's listing must not carry the
// error fields, so their presence is a real signal.
func TestDatasetListCleanOfErrors(t *testing.T) {
	ts, _ := newWALServer(t)
	initProtein(t, ts.URL)
	status, body := doJSON(t, "GET", ts.URL+"/api/v1/datasets", nil)
	if status != http.StatusOK {
		t.Fatalf("datasets = %d", status)
	}
	if _, ok := body["saveError"]; ok {
		t.Fatalf("saveError on a healthy store: %v", body)
	}
	if _, ok := body["walError"]; ok {
		t.Fatalf("walError on a healthy store: %v", body)
	}
}
