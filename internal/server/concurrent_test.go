package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	orpheusdb "orpheusdb"
)

// TestConcurrentClients is the acceptance test for the service layer: 32
// concurrent clients hammer one server with a mixed commit / checkout / diff
// / SQL workload across several datasets. Run under -race it proves the
// Store's locking layer; the per-dataset version counters prove no commit is
// lost or double-assigned.
func TestConcurrentClients(t *testing.T) {
	const (
		clients  = 32
		opsEach  = 12
		datasets = 4
	)
	store := orpheusdb.NewStore()
	ts := httptest.NewServer(New(store, nil))
	defer ts.Close()
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: clients}}

	post := func(path string, body any) (int, map[string]any, error) {
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			return 0, nil, err
		}
		resp, err := client.Post(ts.URL+path, "application/json", &buf)
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		out := map[string]any{}
		dec := json.NewDecoder(resp.Body)
		dec.UseNumber()
		if err := dec.Decode(&out); err != nil {
			return resp.StatusCode, nil, err
		}
		return resp.StatusCode, out, nil
	}
	get := func(path string) (int, error) {
		resp, err := client.Get(ts.URL + path)
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		var sink map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&sink); err != nil {
			return resp.StatusCode, err
		}
		return resp.StatusCode, nil
	}

	// Seed the datasets, one base version each.
	for i := 0; i < datasets; i++ {
		name := fmt.Sprintf("ds%d", i)
		status, body, err := post("/api/v1/datasets", map[string]any{
			"name": name,
			"columns": []map[string]string{
				{"name": "id", "type": "integer"},
				{"name": "val", "type": "string"},
			},
			"primaryKey": []string{"id"},
		})
		if err != nil || status != http.StatusCreated {
			t.Fatalf("seed init %s: status %d err %v body %v", name, status, err, body)
		}
		status, body, err = post("/api/v1/datasets/"+name+"/commit", map[string]any{
			"rows":    [][]any{{0, "base"}},
			"message": "base",
		})
		if err != nil || status != http.StatusCreated {
			t.Fatalf("seed commit %s: status %d err %v body %v", name, status, err, body)
		}
	}

	var commits atomic.Int64
	errs := make(chan error, clients*opsEach)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			name := fmt.Sprintf("ds%d", c%datasets)
			for op := 0; op < opsEach; op++ {
				switch op % 4 {
				case 0: // commit a new row on top of version 1
					status, body, err := post("/api/v1/datasets/"+name+"/commit", map[string]any{
						"rows":    [][]any{{c*1000 + op, fmt.Sprintf("c%d-op%d", c, op)}},
						"parents": []int64{1},
						"message": fmt.Sprintf("client %d op %d", c, op),
					})
					if err != nil || status != http.StatusCreated {
						errs <- fmt.Errorf("client %d commit: status %d err %v body %v", c, status, err, body)
						return
					}
					commits.Add(1)
				case 1: // checkout the base version
					if status, err := get("/api/v1/datasets/" + name + "/checkout?versions=1"); err != nil || status != http.StatusOK {
						errs <- fmt.Errorf("client %d checkout: status %d err %v", c, status, err)
						return
					}
				case 2: // diff base against latest-known
					if status, err := get("/api/v1/datasets/" + name + "/diff?a=1&b=1"); err != nil || status != http.StatusOK {
						errs <- fmt.Errorf("client %d diff: status %d err %v", c, status, err)
						return
					}
				case 3: // SQL over the base version
					sql := fmt.Sprintf("SELECT count(*) FROM VERSION 1 OF CVD %s", name)
					status, body, err := post("/api/v1/query", map[string]any{"sql": sql})
					if err != nil || status != http.StatusOK {
						errs <- fmt.Errorf("client %d query: status %d err %v body %v", c, status, err, body)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		return
	}

	// Every commit produced a distinct version: 1 seed + the client commits
	// that targeted each dataset.
	var total int64
	for i := 0; i < datasets; i++ {
		d, err := store.Dataset(fmt.Sprintf("ds%d", i))
		if err != nil {
			t.Fatal(err)
		}
		total += int64(len(d.Versions())) - 1 // minus seed version
		if lat := d.LatestVersion(); int(lat) != len(d.Versions()) {
			t.Errorf("ds%d: latest %d != version count %d (ids must be dense)", i, lat, len(d.Versions()))
		}
	}
	if total != commits.Load() {
		t.Errorf("committed versions %d != successful commits %d", total, commits.Load())
	}
}

// TestConcurrentInitAndDrop exercises the store-level registry lock: clients
// racing to create, use, and drop distinct datasets.
func TestConcurrentInitAndDrop(t *testing.T) {
	store := orpheusdb.NewStore()
	ts := httptest.NewServer(New(store, nil))
	defer ts.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for c := 0; c < 16; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			name := fmt.Sprintf("tmp%d", c)
			var buf bytes.Buffer
			_ = json.NewEncoder(&buf).Encode(map[string]any{
				"name":    name,
				"columns": []map[string]string{{"name": "id", "type": "integer"}},
			})
			resp, err := http.Post(ts.URL+"/api/v1/datasets", "application/json", &buf)
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusCreated {
				errs <- fmt.Errorf("init %s: status %d", name, resp.StatusCode)
				return
			}
			req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/api/v1/datasets/"+name, nil)
			resp, err = http.DefaultClient.Do(req)
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusNoContent {
				errs <- fmt.Errorf("drop %s: status %d", name, resp.StatusCode)
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := len(store.List()); got != 0 {
		t.Errorf("%d datasets left after drops, want 0", got)
	}
}
