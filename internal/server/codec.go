package server

import (
	"encoding/json"
	"fmt"

	orpheusdb "orpheusdb"
	"orpheusdb/internal/engine"
)

// JSON codecs for the engine's dynamically typed cells. Values map onto
// natural JSON: NULL <-> null, integers and decimals <-> numbers, strings <->
// strings, booleans <-> booleans, and integer arrays <-> arrays of numbers.
// Encoding needs no schema (the Value carries its kind); decoding is driven
// by the destination column's declared kind, so a commit body can say `3`
// for both an integer and a decimal column.

// columnJSON is the wire form of a schema attribute.
type columnJSON struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

func encodeColumns(cols []orpheusdb.Column) []columnJSON {
	out := make([]columnJSON, len(cols))
	for i, c := range cols {
		out[i] = columnJSON{Name: c.Name, Type: c.Type.String()}
	}
	return out
}

func decodeColumns(cols []columnJSON) ([]orpheusdb.Column, error) {
	out := make([]orpheusdb.Column, len(cols))
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("column %d: missing name", i)
		}
		k, err := engine.KindFromName(c.Type)
		if err != nil {
			return nil, fmt.Errorf("column %q: %w", c.Name, err)
		}
		out[i] = orpheusdb.Column{Name: c.Name, Type: k}
	}
	return out, nil
}

// encodeValue renders one cell as a JSON-marshalable value.
func encodeValue(v orpheusdb.Value) any {
	switch v.K {
	case engine.KindNull:
		return nil
	case engine.KindInt:
		return v.I
	case engine.KindFloat:
		return v.F
	case engine.KindString:
		return v.S
	case engine.KindBool:
		return v.I != 0
	case engine.KindIntArray:
		if v.A == nil {
			return []int64{}
		}
		return v.A
	case engine.KindBitmap:
		// Bitmap membership encodes as the sorted element array, so clients
		// see the same shape whichever representation the model stores.
		if v.B == nil {
			return []int64{}
		}
		return v.B.ToSlice()
	}
	return v.String()
}

func encodeRow(r orpheusdb.Row) []any {
	out := make([]any, len(r))
	for i, v := range r {
		out[i] = encodeValue(v)
	}
	return out
}

func encodeRows(rows []orpheusdb.Row) [][]any {
	out := make([][]any, len(rows))
	for i, r := range rows {
		out[i] = encodeRow(r)
	}
	return out
}

// decodeValue converts one JSON value (as produced by a json.Decoder with
// UseNumber) into a typed cell of the given kind. null is NULL for every
// kind.
func decodeValue(x any, k engine.Kind) (orpheusdb.Value, error) {
	if x == nil {
		return orpheusdb.Null(), nil
	}
	switch k {
	case engine.KindInt:
		n, ok := x.(json.Number)
		if !ok {
			return orpheusdb.Value{}, fmt.Errorf("want integer, got %T", x)
		}
		i, err := n.Int64()
		if err != nil {
			return orpheusdb.Value{}, fmt.Errorf("want integer, got %v", n)
		}
		return orpheusdb.Int(i), nil
	case engine.KindFloat:
		n, ok := x.(json.Number)
		if !ok {
			return orpheusdb.Value{}, fmt.Errorf("want number, got %T", x)
		}
		f, err := n.Float64()
		if err != nil {
			return orpheusdb.Value{}, fmt.Errorf("want number, got %v", n)
		}
		return orpheusdb.Float(f), nil
	case engine.KindString:
		s, ok := x.(string)
		if !ok {
			return orpheusdb.Value{}, fmt.Errorf("want string, got %T", x)
		}
		return orpheusdb.String(s), nil
	case engine.KindBool:
		b, ok := x.(bool)
		if !ok {
			return orpheusdb.Value{}, fmt.Errorf("want boolean, got %T", x)
		}
		return orpheusdb.Bool(b), nil
	case engine.KindIntArray:
		arr, ok := x.([]any)
		if !ok {
			return orpheusdb.Value{}, fmt.Errorf("want array of integers, got %T", x)
		}
		out := make([]int64, len(arr))
		for i, el := range arr {
			n, ok := el.(json.Number)
			if !ok {
				return orpheusdb.Value{}, fmt.Errorf("array element %d: want integer, got %T", i, el)
			}
			v, err := n.Int64()
			if err != nil {
				return orpheusdb.Value{}, fmt.Errorf("array element %d: want integer, got %v", i, n)
			}
			out[i] = v
		}
		return orpheusdb.Array(out), nil
	}
	return orpheusdb.Value{}, fmt.Errorf("unsupported column kind %v", k)
}

// decodeRows converts wire rows into typed rows under the given schema.
func decodeRows(raw [][]any, cols []orpheusdb.Column) ([]orpheusdb.Row, error) {
	rows := make([]orpheusdb.Row, len(raw))
	for i, rr := range raw {
		if len(rr) != len(cols) {
			return nil, fmt.Errorf("row %d has %d values, want %d", i, len(rr), len(cols))
		}
		row := make(orpheusdb.Row, len(cols))
		for j, x := range rr {
			v, err := decodeValue(x, cols[j].Type)
			if err != nil {
				return nil, fmt.Errorf("row %d, column %q: %w", i, cols[j].Name, err)
			}
			row[j] = v
		}
		rows[i] = row
	}
	return rows, nil
}

// versionIDs converts wire int64 ids to VersionIDs.
func versionIDs(in []int64) []orpheusdb.VersionID {
	if in == nil {
		return nil
	}
	out := make([]orpheusdb.VersionID, len(in))
	for i, v := range in {
		out[i] = orpheusdb.VersionID(v)
	}
	return out
}

// int64IDs converts VersionIDs to wire int64s (never nil, so JSON renders []
// rather than null).
func int64IDs(in []orpheusdb.VersionID) []int64 {
	out := make([]int64, len(in))
	for i, v := range in {
		out[i] = int64(v)
	}
	return out
}
