package server

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"orpheusdb/internal/obs"
	"orpheusdb/internal/wal"
)

// Primary-side replication endpoints. The WAL is shipped verbatim: the
// stream endpoint writes the same CRC-framed records the log stores on disk,
// so a follower needs no second codec — it parses frames with
// wal.ReadFrameFrom and applies them through the store's replay path.
//
//	GET  /api/v1/wal/snapshot            gob engine snapshot (bootstrap); LSN in X-Orpheus-Snapshot-LSN
//	GET  /api/v1/wal/stream?from_lsn=N   chunked tail of framed records with LSN > N (long-poll window)
//	POST /api/v1/promote                 flip a follower writable (404-ish error on a primary)
//
// A from_lsn below the log's retained range answers 410 Gone with code
// "wal_truncated": the records were checkpointed away, so the follower must
// re-bootstrap from a fresh snapshot.

// streamWindow bounds one long-poll stream response. The follower reconnects
// immediately after a clean window end, so the window only bounds how long a
// dead follower can pin a handler goroutine. ?wait_ms= overrides it (tests
// and final promote drains use 0 for take-what's-there requests).
const streamWindow = 25 * time.Second

// replMetrics is the primary-side shipping telemetry, registered in New.
type replMetrics struct {
	streamsActive *obs.Gauge
	streamRecords *obs.Counter
	streamBytes   *obs.Counter
	snapshots     *obs.Counter
}

func newReplMetrics(reg *obs.Registry) replMetrics {
	return replMetrics{
		streamsActive: reg.Gauge("orpheus_repl_streams_active",
			"WAL shipping streams currently open to followers."),
		streamRecords: reg.Counter("orpheus_repl_stream_records_total",
			"WAL records shipped to followers."),
		streamBytes: reg.Counter("orpheus_repl_stream_bytes_total",
			"WAL frame bytes shipped to followers."),
		snapshots: reg.Counter("orpheus_repl_snapshots_served_total",
			"Bootstrap snapshots served to followers."),
	}
}

// handleWALSnapshot serves the bootstrap snapshot: a gob-encoded engine
// snapshot whose WalLSN watermark (echoed in X-Orpheus-Snapshot-LSN) is where
// the follower resumes the stream.
func (s *Server) handleWALSnapshot(w http.ResponseWriter, r *http.Request) {
	_, span := obs.StartSpan(r.Context(), "repl.snapshot")
	defer span.End()
	snap := s.store.ReplicationSnapshot()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Orpheus-Snapshot-LSN", strconv.FormatUint(snap.WalLSN, 10))
	s.repl.snapshots.Inc()
	span.SetAttr("lsn", strconv.FormatUint(snap.WalLSN, 10))
	// Headers are committed before encoding starts; a mid-encode failure
	// cuts the body short and the follower's gob decode rejects it.
	_ = snap.EncodeTo(w)
}

// handleWALStream tails the primary's WAL to a follower: raw CRC-framed
// records with LSN > from_lsn, flushed per record, long-polling across idle
// gaps until the window closes. The response header X-Orpheus-WAL-Next-LSN
// carries the primary's applied watermark at stream start so the follower can
// compute lag before the first record arrives.
func (s *Server) handleWALStream(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var from uint64
	if raw := q.Get("from_lsn"); raw != "" {
		n, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			writeError(w, badRequest(fmt.Sprintf("bad from_lsn %q (want a non-negative integer)", raw)))
			return
		}
		from = n
	}
	window := streamWindow
	if raw := q.Get("wait_ms"); raw != "" {
		ms, err := strconv.Atoi(raw)
		if err != nil || ms < 0 {
			writeError(w, badRequest(fmt.Sprintf("bad wait_ms %q (want a non-negative integer)", raw)))
			return
		}
		window = time.Duration(ms) * time.Millisecond
	}
	it, err := s.store.OpenWALStream(from)
	if err != nil {
		if strings.Contains(err.Error(), "gap") {
			writeError(w, &apiError{Status: http.StatusGone, Code: "wal_truncated", Message: err.Error()})
			return
		}
		writeError(w, badRequest(err.Error()))
		return
	}
	defer it.Close()

	// Probe before committing to a 200: a follower asking for records a
	// checkpoint already reclaimed must get a clean 410 so it re-bootstraps
	// from a snapshot instead of parsing an error page as frames.
	notify := s.store.WALNotify()
	_, _, frame, err := it.Next()
	if err != nil && !errors.Is(err, wal.ErrNoRecord) {
		if strings.Contains(err.Error(), "gap") {
			writeError(w, &apiError{Status: http.StatusGone, Code: "wal_truncated", Message: err.Error()})
			return
		}
		writeError(w, err)
		return
	}

	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Orpheus-WAL-Next-LSN", strconv.FormatUint(s.store.WALStatus().AppliedLSN, 10))
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		// Push the headers out now: a caught-up follower long-polling an
		// idle window must see the 200 immediately, not at window end.
		flusher.Flush()
	}
	s.repl.streamsActive.Add(1)
	defer s.repl.streamsActive.Add(-1)

	deadline := time.NewTimer(window)
	defer deadline.Stop()
	ctx := r.Context()

	ship := func(frame []byte) bool {
		if _, werr := w.Write(frame); werr != nil {
			return false // follower went away; it reconnects with a fresh from_lsn
		}
		s.repl.streamRecords.Inc()
		s.repl.streamBytes.Add(int64(len(frame)))
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	if err == nil {
		if !ship(frame) {
			return
		}
	}
	for {
		// Drain everything available, then wait on the append notification
		// grabbed BEFORE the drain: a record landing between the grab and
		// the last Next closes the channel, so no append is ever missed.
		for {
			_, _, frame, err := it.Next()
			if errors.Is(err, wal.ErrNoRecord) {
				break
			}
			if err != nil {
				// Mid-stream failure (e.g. truncated under a slow reader):
				// cut the body; the follower's next handshake gets the 410.
				return
			}
			if !ship(frame) {
				return
			}
		}
		select {
		case <-notify:
			notify = s.store.WALNotify()
		case <-ctx.Done():
			return
		case <-deadline.C:
			return
		}
	}
}

// handlePromote flips a follower writable (see orpheusdb.Replication). On a
// node with no replication source it is a bad request — there is nothing to
// promote a primary to.
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	repl := s.store.Replication()
	if repl == nil {
		writeError(w, badRequest("not a follower: this node has no replication source to promote from"))
		return
	}
	if err := repl.Promote(); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"promoted":    true,
		"replication": repl.Info(),
	})
}
