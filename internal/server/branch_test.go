package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	orpheusdb "orpheusdb"
)

// branchStore seeds a dataset with a small divergent DAG:
//
//	v1 (base) ── v2 (modifies id=1, adds id=4)
//	         └── v3 (modifies id=1 differently)
func branchStore(t *testing.T) (*orpheusdb.Store, string) {
	t.Helper()
	store := orpheusdb.NewStore()
	d, err := store.Init("prot", []orpheusdb.Column{
		{Name: "id", Type: orpheusdb.KindInt},
		{Name: "val", Type: orpheusdb.KindString},
	}, orpheusdb.InitOptions{PrimaryKey: []string{"id"}})
	if err != nil {
		t.Fatal(err)
	}
	row := func(id int64, v string) orpheusdb.Row {
		return orpheusdb.Row{orpheusdb.Int(id), orpheusdb.String(v)}
	}
	v1, err := d.Commit([]orpheusdb.Row{row(1, "a"), row(2, "b")}, nil, "v1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Commit([]orpheusdb.Row{row(1, "a-ours"), row(2, "b"), row(4, "d")},
		[]orpheusdb.VersionID{v1}, "v2"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Commit([]orpheusdb.Row{row(1, "a-theirs"), row(2, "b")},
		[]orpheusdb.VersionID{v1}, "v3"); err != nil {
		t.Fatal(err)
	}
	return store, "prot"
}

func TestHTTPBranchLifecycle(t *testing.T) {
	store, name := branchStore(t)
	ts := newTestServerWith(t, store)
	base := ts.URL + "/api/v1/datasets/" + name

	// Create at an explicit version, then one defaulting to latest.
	status, body := doJSON(t, "POST", base+"/branches", map[string]any{"name": "dev", "at": "1"})
	if status != http.StatusCreated || body["name"] != "dev" || jsonInt(t, body["head"]) != 1 {
		t.Fatalf("create dev: %d %v", status, body)
	}
	status, body = doJSON(t, "POST", base+"/branches", map[string]any{"name": "main"})
	if status != http.StatusCreated || jsonInt(t, body["head"]) != 3 {
		t.Fatalf("create main: %d %v", status, body)
	}
	if jsonInt(t, body["lineageSize"]) != 2 {
		t.Fatalf("main lineageSize = %v", body["lineageSize"])
	}
	// Duplicates and bad anchors are 409/404.
	if status, _ = doJSON(t, "POST", base+"/branches", map[string]any{"name": "dev"}); status != http.StatusConflict {
		t.Fatalf("duplicate create = %d", status)
	}
	if status, _ = doJSON(t, "POST", base+"/branches", map[string]any{"name": "x", "at": "99"}); status != http.StatusNotFound {
		t.Fatalf("bad anchor = %d", status)
	}

	// List.
	status, body = doJSON(t, "GET", base+"/branches", nil)
	if status != http.StatusOK {
		t.Fatalf("list = %d", status)
	}
	branches := body["branches"].([]any)
	if len(branches) != 2 {
		t.Fatalf("branches = %v", branches)
	}
	// The dataset summary carries the branches too.
	status, body = doJSON(t, "GET", base, nil)
	if status != http.StatusOK || len(body["branches"].([]any)) != 2 {
		t.Fatalf("summary branches = %v", body["branches"])
	}

	// Delete.
	if status, _ = doJSON(t, "DELETE", base+"/branches/dev", nil); status != http.StatusNoContent {
		t.Fatalf("delete = %d", status)
	}
	if status, _ = doJSON(t, "DELETE", base+"/branches/dev", nil); status != http.StatusNotFound {
		t.Fatalf("double delete = %d", status)
	}
}

func TestHTTPMerge(t *testing.T) {
	store, name := branchStore(t)
	ts := newTestServerWith(t, store)
	base := ts.URL + "/api/v1/datasets/" + name

	// Conflicting merge under the default fail policy: 409 with the report.
	status, body := doJSON(t, "POST", base+"/merge", map[string]any{"ours": "2", "theirs": "3"})
	if status != http.StatusConflict {
		t.Fatalf("conflicted merge = %d %v", status, body)
	}
	errBody := body["error"].(map[string]any)
	if errBody["code"] != "merge_conflict" {
		t.Fatalf("error code = %v", errBody["code"])
	}
	conflicts := errBody["conflicts"].([]any)
	if len(conflicts) != 1 {
		t.Fatalf("conflict report = %v", conflicts)
	}
	c := conflicts[0].(map[string]any)
	if c["kind"] != "modify/modify" || c["key"] != "1" {
		t.Fatalf("conflict = %v", c)
	}
	if c["ours"] == nil || c["theirs"] == nil || c["base"] == nil {
		t.Fatalf("conflict payload missing sides: %v", c)
	}

	// Resolved with a policy, targeting a branch: head advances.
	if status, _ = doJSON(t, "POST", base+"/branches", map[string]any{"name": "main", "at": "2"}); status != http.StatusCreated {
		t.Fatal("create main failed")
	}
	status, body = doJSON(t, "POST", base+"/merge", map[string]any{
		"ours": "main", "theirs": "3", "policy": "theirs", "message": "land",
	})
	if status != http.StatusOK {
		t.Fatalf("resolved merge = %d %v", status, body)
	}
	merged := jsonInt(t, body["version"])
	if merged != 4 || jsonInt(t, body["base"]) != 1 || len(body["conflicts"].([]any)) != 1 {
		t.Fatalf("merge body = %v", body)
	}
	status, body = doJSON(t, "GET", base+"/branches", nil)
	if status != http.StatusOK {
		t.Fatal("list failed")
	}
	head := jsonInt(t, body["branches"].([]any)[0].(map[string]any)["head"])
	if head != merged {
		t.Fatalf("main head = %d, want %d", head, merged)
	}

	// Up-to-date and fast-forward responses.
	status, body = doJSON(t, "POST", base+"/merge", map[string]any{"ours": "main", "theirs": "2"})
	if status != http.StatusOK || body["upToDate"] != true {
		t.Fatalf("up-to-date merge = %d %v", status, body)
	}
	// Bad inputs.
	for _, req := range []map[string]any{
		{"ours": "2"},
		{"ours": "2", "theirs": "3", "policy": "wat"},
		{"ours": "ghost", "theirs": "3"},
	} {
		if status, _ := doJSON(t, "POST", base+"/merge", req); status == http.StatusOK {
			t.Errorf("merge %v should fail", req)
		}
	}

	// Stats mirror the merge counters.
	status, stats := doJSON(t, "GET", ts.URL+"/api/v1/stats", nil)
	if status != http.StatusOK {
		t.Fatal("stats failed")
	}
	if jsonInt(t, stats["merges"]) < 3 || jsonInt(t, stats["merge_conflicts"]) < 2 ||
		jsonInt(t, stats["branch_creates"]) < 1 {
		t.Fatalf("stats = %v", stats)
	}
}

// jsonInt coerces a decoded json.Number.
func jsonInt(t *testing.T, v any) int64 {
	t.Helper()
	n, ok := v.(json.Number)
	if !ok {
		t.Fatalf("value %v (%T) is not a number", v, v)
	}
	i, err := n.Int64()
	if err != nil {
		t.Fatal(err)
	}
	return i
}

// newTestServerWith wraps an existing store in an httptest server.
func newTestServerWith(t *testing.T, store *orpheusdb.Store) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New(store, nil))
	t.Cleanup(ts.Close)
	return ts
}
