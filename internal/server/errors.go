package server

import (
	"encoding/json"
	"net/http"
	"strings"
)

// Structured error mapping: every failure leaves the server as a JSON body
//
//	{"error": {"code": "not_found", "message": "core: no CVD \"x\""}}
//
// with an HTTP status matching the code. The core and engine packages signal
// failures with fmt.Errorf rather than sentinel values, so classification
// inspects the message; apiError lets handlers set status and code
// explicitly when they know better (bad input, parse failures).

type apiError struct {
	Status  int    `json:"-"`
	Code    string `json:"code"`
	Message string `json:"message"`
}

func (e *apiError) Error() string { return e.Message }

func badRequest(msg string) *apiError {
	return &apiError{Status: http.StatusBadRequest, Code: "bad_request", Message: msg}
}

// classify maps an arbitrary error onto an apiError.
func classify(err error) *apiError {
	if ae, ok := err.(*apiError); ok {
		return ae
	}
	msg := err.Error()
	switch {
	case strings.Contains(msg, "no CVD") ||
		strings.Contains(msg, "no version") ||
		strings.Contains(msg, "no branch") ||
		strings.Contains(msg, "not in the staging area") ||
		strings.Contains(msg, "was dropped") ||
		strings.Contains(msg, "no table"):
		return &apiError{Status: http.StatusNotFound, Code: "not_found", Message: msg}
	case strings.Contains(msg, "already exists"):
		return &apiError{Status: http.StatusConflict, Code: "already_exists", Message: msg}
	case strings.Contains(msg, "read-only"):
		return &apiError{Status: http.StatusForbidden, Code: "read_only", Message: msg}
	case strings.Contains(msg, "violates primary key") ||
		strings.Contains(msg, "primary key column"):
		return &apiError{Status: http.StatusConflict, Code: "constraint_violation", Message: msg}
	case strings.Contains(msg, "parse") || strings.Contains(msg, "syntax") ||
		strings.Contains(msg, "unexpected"):
		return &apiError{Status: http.StatusBadRequest, Code: "bad_request", Message: msg}
	}
	return &apiError{Status: http.StatusInternalServerError, Code: "internal", Message: msg}
}

// writeError emits the structured error body.
func writeError(w http.ResponseWriter, err error) {
	ae := classify(err)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(ae.Status)
	_ = json.NewEncoder(w).Encode(map[string]*apiError{"error": ae})
}

// writeJSON emits a success body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
