package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// checkoutRaw issues a checkout GET with an optional If-None-Match validator
// and returns the status, the X-Orpheus-Version header, and the decoded body.
func checkoutRaw(t *testing.T, url, ifNoneMatch string) (int, string, map[string]any) {
	t.Helper()
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ifNoneMatch != "" {
		req.Header.Set("If-None-Match", ifNoneMatch)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out := map[string]any{}
	if resp.StatusCode == http.StatusOK {
		dec := json.NewDecoder(resp.Body)
		dec.UseNumber()
		if err := dec.Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, resp.Header.Get("X-Orpheus-Version"), out
}

func TestCheckoutVersionTokenAnd304(t *testing.T) {
	ts, _ := newTestServer(t)
	initProtein(t, ts.URL)
	commitRows(t, ts.URL, [][]any{{1, 1, 0.5, "a"}, {2, 2, 0.9, "b"}}, nil, "v1")

	url := ts.URL + "/api/v1/datasets/prot/checkout?versions=1"
	status, token, body := checkoutRaw(t, url, "")
	if status != http.StatusOK || token == "" {
		t.Fatalf("checkout: status %d token %q", status, token)
	}
	if rows := body["rows"].([]any); len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}

	// Echoing the validator back yields 304 with no body.
	status, token2, _ := checkoutRaw(t, url, token)
	if status != http.StatusNotModified {
		t.Fatalf("conditional checkout: status %d, want 304", status)
	}
	if token2 != token {
		t.Fatalf("304 token %q != %q", token2, token)
	}

	// A commit invalidates the validator: full response, new token.
	commitRows(t, ts.URL, [][]any{{1, 1, 0.5, "a"}, {3, 3, 0.1, "c"}}, []int64{1}, "v2")
	status, token3, body := checkoutRaw(t, url, token)
	if status != http.StatusOK {
		t.Fatalf("post-commit conditional checkout: status %d, want 200", status)
	}
	if token3 == token {
		t.Fatal("token did not change after commit")
	}
	if rows := body["rows"].([]any); len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
}

// TestMultiVersionCheckoutToken pins the token format for multi-version
// checkouts: version ids join with "+", so the validator survives
// If-None-Match's comma-separated list syntax and 304s actually fire.
func TestMultiVersionCheckoutToken(t *testing.T) {
	ts, _ := newTestServer(t)
	initProtein(t, ts.URL)
	commitRows(t, ts.URL, [][]any{{1, 1, 0.5, "a"}}, nil, "v1")
	commitRows(t, ts.URL, [][]any{{2, 2, 0.9, "b"}}, []int64{1}, "v2")

	url := ts.URL + "/api/v1/datasets/prot/checkout?versions=1,2"
	status, token, _ := checkoutRaw(t, url, "")
	if status != http.StatusOK || strings.Contains(token, ",") {
		t.Fatalf("multi-version checkout: status %d token %q (must not contain a comma)", status, token)
	}
	if status, _, _ := checkoutRaw(t, url, token); status != http.StatusNotModified {
		t.Fatalf("multi-version conditional checkout: status %d, want 304", status)
	}
	// No validator — wildcard or an exact token fabricated from the
	// dataset's published generation — may turn a nonexistent version into
	// a 304: existence is checked before the conditional fast path.
	status, _, _ = checkoutRaw(t, ts.URL+"/api/v1/datasets/prot/checkout?versions=99", "*")
	if status != http.StatusNotFound {
		t.Fatalf("wildcard on missing version: status %d, want 404", status)
	}
	_, sum := doJSON(t, "GET", ts.URL+"/api/v1/datasets/prot", nil)
	gen := sum["cache"].(map[string]any)["generation"].(json.Number).String()
	forged := `"prot.v99.g` + gen + `"`
	status, _, _ = checkoutRaw(t, ts.URL+"/api/v1/datasets/prot/checkout?versions=99", forged)
	if status != http.StatusNotFound {
		t.Fatalf("forged token on missing version: status %d, want 404", status)
	}
}

func TestCacheStatusAndFlushEndpoints(t *testing.T) {
	ts, _ := newTestServer(t)
	initProtein(t, ts.URL)
	commitRows(t, ts.URL, [][]any{{1, 1, 0.5, "a"}}, nil, "v1")

	url := ts.URL + "/api/v1/datasets/prot/checkout?versions=1"
	for i := 0; i < 3; i++ {
		if status, _, _ := checkoutRaw(t, url, ""); status != http.StatusOK {
			t.Fatalf("checkout %d failed", i)
		}
	}

	status, body := doJSON(t, "GET", ts.URL+"/api/v1/cache", nil)
	if status != http.StatusOK {
		t.Fatalf("cache status: %d", status)
	}
	hits, _ := body["hits"].(json.Number).Int64()
	entries, _ := body["entries"].(json.Number).Int64()
	if hits < 2 || entries < 1 {
		t.Fatalf("cache status = %v, want >=2 hits and >=1 entry", body)
	}

	// The dataset summary carries its share of the cache.
	status, body = doJSON(t, "GET", ts.URL+"/api/v1/datasets/prot", nil)
	if status != http.StatusOK {
		t.Fatalf("summary: %d", status)
	}
	cacheInfo, ok := body["cache"].(map[string]any)
	if !ok {
		t.Fatalf("summary has no cache field: %v", body)
	}
	if n, _ := cacheInfo["entries"].(json.Number).Int64(); n < 1 {
		t.Fatalf("summary cache entries = %d, want >= 1", n)
	}

	// Flush empties it.
	status, body = doJSON(t, "POST", ts.URL+"/api/v1/cache/flush", nil)
	if status != http.StatusOK {
		t.Fatalf("flush: %d", status)
	}
	if n, _ := body["entries"].(json.Number).Int64(); n != 0 {
		t.Fatalf("entries after flush = %d", n)
	}

	// Engine stats mirror the cache counters.
	status, body = doJSON(t, "GET", ts.URL+"/api/v1/stats", nil)
	if status != http.StatusOK {
		t.Fatalf("stats: %d", status)
	}
	if _, ok := body["cache_hits"]; !ok {
		t.Fatalf("stats missing cache_hits: %v", body)
	}
}
