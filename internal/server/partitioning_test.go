package server

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"

	orpheusdb "orpheusdb"
)

// seedPartitioned builds a partitioned dataset with a linear commit chain.
func seedPartitioned(t *testing.T, store *orpheusdb.Store, name string, versions int) {
	t.Helper()
	ds, err := store.Init(name, []orpheusdb.Column{
		{Name: "k", Type: orpheusdb.KindInt},
		{Name: "v", Type: orpheusdb.KindInt},
	}, orpheusdb.InitOptions{Model: orpheusdb.PartitionedRlist, PrimaryKey: []string{"k"}})
	if err != nil {
		t.Fatal(err)
	}
	var rows []orpheusdb.Row
	var parents []orpheusdb.VersionID
	for i := 0; i < versions; i++ {
		for j := 0; j < 8; j++ {
			k := int64(i*8 + j)
			rows = append(rows, orpheusdb.Row{orpheusdb.Int(k), orpheusdb.Int(k * 2)})
		}
		v, err := ds.Commit(append([]orpheusdb.Row(nil), rows...), parents, "step")
		if err != nil {
			t.Fatal(err)
		}
		parents = []orpheusdb.VersionID{v}
	}
}

func TestPartitioningEndpoints(t *testing.T) {
	ts, store := newTestServer(t)
	seedPartitioned(t, store, "part", 16)

	// Status without an optimizer: layout present, optimizer not running.
	status, body := doJSON(t, "GET", ts.URL+"/api/v1/datasets/part/partitioning", nil)
	if status != http.StatusOK {
		t.Fatalf("GET partitioning: status %d, body %v", status, body)
	}
	layout := body["layout"].(map[string]any)
	if n := len(layout["partitions"].([]any)); n != 1 {
		t.Fatalf("expected 1 initial partition, got %d", n)
	}
	if running := body["optimizer"].(map[string]any)["running"].(bool); running {
		t.Fatal("optimizer reported running before start")
	}

	// Manual trigger without the optimizer is a client error.
	if status, _ := doJSON(t, "POST", ts.URL+"/api/v1/datasets/part/partitioning", nil); status != http.StatusBadRequest {
		t.Fatalf("POST without optimizer: status %d, want 400", status)
	}

	o, err := store.StartPartitionOptimizer(orpheusdb.PartitionOptimizerConfig{
		Mu:       orpheusdb.MuDisabled,
		Interval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Stop()

	status, body = doJSON(t, "POST", ts.URL+"/api/v1/datasets/part/partitioning", nil)
	if status != http.StatusOK {
		t.Fatalf("POST partitioning: status %d, body %v", status, body)
	}
	if reason := body["reason"].(string); reason != "manual" {
		t.Fatalf("trigger reason = %q, want manual", reason)
	}
	if n, _ := body["batches"].(json.Number).Int64(); n == 0 {
		t.Fatal("trigger reported zero batches")
	}

	status, body = doJSON(t, "GET", ts.URL+"/api/v1/datasets/part/partitioning", nil)
	if status != http.StatusOK {
		t.Fatalf("GET after trigger: status %d", status)
	}
	opt := body["optimizer"].(map[string]any)
	if !opt["running"].(bool) {
		t.Fatal("optimizer should report running")
	}
	if m, _ := opt["migrations"].(json.Number).Int64(); m != 1 {
		t.Fatalf("migrations = %v, want 1", opt["migrations"])
	}
	if n := len(body["layout"].(map[string]any)["partitions"].([]any)); n < 2 {
		t.Fatalf("layout still has %d partition(s) after trigger", n)
	}

	// Non-partitioned datasets refuse with a client error.
	if _, err := store.Init("plain", []orpheusdb.Column{{Name: "k", Type: orpheusdb.KindInt}},
		orpheusdb.InitOptions{PrimaryKey: []string{"k"}}); err != nil {
		t.Fatal(err)
	}
	if status, _ := doJSON(t, "GET", ts.URL+"/api/v1/datasets/plain/partitioning", nil); status != http.StatusBadRequest {
		t.Fatalf("GET partitioning on plain model: status %d, want 400", status)
	}

	// The stats endpoint mirrors the engine's partition counters.
	status, body = doJSON(t, "GET", ts.URL+"/api/v1/stats", nil)
	if status != http.StatusOK {
		t.Fatalf("GET stats: status %d", status)
	}
	if n, _ := body["partition_migrations"].(json.Number).Int64(); n != 1 {
		t.Fatalf("stats partition_migrations = %v, want 1", body["partition_migrations"])
	}
}
