package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	orpheusdb "orpheusdb"
)

// newTestServer starts an httptest server over a fresh in-memory store.
func newTestServer(t *testing.T) (*httptest.Server, *orpheusdb.Store) {
	t.Helper()
	store := orpheusdb.NewStore()
	ts := httptest.NewServer(New(store, nil))
	t.Cleanup(ts.Close)
	return ts, store
}

// doJSON issues a request with a JSON body and decodes the JSON response.
func doJSON(t *testing.T, method, url string, body any) (int, map[string]any) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out := map[string]any{}
	if resp.StatusCode != http.StatusNoContent {
		dec := json.NewDecoder(resp.Body)
		dec.UseNumber()
		if err := dec.Decode(&out); err != nil {
			t.Fatalf("%s %s: decoding response: %v", method, url, err)
		}
	}
	return resp.StatusCode, out
}

func initProtein(t *testing.T, base string) {
	t.Helper()
	status, body := doJSON(t, "POST", base+"/api/v1/datasets", map[string]any{
		"name": "prot",
		"columns": []map[string]string{
			{"name": "p1", "type": "integer"},
			{"name": "p2", "type": "integer"},
			{"name": "score", "type": "decimal"},
			{"name": "tag", "type": "string"},
		},
		"primaryKey": []string{"p1", "p2"},
	})
	if status != http.StatusCreated {
		t.Fatalf("init: status %d, body %v", status, body)
	}
}

func commitRows(t *testing.T, base string, rows [][]any, parents []int64, msg string) int64 {
	t.Helper()
	status, body := doJSON(t, "POST", base+"/api/v1/datasets/prot/commit", map[string]any{
		"rows": rows, "parents": parents, "message": msg,
	})
	if status != http.StatusCreated {
		t.Fatalf("commit: status %d, body %v", status, body)
	}
	v, err := body["version"].(json.Number).Int64()
	if err != nil {
		t.Fatalf("commit: bad version in %v", body)
	}
	return v
}

func TestDatasetLifecycle(t *testing.T) {
	ts, _ := newTestServer(t)
	initProtein(t, ts.URL)

	// Duplicate init conflicts.
	status, body := doJSON(t, "POST", ts.URL+"/api/v1/datasets", map[string]any{
		"name":    "prot",
		"columns": []map[string]string{{"name": "x", "type": "integer"}},
	})
	if status != http.StatusConflict {
		t.Fatalf("duplicate init: status %d, body %v", status, body)
	}

	v1 := commitRows(t, ts.URL, [][]any{
		{1, 1, 0.5, "a"},
		{1, 2, 1.25, "b"},
	}, nil, "first")
	if v1 != 1 {
		t.Fatalf("first commit: version %d, want 1", v1)
	}
	v2 := commitRows(t, ts.URL, [][]any{
		{1, 1, 0.5, "a"},
		{2, 2, nil, "c"},
	}, []int64{v1}, "second")

	// Checkout v2.
	status, body = doJSON(t, "GET", ts.URL+fmt.Sprintf("/api/v1/datasets/prot/checkout?versions=%d", v2), nil)
	if status != http.StatusOK {
		t.Fatalf("checkout: status %d, body %v", status, body)
	}
	rows := body["rows"].([]any)
	if len(rows) != 2 {
		t.Fatalf("checkout v2: %d rows, want 2", len(rows))
	}
	// The NULL score of row {2,2} must round-trip as JSON null.
	found := false
	for _, r := range rows {
		vals := r.([]any)
		if vals[0].(json.Number) == "2" && vals[2] == nil {
			found = true
		}
	}
	if !found {
		t.Fatalf("checkout v2: NULL cell did not round-trip: %v", rows)
	}

	// Diff v1 vs v2.
	status, body = doJSON(t, "GET", ts.URL+fmt.Sprintf("/api/v1/datasets/prot/diff?a=%d&b=%d", v1, v2), nil)
	if status != http.StatusOK {
		t.Fatalf("diff: status %d", status)
	}
	if n := len(body["onlyA"].([]any)); n != 1 {
		t.Fatalf("diff onlyA: %d rows, want 1", n)
	}
	if n := len(body["onlyB"].([]any)); n != 1 {
		t.Fatalf("diff onlyB: %d rows, want 1", n)
	}

	// Version metadata and graph traversal.
	status, body = doJSON(t, "GET", ts.URL+fmt.Sprintf("/api/v1/datasets/prot/versions/%d", v2), nil)
	if status != http.StatusOK || body["message"] != "second" {
		t.Fatalf("version info: status %d, body %v", status, body)
	}
	status, body = doJSON(t, "GET", ts.URL+fmt.Sprintf("/api/v1/datasets/prot/versions/%d/ancestors", v2), nil)
	if status != http.StatusOK {
		t.Fatalf("ancestors: status %d", status)
	}
	if anc := body["ancestors"].([]any); len(anc) != 1 {
		t.Fatalf("ancestors of v2: %v, want [1]", anc)
	}

	// SQL over a version.
	status, body = doJSON(t, "POST", ts.URL+"/api/v1/query", map[string]any{
		"sql": fmt.Sprintf("SELECT count(*) FROM VERSION %d OF CVD prot", v2),
	})
	if status != http.StatusOK {
		t.Fatalf("query: status %d, body %v", status, body)
	}
	qr := body["rows"].([]any)[0].([]any)
	if qr[0].(json.Number) != "2" {
		t.Fatalf("query count: %v, want 2", qr[0])
	}

	// Drop, then the dataset is gone.
	status, _ = doJSON(t, "DELETE", ts.URL+"/api/v1/datasets/prot", nil)
	if status != http.StatusNoContent {
		t.Fatalf("drop: status %d", status)
	}
	status, _ = doJSON(t, "GET", ts.URL+"/api/v1/datasets/prot", nil)
	if status != http.StatusNotFound {
		t.Fatalf("get after drop: status %d, want 404", status)
	}
}

func TestCommitWithSchemaEvolution(t *testing.T) {
	ts, _ := newTestServer(t)
	initProtein(t, ts.URL)
	v1 := commitRows(t, ts.URL, [][]any{{1, 1, 0.5, "a"}}, nil, "first")

	// Commit under a wider schema (extra column).
	status, body := doJSON(t, "POST", ts.URL+"/api/v1/datasets/prot/commit", map[string]any{
		"columns": []map[string]string{
			{"name": "p1", "type": "integer"},
			{"name": "p2", "type": "integer"},
			{"name": "score", "type": "decimal"},
			{"name": "tag", "type": "string"},
			{"name": "flags", "type": "integer[]"},
		},
		"rows":    [][]any{{1, 1, 0.5, "a", []int64{3, 4}}},
		"parents": []int64{v1},
		"message": "wider",
	})
	if status != http.StatusCreated {
		t.Fatalf("schema commit: status %d, body %v", status, body)
	}
	v2, _ := body["version"].(json.Number).Int64()
	status, body = doJSON(t, "GET", ts.URL+fmt.Sprintf("/api/v1/datasets/prot/checkout?versions=%d", v2), nil)
	if status != http.StatusOK {
		t.Fatalf("checkout: status %d", status)
	}
	row := body["rows"].([]any)[0].([]any)
	arr, ok := row[len(row)-1].([]any)
	if !ok || len(arr) != 2 {
		t.Fatalf("integer[] cell did not round-trip: %v", row)
	}
}

func TestErrorMapping(t *testing.T) {
	ts, _ := newTestServer(t)
	initProtein(t, ts.URL)

	cases := []struct {
		name   string
		method string
		path   string
		body   any
		want   int
	}{
		{"unknown dataset", "GET", "/api/v1/datasets/nope", nil, http.StatusNotFound},
		{"unknown version", "GET", "/api/v1/datasets/prot/checkout?versions=99", nil, http.StatusNotFound},
		{"bad version id", "GET", "/api/v1/datasets/prot/checkout?versions=x", nil, http.StatusBadRequest},
		{"missing versions", "GET", "/api/v1/datasets/prot/checkout", nil, http.StatusBadRequest},
		{"bad sql", "POST", "/api/v1/query", map[string]any{"sql": "SELEC nope"}, http.StatusBadRequest},
		{"empty sql", "POST", "/api/v1/query", map[string]any{"sql": " "}, http.StatusBadRequest},
		{"bad diff args", "GET", "/api/v1/datasets/prot/diff?a=1", nil, http.StatusBadRequest},
		{"init without columns", "POST", "/api/v1/datasets", map[string]any{"name": "x"}, http.StatusBadRequest},
		{"drop unknown", "DELETE", "/api/v1/datasets/nope", nil, http.StatusNotFound},
	}
	for _, c := range cases {
		status, body := doJSON(t, c.method, ts.URL+c.path, c.body)
		if status != c.want {
			t.Errorf("%s: status %d, want %d (body %v)", c.name, status, c.want, body)
			continue
		}
		errObj, ok := body["error"].(map[string]any)
		if !ok || errObj["code"] == "" || errObj["message"] == "" {
			t.Errorf("%s: missing structured error body: %v", c.name, body)
		}
	}

	// Type mismatches in commit bodies are 400s with a pointed message.
	status, body := doJSON(t, "POST", ts.URL+"/api/v1/datasets/prot/commit", map[string]any{
		"rows": [][]any{{"one", 1, 0.5, "a"}},
	})
	if status != http.StatusBadRequest {
		t.Fatalf("type mismatch: status %d, body %v", status, body)
	}
}

func TestUsersAndHealth(t *testing.T) {
	ts, store := newTestServer(t)
	status, body := doJSON(t, "POST", ts.URL+"/api/v1/users", map[string]any{"name": "alice"})
	if status != http.StatusCreated {
		t.Fatalf("create user: status %d, body %v", status, body)
	}
	status, body = doJSON(t, "GET", ts.URL+"/api/v1/users", nil)
	if status != http.StatusOK {
		t.Fatalf("list users: status %d", status)
	}
	users := body["users"].([]any)
	found := false
	for _, u := range users {
		if u == "alice" {
			found = true
		}
	}
	if !found {
		t.Fatalf("users: %v, want alice present", users)
	}
	// Registering a user must not hijack the server's active user.
	if got := store.WhoAmI(); got != "default" {
		t.Fatalf("active user changed to %q by POST /users", got)
	}

	status, body = doJSON(t, "GET", ts.URL+"/healthz", nil)
	if status != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthz: status %d, body %v", status, body)
	}
	status, _ = doJSON(t, "GET", ts.URL+"/api/v1/stats", nil)
	if status != http.StatusOK {
		t.Fatalf("stats: status %d", status)
	}
}

// TestPersistenceThroughServer proves commits made over HTTP reach disk via
// the debounced save path and survive a reload.
func TestPersistenceThroughServer(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.odb")
	store, err := orpheusdb.OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(store, nil))
	defer ts.Close()

	initProtein(t, ts.URL)
	commitRows(t, ts.URL, [][]any{{1, 1, 0.5, "a"}}, nil, "first")
	if err := store.Flush(); err != nil {
		t.Fatal(err)
	}

	re, err := orpheusdb.OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	d, err := re.Dataset("prot")
	if err != nil {
		t.Fatalf("reload: %v", err)
	}
	rows, err := d.Checkout(1)
	if err != nil || len(rows) != 1 {
		t.Fatalf("reload checkout: rows=%d err=%v", len(rows), err)
	}
}
