// Package server exposes a Store as a concurrent HTTP/JSON versioning
// service — the "versioning as a service" access layer the paper assumes a
// deployment of OrpheusDB provides. It is built entirely on net/http; every
// endpoint speaks JSON and maps failures onto structured error bodies.
//
// Routes (all under /api/v1 unless noted):
//
//	GET    /healthz                                   liveness + last async save error + optimizer health
//	GET    /metrics                                   Prometheus text exposition (store registry)
//	GET    /debug/traces                              recent + slow request traces (?min_ms=&op=)
//	GET    /api/v1/metrics/history                    retained metrics time-series (?name=&since=)
//	GET    /api/v1/stats                              engine I/O counters
//	GET    /api/v1/datasets                           list CVDs
//	POST   /api/v1/datasets                           init a CVD
//	GET    /api/v1/datasets/{name}                    dataset summary
//	DELETE /api/v1/datasets/{name}                    drop
//	POST   /api/v1/datasets/{name}/commit             commit rows (optionally with a new schema)
//	GET    /api/v1/datasets/{name}/checkout?versions= materialize version(s)
//	GET    /api/v1/datasets/{name}/diff?a=&b=         diff two versions
//	GET    /api/v1/datasets/{name}/heat               access-heat table (?top=)
//	GET    /api/v1/datasets/{name}/versions           version graph with metadata
//	GET    /api/v1/datasets/{name}/versions/{vid}     one version's metadata
//	GET    /api/v1/datasets/{name}/versions/{vid}/ancestors
//	GET    /api/v1/datasets/{name}/versions/{vid}/descendants
//	GET    /api/v1/datasets/{name}/branches           list branches (head, lineage size)
//	POST   /api/v1/datasets/{name}/branches           create a branch {name, at}
//	DELETE /api/v1/datasets/{name}/branches/{branch}  delete a branch
//	POST   /api/v1/datasets/{name}/merge              three-way merge {ours, theirs, policy, message}
//	POST   /api/v1/datasets/{name}/optimize           run LYRESPLIT / maintenance
//	GET    /api/v1/datasets/{name}/partitioning       live partition layout + optimizer status
//	POST   /api/v1/datasets/{name}/partitioning       trigger a batched repartitioning now
//	POST   /api/v1/query                              SQL with VERSION ... OF CVD
//	GET    /api/v1/users                              list users
//	POST   /api/v1/users                              register a user
//	GET    /api/v1/wal/status                         durability status (WAL, checkpoints, errors)
//	POST   /api/v1/wal/checkpoint                     force a checkpoint + log truncation
//	GET    /api/v1/wal/snapshot                       replication bootstrap snapshot (gob; LSN in header)
//	GET    /api/v1/wal/stream?from_lsn=               WAL shipping stream for followers (framed records)
//	POST   /api/v1/promote                            flip a follower writable (failover)
//	GET    /api/v1/cache                              checkout-cache status (budget, bytes, hit/miss/eviction counters)
//	POST   /api/v1/cache/flush                        drop every cached materialization
//
// Checkout responses carry an ETag-style X-Orpheus-Version header (also set
// as ETag): a validator over (dataset, versions, cache generation) that a
// client may echo back via If-None-Match (or X-Orpheus-Version) to get a
// 304 Not Modified instead of a re-materialized body.
//
// The Store's own locking makes every handler safe under concurrency:
// commits on one dataset proceed in parallel with checkouts on another, and
// persistence is debounced off the request path via Store.ScheduleSave.
//
// Every request runs under a trace: the server opens a root span named after
// the matched route, hands the traced context to the handler (whose checkout,
// commit, merge, and SQL phases contribute nested spans), answers with the
// trace id in X-Orpheus-Trace, and records per-route latency and status
// counts in the store's metrics registry — served right back on GET /metrics.
package server

import (
	"cmp"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"

	orpheusdb "orpheusdb"
	"orpheusdb/internal/obs"
)

// Server is the HTTP face of one Store.
type Server struct {
	store *orpheusdb.Store
	mux   *http.ServeMux
	log   *slog.Logger

	// HTTP-layer metrics, registered on the store's registry so one scrape
	// covers both the service and the store beneath it.
	reqSeconds *obs.HistogramVec // latency by (method, route)
	reqTotal   *obs.CounterVec   // count by (method, route, status)
	respBytes  *obs.Counter      // cumulative response body bytes

	// repl is the primary-side WAL shipping telemetry (see repl.go).
	repl replMetrics
}

// New builds a Server around store. logger may be nil to disable request
// logging. New registers the HTTP metric families on store's registry, so
// build at most one Server per Store.
func New(store *orpheusdb.Store, logger *slog.Logger) *Server {
	reg := store.Metrics()
	s := &Server{
		store: store,
		mux:   http.NewServeMux(),
		log:   logger,
		reqSeconds: reg.HistogramVec("orpheus_http_request_seconds",
			"HTTP request latency by method and matched route.",
			obs.LatencyBuckets, "method", "route"),
		reqTotal: reg.CounterVec("orpheus_http_requests_total",
			"HTTP requests by method, matched route, and status code.",
			"method", "route", "status"),
		respBytes: reg.Counter("orpheus_http_response_bytes_total",
			"Cumulative HTTP response body bytes written."),
		repl: newReplMetrics(reg),
	}
	s.routes()
	return s
}

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.Handle("GET /metrics", s.store.Metrics().Handler())
	s.mux.HandleFunc("GET /debug/traces", s.handleTraces)
	s.mux.HandleFunc("GET /api/v1/metrics/history", s.handleMetricsHistory)
	s.mux.HandleFunc("GET /api/v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /api/v1/datasets", s.handleListDatasets)
	s.mux.HandleFunc("POST /api/v1/datasets", s.handleInitDataset)
	s.mux.HandleFunc("GET /api/v1/datasets/{name}", s.handleGetDataset)
	s.mux.HandleFunc("DELETE /api/v1/datasets/{name}", s.handleDropDataset)
	s.mux.HandleFunc("POST /api/v1/datasets/{name}/commit", s.handleCommit)
	s.mux.HandleFunc("GET /api/v1/datasets/{name}/checkout", s.handleCheckout)
	s.mux.HandleFunc("GET /api/v1/datasets/{name}/diff", s.handleDiff)
	s.mux.HandleFunc("GET /api/v1/datasets/{name}/heat", s.handleHeat)
	s.mux.HandleFunc("GET /api/v1/datasets/{name}/versions", s.handleVersions)
	s.mux.HandleFunc("GET /api/v1/datasets/{name}/versions/{vid}", s.handleVersionInfo)
	s.mux.HandleFunc("GET /api/v1/datasets/{name}/versions/{vid}/ancestors", s.handleAncestors)
	s.mux.HandleFunc("GET /api/v1/datasets/{name}/versions/{vid}/descendants", s.handleDescendants)
	s.mux.HandleFunc("GET /api/v1/datasets/{name}/branches", s.handleListBranches)
	s.mux.HandleFunc("POST /api/v1/datasets/{name}/branches", s.handleCreateBranch)
	s.mux.HandleFunc("DELETE /api/v1/datasets/{name}/branches/{branch}", s.handleDeleteBranch)
	s.mux.HandleFunc("POST /api/v1/datasets/{name}/merge", s.handleMerge)
	s.mux.HandleFunc("POST /api/v1/datasets/{name}/optimize", s.handleOptimize)
	s.mux.HandleFunc("GET /api/v1/datasets/{name}/partitioning", s.handlePartitioning)
	s.mux.HandleFunc("POST /api/v1/datasets/{name}/partitioning", s.handleRepartition)
	s.mux.HandleFunc("POST /api/v1/query", s.handleQuery)
	s.mux.HandleFunc("GET /api/v1/users", s.handleListUsers)
	s.mux.HandleFunc("POST /api/v1/users", s.handleCreateUser)
	s.mux.HandleFunc("GET /api/v1/wal/status", s.handleWALStatus)
	s.mux.HandleFunc("POST /api/v1/wal/checkpoint", s.handleWALCheckpoint)
	s.mux.HandleFunc("GET /api/v1/wal/snapshot", s.handleWALSnapshot)
	s.mux.HandleFunc("GET /api/v1/wal/stream", s.handleWALStream)
	s.mux.HandleFunc("POST /api/v1/promote", s.handlePromote)
	s.mux.HandleFunc("GET /api/v1/cache", s.handleCacheStatus)
	s.mux.HandleFunc("POST /api/v1/cache/flush", s.handleCacheFlush)
}

// statusRecorder wraps a ResponseWriter to capture the status code and body
// byte count for the access log and the request metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
	wrote  bool
}

func (rec *statusRecorder) WriteHeader(code int) {
	if !rec.wrote {
		rec.status = code
		rec.wrote = true
	}
	rec.ResponseWriter.WriteHeader(code)
}

func (rec *statusRecorder) Write(p []byte) (int, error) {
	rec.wrote = true // implicit 200 on first Write without WriteHeader
	n, err := rec.ResponseWriter.Write(p)
	rec.bytes += int64(n)
	return n, err
}

// Flush keeps streaming responses working through the wrapper.
func (rec *statusRecorder) Flush() {
	if f, ok := rec.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// route returns the mux pattern the request will dispatch to, method prefix
// stripped (the method is its own metric label). Unrouted requests — 404s and
// 405s — collapse into one "none" series instead of minting a series per
// probed path.
func (s *Server) route(r *http.Request) string {
	_, pattern := s.mux.Handler(r)
	if pattern == "" {
		return "none"
	}
	if _, rest, ok := strings.Cut(pattern, " "); ok {
		return rest
	}
	return pattern
}

// ServeHTTP implements http.Handler. Each request is dispatched under a root
// trace span named "METHOD route" (the trace id is echoed in X-Orpheus-Trace),
// its status and response size are captured through a wrapped writer, and its
// latency and status land in the per-route histograms and counters. With a
// logger configured, one structured access-log line is emitted per request.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	route := s.route(r)
	ctx, span := s.store.Tracer().StartTrace(r.Context(), r.Method+" "+route)
	traceID := obs.TraceID(ctx)
	if traceID != "" {
		w.Header().Set("X-Orpheus-Trace", traceID)
	}
	rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
	start := time.Now()
	s.mux.ServeHTTP(rec, r.WithContext(ctx))
	elapsed := time.Since(start)
	span.SetAttr("status", strconv.Itoa(rec.status))
	span.End()
	s.reqSeconds.With(r.Method, route).ObserveDuration(elapsed)
	s.reqTotal.With(r.Method, route, strconv.Itoa(rec.status)).Inc()
	s.respBytes.Add(rec.bytes)
	if s.log != nil {
		s.log.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"route", route,
			"status", rec.status,
			"bytes", rec.bytes,
			"dur", elapsed.Round(time.Microsecond),
			"trace", traceID,
		)
	}
}

// handleTraces serves the tracer's ring buffers: recent completed traces and
// traces that crossed the slow-operation threshold, newest first, each with
// its nested span tree. ?min_ms= keeps only traces at least that long;
// ?op= keeps only traces whose root name contains the substring
// (case-insensitive) — so "?op=checkout&min_ms=50" isolates slow checkouts.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	snap := s.store.Tracer().Snapshot()
	q := r.URL.Query()
	if raw := q.Get("min_ms"); raw != "" {
		ms, err := strconv.ParseFloat(raw, 64)
		if err != nil || ms < 0 {
			writeError(w, badRequest(fmt.Sprintf("bad min_ms %q (want a non-negative number)", raw)))
			return
		}
		minNanos := int64(ms * float64(time.Millisecond))
		keep := func(t obs.TraceData) bool { return t.DurationNanos >= minNanos }
		snap.Recent = filterTraces(snap.Recent, keep)
		snap.Slow = filterTraces(snap.Slow, keep)
	}
	if op := q.Get("op"); op != "" {
		needle := strings.ToLower(op)
		keep := func(t obs.TraceData) bool { return strings.Contains(strings.ToLower(t.Name), needle) }
		snap.Recent = filterTraces(snap.Recent, keep)
		snap.Slow = filterTraces(snap.Slow, keep)
	}
	writeJSON(w, http.StatusOK, snap)
}

// filterTraces keeps the traces matching keep, preserving newest-first order.
// The input slices are Snapshot's own copies, so filtering in place is safe.
func filterTraces(in []obs.TraceData, keep func(obs.TraceData) bool) []obs.TraceData {
	out := in[:0]
	for _, t := range in {
		if keep(t) {
			out = append(out, t)
		}
	}
	return out
}

// decodeBody parses a JSON request body with numeric fidelity preserved
// (json.Number), enforcing a sane size cap.
func decodeBody(r *http.Request, dst any) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, 64<<20))
	dec.UseNumber()
	if err := dec.Decode(dst); err != nil {
		return badRequest("invalid JSON body: " + err.Error())
	}
	return nil
}

func pathVersion(r *http.Request) (orpheusdb.VersionID, error) {
	n, err := strconv.Atoi(r.PathValue("vid"))
	if err != nil {
		return 0, badRequest(fmt.Sprintf("bad version id %q", r.PathValue("vid")))
	}
	return orpheusdb.VersionID(n), nil
}

// queryVersions parses a comma-separated versions= parameter.
func queryVersions(r *http.Request, param string) ([]orpheusdb.VersionID, error) {
	raw := r.URL.Query().Get(param)
	if raw == "" {
		return nil, badRequest("missing ?" + param + "= parameter")
	}
	var out []orpheusdb.VersionID
	for _, part := range strings.Split(raw, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, badRequest(fmt.Sprintf("bad version id %q", part))
		}
		out = append(out, orpheusdb.VersionID(n))
	}
	return out, nil
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	resp := map[string]any{"status": "ok"}
	if err := s.store.SaveErr(); err != nil {
		resp["status"] = "degraded"
		resp["save_error"] = err.Error()
	}
	// Durability summary: a WAL that stopped accepting appends degrades the
	// service even though requests still succeed from memory.
	wal := s.store.WALStatus()
	resp["wal"] = wal
	if wal.AppendError != "" {
		resp["status"] = "degraded"
	}
	// Background optimizer: a sweep that keeps failing must not hide behind a
	// green liveness check, so its last error degrades the service too.
	if o := s.store.PartitionOptimizer(); o != nil {
		oh := o.Health()
		resp["optimizer"] = oh
		if oh.LastError != "" {
			resp["status"] = "degraded"
		}
	}
	// Follower role and lag: operators (and the read router) watch lag here,
	// and a broken stream must degrade the follower even though reads still
	// succeed from its last applied state.
	if repl := s.store.Replication(); repl != nil {
		info := repl.Info()
		resp["replication"] = info
		if info.LastError != "" {
			resp["status"] = "degraded"
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleWALStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.store.WALStatus())
}

// handleWALCheckpoint forces a synchronous checkpoint: snapshot the store,
// then truncate the log segments the snapshot made obsolete.
func (s *Server) handleWALCheckpoint(w http.ResponseWriter, r *http.Request) {
	if err := s.store.Checkpoint(); err != nil {
		writeError(w, fmt.Errorf("checkpoint: %w", err))
		return
	}
	writeJSON(w, http.StatusOK, s.store.WALStatus())
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	snap := s.store.DB().Stats().Snapshot()
	writeJSON(w, http.StatusOK, map[string]int64{
		"seq_pages":       snap.SeqPages,
		"rand_pages":      snap.RandPages,
		"rows_scanned":    snap.RowsScanned,
		"index_probes":    snap.IndexProbes,
		"hash_builds":     snap.HashBuilds,
		"cache_hits":      snap.CacheHits,
		"cache_misses":    snap.CacheMisses,
		"cache_evictions": snap.CacheEvictions,
		"branch_creates":  snap.BranchCreates,
		"merges":          snap.Merges,
		"merge_conflicts": snap.MergeConflicts,

		"partition_migrations": snap.PartitionMigrations,
		"partition_batches":    snap.PartitionBatches,
		"partition_rows_moved": snap.PartitionRowsMoved,
	})
}

// handleCacheStatus reports the checkout cache: budget, resident bytes and
// entries, and cumulative hit/miss/eviction/invalidation counters.
func (s *Server) handleCacheStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.store.CacheStats())
}

// handleCacheFlush drops every cached materialization (entries rebuild on
// demand) and reports the post-flush state.
func (s *Server) handleCacheFlush(w http.ResponseWriter, r *http.Request) {
	s.store.FlushCache()
	writeJSON(w, http.StatusOK, s.store.CacheStats())
}

type datasetSummary struct {
	Name       string       `json:"name"`
	Model      string       `json:"model"`
	Columns    []columnJSON `json:"columns"`
	PrimaryKey []string     `json:"primaryKey"`
	Versions   []int64      `json:"versions"`
	Latest     int64        `json:"latest"`
	// Branches lists the dataset's named branches with their heads.
	Branches []branchJSON `json:"branches"`
	Storage  int64        `json:"storageBytes"`
	// StorageBreakdown splits Storage into compressed-membership bytes
	// (rlist/vlist bitmaps) and record-data bytes.
	StorageBreakdown orpheusdb.StorageBreakdown `json:"storageBreakdown"`
	// Cache is the dataset's share of the checkout cache: resident entries
	// and bytes, plus the invalidation generation backing version tokens.
	Cache orpheusdb.DatasetCacheStats `json:"cache"`
}

func (s *Server) summarize(name string) (*datasetSummary, error) {
	d, err := s.store.Dataset(name)
	if err != nil {
		return nil, err
	}
	pk := d.PrimaryKey()
	if pk == nil {
		pk = []string{}
	}
	breakdown := d.StorageBreakdown()
	branches := d.Branches()
	bjs := make([]branchJSON, 0, len(branches))
	for _, b := range branches {
		bjs = append(bjs, branchToJSON(b))
	}
	return &datasetSummary{
		Name:             d.Name(),
		Model:            string(d.Model()),
		Columns:          encodeColumns(d.Columns()),
		PrimaryKey:       pk,
		Versions:         int64IDs(d.Versions()),
		Latest:           int64(d.LatestVersion()),
		Branches:         bjs,
		Storage:          breakdown.TotalBytes,
		StorageBreakdown: breakdown,
		Cache:            s.store.DatasetCacheStats(name),
	}, nil
}

func (s *Server) handleListDatasets(w http.ResponseWriter, r *http.Request) {
	names := s.store.List()
	out := make([]*datasetSummary, 0, len(names))
	for _, name := range names {
		sum, err := s.summarize(name)
		if err != nil {
			// A dataset dropped by a concurrent client between List
			// and summarize just disappears from the listing.
			if classify(err).Status == http.StatusNotFound {
				continue
			}
			writeError(w, err)
			return
		}
		out = append(out, sum)
	}
	resp := map[string]any{"datasets": out}
	// Surface persistence failures where clients actually look: a dataset
	// listing that silently reflects an unpersistable store is a trap for
	// callers who never poll SaveErr.
	if err := s.store.SaveErr(); err != nil {
		resp["saveError"] = err.Error()
	}
	if wal := s.store.WALStatus(); wal.AppendError != "" {
		resp["walError"] = wal.AppendError
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleInitDataset(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Name       string       `json:"name"`
		Columns    []columnJSON `json:"columns"`
		PrimaryKey []string     `json:"primaryKey"`
		Model      string       `json:"model"`
	}
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if req.Name == "" || len(req.Columns) == 0 {
		writeError(w, badRequest("name and columns are required"))
		return
	}
	cols, err := decodeColumns(req.Columns)
	if err != nil {
		writeError(w, badRequest(err.Error()))
		return
	}
	opts := orpheusdb.InitOptions{PrimaryKey: req.PrimaryKey}
	if req.Model != "" {
		opts.Model = orpheusdb.ModelKind(req.Model)
	}
	if _, err := s.store.Init(req.Name, cols, opts); err != nil {
		writeError(w, err)
		return
	}
	sum, err := s.summarize(req.Name)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, sum)
}

func (s *Server) handleGetDataset(w http.ResponseWriter, r *http.Request) {
	sum, err := s.summarize(r.PathValue("name"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, sum)
}

func (s *Server) handleDropDataset(w http.ResponseWriter, r *http.Request) {
	if err := s.store.Drop(r.PathValue("name")); err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleCommit(w http.ResponseWriter, r *http.Request) {
	d, err := s.store.Dataset(r.PathValue("name"))
	if err != nil {
		writeError(w, err)
		return
	}
	var req struct {
		Columns []columnJSON `json:"columns"`
		Rows    [][]any      `json:"rows"`
		Parents []int64      `json:"parents"`
		Message string       `json:"message"`
	}
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	var vid orpheusdb.VersionID
	if len(req.Columns) > 0 {
		cols, err := decodeColumns(req.Columns)
		if err != nil {
			writeError(w, badRequest(err.Error()))
			return
		}
		rows, err := decodeRows(req.Rows, cols)
		if err != nil {
			writeError(w, badRequest(err.Error()))
			return
		}
		vid, err = d.CommitWithSchemaCtx(r.Context(), cols, rows, versionIDs(req.Parents), req.Message)
		if err != nil {
			writeError(w, err)
			return
		}
	} else {
		rows, err := decodeRows(req.Rows, d.Columns())
		if err != nil {
			writeError(w, badRequest(err.Error()))
			return
		}
		vid, err = d.CommitCtx(r.Context(), rows, versionIDs(req.Parents), req.Message)
		if err != nil {
			writeError(w, err)
			return
		}
	}
	writeJSON(w, http.StatusCreated, map[string]any{
		"dataset": d.Name(),
		"version": int64(vid),
	})
}

// versionToken builds the ETag-style validator for a checkout response:
// stable for a (dataset, versions) pair until a mutation advances the
// dataset's cache generation. Version ids are joined with "+", never ",",
// so the token survives If-None-Match's comma-separated list syntax intact.
func versionToken(dataset string, vids []orpheusdb.VersionID, gen uint64) string {
	parts := make([]string, len(vids))
	for i, v := range vids {
		parts[i] = strconv.FormatInt(int64(v), 10)
	}
	return fmt.Sprintf("%q", dataset+".v"+strings.Join(parts, "+")+".g"+strconv.FormatUint(gen, 10))
}

// tokenMatches reports whether an If-None-Match style header (a
// comma-separated validator list, possibly W/-prefixed) names token. The
// RFC's "*" wildcard is deliberately not honored: it would turn requests
// for nonexistent versions into 304s instead of not_found errors.
func tokenMatches(header, token string) bool {
	// Whole-header comparison first: the common case is a client echoing
	// one token back, and it keeps validators working even for dataset
	// names that themselves contain a comma (which the naive split below
	// would cut apart).
	if strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(header), "W/")) == token {
		return true
	}
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(part), "W/"))
		if part == token {
			return true
		}
	}
	return false
}

func (s *Server) handleCheckout(w http.ResponseWriter, r *http.Request) {
	d, err := s.store.Dataset(r.PathValue("name"))
	if err != nil {
		writeError(w, err)
		return
	}
	vids, err := queryVersions(r, "versions")
	if err != nil {
		writeError(w, err)
		return
	}
	// Conditional request: if the client's validator still matches the
	// dataset's current generation, nothing it holds can be stale — answer
	// 304 without materializing anything. The versions must still exist:
	// a fabricated token for a missing version should get the same
	// not_found the uncached path produces, not a 304.
	if match := cmp.Or(r.Header.Get("If-None-Match"), r.Header.Get("X-Orpheus-Version")); match != "" {
		for _, vid := range vids {
			if _, err := d.Info(vid); err != nil {
				writeError(w, err)
				return
			}
		}
		token := versionToken(d.Name(), vids, d.CacheGeneration())
		if tokenMatches(match, token) {
			w.Header().Set("X-Orpheus-Version", token)
			w.Header().Set("ETag", token)
			w.WriteHeader(http.StatusNotModified)
			return
		}
	}
	cols, rows, gen, err := d.CheckoutWithTokenCtx(r.Context(), vids...)
	if err != nil {
		writeError(w, err)
		return
	}
	token := versionToken(d.Name(), vids, gen)
	w.Header().Set("X-Orpheus-Version", token)
	w.Header().Set("ETag", token)
	writeJSON(w, http.StatusOK, map[string]any{
		"dataset":  d.Name(),
		"versions": int64IDs(vids),
		"columns":  encodeColumns(cols),
		"rows":     encodeRows(rows),
	})
}

func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	d, err := s.store.Dataset(r.PathValue("name"))
	if err != nil {
		writeError(w, err)
		return
	}
	q := r.URL.Query()
	a, errA := strconv.Atoi(q.Get("a"))
	b, errB := strconv.Atoi(q.Get("b"))
	if errA != nil || errB != nil {
		writeError(w, badRequest("diff needs integer ?a= and ?b= versions"))
		return
	}
	cols, onlyA, onlyB, err := d.DiffWithColumns(orpheusdb.VersionID(a), orpheusdb.VersionID(b))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"dataset": d.Name(),
		"a":       a,
		"b":       b,
		"columns": encodeColumns(cols),
		"onlyA":   encodeRows(onlyA),
		"onlyB":   encodeRows(onlyB),
	})
}

// handleHeat serves the dataset's access-heat table: the ?top= hottest
// versions by checkout count (default 10), cache hit ratios, the sliding-
// window op rate, and per-branch checkout rates.
func (s *Server) handleHeat(w http.ResponseWriter, r *http.Request) {
	d, err := s.store.Dataset(r.PathValue("name"))
	if err != nil {
		writeError(w, err)
		return
	}
	top := 10
	if raw := r.URL.Query().Get("top"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 {
			writeError(w, badRequest(fmt.Sprintf("bad top %q (want a positive integer)", raw)))
			return
		}
		top = n
	}
	snap, err := d.Heat(top)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"dataset": d.Name(),
		"heat":    snap,
	})
}

// historyTierJSON renders one retention tier human-readably.
type historyTierJSON struct {
	Interval string `json:"interval"`
	Retain   string `json:"retain"`
}

// handleMetricsHistory serves the retained metrics time-series. ?name=
// selects one metric family (digest suffixes like _p95 and labeled children
// included); ?since= is either a relative duration ("15m") or an RFC 3339
// timestamp, defaulting to everything retained.
func (s *Server) handleMetricsHistory(w http.ResponseWriter, r *http.Request) {
	h := s.store.MetricsHistory()
	if h == nil {
		writeError(w, badRequest("metrics history is not running (start the server with -history)"))
		return
	}
	q := r.URL.Query()
	var since time.Time
	if raw := q.Get("since"); raw != "" {
		if d, err := time.ParseDuration(raw); err == nil && d > 0 {
			since = time.Now().Add(-d)
		} else if t, err := time.Parse(time.RFC3339, raw); err == nil {
			since = t
		} else {
			writeError(w, badRequest(fmt.Sprintf("bad since %q (want a duration like 15m or an RFC 3339 time)", raw)))
			return
		}
	}
	series := h.Query(q.Get("name"), since)
	if series == nil {
		series = []obs.HistorySeries{}
	}
	tiers := h.Tiers()
	tjs := make([]historyTierJSON, len(tiers))
	for i, t := range tiers {
		tjs[i] = historyTierJSON{Interval: t.Interval.String(), Retain: t.Retain.String()}
	}
	resp := map[string]any{
		"tiers":  tjs,
		"series": series,
	}
	if name := q.Get("name"); name != "" {
		resp["name"] = name
	}
	if !since.IsZero() {
		resp["since"] = since.UTC().Format(time.RFC3339Nano)
	}
	writeJSON(w, http.StatusOK, resp)
}

type versionJSON struct {
	ID         int64   `json:"id"`
	Parents    []int64 `json:"parents"`
	Message    string  `json:"message"`
	CommitTime string  `json:"commitTime"`
	NumRecords int     `json:"numRecords"`
}

func versionToJSON(info *orpheusdb.VersionInfo) versionJSON {
	return versionJSON{
		ID:         int64(info.ID),
		Parents:    int64IDs(info.Parents),
		Message:    info.Message,
		CommitTime: info.CommitTime.UTC().Format(time.RFC3339Nano),
		NumRecords: info.NumRecords,
	}
}

func (s *Server) handleVersions(w http.ResponseWriter, r *http.Request) {
	d, err := s.store.Dataset(r.PathValue("name"))
	if err != nil {
		writeError(w, err)
		return
	}
	vids := d.Versions()
	out := make([]versionJSON, 0, len(vids))
	for _, v := range vids {
		info, err := d.Info(v)
		if err != nil {
			writeError(w, err)
			return
		}
		out = append(out, versionToJSON(info))
	}
	writeJSON(w, http.StatusOK, map[string]any{"dataset": d.Name(), "versions": out})
}

func (s *Server) handleVersionInfo(w http.ResponseWriter, r *http.Request) {
	d, err := s.store.Dataset(r.PathValue("name"))
	if err != nil {
		writeError(w, err)
		return
	}
	vid, err := pathVersion(r)
	if err != nil {
		writeError(w, err)
		return
	}
	info, err := d.Info(vid)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, versionToJSON(info))
}

func (s *Server) handleAncestors(w http.ResponseWriter, r *http.Request) {
	s.handleRelatives(w, r, "ancestors")
}

func (s *Server) handleDescendants(w http.ResponseWriter, r *http.Request) {
	s.handleRelatives(w, r, "descendants")
}

func (s *Server) handleRelatives(w http.ResponseWriter, r *http.Request, dir string) {
	d, err := s.store.Dataset(r.PathValue("name"))
	if err != nil {
		writeError(w, err)
		return
	}
	vid, err := pathVersion(r)
	if err != nil {
		writeError(w, err)
		return
	}
	var rel []orpheusdb.VersionID
	if dir == "ancestors" {
		rel, err = d.Ancestors(vid)
	} else {
		rel, err = d.Descendants(vid)
	}
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"dataset": d.Name(),
		"version": int64(vid),
		dir:       int64IDs(rel),
	})
}

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	d, err := s.store.Dataset(r.PathValue("name"))
	if err != nil {
		writeError(w, err)
		return
	}
	var req struct {
		Gamma json.Number `json:"gamma"`
		Mu    json.Number `json:"mu"`
		Naive bool        `json:"naive"`
	}
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	gamma := 2.0
	if req.Gamma != "" {
		if gamma, err = req.Gamma.Float64(); err != nil {
			writeError(w, badRequest("bad gamma"))
			return
		}
	}
	if req.Mu != "" {
		mu, err := req.Mu.Float64()
		if err != nil {
			writeError(w, badRequest("bad mu"))
			return
		}
		m, err := d.MaintainPartitions(gamma, mu)
		if err != nil {
			writeError(w, err)
			return
		}
		resp := map[string]any{
			"dataset":  d.Name(),
			"migrated": m.Migrated,
			"cavg":     m.Cavg,
			"bestCavg": m.BestCavg,
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	var res *orpheusdb.OptimizeResult
	if req.Naive {
		res, err = d.OptimizeNaive(gamma)
	} else {
		res, err = d.Optimize(gamma)
	}
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"dataset":          d.Name(),
		"delta":            res.Delta,
		"partitions":       res.Partitions,
		"estStorage":       res.EstStorage,
		"estCheckout":      res.EstCheckout,
		"solveMillis":      res.SolveTime.Milliseconds(),
		"migrationMillis":  res.MigrationTime.Milliseconds(),
		"storageBreakdown": d.StorageBreakdown(),
	})
}

// handlePartitioning reports the dataset's live partitioned layout plus the
// background optimizer's view of it (commits observed, best cost, drift
// tunables, migration counters).
func (s *Server) handlePartitioning(w http.ResponseWriter, r *http.Request) {
	d, err := s.store.Dataset(r.PathValue("name"))
	if err != nil {
		writeError(w, err)
		return
	}
	status, ok := d.PartitionStatus()
	if !ok {
		writeError(w, badRequest(fmt.Sprintf("dataset %q is not on the partitioned model", d.Name())))
		return
	}
	resp := map[string]any{
		"dataset": d.Name(),
		"layout":  status,
	}
	if o := s.store.PartitionOptimizer(); o != nil {
		resp["optimizer"] = o.Status(d.Name())
	} else {
		resp["optimizer"] = orpheusdb.PartitionOptimizerStatus{Running: false}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleRepartition triggers an immediate background-style repartitioning:
// plan under the read lock, migrate in bounded WAL-logged batches. Requires
// the optimizer to be running (it owns the batch execution discipline).
func (s *Server) handleRepartition(w http.ResponseWriter, r *http.Request) {
	o := s.store.PartitionOptimizer()
	if o == nil {
		writeError(w, badRequest("partition optimizer is not running (start the server with -optimize)"))
		return
	}
	rep, err := o.Trigger(r.PathValue("name"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req struct {
		SQL    string `json:"sql"`
		Script bool   `json:"script"`
	}
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if strings.TrimSpace(req.SQL) == "" {
		writeError(w, badRequest("sql is required"))
		return
	}
	var res *orpheusdb.Result
	var err error
	if req.Script {
		res, err = s.store.RunScriptCtx(r.Context(), req.SQL)
	} else {
		res, err = s.store.RunCtx(r.Context(), req.SQL)
	}
	if err != nil {
		writeError(w, err)
		return
	}
	cols := res.Cols
	if cols == nil {
		cols = []string{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"columns":  cols,
		"rows":     encodeRows(res.Rows),
		"affected": res.Affected,
	})
}

func (s *Server) handleListUsers(w http.ResponseWriter, r *http.Request) {
	users := s.store.Users()
	if users == nil {
		users = []string{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"users": users})
}

func (s *Server) handleCreateUser(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Name string `json:"name"`
	}
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if req.Name == "" {
		writeError(w, badRequest("name is required"))
		return
	}
	if err := s.store.AddUser(req.Name); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{"name": req.Name})
}
