package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	orpheusdb "orpheusdb"
)

// seedHeatTraffic commits two versions and checks out v1 twice plus v2 once,
// so the heat table has a clear hottest version and one cache hit.
func seedHeatTraffic(t *testing.T, base string) (v1, v2 int64) {
	t.Helper()
	initProtein(t, base)
	v1 = commitRows(t, base, [][]any{{1, 1, 0.5, "a"}, {1, 2, 1.25, "b"}}, nil, "first")
	v2 = commitRows(t, base, [][]any{{1, 1, 0.5, "a"}, {2, 2, 2.5, "c"}}, []int64{v1}, "second")
	for _, q := range []string{"?versions=1", "?versions=1", "?versions=2"} {
		status, body := doJSON(t, "GET", base+"/api/v1/datasets/prot/checkout"+q, nil)
		if status != http.StatusOK {
			t.Fatalf("checkout %s: status %d, body %v", q, status, body)
		}
	}
	return v1, v2
}

func TestHeatEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	seedHeatTraffic(t, ts.URL)

	status, body := doJSON(t, "GET", ts.URL+"/api/v1/datasets/prot/heat", nil)
	if status != http.StatusOK {
		t.Fatalf("heat: status %d, body %v", status, body)
	}
	if body["dataset"] != "prot" {
		t.Fatalf("dataset = %v, want prot", body["dataset"])
	}
	heat, ok := body["heat"].(map[string]any)
	if !ok {
		t.Fatalf("heat payload missing: %v", body)
	}
	if n, _ := heat["checkouts"].(json.Number).Int64(); n != 3 {
		t.Fatalf("checkouts = %v, want 3", heat["checkouts"])
	}
	// v2's commit listed v1 as parent, so v1 carries 2 checkout credits plus
	// a commit credit and must rank hottest.
	top, ok := heat["top_versions"].([]any)
	if !ok || len(top) == 0 {
		t.Fatalf("top_versions missing or empty: %v", heat)
	}
	first := top[0].(map[string]any)
	if v, _ := first["version"].(json.Number).Int64(); v != 1 {
		t.Fatalf("hottest version = %v, want 1", first["version"])
	}
	// The store wires a checkout cache, so the repeated v1 checkout hit.
	if n, _ := heat["cache_hits"].(json.Number).Int64(); n != 1 {
		t.Fatalf("cache_hits = %v, want 1", heat["cache_hits"])
	}
	// Branch rates appear once branches exist: the recent v1/v2 accesses all
	// sit on dev's lineage.
	if status, b := doJSON(t, "POST", ts.URL+"/api/v1/datasets/prot/branches", map[string]any{"name": "dev", "at": "2"}); status != http.StatusCreated {
		t.Fatalf("create branch: status %d, body %v", status, b)
	}
	_, body = doJSON(t, "GET", ts.URL+"/api/v1/datasets/prot/heat", nil)
	branches, ok := body["heat"].(map[string]any)["branches"].([]any)
	if !ok || len(branches) != 1 {
		t.Fatalf("branch rates missing from heat: %v", body)
	}
	dev := branches[0].(map[string]any)
	if dev["branch"] != "dev" && dev["name"] != "dev" {
		t.Fatalf("branch row = %v, want dev", dev)
	}
	// 3 checkout credits plus v2's commit crediting its parent v1.
	if n, _ := dev["recent_checkouts"].(json.Number).Int64(); n != 4 {
		t.Fatalf("dev recent checkouts = %v, want all 4 recent credits", dev)
	}

	// ?top= truncates; non-positive or non-numeric values are rejected.
	status, body = doJSON(t, "GET", ts.URL+"/api/v1/datasets/prot/heat?top=1", nil)
	if status != http.StatusOK {
		t.Fatalf("heat top=1: status %d", status)
	}
	if top := body["heat"].(map[string]any)["top_versions"].([]any); len(top) != 1 {
		t.Fatalf("top=1 returned %d rows", len(top))
	}
	for _, bad := range []string{"0", "-2", "xyz"} {
		if status, _ := doJSON(t, "GET", ts.URL+"/api/v1/datasets/prot/heat?top="+bad, nil); status != http.StatusBadRequest {
			t.Fatalf("top=%s: status %d, want 400", bad, status)
		}
	}
	if status, _ := doJSON(t, "GET", ts.URL+"/api/v1/datasets/nope/heat", nil); status != http.StatusNotFound {
		t.Fatalf("unknown dataset: status %d, want 404", status)
	}
}

func TestMetricsHistoryEndpoint(t *testing.T) {
	ts, store := newTestServer(t)
	seedHeatTraffic(t, ts.URL)

	// Without a sampler running the endpoint refuses rather than 200-ing an
	// eternally empty series.
	if status, _ := doJSON(t, "GET", ts.URL+"/api/v1/metrics/history", nil); status != http.StatusBadRequest {
		t.Fatalf("history without sampler: status %d, want 400", status)
	}

	if _, err := store.StartMetricsHistory(orpheusdb.HistoryOptions{
		Tiers: []orpheusdb.HistoryTier{{Interval: 5 * time.Millisecond, Retain: time.Minute}},
	}); err != nil {
		t.Fatal(err)
	}
	defer store.StopMetricsHistory()

	// The sampler runs on its own goroutine; poll until the checkout series
	// it retains shows up.
	deadline := time.Now().Add(5 * time.Second)
	var series []any
	for {
		status, body := doJSON(t, "GET", ts.URL+"/api/v1/metrics/history?name=orpheus_checkout_seconds", nil)
		if status != http.StatusOK {
			t.Fatalf("history: status %d, body %v", status, body)
		}
		if body["name"] != "orpheus_checkout_seconds" {
			t.Fatalf("name echo = %v", body["name"])
		}
		if tiers := body["tiers"].([]any); len(tiers) != 1 {
			t.Fatalf("tiers = %v, want the 1 configured tier", body["tiers"])
		}
		series = body["series"].([]any)
		if len(series) > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(series) == 0 {
		t.Fatal("sampler recorded no orpheus_checkout_seconds series within 5s")
	}
	for _, raw := range series {
		s := raw.(map[string]any)
		name := s["name"].(string)
		if !strings.HasPrefix(name, "orpheus_checkout_seconds") {
			t.Fatalf("series %q outside the requested family", name)
		}
		if pts := s["points"].([]any); len(pts) == 0 {
			t.Fatalf("series %q has no points", name)
		}
	}

	// since accepts durations and RFC 3339 stamps; anything else is a 400.
	for _, ok := range []string{"15m", "2026-08-07T00:00:00Z"} {
		if status, _ := doJSON(t, "GET", ts.URL+"/api/v1/metrics/history?since="+ok, nil); status != http.StatusOK {
			t.Fatalf("since=%s: status %d, want 200", ok, status)
		}
	}
	if status, _ := doJSON(t, "GET", ts.URL+"/api/v1/metrics/history?since=yesterday", nil); status != http.StatusBadRequest {
		t.Fatal("since=yesterday accepted, want 400")
	}
}

func TestHealthzReportsOptimizer(t *testing.T) {
	ts, store := newTestServer(t)

	// No optimizer: the health payload omits the block entirely.
	status, body := doJSON(t, "GET", ts.URL+"/healthz", nil)
	if status != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthz: status %d, body %v", status, body)
	}
	if _, ok := body["optimizer"]; ok {
		t.Fatalf("optimizer block present without an optimizer: %v", body)
	}

	opt2, err := store.StartPartitionOptimizer(orpheusdb.PartitionOptimizerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer opt2.Stop()
	status, body = doJSON(t, "GET", ts.URL+"/healthz", nil)
	if status != http.StatusOK {
		t.Fatalf("healthz: status %d", status)
	}
	opt, ok := body["optimizer"].(map[string]any)
	if !ok {
		t.Fatalf("optimizer block missing: %v", body)
	}
	if opt["running"] != true {
		t.Fatalf("optimizer.running = %v, want true", opt["running"])
	}
	// A healthy optimizer reports no error and does not degrade the service.
	if _, ok := opt["last_error"]; ok {
		t.Fatalf("unexpected last_error in %v", opt)
	}
	if body["status"] != "ok" {
		t.Fatalf("status = %v, want ok", body["status"])
	}
}

func TestTracesFilters(t *testing.T) {
	ts, _ := newTestServer(t)
	seedHeatTraffic(t, ts.URL)

	get := func(q string) (int, map[string]any) {
		t.Helper()
		return doJSON(t, "GET", ts.URL+"/debug/traces"+q, nil)
	}
	names := func(body map[string]any) []string {
		var out []string
		if recent, ok := body["recent"].([]any); ok {
			for _, raw := range recent {
				out = append(out, raw.(map[string]any)["name"].(string))
			}
		}
		return out
	}

	status, body := get("")
	if status != http.StatusOK {
		t.Fatalf("traces: status %d", status)
	}
	if len(names(body)) == 0 {
		t.Fatal("no traces recorded by the seed traffic")
	}

	// ?op= keeps only matching root names (case-insensitive substring).
	status, body = get("?op=CHECKOUT")
	if status != http.StatusOK {
		t.Fatalf("traces op filter: status %d", status)
	}
	got := names(body)
	if len(got) == 0 {
		t.Fatal("op=CHECKOUT matched nothing; checkout traffic was traced")
	}
	for _, n := range got {
		if !strings.Contains(strings.ToLower(n), "checkout") {
			t.Fatalf("op filter leaked trace %q", n)
		}
	}

	// A threshold far above any test op filters everything out.
	status, body = get("?min_ms=600000")
	if status != http.StatusOK {
		t.Fatalf("traces min_ms filter: status %d", status)
	}
	if got := names(body); len(got) != 0 {
		t.Fatalf("min_ms=600000 kept %v", got)
	}
	// min_ms=0 keeps everything and composes with op=.
	status, body = get("?min_ms=0&op=checkout")
	if status != http.StatusOK || len(names(body)) == 0 {
		t.Fatalf("min_ms=0&op=checkout: status %d, names %v", status, names(body))
	}

	for _, bad := range []string{"-1", "fast"} {
		if status, _ := get("?min_ms=" + bad); status != http.StatusBadRequest {
			t.Fatalf("min_ms=%s: status %d, want 400", bad, status)
		}
	}
}
