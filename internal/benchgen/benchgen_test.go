package benchgen

import (
	"reflect"
	"testing"

	"orpheusdb/internal/vgraph"
)

func small(t *testing.T, w Workload) *Dataset {
	t.Helper()
	return Generate(Config{
		Workload:      w,
		TargetRecords: 5000,
		Branches:      20,
		OpsPerCommit:  25,
		Seed:          42,
	})
}

func TestGenerateDeterministic(t *testing.T) {
	a := small(t, SCI)
	b := small(t, SCI)
	if len(a.Commits) != len(b.Commits) {
		t.Fatal("nondeterministic commit count")
	}
	for i := range a.Commits {
		if !reflect.DeepEqual(a.Commits[i].Records, b.Commits[i].Records) {
			t.Fatalf("commit %d differs", i)
		}
	}
	if !reflect.DeepEqual(a.RecordRow(7), b.RecordRow(7)) {
		t.Fatal("record payloads nondeterministic")
	}
	c := Generate(Config{Workload: SCI, TargetRecords: 5000, Branches: 20, OpsPerCommit: 25, Seed: 43})
	if reflect.DeepEqual(a.Commits[len(a.Commits)-1].Records, c.Commits[len(c.Commits)-1].Records) {
		t.Fatal("different seeds produced identical datasets")
	}
}

func TestSCIIsTree(t *testing.T) {
	d := small(t, SCI)
	g := d.Graph()
	if !g.IsTree() {
		t.Fatal("SCI must be a tree")
	}
	s := d.Stats()
	if s.DupR != 0 {
		t.Fatalf("SCI |R̂| = %d, want 0", s.DupR)
	}
	if s.V != len(d.Commits) {
		t.Fatalf("V = %d, commits = %d", s.V, len(d.Commits))
	}
}

func TestCURIsDAGWithModestDuplication(t *testing.T) {
	d := small(t, CUR)
	g := d.Graph()
	if g.IsTree() {
		t.Fatal("CUR must contain merges")
	}
	merges := 0
	for _, c := range d.Commits {
		if c.IsMerge {
			if len(c.Parents) != 2 {
				t.Fatalf("merge with %d parents", len(c.Parents))
			}
			merges++
		} else if len(c.Parents) > 1 {
			t.Fatal("non-merge with multiple parents")
		}
	}
	if merges == 0 {
		t.Fatal("no merges generated")
	}
	s := d.Stats()
	// Table 2: |R̂| is about 7-10% of |R|; allow a generous band.
	ratio := float64(s.DupR) / float64(s.R)
	if ratio <= 0 || ratio > 0.35 {
		t.Fatalf("|R̂|/|R| = %.2f outside plausible band", ratio)
	}
}

func TestRecordCountNearTarget(t *testing.T) {
	d := small(t, SCI)
	s := d.Stats()
	if s.R < 3500 || s.R > 6500 {
		t.Fatalf("|R| = %d, target 5000", s.R)
	}
	if d.NumRecords < s.R {
		t.Fatalf("allocated %d rids but %d appear in versions", d.NumRecords, s.R)
	}
}

func TestCommitsAreConsistent(t *testing.T) {
	d := small(t, SCI)
	seen := map[vgraph.VersionID]bool{}
	for _, c := range d.Commits {
		for _, p := range c.Parents {
			if !seen[p] {
				t.Fatalf("commit %d references future/unknown parent %d", c.ID, p)
			}
		}
		seen[c.ID] = true
		// Records sorted and unique.
		for i := 1; i < len(c.Records); i++ {
			if c.Records[i-1] >= c.Records[i] {
				t.Fatalf("commit %d records not sorted/unique", c.ID)
			}
		}
		// New records appear in the version.
		inVersion := map[vgraph.RecordID]bool{}
		for _, r := range c.Records {
			inVersion[r] = true
		}
		for _, r := range c.NewRecords {
			if !inVersion[r] {
				t.Fatalf("commit %d: new record %d missing from version", c.ID, r)
			}
		}
	}
}

func TestUniqueKeysWithinVersion(t *testing.T) {
	// The relation primary key must hold within each version (the paper's
	// per-version key constraint).
	d := small(t, CUR)
	for _, c := range d.Commits {
		keys := map[int64]bool{}
		for _, r := range c.Records {
			k := d.KeyOf[r]
			if keys[k] {
				t.Fatalf("commit %d: duplicate key %d", c.ID, k)
			}
			keys[k] = true
		}
	}
}

func TestRecordRowShape(t *testing.T) {
	d := small(t, SCI)
	row := d.RecordRow(5)
	if len(row) != d.Config.NumAttrs {
		t.Fatalf("row width %d, want %d", len(row), d.Config.NumAttrs)
	}
	if row[0] != d.KeyOf[5] {
		t.Fatal("column 0 must be the logical key")
	}
	// Updated record versions share the key but differ in payload.
	var updated vgraph.RecordID
	for rid := vgraph.RecordID(2); int(rid) < len(d.KeyOf); rid++ {
		if d.KeyOf[rid] == d.KeyOf[1] && rid != 1 {
			updated = rid
			break
		}
	}
	if updated != 0 {
		a, b := d.RecordRow(1), d.RecordRow(updated)
		if a[0] != b[0] {
			t.Fatal("update lost its key")
		}
		if reflect.DeepEqual(a, b) {
			t.Fatal("update produced identical payload")
		}
	}
}

func TestStandardNamesAndScale(t *testing.T) {
	d, err := Standard("SCI_1M", 0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if s.V != 1000 {
		t.Fatalf("SCI_1M keeps |V| = 1000 at any scale, got %d", s.V)
	}
	if s.B != 100 || s.I != 10 {
		t.Fatalf("params B=%d I=%d", s.B, s.I)
	}
	if _, err := Standard("SCI_99M", 1, 1); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	for _, name := range []string{"SCI_2M", "SCI_5M", "SCI_8M", "SCI_10M", "CUR_1M", "CUR_5M", "CUR_10M"} {
		if _, err := Standard(name, 0.002, 1); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestWorkloadString(t *testing.T) {
	if SCI.String() != "SCI" || CUR.String() != "CUR" {
		t.Fatal("workload names wrong")
	}
}

func TestAvgVersionSizeBand(t *testing.T) {
	// The paper's SCI datasets have |E|/|V| ≈ 11×I; ours should land in
	// the same decade.
	d := small(t, SCI)
	s := d.Stats()
	ratio := s.AvgVSize / float64(s.I)
	if ratio < 2 || ratio > 60 {
		t.Fatalf("|E|/|V| = %.0f = %.1f×I, outside plausible band", s.AvgVSize, ratio)
	}
}
