// Package benchgen generates the versioning benchmark workloads of Section
// 5.1 (from Maddox et al.'s Decibel benchmark): the SCI workload, a mainline
// with data-science branches (a version tree), and the CUR workload, a
// curated dataset whose branches periodically merge back (a version DAG).
// Generation is deterministic for a given configuration.
package benchgen

import (
	"fmt"
	"math/rand"
	"sort"

	"orpheusdb/internal/vgraph"
)

// Workload selects the benchmark shape.
type Workload int

// Workloads.
const (
	SCI Workload = iota // science: tree-shaped branching
	CUR                 // curation: DAG with periodic merges
)

// String names the workload.
func (w Workload) String() string {
	if w == CUR {
		return "CUR"
	}
	return "SCI"
}

// Config parameterizes a benchmark dataset, mirroring Table 2: the number of
// branches B, the target number of distinct records |R|, and the number of
// insert/update operations per commit I.
type Config struct {
	Workload      Workload
	Name          string  // label, e.g. "SCI_1M"
	TargetRecords int64   // |R| target; #versions is derived as TargetRecords/OpsPerCommit
	Branches      int     // B
	OpsPerCommit  int     // I
	NumAttrs      int     // data attributes per record (paper: 100 4-byte ints)
	UpdateFrac    float64 // fraction of ops that update an existing record (default 0.9)
	DeleteFrac    float64 // fraction of ops that delete (default 0.005, "only a few deleted tuples")
	MergeEvery    int     // CUR: a branch becomes merge-eligible after this many commits (default 5)
	MergeFrac     float64 // CUR: fraction of branches that merge back (default 0.25)
	MainlineFrac  float64 // share of commits landing directly on the mainline (default 0.25)
	Seed          int64
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.OpsPerCommit <= 0 {
		c.OpsPerCommit = 1000
	}
	if c.Branches <= 0 {
		c.Branches = 10
	}
	if c.NumAttrs <= 0 {
		c.NumAttrs = 10
	}
	if c.UpdateFrac == 0 {
		c.UpdateFrac = 0.9
	}
	if c.DeleteFrac == 0 {
		c.DeleteFrac = 0.005
	}
	if c.MergeEvery <= 0 {
		c.MergeEvery = 5
	}
	if c.MergeFrac == 0 {
		c.MergeFrac = 0.25
	}
	if c.MainlineFrac == 0 {
		c.MainlineFrac = 0.25
	}
	if c.TargetRecords <= 0 {
		c.TargetRecords = int64(c.OpsPerCommit) * 100
	}
	if c.Name == "" {
		c.Name = fmt.Sprintf("%s_%d", c.Workload, c.TargetRecords)
	}
	return c
}

// Commit is one version in commit order: its parents (two for CUR merges)
// and the full sorted record list of the resulting version.
type Commit struct {
	ID      vgraph.VersionID
	Parents []vgraph.VersionID
	Records []vgraph.RecordID
	// NewRecords lists the rids first created by this commit.
	NewRecords []vgraph.RecordID
	// IsMerge marks CUR merge commits.
	IsMerge bool
}

// Dataset is a generated benchmark instance.
type Dataset struct {
	Config  Config
	Commits []Commit
	// KeyOf maps each rid to its logical primary key: updates create a new
	// rid with the same key, so two rids with equal keys are two versions
	// of "the same" record, as in the paper's protein example.
	KeyOf []int64
	// NumRecords is the number of rids allocated during generation; rids
	// superseded within their own commit never appear in any version, so
	// the dataset's |R| (Stats().R) can be slightly smaller.
	NumRecords int64

	bip   *vgraph.Bipartite
	graph *vgraph.Graph
}

// Bipartite returns the version-record bipartite graph of the dataset.
func (d *Dataset) Bipartite() *vgraph.Bipartite {
	if d.bip == nil {
		b := vgraph.NewBipartite()
		for _, c := range d.Commits {
			// Commit record lists are already sorted; sharing the slice
			// with the bipartite graph halves generator memory.
			b.AddVersion(c.ID, c.Records)
		}
		d.bip = b
	}
	return d.bip
}

// Graph returns the version graph with record-intersection edge weights.
func (d *Dataset) Graph() *vgraph.Graph {
	if d.graph == nil {
		b := d.Bipartite()
		parents := make(map[vgraph.VersionID][]vgraph.VersionID, len(d.Commits))
		for _, c := range d.Commits {
			parents[c.ID] = c.Parents
		}
		g, err := b.Graph(parents)
		if err != nil {
			panic("benchgen: inconsistent dataset: " + err.Error())
		}
		d.graph = g
	}
	return d.graph
}

// Stats summarizes the dataset as in Table 2.
type Stats struct {
	Name     string
	V        int   // |V|
	R        int64 // |R|
	E        int64 // |E|
	B        int   // branches
	I        int   // ops per commit
	DupR     int64 // |R̂| (CUR only; 0 for trees)
	AvgVSize float64
}

// Stats computes the Table 2 row for the dataset.
func (d *Dataset) Stats() Stats {
	b := d.Bipartite()
	g := d.Graph()
	s := Stats{
		Name: d.Config.Name,
		V:    b.NumVersions(),
		R:    b.NumRecords(),
		E:    b.NumEdges(),
		B:    d.Config.Branches,
		I:    d.Config.OpsPerCommit,
	}
	if !g.IsTree() {
		s.DupR = g.ToTree().DupRecords(b)
	}
	if s.V > 0 {
		s.AvgVSize = float64(s.E) / float64(s.V)
	}
	return s
}

// RecordRow deterministically materializes the data attributes of a record.
// Column 0 is the logical key (the relation's primary key); the remaining
// NumAttrs-1 columns are pseudo-random ints derived from the rid, so updated
// record versions share the key but differ in payload.
func (d *Dataset) RecordRow(rid vgraph.RecordID) []int64 {
	n := d.Config.NumAttrs
	row := make([]int64, n)
	row[0] = d.KeyOf[rid]
	x := uint64(rid)*0x9e3779b97f4a7c15 + uint64(d.Config.Seed)
	for i := 1; i < n; i++ {
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		row[i] = int64(x % 1000)
	}
	return row
}

// branch tracks one line of development during generation.
type branch struct {
	head         vgraph.VersionID
	parentBranch int
	commits      int  // lifetime commits on this branch
	willMerge    bool // CUR: decided at spawn time
	retired      bool // CUR: merged back; no further commits
}

// Generate builds a dataset from the configuration.
func Generate(cfg Config) *Dataset {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed + 7))
	d := &Dataset{Config: cfg, KeyOf: []int64{0}} // rid 0 unused
	numVersions := int(cfg.TargetRecords / int64(cfg.OpsPerCommit))
	if numVersions < 2 {
		numVersions = 2
	}

	var nextRid vgraph.RecordID = 1
	var nextKey int64 = 1
	newRecord := func(key int64) vgraph.RecordID {
		rid := nextRid
		nextRid++
		d.KeyOf = append(d.KeyOf, key)
		return rid
	}

	var nextVid vgraph.VersionID = 1
	commit := func(parents []vgraph.VersionID, records, created []vgraph.RecordID, isMerge bool) vgraph.VersionID {
		id := nextVid
		nextVid++
		sort.Slice(records, func(i, j int) bool { return records[i] < records[j] })
		// A record created by an op can be superseded by a later op in the
		// same commit; only survivors count as the version's new records.
		if len(created) > 0 {
			kept := created[:0]
			for _, r := range created {
				i := sort.Search(len(records), func(i int) bool { return records[i] >= r })
				if i < len(records) && records[i] == r {
					kept = append(kept, r)
				}
			}
			created = kept
		}
		d.Commits = append(d.Commits, Commit{
			ID: id, Parents: parents, Records: records, NewRecords: created, IsMerge: isMerge,
		})
		return id
	}

	// evolve applies I operations to the parent record list.
	evolve := func(parent []vgraph.RecordID) (records, created []vgraph.RecordID) {
		recs := append([]vgraph.RecordID(nil), parent...)
		for op := 0; op < cfg.OpsPerCommit; op++ {
			r := rng.Float64()
			switch {
			case r < cfg.DeleteFrac && len(recs) > 1:
				i := rng.Intn(len(recs))
				recs[i] = recs[len(recs)-1]
				recs = recs[:len(recs)-1]
			case r < cfg.DeleteFrac+cfg.UpdateFrac && len(recs) > 0:
				i := rng.Intn(len(recs))
				nr := newRecord(d.KeyOf[recs[i]])
				recs[i] = nr
				created = append(created, nr)
			default:
				nr := newRecord(nextKey)
				nextKey++
				recs = append(recs, nr)
				created = append(created, nr)
			}
		}
		return recs, created
	}

	// Root commit: I fresh records.
	rootRecs := make([]vgraph.RecordID, 0, cfg.OpsPerCommit)
	for i := 0; i < cfg.OpsPerCommit; i++ {
		r := newRecord(nextKey)
		nextKey++
		rootRecs = append(rootRecs, r)
	}
	root := commit(nil, rootRecs, append([]vgraph.RecordID(nil), rootRecs...), false)

	mainline := &branch{head: root, parentBranch: -1}
	branches := []*branch{mainline}
	recordsOf := map[vgraph.VersionID][]vgraph.RecordID{root: rootRecs}

	// Branches spawn at evenly spaced commit indexes, forking from the
	// current head of a parent branch — "from different points on the
	// mainline as well as from other already existing branches". In CUR a
	// branch decides at spawn time whether it will merge back; it does so
	// once it has MergeEvery commits, then retires.
	spawnEvery := numVersions / cfg.Branches
	if spawnEvery < 1 {
		spawnEvery = 1
	}
	pickBranch := func() *branch {
		if rng.Float64() < cfg.MainlineFrac {
			return mainline
		}
		alive := make([]*branch, 0, len(branches))
		for _, b := range branches {
			if !b.retired {
				alive = append(alive, b)
			}
		}
		return alive[rng.Intn(len(alive))]
	}

	for len(d.Commits) < numVersions {
		step := len(d.Commits)
		if step%spawnEvery == 0 && len(branches) < cfg.Branches {
			// Parent is the mainline half the time, else a random live
			// branch.
			pb := 0
			if rng.Float64() >= 0.5 {
				pb = rng.Intn(len(branches))
				if branches[pb].retired {
					pb = 0
				}
			}
			branches = append(branches, &branch{
				head:         branches[pb].head,
				parentBranch: pb,
				willMerge:    cfg.Workload == CUR && rng.Float64() < cfg.MergeFrac,
			})
		}
		br := pickBranch()

		if br.willMerge && br.commits >= cfg.MergeEvery {
			// Merge the branch back into its parent branch; the branch's
			// records take precedence on key conflicts.
			pb := branches[br.parentBranch]
			if pb.retired {
				pb = mainline
			}
			if pb.head != br.head {
				merged := mergeRecords(d, recordsOf[br.head], recordsOf[pb.head])
				id := commit([]vgraph.VersionID{br.head, pb.head}, merged, nil, true)
				recordsOf[id] = merged
				pb.head = id
			}
			br.retired = true
			br.willMerge = false
			continue
		}

		recs, created := evolve(recordsOf[br.head])
		id := commit([]vgraph.VersionID{br.head}, recs, created, false)
		recordsOf[id] = recs
		br.head = id
		br.commits++
	}

	d.NumRecords = int64(nextRid - 1)
	return d
}

// mergeRecords unions two record lists with primary-key precedence: records
// of the first (higher-precedence) list win conflicts on logical key, exactly
// like the paper's multi-version checkout.
func mergeRecords(d *Dataset, first, second []vgraph.RecordID) []vgraph.RecordID {
	seen := make(map[int64]struct{}, len(first))
	out := make([]vgraph.RecordID, 0, len(first)+len(second))
	for _, r := range first {
		k := d.KeyOf[r]
		if _, ok := seen[k]; ok {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, r)
	}
	for _, r := range second {
		k := d.KeyOf[r]
		if _, ok := seen[k]; ok {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, r)
	}
	return out
}

// Standard returns the scaled-down counterpart of one of the paper's named
// datasets. The scale factor shrinks |R| (and hence |V| = |R|/I) while
// preserving the branching structure: scale=1.0 reproduces the paper's
// parameters exactly.
func Standard(name string, scale float64, seed int64) (*Dataset, error) {
	type params struct {
		w Workload
		r int64
		b int
		i int
	}
	table := map[string]params{
		"SCI_1M":  {SCI, 1_000_000, 100, 1000},
		"SCI_2M":  {SCI, 2_000_000, 100, 2000},
		"SCI_5M":  {SCI, 5_000_000, 100, 5000},
		"SCI_8M":  {SCI, 8_000_000, 100, 8000},
		"SCI_10M": {SCI, 10_000_000, 1000, 1000},
		"CUR_1M":  {CUR, 1_000_000, 100, 1000},
		"CUR_5M":  {CUR, 5_000_000, 100, 5000},
		"CUR_10M": {CUR, 10_000_000, 1000, 1000},
	}
	p, ok := table[name]
	if !ok {
		return nil, fmt.Errorf("benchgen: unknown dataset %q", name)
	}
	if scale <= 0 {
		scale = 1
	}
	r := int64(float64(p.r) * scale)
	i := int(float64(p.i) * scale)
	if i < 10 {
		i = 10
	}
	if r < int64(i)*10 {
		r = int64(i) * 10
	}
	return Generate(Config{
		Workload:      p.w,
		Name:          name,
		TargetRecords: r,
		Branches:      p.b,
		OpsPerCommit:  i,
		Seed:          seed,
	}), nil
}
