package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"orpheusdb/internal/obs"
)

// Policy selects when appended records reach stable storage.
type Policy uint8

// Fsync policies. PolicyAlways fsyncs before every Append returns (an
// acknowledged mutation survives an OS crash); PolicyInterval fsyncs on a
// background timer (bounded loss window, near-memory append latency);
// PolicyOff never fsyncs explicitly (the OS flushes at its leisure —
// process crashes still lose nothing, power loss may).
const (
	PolicyAlways Policy = iota
	PolicyInterval
	PolicyOff
)

// String names the policy as accepted by ParsePolicy.
func (p Policy) String() string {
	switch p {
	case PolicyAlways:
		return "always"
	case PolicyInterval:
		return "interval"
	case PolicyOff:
		return "off"
	}
	return fmt.Sprintf("policy(%d)", uint8(p))
}

// ParsePolicy parses a policy name (always | interval | off).
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(s) {
	case "always":
		return PolicyAlways, nil
	case "interval":
		return PolicyInterval, nil
	case "off", "none":
		return PolicyOff, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always|interval|off)", s)
}

// Defaults for Options left zero.
const (
	DefaultSegmentBytes = 16 << 20
	DefaultSyncInterval = 50 * time.Millisecond
)

// maxRecordBytes bounds a single frame; larger lengths in a file are treated
// as corruption.
const maxRecordBytes = 256 << 20

// Options configures a Log.
type Options struct {
	// Dir is the segment directory (created if missing).
	Dir string
	// SegmentBytes rotates the active segment once it exceeds this size
	// (default 16 MiB).
	SegmentBytes int64
	// Policy selects the fsync policy (default PolicyAlways).
	Policy Policy
	// SyncInterval is the background fsync cadence under PolicyInterval
	// (default 50ms).
	SyncInterval time.Duration
	// AppendBytes, when set, observes the framed size of every appended
	// record, and FsyncSeconds the latency of every fsync (both the
	// per-append syncs of PolicyAlways and the background syncs of
	// PolicyInterval). Histogram methods are nil-safe, so leaving these
	// unset costs nothing.
	AppendBytes  *obs.Histogram
	FsyncSeconds *obs.Histogram
}

// Log is an append-only record log over a directory of segment files. All
// methods are safe for concurrent use. LSNs are dense: the n-th record ever
// appended has LSN n, starting at 1, so a snapshot taken at LSN L plus the
// records in (L, tail] reconstructs the exact store state.
type Log struct {
	opts Options

	mu       sync.Mutex
	f        *os.File // active segment
	lock     *os.File // held flock on <dir>/wal.lock: one process per log
	segFirst uint64   // first LSN the active segment holds (== nextLSN at creation)
	segBytes int64    // bytes written to the active segment
	nextLSN  uint64   // LSN the next Append will get
	dirty    bool     // unsynced writes under PolicyInterval
	broken   error    // first append/fsync failure; log refuses writes afterwards
	closed   bool
	updated  chan struct{} // closed+replaced per append; see AppendWait

	stop chan struct{} // interval syncer shutdown
	done chan struct{}
}

// frame layout: length uint32 | crc uint32 | body; body = lsn uint64 | payload.
const frameHeader = 8

var crcTable = crc32.MakeTable(crc32.Castagnoli)

func segmentName(firstLSN uint64) string {
	return fmt.Sprintf("wal-%016d.log", firstLSN)
}

func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	n, err := strconv.ParseUint(name[4:len(name)-4], 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// Open opens (creating if necessary) the log in opts.Dir, validates every
// segment, and repairs the tail: the first frame with a bad length or CRC —
// a torn append or corruption — truncates its segment at that offset, and
// any later segments are removed, so the log is exactly the valid prefix of
// what was appended. The next LSN continues after the last valid record.
func Open(opts Options) (*Log, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("wal: empty directory")
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.SyncInterval <= 0 {
		opts.SyncInterval = DefaultSyncInterval
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	// Exactly one process may own a log: tail repair truncates the active
	// segment, and two writers would interleave frames and LSN counters.
	lock, err := acquireDirLock(opts.Dir)
	if err != nil {
		return nil, err
	}
	l := &Log{opts: opts, lock: lock, nextLSN: 1}
	opened := false
	defer func() {
		if !opened {
			releaseDirLock(lock)
		}
	}()
	segs, err := l.segments()
	if err != nil {
		return nil, err
	}
	// Validate segments in order; on the first invalid frame, truncate that
	// segment there and drop everything after it.
	for i, seg := range segs {
		last, validBytes, clean, err := scanSegment(filepath.Join(opts.Dir, seg.name))
		if err != nil {
			return nil, err
		}
		if last >= l.nextLSN {
			l.nextLSN = last + 1
		}
		if clean {
			continue
		}
		if err := os.Truncate(filepath.Join(opts.Dir, seg.name), validBytes); err != nil {
			return nil, fmt.Errorf("wal: repair %s: %w", seg.name, err)
		}
		for _, later := range segs[i+1:] {
			if err := os.Remove(filepath.Join(opts.Dir, later.name)); err != nil {
				return nil, fmt.Errorf("wal: repair: %w", err)
			}
		}
		break
	}
	if err := l.openActive(); err != nil {
		return nil, err
	}
	if opts.Policy == PolicyInterval {
		l.stop = make(chan struct{})
		l.done = make(chan struct{})
		go l.syncLoop()
	}
	opened = true
	return l, nil
}

type segInfo struct {
	name  string
	first uint64
}

// segments lists segment files sorted by first LSN. Caller may hold l.mu.
func (l *Log) segments() ([]segInfo, error) {
	entries, err := os.ReadDir(l.opts.Dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var segs []segInfo
	for _, e := range entries {
		if first, ok := parseSegmentName(e.Name()); ok {
			segs = append(segs, segInfo{name: e.Name(), first: first})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	return segs, nil
}

// openActive opens the highest segment for appending, or creates the first
// one. A fully truncated (empty) tail segment is reused as-is.
func (l *Log) openActive() error {
	segs, err := l.segments()
	if err != nil {
		return err
	}
	if len(segs) == 0 {
		return l.newSegment()
	}
	tail := segs[len(segs)-1]
	f, err := os.OpenFile(filepath.Join(l.opts.Dir, tail.name), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	l.f = f
	l.segFirst = tail.first
	l.segBytes = st.Size()
	return nil
}

// newSegment rotates to a fresh segment starting at nextLSN. Caller holds
// l.mu (or is Open, pre-concurrency).
func (l *Log) newSegment() error {
	if l.f != nil {
		if l.dirty {
			if err := l.f.Sync(); err != nil {
				l.broken = err
				return fmt.Errorf("wal: fsync before rotate: %w", err)
			}
			l.dirty = false
		}
		l.f.Close()
		l.f = nil
	}
	name := filepath.Join(l.opts.Dir, segmentName(l.nextLSN))
	f, err := os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	// The new segment's directory entry must itself be durable, or a power
	// loss could drop the whole file along with every fsynced frame in it.
	if err := syncDir(l.opts.Dir); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.segFirst = l.nextLSN
	l.segBytes = 0
	return nil
}

// syncDir fsyncs a directory so renames/creations within it survive power
// loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	return nil
}

// EnsureNextLSN raises the next LSN to at least min. The store calls this
// after loading a snapshot whose LSN is ahead of the log (e.g. the log
// directory was removed), so fresh appends never collide with LSNs the
// snapshot already covers.
func (l *Log) EnsureNextLSN(min uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.nextLSN >= min {
		return nil
	}
	l.nextLSN = min
	// Start a fresh segment so the file name matches its first LSN.
	return l.newSegment()
}

// Append encodes rec, appends it with a CRC frame, and returns its LSN. Under
// PolicyAlways the record is fsynced before returning. A failed append marks
// the log broken: the store keeps serving from memory and checkpointing, but
// no further records are accepted (restart to recover the log).
//
// Errors after the frame bytes reached the file (fsync or rotation failures)
// still return the LSN alongside the error: the record exists in the log, so
// the caller must advance its applied-LSN watermark — otherwise a later
// snapshot stamped with the old watermark would make recovery replay this
// record over state that already contains it. Only lsn == 0 means the log
// holds nothing (or a torn tail the next Open will trim).
func (l *Log) Append(rec *Record) (uint64, error) {
	payload := rec.Encode()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, fmt.Errorf("wal: log closed")
	}
	if l.broken != nil {
		return 0, fmt.Errorf("wal: log disabled after append failure: %w", l.broken)
	}
	lsn := l.nextLSN
	body := make([]byte, 8, 8+len(payload))
	binary.LittleEndian.PutUint64(body, lsn)
	body = append(body, payload...)
	if len(body) > maxRecordBytes {
		// Never write a frame recovery would treat as corruption and trim.
		return 0, fmt.Errorf("wal: record of %d bytes exceeds the %d-byte frame limit", len(body), maxRecordBytes)
	}
	frame := make([]byte, frameHeader, frameHeader+len(body))
	binary.LittleEndian.PutUint32(frame[0:], uint32(len(body)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(body, crcTable))
	frame = append(frame, body...)
	if _, err := l.f.Write(frame); err != nil {
		l.broken = err
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	l.segBytes += int64(len(frame))
	l.nextLSN++
	l.notifyAppend()
	l.opts.AppendBytes.Observe(float64(len(frame)))
	switch l.opts.Policy {
	case PolicyAlways:
		if err := l.syncLocked(); err != nil {
			return lsn, err
		}
	case PolicyInterval:
		l.dirty = true
	}
	if l.segBytes >= l.opts.SegmentBytes {
		if err := l.newSegment(); err != nil {
			l.broken = err
			return lsn, fmt.Errorf("wal: rotate: %w", err)
		}
	}
	return lsn, nil
}

// Sync forces an fsync of the active segment. A failed fsync is not
// retryable (the kernel may have dropped the dirty pages), so it breaks the
// log rather than pretending a later sync could still cover the data.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.closed || l.f == nil {
		return nil
	}
	start := time.Now()
	if err := l.f.Sync(); err != nil {
		l.broken = err
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.opts.FsyncSeconds.ObserveDuration(time.Since(start))
	l.dirty = false
	return nil
}

func (l *Log) syncLoop() {
	defer close(l.done)
	t := time.NewTicker(l.opts.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			l.mu.Lock()
			if l.dirty {
				l.syncLocked() // failure recorded in l.broken
			}
			l.mu.Unlock()
		case <-l.stop:
			return
		}
	}
}

// Close stops the background syncer, fsyncs, closes the active segment, and
// releases the directory lock.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	if l.stop != nil {
		close(l.stop)
		<-l.done
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var err error
	if l.f != nil {
		err = l.f.Sync()
		if cerr := l.f.Close(); err == nil {
			err = cerr
		}
		l.f = nil
	}
	releaseDirLock(l.lock)
	l.lock = nil
	return err
}

// NextLSN returns the LSN the next append will receive.
func (l *Log) NextLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN
}

// Err returns the error that broke the log, if any.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.broken
}

// Stat describes the log's physical state.
type Stat struct {
	Segments  int
	SizeBytes int64
	NextLSN   uint64
}

// Stat reports segment count and total size. The directory walk runs
// without the log lock — status polling (health endpoints) must never stall
// a commit's append behind filesystem metadata I/O; the numbers are a
// consistent-enough snapshot for operators.
func (l *Log) Stat() (Stat, error) {
	l.mu.Lock()
	next := l.nextLSN
	l.mu.Unlock()
	segs, err := l.segments()
	if err != nil {
		return Stat{}, err
	}
	st := Stat{Segments: len(segs), NextLSN: next}
	for _, s := range segs {
		if fi, err := os.Stat(filepath.Join(l.opts.Dir, s.name)); err == nil {
			st.SizeBytes += fi.Size()
		}
	}
	return st, nil
}

// Truncate removes segments made obsolete by a checkpoint covering every LSN
// <= upto: a segment may go once the next segment's first LSN shows all its
// records are covered. If the active segment itself is fully covered and
// non-empty it is first rotated, so checkpoints steadily reclaim space even
// under low write rates.
func (l *Log) Truncate(upto uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	if l.segBytes > 0 && l.nextLSN <= upto+1 {
		if err := l.newSegment(); err != nil {
			return err
		}
	}
	segs, err := l.segments()
	if err != nil {
		return err
	}
	for i, s := range segs {
		// The segment's records end where the next segment begins.
		var end uint64
		if i+1 < len(segs) {
			end = segs[i+1].first - 1
		} else {
			break // never remove the active (last) segment
		}
		if end > upto {
			break
		}
		if err := os.Remove(filepath.Join(l.opts.Dir, s.name)); err != nil {
			return fmt.Errorf("wal: truncate: %w", err)
		}
	}
	return nil
}

// Replay invokes fn for every record with LSN > from, in order. The caller
// must have Opened the log (repairing any torn tail) first. LSNs are dense;
// a gap between from and the first available record means the log was
// truncated past the snapshot and recovery cannot be exact, which is
// reported as an error. Replay is the strict (quiescent-log) mode of the
// resumable iterator behind OpenAt.
func (l *Log) Replay(from uint64, fn func(lsn uint64, rec *Record) error) error {
	it, err := l.openIter(from, false)
	if err != nil {
		return err
	}
	defer it.Close()
	for {
		lsn, rec, _, err := it.Next()
		if errors.Is(err, ErrNoRecord) {
			return nil // exhausted the log
		}
		if err != nil {
			return err
		}
		if err := fn(lsn, rec); err != nil {
			return err
		}
	}
}

// readFrame parses one frame from the start of data, returning the body,
// bytes consumed, and whether the frame was valid and complete.
func readFrame(data []byte) (body []byte, n int, ok bool) {
	if len(data) < frameHeader {
		return nil, 0, false
	}
	length := binary.LittleEndian.Uint32(data[0:])
	crc := binary.LittleEndian.Uint32(data[4:])
	if length < 8 || length > maxRecordBytes {
		return nil, 0, false
	}
	end := frameHeader + int(length)
	if end > len(data) {
		return nil, 0, false
	}
	body = data[frameHeader:end]
	if crc32.Checksum(body, crcTable) != crc {
		return nil, 0, false
	}
	return body, end, true
}

// scanSegment walks a segment validating frames: it returns the last valid
// LSN seen (0 if none), the byte offset where validity ends, and whether the
// whole file was valid.
func scanSegment(path string) (lastLSN uint64, validBytes int64, clean bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, false, fmt.Errorf("wal: scan: %w", err)
	}
	pos := 0
	for pos < len(data) {
		body, n, ok := readFrame(data[pos:])
		if !ok {
			return lastLSN, int64(pos), false, nil
		}
		// Frames must also decode: a CRC collision over garbage is
		// astronomically unlikely but cheap to rule out at open time.
		if _, derr := Decode(body[8:]); derr != nil {
			return lastLSN, int64(pos), false, nil
		}
		lastLSN = binary.LittleEndian.Uint64(body)
		pos += n
	}
	return lastLSN, int64(pos), true, nil
}
