package wal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// openSmallSeg opens a log with tiny segments so a handful of records spans
// several rotation boundaries.
func openSmallSeg(t *testing.T, dir string, segBytes int64) *Log {
	t.Helper()
	l, err := Open(Options{Dir: dir, Policy: PolicyOff, SegmentBytes: segBytes})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func appendRecs(t *testing.T, l *Log, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := l.Append(&Record{Type: TypeUserAdd, User: strings.Repeat("u", 20)}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

// drain collects every record an iterator currently has, stopping at
// ErrNoRecord.
func drain(t *testing.T, it *Iterator) []uint64 {
	t.Helper()
	var got []uint64
	for {
		lsn, rec, frame, err := it.Next()
		if errors.Is(err, ErrNoRecord) {
			return got
		}
		if err != nil {
			t.Fatalf("next: %v", err)
		}
		if rec == nil {
			t.Fatalf("LSN %d: nil record", lsn)
		}
		// The raw frame must round-trip through the stream-side parser: the
		// replication wire format is exactly the on-disk frame.
		wlsn, wrec, n, werr := ReadFrameFrom(bytes.NewReader(frame))
		if werr != nil || wlsn != lsn || n != len(frame) || wrec == nil {
			t.Fatalf("LSN %d: frame does not re-parse: lsn=%d n=%d err=%v", lsn, wlsn, n, werr)
		}
		got = append(got, lsn)
	}
}

// TestIteratorMidSegmentSeek opens an iterator at every possible LSN of a
// multi-segment log and checks it yields exactly the dense suffix.
func TestIteratorMidSegmentSeek(t *testing.T) {
	l := openSmallSeg(t, t.TempDir(), 150) // a few records per segment
	const n = 25
	appendRecs(t, l, n)
	if segs, _ := l.segments(); len(segs) < 3 {
		t.Fatalf("want >=3 segments for a meaningful seek test, got %d", len(segs))
	}
	for from := uint64(0); from <= n; from++ {
		it, err := l.OpenAt(from)
		if err != nil {
			t.Fatalf("OpenAt(%d): %v", from, err)
		}
		got := drain(t, it)
		it.Close()
		want := int(n - from)
		if len(got) != want {
			t.Fatalf("OpenAt(%d): got %d records, want %d", from, len(got), want)
		}
		for i, lsn := range got {
			if lsn != from+uint64(i)+1 {
				t.Fatalf("OpenAt(%d): record %d has LSN %d, want %d", from, i, lsn, from+uint64(i)+1)
			}
		}
	}
}

// TestIteratorRotationBoundary starts iterators exactly at segment-first
// LSNs and one before/after, the positions where segment switching happens.
func TestIteratorRotationBoundary(t *testing.T) {
	l := openSmallSeg(t, t.TempDir(), 120)
	appendRecs(t, l, 30)
	segs, err := l.segments()
	if err != nil || len(segs) < 3 {
		t.Fatalf("segments: %v (%d)", err, len(segs))
	}
	for _, seg := range segs {
		for _, from := range []uint64{seg.first - 1, seg.first, seg.first + 1} {
			if from > 30 {
				continue
			}
			it, err := l.OpenAt(from)
			if err != nil {
				t.Fatalf("OpenAt(%d): %v", from, err)
			}
			got := drain(t, it)
			it.Close()
			if len(got) != int(30-from) {
				t.Fatalf("OpenAt(%d) at boundary %d: got %d records, want %d", from, seg.first, len(got), 30-from)
			}
		}
	}
}

// TestIteratorLiveTail verifies a tailing iterator sees records appended
// after it caught up, and that AppendWait wakes it.
func TestIteratorLiveTail(t *testing.T) {
	l := openSmallSeg(t, t.TempDir(), DefaultSegmentBytes)
	appendRecs(t, l, 3)
	it, err := l.OpenAt(0)
	if err != nil {
		t.Fatalf("OpenAt: %v", err)
	}
	defer it.Close()
	if got := drain(t, it); len(got) != 3 {
		t.Fatalf("initial drain: %d records, want 3", len(got))
	}
	// Caught up: Next must keep reporting ErrNoRecord, not an error.
	if _, _, _, err := it.Next(); !errors.Is(err, ErrNoRecord) {
		t.Fatalf("at tail: err=%v, want ErrNoRecord", err)
	}
	ch := l.AppendWait()
	appendRecs(t, l, 2)
	select {
	case <-ch:
	case <-time.After(2 * time.Second):
		t.Fatal("AppendWait channel did not fire")
	}
	got := drain(t, it)
	if len(got) != 2 || got[0] != 4 || got[1] != 5 {
		t.Fatalf("post-append drain: %v, want [4 5]", got)
	}
}

// TestIteratorLiveRotation makes the writer rotate segments while a tailing
// iterator is mid-stream; the iterator must follow across the boundary.
func TestIteratorLiveRotation(t *testing.T) {
	l := openSmallSeg(t, t.TempDir(), 100)
	appendRecs(t, l, 2)
	it, err := l.OpenAt(0)
	if err != nil {
		t.Fatalf("OpenAt: %v", err)
	}
	defer it.Close()
	seen := drain(t, it)
	for i := 0; i < 20; i++ {
		appendRecs(t, l, 1)
		seen = append(seen, drain(t, it)...)
	}
	if len(seen) != 22 {
		t.Fatalf("saw %d records, want 22", len(seen))
	}
	for i, lsn := range seen {
		if lsn != uint64(i)+1 {
			t.Fatalf("record %d has LSN %d, want %d", i, lsn, i+1)
		}
	}
}

// TestIteratorGapAfterTruncate asks for records a checkpoint already
// reclaimed: the iterator must report a gap, not silently skip.
func TestIteratorGapAfterTruncate(t *testing.T) {
	l := openSmallSeg(t, t.TempDir(), 100)
	appendRecs(t, l, 12)
	if err := l.Truncate(8); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	segs, _ := l.segments()
	if segs[0].first <= 1 {
		t.Skip("truncate kept the first segment; no gap to exercise")
	}
	it, err := l.OpenAt(0)
	if err != nil {
		t.Fatalf("OpenAt: %v", err)
	}
	defer it.Close()
	_, _, _, err = it.Next()
	if err == nil || !strings.Contains(err.Error(), "gap") {
		t.Fatalf("err=%v, want a gap error", err)
	}
	// Resuming from the retained range still works.
	it2, err := l.OpenAt(segs[0].first - 1)
	if err != nil {
		t.Fatalf("OpenAt(retained): %v", err)
	}
	defer it2.Close()
	got := drain(t, it2)
	if len(got) == 0 || got[0] != segs[0].first {
		t.Fatalf("retained drain starts at %v, want %d", got, segs[0].first)
	}
}

// TestIteratorIgnoresTornTail writes garbage after the last valid frame (a
// torn append in progress); a tailing iterator must treat it as "no record
// yet" rather than failing.
func TestIteratorIgnoresTornTail(t *testing.T) {
	dir := t.TempDir()
	l := openSmallSeg(t, dir, DefaultSegmentBytes)
	appendRecs(t, l, 4)
	segs, _ := l.segments()
	path := filepath.Join(dir, segs[len(segs)-1].name)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// A plausible header promising more bytes than exist: mid-write state.
	if _, err := f.Write([]byte{0xff, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe, 0xef, 0x01}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	it, err := l.OpenAt(0)
	if err != nil {
		t.Fatalf("OpenAt: %v", err)
	}
	defer it.Close()
	if got := drain(t, it); len(got) != 4 {
		t.Fatalf("drained %d records, want 4 (torn tail must read as not-yet)", len(got))
	}
}

// TestReplayOverIterator pins Replay's contract on the shared iterator: the
// strict mode surfaces every record exactly once and preserves gap errors.
func TestReplayOverIterator(t *testing.T) {
	l := openSmallSeg(t, t.TempDir(), 130)
	appendRecs(t, l, 10)
	var got []uint64
	if err := l.Replay(4, func(lsn uint64, rec *Record) error {
		got = append(got, lsn)
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	if len(got) != 6 || got[0] != 5 || got[5] != 10 {
		t.Fatalf("replay from 4: %v", got)
	}
}
