// Package wal implements the store's write-ahead log: an append-only,
// length-prefixed, CRC-checksummed record log with segment rotation and
// configurable fsync policies. Every logical store mutation (dataset
// init/drop, commits including schema evolution and staged-table commits,
// partition optimization and maintenance, user registration) is encoded as
// one typed Record and appended before the mutation is acknowledged; crash
// recovery replays the log tail over the last engine snapshot.
//
// The log is torn-tail tolerant: opening a log validates every frame and
// truncates at the first bad length or CRC, so a crash mid-append (or a
// partially flushed page) costs at most the unacknowledged suffix.
//
// Lifecycle: Open acquires single-owner ownership of a segment directory
// (advisory flock on wal.lock) and repairs any torn tail; Append assigns the
// next LSN and persists one Record under the configured fsync Policy; Replay
// streams every record strictly after a snapshot's LSN watermark back to the
// caller; Truncate drops segments a successful checkpoint made obsolete; and
// Close fsyncs and releases the lock. LSNs are dense and store-wide, so
// "snapshot state ≡ replay of records 1..LSN" is the invariant recovery
// rests on (docs/ARCHITECTURE.md, "WAL-before-ack").
package wal

import (
	"encoding/binary"
	"fmt"
	"math"

	"orpheusdb/internal/bitmap"
	"orpheusdb/internal/engine"
)

// Type enumerates the logical mutations the log records.
type Type uint8

// Record types, one per store mutation. TypeCheckpoint is an informational
// marker written after a successful checkpoint so operators can see
// checkpoint history when inspecting a log.
const (
	TypeInit Type = iota + 1
	TypeDrop
	TypeCommit
	TypeCommitSchema
	TypeCommitTable
	TypeOptimize
	TypeMaintain
	TypeUserAdd
	TypeCheckpoint
	// Branch/merge records (codec version 2): branch registry mutations and
	// three-way merges. A merge that fast-forwards a branch head logs as a
	// branch advance; a true merge logs TypeMerge with the merged version's
	// membership bitmap for replay verification.
	TypeBranchCreate
	TypeBranchDelete
	TypeBranchAdvance
	TypeMerge
	// TypeOptimizeMigrate (codec version 3) logs one bounded batch of a
	// partition migration. The batch is anchor-addressed and deterministic
	// from state, so replaying the logged batch sequence over the same
	// starting state reproduces the live layout; a log cut mid-migration
	// replays to the consistent layout of the last logged batch boundary.
	TypeOptimizeMigrate
)

// String names the record type for status output and debugging.
func (t Type) String() string {
	switch t {
	case TypeInit:
		return "init"
	case TypeDrop:
		return "drop"
	case TypeCommit:
		return "commit"
	case TypeCommitSchema:
		return "commit-schema"
	case TypeCommitTable:
		return "commit-table"
	case TypeOptimize:
		return "optimize"
	case TypeMaintain:
		return "maintain"
	case TypeUserAdd:
		return "user-add"
	case TypeCheckpoint:
		return "checkpoint"
	case TypeBranchCreate:
		return "branch-create"
	case TypeBranchDelete:
		return "branch-delete"
	case TypeBranchAdvance:
		return "branch-advance"
	case TypeMerge:
		return "merge"
	case TypeOptimizeMigrate:
		return "optimize-migrate"
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// Record is one logged mutation. Which fields are meaningful depends on
// Type; unused fields stay zero and encode compactly. Members holds the
// committed version's record-membership bitmap (the rlist), serialized with
// the bitmap package's binary format; recovery uses it to verify that a
// replayed commit reconstructed exactly the acknowledged record set.
type Record struct {
	Type    Type
	Dataset string // CVD name (init/drop/commits/optimize/maintain)
	User    string // user ops and staged-table commits
	Table   string // staged table name (commit-table)
	Msg     string // commit message
	Model   string // data model kind (init)

	PrimaryKey []string        // init
	Cols       []engine.Column // init, schema-evolving and staged commits
	Rows       []engine.Row    // commit payload, in commit order
	Parents    []int64         // commit parents
	Version    int64           // version id the commit produced
	TimeNanos  int64           // commit timestamp (unix nanos), replayed verbatim

	Gamma    float64         // optimize/maintain storage budget factor
	Mu       float64         // maintain tolerance
	Naive    bool            // rebuild-from-scratch migration
	Weighted bool            // optimize used a frequency map
	Freq     map[int64]int64 // weighted-optimize frequencies

	Members *bitmap.Bitmap // committed version's rlist (nil when n/a)

	// Branch/merge fields (codec version 2; zero on records decoded from
	// version-1 logs).
	Branch string // branch name (branch ops; merge when ours is a branch)
	Policy string // merge conflict-resolution policy
	Base   int64  // merge base version (0 = disjoint ancestry)

	// Partition-migration fields (codec version 3; zero on records decoded
	// from older logs). A TypeOptimizeMigrate record carries one batch:
	// BatchKind discriminates assign/preload/gc/drop-empty, Anchor is the
	// version whose current partition the batch targets (0 = create fresh),
	// MovedVersions lists the versions an assign remaps, and Members (the
	// shared field above) holds the batch's record set.
	BatchKind     uint8
	Anchor        int64
	MovedVersions []int64
}

// codecVersion is the first byte of every encoded record, so the payload
// format can evolve without breaking old logs. Version 2 appended the
// branch/merge fields and version 3 the partition-migration fields; version-1
// and version-2 records remain decodable (the appended fields read as zero).
const codecVersion = 3

// Encode serializes the record to a self-contained byte payload.
func (r *Record) Encode() []byte {
	e := &encoder{buf: make([]byte, 0, 256)}
	e.u8(codecVersion)
	e.u8(uint8(r.Type))
	e.str(r.Dataset)
	e.str(r.User)
	e.str(r.Table)
	e.str(r.Msg)
	e.str(r.Model)
	e.uvarint(uint64(len(r.PrimaryKey)))
	for _, k := range r.PrimaryKey {
		e.str(k)
	}
	e.uvarint(uint64(len(r.Cols)))
	for _, c := range r.Cols {
		e.str(c.Name)
		e.u8(uint8(c.Type))
	}
	e.uvarint(uint64(len(r.Rows)))
	for _, row := range r.Rows {
		e.uvarint(uint64(len(row)))
		for _, v := range row {
			e.value(v)
		}
	}
	e.uvarint(uint64(len(r.Parents)))
	for _, p := range r.Parents {
		e.i64(p)
	}
	e.i64(r.Version)
	e.i64(r.TimeNanos)
	e.f64(r.Gamma)
	e.f64(r.Mu)
	e.bool(r.Naive)
	e.bool(r.Weighted)
	e.uvarint(uint64(len(r.Freq)))
	// Deterministic order so identical records encode to identical bytes.
	for _, k := range sortedKeys(r.Freq) {
		e.i64(k)
		e.i64(r.Freq[k])
	}
	if r.Members == nil {
		e.bool(false)
	} else {
		e.bool(true)
		b, _ := r.Members.MarshalBinary() // never fails
		e.bytes(b)
	}
	// Newer-version fields ride at the end so an older payload is an exact
	// prefix of the newer layout.
	e.str(r.Branch)
	e.str(r.Policy)
	e.i64(r.Base)
	// Version-3 fields.
	e.u8(r.BatchKind)
	e.i64(r.Anchor)
	e.uvarint(uint64(len(r.MovedVersions)))
	for _, v := range r.MovedVersions {
		e.i64(v)
	}
	return e.buf
}

// Decode restores a record encoded by Encode.
func Decode(data []byte) (*Record, error) {
	d := &decoder{buf: data}
	ver := d.u8()
	if ver < 1 || ver > codecVersion {
		return nil, fmt.Errorf("wal: unsupported record codec version %d", ver)
	}
	r := &Record{}
	r.Type = Type(d.u8())
	r.Dataset = d.str()
	r.User = d.str()
	r.Table = d.str()
	r.Msg = d.str()
	r.Model = d.str()
	if n := d.count(); n > 0 {
		r.PrimaryKey = make([]string, n)
		for i := range r.PrimaryKey {
			r.PrimaryKey[i] = d.str()
		}
	}
	if n := d.count(); n > 0 {
		r.Cols = make([]engine.Column, n)
		for i := range r.Cols {
			r.Cols[i] = engine.Column{Name: d.str(), Type: engine.Kind(d.u8())}
		}
	}
	if n := d.count(); n > 0 {
		r.Rows = make([]engine.Row, n)
		for i := range r.Rows {
			row := make(engine.Row, d.count())
			for j := range row {
				row[j] = d.value()
			}
			r.Rows[i] = row
		}
	}
	if n := d.count(); n > 0 {
		r.Parents = make([]int64, n)
		for i := range r.Parents {
			r.Parents[i] = d.i64()
		}
	}
	r.Version = d.i64()
	r.TimeNanos = d.i64()
	r.Gamma = d.f64()
	r.Mu = d.f64()
	r.Naive = d.bool()
	r.Weighted = d.bool()
	if n := d.count(); n > 0 {
		r.Freq = make(map[int64]int64, n)
		for i := 0; i < n; i++ {
			k := d.i64()
			r.Freq[k] = d.i64()
		}
	}
	if d.bool() {
		b, err := bitmap.FromBytes(d.blob())
		if err != nil && d.err == nil {
			d.err = err
		}
		r.Members = b
	}
	if ver >= 2 {
		r.Branch = d.str()
		r.Policy = d.str()
		r.Base = d.i64()
	}
	if ver >= 3 {
		r.BatchKind = d.u8()
		r.Anchor = d.i64()
		if n := d.count(); n > 0 {
			r.MovedVersions = make([]int64, n)
			for i := range r.MovedVersions {
				r.MovedVersions[i] = d.i64()
			}
		}
	}
	if d.err != nil {
		return nil, fmt.Errorf("wal: decode %s record: %w", r.Type, d.err)
	}
	if d.pos != len(d.buf) {
		return nil, fmt.Errorf("wal: decode %s record: %d trailing bytes", r.Type, len(d.buf)-d.pos)
	}
	return r, nil
}

func sortedKeys(m map[int64]int64) []int64 {
	out := make([]int64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// encoder appends little-endian primitives to a growing buffer.
type encoder struct{ buf []byte }

func (e *encoder) u8(v uint8)       { e.buf = append(e.buf, v) }
func (e *encoder) uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *encoder) i64(v int64)      { e.buf = binary.LittleEndian.AppendUint64(e.buf, uint64(v)) }
func (e *encoder) f64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}
func (e *encoder) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}
func (e *encoder) bytes(b []byte) {
	e.uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}
func (e *encoder) str(s string) {
	e.uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// value encodes one engine cell: kind byte then a kind-specific payload.
// Bitmap cells reuse the bitmap package's binary serialization.
func (e *encoder) value(v engine.Value) {
	e.u8(uint8(v.K))
	switch v.K {
	case engine.KindNull:
	case engine.KindInt, engine.KindBool:
		e.i64(v.I)
	case engine.KindFloat:
		e.f64(v.F)
	case engine.KindString:
		e.str(v.S)
	case engine.KindIntArray:
		e.uvarint(uint64(len(v.A)))
		for _, x := range v.A {
			e.i64(x)
		}
	case engine.KindBitmap:
		if v.B == nil {
			e.uvarint(0)
			return
		}
		b, _ := v.B.MarshalBinary()
		e.bytes(b)
	}
}

// decoder reads the encoder's output, accumulating the first error and
// returning zero values afterwards so call sites stay linear.
type decoder struct {
	buf []byte
	pos int
	err error
}

func (d *decoder) fail(msg string) {
	if d.err == nil {
		d.err = fmt.Errorf("%s at byte %d", msg, d.pos)
	}
}

func (d *decoder) need(n int) bool {
	if d.err != nil {
		return false
	}
	if d.pos+n > len(d.buf) {
		d.fail("truncated")
		return false
	}
	return true
}

func (d *decoder) u8() uint8 {
	if !d.need(1) {
		return 0
	}
	v := d.buf[d.pos]
	d.pos++
	return v
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.pos:])
	if n <= 0 {
		d.fail("bad uvarint")
		return 0
	}
	d.pos += n
	return v
}

// count reads a length prefix, bounding it by the bytes actually remaining
// so corrupt counts cannot trigger huge allocations.
func (d *decoder) count() int {
	v := d.uvarint()
	if d.err == nil && v > uint64(len(d.buf)-d.pos) {
		d.fail("count exceeds payload")
		return 0
	}
	return int(v)
}

func (d *decoder) i64() int64 {
	if !d.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.pos:])
	d.pos += 8
	return int64(v)
}

func (d *decoder) f64() float64 { return math.Float64frombits(uint64(d.i64())) }

func (d *decoder) bool() bool { return d.u8() != 0 }

func (d *decoder) blob() []byte {
	n := d.uvarint()
	if d.err != nil || !d.need(int(n)) {
		return nil
	}
	b := d.buf[d.pos : d.pos+int(n)]
	d.pos += int(n)
	return b
}

func (d *decoder) str() string { return string(d.blob()) }

func (d *decoder) value() engine.Value {
	k := engine.Kind(d.u8())
	switch k {
	case engine.KindNull:
		return engine.NullValue()
	case engine.KindInt:
		return engine.Value{K: k, I: d.i64()}
	case engine.KindBool:
		return engine.Value{K: k, I: d.i64()}
	case engine.KindFloat:
		return engine.Value{K: k, F: d.f64()}
	case engine.KindString:
		return engine.Value{K: k, S: d.str()}
	case engine.KindIntArray:
		n := d.count()
		a := make([]int64, n)
		for i := range a {
			a[i] = d.i64()
		}
		return engine.Value{K: k, A: a}
	case engine.KindBitmap:
		b := d.blob()
		if len(b) == 0 {
			return engine.Value{K: k}
		}
		bm, err := bitmap.FromBytes(b)
		if err != nil && d.err == nil {
			d.err = err
		}
		return engine.Value{K: k, B: bm}
	}
	d.fail("unknown value kind")
	return engine.Value{}
}
