package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"orpheusdb/internal/bitmap"
	"orpheusdb/internal/engine"
)

func TestParsePolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Policy
	}{{"always", PolicyAlways}, {"Interval", PolicyInterval}, {"off", PolicyOff}, {"none", PolicyOff}} {
		got, err := ParsePolicy(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Fatal("want error for unknown policy")
	}
}

func sampleRecords() []*Record {
	members := bitmap.FromSlice([]int64{1, 2, 3, 900000})
	return []*Record{
		{
			Type:    TypeInit,
			Dataset: "prot",
			Model:   "split-by-rlist",
			Cols: []engine.Column{
				{Name: "id", Type: engine.KindInt},
				{Name: "name", Type: engine.KindString},
			},
			PrimaryKey: []string{"id"},
		},
		{
			Type:      TypeCommit,
			Dataset:   "prot",
			Msg:       "first",
			Parents:   []int64{1, 2},
			Version:   3,
			TimeNanos: 1234567890,
			Rows: []engine.Row{
				{engine.IntValue(1), engine.StringValue("a")},
				{engine.FloatValue(2.5), engine.NullValue()},
				{engine.BoolValue(true), engine.ArrayValue([]int64{7, 8, 9})},
				{engine.Value{K: engine.KindBitmap, B: bitmap.FromSlice([]int64{5, 6})}, engine.IntValue(0)},
			},
			Members: members,
		},
		{
			Type:      TypeCommitSchema,
			Dataset:   "prot",
			Msg:       "evolve",
			Cols:      []engine.Column{{Name: "id", Type: engine.KindFloat}},
			Rows:      []engine.Row{{engine.FloatValue(1)}},
			Version:   4,
			TimeNanos: 42,
			Members:   bitmap.FromSlice([]int64{10}),
		},
		{
			Type:      TypeCommitTable,
			Dataset:   "prot",
			Table:     "staged1",
			User:      "alice",
			Msg:       "from table",
			Cols:      []engine.Column{{Name: "id", Type: engine.KindInt}},
			Rows:      []engine.Row{{engine.IntValue(9)}},
			Parents:   []int64{4},
			Version:   5,
			TimeNanos: 43,
			Members:   bitmap.FromSlice([]int64{11}),
		},
		{Type: TypeOptimize, Dataset: "prot", Gamma: 2.5, Naive: true},
		{Type: TypeOptimize, Dataset: "prot", Gamma: 1.5, Weighted: true, Freq: map[int64]int64{1: 10, 2: 1}},
		{Type: TypeMaintain, Dataset: "prot", Gamma: 2, Mu: 1.5},
		{Type: TypeDrop, Dataset: "prot"},
		{Type: TypeUserAdd, User: "bob"},
		{Type: TypeCheckpoint, Version: 17},
	}
}

func TestRecordCodecRoundTrip(t *testing.T) {
	for i, rec := range sampleRecords() {
		got, err := Decode(rec.Encode())
		if err != nil {
			t.Fatalf("record %d (%s): decode: %v", i, rec.Type, err)
		}
		if !reflect.DeepEqual(rec, got) {
			t.Fatalf("record %d (%s): round trip mismatch:\n in: %+v\nout: %+v", i, rec.Type, rec, got)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Fatal("want error for empty payload")
	}
	if _, err := Decode([]byte{99}); err == nil {
		t.Fatal("want error for bad codec version")
	}
	rec := sampleRecords()[1]
	enc := rec.Encode()
	if _, err := Decode(enc[:len(enc)/2]); err == nil {
		t.Fatal("want error for truncated payload")
	}
	if _, err := Decode(append(enc, 0)); err == nil {
		t.Fatal("want error for trailing bytes")
	}
}

func openT(t *testing.T, dir string, opts Options) *Log {
	t.Helper()
	opts.Dir = dir
	l, err := Open(opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return l
}

func appendN(t *testing.T, l *Log, from, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		rec := &Record{Type: TypeCommit, Dataset: "d", Msg: fmt.Sprintf("c%d", from+i), Version: int64(from + i)}
		if _, err := l.Append(rec); err != nil {
			t.Fatalf("append %d: %v", from+i, err)
		}
	}
}

func collect(t *testing.T, dir string, from uint64) []*Record {
	t.Helper()
	l := openT(t, dir, Options{Policy: PolicyOff})
	defer l.Close()
	var out []*Record
	if err := l.Replay(from, func(lsn uint64, rec *Record) error {
		out = append(out, rec)
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

func TestAppendReplayReopen(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{Policy: PolicyAlways})
	appendN(t, l, 0, 10)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs := collect(t, dir, 0)
	if len(recs) != 10 {
		t.Fatalf("replayed %d records, want 10", len(recs))
	}
	for i, r := range recs {
		if r.Version != int64(i) {
			t.Fatalf("record %d has version %d", i, r.Version)
		}
	}
	// Reopen and continue appending; LSNs stay dense.
	l2 := openT(t, dir, Options{Policy: PolicyInterval, SyncInterval: time.Millisecond})
	if got := l2.NextLSN(); got != 11 {
		t.Fatalf("NextLSN after reopen = %d, want 11", got)
	}
	appendN(t, l2, 10, 5)
	l2.Close()
	if recs := collect(t, dir, 0); len(recs) != 15 {
		t.Fatalf("replayed %d records, want 15", len(recs))
	}
	if recs := collect(t, dir, 12); len(recs) != 3 {
		t.Fatalf("replay from 12 gave %d records, want 3", len(recs))
	}
}

func TestSegmentRotationAndTruncate(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{Policy: PolicyOff, SegmentBytes: 256})
	appendN(t, l, 0, 50)
	st, err := l.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if st.Segments < 3 {
		t.Fatalf("want >= 3 segments after rotation, got %d", st.Segments)
	}
	// A checkpoint at LSN 30 frees every segment fully below it.
	if err := l.Truncate(30); err != nil {
		t.Fatal(err)
	}
	st2, _ := l.Stat()
	if st2.Segments >= st.Segments {
		t.Fatalf("truncate removed nothing (%d -> %d segments)", st.Segments, st2.Segments)
	}
	// Replay from the checkpoint still sees exactly records 31..50.
	var lsns []uint64
	if err := l.Replay(30, func(lsn uint64, rec *Record) error {
		lsns = append(lsns, lsn)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(lsns) != 20 || lsns[0] != 31 || lsns[len(lsns)-1] != 50 {
		t.Fatalf("replay after truncate: got %d records [%v..], want 31..50", len(lsns), lsns)
	}
	// A checkpoint covering the whole log rotates the active segment away.
	if err := l.Truncate(50); err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 50, 1)
	l.Close()
	if recs := collect(t, dir, 50); len(recs) != 1 {
		t.Fatalf("append after full truncate: %d records, want 1", len(recs))
	}
}

func TestReplayGapDetected(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{Policy: PolicyOff, SegmentBytes: 128})
	appendN(t, l, 0, 20)
	if err := l.Truncate(10); err != nil {
		t.Fatal(err)
	}
	err := l.Replay(0, func(uint64, *Record) error { return nil })
	if err == nil {
		t.Fatal("want gap error replaying from 0 after truncate(10)")
	}
	l.Close()
}

// segmentFiles lists segment paths sorted by first LSN.
func segmentFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		if _, ok := parseSegmentName(e.Name()); ok {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	return out
}

func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	for _, p := range segmentFiles(t, src) {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, filepath.Base(p)), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestKillPointTornTail cuts the log at every byte offset and checks that
// recovery yields exactly the longest valid prefix of appended records —
// never an error, never a phantom record.
func TestKillPointTornTail(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{Policy: PolicyOff})
	const n = 8
	appendN(t, l, 0, n)
	l.Close()
	files := segmentFiles(t, dir)
	if len(files) != 1 {
		t.Fatalf("want 1 segment, got %d", len(files))
	}
	full, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	// Frame boundaries for computing the expected prefix at each cut.
	var bounds []int
	pos := 0
	for pos < len(full) {
		_, adv, ok := readFrame(full[pos:])
		if !ok {
			t.Fatalf("unexpected invalid frame at %d", pos)
		}
		pos += adv
		bounds = append(bounds, pos)
	}
	for cut := 0; cut <= len(full); cut++ {
		cutDir := t.TempDir()
		if err := os.WriteFile(filepath.Join(cutDir, filepath.Base(files[0])), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		want := 0
		for _, b := range bounds {
			if b <= cut {
				want++
			}
		}
		recs := collect(t, cutDir, 0)
		if len(recs) != want {
			t.Fatalf("cut at byte %d: recovered %d records, want %d", cut, len(recs), want)
		}
		for i, r := range recs {
			if r.Version != int64(i) {
				t.Fatalf("cut at byte %d: record %d is version %d", cut, i, r.Version)
			}
		}
	}
}

// TestBadCRCMidLog flips a byte inside an early record: recovery must stop at
// the record before it, discard the rest (including later segments), and
// leave the log appendable.
func TestBadCRCMidLog(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{Policy: PolicyOff, SegmentBytes: 200})
	appendN(t, l, 0, 30)
	l.Close()
	files := segmentFiles(t, dir)
	if len(files) < 3 {
		t.Fatalf("want >= 3 segments, got %d", len(files))
	}
	corrupt := copyDir(t, dir)
	files = segmentFiles(t, corrupt)
	// Flip a payload byte in the middle of the second segment.
	data, err := os.ReadFile(files[1])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(files[1], data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2 := openT(t, corrupt, Options{Policy: PolicyOff})
	var got []*Record
	if err := l2.Replay(0, func(_ uint64, rec *Record) error {
		got = append(got, rec)
		return nil
	}); err != nil {
		t.Fatalf("replay after mid-log corruption: %v", err)
	}
	if len(got) == 0 || len(got) >= 30 {
		t.Fatalf("recovered %d records, want a proper prefix", len(got))
	}
	for i, r := range got {
		if r.Version != int64(i) {
			t.Fatalf("record %d is version %d: recovery is not a prefix", i, r.Version)
		}
	}
	// Later segments must be gone and the log must accept fresh appends.
	if rem := segmentFiles(t, corrupt); len(rem) > 2 {
		t.Fatalf("segments after the corruption survived repair: %v", rem)
	}
	next := l2.NextLSN()
	if next != uint64(len(got))+1 {
		t.Fatalf("NextLSN = %d after recovering %d records", next, len(got))
	}
	appendN(t, l2, len(got), 1)
	l2.Close()
	if recs := collect(t, corrupt, 0); len(recs) != len(got)+1 {
		t.Fatalf("after post-repair append: %d records, want %d", len(recs), len(got)+1)
	}
}

func TestEmptyAndGarbageSegments(t *testing.T) {
	dir := t.TempDir()
	// An empty segment (crash between rotation and first append) is fine.
	if err := os.WriteFile(filepath.Join(dir, segmentName(1)), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	l := openT(t, dir, Options{Policy: PolicyOff})
	if got := l.NextLSN(); got != 1 {
		t.Fatalf("NextLSN = %d, want 1", got)
	}
	appendN(t, l, 0, 3)
	l.Close()

	// A segment holding only garbage is truncated to zero records.
	dir2 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir2, segmentName(1)), []byte("not a wal segment"), 0o644); err != nil {
		t.Fatal(err)
	}
	if recs := collect(t, dir2, 0); len(recs) != 0 {
		t.Fatalf("garbage segment yielded %d records", len(recs))
	}
}

func TestEnsureNextLSN(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{Policy: PolicyOff})
	if err := l.EnsureNextLSN(100); err != nil {
		t.Fatal(err)
	}
	if got := l.NextLSN(); got != 100 {
		t.Fatalf("NextLSN = %d, want 100", got)
	}
	appendN(t, l, 0, 2)
	l.Close()
	var lsns []uint64
	l2 := openT(t, dir, Options{Policy: PolicyOff})
	if err := l2.Replay(99, func(lsn uint64, _ *Record) error {
		lsns = append(lsns, lsn)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(lsns) != 2 || lsns[0] != 100 {
		t.Fatalf("replay from 99: %v", lsns)
	}
	l2.Close()
}

func TestBrokenLogRefusesAppends(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{Policy: PolicyOff})
	appendN(t, l, 0, 1)
	l.mu.Lock()
	l.broken = fmt.Errorf("disk on fire")
	l.mu.Unlock()
	if _, err := l.Append(&Record{Type: TypeUserAdd, User: "x"}); err == nil {
		t.Fatal("want error appending to a broken log")
	}
	if l.Err() == nil {
		t.Fatal("Err() should report the failure")
	}
	l.Close()
}

// TestSingleOwnerLock: a log directory admits one process/opener at a time,
// so a CLI cannot repair-truncate a segment out from under a live server.
func TestSingleOwnerLock(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{Policy: PolicyOff})
	if _, err := Open(Options{Dir: dir, Policy: PolicyOff}); err == nil {
		t.Fatal("second Open of a held log directory must fail")
	}
	l.Close()
	// Released on Close: the next opener gets it.
	l2 := openT(t, dir, Options{Policy: PolicyOff})
	l2.Close()
}
