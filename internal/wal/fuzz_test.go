package wal

import (
	"testing"

	"orpheusdb/internal/bitmap"
	"orpheusdb/internal/engine"
)

// fuzzSeedRecords covers every record type and payload shape the codec
// serializes, branch/merge fields included.
func fuzzSeedRecords() []*Record {
	return []*Record{
		{Type: TypeInit, Dataset: "ds", Model: "split-by-rlist",
			PrimaryKey: []string{"id"},
			Cols:       []engine.Column{{Name: "id", Type: engine.KindInt}}},
		{Type: TypeCommit, Dataset: "ds", Msg: "c1", Parents: []int64{1},
			Version: 2, TimeNanos: 123456789,
			Rows:    []engine.Row{{engine.IntValue(1), engine.StringValue("x")}},
			Members: bitmap.FromSlice([]int64{1, 2, 3})},
		{Type: TypeOptimize, Dataset: "ds", Gamma: 2.5, Weighted: true,
			Freq: map[int64]int64{1: 5, 2: 1}},
		{Type: TypeBranchCreate, Dataset: "ds", Branch: "dev", Version: 3, TimeNanos: 42},
		{Type: TypeBranchAdvance, Dataset: "ds", Branch: "dev", Version: 9},
		{Type: TypeBranchDelete, Dataset: "ds", Branch: "dev"},
		{Type: TypeMerge, Dataset: "ds", Branch: "main", Policy: "theirs",
			Base: 1, Parents: []int64{4, 5}, Version: 6,
			Members: bitmap.FromSlice([]int64{1, 4, 9})},
		{Type: TypeOptimizeMigrate, Dataset: "ds", BatchKind: 1, Anchor: 3,
			MovedVersions: []int64{4, 5, 6},
			Members:       bitmap.FromSlice([]int64{10, 11, 12})},
		{Type: TypeOptimizeMigrate, Dataset: "ds", BatchKind: 4},
	}
}

// FuzzRecordDecode feeds arbitrary bytes to the WAL record decoder: it must
// never panic, and anything it accepts must re-encode/decode to the same
// payload.
func FuzzRecordDecode(f *testing.F) {
	for _, r := range fuzzSeedRecords() {
		f.Add(r.Encode())
	}
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Add([]byte{2, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := Decode(data)
		if err != nil {
			return
		}
		out := rec.Encode()
		back, err := Decode(out)
		if err != nil {
			t.Fatalf("re-decode of accepted record failed: %v", err)
		}
		if back.Type != rec.Type || back.Dataset != rec.Dataset ||
			back.Branch != rec.Branch || back.Policy != rec.Policy ||
			back.Base != rec.Base || back.Version != rec.Version {
			t.Fatalf("round-trip diverged: %+v vs %+v", rec, back)
		}
	})
}

// TestRecordCodecV1Compat: payloads written by the version-1 and version-2
// codecs (before the branch/merge and partition-migration fields) must still
// decode, with the appended fields zero. Older payloads are exact prefixes of
// the current layout: v3 appends BatchKind (u8) + Anchor (i64) + an empty
// MovedVersions count (1 byte) after the v2 tail of two empty strings (1 byte
// each) + one i64.
func TestRecordCodecV1Compat(t *testing.T) {
	rec := &Record{Type: TypeCommit, Dataset: "ds", Msg: "m", Parents: []int64{1},
		Version: 2, TimeNanos: 7, Members: bitmap.FromSlice([]int64{1, 2})}
	v3 := rec.Encode()
	if v3[0] != 3 {
		t.Fatalf("codec version byte = %d, want 3", v3[0])
	}
	v2 := append([]byte(nil), v3[:len(v3)-(1+8+1)]...)
	v2[0] = 2
	v1 := append([]byte(nil), v2[:len(v2)-(1+1+8)]...)
	v1[0] = 1
	for ver, payload := range map[int][]byte{1: v1, 2: v2} {
		back, err := Decode(payload)
		if err != nil {
			t.Fatalf("v%d payload rejected: %v", ver, err)
		}
		if back.Type != rec.Type || back.Dataset != rec.Dataset || back.Version != rec.Version {
			t.Fatalf("v%d decode diverged: %+v", ver, back)
		}
		if back.BatchKind != 0 || back.Anchor != 0 || back.MovedVersions != nil {
			t.Fatalf("v%d decode should zero the migration fields: %+v", ver, back)
		}
		if !back.Members.Equal(rec.Members) {
			t.Fatalf("v%d decode lost the membership bitmap", ver)
		}
	}
	// v1 additionally zeroes the branch/merge fields.
	back, err := Decode(v1)
	if err != nil {
		t.Fatal(err)
	}
	if back.Branch != "" || back.Policy != "" || back.Base != 0 {
		t.Fatalf("v1 decode should zero the branch fields: %+v", back)
	}
}

// TestRecordBranchMergeRoundTrip pins the new record types through the
// codec, field by field.
func TestRecordBranchMergeRoundTrip(t *testing.T) {
	for _, rec := range fuzzSeedRecords() {
		back, err := Decode(rec.Encode())
		if err != nil {
			t.Fatalf("%s: %v", rec.Type, err)
		}
		if back.Type != rec.Type || back.Branch != rec.Branch ||
			back.Policy != rec.Policy || back.Base != rec.Base ||
			back.Version != rec.Version || back.Dataset != rec.Dataset {
			t.Fatalf("%s round-trip diverged: %+v vs %+v", rec.Type, rec, back)
		}
		if (rec.Members == nil) != (back.Members == nil) {
			t.Fatalf("%s: members presence diverged", rec.Type)
		}
		if rec.Members != nil && !back.Members.Equal(rec.Members) {
			t.Fatalf("%s: members diverged", rec.Type)
		}
		if len(back.Parents) != len(rec.Parents) {
			t.Fatalf("%s: parents diverged", rec.Type)
		}
		if back.BatchKind != rec.BatchKind || back.Anchor != rec.Anchor {
			t.Fatalf("%s: migration fields diverged: %+v vs %+v", rec.Type, rec, back)
		}
		if len(back.MovedVersions) != len(rec.MovedVersions) {
			t.Fatalf("%s: moved versions diverged", rec.Type)
		}
		for i := range rec.MovedVersions {
			if back.MovedVersions[i] != rec.MovedVersions[i] {
				t.Fatalf("%s: moved version %d diverged", rec.Type, i)
			}
		}
	}
}
