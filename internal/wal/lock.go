package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// Single-writer enforcement. A log directory is owned by at most one process
// at a time: tail repair truncates the active segment and the LSN counter
// lives in process memory, so a second opener (say, a CLI command while the
// server is running) would corrupt the log. Ownership is an advisory flock
// on <dir>/wal.lock — released automatically by the kernel if the owner
// dies, so crashes never leave a stale lock behind.

const lockFileName = "wal.lock"

// acquireDirLock takes the exclusive lock, failing fast when another
// process holds it.
func acquireDirLock(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, lockFileName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: lock: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: %s is in use by another process (flock: %w)", dir, err)
	}
	return f, nil
}

// releaseDirLock drops the flock (also implicit in Close, but explicit keeps
// the intent visible).
func releaseDirLock(f *os.File) {
	if f == nil {
		return
	}
	syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
	f.Close()
}
