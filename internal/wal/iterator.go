package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// Resumable reads. Recovery (Log.Replay) and replication (the WAL-shipping
// stream) share one reader: an Iterator positioned at an arbitrary LSN that
// walks frames in order across segment rotations. The two callers differ only
// in how they treat the log's moving tail — recovery runs over a repaired,
// quiescent log, so running out of valid frames means "done", while a
// streaming reader races live appends and must treat an incomplete frame as
// "no data yet, ask again". ErrNoRecord is that signal.

// ErrNoRecord reports that no complete record is available at the iterator's
// position right now. For an iterator over a quiescent log it means the end;
// for a tailing iterator it means "wait for the next append and retry" (see
// Log.AppendWait).
var ErrNoRecord = errors.New("wal: no complete record available")

// readChunk is how much of a segment an Iterator pulls per file read.
const readChunk = 256 << 10

// Iterator walks log records in LSN order starting after a fixed point. It
// reads segment files directly (never through the log's append path), so any
// number of iterators run concurrently with appends and with each other.
// An Iterator is not safe for concurrent use by multiple goroutines.
type Iterator struct {
	l    *Log
	from uint64 // records with LSN <= from are skipped
	next uint64 // LSN the next record must carry (dense-sequence check)
	tail bool   // tolerate a growing, possibly torn active tail

	f        *os.File
	segFirst uint64
	off      int64 // file offset the buffer starts at
	buf      []byte
	pos      int // parse position within buf
	closed   bool
}

// OpenAt returns an iterator over the records with LSN > from, in order,
// tolerant of a live tail: when it catches up with the writer (including a
// partially flushed final frame) Next returns ErrNoRecord rather than an
// error, and succeeds again once more appends land. Use it for streaming;
// recovery uses Replay, which wraps the same iterator in strict mode.
//
// A from below the log's retained range (the records were truncated by a
// checkpoint) surfaces as a gap error from Next, telling the caller to
// re-bootstrap from a snapshot instead.
func (l *Log) OpenAt(from uint64) (*Iterator, error) {
	return l.openIter(from, true)
}

func (l *Log) openIter(from uint64, tail bool) (*Iterator, error) {
	it := &Iterator{l: l, from: from, next: from + 1, tail: tail}
	if err := it.openSegmentFor(from + 1); err != nil {
		return nil, err
	}
	return it, nil
}

// openSegmentFor opens the segment that contains (or will contain) LSN want:
// the last segment whose first LSN is <= want, or the earliest segment if
// every segment starts later (the dense-sequence check in Next then reports
// the gap). A log always has at least one segment once Opened.
func (it *Iterator) openSegmentFor(want uint64) error {
	segs, err := it.l.segments()
	if err != nil {
		return err
	}
	if len(segs) == 0 {
		return fmt.Errorf("wal: open at %d: no segments", want)
	}
	pick := segs[0]
	for _, s := range segs {
		if s.first <= want {
			pick = s
		}
	}
	f, err := os.Open(filepath.Join(it.l.opts.Dir, pick.name))
	if err != nil {
		return fmt.Errorf("wal: open at %d: %w", want, err)
	}
	if it.f != nil {
		it.f.Close()
	}
	it.f = f
	it.segFirst = pick.first
	it.off = 0
	it.buf = it.buf[:0]
	it.pos = 0
	return nil
}

// fill compacts the buffer and reads more bytes from the current segment.
// Returns the number of new bytes (0 at the segment's current end).
func (it *Iterator) fill() (int, error) {
	if it.pos > 0 {
		it.off += int64(it.pos)
		it.buf = it.buf[:copy(it.buf, it.buf[it.pos:])]
		it.pos = 0
	}
	start := len(it.buf)
	if cap(it.buf)-start < readChunk {
		grown := make([]byte, start, start+readChunk)
		copy(grown, it.buf)
		it.buf = grown
	}
	n, err := it.f.ReadAt(it.buf[start:start+readChunk], it.off+int64(start))
	it.buf = it.buf[:start+n]
	if err != nil && err != io.EOF {
		return n, fmt.Errorf("wal: read %s: %w", filepath.Base(it.f.Name()), err)
	}
	return n, nil
}

// Next returns the next record: its LSN, the decoded record, and the raw
// frame bytes (length+CRC header included — valid to ship verbatim to another
// log reader). The frame slice aliases the iterator's buffer and is only
// valid until the following Next call.
//
// When no complete record is available it returns ErrNoRecord: end of log for
// a strict iterator, "retry after the next append" for a tailing one. A
// record out of dense sequence — the log was truncated past the iterator's
// start — is a gap error.
func (it *Iterator) Next() (uint64, *Record, []byte, error) {
	if it.closed {
		return 0, nil, nil, fmt.Errorf("wal: iterator closed")
	}
	for {
		body, n, ok := readFrame(it.buf[it.pos:])
		if !ok {
			grew, err := it.fill()
			if err != nil {
				return 0, nil, nil, err
			}
			if grew > 0 {
				continue
			}
			// The segment has no further complete frame. If a later segment
			// holds the next LSN the writer rotated past us; otherwise we are
			// at the live tail (or, for a strict iterator, the end).
			rotated, err := it.rotate()
			if err != nil {
				return 0, nil, nil, err
			}
			if rotated {
				continue
			}
			if it.tail {
				return 0, nil, nil, ErrNoRecord
			}
			if len(it.buf)-it.pos > 0 {
				// Open repaired torn tails already; leftover bytes that never
				// become a valid frame mean the file changed underneath us.
				return 0, nil, nil, fmt.Errorf("wal: replay %s: invalid frame at byte %d",
					filepath.Base(it.f.Name()), it.off+int64(it.pos))
			}
			return 0, nil, nil, ErrNoRecord
		}
		frame := it.buf[it.pos : it.pos+n]
		it.pos += n
		lsn := binary.LittleEndian.Uint64(body)
		if lsn <= it.from {
			continue
		}
		if lsn != it.next {
			return 0, nil, nil, fmt.Errorf("wal: replay: gap: want LSN %d, found %d (log truncated past snapshot?)", it.next, lsn)
		}
		rec, err := Decode(body[8:])
		if err != nil {
			return 0, nil, nil, err
		}
		it.next = lsn + 1
		return lsn, rec, frame, nil
	}
}

// rotate switches to the segment holding it.next if one past the current
// segment exists. It reports false when the current segment is still the
// last — the iterator has caught up with the writer.
func (it *Iterator) rotate() (bool, error) {
	segs, err := it.l.segments()
	if err != nil {
		return false, err
	}
	for _, s := range segs {
		if s.first > it.segFirst && s.first <= it.next {
			return true, it.openSegmentFor(it.next)
		}
	}
	return false, nil
}

// Close releases the iterator's file handle.
func (it *Iterator) Close() error {
	if it.closed {
		return nil
	}
	it.closed = true
	if it.f != nil {
		err := it.f.Close()
		it.f = nil
		return err
	}
	return nil
}

// FirstRetained returns the first LSN the log still retains — the earliest
// segment's starting LSN. A reader whose resume point is below it cannot be
// served exactly (a checkpoint truncated the records away) and must restart
// from a snapshot. Note an empty active segment retains no records yet; its
// first LSN is where the next append will land.
func (l *Log) FirstRetained() (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	segs, err := l.segments()
	if err != nil {
		return 0, err
	}
	if len(segs) == 0 {
		return 0, fmt.Errorf("wal: first retained: no segments")
	}
	return segs[0].first, nil
}

// AppendWait returns a channel closed on the next successful Append — the
// long-poll primitive for tailing iterators: grab the channel, drain Next
// until ErrNoRecord, then select on the channel (a record appended between
// the grab and the drain closes it immediately, so no append is missed).
func (l *Log) AppendWait() <-chan struct{} {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.updated == nil {
		l.updated = make(chan struct{})
	}
	return l.updated
}

// notifyAppend wakes AppendWait waiters. Caller holds l.mu.
func (l *Log) notifyAppend() {
	if l.updated != nil {
		close(l.updated)
		l.updated = nil
	}
}

// ReadFrameFrom reads one CRC-framed record from r (the wire format of the
// replication stream is exactly the on-disk frame layout). It returns the
// record's LSN, the decoded record, and the framed size in bytes. A cleanly
// closed stream yields io.EOF before any header byte; a frame cut mid-way
// yields io.ErrUnexpectedEOF; a corrupt frame is an explicit error.
func ReadFrameFrom(r io.Reader) (uint64, *Record, int, error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return 0, nil, 0, io.ErrUnexpectedEOF
		}
		return 0, nil, 0, err
	}
	length := binary.LittleEndian.Uint32(hdr[0:])
	crc := binary.LittleEndian.Uint32(hdr[4:])
	if length < 8 || length > maxRecordBytes {
		return 0, nil, 0, fmt.Errorf("wal: stream: invalid frame length %d", length)
	}
	body := make([]byte, length)
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, 0, err
	}
	if crc32.Checksum(body, crcTable) != crc {
		return 0, nil, 0, fmt.Errorf("wal: stream: frame CRC mismatch")
	}
	lsn := binary.LittleEndian.Uint64(body)
	rec, err := Decode(body[8:])
	if err != nil {
		return 0, nil, 0, err
	}
	return lsn, rec, frameHeader + int(length), nil
}
