package cache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"orpheusdb/internal/bitmap"
	"orpheusdb/internal/engine"
)

func rowsOf(vals ...int64) []engine.Row {
	out := make([]engine.Row, len(vals))
	for i, v := range vals {
		out[i] = engine.Row{engine.IntValue(v)}
	}
	return out
}

func entryOf(vals ...int64) Entry {
	return Entry{
		Cols: []engine.Column{{Name: "n", Type: engine.KindInt}},
		Rows: rowsOf(vals...),
	}
}

// put seeds an entry through the public API (the cache has no direct insert).
func put(c *Cache, ds, key string, e Entry) {
	_, _ = c.GetOrCompute(ds, key, func() (Entry, error) { return e, nil })
}

func TestKeyCanonicalForms(t *testing.T) {
	// Plain single-version checkouts: same vid, same key.
	if Key("ds", []int64{3}, nil, true) != Key("ds", []int64{3}, nil, true) {
		t.Fatal("identical requests produced different keys")
	}
	// Datasets partition the key space.
	if Key("a", []int64{3}, nil, true) == Key("b", []int64{3}, nil, true) {
		t.Fatal("different datasets share a key")
	}
	// Pure-UNION scans are order-insensitive.
	u1 := Key("ds", []int64{2, 3}, []uint8{0}, false)
	u2 := Key("ds", []int64{3, 2}, []uint8{0}, false)
	if u1 != u2 {
		t.Fatal("UNION scan keys should canonicalize order away")
	}
	// Pure-INTERSECT too, but not shared with UNION.
	i1 := Key("ds", []int64{2, 3}, []uint8{1}, false)
	if i1 == u1 {
		t.Fatal("INTERSECT and UNION scans share a key")
	}
	// EXCEPT is not commutative: order must be encoded.
	e1 := Key("ds", []int64{2, 3}, []uint8{2}, false)
	e2 := Key("ds", []int64{3, 2}, []uint8{2}, false)
	if e1 == e2 {
		t.Fatal("EXCEPT scan keys must preserve order")
	}
	// Ordered multi-version checkout (primary-key precedence): order kept.
	c1 := Key("ds", []int64{2, 3}, nil, true)
	c2 := Key("ds", []int64{3, 2}, nil, true)
	if c1 == c2 {
		t.Fatal("ordered checkout keys must preserve order")
	}
	// A checkout and a scan of the same single vid are distinct shapes.
	if Key("ds", []int64{3}, nil, true) == Key("ds", []int64{3}, []uint8{}, false) {
		t.Fatal("checkout and scan of one vid share a key")
	}
}

func TestGetOrComputeCachesAndCounts(t *testing.T) {
	var eng engine.Stats
	c := New(1<<20, &eng)
	computes := 0
	get := func() (Entry, error) {
		k := Key("ds", []int64{1}, nil, true)
		return c.GetOrCompute("ds", k, func() (Entry, error) {
			computes++
			return entryOf(1, 2, 3), nil
		})
	}
	for i := 0; i < 5; i++ {
		e, err := get()
		if err != nil || len(e.Rows) != 3 {
			t.Fatalf("get %d: %v rows=%d", i, err, len(e.Rows))
		}
	}
	if computes != 1 {
		t.Fatalf("computes = %d, want 1", computes)
	}
	st := c.Stats()
	if st.Hits != 4 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 4 hits / 1 miss / 1 entry", st)
	}
	if eng.CacheHits.Load() != 4 || eng.CacheMisses.Load() != 1 {
		t.Fatalf("engine mirror = %d/%d, want 4/1", eng.CacheHits.Load(), eng.CacheMisses.Load())
	}
}

func TestComputeErrorsAreNotCached(t *testing.T) {
	c := New(1<<20, nil)
	k := Key("ds", []int64{1}, nil, true)
	boom := errors.New("boom")
	if _, err := c.GetOrCompute("ds", k, func() (Entry, error) { return Entry{}, boom }); err != boom {
		t.Fatalf("err = %v, want boom", err)
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("error was cached: %+v", st)
	}
	e, err := c.GetOrCompute("ds", k, func() (Entry, error) { return entryOf(9), nil })
	if err != nil || len(e.Rows) != 1 {
		t.Fatalf("recompute after error: %v rows=%d", err, len(e.Rows))
	}
}

func TestInvalidateDatasetRemovesOnlyThatDataset(t *testing.T) {
	c := New(1<<20, nil)
	for _, ds := range []string{"a", "b"} {
		for v := int64(1); v <= 3; v++ {
			put(c, ds, Key(ds, []int64{v}, nil, true), entryOf(v))
		}
	}
	g0 := c.Generation("a")
	c.InvalidateDataset("a")
	if got := c.DatasetStats("a").Entries; got != 0 {
		t.Fatalf("a still has %d entries", got)
	}
	if got := c.DatasetStats("b").Entries; got != 3 {
		t.Fatalf("b lost entries: %d", got)
	}
	if c.Generation("a") != g0+1 {
		t.Fatalf("generation did not advance: %d -> %d", g0, c.Generation("a"))
	}
	if c.Generation("b") != 0 {
		t.Fatalf("b generation moved: %d", c.Generation("b"))
	}
}

// putTagged seeds an entry tagged with the versions it reads.
func putTagged(c *Cache, ds, key string, vids []int64, e Entry) {
	_, _ = c.GetOrComputeTagged(ds, key, bitmap.FromSlice(vids), func() (Entry, error) { return e, nil })
}

func TestInvalidateVersionsIsSelective(t *testing.T) {
	c := New(1<<20, nil)
	k := func(v int64) string { return Key("ds", []int64{v}, nil, true) }
	putTagged(c, "ds", k(1), []int64{1}, entryOf(1))
	putTagged(c, "ds", k(2), []int64{2}, entryOf(2))
	putTagged(c, "ds", k(3), []int64{3}, entryOf(3))
	// Untagged entries must be treated as touching every version.
	put(c, "ds", AllVersionsKey("ds"), entryOf(1, 2, 3))
	// Another dataset is out of scope entirely.
	putTagged(c, "other", Key("other", []int64{2}, nil, true), []int64{2}, entryOf(2))

	g0 := c.Generation("ds")
	c.InvalidateVersions("ds", bitmap.FromSlice([]int64{2}))

	hits := func(ds, key string) bool {
		computed := false
		_, _ = c.GetOrCompute(ds, key, func() (Entry, error) { computed = true; return entryOf(0), nil })
		return !computed
	}
	if !hits("ds", k(1)) || !hits("ds", k(3)) {
		t.Fatal("non-intersecting tagged entries were dropped")
	}
	if hits("ds", k(2)) {
		t.Fatal("intersecting tagged entry survived")
	}
	if hits("ds", AllVersionsKey("ds")) {
		t.Fatal("untagged entry survived a version invalidation")
	}
	if !hits("other", Key("other", []int64{2}, nil, true)) {
		t.Fatal("other dataset was invalidated")
	}
	// Migration preserves materialized contents, so validators stay sound:
	// the generation must not advance.
	if c.Generation("ds") != g0 {
		t.Fatalf("generation moved on version invalidation: %d -> %d", g0, c.Generation("ds"))
	}
}

func TestFlushDropsEverythingAndBumpsGenerations(t *testing.T) {
	c := New(1<<20, nil)
	put(c, "a", Key("a", []int64{1}, nil, true), entryOf(1))
	put(c, "b", Key("b", []int64{1}, nil, true), entryOf(1))
	c.Flush()
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("flush left %+v", st)
	}
	if c.Generation("a") == 0 || c.Generation("b") == 0 {
		t.Fatal("flush did not advance generations")
	}
	// Crucially, a dataset this cache has never seen advances too: raw DML
	// (the reason Flush exists) may have rewritten its backing tables, so
	// tokens minted against it must stop validating.
	if c.Generation("never-seen") == 0 {
		t.Fatal("flush did not advance an unseen dataset's generation")
	}
}

func TestSeedEpochOffsetsGenerations(t *testing.T) {
	c := New(1<<20, nil)
	c.SeedEpoch(1000)
	if g := c.Generation("anything"); g != 1000 {
		t.Fatalf("generation = %d, want the seeded 1000", g)
	}
	c.InvalidateDataset("a")
	if g := c.Generation("a"); g != 1001 {
		t.Fatalf("generation after invalidate = %d, want 1001", g)
	}
	// Seeding after an insert is a programming error.
	put(c, "a", Key("a", []int64{1}, nil, true), entryOf(1))
	defer func() {
		if recover() == nil {
			t.Fatal("SeedEpoch after inserts did not panic")
		}
	}()
	c.SeedEpoch(5)
}

func TestByteBudgetEvictsLRU(t *testing.T) {
	var eng engine.Stats
	// Each entry of one int row is ~64+17+24+56 bytes; budget for ~3.
	c := New(500, &eng)
	for v := int64(1); v <= 5; v++ {
		put(c, "ds", Key("ds", []int64{v}, nil, true), entryOf(v))
	}
	st := c.Stats()
	if st.Bytes > 500 {
		t.Fatalf("bytes %d over budget", st.Bytes)
	}
	if st.Evictions == 0 || eng.CacheEvictions.Load() == 0 {
		t.Fatal("no evictions recorded")
	}
	// The most recent key must survive; the oldest must be gone.
	if _, ok := c.lookup(Key("ds", []int64{5}, nil, true)); !ok {
		t.Fatal("most recent entry evicted")
	}
	if _, ok := c.lookup(Key("ds", []int64{1}, nil, true)); ok {
		t.Fatal("oldest entry survived")
	}
}

func TestOversizedEntryIsNotCached(t *testing.T) {
	c := New(100, nil)
	big := make([]int64, 100)
	put(c, "ds", Key("ds", []int64{1}, nil, true), entryOf(big...))
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("oversized entry cached: %+v", st)
	}
}

func TestSetBudgetZeroDisables(t *testing.T) {
	c := New(1<<20, nil)
	put(c, "ds", Key("ds", []int64{1}, nil, true), entryOf(1))
	c.SetBudget(0)
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("disable kept entries: %+v", st)
	}
	k := Key("ds", []int64{2}, nil, true)
	computes := 0
	for i := 0; i < 3; i++ {
		if _, err := c.GetOrCompute("ds", k, func() (Entry, error) {
			computes++
			return entryOf(2), nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if computes != 3 {
		t.Fatalf("disabled cache served from memory: %d computes", computes)
	}
}

func TestSingleflightCollapsesConcurrentComputes(t *testing.T) {
	c := New(1<<20, nil)
	k := Key("ds", []int64{1}, nil, true)
	var computes atomic.Int64
	gate := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e, err := c.GetOrCompute("ds", k, func() (Entry, error) {
				computes.Add(1)
				<-gate // hold the flight open so followers pile up
				return entryOf(7), nil
			})
			if err != nil || len(e.Rows) != 1 || e.Rows[0][0].I != 7 {
				t.Errorf("bad result: %v %+v", err, e)
			}
		}()
	}
	close(gate)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("computes = %d, want 1", n)
	}
}

func TestStaleInsertSkippedWhenGenerationMoves(t *testing.T) {
	c := New(1<<20, nil)
	k := Key("ds", []int64{1}, nil, true)
	if _, err := c.GetOrCompute("ds", k, func() (Entry, error) {
		// Simulate the misuse the generation check guards against: an
		// invalidation lands while the compute runs.
		c.InvalidateDataset("ds")
		return entryOf(1), nil
	}); err != nil {
		t.Fatal(err)
	}
	if st := c.DatasetStats("ds"); st.Entries != 0 {
		t.Fatalf("stale entry inserted: %+v", st)
	}
}

func TestConcurrentMixedUse(t *testing.T) {
	c := New(10<<10, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ds := fmt.Sprintf("ds%d", g%2)
			for i := 0; i < 200; i++ {
				v := int64(i % 7)
				k := Key(ds, []int64{v}, nil, true)
				if _, err := c.GetOrCompute(ds, k, func() (Entry, error) {
					return entryOf(v, v+1), nil
				}); err != nil {
					t.Errorf("GetOrCompute: %v", err)
					return
				}
				if i%31 == 0 {
					c.InvalidateDataset(ds)
				}
				if i%97 == 0 {
					c.Flush()
				}
				_ = c.Stats()
				_ = c.DatasetStats(ds)
			}
		}(g)
	}
	wg.Wait()
}

// TestInsertTrimsSliceCapacity asserts the accounting invariant the trim in
// insertLocked exists for: an entry built with append (cap > len, the spare
// capacity aliasing the builder's — possibly a live table's — backing array)
// must be re-sliced to exact size on insert, so entryBytes' len-based count
// matches what the cache retains and later appends by callers cannot write
// into the cached array.
func TestInsertTrimsSliceCapacity(t *testing.T) {
	c := New(1<<20, nil)
	// Build rows the way checkout does: append into a generously-sized
	// slice, leaving spare capacity behind the cached view.
	oversized := make([]engine.Row, 0, 1024)
	for i := int64(0); i < 3; i++ {
		oversized = append(oversized, engine.Row{engine.IntValue(i)})
	}
	put(c, "ds", "k", Entry{
		Cols: append(make([]engine.Column, 0, 64), engine.Column{Name: "n", Type: engine.KindInt}),
		Rows: oversized,
	})
	got, ok := c.lookup("k")
	if !ok {
		t.Fatal("entry not cached")
	}
	if cap(got.Rows) != len(got.Rows) {
		t.Fatalf("cached Rows cap %d > len %d: retains the builder's backing array", cap(got.Rows), len(got.Rows))
	}
	if cap(got.Cols) != len(got.Cols) {
		t.Fatalf("cached Cols cap %d > len %d", cap(got.Cols), len(got.Cols))
	}
	if &got.Rows[0] == &oversized[0] {
		t.Fatal("cached Rows share the oversized backing array")
	}
	// The charge recorded for the entry must equal entryBytes of the exact
	// slices actually retained.
	if want, have := entryBytes(got), c.Stats().Bytes; have != want {
		t.Fatalf("accounted %d bytes, entry retains %d", have, want)
	}
	// Appending to the returned value must reallocate, never write behind
	// the cached entry's back.
	_ = append(got.Rows, engine.Row{engine.IntValue(99)})
	again, _ := c.lookup("k")
	if len(again.Rows) != 3 {
		t.Fatalf("append through returned slice mutated cached entry: %d rows", len(again.Rows))
	}
}
