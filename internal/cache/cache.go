// Package cache implements the version-aware checkout cache: an LRU of
// materialized version record sets, keyed by (dataset, canonical form of the
// requested version set), with a byte budget, hit/miss/eviction counters, and
// singleflight collapsing of concurrent materializations of the same key.
//
// OrpheusDB's hot path is checkout: every `Checkout` and every
// `VERSION ... OF CVD` scan resolves membership bitmaps and fetches records
// from the backing tables. Version record sets are immutable once committed —
// the only events that change what a (dataset, versions) request returns are
// commits into the dataset, schema changes, partition migrations, and drops.
// The cache exploits that: read paths consult it before bitmap resolution,
// and every mutator invalidates the dataset's entries inside its critical
// section (while the dataset's write lock is held), so readers can never
// observe a stale entry.
//
// Correct use requires a locking discipline from the caller, documented in
// docs/ARCHITECTURE.md: GetOrCompute must run entirely under the dataset's
// read lock (so compute-then-insert cannot interleave with a commit's
// apply-then-invalidate, which runs under the write lock), and
// InvalidateDataset must be called by every mutator before it releases the
// write lock. The cache itself is safe for concurrent use by any number of
// goroutines.
//
// Keys are canonical: requests that provably denote the same record set map
// to the same entry. The version set is serialized as a compressed bitmap
// (the ORBM format of internal/bitmap), which sorts and deduplicates for
// free; order- or operator-sensitive requests (primary-key precedence
// checkouts of several versions, mixed INTERSECT/EXCEPT chains) append their
// exact shape so distinct results never collide. See Key's documentation.
package cache

import (
	"container/list"
	"encoding/binary"
	"sync"

	"orpheusdb/internal/bitmap"
	"orpheusdb/internal/engine"
)

// DefaultBudget is the byte budget a Store attaches its cache with: large
// enough to hold the hot versions of several datasets, small enough to stay
// an afterthought next to the engine's own footprint.
const DefaultBudget = 64 << 20

// Key operator codes: the ops argument of Key uses these values, which must
// equal the corresponding core.SetOp constants (core cannot be imported here
// — it imports this package — so core carries compile-time assertions tying
// the two together).
const (
	OpUnion     uint8 = 0
	OpIntersect uint8 = 1
	OpExcept    uint8 = 2
)

// Entry is one cached materialization: the schema and rows a checkout or
// multi-version scan produced. Both slices are shared — with the engine, with
// every reader that hits the entry — and must be treated as immutable.
type Entry struct {
	Cols []engine.Column
	Rows []engine.Row
}

// entry is the internal LRU node payload. vids, when set, tags the entry
// with the version ids its rows were materialized from, enabling selective
// invalidation (InvalidateVersions); untagged entries are treated as touching
// every version.
type entry struct {
	key     string
	dataset string
	vids    *bitmap.Bitmap
	val     Entry
	bytes   int64
}

// call is one in-flight computation (singleflight).
type call struct {
	wg   sync.WaitGroup
	val  Entry
	err  error
	gen  uint64
	used bool // inserted into the cache by the leader
}

// Cache is a byte-budgeted LRU of materialized version record sets. The zero
// value is not usable; call New.
type Cache struct {
	eng *engine.Stats // optional mirror for hit/miss/eviction counters

	mu        sync.Mutex
	budget    int64
	bytes     int64
	ll        *list.List // front = most recently used
	elems     map[string]*list.Element
	byDataset map[string]map[string]*list.Element
	// gens counts invalidations per dataset and epoch counts whole-cache
	// flushes. A dataset's generation is gens[ds]+epoch, so a Flush
	// advances every dataset — including ones this process has never
	// touched, whose backing tables raw DML may still have rewritten.
	// Within a process neither counter ever resets (drop + re-init of a
	// same-named dataset keeps bumping), which makes the sum a usable ETag
	// ingredient: a token minted under one generation can never validate
	// content produced under another. Across restarts the counters would
	// restart at zero and could collide with pre-restart tokens, so the
	// Store seeds the epoch with a per-process value (SeedEpoch) —
	// cross-restart validators then never match, which costs one full
	// response and can never serve stale bytes.
	gens   map[string]uint64
	epoch  uint64
	flight map[string]*call

	hits, misses, evictions, invalidations int64
}

// New builds a cache with the given byte budget. A budget <= 0 disables
// caching: GetOrCompute always computes (still collapsing concurrent
// duplicates) and nothing is retained. stats may be nil; when set, the
// cache mirrors hits/misses/evictions into it so they appear next to the
// engine's I/O counters.
func New(budget int64, stats *engine.Stats) *Cache {
	return &Cache{
		eng:       stats,
		budget:    budget,
		ll:        list.New(),
		elems:     make(map[string]*list.Element),
		byDataset: make(map[string]map[string]*list.Element),
		gens:      make(map[string]uint64),
		flight:    make(map[string]*call),
	}
}

// Key builds the canonical cache key for a materialization request against
// dataset. vids are the requested versions in request order; ops is the
// set-operator chain of a multi-version scan (len(ops) == len(vids)-1, using
// the core.SetOp values), nil for a plain checkout; ordered says whether the
// request's semantics depend on version order (primary-key precedence
// checkouts).
//
// The canonical form is the ORBM serialization of the vid set — so
// `VERSION 2 UNION 3` and `VERSION 3 UNION 2` share an entry, as do
// duplicate-vid requests — with the exact (vid, op) sequence appended only
// when it matters: ordered requests, and scan chains that mix operators or
// use non-commutative ones (EXCEPT, and INTERSECT/UNION mixtures). A chain
// of all-UNION or all-INTERSECT collapses to the pure set form.
func Key(dataset string, vids []int64, ops []uint8, ordered bool) string {
	set := bitmap.FromSlice(vids)
	setBytes, _ := set.MarshalBinary()
	// Tag the key shape so a checkout and a scan of the same vid set (whose
	// row semantics differ: precedence dedup vs record-id algebra) never
	// share an entry.
	tag := byte('c') // plain checkout
	if ops != nil {
		tag = 'u' // scan, canonical all-UNION
		for _, op := range ops {
			if op != ops[0] {
				tag = 'x' // mixed chain: order and operators matter
				break
			}
		}
		if tag == 'u' && len(ops) > 0 {
			switch ops[0] {
			case OpUnion:
			case OpIntersect:
				tag = 'i'
			default:
				tag = 'x' // EXCEPT is not commutative
			}
		}
	}
	exact := tag == 'x' || (ordered && len(vids) > 1)
	n := len(dataset) + 2 + len(setBytes)
	if exact {
		n += len(vids)*9 + len(ops)
	}
	b := make([]byte, 0, n)
	b = append(b, dataset...)
	b = append(b, 0, tag)
	b = append(b, setBytes...)
	if exact {
		for i, v := range vids {
			var buf [8]byte
			binary.LittleEndian.PutUint64(buf[:], uint64(v))
			b = append(b, buf[:]...)
			if i > 0 && ops != nil {
				b = append(b, ops[i-1])
			}
		}
		if ordered {
			b = append(b, 'o')
		}
	}
	return string(b)
}

// AllVersionsKey is the key of the all-versions view (`FROM CVD name`): one
// row per (version, record) pair with a leading vid column.
func AllVersionsKey(dataset string) string { return dataset + "\x00a" }

// SeedEpoch initializes the flush epoch with a per-process value (the Store
// uses a timestamp). Called once before the cache is shared; it makes
// generation tokens minted by an earlier process unable to validate against
// this one. Panics if entries already exist — seeding must come first.
func (c *Cache) SeedEpoch(epoch uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ll.Len() > 0 {
		panic("cache: SeedEpoch after entries were inserted")
	}
	c.epoch = epoch
}

// lookup reports whether key is resident, bumping its recency. It is a
// probe for tests: production reads go through GetOrCompute, whose
// singleflight and stat accounting a bare lookup would bypass.
func (c *Cache) lookup(key string) (Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.elems[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*entry).val, true
	}
	return Entry{}, false
}

// GetOrCompute returns the entry under key, computing and caching it on a
// miss. Concurrent calls for the same key collapse: one caller computes, the
// rest block and share the result (or the error, which is never cached).
//
// The caller must hold the dataset's read lock for the entire call — that
// lock is what orders the compute+insert against a mutator's
// apply+invalidate. As insurance against misuse, the insert is skipped if the
// dataset's generation moved while computing.
func (c *Cache) GetOrCompute(dataset, key string, compute func() (Entry, error)) (Entry, error) {
	return c.GetOrComputeTagged(dataset, key, nil, compute)
}

// GetOrComputeTagged is GetOrCompute with a version tag: vids names the
// versions the materialization reads, so InvalidateVersions can drop exactly
// the entries a partition migration touched. The bitmap is shared, not
// copied; callers must not mutate it. A nil tag marks the entry as touching
// every version.
func (c *Cache) GetOrComputeTagged(dataset, key string, vids *bitmap.Bitmap, compute func() (Entry, error)) (Entry, error) {
	c.mu.Lock()
	if el, ok := c.elems[key]; ok {
		c.ll.MoveToFront(el)
		c.noteHit()
		v := el.Value.(*entry).val
		c.mu.Unlock()
		return v, nil
	}
	if f, ok := c.flight[key]; ok {
		c.mu.Unlock()
		f.wg.Wait()
		c.mu.Lock()
		if f.err == nil && f.used {
			// The leader's result went into the cache; count this follower
			// as a hit (it cost no materialization).
			c.noteHit()
		} else {
			c.noteMiss()
		}
		c.mu.Unlock()
		return f.val, f.err
	}
	f := &call{gen: c.gens[dataset] + c.epoch}
	f.wg.Add(1)
	c.flight[key] = f
	c.noteMiss()
	c.mu.Unlock()

	f.val, f.err = compute()

	c.mu.Lock()
	delete(c.flight, key)
	if f.err == nil && c.gens[dataset]+c.epoch == f.gen {
		f.used = c.insertLocked(dataset, key, vids, f.val)
	}
	c.mu.Unlock()
	f.wg.Done()
	return f.val, f.err
}

// insertLocked stores val under key, evicting from the LRU tail until the
// budget holds. Entries larger than the whole budget are not cached.
func (c *Cache) insertLocked(dataset, key string, vids *bitmap.Bitmap, val Entry) bool {
	if c.budget <= 0 {
		return false
	}
	if el, ok := c.elems[key]; ok {
		// Lost a race we can only lose through misuse (two computes for one
		// key outside singleflight); keep the resident entry.
		c.ll.MoveToFront(el)
		return false
	}
	// Trim before caching: record sets are built with append, so they can
	// arrive with cap > len. The spare capacity aliases the builder's backing
	// array — in the worst case a block also referenced by a live table — and
	// entryBytes (which counts len) would silently under-count what the cache
	// actually retains. An exact-size copy of the slice headers (not the rows;
	// those are immutable and shared by design) makes the accounting honest
	// and keeps a caller's later append from writing into the cached array.
	if cap(val.Rows) > len(val.Rows) {
		val.Rows = append(make([]engine.Row, 0, len(val.Rows)), val.Rows...)
	}
	if cap(val.Cols) > len(val.Cols) {
		val.Cols = append(make([]engine.Column, 0, len(val.Cols)), val.Cols...)
	}
	sz := entryBytes(val)
	if sz > c.budget {
		return false
	}
	e := &entry{key: key, dataset: dataset, vids: vids, val: val, bytes: sz}
	el := c.ll.PushFront(e)
	c.elems[key] = el
	ds := c.byDataset[dataset]
	if ds == nil {
		ds = make(map[string]*list.Element)
		c.byDataset[dataset] = ds
	}
	ds[key] = el
	c.bytes += sz
	for c.bytes > c.budget {
		tail := c.ll.Back()
		if tail == nil {
			break
		}
		c.removeLocked(tail)
		c.evictions++
		if c.eng != nil {
			c.eng.CacheEvictions.Add(1)
		}
	}
	return true
}

// removeLocked unlinks one LRU element.
func (c *Cache) removeLocked(el *list.Element) {
	e := el.Value.(*entry)
	c.ll.Remove(el)
	delete(c.elems, e.key)
	if ds := c.byDataset[e.dataset]; ds != nil {
		delete(ds, e.key)
		if len(ds) == 0 {
			delete(c.byDataset, e.dataset)
		}
	}
	c.bytes -= e.bytes
}

// InvalidateDataset removes every entry belonging to dataset and bumps its
// generation. Mutators call it inside their critical section (dataset write
// lock held, next to the WAL append), so no reader can be mid-materialization
// and no stale entry can be re-inserted afterwards.
func (c *Cache) InvalidateDataset(dataset string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gens[dataset]++
	c.invalidations++
	ds := c.byDataset[dataset]
	for _, el := range ds {
		c.removeLocked(el)
	}
}

// InvalidateVersions removes dataset entries whose version tag intersects
// vids; untagged entries are removed too (they may touch any version).
// Unlike InvalidateDataset it does NOT bump the dataset's generation: its
// caller is the partition migrator, whose batches preserve every version's
// materialized contents — ETag validators minted before the migration remain
// sound, only the row materializations must be refetched from the new layout.
func (c *Cache) InvalidateVersions(dataset string, vids *bitmap.Bitmap) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.invalidations++
	for _, el := range c.byDataset[dataset] {
		e := el.Value.(*entry)
		if e.vids == nil || e.vids.Intersects(vids) {
			c.removeLocked(el)
		}
	}
}

// Flush drops every entry and advances the flush epoch, which bumps every
// dataset's generation — including datasets this cache has never seen, whose
// backing tables raw SQL writes may still have rewritten.
func (c *Cache) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.epoch++
	c.invalidations++
	for c.ll.Len() > 0 {
		c.removeLocked(c.ll.Back())
	}
}

// Generation returns dataset's invalidation generation: it moves exactly when
// a mutation may have changed what the dataset's versions materialize to
// (dataset-targeted invalidation or a whole-cache flush), which makes
// (dataset, versions, generation) a sound ETag.
func (c *Cache) Generation(dataset string) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gens[dataset] + c.epoch
}

// SetBudget changes the byte budget, evicting down to it immediately.
// A budget <= 0 disables the cache and drops everything.
func (c *Cache) SetBudget(budget int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.budget = budget
	for c.bytes > max(c.budget, 0) && c.ll.Len() > 0 {
		c.removeLocked(c.ll.Back())
		c.evictions++
		if c.eng != nil {
			c.eng.CacheEvictions.Add(1)
		}
	}
}

// Stats is an immutable snapshot of the cache's state and counters.
type Stats struct {
	Entries       int   `json:"entries"`
	Bytes         int64 `json:"bytes"`
	Budget        int64 `json:"budgetBytes"`
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Evictions     int64 `json:"evictions"`
	Invalidations int64 `json:"invalidations"`
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Entries:       c.ll.Len(),
		Bytes:         c.bytes,
		Budget:        c.budget,
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
		Invalidations: c.invalidations,
	}
}

// DatasetStats describes one dataset's share of the cache.
type DatasetStats struct {
	Entries    int    `json:"entries"`
	Bytes      int64  `json:"bytes"`
	Generation uint64 `json:"generation"`
}

// DatasetStats reports dataset's resident entries, bytes, and generation.
func (c *Cache) DatasetStats(dataset string) DatasetStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := DatasetStats{Generation: c.gens[dataset] + c.epoch}
	for _, el := range c.byDataset[dataset] {
		out.Entries++
		out.Bytes += el.Value.(*entry).bytes
	}
	return out
}

func (c *Cache) noteHit() {
	c.hits++
	if c.eng != nil {
		c.eng.CacheHits.Add(1)
	}
}

func (c *Cache) noteMiss() {
	c.misses++
	if c.eng != nil {
		c.eng.CacheMisses.Add(1)
	}
}

// entryBytes estimates an entry's resident footprint: value payloads plus
// per-row and per-column overheads (the same shape as the engine's snapshot
// estimator).
func entryBytes(val Entry) int64 {
	n := int64(64)
	for _, c := range val.Cols {
		n += int64(len(c.Name)) + 16
	}
	for _, r := range val.Rows {
		n += 24
		for _, v := range r {
			n += valueBytes(v)
		}
	}
	return n
}

func valueBytes(v engine.Value) int64 {
	n := int64(56)
	switch v.K {
	case engine.KindString:
		n += int64(len(v.S))
	case engine.KindIntArray:
		n += 8 * int64(len(v.A))
	case engine.KindBitmap:
		if v.B != nil {
			n += v.B.SerializedSizeBytes()
		}
	}
	return n
}
