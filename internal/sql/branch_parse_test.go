package sql

import "testing"

func TestParseCreateBranch(t *testing.T) {
	st, err := Parse("CREATE BRANCH dev FROM VERSION 3 OF CVD prot")
	if err != nil {
		t.Fatal(err)
	}
	cb, ok := st.(*CreateBranchStmt)
	if !ok || cb.Branch != "dev" || cb.CVD != "prot" || cb.From != 3 || cb.FromBranch != "" {
		t.Fatalf("parsed %+v", st)
	}
	// Branch-name anchor.
	st, err = Parse("CREATE BRANCH hotfix FROM VERSION main OF CVD prot")
	if err != nil {
		t.Fatal(err)
	}
	if cb = st.(*CreateBranchStmt); cb.FromBranch != "main" || cb.From != -1 {
		t.Fatalf("parsed %+v", cb)
	}
	// Default anchor (latest).
	st, err = Parse("CREATE BRANCH tip OF CVD prot")
	if err != nil {
		t.Fatal(err)
	}
	if cb = st.(*CreateBranchStmt); cb.From != -1 || cb.FromBranch != "" {
		t.Fatalf("parsed %+v", cb)
	}
	// CREATE TABLE still parses.
	if _, err := Parse("CREATE TABLE t (id integer PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
}

func TestParseDropBranch(t *testing.T) {
	st, err := Parse("DROP BRANCH dev OF CVD prot")
	if err != nil {
		t.Fatal(err)
	}
	db, ok := st.(*DropBranchStmt)
	if !ok || db.Branch != "dev" || db.CVD != "prot" {
		t.Fatalf("parsed %+v", st)
	}
	if _, err := Parse("DROP TABLE t"); err != nil {
		t.Fatal(err)
	}
}

func TestParseMerge(t *testing.T) {
	st, err := Parse("MERGE VERSION 4 INTO 2 OF CVD prot")
	if err != nil {
		t.Fatal(err)
	}
	m := st.(*MergeStmt)
	if m.Theirs != 4 || m.Ours != 2 || m.CVD != "prot" || m.Policy != "" {
		t.Fatalf("parsed %+v", m)
	}
	st, err = Parse("MERGE BRANCH dev INTO main OF CVD prot USING theirs")
	if err != nil {
		t.Fatal(err)
	}
	m = st.(*MergeStmt)
	if m.TheirsBranch != "dev" || m.OursBranch != "main" || m.Policy != "theirs" ||
		m.Ours != -1 || m.Theirs != -1 {
		t.Fatalf("parsed %+v", m)
	}
	for _, bad := range []string{
		"MERGE 1 INTO 2 OF CVD prot",
		"MERGE VERSION 1 OF CVD prot",
		"MERGE VERSION 1 INTO 2 OF prot",
		"MERGE VERSION 1 INTO 2 OF CVD prot USING",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("%q should not parse", bad)
		}
	}
}

func TestParseVersionBranchRef(t *testing.T) {
	st, err := Parse("SELECT * FROM VERSION main OF CVD prot")
	if err != nil {
		t.Fatal(err)
	}
	ref := st.(*SelectStmt).From[0].(*TableRef)
	if ref.Branch != "main" || ref.CVD != "prot" || ref.Version != 0 {
		t.Fatalf("ref = %+v", ref)
	}
	// Branch ref with a set-operation chain.
	st, err = Parse("SELECT * FROM VERSION main EXCEPT 1 OF CVD prot")
	if err != nil {
		t.Fatal(err)
	}
	ref = st.(*SelectStmt).From[0].(*TableRef)
	if ref.Branch != "main" || len(ref.ExtraVersions) != 1 || ref.SetOps[0] != "EXCEPT" {
		t.Fatalf("ref = %+v", ref)
	}
	// Executing a branch statement without a store is a clear error.
	if _, err := Exec(nil, "CREATE BRANCH b OF CVD c"); err == nil {
		t.Fatal("branch statement without a store should fail")
	}
}

// TestBranchWordsNotReserved: BRANCH/MERGE/USING are contextual, so schemas
// that use them as table or column names keep parsing.
func TestBranchWordsNotReserved(t *testing.T) {
	for _, q := range []string{
		"CREATE TABLE branch (merge integer, using string)",
		"SELECT merge, using FROM branch WHERE merge > 1",
		"SELECT b.merge FROM branch AS b",
		"INSERT INTO merge VALUES (1)",
		"UPDATE branch SET merge = 2",
		"DROP TABLE branch",
	} {
		if _, err := Parse(q); err != nil {
			t.Errorf("%q no longer parses: %v", q, err)
		}
	}
}
