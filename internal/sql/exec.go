package sql

import (
	"fmt"
	"sort"
	"strings"

	"orpheusdb/internal/engine"
)

// Result is the outcome of executing one statement.
type Result struct {
	Cols     []string
	Rows     []engine.Row
	Affected int
}

// CVDSource materializes `VERSION ... OF CVD` references for the executor.
// The OrpheusDB query translator passes one to RunWith; with it, a versioned
// reference resolves directly into an in-memory relation (typically served
// from the checkout cache) instead of requiring a pre-materialized table.
// Returned rows are shared — with the cache and with other queries — and
// must be treated as immutable.
type CVDSource interface {
	// MaterializeVersionRef resolves one CVD reference: a single version
	// (ref.Version >= 0), a multi-version set-operation scan
	// (ref.ExtraVersions/SetOps non-empty), or the all-versions view
	// (ref.Version < 0, leading vid column).
	MaterializeVersionRef(ref *TableRef) ([]engine.Column, []engine.Row, error)
}

// Exec parses and executes one SQL statement against db.
func Exec(db *engine.DB, src string) (*Result, error) {
	stmt, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Run(db, stmt)
}

// ExecScript executes a semicolon-separated script, returning the result of
// the last statement.
func ExecScript(db *engine.DB, src string) (*Result, error) {
	stmts, err := ParseScript(src)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	for _, s := range stmts {
		res, err = Run(db, s)
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// Run executes a parsed statement. CVD references error; use RunWith to
// resolve them.
func Run(db *engine.DB, stmt Stmt) (*Result, error) {
	return RunWith(db, stmt, nil)
}

// RunWith executes a parsed statement, resolving `VERSION ... OF CVD`
// references through src (which may be nil when the statement has none).
func RunWith(db *engine.DB, stmt Stmt, src CVDSource) (*Result, error) {
	x := &executor{db: db, cvd: src}
	switch s := stmt.(type) {
	case *SelectStmt:
		rel, err := x.execSelect(s)
		if err != nil {
			return nil, err
		}
		if s.Into != "" {
			n, err := x.materialize(s.Into, rel)
			if err != nil {
				return nil, err
			}
			return &Result{Affected: n}, nil
		}
		return &Result{Cols: rel.names(), Rows: rel.rows}, nil
	case *InsertStmt:
		return x.execInsert(s)
	case *UpdateStmt:
		return x.execUpdate(s)
	case *DeleteStmt:
		return x.execDelete(s)
	case *CreateTableStmt:
		return x.execCreate(s)
	case *DropTableStmt:
		if err := db.DropTable(s.Table); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *CreateBranchStmt, *DropBranchStmt, *MergeStmt:
		// Branch and merge statements mutate the versioning layer, which the
		// engine knows nothing about; only the store can execute them.
		return nil, fmt.Errorf("sql: %T requires an OrpheusDB store (run it through Store.Run)", stmt)
	}
	return nil, fmt.Errorf("sql: unsupported statement %T", stmt)
}

// colInfo names one column of an intermediate relation.
type colInfo struct {
	table string // alias, may be empty
	name  string
}

// rel is a materialized intermediate relation.
type rel struct {
	cols []colInfo
	rows []engine.Row
}

func (r *rel) names() []string {
	out := make([]string, len(r.cols))
	for i, c := range r.cols {
		out[i] = c.name
	}
	return out
}

// executor runs statements; it carries the database for subqueries and the
// CVD source for versioned references.
type executor struct {
	db  *engine.DB
	cvd CVDSource
}

// resolve finds the position of a column reference.
func (r *rel) resolve(table, name string) (int, error) {
	found := -1
	for i, c := range r.cols {
		if c.name != name {
			continue
		}
		if table != "" && c.table != table {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("sql: ambiguous column %q", name)
		}
		found = i
	}
	if found < 0 {
		if table != "" {
			return 0, fmt.Errorf("sql: no column %s.%s", table, name)
		}
		return 0, fmt.Errorf("sql: no column %q", name)
	}
	return found, nil
}

// tableRel loads a stored table as a relation.
func (x *executor) tableRel(name, alias string) (*rel, error) {
	t, err := x.db.MustTable(name)
	if err != nil {
		return nil, err
	}
	if alias == "" {
		alias = name
	}
	out := &rel{}
	for _, c := range t.Columns() {
		out.cols = append(out.cols, colInfo{table: alias, name: c.Name})
	}
	t.Scan(func(_ engine.RowID, row engine.Row) bool {
		out.rows = append(out.rows, row)
		return true
	})
	return out, nil
}

// fromRel evaluates a FROM item.
func (x *executor) fromRel(f FromItem) (*rel, error) {
	switch t := f.(type) {
	case *TableRef:
		if t.CVD != "" {
			if x.cvd == nil {
				return nil, fmt.Errorf("sql: unresolved VERSION %d OF CVD %s (run through the OrpheusDB query translator)", t.Version, t.CVD)
			}
			cols, rows, err := x.cvd.MaterializeVersionRef(t)
			if err != nil {
				return nil, err
			}
			alias := t.Alias
			if alias == "" {
				alias = t.CVD
			}
			out := &rel{rows: rows}
			for _, c := range cols {
				out.cols = append(out.cols, colInfo{table: alias, name: c.Name})
			}
			return out, nil
		}
		return x.tableRel(t.Name, t.Alias)
	case *SubqueryRef:
		sub, err := x.execSelect(t.Select)
		if err != nil {
			return nil, err
		}
		alias := t.Alias
		for i := range sub.cols {
			sub.cols[i].table = alias
		}
		return sub, nil
	case *JoinRef:
		left, err := x.fromRel(t.Left)
		if err != nil {
			return nil, err
		}
		right, err := x.fromRel(t.Right)
		if err != nil {
			return nil, err
		}
		return x.join(left, right, t.On)
	}
	return nil, fmt.Errorf("sql: unsupported FROM item %T", f)
}

// join combines two relations under an ON condition, using a hash join for
// equality conjuncts and falling back to a filtered nested loop.
func (x *executor) join(left, right *rel, on Expr) (*rel, error) {
	out := &rel{cols: append(append([]colInfo(nil), left.cols...), right.cols...)}
	conjs := conjuncts(on)
	var lk, rk []int
	var rest []Expr
	for _, c := range conjs {
		l, r, ok := x.equiKeys(c, left, right)
		if ok {
			lk = append(lk, l)
			rk = append(rk, r)
		} else {
			rest = append(rest, c)
		}
	}
	emit := func(l, r engine.Row) error {
		row := make(engine.Row, 0, len(l)+len(r))
		row = append(row, l...)
		row = append(row, r...)
		if len(rest) > 0 {
			ev := &evalEnv{x: x, rel: out, row: row}
			for _, c := range rest {
				v, err := ev.eval(c)
				if err != nil {
					return err
				}
				if !v.Bool() {
					return nil
				}
			}
		}
		out.rows = append(out.rows, row)
		return nil
	}
	if len(lk) > 0 {
		var emitErr error
		engine.HashJoinGeneric(left.rows, right.rows, lk, rk, x.db.Stats(), func(b, p engine.Row) {
			if emitErr == nil {
				emitErr = emit(b, p)
			}
		})
		if emitErr != nil {
			return nil, emitErr
		}
		return out, nil
	}
	for _, l := range left.rows {
		for _, r := range right.rows {
			if err := emit(l, r); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// conjuncts flattens an AND tree.
func conjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*BinaryExpr); ok && b.Op == "AND" {
		return append(conjuncts(b.Left), conjuncts(b.Right)...)
	}
	return []Expr{e}
}

// equiKeys recognizes `a.col = b.col` conditions joining left and right.
func (x *executor) equiKeys(e Expr, left, right *rel) (int, int, bool) {
	b, ok := e.(*BinaryExpr)
	if !ok || b.Op != "=" {
		return 0, 0, false
	}
	lc, ok1 := b.Left.(*ColumnRef)
	rc, ok2 := b.Right.(*ColumnRef)
	if !ok1 || !ok2 {
		return 0, 0, false
	}
	if li, err := left.resolve(lc.Table, lc.Column); err == nil {
		if ri, err := right.resolve(rc.Table, rc.Column); err == nil {
			return li, ri, true
		}
	}
	if li, err := left.resolve(rc.Table, rc.Column); err == nil {
		if ri, err := right.resolve(lc.Table, lc.Column); err == nil {
			return li, ri, true
		}
	}
	return 0, 0, false
}

// execSelect runs the full SELECT pipeline and returns the projected
// relation.
func (x *executor) execSelect(s *SelectStmt) (*rel, error) {
	// FROM: join comma-separated items, pulling applicable equality
	// conjuncts out of WHERE so the common `FROM a, b WHERE a.k = b.k`
	// pattern gets a hash join rather than a cross product.
	var src *rel
	whereConjs := conjuncts(s.Where)
	used := make([]bool, len(whereConjs))
	if len(s.From) == 0 {
		src = &rel{rows: []engine.Row{{}}}
	} else {
		var err error
		src, err = x.fromRel(s.From[0])
		if err != nil {
			return nil, err
		}
		for _, f := range s.From[1:] {
			right, err := x.fromRel(f)
			if err != nil {
				return nil, err
			}
			var on Expr
			for i, c := range whereConjs {
				if used[i] {
					continue
				}
				if _, _, ok := x.equiKeys(c, src, right); ok {
					used[i] = true
					if on == nil {
						on = c
					} else {
						on = &BinaryExpr{Op: "AND", Left: on, Right: c}
					}
				}
			}
			src, err = x.join(src, right, on)
			if err != nil {
				return nil, err
			}
		}
	}

	// WHERE (remaining conjuncts).
	var filtered []engine.Row
	anyFilter := false
	for i := range whereConjs {
		if !used[i] {
			anyFilter = true
		}
	}
	if anyFilter {
		for _, row := range src.rows {
			ev := &evalEnv{x: x, rel: src, row: row}
			keep := true
			for i, c := range whereConjs {
				if used[i] {
					continue
				}
				v, err := ev.eval(c)
				if err != nil {
					return nil, err
				}
				if !v.Bool() {
					keep = false
					break
				}
			}
			if keep {
				filtered = append(filtered, row)
			}
		}
		src = &rel{cols: src.cols, rows: filtered}
	}

	hasAgg := s.Having != nil || len(s.GroupBy) > 0
	for _, item := range s.Items {
		if item.Expr != nil && containsAggregate(item.Expr) {
			hasAgg = true
		}
	}

	var out *rel
	var err error
	if hasAgg {
		out, err = x.projectGrouped(s, src)
	} else {
		out, err = x.projectPlain(s, src)
	}
	if err != nil {
		return nil, err
	}

	if s.Distinct {
		seen := make(map[string]bool, len(out.rows))
		var rows []engine.Row
		for _, r := range out.rows {
			k := engine.EncodeKey(r...)
			if !seen[k] {
				seen[k] = true
				rows = append(rows, r)
			}
		}
		out.rows = rows
	}

	if len(s.OrderBy) > 0 {
		if err := x.orderBy(s, src, out, hasAgg); err != nil {
			return nil, err
		}
	}
	if s.Offset > 0 {
		if s.Offset >= len(out.rows) {
			out.rows = nil
		} else {
			out.rows = out.rows[s.Offset:]
		}
	}
	if s.Limit >= 0 && s.Limit < len(out.rows) {
		out.rows = out.rows[:s.Limit]
	}
	return out, nil
}

// expandItems resolves stars into column expressions.
func expandItems(items []SelectItem, src *rel) ([]SelectItem, error) {
	var out []SelectItem
	for _, item := range items {
		switch {
		case item.Star:
			for _, c := range src.cols {
				out = append(out, SelectItem{
					Expr:  &ColumnRef{Table: c.table, Column: c.name},
					Alias: c.name,
				})
			}
		case item.StarTable != "":
			found := false
			for _, c := range src.cols {
				if c.table == item.StarTable {
					found = true
					out = append(out, SelectItem{
						Expr:  &ColumnRef{Table: c.table, Column: c.name},
						Alias: c.name,
					})
				}
			}
			if !found {
				return nil, fmt.Errorf("sql: no table %q in FROM", item.StarTable)
			}
		default:
			out = append(out, item)
		}
	}
	return out, nil
}

// itemName derives an output column name.
func itemName(item SelectItem, i int) string {
	if item.Alias != "" {
		return item.Alias
	}
	if c, ok := item.Expr.(*ColumnRef); ok {
		return c.Column
	}
	if f, ok := item.Expr.(*FuncExpr); ok {
		return strings.ToLower(f.Name)
	}
	return fmt.Sprintf("col%d", i+1)
}

// projectPlain evaluates the select list row by row, expanding a single
// unnest() set-returning item as PostgreSQL does.
func (x *executor) projectPlain(s *SelectStmt, src *rel) (*rel, error) {
	items, err := expandItems(s.Items, src)
	if err != nil {
		return nil, err
	}
	out := &rel{}
	unnestAt := -1
	for i, item := range items {
		if f, ok := item.Expr.(*FuncExpr); ok && strings.EqualFold(f.Name, "unnest") {
			if unnestAt >= 0 {
				return nil, fmt.Errorf("sql: at most one unnest() per select list")
			}
			unnestAt = i
		}
		out.cols = append(out.cols, colInfo{name: itemName(item, i)})
	}
	for _, row := range src.rows {
		ev := &evalEnv{x: x, rel: src, row: row}
		vals := make(engine.Row, len(items))
		var arr []int64
		for i, item := range items {
			if i == unnestAt {
				f := item.Expr.(*FuncExpr)
				if len(f.Args) != 1 {
					return nil, fmt.Errorf("sql: unnest takes one argument")
				}
				v, err := ev.eval(f.Args[0])
				if err != nil {
					return nil, err
				}
				if v.K == engine.KindBitmap {
					arr = v.B.ToSlice()
				} else {
					arr = v.A
				}
				continue
			}
			v, err := ev.eval(item.Expr)
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		if unnestAt < 0 {
			out.rows = append(out.rows, vals)
			continue
		}
		for _, el := range arr {
			r := engine.CloneRow(vals)
			r[unnestAt] = engine.IntValue(el)
			out.rows = append(out.rows, r)
		}
	}
	return out, nil
}

// projectGrouped evaluates GROUP BY / HAVING / aggregate select lists.
func (x *executor) projectGrouped(s *SelectStmt, src *rel) (*rel, error) {
	items, err := expandItems(s.Items, src)
	if err != nil {
		return nil, err
	}
	type group struct {
		rows []engine.Row
	}
	groups := make(map[string]*group)
	var order []string
	if len(s.GroupBy) == 0 {
		groups[""] = &group{rows: src.rows}
		order = append(order, "")
	} else {
		for _, row := range src.rows {
			ev := &evalEnv{x: x, rel: src, row: row}
			keyVals := make([]engine.Value, len(s.GroupBy))
			for i, ge := range s.GroupBy {
				v, err := ev.eval(ge)
				if err != nil {
					return nil, err
				}
				keyVals[i] = v
			}
			k := engine.EncodeKey(keyVals...)
			g, ok := groups[k]
			if !ok {
				g = &group{}
				groups[k] = g
				order = append(order, k)
			}
			g.rows = append(g.rows, row)
		}
	}
	out := &rel{}
	for i, item := range items {
		out.cols = append(out.cols, colInfo{name: itemName(item, i)})
	}
	for _, k := range order {
		g := groups[k]
		var first engine.Row
		if len(g.rows) > 0 {
			first = g.rows[0]
		} else {
			first = make(engine.Row, len(src.cols))
		}
		ev := &evalEnv{x: x, rel: src, row: first, grouped: true, groupRows: g.rows}
		if s.Having != nil {
			v, err := ev.eval(s.Having)
			if err != nil {
				return nil, err
			}
			if !v.Bool() {
				continue
			}
		}
		vals := make(engine.Row, len(items))
		for i, item := range items {
			v, err := ev.eval(item.Expr)
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		out.rows = append(out.rows, vals)
	}
	return out, nil
}

// orderBy sorts the projected relation. Keys may be output ordinals, output
// aliases, or (for non-aggregate queries) expressions over the source
// relation.
func (x *executor) orderBy(s *SelectStmt, src, out *rel, grouped bool) error {
	type keyed struct {
		row  engine.Row
		keys []engine.Value
	}
	rows := make([]keyed, len(out.rows))
	for i, row := range out.rows {
		rows[i] = keyed{row: row}
	}
	for _, ord := range s.OrderBy {
		// Ordinal?
		if lit, ok := ord.Expr.(*Literal); ok && lit.Value.K == engine.KindInt {
			idx := int(lit.Value.I) - 1
			if idx < 0 || idx >= len(out.cols) {
				return fmt.Errorf("sql: ORDER BY position %d out of range", lit.Value.I)
			}
			for i := range rows {
				rows[i].keys = append(rows[i].keys, rows[i].row[idx])
			}
			continue
		}
		// Output alias?
		if c, ok := ord.Expr.(*ColumnRef); ok && c.Table == "" {
			found := -1
			for j, col := range out.cols {
				if col.name == c.Column {
					found = j
					break
				}
			}
			if found >= 0 {
				for i := range rows {
					rows[i].keys = append(rows[i].keys, rows[i].row[found])
				}
				continue
			}
		}
		if grouped {
			return fmt.Errorf("sql: ORDER BY on aggregate queries must reference output columns")
		}
		// Expression over the source rows (valid because projection is
		// 1:1 for non-aggregate, non-unnest queries).
		if len(src.rows) != len(out.rows) {
			return fmt.Errorf("sql: ORDER BY expression unsupported with unnest")
		}
		for i := range rows {
			ev := &evalEnv{x: x, rel: src, row: src.rows[i]}
			v, err := ev.eval(ord.Expr)
			if err != nil {
				return err
			}
			rows[i].keys = append(rows[i].keys, v)
		}
	}
	sort.SliceStable(rows, func(a, b int) bool {
		for k, ord := range s.OrderBy {
			c := engine.Compare(rows[a].keys[k], rows[b].keys[k])
			if c == 0 {
				continue
			}
			if ord.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	for i := range rows {
		out.rows[i] = rows[i].row
	}
	return nil
}

// materialize stores a relation as a new table (SELECT INTO). Column types
// are inferred from the first non-null value per column.
func (x *executor) materialize(name string, r *rel) (int, error) {
	cols := make([]engine.Column, len(r.cols))
	for i, c := range r.cols {
		k := engine.KindInt
		for _, row := range r.rows {
			if !row[i].IsNull() {
				k = row[i].K
				break
			}
		}
		cols[i] = engine.Column{Name: c.name, Type: k}
	}
	t, err := x.db.CreateTable(name, cols)
	if err != nil {
		return 0, err
	}
	for _, row := range r.rows {
		if _, err := t.Insert(engine.CloneRow(row)); err != nil {
			return 0, err
		}
	}
	return len(r.rows), nil
}

func (x *executor) execInsert(s *InsertStmt) (*Result, error) {
	t, err := x.db.MustTable(s.Table)
	if err != nil {
		return nil, err
	}
	cols := t.Columns()
	pos := make([]int, 0, len(cols))
	if len(s.Columns) == 0 {
		for i := range cols {
			pos = append(pos, i)
		}
	} else {
		for _, name := range s.Columns {
			i := t.ColIndex(name)
			if i < 0 {
				return nil, fmt.Errorf("sql: table %s has no column %q", s.Table, name)
			}
			pos = append(pos, i)
		}
	}
	buildRow := func(vals engine.Row) (engine.Row, error) {
		if len(vals) != len(pos) {
			return nil, fmt.Errorf("sql: INSERT has %d values, want %d", len(vals), len(pos))
		}
		row := make(engine.Row, len(cols))
		for i := range row {
			row[i] = engine.NullValue()
		}
		for i, p := range pos {
			row[p] = coerce(vals[i], cols[p].Type)
		}
		return row, nil
	}
	n := 0
	if s.Select != nil {
		sub, err := x.execSelect(s.Select)
		if err != nil {
			return nil, err
		}
		for _, vals := range sub.rows {
			row, err := buildRow(vals)
			if err != nil {
				return nil, err
			}
			if _, err := t.Insert(row); err != nil {
				return nil, err
			}
			n++
		}
		return &Result{Affected: n}, nil
	}
	for _, exprs := range s.Rows {
		vals := make(engine.Row, len(exprs))
		ev := &evalEnv{x: x, rel: &rel{}, row: engine.Row{}}
		for i, e := range exprs {
			v, err := ev.eval(e)
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		row, err := buildRow(vals)
		if err != nil {
			return nil, err
		}
		if _, err := t.Insert(row); err != nil {
			return nil, err
		}
		n++
	}
	return &Result{Affected: n}, nil
}

// coerce converts v to the column kind when a safe conversion exists.
func coerce(v engine.Value, k engine.Kind) engine.Value {
	if v.IsNull() || v.K == k {
		return v
	}
	switch k {
	case engine.KindFloat:
		if v.K == engine.KindInt {
			return engine.FloatValue(float64(v.I))
		}
	case engine.KindInt:
		if v.K == engine.KindFloat && v.F == float64(int64(v.F)) {
			return engine.IntValue(int64(v.F))
		}
	case engine.KindString:
		return engine.StringValue(v.String())
	}
	return v
}

func (x *executor) execUpdate(s *UpdateStmt) (*Result, error) {
	t, err := x.db.MustTable(s.Table)
	if err != nil {
		return nil, err
	}
	srcCols := make([]colInfo, len(t.Columns()))
	for i, c := range t.Columns() {
		srcCols[i] = colInfo{table: s.Table, name: c.Name}
	}
	src := &rel{cols: srcCols}
	setPos := make([]int, len(s.Set))
	for i, a := range s.Set {
		p := t.ColIndex(a.Column)
		if p < 0 {
			return nil, fmt.Errorf("sql: table %s has no column %q", s.Table, a.Column)
		}
		setPos[i] = p
	}
	type change struct {
		id  engine.RowID
		row engine.Row
	}
	var changes []change
	var evalErr error
	t.Scan(func(id engine.RowID, row engine.Row) bool {
		ev := &evalEnv{x: x, rel: src, row: row}
		if s.Where != nil {
			v, err := ev.eval(s.Where)
			if err != nil {
				evalErr = err
				return false
			}
			if !v.Bool() {
				return true
			}
		}
		nr := engine.CloneRow(row)
		for i, a := range s.Set {
			v, err := ev.eval(a.Expr)
			if err != nil {
				evalErr = err
				return false
			}
			nr[setPos[i]] = coerce(v, t.Columns()[setPos[i]].Type)
		}
		changes = append(changes, change{id: id, row: nr})
		return true
	})
	if evalErr != nil {
		return nil, evalErr
	}
	for _, c := range changes {
		if err := t.Update(c.id, c.row); err != nil {
			return nil, err
		}
	}
	return &Result{Affected: len(changes)}, nil
}

func (x *executor) execDelete(s *DeleteStmt) (*Result, error) {
	t, err := x.db.MustTable(s.Table)
	if err != nil {
		return nil, err
	}
	srcCols := make([]colInfo, len(t.Columns()))
	for i, c := range t.Columns() {
		srcCols[i] = colInfo{table: s.Table, name: c.Name}
	}
	src := &rel{cols: srcCols}
	var ids []engine.RowID
	var evalErr error
	t.Scan(func(id engine.RowID, row engine.Row) bool {
		if s.Where != nil {
			ev := &evalEnv{x: x, rel: src, row: row}
			v, err := ev.eval(s.Where)
			if err != nil {
				evalErr = err
				return false
			}
			if !v.Bool() {
				return true
			}
		}
		ids = append(ids, id)
		return true
	})
	if evalErr != nil {
		return nil, evalErr
	}
	t.DeleteBatch(ids)
	return &Result{Affected: len(ids)}, nil
}

func (x *executor) execCreate(s *CreateTableStmt) (*Result, error) {
	t, err := x.db.CreateTable(s.Table, s.Columns)
	if err != nil {
		return nil, err
	}
	if len(s.PrimaryKey) > 0 {
		if err := t.SetPrimaryKey(s.PrimaryKey...); err != nil {
			return nil, err
		}
	}
	return &Result{}, nil
}

// containsAggregate reports whether the expression contains an aggregate
// function call.
func containsAggregate(e Expr) bool {
	switch t := e.(type) {
	case *FuncExpr:
		if isAggregateName(t.Name) {
			return true
		}
		for _, a := range t.Args {
			if containsAggregate(a) {
				return true
			}
		}
	case *BinaryExpr:
		return containsAggregate(t.Left) || containsAggregate(t.Right)
	case *UnaryExpr:
		return containsAggregate(t.X)
	case *IsNullExpr:
		return containsAggregate(t.X)
	case *BetweenExpr:
		return containsAggregate(t.X) || containsAggregate(t.Lo) || containsAggregate(t.Hi)
	case *InExpr:
		if containsAggregate(t.X) {
			return true
		}
		for _, l := range t.List {
			if containsAggregate(l) {
				return true
			}
		}
	case *IndexExpr:
		return containsAggregate(t.X) || containsAggregate(t.Index)
	case *CaseExpr:
		for _, w := range t.Whens {
			if containsAggregate(w.Cond) || containsAggregate(w.Result) {
				return true
			}
		}
		if t.Else != nil {
			return containsAggregate(t.Else)
		}
	}
	return false
}

func isAggregateName(name string) bool {
	switch strings.ToLower(name) {
	case "count", "sum", "avg", "min", "max", "array_agg":
		return true
	}
	return false
}
