package sql

import (
	"fmt"
	"strconv"
	"strings"

	"orpheusdb/internal/engine"
)

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	pos  int
}

// Parse parses a single SQL statement (a trailing semicolon is allowed).
func Parse(src string) (Stmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	s, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	p.eat(tokOp, ";")
	if !p.at(tokEOF, "") {
		return nil, p.errf("unexpected %q after statement", p.cur().text)
	}
	return s, nil
}

// ParseScript parses a semicolon-separated sequence of statements.
func ParseScript(src string) ([]Stmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var out []Stmt
	for {
		for p.eat(tokOp, ";") {
		}
		if p.at(tokEOF, "") {
			return out, nil
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
}

func (p *parser) cur() token { return p.toks[p.pos] }

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) atKeyword(words ...string) bool {
	t := p.cur()
	if t.kind != tokKeyword {
		return false
	}
	for _, w := range words {
		if t.text == w {
			return true
		}
	}
	return false
}

func (p *parser) eat(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(w string) error {
	if p.eat(tokKeyword, w) {
		return nil
	}
	return p.errf("expected %s, found %q", w, p.cur().text)
}

func (p *parser) expectOp(op string) error {
	if p.eat(tokOp, op) {
		return nil
	}
	return p.errf("expected %q, found %q", op, p.cur().text)
}

func (p *parser) ident() (string, error) {
	if p.at(tokIdent, "") {
		s := p.cur().text
		p.pos++
		return s, nil
	}
	return "", p.errf("expected identifier, found %q", p.cur().text)
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sql: parse error near offset %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

func (p *parser) parseStmt() (Stmt, error) {
	switch {
	case p.atKeyword("SELECT"):
		return p.parseSelect()
	case p.atKeyword("INSERT"):
		return p.parseInsert()
	case p.atKeyword("UPDATE"):
		return p.parseUpdate()
	case p.atKeyword("DELETE"):
		return p.parseDelete()
	case p.atKeyword("CREATE"):
		return p.parseCreate()
	case p.atKeyword("DROP"):
		return p.parseDrop()
	case p.at(tokIdent, "merge"):
		// Contextual: no valid statement starts with a bare identifier, so
		// "merge" here can only mean the MERGE statement.
		return p.parseMerge()
	}
	return nil, p.errf("expected a statement, found %q", p.cur().text)
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	s := &SelectStmt{Limit: -1}
	s.Distinct = p.eat(tokKeyword, "DISTINCT")

	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		s.Items = append(s.Items, item)
		if !p.eat(tokOp, ",") {
			break
		}
	}

	if p.eat(tokKeyword, "INTO") {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		s.Into = name
	}

	if p.eat(tokKeyword, "FROM") {
		for {
			f, err := p.parseFromItem()
			if err != nil {
				return nil, err
			}
			s.From = append(s.From, f)
			if !p.eat(tokOp, ",") {
				break
			}
		}
	}

	if p.eat(tokKeyword, "WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Where = e
	}
	if p.eat(tokKeyword, "GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, e)
			if !p.eat(tokOp, ",") {
				break
			}
		}
	}
	if p.eat(tokKeyword, "HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Having = e
	}
	if p.eat(tokKeyword, "ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.eat(tokKeyword, "DESC") {
				item.Desc = true
			} else {
				p.eat(tokKeyword, "ASC")
			}
			s.OrderBy = append(s.OrderBy, item)
			if !p.eat(tokOp, ",") {
				break
			}
		}
	}
	if p.eat(tokKeyword, "LIMIT") {
		n, err := p.integer()
		if err != nil {
			return nil, err
		}
		s.Limit = n
	}
	if p.eat(tokKeyword, "OFFSET") {
		n, err := p.integer()
		if err != nil {
			return nil, err
		}
		s.Offset = n
	}
	return s, nil
}

func (p *parser) integer() (int, error) {
	if !p.at(tokNumber, "") {
		return 0, p.errf("expected number, found %q", p.cur().text)
	}
	n, err := strconv.Atoi(p.cur().text)
	if err != nil {
		return 0, p.errf("bad number %q", p.cur().text)
	}
	p.pos++
	return n, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.eat(tokOp, "*") {
		return SelectItem{Star: true}, nil
	}
	// t.* needs two-token lookahead.
	if p.at(tokIdent, "") && p.pos+2 < len(p.toks) &&
		p.toks[p.pos+1].kind == tokOp && p.toks[p.pos+1].text == "." &&
		p.toks[p.pos+2].kind == tokOp && p.toks[p.pos+2].text == "*" {
		t := p.cur().text
		p.pos += 3
		return SelectItem{StarTable: t}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.eat(tokKeyword, "AS") {
		a, err := p.ident()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = a
	} else if p.at(tokIdent, "") {
		item.Alias = p.cur().text
		p.pos++
	}
	return item, nil
}

func (p *parser) parseFromItem() (FromItem, error) {
	left, err := p.parseFromPrimary()
	if err != nil {
		return nil, err
	}
	for {
		// INNER/LEFT are accepted; only inner-join semantics are
		// implemented (LEFT joins via executor flag).
		if p.eat(tokKeyword, "INNER") {
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
		} else if !p.eat(tokKeyword, "JOIN") {
			return left, nil
		}
		right, err := p.parseFromPrimary()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		on, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		left = &JoinRef{Left: left, Right: right, On: on}
	}
}

func (p *parser) parseFromPrimary() (FromItem, error) {
	if p.eat(tokOp, "(") {
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		ref := &SubqueryRef{Select: sub}
		p.eat(tokKeyword, "AS")
		if p.at(tokIdent, "") {
			ref.Alias = p.cur().text
			p.pos++
		}
		return ref, nil
	}
	// ORPHEUSDB extension: CVD <name> exposes every version of the CVD as
	// one relation with a leading vid column.
	if p.eat(tokKeyword, "CVD") {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		ref := &TableRef{CVD: name, Version: -1}
		p.eat(tokKeyword, "AS")
		if p.at(tokIdent, "") {
			ref.Alias = p.cur().text
			p.pos++
		}
		return ref, nil
	}
	// ORPHEUSDB extension: VERSION <n|branch> [INTERSECT|UNION|EXCEPT <m>
	// ...] OF CVD <name> — a single-version relation (the version slot may
	// name a branch, resolving to its head), or a multi-version scan whose
	// record membership is set algebra over version rlists.
	if p.eat(tokKeyword, "VERSION") {
		v, branch, err := p.versionRef()
		if err != nil {
			return nil, err
		}
		var extras []int64
		var setOps []string
		for {
			op := ""
			switch {
			case p.eat(tokKeyword, "INTERSECT"):
				op = "INTERSECT"
			case p.eat(tokKeyword, "UNION"):
				op = "UNION"
			case p.eat(tokKeyword, "EXCEPT"):
				op = "EXCEPT"
			}
			if op == "" {
				break
			}
			ev, err := p.integer()
			if err != nil {
				return nil, err
			}
			extras = append(extras, int64(ev))
			setOps = append(setOps, op)
		}
		if err := p.expectKeyword("OF"); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("CVD"); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		ref := &TableRef{CVD: name, Version: v, Branch: branch, ExtraVersions: extras, SetOps: setOps}
		p.eat(tokKeyword, "AS")
		if p.at(tokIdent, "") {
			ref.Alias = p.cur().text
			p.pos++
		}
		return ref, nil
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	ref := &TableRef{Name: name}
	p.eat(tokKeyword, "AS")
	if p.at(tokIdent, "") {
		ref.Alias = p.cur().text
		p.pos++
	}
	return ref, nil
}

func (p *parser) parseInsert() (Stmt, error) {
	if err := p.expectKeyword("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	ins := &InsertStmt{Table: name}
	if p.eat(tokOp, "(") {
		for {
			c, err := p.ident()
			if err != nil {
				return nil, err
			}
			ins.Columns = append(ins.Columns, c)
			if !p.eat(tokOp, ",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	if p.atKeyword("SELECT") {
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		ins.Select = sel
		return ins, nil
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.eat(tokOp, ",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if !p.eat(tokOp, ",") {
			break
		}
	}
	return ins, nil
}

func (p *parser) parseUpdate() (Stmt, error) {
	if err := p.expectKeyword("UPDATE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	u := &UpdateStmt{Table: name}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		u.Set = append(u.Set, Assignment{Column: col, Expr: e})
		if !p.eat(tokOp, ",") {
			break
		}
	}
	if p.eat(tokKeyword, "WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		u.Where = e
	}
	return u, nil
}

func (p *parser) parseDelete() (Stmt, error) {
	if err := p.expectKeyword("DELETE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	d := &DeleteStmt{Table: name}
	if p.eat(tokKeyword, "WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.Where = e
	}
	return d, nil
}

// versionRef reads a version slot: a decimal version id or a branch name.
func (p *parser) versionRef() (int64, string, error) {
	if p.at(tokNumber, "") {
		n, err := p.integer()
		return int64(n), "", err
	}
	if p.at(tokIdent, "") {
		name := p.cur().text
		p.pos++
		return 0, name, nil
	}
	return 0, "", p.errf("expected version id or branch name, found %q", p.cur().text)
}

// cvdSuffix reads the trailing `OF CVD <name>` of a branch/merge statement.
func (p *parser) cvdSuffix() (string, error) {
	if err := p.expectKeyword("OF"); err != nil {
		return "", err
	}
	if err := p.expectKeyword("CVD"); err != nil {
		return "", err
	}
	return p.ident()
}

func (p *parser) parseCreate() (Stmt, error) {
	if err := p.expectKeyword("CREATE"); err != nil {
		return nil, err
	}
	if p.eat(tokIdent, "branch") { // contextual: CREATE <what> is next
		return p.parseCreateBranch()
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	c := &CreateTableStmt{Table: name}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	for {
		if p.eat(tokKeyword, "PRIMARY") {
			if err := p.expectKeyword("KEY"); err != nil {
				return nil, err
			}
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			for {
				k, err := p.ident()
				if err != nil {
					return nil, err
				}
				c.PrimaryKey = append(c.PrimaryKey, k)
				if !p.eat(tokOp, ",") {
					break
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
		} else {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			typeName, err := p.typeName()
			if err != nil {
				return nil, err
			}
			k, err := engine.KindFromName(typeName)
			if err != nil {
				return nil, p.errf("unknown type %q", typeName)
			}
			kc := engine.Column{Name: col, Type: k}
			if p.eat(tokKeyword, "PRIMARY") {
				if err := p.expectKeyword("KEY"); err != nil {
					return nil, err
				}
				c.PrimaryKey = append(c.PrimaryKey, col)
			}
			c.Columns = append(c.Columns, kc)
		}
		if !p.eat(tokOp, ",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return c, nil
}

// typeName reads a type identifier, allowing the int[] array form.
func (p *parser) typeName() (string, error) {
	name, err := p.ident()
	if err != nil {
		return "", err
	}
	if p.eat(tokOp, "[") {
		if err := p.expectOp("]"); err != nil {
			return "", err
		}
		name += "[]"
	}
	return name, nil
}

func (p *parser) parseDrop() (Stmt, error) {
	if err := p.expectKeyword("DROP"); err != nil {
		return nil, err
	}
	if p.eat(tokIdent, "branch") { // contextual: DROP <what> is next
		branch, err := p.ident()
		if err != nil {
			return nil, err
		}
		cvd, err := p.cvdSuffix()
		if err != nil {
			return nil, err
		}
		return &DropBranchStmt{Branch: branch, CVD: cvd}, nil
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	return &DropTableStmt{Table: name}, nil
}

// parseCreateBranch parses the tail of
// `CREATE BRANCH name [FROM VERSION ref] OF CVD cvd`.
func (p *parser) parseCreateBranch() (Stmt, error) {
	branch, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := &CreateBranchStmt{Branch: branch, From: -1}
	if p.eat(tokKeyword, "FROM") {
		if err := p.expectKeyword("VERSION"); err != nil {
			return nil, err
		}
		v, fromBranch, err := p.versionRef()
		if err != nil {
			return nil, err
		}
		if fromBranch == "" {
			st.From = v
		}
		st.FromBranch = fromBranch
	}
	if st.CVD, err = p.cvdSuffix(); err != nil {
		return nil, err
	}
	return st, nil
}

// parseMerge parses
// `MERGE (VERSION|BRANCH) ref INTO ref OF CVD cvd [USING policy]`.
func (p *parser) parseMerge() (Stmt, error) {
	if !p.eat(tokIdent, "merge") {
		return nil, p.errf("expected MERGE, found %q", p.cur().text)
	}
	if !p.eat(tokKeyword, "VERSION") && !p.eat(tokIdent, "branch") {
		return nil, p.errf("expected VERSION or BRANCH after MERGE, found %q", p.cur().text)
	}
	st := &MergeStmt{Ours: -1, Theirs: -1}
	v, branch, err := p.versionRef()
	if err != nil {
		return nil, err
	}
	if branch == "" {
		st.Theirs = v
	}
	st.TheirsBranch = branch
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	if v, branch, err = p.versionRef(); err != nil {
		return nil, err
	}
	if branch == "" {
		st.Ours = v
	}
	st.OursBranch = branch
	if st.CVD, err = p.cvdSuffix(); err != nil {
		return nil, err
	}
	if p.eat(tokIdent, "using") { // contextual: the statement ends here
		if !p.at(tokIdent, "") {
			return nil, p.errf("expected merge policy after USING, found %q", p.cur().text)
		}
		st.Policy = p.cur().text
		p.pos++
	}
	return st, nil
}

// Expression grammar, lowest precedence first:
// OR > AND > NOT > comparison (=, <>, <, <=, >, >=, <@, LIKE, IN, BETWEEN,
// IS NULL) > additive (+, -, ||) > multiplicative (*, /, %) > unary > primary.

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.eat(tokKeyword, "OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.eat(tokKeyword, "AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.eat(tokKeyword, "NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", X: x}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.at(tokOp, "=") || p.at(tokOp, "<>") || p.at(tokOp, "!=") ||
			p.at(tokOp, "<") || p.at(tokOp, "<=") || p.at(tokOp, ">") ||
			p.at(tokOp, ">=") || p.at(tokOp, "<@"):
			op := p.cur().text
			if op == "!=" {
				op = "<>"
			}
			p.pos++
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: op, Left: left, Right: right}

		case p.atKeyword("LIKE"):
			p.pos++
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: "LIKE", Left: left, Right: right}

		case p.atKeyword("IS"):
			p.pos++
			not := p.eat(tokKeyword, "NOT")
			if err := p.expectKeyword("NULL"); err != nil {
				return nil, err
			}
			left = &IsNullExpr{X: left, Not: not}

		case p.atKeyword("IN"):
			p.pos++
			in, err := p.parseInTail(left, false)
			if err != nil {
				return nil, err
			}
			left = in

		case p.atKeyword("BETWEEN"):
			p.pos++
			lo, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("AND"); err != nil {
				return nil, err
			}
			hi, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			left = &BetweenExpr{X: left, Lo: lo, Hi: hi}

		case p.atKeyword("NOT"):
			// x NOT IN / NOT BETWEEN / NOT LIKE
			save := p.pos
			p.pos++
			switch {
			case p.eat(tokKeyword, "IN"):
				in, err := p.parseInTail(left, true)
				if err != nil {
					return nil, err
				}
				left = in
			case p.eat(tokKeyword, "BETWEEN"):
				lo, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				if err := p.expectKeyword("AND"); err != nil {
					return nil, err
				}
				hi, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				left = &BetweenExpr{X: left, Lo: lo, Hi: hi, Not: true}
			case p.eat(tokKeyword, "LIKE"):
				right, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				left = &UnaryExpr{Op: "NOT", X: &BinaryExpr{Op: "LIKE", Left: left, Right: right}}
			default:
				p.pos = save
				return left, nil
			}

		default:
			return left, nil
		}
	}
}

func (p *parser) parseInTail(left Expr, not bool) (Expr, error) {
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	in := &InExpr{X: left, Not: not}
	if p.atKeyword("SELECT") {
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		in.Select = sub
	} else {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			in.List = append(in.List, e)
			if !p.eat(tokOp, ",") {
				break
			}
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return in, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.at(tokOp, "+") || p.at(tokOp, "-") || p.at(tokOp, "||") {
		op := p.cur().text
		p.pos++
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.at(tokOp, "*") || p.at(tokOp, "/") || p.at(tokOp, "%") {
		op := p.cur().text
		p.pos++
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.eat(tokOp, "-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", X: x}, nil
	}
	return p.parsePostfix()
}

// parsePostfix handles array subscripting.
func (p *parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.eat(tokOp, "[") {
		idx, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp("]"); err != nil {
			return nil, err
		}
		x = &IndexExpr{X: x, Index: idx}
	}
	return x, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.pos++
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.text)
			}
			return &Literal{Value: engine.FloatValue(f)}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		return &Literal{Value: engine.IntValue(n)}, nil

	case t.kind == tokString:
		p.pos++
		return &Literal{Value: engine.StringValue(t.text)}, nil

	case p.atKeyword("NULL"):
		p.pos++
		return &Literal{Value: engine.NullValue()}, nil
	case p.atKeyword("TRUE"):
		p.pos++
		return &Literal{Value: engine.BoolValue(true)}, nil
	case p.atKeyword("FALSE"):
		p.pos++
		return &Literal{Value: engine.BoolValue(false)}, nil

	case p.atKeyword("ARRAY"):
		p.pos++
		if err := p.expectOp("["); err != nil {
			return nil, err
		}
		a := &ArrayExpr{}
		if p.atKeyword("SELECT") {
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			a.Select = sub
		} else if !p.at(tokOp, "]") {
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				a.Elems = append(a.Elems, e)
				if !p.eat(tokOp, ",") {
					break
				}
			}
		}
		if err := p.expectOp("]"); err != nil {
			return nil, err
		}
		return a, nil

	case p.atKeyword("CASE"):
		p.pos++
		c := &CaseExpr{}
		for p.eat(tokKeyword, "WHEN") {
			cond, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("THEN"); err != nil {
				return nil, err
			}
			res, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			c.Whens = append(c.Whens, CaseWhen{Cond: cond, Result: res})
		}
		if len(c.Whens) == 0 {
			return nil, p.errf("CASE needs at least one WHEN")
		}
		if p.eat(tokKeyword, "ELSE") {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			c.Else = e
		}
		if err := p.expectKeyword("END"); err != nil {
			return nil, err
		}
		return c, nil

	case p.atKeyword("EXISTS"):
		p.pos++
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &ExistsExpr{Select: sub}, nil

	case p.eat(tokOp, "("):
		if p.atKeyword("SELECT") {
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return &SubqueryExpr{Select: sub}, nil
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return e, nil

	case t.kind == tokIdent:
		name := t.text
		p.pos++
		// Function call?
		if p.eat(tokOp, "(") {
			f := &FuncExpr{Name: name}
			if p.eat(tokOp, "*") {
				f.Star = true
			} else if !p.at(tokOp, ")") {
				for {
					e, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					f.Args = append(f.Args, e)
					if !p.eat(tokOp, ",") {
						break
					}
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return f, nil
		}
		// Qualified column?
		if p.eat(tokOp, ".") {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Table: name, Column: col}, nil
		}
		return &ColumnRef{Column: name}, nil
	}
	return nil, p.errf("unexpected %q in expression", t.text)
}
