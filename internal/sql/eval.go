package sql

import (
	"fmt"
	"strings"

	"orpheusdb/internal/engine"
)

// evalEnv evaluates expressions against one row of a relation. groupRows is
// set while evaluating aggregate select lists and HAVING clauses.
type evalEnv struct {
	x         *executor
	rel       *rel
	row       engine.Row
	grouped   bool
	groupRows []engine.Row
}

func (ev *evalEnv) eval(e Expr) (engine.Value, error) {
	switch t := e.(type) {
	case *Literal:
		return t.Value, nil

	case *ColumnRef:
		i, err := ev.rel.resolve(t.Table, t.Column)
		if err != nil {
			return engine.Value{}, err
		}
		return ev.row[i], nil

	case *BinaryExpr:
		return ev.evalBinary(t)

	case *UnaryExpr:
		v, err := ev.eval(t.X)
		if err != nil {
			return engine.Value{}, err
		}
		switch t.Op {
		case "NOT":
			return engine.BoolValue(!v.Bool()), nil
		case "-":
			if v.K == engine.KindFloat {
				return engine.FloatValue(-v.F), nil
			}
			return engine.IntValue(-v.I), nil
		}
		return engine.Value{}, fmt.Errorf("sql: unknown unary op %q", t.Op)

	case *IsNullExpr:
		v, err := ev.eval(t.X)
		if err != nil {
			return engine.Value{}, err
		}
		return engine.BoolValue(v.IsNull() != t.Not), nil

	case *BetweenExpr:
		v, err := ev.eval(t.X)
		if err != nil {
			return engine.Value{}, err
		}
		lo, err := ev.eval(t.Lo)
		if err != nil {
			return engine.Value{}, err
		}
		hi, err := ev.eval(t.Hi)
		if err != nil {
			return engine.Value{}, err
		}
		in := engine.Compare(v, lo) >= 0 && engine.Compare(v, hi) <= 0
		return engine.BoolValue(in != t.Not), nil

	case *InExpr:
		v, err := ev.eval(t.X)
		if err != nil {
			return engine.Value{}, err
		}
		if t.Select != nil {
			sub, err := ev.x.execSelect(t.Select)
			if err != nil {
				return engine.Value{}, err
			}
			if len(sub.cols) != 1 {
				return engine.Value{}, fmt.Errorf("sql: IN subquery must return one column")
			}
			for _, r := range sub.rows {
				if engine.Equal(v, r[0]) {
					return engine.BoolValue(!t.Not), nil
				}
			}
			return engine.BoolValue(t.Not), nil
		}
		for _, le := range t.List {
			lv, err := ev.eval(le)
			if err != nil {
				return engine.Value{}, err
			}
			if engine.Equal(v, lv) {
				return engine.BoolValue(!t.Not), nil
			}
		}
		return engine.BoolValue(t.Not), nil

	case *ExistsExpr:
		sub, err := ev.x.execSelect(t.Select)
		if err != nil {
			return engine.Value{}, err
		}
		return engine.BoolValue(len(sub.rows) > 0), nil

	case *SubqueryExpr:
		sub, err := ev.x.execSelect(t.Select)
		if err != nil {
			return engine.Value{}, err
		}
		if len(sub.cols) != 1 {
			return engine.Value{}, fmt.Errorf("sql: scalar subquery must return one column")
		}
		if len(sub.rows) == 0 {
			return engine.NullValue(), nil
		}
		if len(sub.rows) > 1 {
			return engine.Value{}, fmt.Errorf("sql: scalar subquery returned %d rows", len(sub.rows))
		}
		return sub.rows[0][0], nil

	case *ArrayExpr:
		if t.Select != nil {
			sub, err := ev.x.execSelect(t.Select)
			if err != nil {
				return engine.Value{}, err
			}
			if len(sub.cols) != 1 {
				return engine.Value{}, fmt.Errorf("sql: ARRAY[SELECT ...] must return one column")
			}
			arr := make([]int64, 0, len(sub.rows))
			for _, r := range sub.rows {
				arr = append(arr, r[0].I)
			}
			return engine.ArrayValue(arr), nil
		}
		arr := make([]int64, 0, len(t.Elems))
		for _, el := range t.Elems {
			v, err := ev.eval(el)
			if err != nil {
				return engine.Value{}, err
			}
			arr = append(arr, v.I)
		}
		return engine.ArrayValue(arr), nil

	case *IndexExpr:
		v, err := ev.eval(t.X)
		if err != nil {
			return engine.Value{}, err
		}
		idx, err := ev.eval(t.Index)
		if err != nil {
			return engine.Value{}, err
		}
		i := idx.I
		if v.K != engine.KindIntArray || i < 1 || int(i) > len(v.A) {
			return engine.NullValue(), nil
		}
		return engine.IntValue(v.A[i-1]), nil

	case *CaseExpr:
		for _, w := range t.Whens {
			c, err := ev.eval(w.Cond)
			if err != nil {
				return engine.Value{}, err
			}
			if c.Bool() {
				return ev.eval(w.Result)
			}
		}
		if t.Else != nil {
			return ev.eval(t.Else)
		}
		return engine.NullValue(), nil

	case *FuncExpr:
		return ev.evalFunc(t)
	}
	return engine.Value{}, fmt.Errorf("sql: unsupported expression %T", e)
}

func (ev *evalEnv) evalBinary(b *BinaryExpr) (engine.Value, error) {
	// Short-circuit logic operators.
	switch b.Op {
	case "AND":
		l, err := ev.eval(b.Left)
		if err != nil {
			return engine.Value{}, err
		}
		if !l.Bool() {
			return engine.BoolValue(false), nil
		}
		r, err := ev.eval(b.Right)
		if err != nil {
			return engine.Value{}, err
		}
		return engine.BoolValue(r.Bool()), nil
	case "OR":
		l, err := ev.eval(b.Left)
		if err != nil {
			return engine.Value{}, err
		}
		if l.Bool() {
			return engine.BoolValue(true), nil
		}
		r, err := ev.eval(b.Right)
		if err != nil {
			return engine.Value{}, err
		}
		return engine.BoolValue(r.Bool()), nil
	}

	l, err := ev.eval(b.Left)
	if err != nil {
		return engine.Value{}, err
	}
	r, err := ev.eval(b.Right)
	if err != nil {
		return engine.Value{}, err
	}
	return evalBinaryOp(b.Op, l, r)
}

// asMembership views an array or bitmap value as an element list.
func asMembership(v engine.Value) ([]int64, bool) {
	switch v.K {
	case engine.KindIntArray:
		return v.A, true
	case engine.KindBitmap:
		return v.B.ToSlice(), true
	}
	return nil, false
}

// evalBinaryOp applies a non-short-circuit binary operator to two evaluated
// values.
func evalBinaryOp(op string, l, r engine.Value) (engine.Value, error) {
	switch op {
	case "=":
		return engine.BoolValue(engine.Equal(l, r)), nil
	case "<>":
		return engine.BoolValue(!engine.Equal(l, r)), nil
	case "<":
		return engine.BoolValue(engine.Compare(l, r) < 0), nil
	case "<=":
		return engine.BoolValue(engine.Compare(l, r) <= 0), nil
	case ">":
		return engine.BoolValue(engine.Compare(l, r) > 0), nil
	case ">=":
		return engine.BoolValue(engine.Compare(l, r) >= 0), nil

	case "<@":
		// Containment over arrays and/or bitmap membership sets.
		lArr, lOK := asMembership(l)
		if !lOK || !(r.K == engine.KindIntArray || r.K == engine.KindBitmap) {
			return engine.Value{}, fmt.Errorf("sql: <@ requires arrays or bitmaps")
		}
		if r.K == engine.KindBitmap {
			for _, x := range lArr {
				if !r.B.Contains(x) {
					return engine.BoolValue(false), nil
				}
			}
			return engine.BoolValue(true), nil
		}
		return engine.BoolValue(engine.ArrayContains(lArr, r.A)), nil

	case "LIKE":
		return engine.BoolValue(likeMatch(l.String(), r.String())), nil

	case "||":
		// Array concat/append, or string concat.
		switch {
		case l.K == engine.KindIntArray && r.K == engine.KindIntArray:
			out := make([]int64, 0, len(l.A)+len(r.A))
			out = append(out, l.A...)
			out = append(out, r.A...)
			return engine.ArrayValue(out), nil
		case l.K == engine.KindIntArray:
			return engine.ArrayValue(engine.ArrayAppend(l.A, r.I)), nil
		case r.K == engine.KindIntArray:
			out := make([]int64, 0, len(r.A)+1)
			out = append(out, l.I)
			out = append(out, r.A...)
			return engine.ArrayValue(out), nil
		default:
			return engine.StringValue(l.String() + r.String()), nil
		}

	case "+":
		// The paper writes vlist + vj for array append; support it.
		if l.K == engine.KindIntArray {
			return engine.ArrayValue(engine.ArrayAppend(l.A, r.I)), nil
		}
		return arith(l, r, op)
	case "-", "*", "/", "%":
		return arith(l, r, op)
	}
	return engine.Value{}, fmt.Errorf("sql: unknown operator %q", op)
}

// arith applies numeric arithmetic with int/float promotion.
func arith(l, r engine.Value, op string) (engine.Value, error) {
	if l.IsNull() || r.IsNull() {
		return engine.NullValue(), nil
	}
	if l.K == engine.KindFloat || r.K == engine.KindFloat {
		a, b := l.AsFloat(), r.AsFloat()
		switch op {
		case "+":
			return engine.FloatValue(a + b), nil
		case "-":
			return engine.FloatValue(a - b), nil
		case "*":
			return engine.FloatValue(a * b), nil
		case "/":
			if b == 0 {
				return engine.Value{}, fmt.Errorf("sql: division by zero")
			}
			return engine.FloatValue(a / b), nil
		case "%":
			return engine.Value{}, fmt.Errorf("sql: %% requires integers")
		}
	}
	a, b := l.I, r.I
	switch op {
	case "+":
		return engine.IntValue(a + b), nil
	case "-":
		return engine.IntValue(a - b), nil
	case "*":
		return engine.IntValue(a * b), nil
	case "/":
		if b == 0 {
			return engine.Value{}, fmt.Errorf("sql: division by zero")
		}
		return engine.IntValue(a / b), nil
	case "%":
		if b == 0 {
			return engine.Value{}, fmt.Errorf("sql: division by zero")
		}
		return engine.IntValue(a % b), nil
	}
	return engine.Value{}, fmt.Errorf("sql: unknown operator %q", op)
}

// likeMatch implements SQL LIKE with % and _ wildcards.
func likeMatch(s, pattern string) bool {
	// Dynamic programming over pattern segments split by %.
	segs := strings.Split(pattern, "%")
	if len(segs) == 1 {
		return likeExact(s, pattern)
	}
	pos := 0
	for i, seg := range segs {
		if seg == "" {
			continue
		}
		switch i {
		case 0:
			if len(s) < len(seg) || !likeExact(s[:len(seg)], seg) {
				return false
			}
			pos = len(seg)
		case len(segs) - 1:
			if len(s)-pos < len(seg) {
				return false
			}
			return likeExact(s[len(s)-len(seg):], seg)
		default:
			found := -1
			for j := pos; j+len(seg) <= len(s); j++ {
				if likeExact(s[j:j+len(seg)], seg) {
					found = j
					break
				}
			}
			if found < 0 {
				return false
			}
			pos = found + len(seg)
		}
	}
	return true
}

func likeExact(s, pattern string) bool {
	if len(s) != len(pattern) {
		return false
	}
	for i := 0; i < len(s); i++ {
		if pattern[i] != '_' && pattern[i] != s[i] {
			return false
		}
	}
	return true
}

// evalFunc dispatches aggregate and scalar functions.
func (ev *evalEnv) evalFunc(f *FuncExpr) (engine.Value, error) {
	name := strings.ToLower(f.Name)
	if isAggregateName(name) {
		return ev.evalAggregate(name, f)
	}
	args := make([]engine.Value, len(f.Args))
	for i, a := range f.Args {
		v, err := ev.eval(a)
		if err != nil {
			return engine.Value{}, err
		}
		args[i] = v
	}
	switch name {
	case "abs":
		if len(args) != 1 {
			return engine.Value{}, fmt.Errorf("sql: abs takes one argument")
		}
		if args[0].K == engine.KindFloat {
			if args[0].F < 0 {
				return engine.FloatValue(-args[0].F), nil
			}
			return args[0], nil
		}
		if args[0].I < 0 {
			return engine.IntValue(-args[0].I), nil
		}
		return args[0], nil
	case "coalesce":
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return engine.NullValue(), nil
	case "array_length", "cardinality":
		if len(args) < 1 || args[0].K != engine.KindIntArray {
			return engine.NullValue(), nil
		}
		return engine.IntValue(int64(len(args[0].A))), nil
	case "array_append":
		if len(args) != 2 || args[0].K != engine.KindIntArray {
			return engine.Value{}, fmt.Errorf("sql: array_append(array, int)")
		}
		return engine.ArrayValue(engine.ArrayAppend(args[0].A, args[1].I)), nil
	case "lower":
		return engine.StringValue(strings.ToLower(args[0].String())), nil
	case "upper":
		return engine.StringValue(strings.ToUpper(args[0].String())), nil
	case "length":
		return engine.IntValue(int64(len(args[0].String()))), nil
	case "unnest":
		return engine.Value{}, fmt.Errorf("sql: unnest is only supported at the top of a select list")
	}
	return engine.Value{}, fmt.Errorf("sql: unknown function %q", f.Name)
}

// evalAggregate computes an aggregate over the current group.
func (ev *evalEnv) evalAggregate(name string, f *FuncExpr) (engine.Value, error) {
	if !ev.grouped {
		return engine.Value{}, fmt.Errorf("sql: aggregate %s outside GROUP BY context", f.Name)
	}
	rows := ev.groupRows
	if name == "count" && f.Star {
		return engine.IntValue(int64(len(rows))), nil
	}
	if len(f.Args) != 1 {
		return engine.Value{}, fmt.Errorf("sql: %s takes one argument", f.Name)
	}
	var vals []engine.Value
	for _, row := range rows {
		sub := &evalEnv{x: ev.x, rel: ev.rel, row: row}
		v, err := sub.eval(f.Args[0])
		if err != nil {
			return engine.Value{}, err
		}
		if !v.IsNull() {
			vals = append(vals, v)
		}
	}
	switch name {
	case "count":
		return engine.IntValue(int64(len(vals))), nil
	case "sum", "avg":
		if len(vals) == 0 {
			return engine.NullValue(), nil
		}
		isFloat := false
		var fs, is int64 = 0, 0
		var ff float64
		for _, v := range vals {
			if v.K == engine.KindFloat {
				isFloat = true
			}
			ff += v.AsFloat()
			is += v.I
		}
		_ = fs
		if name == "avg" {
			return engine.FloatValue(ff / float64(len(vals))), nil
		}
		if isFloat {
			return engine.FloatValue(ff), nil
		}
		return engine.IntValue(is), nil
	case "min", "max":
		if len(vals) == 0 {
			return engine.NullValue(), nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			c := engine.Compare(v, best)
			if (name == "min" && c < 0) || (name == "max" && c > 0) {
				best = v
			}
		}
		return best, nil
	case "array_agg":
		arr := make([]int64, 0, len(vals))
		for _, v := range vals {
			arr = append(arr, v.I)
		}
		return engine.ArrayValue(arr), nil
	}
	return engine.Value{}, fmt.Errorf("sql: unknown aggregate %q", f.Name)
}
