// Package sql implements the SQL subset OrpheusDB's query translator emits
// and users issue through the run command: SELECT (with joins, aggregates,
// GROUP BY/HAVING/ORDER BY/LIMIT, subqueries, SELECT INTO), INSERT, UPDATE,
// DELETE, CREATE TABLE and DROP TABLE, plus the array machinery the paper's
// data models rely on: ARRAY literals, the <@ containment operator, array
// append, and unnest.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokOp     // operators and punctuation
	tokParamQ // ? placeholder
)

// token is one lexical unit.
type token struct {
	kind tokenKind
	text string // keywords are upper-cased; idents preserved lower-cased
	pos  int
}

// keywords recognized by the parser. Everything else is an identifier.
// BRANCH, MERGE, and USING are deliberately NOT reserved: they appear only
// in positions where no identifier is grammatical (statement start, after
// CREATE/DROP, after the OF CVD suffix), so the parser matches them as
// contextual identifiers and stores/columns named "branch" or "merge" keep
// working.
var keywords = map[string]bool{
	"SELECT": true, "DISTINCT": true, "INTO": true, "FROM": true, "WHERE": true,
	"GROUP": true, "BY": true, "HAVING": true, "ORDER": true, "ASC": true,
	"DESC": true, "LIMIT": true, "OFFSET": true, "AS": true, "JOIN": true,
	"INNER": true, "LEFT": true, "ON": true, "AND": true, "OR": true,
	"NOT": true, "IN": true, "IS": true, "NULL": true, "TRUE": true,
	"FALSE": true, "INSERT": true, "VALUES": true, "UPDATE": true, "SET": true,
	"DELETE": true, "CREATE": true, "TABLE": true, "DROP": true, "PRIMARY": true,
	"KEY": true, "ARRAY": true, "BETWEEN": true, "LIKE": true, "EXISTS": true,
	"CVD": true, "VERSION": true, "OF": true, "UNION": true, "ALL": true,
	"INTERSECT": true, "EXCEPT": true,
	"CASE": true, "WHEN": true, "THEN": true, "ELSE": true, "END": true,
}

// lexer splits input into tokens.
type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes the whole input.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, t)
		if t.kind == tokEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			// Line comment.
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			goto scan
		}
	}
	return token{kind: tokEOF, pos: l.pos}, nil

scan:
	start := l.pos
	c := l.src[l.pos]
	switch {
	case isIdentStart(rune(c)):
		for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
			l.pos++
		}
		word := l.src[start:l.pos]
		up := strings.ToUpper(word)
		if keywords[up] {
			return token{kind: tokKeyword, text: up, pos: start}, nil
		}
		return token{kind: tokIdent, text: strings.ToLower(word), pos: start}, nil

	case c >= '0' && c <= '9':
		seenDot := false
		for l.pos < len(l.src) {
			d := l.src[l.pos]
			if d == '.' && !seenDot {
				seenDot = true
				l.pos++
				continue
			}
			if d < '0' || d > '9' {
				break
			}
			l.pos++
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], pos: start}, nil

	case c == '\'':
		l.pos++
		var b strings.Builder
		for l.pos < len(l.src) {
			if l.src[l.pos] == '\'' {
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					b.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				return token{kind: tokString, text: b.String(), pos: start}, nil
			}
			b.WriteByte(l.src[l.pos])
			l.pos++
		}
		return token{}, fmt.Errorf("sql: unterminated string at offset %d", start)

	case c == '?':
		l.pos++
		return token{kind: tokParamQ, text: "?", pos: start}, nil

	default:
		// Multi-character operators first.
		for _, op := range []string{"<@", "<=", ">=", "<>", "!=", "||"} {
			if strings.HasPrefix(l.src[l.pos:], op) {
				l.pos += len(op)
				return token{kind: tokOp, text: op, pos: start}, nil
			}
		}
		switch c {
		case '=', '<', '>', '+', '-', '*', '/', '%', '(', ')', ',', ';', '.', '[', ']':
			l.pos++
			return token{kind: tokOp, text: string(c), pos: start}, nil
		}
		return token{}, fmt.Errorf("sql: unexpected character %q at offset %d", c, l.pos)
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || r == '$' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
