package sql

import (
	"math/rand"
	"strings"
	"testing"

	"orpheusdb/internal/engine"
)

func freshDB(t *testing.T) *engine.DB {
	t.Helper()
	db := engine.NewDB()
	mustExec(t, db, "CREATE TABLE emp (id int PRIMARY KEY, name text, dept text, salary int, tags int[])")
	mustExec(t, db, `INSERT INTO emp VALUES
		(1, 'ann', 'eng', 100, ARRAY[1,2]),
		(2, 'bob', 'eng', 90, ARRAY[2]),
		(3, 'cat', 'ops', 80, ARRAY[]),
		(4, 'dan', 'ops', 80, ARRAY[1,3]),
		(5, 'eve', 'mgmt', 150, ARRAY[3])`)
	return db
}

func mustExec(t *testing.T, db *engine.DB, q string) *Result {
	t.Helper()
	r, err := Exec(db, q)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	return r
}

func TestLexerBasics(t *testing.T) {
	toks, err := lex("SELECT a, 'it''s', 3.5 FROM t WHERE x <@ y -- comment\n AND z <> 1;")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []string
	for _, tok := range toks {
		if tok.kind == tokEOF {
			break
		}
		kinds = append(kinds, tok.text)
	}
	joined := strings.Join(kinds, " ")
	if !strings.Contains(joined, "it's") || !strings.Contains(joined, "<@") || !strings.Contains(joined, "<>") {
		t.Fatalf("lexer output: %v", joined)
	}
}

func TestLexerErrors(t *testing.T) {
	if _, err := lex("SELECT 'unterminated"); err == nil {
		t.Fatal("unterminated string accepted")
	}
	if _, err := lex("SELECT #"); err == nil {
		t.Fatal("bad character accepted")
	}
}

func TestParserErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"INSERT INTO t VALUES (1,",
		"CREATE TABLE t (x blobbytype)",
		"UPDATE t SET",
		"SELECT * FROM t GROUP",
		"SELECT * FROM t ORDER BY x LIMIT 'a'",
		"DELETE t",
		"SELECT * FROM t; SELECT",
	}
	for _, q := range bad {
		if _, err := ParseScript(q); err == nil && q != "" {
			t.Errorf("parse of %q should fail", q)
		}
	}
}

func TestSelectBasics(t *testing.T) {
	db := freshDB(t)
	r := mustExec(t, db, "SELECT name FROM emp WHERE salary > 85 ORDER BY salary DESC, name")
	if len(r.Rows) != 3 || r.Rows[0][0].S != "eve" || r.Rows[2][0].S != "bob" {
		t.Fatalf("rows: %v", r.Rows)
	}
	r = mustExec(t, db, "SELECT * FROM emp WHERE dept = 'eng'")
	if len(r.Rows) != 2 || len(r.Cols) != 5 {
		t.Fatalf("star: %v", r.Rows)
	}
	r = mustExec(t, db, "SELECT e.name FROM emp e WHERE e.id = 3")
	if len(r.Rows) != 1 || r.Rows[0][0].S != "cat" {
		t.Fatalf("alias: %v", r.Rows)
	}
}

func TestAggregatesAndGrouping(t *testing.T) {
	db := freshDB(t)
	r := mustExec(t, db, "SELECT dept, count(*) AS c, sum(salary) AS s, avg(salary) AS a, min(salary), max(salary) FROM emp GROUP BY dept ORDER BY dept")
	if len(r.Rows) != 3 {
		t.Fatalf("groups: %v", r.Rows)
	}
	eng := r.Rows[0]
	if eng[0].S != "eng" || eng[1].I != 2 || eng[2].I != 190 || eng[3].F != 95 {
		t.Fatalf("eng group: %v", eng)
	}
	r = mustExec(t, db, "SELECT dept FROM emp GROUP BY dept HAVING sum(salary) >= 160 ORDER BY dept")
	if len(r.Rows) != 2 || r.Rows[0][0].S != "eng" || r.Rows[1][0].S != "ops" {
		t.Fatalf("having: %v", r.Rows)
	}
	r = mustExec(t, db, "SELECT count(*) FROM emp")
	if r.Rows[0][0].I != 5 {
		t.Fatalf("count(*): %v", r.Rows)
	}
	r = mustExec(t, db, "SELECT count(*) FROM emp WHERE dept = 'none'")
	if len(r.Rows) != 1 || r.Rows[0][0].I != 0 {
		t.Fatalf("empty aggregate: %v", r.Rows)
	}
}

func TestJoins(t *testing.T) {
	db := freshDB(t)
	mustExec(t, db, "CREATE TABLE dept (name text, floor int)")
	mustExec(t, db, "INSERT INTO dept VALUES ('eng', 3), ('ops', 1)")
	r := mustExec(t, db, "SELECT e.name, d.floor FROM emp e JOIN dept d ON e.dept = d.name ORDER BY e.id")
	if len(r.Rows) != 4 || r.Rows[0][1].I != 3 {
		t.Fatalf("join: %v", r.Rows)
	}
	// Comma join with WHERE equality gets the same result.
	r2 := mustExec(t, db, "SELECT e.name, d.floor FROM emp e, dept d WHERE e.dept = d.name ORDER BY e.id")
	if len(r2.Rows) != len(r.Rows) {
		t.Fatalf("comma join differs: %v", r2.Rows)
	}
	// Cross product without condition.
	r3 := mustExec(t, db, "SELECT count(*) FROM emp, dept")
	if r3.Rows[0][0].I != 10 {
		t.Fatalf("cross: %v", r3.Rows)
	}
	// Join with extra non-equi condition.
	r4 := mustExec(t, db, "SELECT e.name FROM emp e JOIN dept d ON e.dept = d.name AND e.salary > 85")
	if len(r4.Rows) != 2 {
		t.Fatalf("join+filter: %v", r4.Rows)
	}
}

func TestSubqueries(t *testing.T) {
	db := freshDB(t)
	r := mustExec(t, db, "SELECT name FROM emp WHERE salary = (SELECT max(salary) FROM emp)")
	if len(r.Rows) != 1 || r.Rows[0][0].S != "eve" {
		t.Fatalf("scalar: %v", r.Rows)
	}
	r = mustExec(t, db, "SELECT name FROM emp WHERE id IN (SELECT id FROM emp WHERE dept = 'ops') ORDER BY id")
	if len(r.Rows) != 2 || r.Rows[0][0].S != "cat" {
		t.Fatalf("in-subquery: %v", r.Rows)
	}
	r = mustExec(t, db, "SELECT name FROM emp WHERE id NOT IN (1,2,3) ORDER BY id")
	if len(r.Rows) != 2 {
		t.Fatalf("not-in: %v", r.Rows)
	}
	r = mustExec(t, db, "SELECT count(*) FROM (SELECT dept FROM emp GROUP BY dept) AS d")
	if r.Rows[0][0].I != 3 {
		t.Fatalf("from-subquery: %v", r.Rows)
	}
	r = mustExec(t, db, "SELECT name FROM emp WHERE EXISTS (SELECT 1 FROM emp WHERE salary > 140) AND id = 1")
	if len(r.Rows) != 1 {
		t.Fatalf("exists: %v", r.Rows)
	}
}

func TestArrays(t *testing.T) {
	db := freshDB(t)
	r := mustExec(t, db, "SELECT name FROM emp WHERE ARRAY[1] <@ tags ORDER BY id")
	if len(r.Rows) != 2 || r.Rows[0][0].S != "ann" || r.Rows[1][0].S != "dan" {
		t.Fatalf("containment: %v", r.Rows)
	}
	r = mustExec(t, db, "SELECT array_length(tags), tags[1] FROM emp WHERE id = 1")
	if r.Rows[0][0].I != 2 || r.Rows[0][1].I != 1 {
		t.Fatalf("length/index: %v", r.Rows)
	}
	r = mustExec(t, db, "SELECT tags[9] FROM emp WHERE id = 1")
	if !r.Rows[0][0].IsNull() {
		t.Fatalf("oob index should be NULL: %v", r.Rows)
	}
	mustExec(t, db, "UPDATE emp SET tags = tags || 9 WHERE id = 3")
	r = mustExec(t, db, "SELECT tags FROM emp WHERE id = 3")
	if r.Rows[0][0].String() != "{9}" {
		t.Fatalf("append via ||: %v", r.Rows)
	}
	mustExec(t, db, "UPDATE emp SET tags = tags + 10 WHERE id = 3")
	r = mustExec(t, db, "SELECT tags FROM emp WHERE id = 3")
	if r.Rows[0][0].String() != "{9,10}" {
		t.Fatalf("append via +: %v", r.Rows)
	}
	r = mustExec(t, db, "SELECT array_append(tags, 5) FROM emp WHERE id = 2")
	if r.Rows[0][0].String() != "{2,5}" {
		t.Fatalf("array_append: %v", r.Rows)
	}
}

func TestUnnest(t *testing.T) {
	db := freshDB(t)
	r := mustExec(t, db, "SELECT unnest(tags) AS tag, name FROM emp WHERE id = 1 ORDER BY tag")
	if len(r.Rows) != 2 || r.Rows[0][0].I != 1 || r.Rows[1][0].I != 2 || r.Rows[0][1].S != "ann" {
		t.Fatalf("unnest: %v", r.Rows)
	}
	// Empty arrays contribute no rows.
	r = mustExec(t, db, "SELECT unnest(tags) FROM emp WHERE id = 3")
	if len(r.Rows) != 0 {
		t.Fatalf("unnest empty: %v", r.Rows)
	}
	if _, err := Exec(db, "SELECT unnest(tags), unnest(tags) FROM emp"); err == nil {
		t.Fatal("double unnest accepted")
	}
}

func TestSelectInto(t *testing.T) {
	db := freshDB(t)
	mustExec(t, db, "SELECT id, name INTO eng_only FROM emp WHERE dept = 'eng'")
	r := mustExec(t, db, "SELECT count(*) FROM eng_only")
	if r.Rows[0][0].I != 2 {
		t.Fatalf("into: %v", r.Rows)
	}
	if _, err := Exec(db, "SELECT id INTO eng_only FROM emp"); err == nil {
		t.Fatal("into existing table accepted")
	}
}

func TestInsertVariants(t *testing.T) {
	db := freshDB(t)
	r := mustExec(t, db, "INSERT INTO emp (id, name, dept, salary, tags) VALUES (6, 'fox', 'eng', 70, ARRAY[4])")
	if r.Affected != 1 {
		t.Fatalf("affected: %d", r.Affected)
	}
	mustExec(t, db, "CREATE TABLE names (n text)")
	r = mustExec(t, db, "INSERT INTO names SELECT name FROM emp WHERE dept = 'eng'")
	if r.Affected != 3 {
		t.Fatalf("insert-select: %d", r.Affected)
	}
	if _, err := Exec(db, "INSERT INTO emp VALUES (1)"); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if _, err := Exec(db, "INSERT INTO emp (nope) VALUES (1)"); err == nil {
		t.Fatal("unknown column accepted")
	}
	// Partial column list fills NULLs.
	mustExec(t, db, "INSERT INTO names (n) VALUES ('zed')")
}

func TestUpdateDelete(t *testing.T) {
	db := freshDB(t)
	r := mustExec(t, db, "UPDATE emp SET salary = salary + 10 WHERE dept = 'ops'")
	if r.Affected != 2 {
		t.Fatalf("update affected: %d", r.Affected)
	}
	r = mustExec(t, db, "SELECT sum(salary) FROM emp WHERE dept = 'ops'")
	if r.Rows[0][0].I != 180 {
		t.Fatalf("after update: %v", r.Rows)
	}
	r = mustExec(t, db, "DELETE FROM emp WHERE salary < 95")
	if r.Affected != 3 { // bob 90, cat 90, dan 90
		t.Fatalf("delete affected: %d", r.Affected)
	}
	r = mustExec(t, db, "SELECT count(*) FROM emp")
	if r.Rows[0][0].I != 2 {
		t.Fatalf("after delete: %v", r.Rows)
	}
}

func TestExpressions(t *testing.T) {
	db := freshDB(t)
	cases := []struct {
		q    string
		want string
	}{
		{"SELECT 1 + 2 * 3", "7"},
		{"SELECT (1 + 2) * 3", "9"},
		{"SELECT -5 % 3", "-2"},
		{"SELECT 7 / 2", "3"},
		{"SELECT 7.0 / 2", "3.5"},
		{"SELECT 'a' || 'b'", "ab"},
		{"SELECT CASE WHEN 1 > 2 THEN 'x' ELSE 'y' END", "y"},
		{"SELECT CASE WHEN 1 < 2 THEN 'x' END", "x"},
		{"SELECT coalesce(NULL, 3)", "3"},
		{"SELECT abs(-4)", "4"},
		{"SELECT lower('AbC')", "abc"},
		{"SELECT upper('AbC')", "ABC"},
		{"SELECT length('abcd')", "4"},
		{"SELECT 5 BETWEEN 1 AND 10", "true"},
		{"SELECT 5 NOT BETWEEN 1 AND 10", "false"},
		{"SELECT 'hello' LIKE 'h%o'", "true"},
		{"SELECT 'hello' LIKE 'h_llo'", "true"},
		{"SELECT 'hello' NOT LIKE 'x%'", "true"},
		{"SELECT 'abc' LIKE '%b%'", "true"},
		{"SELECT 'abc' LIKE 'b%'", "false"},
		{"SELECT NULL IS NULL", "true"},
		{"SELECT 1 IS NOT NULL", "true"},
		{"SELECT NOT TRUE", "false"},
		{"SELECT 2 IN (1, 2, 3)", "true"},
		{"SELECT 9 NOT IN (1, 2, 3)", "true"},
	}
	for _, c := range cases {
		r := mustExec(t, db, c.q)
		if got := r.Rows[0][0].String(); got != c.want {
			t.Errorf("%s = %q, want %q", c.q, got, c.want)
		}
	}
	for _, q := range []string{"SELECT 1/0", "SELECT 1%0", "SELECT nosuchfunc(1)", "SELECT nosuchcol FROM emp"} {
		if _, err := Exec(db, q); err == nil {
			t.Errorf("%s should fail", q)
		}
	}
}

func TestDistinctLimitOffset(t *testing.T) {
	db := freshDB(t)
	r := mustExec(t, db, "SELECT DISTINCT dept FROM emp ORDER BY dept")
	if len(r.Rows) != 3 {
		t.Fatalf("distinct: %v", r.Rows)
	}
	r = mustExec(t, db, "SELECT id FROM emp ORDER BY id LIMIT 2 OFFSET 2")
	if len(r.Rows) != 2 || r.Rows[0][0].I != 3 {
		t.Fatalf("limit/offset: %v", r.Rows)
	}
	r = mustExec(t, db, "SELECT id FROM emp ORDER BY id OFFSET 10")
	if len(r.Rows) != 0 {
		t.Fatalf("offset past end: %v", r.Rows)
	}
	// ORDER BY ordinal.
	r = mustExec(t, db, "SELECT name, salary FROM emp ORDER BY 2 DESC LIMIT 1")
	if r.Rows[0][0].S != "eve" {
		t.Fatalf("ordinal order: %v", r.Rows)
	}
}

func TestOrderByAggregateAlias(t *testing.T) {
	db := freshDB(t)
	r := mustExec(t, db, "SELECT dept, sum(salary) AS s FROM emp GROUP BY dept ORDER BY s DESC")
	if r.Rows[0][0].S != "eng" {
		t.Fatalf("aggregate order: %v", r.Rows)
	}
	if _, err := Exec(db, "SELECT dept, sum(salary) FROM emp GROUP BY dept ORDER BY salary"); err == nil {
		t.Fatal("ORDER BY source column on aggregate should fail")
	}
}

func TestCreateDropTable(t *testing.T) {
	db := engine.NewDB()
	mustExec(t, db, "CREATE TABLE x (a int, b text, c int[], PRIMARY KEY (a))")
	tab := db.Table("x")
	if tab == nil || len(tab.PrimaryKey()) != 1 {
		t.Fatal("create with table-level pk failed")
	}
	mustExec(t, db, "DROP TABLE x")
	if db.HasTable("x") {
		t.Fatal("drop failed")
	}
	if _, err := Exec(db, "DROP TABLE x"); err == nil {
		t.Fatal("double drop accepted")
	}
}

func TestExecScript(t *testing.T) {
	db := engine.NewDB()
	r, err := ExecScript(db, `
		CREATE TABLE t (a int);
		INSERT INTO t VALUES (1), (2), (3);
		SELECT sum(a) FROM t;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0].I != 6 {
		t.Fatalf("script result: %v", r.Rows)
	}
}

func TestTable1CheckoutTranslationRuns(t *testing.T) {
	// The exact SQL shape OrpheusDB's translator emits for split-by-rlist
	// checkout must execute on the engine.
	db := engine.NewDB()
	mustExec(t, db, "CREATE TABLE d (rid int PRIMARY KEY, v int)")
	mustExec(t, db, "INSERT INTO d VALUES (1, 10), (2, 20), (3, 30), (4, 40)")
	mustExec(t, db, "CREATE TABLE vt (vid int PRIMARY KEY, rlist int[])")
	mustExec(t, db, "INSERT INTO vt VALUES (7, ARRAY[2, 4])")
	mustExec(t, db, "SELECT * INTO tp FROM d, (SELECT unnest(rlist) AS rid_tmp FROM vt WHERE vid = 7) AS tmp WHERE rid = rid_tmp")
	r := mustExec(t, db, "SELECT sum(v) FROM tp")
	if r.Rows[0][0].I != 60 {
		t.Fatalf("translated checkout: %v", r.Rows)
	}
	// And the rlist commit translation.
	mustExec(t, db, "INSERT INTO vt VALUES (8, ARRAY[SELECT rid FROM tp])")
	r = mustExec(t, db, "SELECT rlist FROM vt WHERE vid = 8")
	if r.Rows[0][0].String() != "{2,4}" {
		t.Fatalf("translated commit: %v", r.Rows)
	}
}

func TestAmbiguousColumn(t *testing.T) {
	db := freshDB(t)
	mustExec(t, db, "CREATE TABLE other (id int)")
	mustExec(t, db, "INSERT INTO other VALUES (1)")
	if _, err := Exec(db, "SELECT id FROM emp, other"); err == nil {
		t.Fatal("ambiguous column accepted")
	}
	mustExec(t, db, "SELECT emp.id FROM emp, other WHERE emp.id = other.id")
}

func TestCVDSyntaxUnresolved(t *testing.T) {
	db := freshDB(t)
	if _, err := Exec(db, "SELECT * FROM VERSION 1 OF CVD foo"); err == nil {
		t.Fatal("unresolved CVD reference must error at the engine level")
	}
}

func TestParserNeverPanics(t *testing.T) {
	// Robustness: random token soup must produce errors, not panics.
	words := []string{
		"SELECT", "FROM", "WHERE", "INSERT", "UPDATE", "DELETE", "GROUP",
		"BY", "ORDER", "JOIN", "ON", "AND", "OR", "NOT", "IN", "ARRAY",
		"VALUES", "INTO", "SET", "t", "x", "1", "1.5", "'s'", "(", ")",
		",", "*", "=", "<@", "[", "]", "+", ";", "CVD", "VERSION", "OF",
		"CASE", "WHEN", "END", "EXISTS", "LIKE", "BETWEEN", "NULL",
	}
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 3000; trial++ {
		n := 1 + rng.Intn(12)
		parts := make([]string, n)
		for i := range parts {
			parts[i] = words[rng.Intn(len(words))]
		}
		src := strings.Join(parts, " ")
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", src, r)
				}
			}()
			_, _ = ParseScript(src)
		}()
	}
}

func TestExecNeverPanicsOnValidParses(t *testing.T) {
	// Statements that parse must execute to a result or an error, never a
	// panic, even when semantically nonsensical.
	db := freshDB(t)
	stmts := []string{
		"SELECT tags + name FROM emp",
		"SELECT ARRAY[1] <@ salary FROM emp",
		"SELECT sum(name) FROM emp",
		"SELECT unnest(salary) FROM emp",
		"SELECT emp.tags[salary] FROM emp",
		"UPDATE emp SET salary = tags",
		"SELECT * FROM emp WHERE salary = (SELECT id FROM emp)",
		"SELECT min(tags), max(tags) FROM emp",
	}
	for _, src := range stmts {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", src, r)
				}
			}()
			_, _ = Exec(db, src)
		}()
	}
}

func TestParseMultiVersionRef(t *testing.T) {
	stmt, err := Parse("SELECT * FROM VERSION 2 INTERSECT 3 UNION 5 EXCEPT 1 OF CVD prot AS p")
	if err != nil {
		t.Fatal(err)
	}
	sel := stmt.(*SelectStmt)
	ref := sel.From[0].(*TableRef)
	if ref.CVD != "prot" || ref.Version != 2 || ref.Alias != "p" {
		t.Fatalf("ref = %+v", ref)
	}
	if len(ref.ExtraVersions) != 3 || ref.ExtraVersions[0] != 3 || ref.ExtraVersions[1] != 5 || ref.ExtraVersions[2] != 1 {
		t.Fatalf("extra versions = %v", ref.ExtraVersions)
	}
	if len(ref.SetOps) != 3 || ref.SetOps[0] != "INTERSECT" || ref.SetOps[1] != "UNION" || ref.SetOps[2] != "EXCEPT" {
		t.Fatalf("set ops = %v", ref.SetOps)
	}
	// A single-version ref parses with no chain.
	stmt, err = Parse("SELECT * FROM VERSION 7 OF CVD prot")
	if err != nil {
		t.Fatal(err)
	}
	ref = stmt.(*SelectStmt).From[0].(*TableRef)
	if ref.Version != 7 || len(ref.ExtraVersions) != 0 || len(ref.SetOps) != 0 {
		t.Fatalf("single ref = %+v", ref)
	}
	// A trailing operator without a version is a parse error.
	if _, err := Parse("SELECT * FROM VERSION 2 INTERSECT OF CVD prot"); err == nil {
		t.Fatal("dangling INTERSECT accepted")
	}
}

func TestBitmapValuesInSQL(t *testing.T) {
	db := engine.NewDB()
	mustExec(t, db, "CREATE TABLE vt (vid int PRIMARY KEY, rlist bitmap)")
	tab := db.Table("vt")
	if _, err := tab.Insert(engine.Row{engine.IntValue(7), engine.BitmapFromSlice([]int64{10, 11, 12})}); err != nil {
		t.Fatal(err)
	}
	// unnest expands bitmap membership like an array.
	r := mustExec(t, db, "SELECT unnest(rlist) AS rid FROM vt WHERE vid = 7")
	if len(r.Rows) != 3 || r.Rows[0][0].I != 10 || r.Rows[2][0].I != 12 {
		t.Fatalf("unnest(bitmap) = %v", r.Rows)
	}
	// <@ containment probes bitmap membership.
	r = mustExec(t, db, "SELECT count(*) FROM vt WHERE ARRAY[10,12] <@ rlist")
	if r.Rows[0][0].I != 1 {
		t.Fatalf("array <@ bitmap = %v", r.Rows)
	}
	r = mustExec(t, db, "SELECT count(*) FROM vt WHERE ARRAY[10,99] <@ rlist")
	if r.Rows[0][0].I != 0 {
		t.Fatalf("non-contained array <@ bitmap = %v", r.Rows)
	}
}
