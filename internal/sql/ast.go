package sql

import "orpheusdb/internal/engine"

// Stmt is any parsed SQL statement.
type Stmt interface{ stmt() }

// SelectStmt is a SELECT query, optionally SELECT ... INTO.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	Into     string // non-empty for SELECT INTO
	From     []FromItem
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    int // -1 when absent
	Offset   int
}

// SelectItem is one output column: a star, a qualified star, or an expression
// with an optional alias.
type SelectItem struct {
	Star      bool
	StarTable string // "t.*"
	Expr      Expr
	Alias     string
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// FromItem is a table reference, a derived table, or a join.
type FromItem interface{ fromItem() }

// TableRef names a stored table.
type TableRef struct {
	Name  string
	Alias string
	// Version/CVD are set by the ORPHEUSDB rewrite of
	// `VERSION v OF CVD name` and resolved before execution.
	Version int64
	CVD     string
	// Branch is set when the version slot named a branch instead of an id
	// (`VERSION main OF CVD name`); the translator resolves it to the
	// branch's head version.
	Branch string
	// Multi-version scans (`VERSION v1 INTERSECT v2 [UNION v3 ...] OF CVD
	// name`) chain further versions onto Version left-associatively:
	// SetOps[i] ∈ {UNION, INTERSECT, EXCEPT} combines the running record
	// set with ExtraVersions[i]. The translator resolves the chain with
	// bitmap algebra before any data table is touched.
	ExtraVersions []int64
	SetOps        []string
}

// SubqueryRef is a parenthesized SELECT in FROM.
type SubqueryRef struct {
	Select *SelectStmt
	Alias  string
}

// JoinRef is an explicit `a JOIN b ON cond`.
type JoinRef struct {
	Left, Right FromItem
	On          Expr
}

func (*TableRef) fromItem()    {}
func (*SubqueryRef) fromItem() {}
func (*JoinRef) fromItem()     {}

// InsertStmt is INSERT INTO ... VALUES / SELECT.
type InsertStmt struct {
	Table   string
	Columns []string
	Rows    [][]Expr
	Select  *SelectStmt
}

// UpdateStmt is UPDATE ... SET ... WHERE.
type UpdateStmt struct {
	Table string
	Set   []Assignment
	Where Expr
}

// Assignment is one SET column = expr.
type Assignment struct {
	Column string
	Expr   Expr
}

// DeleteStmt is DELETE FROM ... WHERE.
type DeleteStmt struct {
	Table string
	Where Expr
}

// CreateTableStmt is CREATE TABLE with column definitions.
type CreateTableStmt struct {
	Table      string
	Columns    []engine.Column
	PrimaryKey []string
}

// DropTableStmt is DROP TABLE.
type DropTableStmt struct {
	Table string
}

// CreateBranchStmt is the ORPHEUSDB extension
// `CREATE BRANCH name [FROM VERSION ref] OF CVD cvd`. Without a FROM clause
// the branch starts at the dataset's latest version. The reference is a
// version id (From >= 0) or a branch name (FromBranch).
type CreateBranchStmt struct {
	Branch     string
	CVD        string
	From       int64 // -1 when absent or FromBranch is set
	FromBranch string
}

// DropBranchStmt is `DROP BRANCH name OF CVD cvd`.
type DropBranchStmt struct {
	Branch string
	CVD    string
}

// MergeStmt is the ORPHEUSDB extension
// `MERGE VERSION a INTO b OF CVD cvd [USING policy]` (BRANCH is accepted as
// a synonym for VERSION). Each side is a version id (>= 0) or a branch name;
// when the INTO side names a branch, its head advances to the merge result.
// Policy is OURS, THEIRS, or FAIL (the default).
type MergeStmt struct {
	CVD          string
	Ours, Theirs int64 // -1 when the matching branch name is set
	OursBranch   string
	TheirsBranch string
	Policy       string
}

func (*SelectStmt) stmt()       {}
func (*InsertStmt) stmt()       {}
func (*UpdateStmt) stmt()       {}
func (*DeleteStmt) stmt()       {}
func (*CreateTableStmt) stmt()  {}
func (*DropTableStmt) stmt()    {}
func (*CreateBranchStmt) stmt() {}
func (*DropBranchStmt) stmt()   {}
func (*MergeStmt) stmt()        {}

// Expr is any expression node.
type Expr interface{ expr() }

// Literal is a constant value.
type Literal struct {
	Value engine.Value
}

// ColumnRef names a column, optionally table-qualified.
type ColumnRef struct {
	Table  string
	Column string
}

// BinaryExpr applies an infix operator.
type BinaryExpr struct {
	Op          string // =, <>, <, <=, >, >=, AND, OR, +, -, *, /, %, ||, <@, LIKE
	Left, Right Expr
}

// UnaryExpr applies NOT or unary minus.
type UnaryExpr struct {
	Op string // NOT, -
	X  Expr
}

// IsNullExpr is `x IS [NOT] NULL`.
type IsNullExpr struct {
	X   Expr
	Not bool
}

// InExpr is `x [NOT] IN (list | subquery)`.
type InExpr struct {
	X      Expr
	Not    bool
	List   []Expr
	Select *SelectStmt
}

// ExistsExpr is `EXISTS (subquery)`.
type ExistsExpr struct {
	Select *SelectStmt
}

// BetweenExpr is `x [NOT] BETWEEN lo AND hi`.
type BetweenExpr struct {
	X, Lo, Hi Expr
	Not       bool
}

// FuncExpr is a function call; Star marks count(*).
type FuncExpr struct {
	Name string
	Args []Expr
	Star bool
}

// ArrayExpr is an ARRAY[...] literal; Select supports
// ARRAY[SELECT rid FROM t] as used in Table 1.
type ArrayExpr struct {
	Elems  []Expr
	Select *SelectStmt
}

// IndexExpr is array subscripting a[i] (1-based, as in PostgreSQL).
type IndexExpr struct {
	X, Index Expr
}

// CaseExpr is a searched CASE WHEN ... THEN ... ELSE ... END.
type CaseExpr struct {
	Whens []CaseWhen
	Else  Expr
}

// CaseWhen is one WHEN/THEN arm.
type CaseWhen struct {
	Cond, Result Expr
}

// SubqueryExpr is a scalar subquery.
type SubqueryExpr struct {
	Select *SelectStmt
}

func (*Literal) expr()      {}
func (*ColumnRef) expr()    {}
func (*BinaryExpr) expr()   {}
func (*UnaryExpr) expr()    {}
func (*IsNullExpr) expr()   {}
func (*InExpr) expr()       {}
func (*ExistsExpr) expr()   {}
func (*BetweenExpr) expr()  {}
func (*FuncExpr) expr()     {}
func (*ArrayExpr) expr()    {}
func (*IndexExpr) expr()    {}
func (*CaseExpr) expr()     {}
func (*SubqueryExpr) expr() {}
