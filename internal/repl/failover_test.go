package repl

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	orpheusdb "orpheusdb"
)

// Failover: the primary dies mid-traffic, an operator promotes a follower
// over HTTP, writes resume against the promoted node, and a replacement
// follower (standing in for the old primary rejoining) syncs off the
// promoted node without inheriting any unreplicated write the dead primary
// still held.
func TestFailoverPromotion(t *testing.T) {
	primary, srv := newPrimary(t)
	d, err := primary.Init("fo", testColumns(), orpheusdb.InitOptions{PrimaryKey: []string{"id"}})
	if err != nil {
		t.Fatal(err)
	}
	commitN(t, d, 5, "pre")

	// The follower gets a WAL dir so promotion can arm durability — after
	// the flip it is a first-class primary that can ship its own log.
	walDir := filepath.Join(t.TempDir(), "follower-wal")
	f, err := StartFollower(FollowerConfig{
		Primary:        srv.URL,
		WaitMS:         250,
		ReconnectDelay: 25 * time.Millisecond,
		PromoteWALDir:  walDir,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	waitCaughtUp(t, f, primary)
	fsrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f.Handler().ServeHTTP(w, r) // re-resolve per request: promotion survives re-bootstrap swaps
	}))
	defer fsrv.Close()

	// Kill the primary mid-traffic, with one write that never replicated —
	// the classic lost-update the promoted timeline must not contain.
	preFailover := primary.WALStatus().AppliedLSN
	srv.Close()
	lostV, err := d.Commit([]orpheusdb.Row{{orpheusdb.Int(666), orpheusdb.String("lost")}},
		[]orpheusdb.VersionID{d.LatestVersion()}, "never replicated")
	if err != nil {
		t.Fatal(err)
	}

	// Promote over HTTP, exactly as an operator would.
	presp, err := http.Post(fsrv.URL+"/api/v1/promote", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var promoted struct {
		Promoted    bool                      `json:"promoted"`
		Replication orpheusdb.ReplicationInfo `json:"replication"`
	}
	if err := json.NewDecoder(presp.Body).Decode(&promoted); err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != http.StatusOK || !promoted.Promoted {
		t.Fatalf("promote: status %d, body %+v", presp.StatusCode, promoted)
	}
	if promoted.Replication.Role != "promoted" || promoted.Replication.State != "promoted" {
		t.Fatalf("post-promote replication info = %+v", promoted.Replication)
	}
	if got := f.Store().WALStatus().AppliedLSN; got != preFailover {
		t.Fatalf("promoted node's watermark = %d, want the pre-failover %d (must not include the lost write)", got, preFailover)
	}
	if f.Store().IsReadOnly() {
		t.Fatal("promoted store still read-only")
	}

	// Promote is idempotent: a second POST must succeed, not error.
	presp2, err := http.Post(fsrv.URL+"/api/v1/promote", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	presp2.Body.Close()
	if presp2.StatusCode != http.StatusOK {
		t.Fatalf("second promote: status %d, want 200", presp2.StatusCode)
	}

	// Writes resume through the promoted node's HTTP API.
	latest := int64(0)
	{
		fd, err := f.Store().Dataset("fo")
		if err != nil {
			t.Fatal(err)
		}
		latest = int64(fd.LatestVersion())
	}
	body := bytes.NewReader([]byte(fmt.Sprintf(
		`{"rows":[[100,"after-failover"]],"parents":[%d],"message":"first write on the new primary"}`, latest)))
	cresp, err := http.Post(fsrv.URL+"/api/v1/datasets/fo/commit", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusCreated {
		t.Fatalf("post-promotion commit: status %d, want 201", cresp.StatusCode)
	}

	// The old primary rejoins the group as a follower of the promoted node
	// (a rejoin is a fresh bootstrap — its diverged timeline is discarded,
	// which is exactly how divergence is avoided).
	rejoined, err := StartFollower(FollowerConfig{
		Primary:        fsrv.URL,
		WaitMS:         250,
		ReconnectDelay: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("rejoin as follower of the promoted node: %v", err)
	}
	defer rejoined.Close()
	waitCaughtUp(t, rejoined, f.Store())
	assertConverged(t, f.Store(), rejoined.Store())

	// The lost write must be absent from the promoted timeline: the version
	// id was reused by the post-failover commit with different content.
	rd, err := rejoined.Store().Dataset("fo")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := rd.Checkout(orpheusdb.VersionID(lostV))
	if err != nil {
		t.Fatalf("checkout of reused version id %d: %v", lostV, err)
	}
	for _, r := range rows {
		if fmt.Sprintf("%v", r) == fmt.Sprintf("%v", orpheusdb.Row{orpheusdb.Int(666), orpheusdb.String("lost")}) {
			t.Fatal("lost (unreplicated) write leaked into the promoted timeline")
		}
	}

	// Replication keeps flowing: another write on the promoted node reaches
	// the rejoined follower.
	fd, err := f.Store().Dataset("fo")
	if err != nil {
		t.Fatal(err)
	}
	commitN(t, fd, 2, "steady")
	waitCaughtUp(t, rejoined, f.Store())
	assertConverged(t, f.Store(), rejoined.Store())
}
