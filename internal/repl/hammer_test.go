package repl

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	orpheusdb "orpheusdb"
)

// Replication consistency hammer: concurrent commits, branch/merge cycles,
// partition migrations, and checkpoints on the primary, against concurrent
// fingerprinted checkouts and ETag-validated HTTP reads on the follower.
//
// The headline invariant is the acked-watermark rule — a follower never
// serves state newer than the LSN it has applied. It is checked with stable
// samples: read (appliedLSN, latestVersion, appliedLSN) and keep the sample
// only when the two LSN reads agree; across consecutive stable samples the
// LSN must be non-decreasing, and an unchanged LSN must pin an unchanged
// latest version (visible state cannot move without acking a record).
// Run with -race; the final barrier asserts full fingerprint convergence.

const (
	hammerCommits = 40 // per plain writer
	hammerMerges  = 12 // branch/merge cycles
)

// stableSample reads (appliedLSN, latest version of dataset name) on the
// follower, retrying until the LSN is unchanged across the read. ok=false
// when the dataset is not visible yet or the store never held still.
func stableSample(f *Follower, name string) (lsn uint64, latest orpheusdb.VersionID, ok bool) {
	for try := 0; try < 20; try++ {
		st := f.Store()
		a1 := st.WALStatus().AppliedLSN
		d, err := st.Dataset(name)
		if err != nil {
			return 0, 0, false // not replicated yet
		}
		v := d.LatestVersion()
		if st.WALStatus().AppliedLSN == a1 {
			return a1, v, true
		}
	}
	return 0, 0, false
}

func TestReplicationConsistencyHammer(t *testing.T) {
	primary, srv := newPrimary(t)
	da, err := primary.Init("ha", testColumns(), orpheusdb.InitOptions{
		PrimaryKey: []string{"id"},
		Model:      orpheusdb.PartitionedRlist,
	})
	if err != nil {
		t.Fatal(err)
	}
	db, err := primary.Init("hb", testColumns(), orpheusdb.InitOptions{PrimaryKey: []string{"id"}})
	if err != nil {
		t.Fatal(err)
	}
	commitN(t, da, 1, "seed")
	commitN(t, db, 1, "seed")

	f := startFollower(t, srv.URL)
	waitCaughtUp(t, f, primary)
	fsrv := httptest.NewServer(f.Handler())
	defer fsrv.Close()

	ours, err := orpheusdb.ParseMergePolicy("ours")
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	writersDone := make(chan struct{})

	// Writer 1: plain commit chain on "ha", with a partition migration
	// every 10 commits (replicated as a TypeOptimize record).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < hammerCommits; i++ {
			v, err := da.Commit(
				[]orpheusdb.Row{{orpheusdb.Int(int64(10000 + i)), orpheusdb.String(fmt.Sprintf("a-%d", i))}},
				[]orpheusdb.VersionID{da.LatestVersion()}, fmt.Sprintf("a %d", i))
			if err != nil {
				errs <- fmt.Errorf("writer a commit %d: %w", i, err)
				return
			}
			if i%10 == 9 {
				if _, err := da.Optimize(2.0); err != nil {
					errs <- fmt.Errorf("optimize after v%d: %w", v, err)
					return
				}
			}
		}
	}()

	// Writer 2: branch/merge cycles on "hb" — commit on main, branch, commit
	// on the branch, merge it back with the "ours" policy.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < hammerMerges; i++ {
			base := db.LatestVersion()
			branch := fmt.Sprintf("side-%d", i)
			if _, err := db.CreateBranch(branch, base); err != nil {
				errs <- fmt.Errorf("branch %s: %w", branch, err)
				return
			}
			sideV, err := db.Commit(
				[]orpheusdb.Row{{orpheusdb.Int(int64(20001 + 2*i)), orpheusdb.String(fmt.Sprintf("side-%d", i))}},
				[]orpheusdb.VersionID{base}, fmt.Sprintf("side %d", i))
			if err != nil {
				errs <- fmt.Errorf("writer b side commit %d: %w", i, err)
				return
			}
			// Diverge the main line off the same base so the merge is a true
			// three-way merge (a fast-forward would create no version).
			mainV, err := db.Commit(
				[]orpheusdb.Row{{orpheusdb.Int(int64(20000 + 2*i)), orpheusdb.String(fmt.Sprintf("main-%d", i))}},
				[]orpheusdb.VersionID{base}, fmt.Sprintf("main %d", i))
			if err != nil {
				errs <- fmt.Errorf("writer b main commit %d: %w", i, err)
				return
			}
			if _, err := db.Merge(fmt.Sprint(mainV), fmt.Sprint(sideV), ours, fmt.Sprintf("merge %d", i)); err != nil {
				errs <- fmt.Errorf("merge %d: %w", i, err)
				return
			}
		}
	}()

	// Checkpointer: Save/truncate racing the shipping stream.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			if err := primary.Checkpoint(); err != nil {
				errs <- fmt.Errorf("checkpoint: %w", err)
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
	}()

	// Follower readers: one per dataset enforcing the acked-watermark rule
	// and spot-checking fingerprints of already-replicated versions.
	for _, name := range []string{"ha", "hb"} {
		name := name
		wg.Add(1)
		go func() {
			defer wg.Done()
			var prevLSN uint64
			var prevLatest orpheusdb.VersionID
			havePrev := false
			for i := 0; ; i++ {
				select {
				case <-writersDone:
					return
				default:
				}
				lsn, latest, ok := stableSample(f, name)
				if !ok {
					continue
				}
				if havePrev {
					if lsn < prevLSN {
						errs <- fmt.Errorf("%s: applied LSN went backwards: %d -> %d", name, prevLSN, lsn)
						return
					}
					if lsn == prevLSN && latest != prevLatest {
						errs <- fmt.Errorf("%s: state served beyond acked watermark: latest %d -> %d at LSN %d",
							name, prevLatest, latest, lsn)
						return
					}
					if lsn > prevLSN && latest < prevLatest {
						errs <- fmt.Errorf("%s: latest version went backwards: %d -> %d", name, prevLatest, latest)
						return
					}
				}
				prevLSN, prevLatest, havePrev = lsn, latest, true

				// Spot-check: any version the follower exposes must
				// fingerprint identically on the primary (versions are
				// immutable once committed).
				fst := f.Store()
				fd, err := fst.Dataset(name)
				if err != nil {
					continue
				}
				vs := fd.Versions()
				if len(vs) == 0 {
					continue
				}
				v := vs[i%len(vs)]
				frows, err := fd.Checkout(v)
				if err != nil {
					errs <- fmt.Errorf("%s: follower checkout v%d: %w", name, v, err)
					return
				}
				pd, err := primary.Dataset(name)
				if err != nil {
					errs <- err
					return
				}
				prows, err := pd.Checkout(v)
				if err != nil {
					errs <- fmt.Errorf("%s: primary checkout v%d: %w", name, v, err)
					return
				}
				if len(frows) != len(prows) {
					errs <- fmt.Errorf("%s v%d: follower has %d rows, primary %d", name, v, len(frows), len(prows))
					return
				}
			}
		}()
	}

	// HTTP reader: checkout with ETag validators against the follower's
	// server — every response is either a well-formed 200 with a validator
	// or a 304 for a still-valid one.
	wg.Add(1)
	go func() {
		defer wg.Done()
		client := &http.Client{Timeout: 5 * time.Second}
		token := ""
		for {
			select {
			case <-writersDone:
				return
			default:
			}
			req, _ := http.NewRequest(http.MethodGet, fsrv.URL+"/api/v1/datasets/ha/checkout?versions=1", nil)
			if token != "" {
				req.Header.Set("If-None-Match", token)
			}
			resp, err := client.Do(req)
			if err != nil {
				errs <- fmt.Errorf("etag reader: %w", err)
				return
			}
			switch resp.StatusCode {
			case http.StatusOK:
				if resp.Header.Get("X-Orpheus-Version") == "" {
					resp.Body.Close()
					errs <- fmt.Errorf("etag reader: 200 without a validator")
					return
				}
				token = resp.Header.Get("X-Orpheus-Version")
			case http.StatusNotModified:
				// Still valid: fine.
			default:
				resp.Body.Close()
				errs <- fmt.Errorf("etag reader: unexpected status %d", resp.StatusCode)
				return
			}
			resp.Body.Close()
		}
	}()

	// Wait until every expected version landed on the primary, then stop
	// the readers and join everyone.
	expectA := 1 + hammerCommits  // seed + commits
	expectB := 1 + 3*hammerMerges // seed + (main, side, merge) per cycle
	waitFor(t, 30*time.Second, "writers to finish", func() bool {
		select {
		case err := <-errs:
			t.Fatalf("hammer worker failed: %v", err)
		default:
		}
		return len(da.Versions()) >= expectA && len(db.Versions()) >= expectB
	})
	close(writersDone)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatalf("hammer worker failed: %v", err)
	default:
	}

	waitCaughtUp(t, f, primary)
	assertConverged(t, primary, f.Store())

	if f.Store().WALStatus().AppliedLSN != primary.WALStatus().AppliedLSN {
		t.Fatal("watermarks diverged after hammer")
	}
}
