package repl

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	orpheusdb "orpheusdb"
	"orpheusdb/internal/server"
)

// newPrimary builds a WAL-enabled primary store and its HTTP server.
func newPrimary(t *testing.T) (*orpheusdb.Store, *httptest.Server) {
	t.Helper()
	dir := t.TempDir()
	st, err := orpheusdb.OpenStore(filepath.Join(dir, "primary.odb"))
	if err != nil {
		t.Fatalf("open primary: %v", err)
	}
	if err := st.EnableWAL(orpheusdb.WALConfig{
		Dir:    filepath.Join(dir, "wal"),
		Policy: orpheusdb.FsyncOff,
	}); err != nil {
		t.Fatalf("enable wal: %v", err)
	}
	srv := httptest.NewServer(server.New(st, nil))
	t.Cleanup(srv.Close)
	t.Cleanup(func() { st.CloseWAL() })
	return st, srv
}

func testColumns() []orpheusdb.Column {
	return []orpheusdb.Column{
		{Name: "id", Type: orpheusdb.KindInt},
		{Name: "val", Type: orpheusdb.KindString},
	}
}

// commitN appends n single-row versions to dataset d, each chaining off the
// latest, and returns the new version ids.
func commitN(t *testing.T, d *orpheusdb.Dataset, n int, tag string) []orpheusdb.VersionID {
	t.Helper()
	var out []orpheusdb.VersionID
	for i := 0; i < n; i++ {
		var parents []orpheusdb.VersionID
		if latest := d.LatestVersion(); latest != 0 {
			parents = []orpheusdb.VersionID{latest}
		}
		row := orpheusdb.Row{orpheusdb.Int(int64(len(out) + 1000*len(tag))), orpheusdb.String(fmt.Sprintf("%s-%d", tag, i))}
		v, err := d.Commit([]orpheusdb.Row{row}, parents, fmt.Sprintf("commit %s %d", tag, i))
		if err != nil {
			t.Fatalf("commit: %v", err)
		}
		out = append(out, v)
	}
	return out
}

// fingerprint renders a version's checkout as an order-independent string.
func fingerprint(t *testing.T, st *orpheusdb.Store, dataset string, v orpheusdb.VersionID) string {
	t.Helper()
	d, err := st.Dataset(dataset)
	if err != nil {
		t.Fatalf("dataset %s: %v", dataset, err)
	}
	rows, err := d.Checkout(v)
	if err != nil {
		t.Fatalf("checkout %s@%d: %v", dataset, v, err)
	}
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = fmt.Sprintf("%v", r)
	}
	sort.Strings(out)
	return strings.Join(out, "\n")
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// waitCaughtUp waits until the follower's applied LSN reaches the primary's.
func waitCaughtUp(t *testing.T, f *Follower, primary *orpheusdb.Store) {
	t.Helper()
	waitFor(t, 10*time.Second, "follower catch-up", func() bool {
		return f.Store().WALStatus().AppliedLSN >= primary.WALStatus().AppliedLSN
	})
}

// assertConverged checks every version of every dataset fingerprints
// identically on both stores, and the LSN watermarks match.
func assertConverged(t *testing.T, primary, follower *orpheusdb.Store) {
	t.Helper()
	if p, f := primary.WALStatus().AppliedLSN, follower.WALStatus().AppliedLSN; p != f {
		t.Fatalf("LSN watermarks diverge: primary %d, follower %d", p, f)
	}
	names := primary.List()
	fnames := follower.List()
	if fmt.Sprintf("%v", names) != fmt.Sprintf("%v", fnames) {
		t.Fatalf("dataset lists diverge: primary %v, follower %v", names, fnames)
	}
	for _, name := range names {
		pd, err := primary.Dataset(name)
		if err != nil {
			t.Fatal(err)
		}
		fd, err := follower.Dataset(name)
		if err != nil {
			t.Fatalf("follower missing dataset %s: %v", name, err)
		}
		pv, fv := pd.Versions(), fd.Versions()
		if fmt.Sprintf("%v", pv) != fmt.Sprintf("%v", fv) {
			t.Fatalf("dataset %s version lists diverge: %v vs %v", name, pv, fv)
		}
		for _, v := range pv {
			if pf, ff := fingerprint(t, primary, name, v), fingerprint(t, follower, name, v); pf != ff {
				t.Fatalf("dataset %s version %d fingerprints diverge:\nprimary:\n%s\nfollower:\n%s", name, v, pf, ff)
			}
		}
	}
}

func startFollower(t *testing.T, primaryURL string) *Follower {
	t.Helper()
	f, err := StartFollower(FollowerConfig{Primary: primaryURL, WaitMS: 250, ReconnectDelay: 50 * time.Millisecond})
	if err != nil {
		t.Fatalf("start follower: %v", err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// TestFollowerConvergence covers both replication paths: state already in
// the bootstrap snapshot, and state arriving live over the stream (including
// the dataset init itself when the snapshot was empty).
func TestFollowerConvergence(t *testing.T) {
	primary, srv := newPrimary(t)
	d, err := primary.Init("prot", testColumns(), orpheusdb.InitOptions{PrimaryKey: []string{"id"}})
	if err != nil {
		t.Fatal(err)
	}
	commitN(t, d, 3, "pre") // snapshot-borne state

	f := startFollower(t, srv.URL)
	waitCaughtUp(t, f, primary)
	assertConverged(t, primary, f.Store())

	commitN(t, d, 4, "post") // stream-borne state
	if _, err := d.CreateBranch("dev", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := primary.Init("second", testColumns(), orpheusdb.InitOptions{PrimaryKey: []string{"id"}}); err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, f, primary)
	assertConverged(t, primary, f.Store())

	// The branch must have replicated too.
	fd, err := f.Store().Dataset("prot")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fd.Branch("dev"); err != nil {
		t.Fatalf("branch did not replicate: %v", err)
	}

	info := f.Info()
	if info.Role != "follower" || info.State != "streaming" {
		t.Fatalf("info = %+v, want streaming follower", info)
	}
	if info.LastError != "" {
		t.Fatalf("follower reports error: %s", info.LastError)
	}
	if info.LagRecords != 0 {
		t.Fatalf("caught-up follower reports lag %d", info.LagRecords)
	}
}

// TestFollowerReadOnly: local writes — Go API and HTTP — are rejected, HTTP
// with a 403/read_only body; reads keep working.
func TestFollowerReadOnly(t *testing.T) {
	primary, srv := newPrimary(t)
	d, _ := primary.Init("ds", testColumns(), orpheusdb.InitOptions{PrimaryKey: []string{"id"}})
	vids := commitN(t, d, 1, "x")
	f := startFollower(t, srv.URL)
	waitCaughtUp(t, f, primary)

	fd, err := f.Store().Dataset("ds")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fd.Commit([]orpheusdb.Row{{orpheusdb.Int(9), orpheusdb.String("no")}}, vids, "nope"); err == nil ||
		!strings.Contains(err.Error(), "read-only") {
		t.Fatalf("commit on follower: err=%v, want read-only", err)
	}

	fsrv := httptest.NewServer(f.Handler())
	defer fsrv.Close()
	body := bytes.NewReader([]byte(`{"rows":[[5,"no"]],"message":"nope"}`))
	resp, err := http.Post(fsrv.URL+"/api/v1/datasets/ds/commit", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("follower commit: status %d, want 403", resp.StatusCode)
	}
	var errBody struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&errBody); err != nil || errBody.Error.Code != "read_only" {
		t.Fatalf("error code = %q (decode err %v), want read_only", errBody.Error.Code, err)
	}

	// Reads still fine.
	cresp, err := http.Get(fsrv.URL + "/api/v1/datasets/ds/checkout?versions=" + fmt.Sprint(int64(vids[0])))
	if err != nil {
		t.Fatal(err)
	}
	defer cresp.Body.Close()
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("follower checkout: status %d", cresp.StatusCode)
	}
	if cresp.Header.Get("X-Orpheus-Version") == "" {
		t.Fatal("follower checkout missing ETag validator")
	}
}

// TestFollowerHealthAndMetrics: lag surfaces on /healthz and orpheus_repl_*
// families are exposed on /metrics.
func TestFollowerHealthAndMetrics(t *testing.T) {
	primary, srv := newPrimary(t)
	d, _ := primary.Init("m", testColumns(), orpheusdb.InitOptions{PrimaryKey: []string{"id"}})
	commitN(t, d, 2, "m")
	f := startFollower(t, srv.URL)
	waitCaughtUp(t, f, primary)

	fsrv := httptest.NewServer(f.Handler())
	defer fsrv.Close()

	resp, err := http.Get(fsrv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status      string                    `json:"status"`
		Replication orpheusdb.ReplicationInfo `json:"replication"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Replication.Role != "follower" {
		t.Fatalf("healthz replication = %+v, want follower role", health.Replication)
	}
	if health.Replication.AppliedLSN == 0 || health.Replication.AppliedLSN != health.Replication.PrimaryLSN {
		t.Fatalf("healthz watermarks = %+v, want equal non-zero LSNs", health.Replication)
	}

	mresp, err := http.Get(fsrv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	text, _ := io.ReadAll(mresp.Body)
	for _, want := range []string{
		"orpheus_repl_applied_lsn", "orpheus_repl_primary_lsn",
		"orpheus_repl_lag_records", "orpheus_repl_lag_seconds",
		"orpheus_repl_records_applied_total", "orpheus_repl_snapshots_total",
	} {
		if !strings.Contains(string(text), want) {
			t.Fatalf("/metrics missing %s", want)
		}
	}
}

// TestRouterRouting: reads land on the follower, writes on the primary, and
// the router's own /healthz reports the roster.
func TestRouterRouting(t *testing.T) {
	primary, srv := newPrimary(t)
	d, _ := primary.Init("r", testColumns(), orpheusdb.InitOptions{PrimaryKey: []string{"id"}})
	commitN(t, d, 2, "r")
	f := startFollower(t, srv.URL)
	waitCaughtUp(t, f, primary)
	fsrv := httptest.NewServer(f.Handler())
	defer fsrv.Close()

	rt, err := NewRouter(RouterConfig{
		Primary:        srv.URL,
		Followers:      []string{fsrv.URL},
		HealthInterval: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rsrv := httptest.NewServer(rt)
	defer rsrv.Close()

	// A read: must succeed and be counted as routed to the follower.
	resp, err := http.Get(rsrv.URL + "/api/v1/datasets/r/checkout?versions=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("routed checkout: status %d", resp.StatusCode)
	}
	if got := rt.followers[0].requests.Load(); got != 1 {
		t.Fatalf("follower served %d requests, want 1", got)
	}

	// A SELECT query: read, also follower-eligible.
	q := bytes.NewReader([]byte(`{"sql":"SELECT count(*) FROM VERSION 1 OF CVD r"}`))
	resp, err = http.Post(rsrv.URL+"/api/v1/query", "application/json", q)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("routed query: status %d", resp.StatusCode)
	}
	if got := rt.followers[0].requests.Load(); got != 2 {
		t.Fatalf("follower served %d requests, want 2", got)
	}

	// A write: must reach the primary and take effect there.
	before := d.LatestVersion()
	body := bytes.NewReader([]byte(fmt.Sprintf(`{"rows":[[77,"w"]],"parents":[%d],"message":"via router"}`, before)))
	resp, err = http.Post(rsrv.URL+"/api/v1/datasets/r/commit", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("routed commit: status %d", resp.StatusCode)
	}
	if d.LatestVersion() == before {
		t.Fatal("routed commit did not reach the primary")
	}

	hresp, err := http.Get(rsrv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var status struct {
		Role         string          `json:"role"`
		Followers    []backendStatus `json:"followers"`
		RoutedReads  uint64          `json:"routedReads"`
		RoutedWrites uint64          `json:"routedWrites"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	if status.Role != "router" || len(status.Followers) != 1 {
		t.Fatalf("router status = %+v", status)
	}
	if status.RoutedReads < 2 || status.RoutedWrites < 1 {
		t.Fatalf("routed counts = %d reads / %d writes, want >=2 / >=1", status.RoutedReads, status.RoutedWrites)
	}
}
