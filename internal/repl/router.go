package repl

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/httputil"
	"net/url"
	"strings"
	"sync/atomic"
	"time"
)

// The read router is the thin fan-out layer in front of a replication
// group: reads (checkouts, diffs, version metadata, SELECT queries) go
// round-robin across healthy followers, everything that can mutate goes to
// the primary. It proxies blindly — consistency is the follower's job (each
// serves an always-consistent applied prefix, with ETag validators minted
// per node), and the router only tracks liveness and lag.

// RouterConfig configures a Router.
type RouterConfig struct {
	// Primary is the primary's base URL; all writes proxy here.
	Primary string
	// Followers are follower base URLs; reads fan out across the healthy
	// ones (falling back to the primary when none are).
	Followers []string
	// Client is used for health polling (default: 2s-timeout client).
	Client *http.Client
	// HealthInterval is the /healthz polling cadence (default 1s).
	HealthInterval time.Duration
	// Logger, if non-nil, receives backend health transitions.
	Logger *slog.Logger
}

// backend is one proxied node with its health state.
type backend struct {
	url      string
	proxy    *httputil.ReverseProxy
	healthy  atomic.Bool
	requests atomic.Uint64
	// Follower lag from its /healthz replication block (primary: zero).
	lagRecords atomic.Uint64
	lagSecBits atomic.Uint64 // float64 bits
}

func (b *backend) setLagSeconds(v float64) { b.lagSecBits.Store(math.Float64bits(v)) }
func (b *backend) lagSeconds() float64     { return math.Float64frombits(b.lagSecBits.Load()) }

// Router fans reads across followers and proxies writes to the primary.
type Router struct {
	cfg       RouterConfig
	primary   *backend
	followers []*backend
	rr        atomic.Uint64 // round-robin cursor
	reads     atomic.Uint64
	writes    atomic.Uint64
	stop      chan struct{}
	done      chan struct{}
}

// NewRouter builds a router and starts its health-polling loop. Close stops
// it.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if cfg.Primary == "" {
		return nil, fmt.Errorf("repl: router needs a primary URL")
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 2 * time.Second}
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = time.Second
	}
	rt := &Router{cfg: cfg, stop: make(chan struct{}), done: make(chan struct{})}
	var err error
	if rt.primary, err = newBackend(cfg.Primary); err != nil {
		return nil, err
	}
	rt.primary.healthy.Store(true) // assume up until the first poll says otherwise
	for _, u := range cfg.Followers {
		b, err := newBackend(u)
		if err != nil {
			return nil, err
		}
		rt.followers = append(rt.followers, b)
	}
	rt.pollOnce()
	go rt.healthLoop()
	return rt, nil
}

func newBackend(raw string) (*backend, error) {
	u, err := url.Parse(strings.TrimRight(raw, "/"))
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("repl: bad backend URL %q", raw)
	}
	b := &backend{url: u.String(), proxy: httputil.NewSingleHostReverseProxy(u)}
	b.proxy.ErrorHandler = func(w http.ResponseWriter, r *http.Request, err error) {
		b.healthy.Store(false)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadGateway)
		_ = json.NewEncoder(w).Encode(map[string]map[string]string{
			"error": {"code": "upstream_unreachable", "message": err.Error()},
		})
	}
	return b, nil
}

// Close stops the health loop.
func (rt *Router) Close() error {
	close(rt.stop)
	<-rt.done
	return nil
}

func (rt *Router) healthLoop() {
	defer close(rt.done)
	t := time.NewTicker(rt.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-t.C:
			rt.pollOnce()
		}
	}
}

// pollOnce refreshes every backend's health. A backend is routable iff its
// /healthz answers 200 (degraded still serves consistent reads — a follower
// with a broken stream lags but never serves torn state, and its lag is
// surfaced here for operators to act on).
func (rt *Router) pollOnce() {
	for _, b := range append([]*backend{rt.primary}, rt.followers...) {
		resp, err := rt.cfg.Client.Get(b.url + "/healthz")
		if err != nil {
			rt.markHealth(b, false)
			continue
		}
		var body struct {
			Replication struct {
				LagRecords uint64  `json:"lagRecords"`
				LagSeconds float64 `json:"lagSeconds"`
			} `json:"replication"`
		}
		derr := decodeJSON(resp.Body, &body)
		resp.Body.Close()
		ok := resp.StatusCode == http.StatusOK && derr == nil
		rt.markHealth(b, ok)
		if ok {
			b.lagRecords.Store(body.Replication.LagRecords)
			b.setLagSeconds(body.Replication.LagSeconds)
		}
	}
}

func (rt *Router) markHealth(b *backend, ok bool) {
	if b.healthy.Swap(ok) != ok && rt.cfg.Logger != nil {
		rt.cfg.Logger.Info("router backend health", "url", b.url, "healthy", ok)
	}
}

// pickFollower returns the next healthy follower, or nil when reads must
// fall back to the primary.
func (rt *Router) pickFollower() *backend {
	n := len(rt.followers)
	if n == 0 {
		return nil
	}
	start := rt.rr.Add(1)
	for i := 0; i < n; i++ {
		b := rt.followers[(start+uint64(i))%uint64(n)]
		if b.healthy.Load() {
			return b
		}
	}
	return nil
}

// isRead reports whether the request may be served by a follower. GETs and
// HEADs under the dataset API are reads by construction; a POST /api/v1/query
// counts when its (single-statement) SQL starts with SELECT — the body is
// consumed for the sniff and restored for the proxy.
func isRead(r *http.Request) bool {
	switch r.Method {
	case http.MethodGet, http.MethodHead:
		return strings.HasPrefix(r.URL.Path, "/api/v1/datasets")
	case http.MethodPost:
		if r.URL.Path != "/api/v1/query" {
			return false
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
		r.Body.Close()
		r.Body = io.NopCloser(bytes.NewReader(body))
		if err != nil {
			return false
		}
		var q struct {
			SQL    string `json:"sql"`
			Script bool   `json:"script"`
		}
		if json.Unmarshal(body, &q) != nil || q.Script {
			return false
		}
		sql := strings.ToUpper(strings.TrimSpace(q.SQL))
		return strings.HasPrefix(sql, "SELECT")
	}
	return false
}

// ServeHTTP implements http.Handler. The router's own /healthz reports the
// backend roster; everything else proxies.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/healthz" && r.Method == http.MethodGet {
		rt.serveStatus(w)
		return
	}
	if isRead(r) {
		if b := rt.pickFollower(); b != nil {
			rt.reads.Add(1)
			b.requests.Add(1)
			b.proxy.ServeHTTP(w, r)
			return
		}
		rt.reads.Add(1) // primary fallback still counts as a routed read
	} else {
		rt.writes.Add(1)
	}
	rt.primary.requests.Add(1)
	rt.primary.proxy.ServeHTTP(w, r)
}

type backendStatus struct {
	URL        string  `json:"url"`
	Healthy    bool    `json:"healthy"`
	Requests   uint64  `json:"requests"`
	LagRecords uint64  `json:"lagRecords,omitempty"`
	LagSeconds float64 `json:"lagSeconds,omitempty"`
}

func (rt *Router) serveStatus(w http.ResponseWriter) {
	fs := make([]backendStatus, len(rt.followers))
	anyHealthy := rt.primary.healthy.Load()
	for i, b := range rt.followers {
		fs[i] = backendStatus{
			URL:        b.url,
			Healthy:    b.healthy.Load(),
			Requests:   b.requests.Load(),
			LagRecords: b.lagRecords.Load(),
			LagSeconds: b.lagSeconds(),
		}
		anyHealthy = anyHealthy || fs[i].Healthy
	}
	status := "ok"
	if !anyHealthy {
		status = "degraded"
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = json.NewEncoder(w).Encode(map[string]any{
		"status": status,
		"role":   "router",
		"primary": backendStatus{
			URL:      rt.primary.url,
			Healthy:  rt.primary.healthy.Load(),
			Requests: rt.primary.requests.Load(),
		},
		"followers":    fs,
		"routedReads":  rt.reads.Load(),
		"routedWrites": rt.writes.Load(),
	})
}

// decodeJSON decodes one JSON document from r.
func decodeJSON(r io.Reader, dst any) error {
	return json.NewDecoder(r).Decode(dst)
}
