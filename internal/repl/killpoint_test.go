package repl

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	orpheusdb "orpheusdb"
	"orpheusdb/internal/server"
)

// Kill-point matrix for replication, extending the PR 3/7 crash-matrix
// style to the network: the stream (or the snapshot download) is cut at
// arbitrary byte offsets and the follower must converge to the primary's
// fingerprint anyway — by failing bootstrap cleanly, resuming the stream
// from its applied watermark, or re-bootstrapping after a 410.

// cutTransport injects byte-exact response-body cuts for URLs whose path
// contains match. One-shot by default; persistent keeps cutting until
// disarmed. cuts counts bodies actually wrapped.
type cutTransport struct {
	match string

	mu         sync.Mutex
	armed      bool
	persistent bool
	offset     int64

	cuts atomic.Int64
}

func (c *cutTransport) arm(offset int64, persistent bool) {
	c.mu.Lock()
	c.armed, c.persistent, c.offset = true, persistent, offset
	c.mu.Unlock()
}

func (c *cutTransport) disarm() {
	c.mu.Lock()
	c.armed = false
	c.mu.Unlock()
}

func (c *cutTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := http.DefaultTransport.RoundTrip(req)
	if err != nil {
		return resp, err
	}
	c.mu.Lock()
	cut := c.armed && strings.Contains(req.URL.Path, c.match)
	offset := c.offset
	if cut && !c.persistent {
		c.armed = false
	}
	c.mu.Unlock()
	if cut {
		c.cuts.Add(1)
		resp.Body = &cutBody{rc: resp.Body, remain: offset}
	}
	return resp, err
}

// cutBody yields at most remain bytes, then fails like a dropped connection.
type cutBody struct {
	rc     io.ReadCloser
	remain int64
}

func (b *cutBody) Read(p []byte) (int, error) {
	if b.remain <= 0 {
		return 0, fmt.Errorf("injected connection cut")
	}
	if int64(len(p)) > b.remain {
		p = p[:b.remain]
	}
	n, err := b.rc.Read(p)
	b.remain -= int64(n)
	if b.remain <= 0 && err == nil {
		err = fmt.Errorf("injected connection cut")
	}
	return n, err
}

func (b *cutBody) Close() error { return b.rc.Close() }

// TestKillPointSnapshotBootstrap cuts the snapshot download at a matrix of
// byte offsets: each cut must fail StartFollower cleanly, and a retry with
// the cut disarmed must converge.
func TestKillPointSnapshotBootstrap(t *testing.T) {
	primary, srv := newPrimary(t)
	d, err := primary.Init("kp", testColumns(), orpheusdb.InitOptions{PrimaryKey: []string{"id"}})
	if err != nil {
		t.Fatal(err)
	}
	commitN(t, d, 6, "seed")

	// Measure the snapshot to place cuts across its whole byte range.
	resp, err := http.Get(srv.URL + "/api/v1/wal/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	full, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || len(full) == 0 {
		t.Fatalf("snapshot download: %d bytes, err %v", len(full), err)
	}
	sz := int64(len(full))

	ct := &cutTransport{match: "/wal/snapshot"}
	client := &http.Client{Transport: ct}
	for _, off := range []int64{0, 1, sz / 4, sz / 2, sz - 1} {
		ct.arm(off, false)
		if _, err := StartFollower(FollowerConfig{Primary: srv.URL, Client: client, WaitMS: 250}); err == nil {
			t.Fatalf("cut at %d/%d bytes: StartFollower succeeded, want bootstrap failure", off, sz)
		}
		ct.disarm()
		f, err := StartFollower(FollowerConfig{Primary: srv.URL, Client: client, WaitMS: 250, ReconnectDelay: 25 * time.Millisecond})
		if err != nil {
			t.Fatalf("retry after cut at %d: %v", off, err)
		}
		waitCaughtUp(t, f, primary)
		assertConverged(t, primary, f.Store())
		f.Close()
	}
}

// TestKillPointStreamTail cuts the live stream at a matrix of byte offsets
// (mid-header, mid-frame, across frame boundaries) while the primary keeps
// committing; the follower must resume from its applied watermark and
// converge after every cut.
func TestKillPointStreamTail(t *testing.T) {
	primary, srv := newPrimary(t)
	d, err := primary.Init("kp", testColumns(), orpheusdb.InitOptions{PrimaryKey: []string{"id"}})
	if err != nil {
		t.Fatal(err)
	}
	commitN(t, d, 2, "seed")

	ct := &cutTransport{match: "/wal/stream"}
	f, err := StartFollower(FollowerConfig{
		Primary:        srv.URL,
		Client:         &http.Client{Transport: ct},
		WaitMS:         100,
		ReconnectDelay: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	waitCaughtUp(t, f, primary)

	// Offsets span 0 (cut before any byte) through several frames deep;
	// frames for these commits are ~100-200 bytes, so the matrix hits
	// mid-header, mid-body, and boundary positions.
	for i, off := range []int64{0, 1, 5, 13, 27, 55, 111, 200, 350} {
		before := ct.cuts.Load()
		ct.arm(off, true)
		commitN(t, d, 3, fmt.Sprintf("cut%d", i))
		waitFor(t, 10*time.Second, fmt.Sprintf("a cut at offset %d to trigger", off), func() bool {
			return ct.cuts.Load() > before
		})
		ct.disarm()
		waitCaughtUp(t, f, primary)
		assertConverged(t, primary, f.Store())
	}
	if f.Info().Reconnects == 0 {
		t.Fatal("stream was never cut hard enough to reconnect")
	}
}

// TestKillPointRebootstrapAfterTruncate starves a follower while the
// primary checkpoints past its position: the stream answers 410 and the
// follower must transparently re-bootstrap from a fresh snapshot.
func TestKillPointRebootstrapAfterTruncate(t *testing.T) {
	dir := t.TempDir()
	primary, err := orpheusdb.OpenStore(filepath.Join(dir, "primary.odb"))
	if err != nil {
		t.Fatal(err)
	}
	// Tiny segments so a checkpoint actually truncates history away.
	if err := primary.EnableWAL(orpheusdb.WALConfig{
		Dir:          filepath.Join(dir, "wal"),
		Policy:       orpheusdb.FsyncOff,
		SegmentBytes: 256,
	}); err != nil {
		t.Fatal(err)
	}
	defer primary.CloseWAL()
	srv := httptest.NewServer(server.New(primary, nil))
	defer srv.Close()

	d, err := primary.Init("kp", testColumns(), orpheusdb.InitOptions{PrimaryKey: []string{"id"}})
	if err != nil {
		t.Fatal(err)
	}
	commitN(t, d, 3, "seed")

	ct := &cutTransport{match: "/wal/stream"}
	f, err := StartFollower(FollowerConfig{
		Primary:        srv.URL,
		Client:         &http.Client{Transport: ct},
		WaitMS:         100,
		ReconnectDelay: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	waitCaughtUp(t, f, primary)

	// Starve the stream completely (waiting for the in-flight window to
	// expire so the cut actually bites), push history past the follower,
	// and checkpoint so the records it needs are gone.
	ct.arm(0, true)
	before := ct.cuts.Load()
	waitFor(t, 10*time.Second, "the stream to be starved", func() bool {
		return ct.cuts.Load() > before
	})
	commitN(t, d, 10, "ahead")
	if err := primary.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	ct.disarm()

	waitFor(t, 10*time.Second, "a re-bootstrap", func() bool { return f.snapshots.Load() >= 2 })
	waitCaughtUp(t, f, primary)
	assertConverged(t, primary, f.Store())
}
