// Package repl implements WAL-shipping replication: a Follower bootstraps a
// read-only Store from a primary's snapshot, tails its WAL stream, and
// applies each record through the store's crash-recovery replay path (with
// its version-id and membership-bitmap divergence verification); a Router
// fans reads across healthy followers while proxying writes to the primary.
//
// The follower state machine is snapshot-then-tail:
//
//	bootstrapping --> streaming <--> disconnected
//	                      |
//	                   promoted        (explicit, drains first)
//
// Records arrive in the WAL's on-disk frame format (wal.ReadFrameFrom) in
// dense LSN order; a 410 from the stream endpoint means the primary
// checkpointed past the follower's position, and the follower transparently
// re-bootstraps from a fresh snapshot, swapping in a whole new Store (reads
// see either the old consistent state or the new one, never a mix).
package repl

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	orpheusdb "orpheusdb"
	"orpheusdb/internal/engine"
	"orpheusdb/internal/server"
	"orpheusdb/internal/wal"
)

// errGone reports that the primary no longer retains the records the
// follower needs: re-bootstrap from a snapshot.
var errGone = errors.New("repl: primary truncated past our position")

// FollowerConfig configures a Follower.
type FollowerConfig struct {
	// Primary is the primary's base URL (e.g. "http://127.0.0.1:7400").
	Primary string
	// Client is the HTTP client used for snapshot and stream requests.
	// Streaming requests long-poll, so its Timeout must be zero (the
	// default client is fine).
	Client *http.Client
	// ReconnectDelay is the back-off after a failed stream attempt
	// (default 500ms; reconnection after a clean window end is immediate).
	ReconnectDelay time.Duration
	// WaitMS overrides the stream's long-poll window (0 = server default).
	// Tests use small values to keep reconnect cycles fast.
	WaitMS int
	// PromoteWALDir, when set, is attached as the store's WAL on promotion,
	// so the promoted node is durable and can itself ship its log to new
	// followers. Without it a promoted node accepts writes memory-only.
	PromoteWALDir string
	// Logger, if non-nil, receives state transitions and the follower's
	// HTTP access log.
	Logger *slog.Logger
}

// replica is one bootstrapped generation of the follower: a store plus the
// HTTP server built around it. Re-bootstrapping swaps the whole pair, since
// a server registers its metrics on its store's registry exactly once.
type replica struct {
	store   *orpheusdb.Store
	handler http.Handler
}

// Follower replicates a primary into a local read-only Store and serves it.
// It implements orpheusdb.Replication, so the follower's own /healthz shows
// role, state, and lag, and POST /api/v1/promote flips it writable.
type Follower struct {
	cfg FollowerConfig

	// cur is the live replica; swapped atomically on re-bootstrap.
	cur atomic.Pointer[replica]

	mu       sync.Mutex
	state    string
	lastErr  string
	promoted bool
	verified bool
	cancel   context.CancelFunc
	done     chan struct{}

	primaryLSN     atomic.Uint64
	recordsApplied atomic.Uint64
	bytesApplied   atomic.Uint64
	reconnects     atomic.Uint64
	snapshots      atomic.Uint64
	// lastCaughtUp is when the applied watermark last reached the
	// primary's; lag_seconds measures from here while behind.
	lastCaughtUp atomic.Int64
}

// StartFollower bootstraps from the primary (synchronously — when it
// returns, the follower serves a consistent snapshot) and starts the tail
// loop. Stop with Close, or flip writable with Promote.
func StartFollower(cfg FollowerConfig) (*Follower, error) {
	if cfg.Primary == "" {
		return nil, fmt.Errorf("repl: follower needs a primary URL")
	}
	cfg.Primary = strings.TrimRight(cfg.Primary, "/")
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	if cfg.ReconnectDelay <= 0 {
		cfg.ReconnectDelay = 500 * time.Millisecond
	}
	f := &Follower{cfg: cfg, state: "bootstrapping"}
	f.lastCaughtUp.Store(time.Now().UnixNano())
	if err := f.bootstrap(); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	f.cancel = cancel
	f.done = make(chan struct{})
	go f.run(ctx)
	return f, nil
}

// Store returns the follower's current store (read-only until promotion).
// The pointer changes on re-bootstrap; callers needing a consistent view
// across calls should grab it once.
func (f *Follower) Store() *orpheusdb.Store { return f.cur.Load().store }

// Handler returns a stable handler that always serves the current replica,
// surviving re-bootstrap swaps.
func (f *Follower) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f.cur.Load().handler.ServeHTTP(w, r)
	})
}

// bootstrap fetches a snapshot and swaps in a fresh replica built from it.
func (f *Follower) bootstrap() error {
	f.setState("bootstrapping")
	resp, err := f.cfg.Client.Get(f.cfg.Primary + "/api/v1/wal/snapshot")
	if err != nil {
		return fmt.Errorf("repl: snapshot: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("repl: snapshot: primary answered %s", resp.Status)
	}
	snap, err := engine.DecodeSnapshot(resp.Body)
	if err != nil {
		return fmt.Errorf("repl: snapshot: %w", err)
	}
	st, err := orpheusdb.NewStoreFromSnapshot(snap)
	if err != nil {
		return fmt.Errorf("repl: snapshot: %w", err)
	}
	st.SetReadOnly(true)
	st.SetReplication(f)
	f.registerMetrics(st)
	h := server.New(st, f.cfg.Logger)
	f.cur.Store(&replica{store: st, handler: h})
	f.snapshots.Add(1)
	f.updatePrimaryLSN(snap.WalLSN)
	if f.cfg.Logger != nil {
		f.cfg.Logger.Info("repl bootstrap", "primary", f.cfg.Primary, "lsn", snap.WalLSN)
	}
	return nil
}

// registerMetrics exports the follower's progress on the (new) store's
// registry. Re-bootstrap builds a fresh registry, so follower-local HTTP
// metrics reset with it; the counters below read shared atomics and survive.
func (f *Follower) registerMetrics(st *orpheusdb.Store) {
	reg := st.Metrics()
	reg.GaugeFunc("orpheus_repl_applied_lsn",
		"Last WAL record applied from the primary.",
		func() float64 { return float64(st.WALStatus().AppliedLSN) })
	reg.GaugeFunc("orpheus_repl_primary_lsn",
		"Primary's latest known WAL LSN.",
		func() float64 { return float64(f.primaryLSN.Load()) })
	reg.GaugeFunc("orpheus_repl_lag_records",
		"Records the follower is behind the primary.",
		func() float64 { return float64(f.Info().LagRecords) })
	reg.GaugeFunc("orpheus_repl_lag_seconds",
		"Seconds since the follower was last caught up with the primary.",
		func() float64 { return f.Info().LagSeconds })
	reg.CounterFunc("orpheus_repl_records_applied_total",
		"WAL records applied from the primary's stream.",
		func() float64 { return float64(f.recordsApplied.Load()) })
	reg.CounterFunc("orpheus_repl_bytes_applied_total",
		"WAL frame bytes applied from the primary's stream.",
		func() float64 { return float64(f.bytesApplied.Load()) })
	reg.CounterFunc("orpheus_repl_reconnects_total",
		"Stream reconnections (clean window ends included).",
		func() float64 { return float64(f.reconnects.Load()) })
	reg.CounterFunc("orpheus_repl_snapshots_total",
		"Bootstrap snapshots downloaded (>1 means re-bootstraps).",
		func() float64 { return float64(f.snapshots.Load()) })
}

// run is the tail loop: stream, apply, reconnect; re-bootstrap on 410.
func (f *Follower) run(ctx context.Context) {
	defer close(f.done)
	for ctx.Err() == nil {
		err := f.streamOnce(ctx)
		if ctx.Err() != nil {
			return
		}
		switch {
		case errors.Is(err, errGone):
			f.setError(err)
			if berr := f.bootstrap(); berr != nil {
				f.setError(berr)
				f.sleep(ctx, f.cfg.ReconnectDelay)
			}
		case err != nil:
			f.setError(err)
			f.setState("disconnected")
			f.sleep(ctx, f.cfg.ReconnectDelay)
		default:
			// Clean window end: reconnect immediately.
		}
		f.reconnects.Add(1)
	}
}

func (f *Follower) sleep(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// streamOnce runs one stream request to completion: connect at the applied
// watermark, apply every frame, return on window end (nil), stream error, or
// errGone (410).
func (f *Follower) streamOnce(ctx context.Context) error {
	st := f.Store()
	from := st.WALStatus().AppliedLSN
	url := f.cfg.Primary + "/api/v1/wal/stream?from_lsn=" + strconv.FormatUint(from, 10)
	if f.cfg.WaitMS > 0 {
		url += "&wait_ms=" + strconv.Itoa(f.cfg.WaitMS)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := f.cfg.Client.Do(req)
	if err != nil {
		return fmt.Errorf("repl: stream: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusGone {
		return errGone
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("repl: stream: primary answered %s", resp.Status)
	}
	if raw := resp.Header.Get("X-Orpheus-WAL-Next-LSN"); raw != "" {
		if n, perr := strconv.ParseUint(raw, 10, 64); perr == nil {
			f.updatePrimaryLSN(n)
		}
	}
	f.setState("streaming")
	f.clearError()
	f.checkCaughtUp(st)
	for {
		lsn, rec, n, err := wal.ReadFrameFrom(resp.Body)
		if err == io.EOF {
			return nil // clean window end
		}
		if err != nil {
			return fmt.Errorf("repl: stream: %w", err)
		}
		if err := st.ApplyReplicated(lsn, rec); err != nil {
			if strings.Contains(err.Error(), "gap") {
				// We missed records (e.g. a re-bootstrap raced a stream):
				// a fresh snapshot resolves it.
				return errGone
			}
			return err
		}
		f.recordsApplied.Add(1)
		f.bytesApplied.Add(uint64(n))
		f.updatePrimaryLSN(lsn)
		f.checkCaughtUp(st)
	}
}

// checkCaughtUp refreshes the caught-up timestamp and, on the first catch-up
// after bootstrap, runs the membership-divergence verification against the
// primary.
func (f *Follower) checkCaughtUp(st *orpheusdb.Store) {
	if st.WALStatus().AppliedLSN < f.primaryLSN.Load() {
		return
	}
	f.lastCaughtUp.Store(time.Now().UnixNano())
	f.mu.Lock()
	need := !f.verified
	f.verified = true
	f.mu.Unlock()
	if need {
		if err := f.Verify(); err != nil {
			f.setError(err)
		}
	}
}

// Verify cross-checks the follower against the primary: every dataset the
// primary lists must exist locally with the identical version list. Each
// applied commit already verified its version id and membership bitmap
// record-by-record (the store's replay divergence checks), so this is the
// catalog-level complement run after catch-up.
func (f *Follower) Verify() error {
	resp, err := f.cfg.Client.Get(f.cfg.Primary + "/api/v1/datasets")
	if err != nil {
		return fmt.Errorf("repl: verify: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("repl: verify: primary answered %s", resp.Status)
	}
	var body struct {
		Datasets []struct {
			Name     string  `json:"name"`
			Versions []int64 `json:"versions"`
		} `json:"datasets"`
	}
	if err := decodeJSON(resp.Body, &body); err != nil {
		return fmt.Errorf("repl: verify: %w", err)
	}
	st := f.Store()
	for _, ds := range body.Datasets {
		d, err := st.Dataset(ds.Name)
		if err != nil {
			return fmt.Errorf("repl: verify: dataset %q missing locally: %w", ds.Name, err)
		}
		local := d.Versions()
		if len(local) != len(ds.Versions) {
			return fmt.Errorf("repl: verify: dataset %q has %d local versions, primary has %d",
				ds.Name, len(local), len(ds.Versions))
		}
		for i, v := range local {
			if int64(v) != ds.Versions[i] {
				return fmt.Errorf("repl: verify: dataset %q version %d is %d locally, %d on primary",
					ds.Name, i, v, ds.Versions[i])
			}
		}
	}
	return nil
}

// Info implements orpheusdb.Replication.
func (f *Follower) Info() orpheusdb.ReplicationInfo {
	st := f.Store()
	applied := st.WALStatus().AppliedLSN
	primary := f.primaryLSN.Load()
	if primary < applied {
		primary = applied
	}
	f.mu.Lock()
	state, lastErr, promoted := f.state, f.lastErr, f.promoted
	f.mu.Unlock()
	info := orpheusdb.ReplicationInfo{
		Role:       "follower",
		Primary:    f.cfg.Primary,
		State:      state,
		AppliedLSN: applied,
		PrimaryLSN: primary,
		LagRecords: primary - applied,
		Reconnects: f.reconnects.Load(),
		Snapshots:  f.snapshots.Load(),
		LastError:  lastErr,
	}
	if promoted {
		info.Role = "promoted"
	}
	if info.LagRecords > 0 && state != "promoted" {
		info.LagSeconds = time.Since(time.Unix(0, f.lastCaughtUp.Load())).Seconds()
	}
	return info
}

// Promote implements orpheusdb.Replication: stop tailing, drain whatever the
// primary still has (best-effort — the primary may be dead, which is the
// point of failover), optionally attach a WAL, and flip the store writable.
// Idempotent; concurrent callers all observe the flip.
func (f *Follower) Promote() error {
	f.mu.Lock()
	if f.promoted {
		f.mu.Unlock()
		return nil
	}
	f.promoted = true
	cancel := f.cancel
	f.mu.Unlock()
	cancel()
	<-f.done
	st := f.Store()
	// Final drain: short take-what's-there requests until no progress. A
	// dead primary fails the first request and we promote with what we have.
	for i := 0; i < 32; i++ {
		if n, err := f.drainOnce(st); err != nil || n == 0 {
			break
		}
	}
	if f.cfg.PromoteWALDir != "" {
		if err := st.EnableWAL(orpheusdb.WALConfig{Dir: f.cfg.PromoteWALDir}); err != nil {
			f.setError(err)
		}
	}
	st.SetReadOnly(false)
	f.setState("promoted")
	f.clearError()
	if f.cfg.Logger != nil {
		f.cfg.Logger.Info("repl promoted", "appliedLSN", st.WALStatus().AppliedLSN)
	}
	return nil
}

// drainOnce fetches one wait_ms=0 stream window and applies it, returning
// the number of records applied.
func (f *Follower) drainOnce(st *orpheusdb.Store) (int, error) {
	from := st.WALStatus().AppliedLSN
	client := &http.Client{Timeout: 2 * time.Second}
	resp, err := client.Get(f.cfg.Primary + "/api/v1/wal/stream?from_lsn=" +
		strconv.FormatUint(from, 10) + "&wait_ms=0")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("repl: drain: primary answered %s", resp.Status)
	}
	applied := 0
	for {
		lsn, rec, n, err := wal.ReadFrameFrom(resp.Body)
		if err != nil {
			return applied, nil // EOF or a cut frame: take what we got
		}
		if aerr := st.ApplyReplicated(lsn, rec); aerr != nil {
			return applied, aerr
		}
		f.recordsApplied.Add(1)
		f.bytesApplied.Add(uint64(n))
		f.updatePrimaryLSN(lsn)
		applied++
	}
}

// Close stops the tail loop without promoting. The store stays read-only and
// keeps serving its last applied state.
func (f *Follower) Close() error {
	f.mu.Lock()
	cancel := f.cancel
	f.mu.Unlock()
	cancel()
	<-f.done
	return nil
}

func (f *Follower) updatePrimaryLSN(lsn uint64) {
	for {
		cur := f.primaryLSN.Load()
		if lsn <= cur || f.primaryLSN.CompareAndSwap(cur, lsn) {
			return
		}
	}
}

func (f *Follower) setState(state string) {
	f.mu.Lock()
	changed := f.state != state
	f.state = state
	f.mu.Unlock()
	if changed && f.cfg.Logger != nil {
		f.cfg.Logger.Info("repl state", "state", state)
	}
}

func (f *Follower) setError(err error) {
	f.mu.Lock()
	f.lastErr = err.Error()
	f.mu.Unlock()
}

func (f *Follower) clearError() {
	f.mu.Lock()
	f.lastErr = ""
	f.mu.Unlock()
}
