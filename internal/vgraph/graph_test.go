package vgraph

import (
	"math/rand"
	"reflect"
	"testing"
)

// diamond builds v1 -> {v2, v3} -> v4 with the paper's Figure 4 weights.
func diamond(t *testing.T) *Graph {
	t.Helper()
	g := New()
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(g.AddVersion(1, nil, 3, nil))
	must(g.AddVersion(2, []VersionID{1}, 3, []int64{2}))
	must(g.AddVersion(3, []VersionID{1}, 4, []int64{1}))
	must(g.AddVersion(4, []VersionID{2, 3}, 6, []int64{3, 4}))
	return g
}

func TestGraphBasics(t *testing.T) {
	g := diamond(t)
	if g.Len() != 4 {
		t.Fatalf("Len = %d", g.Len())
	}
	if !g.Has(3) || g.Has(9) {
		t.Fatal("Has wrong")
	}
	if g.Weight(1, 2) != 2 || g.Weight(2, 4) != 3 || g.Weight(9, 9) != 0 {
		t.Fatal("weights wrong")
	}
	n := g.Node(4)
	if n.Level != 3 || n.NumRecs != 6 {
		t.Fatalf("node 4: %+v", n)
	}
	if got := g.Roots(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Roots = %v", got)
	}
	if got := g.Leaves(); len(got) != 1 || got[0] != 4 {
		t.Fatalf("Leaves = %v", got)
	}
	if g.IsTree() {
		t.Fatal("diamond is not a tree")
	}
}

func TestGraphValidation(t *testing.T) {
	g := New()
	if err := g.AddVersion(1, nil, 1, nil); err != nil {
		t.Fatal(err)
	}
	if err := g.AddVersion(1, nil, 1, nil); err == nil {
		t.Fatal("duplicate version accepted")
	}
	if err := g.AddVersion(2, []VersionID{9}, 1, []int64{1}); err == nil {
		t.Fatal("unknown parent accepted")
	}
	if err := g.AddVersion(2, []VersionID{1}, 1, nil); err == nil {
		t.Fatal("weights/parents mismatch accepted")
	}
}

func TestAncestorsDescendants(t *testing.T) {
	g := diamond(t)
	if got := g.Ancestors(4); !reflect.DeepEqual(got, []VersionID{1, 2, 3}) {
		t.Fatalf("Ancestors(4) = %v", got)
	}
	if got := g.Descendants(1); !reflect.DeepEqual(got, []VersionID{2, 3, 4}) {
		t.Fatalf("Descendants(1) = %v", got)
	}
	if got := g.Ancestors(1); len(got) != 0 {
		t.Fatalf("Ancestors(1) = %v", got)
	}
	if got := g.Descendants(4); len(got) != 0 {
		t.Fatalf("Descendants(4) = %v", got)
	}
}

func TestToTreeKeepsMaxWeightEdge(t *testing.T) {
	g := diamond(t)
	tree := g.ToTree()
	// v4's parents have weights 3 (from v2) and 4 (from v3): keep v3.
	if tree.Parent[4] != 3 {
		t.Fatalf("Parent[4] = %d, want 3", tree.Parent[4])
	}
	if tree.Parent[2] != 1 || tree.Parent[3] != 1 {
		t.Fatal("chain parents wrong")
	}
	if got := tree.Roots(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("tree roots = %v", got)
	}
	if got := tree.Children(1); !reflect.DeepEqual(got, []VersionID{2, 3}) {
		t.Fatalf("children(1) = %v", got)
	}
	if got := tree.Children(3); !reflect.DeepEqual(got, []VersionID{4}) {
		t.Fatalf("children(3) = %v", got)
	}
	if got := tree.Children(2); len(got) != 0 {
		t.Fatalf("children(2) = %v", got)
	}
}

func TestDupRecordsMatchesPaperExample(t *testing.T) {
	// Figure 17: v4 = {r2,r3,r4,r5,r6,r7}; v2 = {r2,r3,r4}; v3 = {r3,r5,r6,r7}.
	// Tree keeps v3 -> v4, so r2 and r4 (shared only with v2) duplicate: |R̂| = 2.
	b := NewBipartite()
	b.AddVersion(1, []RecordID{1, 2, 3})
	b.AddVersion(2, []RecordID{2, 3, 4})
	b.AddVersion(3, []RecordID{3, 5, 6, 7})
	b.AddVersion(4, []RecordID{2, 3, 4, 5, 6, 7})
	g, err := b.Graph(map[VersionID][]VersionID{
		1: nil, 2: {1}, 3: {1}, 4: {2, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	tree := g.ToTree()
	if tree.Parent[4] != 3 {
		t.Fatalf("kept parent = %d, want 3 (weight 4 vs 3)", tree.Parent[4])
	}
	if dup := tree.DupRecords(b); dup != 2 {
		t.Fatalf("|R̂| = %d, want 2", dup)
	}
}

func TestDupRecordsZeroForTrees(t *testing.T) {
	b := NewBipartite()
	b.AddVersion(1, []RecordID{1, 2})
	b.AddVersion(2, []RecordID{1, 2, 3})
	g, err := b.Graph(map[VersionID][]VersionID{1: nil, 2: {1}})
	if err != nil {
		t.Fatal(err)
	}
	if dup := g.ToTree().DupRecords(b); dup != 0 {
		t.Fatalf("tree |R̂| = %d", dup)
	}
}

func TestLevelsOnRandomDAG(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := New()
	if err := g.AddVersion(1, nil, 1, nil); err != nil {
		t.Fatal(err)
	}
	for v := VersionID(2); v <= 200; v++ {
		p := VersionID(rng.Intn(int(v-1))) + 1
		if err := g.AddVersion(v, []VersionID{p}, 1, []int64{1}); err != nil {
			t.Fatal(err)
		}
	}
	for _, v := range g.Versions() {
		n := g.Node(v)
		for _, p := range n.Parents {
			if g.Node(p).Level >= n.Level {
				t.Fatalf("level invariant broken at %d", v)
			}
		}
	}
}
