package vgraph

import (
	"sort"

	"orpheusdb/internal/bitmap"
)

// Bipartite is the version-record bipartite graph G = (V, R, E) of Section
// 4.1: for every version the set of record IDs it contains. It is exactly the
// information the split-by-rlist versioning table stores. Membership is held
// as compressed bitmaps, so the aggregate queries the partition optimizer
// hammers (intersection sizes for edge weights, unions for partition record
// sets) are chunked set algebra rather than list merges.
type Bipartite struct {
	sets  map[VersionID]*bitmap.Bitmap
	lists map[VersionID][]RecordID // lazily materialized Records() views
	order []VersionID
	edges int64
	all   *bitmap.Bitmap // union of every version's records
}

// NewBipartite returns an empty bipartite graph.
func NewBipartite() *Bipartite {
	return &Bipartite{
		sets:  make(map[VersionID]*bitmap.Bitmap),
		lists: make(map[VersionID][]RecordID),
		all:   bitmap.New(),
	}
}

// AddVersion registers version v with its record list.
func (b *Bipartite) AddVersion(v VersionID, rids []RecordID) {
	vals := make([]int64, len(rids))
	for i, r := range rids {
		vals[i] = int64(r)
	}
	b.AddVersionSet(v, bitmap.FromSlice(vals))
}

// AddVersionSet registers version v with its membership set. The bitmap is
// retained and must not be mutated afterwards.
func (b *Bipartite) AddVersionSet(v VersionID, set *bitmap.Bitmap) {
	if set == nil {
		set = bitmap.New()
	}
	if old, ok := b.sets[v]; ok {
		b.edges -= old.Cardinality()
		delete(b.lists, v)
	} else {
		b.order = append(b.order, v)
	}
	b.sets[v] = set
	b.edges += set.Cardinality()
	b.all.OrInPlace(set)
}

// Set returns the membership bitmap of v (nil-safe empty set for unknown
// versions). Callers must not mutate it.
func (b *Bipartite) Set(v VersionID) *bitmap.Bitmap {
	if s, ok := b.sets[v]; ok {
		return s
	}
	return nil
}

// Records returns the sorted record list of v. The slice is cached; callers
// must not modify it.
func (b *Bipartite) Records(v VersionID) []RecordID {
	if l, ok := b.lists[v]; ok {
		return l
	}
	s, ok := b.sets[v]
	if !ok {
		return nil
	}
	l := make([]RecordID, 0, s.Cardinality())
	s.Iterate(func(r int64) bool {
		l = append(l, RecordID(r))
		return true
	})
	b.lists[v] = l
	return l
}

// Versions returns versions in insertion order.
func (b *Bipartite) Versions() []VersionID { return b.order }

// NumVersions returns |V|.
func (b *Bipartite) NumVersions() int { return len(b.order) }

// NumRecords returns |R|, the number of distinct records.
func (b *Bipartite) NumRecords() int64 { return b.all.Cardinality() }

// NumEdges returns |E|.
func (b *Bipartite) NumEdges() int64 { return b.edges }

// CommonRecords counts the records shared by versions x and y.
func (b *Bipartite) CommonRecords(x, y VersionID) int64 {
	return b.sets[x].AndCardinality(b.sets[y])
}

// UnionSet returns the union of the given versions' membership sets.
func (b *Bipartite) UnionSet(vs []VersionID) *bitmap.Bitmap {
	out := bitmap.New()
	for _, v := range vs {
		out.OrInPlace(b.sets[v])
	}
	return out
}

// UnionSize counts distinct records across the given versions.
func (b *Bipartite) UnionSize(vs []VersionID) int64 {
	return b.UnionSet(vs).Cardinality()
}

// Union returns the sorted distinct records across the given versions.
func (b *Bipartite) Union(vs []VersionID) []RecordID {
	set := b.UnionSet(vs)
	out := make([]RecordID, 0, set.Cardinality())
	set.Iterate(func(r int64) bool {
		out = append(out, RecordID(r))
		return true
	})
	return out
}

// IntersectSize counts common elements of two sorted RecordID slices. Kept
// for callers that work with materialized lists; set-holding code should use
// CommonRecords / bitmap.AndCardinality.
func IntersectSize(a, b []RecordID) int64 {
	var n int64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// SortRecordIDs sorts a RecordID slice ascending (IntersectSize requires
// sorted inputs).
func SortRecordIDs(rs []RecordID) {
	sort.Slice(rs, func(i, j int) bool { return rs[i] < rs[j] })
}

// Graph derives the version graph implied by the bipartite structure and an
// explicit parent relation: edge weights are the record intersections.
// parents[v] lists v's parents (commit order respected).
func (b *Bipartite) Graph(parents map[VersionID][]VersionID) (*Graph, error) {
	g := New()
	for _, v := range b.order {
		ps := parents[v]
		ws := make([]int64, len(ps))
		for i, p := range ps {
			ws[i] = b.CommonRecords(p, v)
		}
		if err := g.AddVersion(v, ps, b.sets[v].Cardinality(), ws); err != nil {
			return nil, err
		}
	}
	return g, nil
}
