package vgraph

import "sort"

// Bipartite is the version-record bipartite graph G = (V, R, E) of Section
// 4.1: for every version the sorted list of record IDs it contains. It is
// exactly the information the split-by-rlist versioning table stores.
type Bipartite struct {
	recs  map[VersionID][]RecordID
	order []VersionID
	edges int64
	rset  map[RecordID]struct{}
}

// NewBipartite returns an empty bipartite graph.
func NewBipartite() *Bipartite {
	return &Bipartite{
		recs: make(map[VersionID][]RecordID),
		rset: make(map[RecordID]struct{}),
	}
}

// AddVersion registers version v with its record list. The slice is sorted in
// place and retained.
func (b *Bipartite) AddVersion(v VersionID, rids []RecordID) {
	sort.Slice(rids, func(i, j int) bool { return rids[i] < rids[j] })
	if _, ok := b.recs[v]; !ok {
		b.order = append(b.order, v)
	} else {
		b.edges -= int64(len(b.recs[v]))
	}
	b.recs[v] = rids
	b.edges += int64(len(rids))
	for _, r := range rids {
		b.rset[r] = struct{}{}
	}
}

// Records returns the sorted record list of v. Callers must not modify it.
func (b *Bipartite) Records(v VersionID) []RecordID { return b.recs[v] }

// Versions returns versions in insertion order.
func (b *Bipartite) Versions() []VersionID { return b.order }

// NumVersions returns |V|.
func (b *Bipartite) NumVersions() int { return len(b.order) }

// NumRecords returns |R|, the number of distinct records.
func (b *Bipartite) NumRecords() int64 { return int64(len(b.rset)) }

// NumEdges returns |E|.
func (b *Bipartite) NumEdges() int64 { return b.edges }

// CommonRecords counts the records shared by versions a and b by merging
// their sorted lists.
func (b *Bipartite) CommonRecords(x, y VersionID) int64 {
	return IntersectSize(b.recs[x], b.recs[y])
}

// UnionSize counts distinct records across the given versions.
func (b *Bipartite) UnionSize(vs []VersionID) int64 {
	seen := make(map[RecordID]struct{})
	for _, v := range vs {
		for _, r := range b.recs[v] {
			seen[r] = struct{}{}
		}
	}
	return int64(len(seen))
}

// Union returns the sorted distinct records across the given versions.
func (b *Bipartite) Union(vs []VersionID) []RecordID {
	seen := make(map[RecordID]struct{})
	for _, v := range vs {
		for _, r := range b.recs[v] {
			seen[r] = struct{}{}
		}
	}
	out := make([]RecordID, 0, len(seen))
	for r := range seen {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IntersectSize counts common elements of two sorted RecordID slices.
func IntersectSize(a, b []RecordID) int64 {
	var n int64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// Graph derives the version graph implied by the bipartite structure and an
// explicit parent relation: edge weights are the record intersections.
// parents[v] lists v's parents (commit order respected).
func (b *Bipartite) Graph(parents map[VersionID][]VersionID) (*Graph, error) {
	g := New()
	for _, v := range b.order {
		ps := parents[v]
		ws := make([]int64, len(ps))
		for i, p := range ps {
			ws[i] = b.CommonRecords(p, v)
		}
		if err := g.AddVersion(v, ps, int64(len(b.recs[v])), ws); err != nil {
			return nil, err
		}
	}
	return g, nil
}
