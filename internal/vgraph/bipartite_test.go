package vgraph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBipartiteBasics(t *testing.T) {
	b := NewBipartite()
	b.AddVersion(1, []RecordID{3, 1, 2}) // unsorted on purpose
	b.AddVersion(2, []RecordID{2, 3, 4})
	if b.NumVersions() != 2 {
		t.Fatalf("NumVersions = %d", b.NumVersions())
	}
	if b.NumRecords() != 4 {
		t.Fatalf("NumRecords = %d", b.NumRecords())
	}
	if b.NumEdges() != 6 {
		t.Fatalf("NumEdges = %d", b.NumEdges())
	}
	recs := b.Records(1)
	for i := 1; i < len(recs); i++ {
		if recs[i-1] >= recs[i] {
			t.Fatal("records not sorted")
		}
	}
	if got := b.CommonRecords(1, 2); got != 2 {
		t.Fatalf("CommonRecords = %d", got)
	}
	if got := b.UnionSize([]VersionID{1, 2}); got != 4 {
		t.Fatalf("UnionSize = %d", got)
	}
	u := b.Union([]VersionID{1, 2})
	if len(u) != 4 || u[0] != 1 || u[3] != 4 {
		t.Fatalf("Union = %v", u)
	}
}

func TestBipartiteReplaceVersion(t *testing.T) {
	b := NewBipartite()
	b.AddVersion(1, []RecordID{1, 2})
	b.AddVersion(1, []RecordID{1, 2, 3})
	if b.NumVersions() != 1 {
		t.Fatalf("NumVersions = %d after replace", b.NumVersions())
	}
	if b.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d after replace", b.NumEdges())
	}
}

func TestIntersectSizeQuick(t *testing.T) {
	// Property: IntersectSize on sorted deduplicated slices equals the map-
	// based set intersection size.
	f := func(a, b []uint8) bool {
		sa := dedupSorted(a)
		sb := dedupSorted(b)
		set := make(map[RecordID]bool, len(sa))
		for _, x := range sa {
			set[x] = true
		}
		var want int64
		for _, x := range sb {
			if set[x] {
				want++
			}
		}
		return IntersectSize(sa, sb) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func dedupSorted(xs []uint8) []RecordID {
	seen := make(map[RecordID]bool)
	var out []RecordID
	for _, x := range xs {
		r := RecordID(x)
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func TestBipartiteGraphWeights(t *testing.T) {
	b := NewBipartite()
	b.AddVersion(1, []RecordID{1, 2, 3})
	b.AddVersion(2, []RecordID{2, 3, 4, 5})
	g, err := b.Graph(map[VersionID][]VersionID{1: nil, 2: {1}})
	if err != nil {
		t.Fatal(err)
	}
	if g.Weight(1, 2) != 2 {
		t.Fatalf("weight = %d", g.Weight(1, 2))
	}
	if g.Node(2).NumRecs != 4 {
		t.Fatalf("NumRecs = %d", g.Node(2).NumRecs)
	}
}

func TestBipartiteGraphUnknownParent(t *testing.T) {
	b := NewBipartite()
	b.AddVersion(1, []RecordID{1})
	if _, err := b.Graph(map[VersionID][]VersionID{1: {99}}); err == nil {
		t.Fatal("unknown parent accepted")
	}
}

func TestUnionSizeMatchesUnionLen(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	b := NewBipartite()
	var vids []VersionID
	for v := VersionID(1); v <= 20; v++ {
		n := 1 + rng.Intn(50)
		recs := make([]RecordID, n)
		for i := range recs {
			recs[i] = RecordID(rng.Intn(100))
		}
		b.AddVersion(v, dedupRecords(recs))
		vids = append(vids, v)
	}
	for trial := 0; trial < 20; trial++ {
		k := 1 + rng.Intn(len(vids))
		sub := make([]VersionID, k)
		for i := range sub {
			sub[i] = vids[rng.Intn(len(vids))]
		}
		if int64(len(b.Union(sub))) != b.UnionSize(sub) {
			t.Fatal("Union and UnionSize disagree")
		}
	}
}

func dedupRecords(rs []RecordID) []RecordID {
	seen := make(map[RecordID]bool)
	var out []RecordID
	for _, r := range rs {
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	return out
}
