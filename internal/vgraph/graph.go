// Package vgraph models version graphs and version-record bipartite graphs:
// the two structures Section 4 of the OrpheusDB paper optimizes over. A
// version graph is a DAG whose nodes are versions and whose edges carry the
// number of records shared between parent and child; the bipartite graph
// records which version contains which records.
package vgraph

import (
	"fmt"
	"sort"
)

// VersionID identifies a version within a CVD. IDs are dense and start at 1;
// 0 is the invalid/root-parent sentinel.
type VersionID int

// RecordID identifies an immutable record within a CVD.
type RecordID int64

// Edge is a derivation edge vi -> vj with weight w(vi,vj) = number of records
// the two versions share.
type Edge struct {
	From, To VersionID
	Weight   int64
}

// Node holds per-version bookkeeping.
type Node struct {
	ID       VersionID
	Parents  []VersionID
	Children []VersionID
	NumRecs  int64 // |R(v)|
	Level    int   // depth in a topological order; roots have level 1
	// NumAttrs is the number of schema attributes the version has; used by
	// the schema-change-aware splitting rule of Appendix C.3. Zero means
	// "same as the whole CVD" (the static-schema case).
	NumAttrs int
}

// Graph is a version DAG. Nodes are added in commit order, which guarantees
// parents exist before children (commits cannot reference future versions).
type Graph struct {
	nodes  map[VersionID]*Node
	order  []VersionID // insertion (commit) order; a valid topological order
	weight map[[2]VersionID]int64
}

// New returns an empty version graph.
func New() *Graph {
	return &Graph{
		nodes:  make(map[VersionID]*Node),
		weight: make(map[[2]VersionID]int64),
	}
}

// Len returns the number of versions.
func (g *Graph) Len() int { return len(g.order) }

// Versions returns the versions in commit order. Callers must not modify the
// returned slice.
func (g *Graph) Versions() []VersionID { return g.order }

// Node returns the node for v, or nil.
func (g *Graph) Node(v VersionID) *Node { return g.nodes[v] }

// Has reports whether v is in the graph.
func (g *Graph) Has(v VersionID) bool { return g.nodes[v] != nil }

// Weight returns w(from,to), the records shared across the edge.
func (g *Graph) Weight(from, to VersionID) int64 { return g.weight[[2]VersionID{from, to}] }

// AddVersion inserts version v with the given parents, record count and
// per-parent shared-record weights (aligned with parents). Parents must
// already exist; the zero VersionID denotes a root commit and must be the
// only parent if present.
func (g *Graph) AddVersion(v VersionID, parents []VersionID, numRecs int64, weights []int64) error {
	if g.nodes[v] != nil {
		return fmt.Errorf("vgraph: version %d already exists", v)
	}
	if len(parents) != len(weights) {
		return fmt.Errorf("vgraph: version %d: %d parents but %d weights", v, len(parents), len(weights))
	}
	level := 1
	for _, p := range parents {
		pn := g.nodes[p]
		if pn == nil {
			return fmt.Errorf("vgraph: version %d: unknown parent %d", v, p)
		}
		if pn.Level+1 > level {
			level = pn.Level + 1
		}
	}
	n := &Node{ID: v, Parents: append([]VersionID(nil), parents...), NumRecs: numRecs, Level: level}
	g.nodes[v] = n
	g.order = append(g.order, v)
	for i, p := range parents {
		g.nodes[p].Children = append(g.nodes[p].Children, v)
		g.weight[[2]VersionID{p, v}] = weights[i]
	}
	return nil
}

// Roots returns the versions without parents.
func (g *Graph) Roots() []VersionID {
	var out []VersionID
	for _, v := range g.order {
		if len(g.nodes[v].Parents) == 0 {
			out = append(out, v)
		}
	}
	return out
}

// IsTree reports whether no version has more than one parent (no merges).
func (g *Graph) IsTree() bool {
	for _, v := range g.order {
		if len(g.nodes[v].Parents) > 1 {
			return false
		}
	}
	return true
}

// Ancestors returns all transitive ancestors of v (excluding v), in no
// particular order.
func (g *Graph) Ancestors(v VersionID) []VersionID {
	seen := make(map[VersionID]bool)
	var out []VersionID
	var walk func(VersionID)
	walk = func(u VersionID) {
		n := g.nodes[u]
		if n == nil {
			return
		}
		for _, p := range n.Parents {
			if !seen[p] {
				seen[p] = true
				out = append(out, p)
				walk(p)
			}
		}
	}
	walk(v)
	sortVersions(out)
	return out
}

// Descendants returns all transitive descendants of v (excluding v).
func (g *Graph) Descendants(v VersionID) []VersionID {
	seen := make(map[VersionID]bool)
	var out []VersionID
	var walk func(VersionID)
	walk = func(u VersionID) {
		n := g.nodes[u]
		if n == nil {
			return
		}
		for _, c := range n.Children {
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
				walk(c)
			}
		}
	}
	walk(v)
	sortVersions(out)
	return out
}

// Leaves returns versions with no children.
func (g *Graph) Leaves() []VersionID {
	var out []VersionID
	for _, v := range g.order {
		if len(g.nodes[v].Children) == 0 {
			out = append(out, v)
		}
	}
	return out
}

func sortVersions(vs []VersionID) {
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
}

// Tree is a version tree: every node has at most one parent. LYRESPLIT runs
// on trees; DAGs are first transformed via ToTree.
type Tree struct {
	Graph *Graph
	// Parent maps each non-root version to its retained parent.
	Parent map[VersionID]VersionID
}

// ToTree transforms the version DAG into a tree by keeping, for every merge
// node, only the incoming edge with the highest weight (Appendix C.1).
// Records a merge version shares only with its dropped parents are
// conceptually duplicated (the set R̂); use DupRecords to count them exactly.
// The weights of retained edges are unchanged, so LYRESPLIT's guarantees hold
// with |R| replaced by |R|+|R̂| (Theorem 3).
func (g *Graph) ToTree() *Tree {
	t := &Tree{Graph: g, Parent: make(map[VersionID]VersionID, len(g.order))}
	for _, v := range g.order {
		n := g.nodes[v]
		if len(n.Parents) == 0 {
			continue
		}
		best := n.Parents[0]
		bestW := g.Weight(best, v)
		for _, p := range n.Parents[1:] {
			if w := g.Weight(p, v); w > bestW || (w == bestW && p < best) {
				best, bestW = p, w
			}
		}
		t.Parent[v] = best
	}
	return t
}

// DupRecords computes |R̂| exactly (Appendix C.1): for every merge version,
// the number of its records that appear in a dropped parent but not in the
// retained parent. Those records are conceptually re-created when the DAG is
// treated as the tree t.
func (t *Tree) DupRecords(b *Bipartite) int64 {
	var dup int64
	for _, v := range t.Graph.Versions() {
		n := t.Graph.Node(v)
		if len(n.Parents) < 2 {
			continue
		}
		kept := t.Parent[v]
		keptSet := make(map[RecordID]struct{})
		for _, r := range b.Records(kept) {
			keptSet[r] = struct{}{}
		}
		inDropped := make(map[RecordID]struct{})
		for _, p := range n.Parents {
			if p == kept {
				continue
			}
			for _, r := range b.Records(p) {
				inDropped[r] = struct{}{}
			}
		}
		for _, r := range b.Records(v) {
			if _, ok := keptSet[r]; ok {
				continue
			}
			if _, ok := inDropped[r]; ok {
				dup++
			}
		}
	}
	return dup
}

// Children lists the tree children of v (graph children whose retained
// parent is v).
func (t *Tree) Children(v VersionID) []VersionID {
	var out []VersionID
	for _, c := range t.Graph.Node(v).Children {
		if t.Parent[c] == v {
			out = append(out, c)
		}
	}
	return out
}

// Roots lists the tree roots.
func (t *Tree) Roots() []VersionID {
	var out []VersionID
	for _, v := range t.Graph.Versions() {
		if _, ok := t.Parent[v]; !ok {
			out = append(out, v)
		}
	}
	return out
}
