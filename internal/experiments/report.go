package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Report is a printable experiment table: a title, a header, and rows of
// pre-formatted cells.
type Report struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Add appends a row, formatting each cell with %v.
func (r *Report) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case time.Duration:
			row[i] = fmtDuration(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	r.Rows = append(r.Rows, row)
}

// fmtDuration renders durations with experiment-friendly precision.
func fmtDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1000)
	}
}

// Print writes the report with aligned columns.
func (r *Report) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for p := len(c); p < widths[i]; p++ {
				b.WriteByte(' ')
			}
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	line(r.Header)
	for _, row := range r.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

// mb formats a byte count in MB.
func mb(n int64) string { return fmt.Sprintf("%.2fMB", float64(n)/(1<<20)) }
