package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"orpheusdb/internal/engine"
)

// Fig19Point is one (join method, clustering, |Rk|, |rlist|) measurement of
// the checkout cost-model validation (Appendix D.1, Figure 19).
type Fig19Point struct {
	Method    engine.JoinMethod
	Clustered string // "rid" or "pk"
	TableRows int
	RlistLen  int
	Time      time.Duration
	IOCost    int64 // modeled cost in sequential-page units
	SeqPages  int64
	RandPages int64
}

// Fig19Config bounds the validation sweep.
type Fig19Config struct {
	TableSizes []int
	RlistSizes []int
	NumAttrs   int
	Seed       int64
}

// DefaultFig19Config returns laptop-scale defaults: the paper sweeps |Rk| to
// 30M and |rlist| to 1M; we default two orders of magnitude lower.
func DefaultFig19Config() Fig19Config {
	return Fig19Config{
		TableSizes: []int{10_000, 30_000, 100_000, 300_000},
		RlistSizes: []int{100, 1_000, 10_000, 100_000},
		NumAttrs:   10,
		Seed:       42,
	}
}

// Fig19 measures checkout time and modeled I/O for hash, merge, and
// index-nested-loop joins over data tables physically clustered on rid
// versus on the relation primary key, across table and rlist sizes. The
// validated claim: with hash join the cost is linear in |Rk| regardless of
// layout; merge and INL joins degrade to per-row random access when the
// table is clustered on the primary key.
func Fig19(cfg Fig19Config) ([]Fig19Point, []*Report, error) {
	var points []Fig19Point
	for _, clustered := range []string{"rid", "pk"} {
		for _, rows := range cfg.TableSizes {
			db := engine.NewDB()
			t, err := buildFig19Table(db, rows, cfg.NumAttrs, cfg.Seed, clustered)
			if err != nil {
				return nil, nil, err
			}
			for _, rl := range cfg.RlistSizes {
				if rl > rows {
					continue
				}
				rlist := sampleRids(rows, rl, cfg.Seed+int64(rl))
				for _, m := range []engine.JoinMethod{engine.HashJoin, engine.MergeJoin, engine.IndexNestedLoopJoin} {
					snap := db.Stats().Snapshot()
					start := time.Now()
					out, err := engine.JoinRids(t, 0, rlist, m)
					if err != nil {
						return nil, nil, err
					}
					elapsed := time.Since(start)
					if len(out) != rl {
						return nil, nil, fmt.Errorf("fig19: %v returned %d rows, want %d", m, len(out), rl)
					}
					d := db.Stats().Since(snap)
					points = append(points, Fig19Point{
						Method:    m,
						Clustered: clustered,
						TableRows: rows,
						RlistLen:  rl,
						Time:      elapsed,
						IOCost:    d.IOCost(),
						SeqPages:  d.SeqPages,
						RandPages: d.RandPages,
					})
				}
			}
		}
	}
	var reports []*Report
	for _, m := range []engine.JoinMethod{engine.HashJoin, engine.MergeJoin, engine.IndexNestedLoopJoin} {
		for _, clustered := range []string{"rid", "pk"} {
			rep := &Report{
				Title:  fmt.Sprintf("Figure 19: %s (clustered on %s)", m, clustered),
				Header: []string{"|Rk|", "|rlist|", "time", "io_cost", "seq_pages", "rand_pages"},
			}
			for _, p := range points {
				if p.Method == m && p.Clustered == clustered {
					rep.Add(p.TableRows, p.RlistLen, p.Time, p.IOCost, p.SeqPages, p.RandPages)
				}
			}
			reports = append(reports, rep)
		}
	}
	return points, reports, nil
}

// buildFig19Table creates a data table of n rows with an index on rid,
// physically clustered on rid or on the synthetic primary key.
func buildFig19Table(db *engine.DB, n, attrs int, seed int64, clustered string) (*engine.Table, error) {
	cols := []engine.Column{{Name: "rid", Type: engine.KindInt}}
	for i := 0; i < attrs; i++ {
		cols = append(cols, engine.Column{Name: fmt.Sprintf("a%d", i), Type: engine.KindInt})
	}
	t, err := db.CreateTable("fig19", cols)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	// The primary key (a0) is a random permutation so clustering on it
	// scatters rids across pages, as in the paper's PK-clustered layout.
	perm := rng.Perm(n)
	for rid := 0; rid < n; rid++ {
		row := make(engine.Row, len(cols))
		row[0] = engine.IntValue(int64(rid))
		row[1] = engine.IntValue(int64(perm[rid]))
		for i := 2; i < len(cols); i++ {
			row[i] = engine.IntValue(rng.Int63n(1000))
		}
		if _, err := t.Insert(row); err != nil {
			return nil, err
		}
	}
	switch clustered {
	case "rid":
		if err := t.Cluster("rid"); err != nil {
			return nil, err
		}
	case "pk":
		if err := t.Cluster("a0"); err != nil {
			return nil, err
		}
	}
	if err := t.CreateIndex("rid"); err != nil {
		return nil, err
	}
	return t, nil
}

// sampleRids picks k distinct rids in [0, n) and returns them sorted.
func sampleRids(n, k int, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	out := make([]int64, k)
	for i := 0; i < k; i++ {
		out[i] = int64(perm[i])
	}
	return out
}
