package experiments

import (
	"fmt"
	"time"

	"orpheusdb/internal/benchgen"
	"orpheusdb/internal/core"
	"orpheusdb/internal/engine"
	"orpheusdb/internal/vgraph"
)

// Table2 generates the benchmark datasets at the given scale and reports
// their statistics (|V|, |R|, |E|, B, I, |R̂|), reproducing Table 2.
func Table2(names []string, scale float64, seed int64) (*Report, []*benchgen.Dataset, error) {
	rep := &Report{
		Title:  fmt.Sprintf("Table 2: dataset description (scale=%g)", scale),
		Header: []string{"dataset", "|V|", "|R|", "|E|", "|B|", "|I|", "|R^|", "|E|/|V|"},
	}
	var datasets []*benchgen.Dataset
	for _, name := range names {
		d, err := benchgen.Standard(name, scale, seed)
		if err != nil {
			return nil, nil, err
		}
		s := d.Stats()
		dup := "-"
		if s.DupR > 0 {
			dup = fmt.Sprintf("%d", s.DupR)
		}
		rep.Add(s.Name, s.V, s.R, s.E, s.B, s.I, dup, fmt.Sprintf("%.0f", s.AvgVSize))
		datasets = append(datasets, d)
	}
	return rep, datasets, nil
}

// Fig3Row is one (dataset, model) measurement of Figure 3.
type Fig3Row struct {
	Dataset      string
	Model        core.ModelKind
	StorageBytes int64
	CommitTime   time.Duration
	CheckoutTime time.Duration
	LoadTime     time.Duration
}

// Fig3 reproduces Figure 3: for each dataset and data model, load every
// version, then measure (a) storage, (b) the time to commit the latest
// version back as a new version, and (c) the time to check out the latest
// version.
func Fig3(names []string, scale float64, seed int64, models []core.ModelKind) ([]Fig3Row, []*Report, error) {
	if len(models) == 0 {
		models = core.AllModelKinds()
	}
	var rows []Fig3Row
	for _, name := range names {
		d, err := benchgen.Standard(name, scale, seed)
		if err != nil {
			return nil, nil, err
		}
		// The paper's records carry 100 4-byte attributes; wide rows are
		// what makes a-table-per-version's ~10x storage overhead visible.
		// 20 attributes keeps that shape at laptop memory budgets.
		cfg := d.Config
		cfg.NumAttrs = 20
		d = benchgen.Generate(cfg)
		for _, kind := range models {
			row, err := fig3One(d, kind)
			if err != nil {
				return nil, nil, fmt.Errorf("fig3 %s/%s: %w", name, kind, err)
			}
			rows = append(rows, *row)
		}
	}
	storage := &Report{Title: "Figure 3a: storage size per data model", Header: []string{"dataset", "model", "storage"}}
	commit := &Report{Title: "Figure 3b: commit time per data model", Header: []string{"dataset", "model", "commit_time"}}
	checkout := &Report{Title: "Figure 3c: checkout time per data model", Header: []string{"dataset", "model", "checkout_time"}}
	for _, r := range rows {
		storage.Add(r.Dataset, string(r.Model), mb(r.StorageBytes))
		commit.Add(r.Dataset, string(r.Model), r.CommitTime)
		checkout.Add(r.Dataset, string(r.Model), r.CheckoutTime)
	}
	return rows, []*Report{storage, commit, checkout}, nil
}

// fig3One loads one dataset into one model and measures the primitives.
func fig3One(d *benchgen.Dataset, kind core.ModelKind) (*Fig3Row, error) {
	db := engine.NewDB()
	cvd, err := LoadDatasetCVD(db, d, kind)
	if err != nil {
		return nil, err
	}
	latest := cvd.LatestVersion()

	start := time.Now()
	rows, err := cvd.Checkout(latest)
	if err != nil {
		return nil, err
	}
	checkoutTime := time.Since(start)

	start = time.Now()
	if _, err := cvd.Commit(rows, []vgraph.VersionID{latest}, "recommit"); err != nil {
		return nil, err
	}
	commitTime := time.Since(start)

	return &Fig3Row{
		Dataset:      d.Config.Name,
		Model:        kind,
		StorageBytes: cvd.StorageBytes(),
		CommitTime:   commitTime,
		CheckoutTime: checkoutTime,
	}, nil
}

// LoadDatasetCVD streams every commit of a benchmark dataset into a fresh
// CVD under the given model.
func LoadDatasetCVD(db *engine.DB, d *benchgen.Dataset, kind core.ModelKind) (*core.CVD, error) {
	cols := make([]engine.Column, d.Config.NumAttrs)
	for i := range cols {
		cols[i] = engine.Column{Name: fmt.Sprintf("a%d", i), Type: engine.KindInt}
	}
	cvd, err := core.Init(db, "bench", cols, core.InitOptions{Model: kind})
	if err != nil {
		return nil, err
	}
	for _, c := range d.Commits {
		rows := make([]engine.Row, len(c.Records))
		for i, rid := range c.Records {
			attrs := d.RecordRow(rid)
			row := make(engine.Row, len(attrs))
			for j, a := range attrs {
				row[j] = engine.IntValue(a)
			}
			rows[i] = row
		}
		if _, err := cvd.Commit(rows, c.Parents, ""); err != nil {
			return nil, err
		}
	}
	return cvd, nil
}
