package experiments

import (
	"fmt"
	"math"
	"time"

	"orpheusdb/internal/benchgen"
	"orpheusdb/internal/engine"
	"orpheusdb/internal/partition"
)

// SweepPoint is one partitioning scheme on the storage/checkout trade-off
// curve of Figure 9 (and, via the estimated columns, Figures 20-23).
type SweepPoint struct {
	Dataset      string
	Algorithm    string
	Param        string
	Partitions   int
	StorageBytes int64
	CheckoutTime time.Duration
	// EstStorage and EstCheckout are the cost-model values in records
	// (Figures 20-21); EstCheckout vs CheckoutTime gives Figures 22-23.
	EstStorage  int64
	EstCheckout float64
}

// SweepConfig bounds the Figure 9 sweeps.
type SweepConfig struct {
	Scale      float64
	Seed       int64
	Samples    int           // versions sampled per checkout-time estimate
	Budget     time.Duration // per-algorithm time budget (the paper used 10h)
	LyrePoints int
	AggloPoint int
	KMeansPts  int
}

// DefaultSweepConfig returns laptop-scale defaults.
func DefaultSweepConfig() SweepConfig {
	return SweepConfig{
		Scale:      0.01,
		Seed:       42,
		Samples:    30,
		Budget:     2 * time.Minute,
		LyrePoints: 8,
		AggloPoint: 6,
		KMeansPts:  5,
	}
}

// Fig9 sweeps δ (LYRESPLIT), BC (AGGLO) and K (KMEANS) on one dataset,
// materializing each resulting partitioning physically and measuring real
// checkout times.
func Fig9(name string, cfg SweepConfig) ([]SweepPoint, *Report, error) {
	d, err := benchgen.Standard(name, cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, nil, err
	}
	return Fig9Dataset(d, cfg)
}

// Fig9Dataset is Fig9 over an already generated dataset.
func Fig9Dataset(d *benchgen.Dataset, cfg SweepConfig) ([]SweepPoint, *Report, error) {
	b := d.Bipartite()
	g := d.Graph()
	tree := g.ToTree()
	var points []SweepPoint

	addPoint := func(algo, param string, p *partition.Partitioning) error {
		ps, err := BuildPhysStore(d, p)
		if err != nil {
			return err
		}
		avg, err := ps.AvgCheckoutTime(cfg.Samples, cfg.Seed, engine.HashJoin)
		if err != nil {
			return err
		}
		points = append(points, SweepPoint{
			Dataset:      d.Config.Name,
			Algorithm:    algo,
			Param:        param,
			Partitions:   len(p.Parts),
			StorageBytes: ps.StorageBytes(),
			CheckoutTime: avg,
			EstStorage:   p.StorageCost(),
			EstCheckout:  p.CheckoutCost(),
		})
		return nil
	}

	// LYRESPLIT: sweep δ log-spaced between the single-partition minimum
	// and 1.
	ls := &partition.LyreSplit{Tree: tree}
	minDelta := float64(b.NumEdges()) / (float64(b.NumRecords()) * float64(b.NumVersions()))
	if minDelta >= 1 {
		minDelta = 0.5
	}
	for i := 0; i < cfg.LyrePoints; i++ {
		frac := float64(i) / float64(cfg.LyrePoints-1)
		delta := math.Exp(math.Log(minDelta) + frac*(math.Log(1.0)-math.Log(minDelta)))
		res := ls.Run(delta)
		p := partition.FromVersionGroups(b, res.Groups)
		if err := addPoint("LyreSplit", fmt.Sprintf("delta=%.4f", delta), p); err != nil {
			return nil, nil, err
		}
	}

	// AGGLO: sweep the partition capacity BC.
	deadline := time.Now().Add(cfg.Budget)
	ag := &partition.Agglo{B: b, Seed: cfg.Seed, Deadline: deadline}
	for i := 0; i < cfg.AggloPoint && time.Now().Before(deadline); i++ {
		frac := float64(i) / float64(cfg.AggloPoint-1)
		bc := int64(math.Exp(math.Log(float64(b.NumRecords())/8) +
			frac*(math.Log(float64(b.NumEdges()))-math.Log(float64(b.NumRecords())/8))))
		p := partition.FromVersionGroups(b, ag.Run(bc))
		if err := addPoint("AGGLO", fmt.Sprintf("BC=%d", bc), p); err != nil {
			return nil, nil, err
		}
	}

	// KMEANS: sweep K (capacity unbounded, as in the paper).
	deadline = time.Now().Add(cfg.Budget)
	km := &partition.KMeans{B: b, Seed: cfg.Seed, Deadline: deadline}
	for i := 0; i < cfg.KMeansPts && time.Now().Before(deadline); i++ {
		k := 2 << i // 2, 4, 8, ...
		if k > b.NumVersions() {
			break
		}
		p := partition.FromVersionGroups(b, km.Run(k))
		if err := addPoint("KMEANS", fmt.Sprintf("K=%d", k), p); err != nil {
			return nil, nil, err
		}
	}

	rep := &Report{
		Title: fmt.Sprintf("Figure 9: storage vs checkout time (%s)", d.Config.Name),
		Header: []string{"algorithm", "param", "parts", "storage",
			"checkout_time", "est_S(recs)", "est_Cavg(recs)"},
	}
	for _, pt := range points {
		rep.Add(pt.Algorithm, pt.Param, pt.Partitions, mb(pt.StorageBytes),
			pt.CheckoutTime, pt.EstStorage, fmt.Sprintf("%.0f", pt.EstCheckout))
	}
	return points, rep, nil
}

// Fig2023 reformats sweep points as the estimated-cost scatter of Figures
// 20/21 (est S vs est Cavg) and 22/23 (est Cavg vs real checkout time).
func Fig2023(points []SweepPoint) (*Report, *Report) {
	est := &Report{
		Title:  "Figures 20/21: estimated storage cost vs estimated checkout cost",
		Header: []string{"dataset", "algorithm", "param", "est_S(recs)", "est_Cavg(recs)"},
	}
	real := &Report{
		Title:  "Figures 22/23: estimated checkout cost vs real checkout time",
		Header: []string{"dataset", "algorithm", "param", "est_Cavg(recs)", "checkout_time"},
	}
	for _, pt := range points {
		est.Add(pt.Dataset, pt.Algorithm, pt.Param, pt.EstStorage, fmt.Sprintf("%.0f", pt.EstCheckout))
		real.Add(pt.Dataset, pt.Algorithm, pt.Param, fmt.Sprintf("%.0f", pt.EstCheckout), pt.CheckoutTime)
	}
	return est, real
}

// Fig1011Row is one algorithm timing of Figures 10/11.
type Fig1011Row struct {
	Dataset       string
	Algorithm     string
	TotalTime     time.Duration
	PerIteration  time.Duration
	Iterations    int
	HitBudget     bool
	FinalStorage  int64
	FinalCheckout float64
}

// Fig1011 measures the end-to-end binary-search time of each partitioning
// algorithm under γ = 2|R| (Figures 10 and 11). Algorithms exceeding the
// budget are cut off and flagged, mirroring the paper's 10-hour cap.
func Fig1011(name string, cfg SweepConfig) ([]Fig1011Row, *Report, error) {
	d, err := benchgen.Standard(name, cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, nil, err
	}
	b := d.Bipartite()
	g := d.Graph()
	gamma := 2 * b.NumRecords()
	var rows []Fig1011Row

	// LYRESPLIT.
	ls := &partition.LyreSplit{Tree: g.ToTree()}
	start := time.Now()
	res, err := ls.Solve(gamma)
	if err != nil {
		return nil, nil, err
	}
	total := time.Since(start)
	rows = append(rows, Fig1011Row{
		Dataset: d.Config.Name, Algorithm: "LyreSplit", TotalTime: total,
		PerIteration: total / time.Duration(maxInt(1, res.Iterations)),
		Iterations:   res.Iterations,
		FinalStorage: res.EstStorage, FinalCheckout: res.EstCheckout,
	})

	// AGGLO and KMEANS run their binary searches under a wall-clock budget.
	type solver struct {
		name string
		run  func() (*partition.Partitioning, int)
	}
	budgeted := func(step func(int) (*partition.Partitioning, bool)) (*partition.Partitioning, int) {
		deadline := time.Now().Add(cfg.Budget)
		var best *partition.Partitioning
		iters := 0
		for i := 0; time.Now().Before(deadline); i++ {
			p, done := step(i)
			iters++
			if p != nil {
				best = p
			}
			if done {
				break
			}
		}
		return best, iters
	}
	ag := &partition.Agglo{B: b, Seed: cfg.Seed, Deadline: time.Now().Add(cfg.Budget)}
	km := &partition.KMeans{B: b, Seed: cfg.Seed, Deadline: time.Now().Add(2 * cfg.Budget)}
	solvers := []solver{
		{"AGGLO", func() (*partition.Partitioning, int) {
			lo, hi := int64(1), b.NumEdges()
			return budgeted(func(int) (*partition.Partitioning, bool) {
				if lo > hi {
					return nil, true
				}
				bc := (lo + hi) / 2
				p := partition.FromVersionGroups(b, ag.Run(bc))
				if p.StorageCost() <= gamma {
					hi = bc - 1
					return p, false
				}
				lo = bc + 1
				return nil, false
			})
		}},
		{"KMEANS", func() (*partition.Partitioning, int) {
			lo, hi := 1, b.NumVersions()
			return budgeted(func(int) (*partition.Partitioning, bool) {
				if lo > hi {
					return nil, true
				}
				k := (lo + hi) / 2
				p := partition.FromVersionGroups(b, km.Run(k))
				if p.StorageCost() <= gamma {
					lo = k + 1
					return p, false
				}
				hi = k - 1
				return nil, false
			})
		}},
	}
	for _, sv := range solvers {
		start := time.Now()
		p, iters := sv.run()
		total := time.Since(start)
		row := Fig1011Row{
			Dataset: d.Config.Name, Algorithm: sv.name, TotalTime: total,
			PerIteration: total / time.Duration(maxInt(1, iters)),
			Iterations:   iters, HitBudget: total >= cfg.Budget,
		}
		if p != nil {
			row.FinalStorage = p.StorageCost()
			row.FinalCheckout = p.CheckoutCost()
		}
		rows = append(rows, row)
	}

	rep := &Report{
		Title: fmt.Sprintf("Figures 10/11: partitioning algorithm running time (%s, gamma=2|R|)", d.Config.Name),
		Header: []string{"algorithm", "total_time", "per_iteration", "iters",
			"hit_budget", "S(recs)", "Cavg(recs)"},
	}
	for _, r := range rows {
		rep.Add(r.Algorithm, r.TotalTime, r.PerIteration, r.Iterations,
			r.HitBudget, r.FinalStorage, fmt.Sprintf("%.0f", r.FinalCheckout))
	}
	return rows, rep, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
