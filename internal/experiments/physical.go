// Package experiments regenerates every table and figure of the OrpheusDB
// paper's evaluation (Sections 3.2, 5 and Appendix D) on the embedded engine,
// at configurable scale. Each experiment prints the same rows/series the
// paper reports and returns structured results for tests and benchmarks.
package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"orpheusdb/internal/benchgen"
	"orpheusdb/internal/engine"
	"orpheusdb/internal/partition"
	"orpheusdb/internal/vgraph"
)

// PhysStore materializes a partitioned split-by-rlist layout for a benchmark
// dataset directly on engine tables, bypassing the CVD middleware so
// partitioning effects are measured in isolation.
type PhysStore struct {
	db    *engine.DB
	d     *benchgen.Dataset
	cols  []engine.Column
	parts []*physPart
	of    map[vgraph.VersionID]int
}

type physPart struct {
	data   *engine.Table
	rlists map[vgraph.VersionID][]int64
}

// rowOf materializes (rid, attrs...) for a record.
func (ps *PhysStore) rowOf(rid vgraph.RecordID) engine.Row {
	attrs := ps.d.RecordRow(rid)
	row := make(engine.Row, 0, len(attrs)+1)
	row = append(row, engine.IntValue(int64(rid)))
	for _, a := range attrs {
		row = append(row, engine.IntValue(a))
	}
	return row
}

// BuildPhysStore lays the dataset out under the given partitioning.
func BuildPhysStore(d *benchgen.Dataset, p *partition.Partitioning) (*PhysStore, error) {
	ps := &PhysStore{
		db: engine.NewDB(),
		d:  d,
		of: make(map[vgraph.VersionID]int),
	}
	ps.cols = append(ps.cols, engine.Column{Name: "rid", Type: engine.KindInt})
	for i := 0; i < d.Config.NumAttrs; i++ {
		ps.cols = append(ps.cols, engine.Column{Name: fmt.Sprintf("a%d", i), Type: engine.KindInt})
	}
	b := d.Bipartite()
	for k, part := range p.Parts {
		pp, err := ps.addPartition(k)
		if err != nil {
			return nil, err
		}
		recs := part.Records
		if recs == nil {
			recs = b.Union(part.Versions)
		}
		for _, rid := range recs {
			if _, err := pp.data.Insert(ps.rowOf(rid)); err != nil {
				return nil, err
			}
		}
		for _, v := range part.Versions {
			rl := b.Records(v)
			rlist := make([]int64, len(rl))
			for i, r := range rl {
				rlist[i] = int64(r)
			}
			pp.rlists[v] = rlist
			ps.of[v] = k
		}
	}
	return ps, nil
}

func (ps *PhysStore) addPartition(k int) (*physPart, error) {
	dt, err := ps.db.CreateTable(fmt.Sprintf("part%d_data", k), ps.cols)
	if err != nil {
		return nil, err
	}
	if err := dt.CreateIndex("rid"); err != nil {
		return nil, err
	}
	pp := &physPart{data: dt, rlists: make(map[vgraph.VersionID][]int64)}
	if k == len(ps.parts) {
		ps.parts = append(ps.parts, pp)
	} else {
		for k >= len(ps.parts) {
			ps.parts = append(ps.parts, nil)
		}
		ps.parts[k] = pp
	}
	return pp, nil
}

// Stats exposes the engine's I/O counters.
func (ps *PhysStore) Stats() *engine.Stats { return ps.db.Stats() }

// Checkout materializes one version via the configured join method and
// returns the elapsed wall time and the number of rows.
func (ps *PhysStore) Checkout(v vgraph.VersionID, method engine.JoinMethod) (time.Duration, int, error) {
	k, ok := ps.of[v]
	if !ok {
		return 0, 0, fmt.Errorf("experiments: version %d not placed", v)
	}
	pp := ps.parts[k]
	rlist := pp.rlists[v]
	start := time.Now()
	rows, err := engine.JoinRids(pp.data, 0, rlist, method)
	if err != nil {
		return 0, 0, err
	}
	return time.Since(start), len(rows), nil
}

// AvgCheckoutTime measures the mean checkout wall time over n randomly
// sampled versions (the paper samples 100).
func (ps *PhysStore) AvgCheckoutTime(n int, seed int64, method engine.JoinMethod) (time.Duration, error) {
	versions := ps.d.Bipartite().Versions()
	if len(versions) == 0 {
		return 0, fmt.Errorf("experiments: empty dataset")
	}
	rng := rand.New(rand.NewSource(seed))
	var total time.Duration
	for i := 0; i < n; i++ {
		v := versions[rng.Intn(len(versions))]
		dt, _, err := ps.Checkout(v, method)
		if err != nil {
			return 0, err
		}
		total += dt
	}
	return total / time.Duration(n), nil
}

// StorageBytes sums the data-table sizes (the versioning tables are constant
// across partitionings, as in Section 5.2, so they are excluded).
func (ps *PhysStore) StorageBytes() int64 {
	var n int64
	for _, pp := range ps.parts {
		if pp != nil {
			n += pp.data.SizeBytes()
		}
	}
	return n
}

// ApplyMigration replays a migration plan against the physical layout,
// returning the wall time of the data movement. Old partition indexes in the
// plan refer to the current layout; after the call the store holds `next`.
func (ps *PhysStore) ApplyMigration(next *partition.Partitioning, plan *partition.MigrationPlan) (time.Duration, error) {
	start := time.Now()
	b := ps.d.Bipartite()
	oldParts := ps.parts
	newParts := make([]*physPart, len(next.Parts))

	for _, step := range plan.Steps {
		want := make(map[int64]bool, next.Parts[step.New].NumRecords)
		for _, r := range next.Parts[step.New].Records {
			want[int64(r)] = true
		}
		if step.Old >= 0 && step.Old < len(oldParts) && oldParts[step.Old] != nil {
			pp := oldParts[step.Old]
			var drop []engine.RowID
			have := make(map[int64]bool, pp.data.NumRows())
			pp.data.Scan(func(id engine.RowID, row engine.Row) bool {
				have[row[0].I] = true
				if !want[row[0].I] {
					drop = append(drop, id)
				}
				return true
			})
			pp.data.DeleteBatch(drop)
			for r := range want {
				if !have[r] {
					if _, err := pp.data.Insert(ps.rowOf(vgraph.RecordID(r))); err != nil {
						return 0, err
					}
				}
			}
			pp.rlists = make(map[vgraph.VersionID][]int64)
			newParts[step.New] = pp
			oldParts[step.Old] = nil
		} else {
			dt, err := ps.db.CreateTable(fmt.Sprintf("mig%d_data_%d", len(ps.parts)+step.New, time.Now().UnixNano()), ps.cols)
			if err != nil {
				return 0, err
			}
			if err := dt.CreateIndex("rid"); err != nil {
				return 0, err
			}
			for r := range want {
				if _, err := dt.Insert(ps.rowOf(vgraph.RecordID(r))); err != nil {
					return 0, err
				}
			}
			newParts[step.New] = &physPart{data: dt, rlists: make(map[vgraph.VersionID][]int64)}
		}
	}
	// Drop unused old partitions.
	for _, pp := range oldParts {
		if pp != nil {
			_ = ps.db.DropTable(pp.data.Name())
		}
	}
	// Rebuild version placement.
	ps.parts = newParts
	ps.of = make(map[vgraph.VersionID]int, len(next.Of))
	for k, part := range next.Parts {
		pp := newParts[k]
		for _, v := range part.Versions {
			rl := b.Records(v)
			rlist := make([]int64, len(rl))
			for i, r := range rl {
				rlist[i] = int64(r)
			}
			pp.rlists[v] = rlist
			ps.of[v] = k
		}
	}
	return time.Since(start), nil
}
