package experiments

import (
	"io"
	"testing"
	"time"

	"orpheusdb/internal/core"
	"orpheusdb/internal/engine"
	"orpheusdb/internal/partition"
)

// quickCfg shrinks the sweeps for test time.
func quickCfg() SweepConfig {
	return SweepConfig{
		Scale:      0.003,
		Seed:       42,
		Samples:    8,
		Budget:     30 * time.Second,
		LyrePoints: 4,
		AggloPoint: 3,
		KMeansPts:  3,
	}
}

func TestTable2Shapes(t *testing.T) {
	rep, datasets, err := Table2([]string{"SCI_1M", "CUR_1M"}, 0.004, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 || len(datasets) != 2 {
		t.Fatalf("rows: %d", len(rep.Rows))
	}
	sci := datasets[0].Stats()
	cur := datasets[1].Stats()
	if sci.DupR != 0 {
		t.Fatal("SCI must have no duplicated records")
	}
	if cur.DupR <= 0 {
		t.Fatal("CUR must have duplicated records")
	}
	rep.Print(io.Discard)
}

func TestFig3Shapes(t *testing.T) {
	// Wall-clock comparisons are retried: tiny datasets plus background
	// load make single measurements noisy. Storage is deterministic.
	var lastErr string
	for attempt := 0; attempt < 3; attempt++ {
		rows, reps, err := Fig3([]string{"SCI_5M"}, 0.004, 42, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 5 {
			t.Fatalf("model rows: %d", len(rows))
		}
		byModel := map[core.ModelKind]Fig3Row{}
		for _, r := range rows {
			byModel[r.Model] = r
		}
		for _, rep := range reps {
			rep.Print(io.Discard)
		}
		// Figure 3a: a-table-per-version needs several times the storage
		// of the split models.
		tpv := byModel[core.TablePerVersionModel]
		rlist := byModel[core.SplitByRlistModel]
		if tpv.StorageBytes < 3*rlist.StorageBytes {
			t.Fatalf("storage: tpv %d vs rlist %d — expected ~10x gap",
				tpv.StorageBytes, rlist.StorageBytes)
		}
		// Figure 3b: split-by-rlist commits faster than combined-table and
		// split-by-vlist (no per-record array appends, no full scan).
		combined := byModel[core.CombinedTableModel]
		vlist := byModel[core.SplitByVlistModel]
		switch {
		case rlist.CommitTime > combined.CommitTime:
			lastErr = "rlist commit slower than combined: " +
				rlist.CommitTime.String() + " vs " + combined.CommitTime.String()
		case rlist.CommitTime > vlist.CommitTime:
			lastErr = "rlist commit slower than vlist: " +
				rlist.CommitTime.String() + " vs " + vlist.CommitTime.String()
		default:
			return // shape holds
		}
	}
	t.Fatal(lastErr)
}

func TestFig9LyreSplitOnFrontier(t *testing.T) {
	pts, rep, err := Fig9("SCI_1M", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	rep.Print(io.Discard)
	// Shape: for LYRESPLIT, estimated checkout cost decreases as estimated
	// storage grows along the δ sweep.
	var lyre []SweepPoint
	for _, p := range pts {
		if p.Algorithm == "LyreSplit" {
			lyre = append(lyre, p)
		}
	}
	if len(lyre) < 3 {
		t.Fatalf("lyre points: %d", len(lyre))
	}
	first, last := lyre[0], lyre[len(lyre)-1]
	if last.EstStorage < first.EstStorage {
		t.Fatal("storage should grow with δ")
	}
	if last.EstCheckout > first.EstCheckout {
		t.Fatal("checkout cost should fall with δ")
	}
}

func TestFig1011LyreSplitFastest(t *testing.T) {
	rows, rep, err := Fig1011("SCI_1M", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	rep.Print(io.Discard)
	byAlgo := map[string]Fig1011Row{}
	for _, r := range rows {
		byAlgo[r.Algorithm] = r
	}
	ls := byAlgo["LyreSplit"]
	if ls.TotalTime > byAlgo["AGGLO"].TotalTime {
		t.Fatalf("LYRESPLIT %v slower than AGGLO %v", ls.TotalTime, byAlgo["AGGLO"].TotalTime)
	}
	if ls.TotalTime > byAlgo["KMEANS"].TotalTime {
		t.Fatalf("LYRESPLIT %v slower than KMEANS %v", ls.TotalTime, byAlgo["KMEANS"].TotalTime)
	}
}

func TestFig1213PartitioningSpeedsUpCheckout(t *testing.T) {
	rows, rep, err := Fig1213([]string{"SCI_1M"}, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	rep.Print(io.Discard)
	r := rows[0]
	// Figures 12/13: partitioned checkout beats unpartitioned; storage
	// grows but stays within the budget's ballpark.
	if r.CheckoutGamma20 >= r.CheckoutNoPart {
		t.Fatalf("γ=2 checkout %v not faster than none %v", r.CheckoutGamma20, r.CheckoutNoPart)
	}
	if r.StorageGamma20 < r.StorageNoPart {
		t.Fatal("partitioned storage should exceed single-partition storage")
	}
	if r.StorageGamma15 > r.StorageGamma20 {
		t.Fatal("γ=1.5 storage should not exceed γ=2 storage")
	}
}

func TestFig1415OnlineAndMigration(t *testing.T) {
	cfg := DefaultFig1415Config()
	cfg.Versions = 250
	cfg.OpsPerCommit = 20
	cfg.Branches = 25
	cfg.SampleEvery = 10
	cfg.Mus = []float64{1.05, 2.0}
	runs, reps, err := Fig1415(1.5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range reps {
		rep.Print(io.Discard)
	}
	var tightMigs, looseMigs int
	var naiveRecords, smartRecords int64
	for _, run := range runs {
		if run.Naive {
			for _, m := range run.Migrations {
				naiveRecords += m.PlanRecords
			}
			continue
		}
		switch run.Mu {
		case 1.05:
			tightMigs = len(run.Migrations)
			for _, m := range run.Migrations {
				smartRecords += m.PlanRecords
			}
		case 2.0:
			looseMigs = len(run.Migrations)
		}
		// Trajectory stays within µ of the best cost.
		for _, p := range run.Trajectory {
			if p.BestCavg > 0 && p.Cavg > run.Mu*p.BestCavg*1.02 {
				t.Fatalf("µ=%.2f: Cavg %.0f above tolerance at commit %d", run.Mu, p.Cavg, p.Commit)
			}
		}
	}
	if tightMigs < looseMigs {
		t.Fatalf("µ=1.05 migrated %d times, µ=2 %d times", tightMigs, looseMigs)
	}
	if tightMigs > 0 && naiveRecords > 0 && smartRecords > naiveRecords {
		t.Fatalf("intelligent migration moved more records (%d) than naive (%d)", smartRecords, naiveRecords)
	}
}

func TestFig19CostModel(t *testing.T) {
	cfg := Fig19Config{
		TableSizes: []int{4096, 16384},
		RlistSizes: []int{64, 4096},
		NumAttrs:   6,
		Seed:       42,
	}
	pts, reps, err := Fig19(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range reps {
		rep.Print(io.Discard)
	}
	find := func(m engine.JoinMethod, clustered string, rows, rl int) Fig19Point {
		for _, p := range pts {
			if p.Method == m && p.Clustered == clustered && p.TableRows == rows && p.RlistLen == rl {
				return p
			}
		}
		t.Fatalf("missing point %v/%s/%d/%d", m, clustered, rows, rl)
		return Fig19Point{}
	}
	// Hash join: modeled cost linear in |Rk|, independent of layout and
	// rlist size.
	h1 := find(engine.HashJoin, "rid", 4096, 64)
	h2 := find(engine.HashJoin, "rid", 16384, 64)
	if h2.IOCost < 3*h1.IOCost {
		t.Fatalf("hash join not linear: %d -> %d", h1.IOCost, h2.IOCost)
	}
	hpk := find(engine.HashJoin, "pk", 16384, 64)
	if hpk.IOCost != h2.IOCost {
		t.Fatalf("hash join layout-sensitive: %d vs %d", hpk.IOCost, h2.IOCost)
	}
	// Merge join collapses on pk-clustered tables (random per-row access).
	mRid := find(engine.MergeJoin, "rid", 16384, 64)
	mPk := find(engine.MergeJoin, "pk", 16384, 64)
	if mPk.IOCost < 20*mRid.IOCost {
		t.Fatalf("pk-clustered merge join should be far costlier: %d vs %d", mPk.IOCost, mRid.IOCost)
	}
	// Dense INLJ on rid-clustered degrades to a sequential scan.
	inljDense := find(engine.IndexNestedLoopJoin, "rid", 4096, 4096)
	if inljDense.RandPages > 1 {
		t.Fatalf("dense INLJ should be sequential: %d random pages", inljDense.RandPages)
	}
	// Sparse INLJ on pk-clustered pays one random fetch per probe.
	inljSparse := find(engine.IndexNestedLoopJoin, "pk", 16384, 64)
	if inljSparse.RandPages < 32 {
		t.Fatalf("sparse INLJ should be random: %d random pages", inljSparse.RandPages)
	}
}

func TestFig2023Reports(t *testing.T) {
	pts, _, err := Fig9("SCI_1M", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	est, real := Fig2023(pts)
	if len(est.Rows) != len(pts) || len(real.Rows) != len(pts) {
		t.Fatal("report row counts wrong")
	}
	est.Print(io.Discard)
	real.Print(io.Discard)
}

func TestPhysStoreCheckoutMatchesVersions(t *testing.T) {
	_, datasets, err := Table2([]string{"SCI_1M"}, 0.002, 42)
	if err != nil {
		t.Fatal(err)
	}
	d := datasets[0]
	b := d.Bipartite()
	ps, err := BuildPhysStore(d, partition.NewSinglePartition(b))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range b.Versions()[:10] {
		_, n, err := ps.Checkout(v, engine.HashJoin)
		if err != nil {
			t.Fatal(err)
		}
		if n != len(b.Records(v)) {
			t.Fatalf("v%d: %d rows, want %d", v, n, len(b.Records(v)))
		}
	}
}
