package experiments

import (
	"fmt"
	"time"

	"orpheusdb/internal/benchgen"
	"orpheusdb/internal/partition"
)

// OnlinePoint samples the checkout-cost trajectory of Figure 14a/15a.
type OnlinePoint struct {
	Commit   int
	Cavg     float64 // current checkout cost, records
	BestCavg float64 // C*avg from LYRESPLIT
}

// OnlineRun is the outcome of streaming one dataset through the online
// maintainer with one (γ, µ) setting.
type OnlineRun struct {
	Dataset    string
	Gamma      float64
	Mu         float64
	Naive      bool
	Trajectory []OnlinePoint
	Migrations []MigrationTiming
}

// MigrationTiming pairs a migration event with its measured physical time.
type MigrationTiming struct {
	AtCommit    int
	PlanRecords int64
	Time        time.Duration
}

// Fig1415Config parameterizes the online experiment.
type Fig1415Config struct {
	Versions     int // streamed commits (the paper streams 10,000)
	OpsPerCommit int
	Branches     int
	Seed         int64
	SampleEvery  int
	Mus          []float64
	MeasureTime  bool // replay migrations physically to time them
}

// DefaultFig1415Config returns laptop-scale defaults.
func DefaultFig1415Config() Fig1415Config {
	return Fig1415Config{
		Versions:     1500,
		OpsPerCommit: 50,
		Branches:     150,
		Seed:         42,
		SampleEvery:  25,
		Mus:          []float64{1.05, 1.2, 1.5, 2, 2.5},
		MeasureTime:  true,
	}
}

// Fig1415 reproduces Figures 14 and 15 for one γ: versions stream in, online
// maintenance places them, LYRESPLIT tracks the best cost, and migrations
// trigger at the tolerance factor µ. For each µ, intelligent migration is
// timed physically; µ = Mus[0] is additionally run with the naive
// rebuild-from-scratch engine.
func Fig1415(gammaFactor float64, cfg Fig1415Config) ([]OnlineRun, []*Report, error) {
	d := benchgen.Generate(benchgen.Config{
		Workload:      benchgen.SCI,
		Name:          fmt.Sprintf("SCI_stream_%dv", cfg.Versions),
		TargetRecords: int64(cfg.Versions) * int64(cfg.OpsPerCommit),
		Branches:      cfg.Branches,
		OpsPerCommit:  cfg.OpsPerCommit,
		Seed:          cfg.Seed,
	})
	var runs []OnlineRun
	for i, mu := range cfg.Mus {
		run, err := onlineRun(d, gammaFactor, mu, false, cfg)
		if err != nil {
			return nil, nil, err
		}
		runs = append(runs, *run)
		if i == 0 {
			naive, err := onlineRun(d, gammaFactor, mu, true, cfg)
			if err != nil {
				return nil, nil, err
			}
			runs = append(runs, *naive)
		}
	}

	traj := &Report{
		Title:  fmt.Sprintf("Figure %sa: online maintenance, checkout cost trajectory (gamma=%.1f|R|)", figNo(gammaFactor), gammaFactor),
		Header: []string{"mu", "commits", "migrations", "final_Cavg", "final_C*avg", "max_ratio"},
	}
	for _, run := range runs {
		if run.Naive {
			continue
		}
		var last OnlinePoint
		maxRatio := 1.0
		for _, p := range run.Trajectory {
			last = p
			if p.BestCavg > 0 {
				if r := p.Cavg / p.BestCavg; r > maxRatio {
					maxRatio = r
				}
			}
		}
		traj.Add(run.Mu, last.Commit, len(run.Migrations),
			fmt.Sprintf("%.0f", last.Cavg), fmt.Sprintf("%.0f", last.BestCavg),
			fmt.Sprintf("%.2f", maxRatio))
	}

	mig := &Report{
		Title:  fmt.Sprintf("Figure %sb: migration time (gamma=%.1f|R|)", figNo(gammaFactor), gammaFactor),
		Header: []string{"mu", "engine", "at_commit", "plan_records", "migration_time"},
	}
	for _, run := range runs {
		eng := "intelligent"
		if run.Naive {
			eng = "naive"
		}
		for _, m := range run.Migrations {
			mig.Add(run.Mu, eng, m.AtCommit, m.PlanRecords, m.Time)
		}
	}
	return runs, []*Report{traj, mig}, nil
}

func figNo(gammaFactor float64) string {
	if gammaFactor < 1.75 {
		return "14"
	}
	return "15"
}

// onlineRun streams the dataset through one (γ, µ, engine) configuration,
// timing each triggered migration by replaying it on a physical layout.
func onlineRun(d *benchgen.Dataset, gammaFactor, mu float64, naive bool, cfg Fig1415Config) (*OnlineRun, error) {
	o := partition.NewOnline(gammaFactor, mu)
	o.UseNaiveMigration = naive
	run := &OnlineRun{Dataset: d.Config.Name, Gamma: gammaFactor, Mu: mu, Naive: naive}
	for i, c := range d.Commits {
		migratedNow, err := o.Commit(c.ID, c.Parents, c.Records)
		if err != nil {
			return nil, err
		}
		if migratedNow && cfg.MeasureTime {
			ev := o.Migrations[len(o.Migrations)-1]
			ps, err := BuildPhysStore(d, ev.Prev)
			if err != nil {
				return nil, err
			}
			dt, err := ps.ApplyMigration(ev.Next, ev.Plan)
			if err != nil {
				return nil, err
			}
			run.Migrations = append(run.Migrations, MigrationTiming{
				AtCommit:    ev.AtCommit,
				PlanRecords: ev.Plan.TotalRecords,
				Time:        dt,
			})
		} else if migratedNow {
			ev := o.Migrations[len(o.Migrations)-1]
			run.Migrations = append(run.Migrations, MigrationTiming{
				AtCommit:    ev.AtCommit,
				PlanRecords: ev.Plan.TotalRecords,
			})
		}
		if (i+1)%cfg.SampleEvery == 0 || i == len(d.Commits)-1 {
			run.Trajectory = append(run.Trajectory, OnlinePoint{
				Commit:   i + 1,
				Cavg:     o.CheckoutCost(),
				BestCavg: o.BestCheckoutCost(),
			})
		}
	}
	return run, nil
}
