package experiments

import (
	"fmt"
	"time"

	"orpheusdb/internal/benchgen"
	"orpheusdb/internal/engine"
	"orpheusdb/internal/partition"
)

// Fig1213Row is one dataset's with/without-partitioning comparison.
type Fig1213Row struct {
	Dataset          string
	CheckoutNoPart   time.Duration
	StorageNoPart    int64
	CheckoutGamma15  time.Duration
	StorageGamma15   int64
	PartsGamma15     int
	CheckoutGamma20  time.Duration
	StorageGamma20   int64
	PartsGamma20     int
	SpeedupAtGamma20 float64
}

// Fig1213 reproduces Figures 12 and 13: average checkout time and storage
// size without partitioning versus LYRESPLIT partitionings under
// γ = 1.5|R| and γ = 2|R|.
func Fig1213(names []string, cfg SweepConfig) ([]Fig1213Row, *Report, error) {
	var rows []Fig1213Row
	for _, name := range names {
		d, err := benchgen.Standard(name, cfg.Scale, cfg.Seed)
		if err != nil {
			return nil, nil, err
		}
		b := d.Bipartite()
		g := d.Graph()
		tree := g.ToTree()
		row := Fig1213Row{Dataset: d.Config.Name}

		single := partition.NewSinglePartition(b)
		ps, err := BuildPhysStore(d, single)
		if err != nil {
			return nil, nil, err
		}
		row.CheckoutNoPart, err = ps.AvgCheckoutTime(cfg.Samples, cfg.Seed, engine.HashJoin)
		if err != nil {
			return nil, nil, err
		}
		row.StorageNoPart = ps.StorageBytes()

		ls := &partition.LyreSplit{Tree: tree}
		for _, gammaFactor := range []float64{1.5, 2.0} {
			gamma := int64(gammaFactor * float64(b.NumRecords()))
			res, err := ls.Solve(gamma)
			if err != nil {
				return nil, nil, fmt.Errorf("fig12 %s gamma=%.1f: %w", name, gammaFactor, err)
			}
			p := partition.FromVersionGroups(b, res.Groups)
			ps, err := BuildPhysStore(d, p)
			if err != nil {
				return nil, nil, err
			}
			avg, err := ps.AvgCheckoutTime(cfg.Samples, cfg.Seed, engine.HashJoin)
			if err != nil {
				return nil, nil, err
			}
			if gammaFactor == 1.5 {
				row.CheckoutGamma15 = avg
				row.StorageGamma15 = ps.StorageBytes()
				row.PartsGamma15 = len(p.Parts)
			} else {
				row.CheckoutGamma20 = avg
				row.StorageGamma20 = ps.StorageBytes()
				row.PartsGamma20 = len(p.Parts)
			}
		}
		if row.CheckoutGamma20 > 0 {
			row.SpeedupAtGamma20 = float64(row.CheckoutNoPart) / float64(row.CheckoutGamma20)
		}
		rows = append(rows, row)
	}
	rep := &Report{
		Title: "Figures 12/13: checkout time and storage, with vs without partitioning",
		Header: []string{"dataset", "co_none", "S_none",
			"co_g1.5", "S_g1.5", "P_g1.5",
			"co_g2.0", "S_g2.0", "P_g2.0", "speedup@g2"},
	}
	for _, r := range rows {
		rep.Add(r.Dataset, r.CheckoutNoPart, mb(r.StorageNoPart),
			r.CheckoutGamma15, mb(r.StorageGamma15), r.PartsGamma15,
			r.CheckoutGamma20, mb(r.StorageGamma20), r.PartsGamma20,
			fmt.Sprintf("%.1fx", r.SpeedupAtGamma20))
	}
	return rows, rep, nil
}
