package core

import (
	"testing"

	"orpheusdb/internal/engine"
	"orpheusdb/internal/vgraph"
)

// Section 3.3's worked example: v1 has four attributes; v2 widens
// cooccurrence to decimal; v3 adds coexpression; the merge v4 carries the
// union with the more general types.
func TestSchemaEvolutionPaperExample(t *testing.T) {
	for _, kind := range allModels() {
		t.Run(string(kind), func(t *testing.T) {
			db := engine.NewDB()
			cols := []engine.Column{
				{Name: "protein1", Type: engine.KindString},
				{Name: "protein2", Type: engine.KindString},
				{Name: "neighborhood", Type: engine.KindInt},
				{Name: "cooccurrence", Type: engine.KindInt},
			}
			c, err := Init(db, "d", cols, InitOptions{Model: kind, PrimaryKey: []string{"protein1", "protein2"}})
			if err != nil {
				t.Fatal(err)
			}
			row := func(p1 string, n int64, co engine.Value, extra ...engine.Value) engine.Row {
				r := engine.Row{engine.StringValue(p1), engine.StringValue("X"), engine.IntValue(n), co}
				return append(r, extra...)
			}
			v1, err := c.Commit([]engine.Row{row("a", 1, engine.IntValue(10))}, nil, "v1")
			if err != nil {
				t.Fatal(err)
			}

			// v2: cooccurrence becomes decimal.
			colsV2 := append([]engine.Column(nil), cols...)
			colsV2[3].Type = engine.KindFloat
			v2, err := c.CommitWithSchema(colsV2, []engine.Row{
				row("a", 1, engine.FloatValue(10.5)),
			}, []vgraph.VersionID{v1}, "widen cooccurrence")
			if err != nil {
				t.Fatal(err)
			}
			if c.Columns()[3].Type != engine.KindFloat {
				t.Fatal("pool column not widened")
			}

			// v3 (from v1): adds coexpression.
			colsV3 := append(append([]engine.Column(nil), cols...),
				engine.Column{Name: "coexpression", Type: engine.KindInt})
			v3, err := c.CommitWithSchema(colsV3, []engine.Row{
				row("a", 1, engine.IntValue(10), engine.IntValue(7)),
			}, []vgraph.VersionID{v1}, "add coexpression")
			if err != nil {
				t.Fatal(err)
			}
			if len(c.Columns()) != 5 {
				t.Fatalf("pool has %d columns, want 5", len(c.Columns()))
			}

			// v1's visible schema has 4 attributes; v3's has 5.
			c1, _, err := c.VersionColumns(v1)
			if err != nil {
				t.Fatal(err)
			}
			if len(c1) != 4 {
				t.Fatalf("v1 visible schema has %d attrs", len(c1))
			}
			c3, _, err := c.VersionColumns(v3)
			if err != nil {
				t.Fatal(err)
			}
			if len(c3) != 5 || c3[4].Name != "coexpression" {
				t.Fatalf("v3 visible schema wrong: %v", c3)
			}

			// Old records read NULL for the new attribute.
			colsOut, rows, err := c.CheckoutProjected(v1)
			if err != nil {
				t.Fatal(err)
			}
			if len(colsOut) != 4 || len(rows) != 1 || len(rows[0]) != 4 {
				t.Fatalf("projected v1: %v %v", colsOut, rows)
			}

			// Merge carries the union of attributes.
			merged, err := c.Checkout(v2, v3)
			if err != nil {
				t.Fatal(err)
			}
			v4, err := c.Commit(merged, []vgraph.VersionID{v2, v3}, "merge")
			if err != nil {
				t.Fatal(err)
			}
			mCols, mRows, err := c.CheckoutProjected(v2, v3)
			if err != nil {
				t.Fatal(err)
			}
			if len(mCols) != 5 {
				t.Fatalf("merged projection has %d attrs", len(mCols))
			}
			_ = mRows
			_ = v4

			// Attribute deletions are metadata-only: committing with fewer
			// columns keeps the pool intact.
			colsV5 := colsV3[:3] // drop cooccurrence and coexpression
			v5, err := c.CommitWithSchema(colsV5, []engine.Row{
				{engine.StringValue("b"), engine.StringValue("X"), engine.IntValue(2)},
			}, []vgraph.VersionID{v3}, "drop attrs")
			if err != nil {
				t.Fatal(err)
			}
			c5, _, err := c.VersionColumns(v5)
			if err != nil {
				t.Fatal(err)
			}
			if len(c5) != 3 {
				t.Fatalf("v5 visible schema has %d attrs", len(c5))
			}
			if len(c.Columns()) != 5 {
				t.Fatal("pool must keep dropped attributes")
			}
		})
	}
}

func TestSchemaEvolutionSurvivesReload(t *testing.T) {
	db := engine.NewDB()
	cols := []engine.Column{
		{Name: "k", Type: engine.KindInt},
		{Name: "v", Type: engine.KindInt},
	}
	c, err := Init(db, "d", cols, InitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	v1, err := c.Commit([]engine.Row{{engine.IntValue(1), engine.IntValue(2)}}, nil, "v1")
	if err != nil {
		t.Fatal(err)
	}
	wide := []engine.Column{
		{Name: "k", Type: engine.KindInt},
		{Name: "v", Type: engine.KindFloat},
		{Name: "w", Type: engine.KindString},
	}
	v2, err := c.CommitWithSchema(wide, []engine.Row{
		{engine.IntValue(1), engine.FloatValue(2.5), engine.StringValue("x")},
	}, []vgraph.VersionID{v1}, "evolve")
	if err != nil {
		t.Fatal(err)
	}

	path := t.TempDir() + "/s.gob"
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	db2, err := engine.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Open(db2, "d")
	if err != nil {
		t.Fatal(err)
	}
	if len(c2.Columns()) != 3 || c2.Columns()[1].Type != engine.KindFloat {
		t.Fatalf("pool schema lost on reload: %v", c2.Columns())
	}
	rows, err := c2.Checkout(v2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][2].S != "x" {
		t.Fatalf("reloaded rows: %v", rows)
	}
	// The attribute table has entries for both v (int) and v (decimal).
	if c2.am.find("v", engine.KindInt) == 0 || c2.am.find("v", engine.KindFloat) == 0 {
		t.Fatal("attribute table lost type history")
	}
}

func TestCommitWithSchemaValidation(t *testing.T) {
	db := engine.NewDB()
	c, err := Init(db, "d", []engine.Column{{Name: "k", Type: engine.KindInt}}, InitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CommitWithSchema([]engine.Column{{Name: "k", Type: engine.KindInt}},
		[]engine.Row{{engine.IntValue(1), engine.IntValue(2)}}, nil, "arity"); err == nil {
		t.Fatal("row/schema arity mismatch accepted")
	}
}
