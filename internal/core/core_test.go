package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"orpheusdb/internal/engine"
	"orpheusdb/internal/vgraph"
)

func protCols() []engine.Column {
	return []engine.Column{
		{Name: "protein1", Type: engine.KindString},
		{Name: "protein2", Type: engine.KindString},
		{Name: "neighborhood", Type: engine.KindInt},
		{Name: "cooccurrence", Type: engine.KindInt},
		{Name: "coexpression", Type: engine.KindInt},
	}
}

func protRow(p1, p2 string, n, co, ce int64) engine.Row {
	return engine.Row{
		engine.StringValue(p1), engine.StringValue(p2),
		engine.IntValue(n), engine.IntValue(co), engine.IntValue(ce),
	}
}

func allModels() []ModelKind {
	return append(AllModelKinds(), PartitionedRlistModel)
}

func sortedRids(rs []vgraph.RecordID) []vgraph.RecordID {
	out := append([]vgraph.RecordID(nil), rs...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TestModelSemantics runs the paper's Figure 1 scenario through every data
// model: branch, merge with primary-key precedence, record identity sharing,
// and diff.
func TestModelSemantics(t *testing.T) {
	for _, kind := range allModels() {
		t.Run(string(kind), func(t *testing.T) {
			db := engine.NewDB()
			c, err := Init(db, "prot", protCols(), InitOptions{
				Model:      kind,
				PrimaryKey: []string{"protein1", "protein2"},
			})
			if err != nil {
				t.Fatal(err)
			}
			v1, err := c.Commit([]engine.Row{
				protRow("A", "B", 0, 53, 0),
				protRow("A", "C", 0, 87, 0),
				protRow("D", "E", 426, 0, 164),
			}, nil, "root")
			if err != nil {
				t.Fatal(err)
			}
			v2, err := c.Commit([]engine.Row{
				protRow("A", "B", 0, 53, 83), // update
				protRow("A", "C", 0, 87, 0),
				protRow("D", "E", 426, 0, 164),
				protRow("F", "G", 0, 227, 975), // insert
			}, []vgraph.VersionID{v1}, "branch 2")
			if err != nil {
				t.Fatal(err)
			}
			v3, err := c.Commit([]engine.Row{
				protRow("A", "C", 0, 87, 0), // A-B deleted
				protRow("D", "E", 426, 0, 164),
				protRow("H", "I", 225, 0, 73),
			}, []vgraph.VersionID{v1}, "branch 3")
			if err != nil {
				t.Fatal(err)
			}

			got, err := c.Checkout(v2)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != 4 {
				t.Fatalf("checkout v2: %d rows", len(got))
			}

			// Multi-version checkout with precedence: A-B comes from v2.
			merged, err := c.Checkout(v2, v3)
			if err != nil {
				t.Fatal(err)
			}
			if len(merged) != 5 {
				t.Fatalf("merged checkout: %d rows, want 5", len(merged))
			}
			for _, r := range merged {
				if r[0].S == "A" && r[1].S == "B" && r[4].I != 83 {
					t.Fatal("precedence: v2's A-B should win")
				}
			}
			v4, err := c.Commit(merged, []vgraph.VersionID{v2, v3}, "merge")
			if err != nil {
				t.Fatal(err)
			}

			// Record identity: A-C and D-E shared across v1 and v4.
			rl1, err := c.Rlist(v1)
			if err != nil {
				t.Fatal(err)
			}
			rl4, err := c.Rlist(v4)
			if err != nil {
				t.Fatal(err)
			}
			if common := vgraph.IntersectSize(sortedRids(rl1), sortedRids(rl4)); common != 2 {
				t.Fatalf("v1∩v4 rids = %d, want 2", common)
			}

			onlyA, onlyB, err := c.Diff(v2, v3)
			if err != nil {
				t.Fatal(err)
			}
			if len(onlyA) != 2 || len(onlyB) != 1 {
				t.Fatalf("diff: %d, %d; want 2, 1", len(onlyA), len(onlyB))
			}
			if c.StorageBytes() <= 0 {
				t.Fatal("zero storage")
			}

			// Version graph structure.
			g, err := c.VersionGraph()
			if err != nil {
				t.Fatal(err)
			}
			if g.Len() != 4 || g.IsTree() {
				t.Fatal("graph shape wrong")
			}
			anc, err := c.Ancestors(v4)
			if err != nil || len(anc) != 3 {
				t.Fatalf("ancestors: %v, %v", anc, err)
			}
			desc, err := c.Descendants(v1)
			if err != nil || len(desc) != 3 {
				t.Fatalf("descendants: %v, %v", desc, err)
			}
		})
	}
}

// TestNoCrossVersionDiff verifies the implementation rule of Section 2.2:
// a record deleted and re-added gets a fresh rid.
func TestNoCrossVersionDiff(t *testing.T) {
	db := engine.NewDB()
	c, err := Init(db, "d", protCols(), InitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	row := protRow("A", "B", 1, 2, 3)
	v1, err := c.Commit([]engine.Row{row}, nil, "add")
	if err != nil {
		t.Fatal(err)
	}
	v2, err := c.Commit(nil, []vgraph.VersionID{v1}, "delete")
	if err != nil {
		t.Fatal(err)
	}
	v3, err := c.Commit([]engine.Row{row}, []vgraph.VersionID{v2}, "re-add")
	if err != nil {
		t.Fatal(err)
	}
	rl1, _ := c.Rlist(v1)
	rl3, _ := c.Rlist(v3)
	if rl1[0] == rl3[0] {
		t.Fatal("re-added record must get a new rid (no cross-version diff)")
	}
	// But a record surviving from the direct parent keeps its rid.
	v4, err := c.Commit([]engine.Row{row}, []vgraph.VersionID{v3}, "keep")
	if err != nil {
		t.Fatal(err)
	}
	rl4, _ := c.Rlist(v4)
	if rl3[0] != rl4[0] {
		t.Fatal("unchanged record must keep its rid")
	}
}

func TestPrimaryKeyEnforcedPerVersion(t *testing.T) {
	db := engine.NewDB()
	c, err := Init(db, "d", protCols(), InitOptions{PrimaryKey: []string{"protein1", "protein2"}})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Commit([]engine.Row{
		protRow("A", "B", 1, 2, 3),
		protRow("A", "B", 9, 9, 9),
	}, nil, "dup")
	if err == nil {
		t.Fatal("duplicate key within a version accepted")
	}
	// Across versions the same key with different payloads is fine.
	v1, err := c.Commit([]engine.Row{protRow("A", "B", 1, 2, 3)}, nil, "v1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Commit([]engine.Row{protRow("A", "B", 9, 9, 9)}, []vgraph.VersionID{v1}, "v2"); err != nil {
		t.Fatal(err)
	}
}

func TestCommitValidation(t *testing.T) {
	db := engine.NewDB()
	c, err := Init(db, "d", protCols(), InitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Commit([]engine.Row{{engine.IntValue(1)}}, nil, "short"); err == nil {
		t.Fatal("short row accepted")
	}
	if _, err := c.Commit(nil, []vgraph.VersionID{42}, "bad parent"); err == nil {
		t.Fatal("unknown parent accepted")
	}
	if _, err := c.Checkout(); err == nil {
		t.Fatal("empty checkout accepted")
	}
	if _, err := c.Checkout(42); err == nil {
		t.Fatal("unknown version accepted")
	}
}

func TestInitValidation(t *testing.T) {
	db := engine.NewDB()
	if _, err := Init(db, "d", protCols(), InitOptions{PrimaryKey: []string{"nope"}}); err == nil {
		t.Fatal("bad pk accepted")
	}
	if _, err := Init(db, "d", protCols(), InitOptions{Model: "martian"}); err == nil {
		t.Fatal("bad model accepted")
	}
	if _, err := Init(db, "d", protCols(), InitOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := Init(db, "d", protCols(), InitOptions{}); err == nil {
		t.Fatal("duplicate CVD accepted")
	}
	if names := ListCVDs(db); len(names) != 1 || names[0] != "d" {
		t.Fatalf("ListCVDs: %v", names)
	}
}

func TestOpenRoundTripAllModels(t *testing.T) {
	for _, kind := range allModels() {
		db := engine.NewDB()
		c, err := Init(db, "d", protCols(), InitOptions{Model: kind, PrimaryKey: []string{"protein1", "protein2"}})
		if err != nil {
			t.Fatal(err)
		}
		v1, err := c.Commit([]engine.Row{protRow("A", "B", 1, 2, 3)}, nil, "v1")
		if err != nil {
			t.Fatal(err)
		}
		v2, err := c.Commit([]engine.Row{protRow("A", "B", 1, 2, 3), protRow("C", "D", 4, 5, 6)},
			[]vgraph.VersionID{v1}, "v2")
		if err != nil {
			t.Fatal(err)
		}

		path := t.TempDir() + "/s.gob"
		if err := db.Save(path); err != nil {
			t.Fatalf("%s: save: %v", kind, err)
		}
		db2, err := engine.Load(path)
		if err != nil {
			t.Fatal(err)
		}
		c2, err := Open(db2, "d")
		if err != nil {
			t.Fatalf("%s: open: %v", kind, err)
		}
		if c2.Model().Kind() != kind {
			t.Fatalf("%s: model lost", kind)
		}
		rows, err := c2.Checkout(v2)
		if err != nil {
			t.Fatalf("%s: checkout after reload: %v", kind, err)
		}
		if len(rows) != 2 {
			t.Fatalf("%s: %d rows", kind, len(rows))
		}
		// Committing after reload continues rid/vid allocation correctly.
		v3, err := c2.Commit([]engine.Row{protRow("E", "F", 7, 8, 9)}, []vgraph.VersionID{v2}, "v3")
		if err != nil {
			t.Fatalf("%s: commit after reload: %v", kind, err)
		}
		if v3 != v2+1 {
			t.Fatalf("%s: vid sequence broken: %d", kind, v3)
		}
		if _, err := Open(db2, "missing"); err == nil {
			t.Fatal("opening missing CVD should fail")
		}
	}
}

func TestDropRemovesEverything(t *testing.T) {
	for _, kind := range allModels() {
		db := engine.NewDB()
		c, err := Init(db, "d", protCols(), InitOptions{Model: kind})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Commit([]engine.Row{protRow("A", "B", 1, 2, 3)}, nil, "v1"); err != nil {
			t.Fatal(err)
		}
		if err := c.Drop(); err != nil {
			t.Fatalf("%s: drop: %v", kind, err)
		}
		if names := ListCVDs(db); len(names) != 0 {
			t.Fatalf("%s: catalog not cleaned: %v", kind, names)
		}
		for _, n := range db.TableNames() {
			if n != catalogTable {
				t.Fatalf("%s: leftover table %s", kind, n)
			}
		}
	}
}

// TestRandomHistoriesAgreeWithReference drives every model through random
// commit/checkout sequences and compares against a trivial reference that
// stores full row sets per version.
func TestRandomHistoriesAgreeWithReference(t *testing.T) {
	for _, kind := range allModels() {
		rng := rand.New(rand.NewSource(99))
		db := engine.NewDB()
		c, err := Init(db, "d", protCols(), InitOptions{Model: kind, PrimaryKey: []string{"protein1", "protein2"}})
		if err != nil {
			t.Fatal(err)
		}
		ref := map[vgraph.VersionID]map[string]bool{}
		var versions []vgraph.VersionID
		rowsOf := map[vgraph.VersionID][]engine.Row{}

		key := func(r engine.Row) string { return engine.EncodeKey(r...) }
		nextPair := 0
		mkRow := func() engine.Row {
			nextPair++
			return protRow(fmt.Sprintf("P%04d", nextPair), "Q", rng.Int63n(100), rng.Int63n(100), rng.Int63n(100))
		}

		// Root commit.
		var rows []engine.Row
		for i := 0; i < 10; i++ {
			rows = append(rows, mkRow())
		}
		v, err := c.Commit(rows, nil, "root")
		if err != nil {
			t.Fatal(err)
		}
		versions = append(versions, v)
		rowsOf[v] = rows
		ref[v] = map[string]bool{}
		for _, r := range rows {
			ref[v][key(r)] = true
		}

		for step := 0; step < 25; step++ {
			parent := versions[rng.Intn(len(versions))]
			cur := append([]engine.Row(nil), rowsOf[parent]...)
			// Random edits.
			for k := 0; k < 3; k++ {
				switch rng.Intn(3) {
				case 0:
					cur = append(cur, mkRow())
				case 1:
					if len(cur) > 1 {
						i := rng.Intn(len(cur))
						cur = append(cur[:i], cur[i+1:]...)
					}
				case 2:
					if len(cur) > 0 {
						i := rng.Intn(len(cur))
						nr := engine.CloneRow(cur[i])
						nr[4] = engine.IntValue(rng.Int63n(1000) + 1000)
						cur[i] = nr
					}
				}
			}
			v, err := c.Commit(cur, []vgraph.VersionID{parent}, "step")
			if err != nil {
				t.Fatalf("%s step %d: %v", kind, step, err)
			}
			versions = append(versions, v)
			rowsOf[v] = cur
			ref[v] = map[string]bool{}
			for _, r := range cur {
				ref[v][key(r)] = true
			}
		}

		// Every version checks out to exactly its reference row set.
		for _, v := range versions {
			got, err := c.Checkout(v)
			if err != nil {
				t.Fatalf("%s: checkout %d: %v", kind, v, err)
			}
			if len(got) != len(ref[v]) {
				t.Fatalf("%s: v%d has %d rows, want %d", kind, v, len(got), len(ref[v]))
			}
			for _, r := range got {
				if !ref[v][key(r)] {
					t.Fatalf("%s: v%d contains unexpected row %v", kind, v, r)
				}
			}
		}
	}
}

func TestTranslationsMatchTable1(t *testing.T) {
	co := CheckoutSQL(SplitByRlistModel, "cvd", "tp", 3)
	want := "SELECT * INTO tp FROM cvd_rl_data, (SELECT unnest(rlist) AS rid_tmp FROM cvd_rl_version WHERE vid = 3) AS tmp WHERE rid = rid_tmp;"
	if co != want {
		t.Fatalf("rlist checkout SQL:\n%s\nwant:\n%s", co, want)
	}
	cm := CommitSQL(CombinedTableModel, "cvd", "tp", 4)
	if cm != "UPDATE cvd_combined SET vlist = vlist + 4 WHERE rid IN (SELECT rid FROM tp);" {
		t.Fatalf("combined commit SQL: %s", cm)
	}
	for _, kind := range allModels() {
		if CheckoutSQL(kind, "c", "t", 1) == "" || CommitSQL(kind, "c", "t", 2) == "" {
			t.Fatalf("%s: empty translation", kind)
		}
	}
	if CheckoutSQL("nope", "c", "t", 1) != "" {
		t.Fatal("unknown model should yield empty translation")
	}
}

func TestHashRowDistinguishesRows(t *testing.T) {
	a := HashRow(protRow("A", "B", 1, 2, 3))
	b := HashRow(protRow("A", "B", 1, 2, 4))
	c := HashRow(protRow("A", "B", 1, 2, 3))
	if a == b {
		t.Fatal("different rows collide")
	}
	if a != c {
		t.Fatal("equal rows must hash equally")
	}
}

func TestCheckoutUnderAllJoinMethods(t *testing.T) {
	// The split models honor the session join_method setting (Appendix
	// D.1); results must be identical across hash, merge, and
	// index-nested-loop joins.
	for _, kind := range []ModelKind{SplitByVlistModel, SplitByRlistModel, PartitionedRlistModel} {
		db := engine.NewDB()
		c, err := Init(db, "d", protCols(), InitOptions{Model: kind})
		if err != nil {
			t.Fatal(err)
		}
		var rows []engine.Row
		for i := 0; i < 300; i++ {
			rows = append(rows, protRow(fmt.Sprintf("P%03d", i), "Q", int64(i), 0, 0))
		}
		v1, err := c.Commit(rows, nil, "root")
		if err != nil {
			t.Fatal(err)
		}
		v2, err := c.Commit(rows[:150], []vgraph.VersionID{v1}, "half")
		if err != nil {
			t.Fatal(err)
		}
		for _, method := range []string{"hash", "merge", "inlj"} {
			db.SetSetting("join_method", method)
			got, err := c.Checkout(v2)
			if err != nil {
				t.Fatalf("%s/%s: %v", kind, method, err)
			}
			if len(got) != 150 {
				t.Fatalf("%s/%s: %d rows", kind, method, len(got))
			}
		}
	}
}
