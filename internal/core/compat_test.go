package core

import (
	"testing"

	"orpheusdb/internal/engine"
	"orpheusdb/internal/vgraph"
)

// rewriteMembershipAsArrays converts every membership cell of table name
// back to the pre-bitmap int[] representation, simulating a snapshot written
// before the bitmap refactor.
func rewriteMembershipAsArrays(t *testing.T, db *engine.DB, name string, col int) {
	t.Helper()
	tab := db.Table(name)
	if tab == nil {
		t.Fatalf("no table %s", name)
	}
	type upd struct {
		id  engine.RowID
		row engine.Row
	}
	var updates []upd
	tab.Scan(func(id engine.RowID, row engine.Row) bool {
		if row[col].K == engine.KindBitmap {
			nr := engine.CloneRow(row)
			nr[col] = engine.ArrayValue(row[col].B.ToSlice())
			updates = append(updates, upd{id, nr})
		}
		return true
	})
	for _, u := range updates {
		if err := tab.Update(u.id, u.row); err != nil {
			t.Fatal(err)
		}
	}
}

// TestPreBitmapSnapshotCompat verifies that stores written before the bitmap
// membership representation (rlists/vlists as int[]) keep reading and
// committing correctly: every read site widens arrays to bitmaps.
func TestPreBitmapSnapshotCompat(t *testing.T) {
	t.Run("split-by-rlist", func(t *testing.T) {
		db := engine.NewDB()
		c, err := Init(db, "d", protCols(), InitOptions{Model: SplitByRlistModel})
		if err != nil {
			t.Fatal(err)
		}
		v1, err := c.Commit([]engine.Row{
			protRow("A", "B", 1, 2, 3),
			protRow("C", "D", 4, 5, 6),
		}, nil, "root")
		if err != nil {
			t.Fatal(err)
		}
		rewriteMembershipAsArrays(t, db, "d_rl_version", 1)
		rewriteMembershipAsArrays(t, db, "d__rlists", 1)

		re, err := Open(db, "d")
		if err != nil {
			t.Fatal(err)
		}
		rows, err := re.Checkout(v1)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 2 {
			t.Fatalf("checkout after array rewrite: %d rows, want 2", len(rows))
		}
		// The model-level reader (used by SQL translation) must widen too.
		m := re.Model().(*splitByRlist)
		rl, err := m.Rlist(v1)
		if err != nil {
			t.Fatal(err)
		}
		if len(rl) != 2 {
			t.Fatalf("model Rlist after array rewrite: %v", rl)
		}
	})

	t.Run("split-by-vlist", func(t *testing.T) {
		db := engine.NewDB()
		c, err := Init(db, "d", protCols(), InitOptions{Model: SplitByVlistModel})
		if err != nil {
			t.Fatal(err)
		}
		v1, err := c.Commit([]engine.Row{
			protRow("A", "B", 1, 2, 3),
			protRow("C", "D", 4, 5, 6),
		}, nil, "root")
		if err != nil {
			t.Fatal(err)
		}
		rewriteMembershipAsArrays(t, db, "d_vl_version", 1)
		rewriteMembershipAsArrays(t, db, "d__rlists", 1)

		re, err := Open(db, "d")
		if err != nil {
			t.Fatal(err)
		}
		// Committing on top of the legacy vlists must preserve the old
		// membership, not clobber it.
		v2, err := re.Commit([]engine.Row{
			protRow("A", "B", 1, 2, 3),
			protRow("E", "F", 7, 8, 9),
		}, []vgraph.VersionID{v1}, "child")
		if err != nil {
			t.Fatal(err)
		}
		rows, err := re.Checkout(v1)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 2 {
			t.Fatalf("v1 checkout after legacy commit: %d rows, want 2", len(rows))
		}
		rows, err = re.Checkout(v2)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 2 {
			t.Fatalf("v2 checkout: %d rows, want 2", len(rows))
		}
	})

	t.Run("partitioned-rlist", func(t *testing.T) {
		db := engine.NewDB()
		c, err := Init(db, "d", protCols(), InitOptions{Model: PartitionedRlistModel})
		if err != nil {
			t.Fatal(err)
		}
		v1, err := c.Commit([]engine.Row{
			protRow("A", "B", 1, 2, 3),
			protRow("C", "D", 4, 5, 6),
		}, nil, "root")
		if err != nil {
			t.Fatal(err)
		}
		rewriteMembershipAsArrays(t, db, "d_part0_version", 1)
		rewriteMembershipAsArrays(t, db, "d__rlists", 1)

		re, err := Open(db, "d")
		if err != nil {
			t.Fatal(err)
		}
		rows, err := re.Checkout(v1)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 2 {
			t.Fatalf("partitioned checkout after array rewrite: %d rows, want 2", len(rows))
		}
	})
}
