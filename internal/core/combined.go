package core

import (
	"orpheusdb/internal/engine"
	"orpheusdb/internal/vgraph"
)

// combinedTable stores the CVD as a single table whose vlist array column
// lists every version each record belongs to (Approach 1, Figure 1b).
// Checkout is a full scan with an array-containment filter; commit must
// append the new version id to the vlist of every record in the committed
// version — the expensive operation Figure 3b exposes.
type combinedTable struct {
	db  *engine.DB
	cvd string
}

func (m *combinedTable) Kind() ModelKind { return CombinedTableModel }

func (m *combinedTable) tableName() string { return m.cvd + "_combined" }

func (m *combinedTable) Init(cols []engine.Column) error {
	all := dataColumns(cols)
	all = append(all, engine.Column{Name: "vlist", Type: engine.KindIntArray})
	t, err := m.db.CreateTable(m.tableName(), all)
	if err != nil {
		return err
	}
	return t.CreateIndex("rid")
}

func (m *combinedTable) Commit(vid vgraph.VersionID, _ []vgraph.VersionID, all []Record, fresh []Record) error {
	t, err := m.db.MustTable(m.tableName())
	if err != nil {
		return err
	}
	freshSet := make(map[vgraph.RecordID]bool, len(fresh))
	for _, r := range fresh {
		freshSet[r.RID] = true
	}
	// UPDATE T SET vlist = vlist + vj WHERE rid IN (SELECT rid FROM T'):
	// append vid to every existing record present in the committed version.
	inVersion := make(map[int64]bool, len(all))
	for _, r := range all {
		if !freshSet[r.RID] {
			inVersion[int64(r.RID)] = true
		}
	}
	vlistCol := t.ColIndex("vlist")
	type upd struct {
		id  engine.RowID
		row engine.Row
	}
	var updates []upd
	t.Scan(func(id engine.RowID, row engine.Row) bool {
		if inVersion[row[0].I] {
			nr := engine.CloneRow(row)
			nr[vlistCol] = engine.ArrayValue(engine.ArrayAppend(row[vlistCol].A, int64(vid)))
			updates = append(updates, upd{id: id, row: nr})
		}
		return true
	})
	for _, u := range updates {
		if err := t.Update(u.id, u.row); err != nil {
			return err
		}
	}
	// New records are inserted with vlist = {vid}.
	for _, r := range fresh {
		row := rowWithRID(r)
		row = append(row, engine.ArrayValue([]int64{int64(vid)}))
		if _, err := t.Insert(row); err != nil {
			return err
		}
	}
	return nil
}

func (m *combinedTable) Checkout(vid vgraph.VersionID) ([]Record, error) {
	t, err := m.db.MustTable(m.tableName())
	if err != nil {
		return nil, err
	}
	// SELECT * INTO T' FROM T WHERE ARRAY[vid] <@ vlist.
	vlistCol := t.ColIndex("vlist")
	want := []int64{int64(vid)}
	var out []Record
	t.Scan(func(_ engine.RowID, row engine.Row) bool {
		if engine.ArrayContains(want, row[vlistCol].A) {
			// Full slice expression: without the cap, the record's spare
			// capacity would reach into the live row's vlist cell, and a
			// caller appending to the returned row would overwrite it.
			out = append(out, recordFromRow(row[:vlistCol:vlistCol]))
		}
		return true
	})
	return out, nil
}

func (m *combinedTable) StorageBytes() int64 {
	if t := m.db.Table(m.tableName()); t != nil {
		return t.SizeBytes()
	}
	return 0
}

func (m *combinedTable) AddColumn(c engine.Column) error {
	t, err := m.db.MustTable(m.tableName())
	if err != nil {
		return err
	}
	// The vlist column stays last so checkout can slice it off; add the new
	// attribute just before it by rebuilding rows.
	if err := t.AddColumn(c); err != nil {
		return err
	}
	return m.moveVlistLast(t)
}

// moveVlistLast rewrites rows so the vlist column is the final one after an
// AddColumn appended a data attribute behind it.
func (m *combinedTable) moveVlistLast(t *engine.Table) error {
	cols := t.Columns()
	vl := t.ColIndex("vlist")
	last := len(cols) - 1
	if vl == last {
		return nil
	}
	// Swap column metadata is not supported by the engine; instead recreate
	// the table with the desired order.
	newCols := make([]engine.Column, 0, len(cols))
	for i, c := range cols {
		if i != vl {
			newCols = append(newCols, c)
		}
	}
	newCols = append(newCols, cols[vl])
	tmp := t.Name() + "__tmp"
	nt, err := m.db.CreateTable(tmp, newCols)
	if err != nil {
		return err
	}
	var insertErr error
	t.Scan(func(_ engine.RowID, row engine.Row) bool {
		nr := make(engine.Row, 0, len(row))
		for i, v := range row {
			if i != vl {
				nr = append(nr, v)
			}
		}
		nr = append(nr, row[vl])
		if _, err := nt.Insert(nr); err != nil {
			insertErr = err
			return false
		}
		return true
	})
	if insertErr != nil {
		return insertErr
	}
	if err := nt.CreateIndex("rid"); err != nil {
		return err
	}
	if err := m.db.DropTable(t.Name()); err != nil {
		return err
	}
	return m.db.RenameTable(tmp, m.tableName())
}

func (m *combinedTable) AlterColumnType(name string, k engine.Kind) error {
	t, err := m.db.MustTable(m.tableName())
	if err != nil {
		return err
	}
	return t.AlterColumnType(name, k)
}

func (m *combinedTable) Drop() error {
	if m.db.HasTable(m.tableName()) {
		return m.db.DropTable(m.tableName())
	}
	return nil
}

var _ DataModel = (*combinedTable)(nil)
