package core

import (
	"fmt"
	"time"

	"orpheusdb/internal/engine"
	"orpheusdb/internal/vgraph"
)

// The staging area (Section 2.3): checked-out versions materialize as regular
// tables (or CSV files) users manipulate directly; the provenance manager
// remembers which versions each staged artifact derives from, and the access
// controller restricts staged tables to the user who checked them out.

// provenanceTable is the global registry of staged tables/files.
const provenanceTable = "__orpheus_staging"

// usersTable is the global user registry.
const usersTable = "__orpheus_users"

// Provenance describes one staged artifact.
type Provenance struct {
	Name      string // table name or file path
	CVD       string
	Parents   []vgraph.VersionID
	User      string
	CreatedAt time.Time
	IsFile    bool
}

// ensureStaging creates the staging registry if missing.
func ensureStaging(db *engine.DB) (*engine.Table, error) {
	if t := db.Table(provenanceTable); t != nil {
		return t, nil
	}
	return db.CreateTable(provenanceTable, []engine.Column{
		{Name: "name", Type: engine.KindString},
		{Name: "cvd", Type: engine.KindString},
		{Name: "parents", Type: engine.KindIntArray},
		{Name: "usr", Type: engine.KindString},
		{Name: "created_at", Type: engine.KindInt},
		{Name: "is_file", Type: engine.KindBool},
	})
}

// RecordProvenance registers a staged artifact.
func RecordProvenance(db *engine.DB, p Provenance) error {
	t, err := ensureStaging(db)
	if err != nil {
		return err
	}
	parents := make([]int64, len(p.Parents))
	for i, v := range p.Parents {
		parents[i] = int64(v)
	}
	_, err = t.Insert(engine.Row{
		engine.StringValue(p.Name),
		engine.StringValue(p.CVD),
		engine.ArrayValue(parents),
		engine.StringValue(p.User),
		engine.IntValue(p.CreatedAt.UnixNano()),
		engine.BoolValue(p.IsFile),
	})
	return err
}

// LookupProvenance finds the staged artifact by name.
func LookupProvenance(db *engine.DB, name string) (*Provenance, error) {
	t := db.Table(provenanceTable)
	if t == nil {
		return nil, fmt.Errorf("core: %q is not a staged table or file", name)
	}
	var out *Provenance
	t.Scan(func(_ engine.RowID, row engine.Row) bool {
		if row[0].S != name {
			return true
		}
		p := &Provenance{
			Name:      row[0].S,
			CVD:       row[1].S,
			User:      row[3].S,
			CreatedAt: time.Unix(0, row[4].I),
			IsFile:    row[5].Bool(),
		}
		for _, v := range row[2].A {
			p.Parents = append(p.Parents, vgraph.VersionID(v))
		}
		out = p
		return false
	})
	if out == nil {
		return nil, fmt.Errorf("core: %q is not a staged table or file", name)
	}
	return out, nil
}

// ReleaseProvenance removes the registry entry for a staged artifact.
func ReleaseProvenance(db *engine.DB, name string) error {
	t := db.Table(provenanceTable)
	if t == nil {
		return nil
	}
	var ids []engine.RowID
	t.Scan(func(id engine.RowID, row engine.Row) bool {
		if row[0].S == name {
			ids = append(ids, id)
		}
		return true
	})
	for _, id := range ids {
		t.Delete(id)
	}
	return nil
}

// ListProvenance lists all staged artifacts, optionally filtered by user.
func ListProvenance(db *engine.DB, user string) []Provenance {
	t := db.Table(provenanceTable)
	if t == nil {
		return nil
	}
	var out []Provenance
	t.Scan(func(_ engine.RowID, row engine.Row) bool {
		if user != "" && row[3].S != user {
			return true
		}
		p := Provenance{
			Name:      row[0].S,
			CVD:       row[1].S,
			User:      row[3].S,
			CreatedAt: time.Unix(0, row[4].I),
			IsFile:    row[5].Bool(),
		}
		for _, v := range row[2].A {
			p.Parents = append(p.Parents, vgraph.VersionID(v))
		}
		out = append(out, p)
		return true
	})
	return out
}

// CreateUser registers a user name.
func CreateUser(db *engine.DB, name string) error {
	if name == "" {
		return fmt.Errorf("core: empty user name")
	}
	t := db.Table(usersTable)
	if t == nil {
		var err error
		t, err = db.CreateTable(usersTable, []engine.Column{
			{Name: "name", Type: engine.KindString},
			{Name: "created_at", Type: engine.KindInt},
		})
		if err != nil {
			return err
		}
	}
	exists := false
	t.Scan(func(_ engine.RowID, row engine.Row) bool {
		if row[0].S == name {
			exists = true
			return false
		}
		return true
	})
	if exists {
		return fmt.Errorf("core: user %q already exists", name)
	}
	_, err := t.Insert(engine.Row{
		engine.StringValue(name),
		engine.IntValue(time.Now().UnixNano()),
	})
	return err
}

// UserExists reports whether the user is registered.
func UserExists(db *engine.DB, name string) bool {
	t := db.Table(usersTable)
	if t == nil {
		return false
	}
	found := false
	t.Scan(func(_ engine.RowID, row engine.Row) bool {
		if row[0].S == name {
			found = true
			return false
		}
		return true
	})
	return found
}

// Users lists registered user names.
func Users(db *engine.DB) []string {
	t := db.Table(usersTable)
	if t == nil {
		return nil
	}
	var out []string
	t.Scan(func(_ engine.RowID, row engine.Row) bool {
		out = append(out, row[0].S)
		return true
	})
	return out
}

// CheckAccess enforces the access controller's rule: only the user who
// staged a table may read or commit it.
func CheckAccess(db *engine.DB, name, user string) error {
	p, err := LookupProvenance(db, name)
	if err != nil {
		return err
	}
	if p.User != "" && user != p.User {
		return fmt.Errorf("core: %q belongs to user %q, not %q", name, p.User, user)
	}
	return nil
}

// CheckoutToTable materializes versions into a named staging table owned by
// user, recording provenance.
func (c *CVD) CheckoutToTable(table, user string, vids ...vgraph.VersionID) error {
	if c.db.HasTable(table) {
		return fmt.Errorf("core: table %q already exists", table)
	}
	cols, rows, err := c.CheckoutProjected(vids...)
	if err != nil {
		return err
	}
	t, err := c.db.CreateTable(table, cols)
	if err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := t.Insert(r); err != nil {
			return err
		}
	}
	if len(c.pk) > 0 {
		if err := t.SetPrimaryKey(c.pk...); err != nil {
			return err
		}
	}
	return RecordProvenance(c.db, Provenance{
		Name:      table,
		CVD:       c.name,
		Parents:   vids,
		User:      user,
		CreatedAt: c.Clock(),
	})
}

// CommitTable commits a staged table back into the CVD as a new version
// derived from the versions it was checked out from, then removes the table
// from the staging area (Section 2.3's commit flow).
func (c *CVD) CommitTable(table, user, msg string) (vgraph.VersionID, error) {
	if err := CheckAccess(c.db, table, user); err != nil {
		return 0, err
	}
	p, err := LookupProvenance(c.db, table)
	if err != nil {
		return 0, err
	}
	if p.CVD != c.name {
		return 0, fmt.Errorf("core: table %q belongs to CVD %q, not %q", table, p.CVD, c.name)
	}
	t, err := c.db.MustTable(table)
	if err != nil {
		return 0, err
	}
	var rows []engine.Row
	t.Scan(func(_ engine.RowID, row engine.Row) bool {
		rows = append(rows, row)
		return true
	})
	vid, err := c.CommitWithSchema(t.Columns(), rows, p.Parents, msg)
	if err != nil {
		return 0, err
	}
	if err := c.db.DropTable(table); err != nil {
		return 0, err
	}
	return vid, ReleaseProvenance(c.db, table)
}
