package core

import (
	"fmt"
	"time"

	"orpheusdb/internal/bitmap"
	"orpheusdb/internal/engine"
	"orpheusdb/internal/vgraph"
)

// VersionInfo is the version-level provenance of Section 3.3 (Figure 4's
// metadata table row).
type VersionInfo struct {
	ID           vgraph.VersionID
	Parents      []vgraph.VersionID
	CheckoutTime time.Time
	CommitTime   time.Time
	Message      string
	// Attributes lists the attribute ids (into the attribute table) the
	// version's schema comprises.
	Attributes []int64
	NumRecords int
}

// versionManager is in charge of recording and retrieving versioning
// information: the metadata table and the version-membership (rlist) table,
// plus an in-memory mirror used to build graphs quickly. Membership is held
// as compressed bitmaps — the same objects stored in the rlist table rows —
// and treated as immutable once committed, so set algebra (diff, multi-
// version scans, graph weights) shares them freely without copying.
type versionManager struct {
	db  *engine.DB
	cvd string

	infos  map[vgraph.VersionID]*VersionInfo
	order  []vgraph.VersionID
	rlists map[vgraph.VersionID]*bitmap.Bitmap
	nextV  vgraph.VersionID
}

func (vm *versionManager) metaName() string   { return vm.cvd + "__meta" }
func (vm *versionManager) rlistsName() string { return vm.cvd + "__rlists" }

func newVersionManager(db *engine.DB, cvd string) *versionManager {
	return &versionManager{
		db:     db,
		cvd:    cvd,
		infos:  make(map[vgraph.VersionID]*VersionInfo),
		rlists: make(map[vgraph.VersionID]*bitmap.Bitmap),
		nextV:  1,
	}
}

func (vm *versionManager) init() error {
	mt, err := vm.db.CreateTable(vm.metaName(), []engine.Column{
		{Name: "vid", Type: engine.KindInt},
		{Name: "parents", Type: engine.KindIntArray},
		{Name: "checkout_t", Type: engine.KindInt},
		{Name: "commit_t", Type: engine.KindInt},
		{Name: "msg", Type: engine.KindString},
		{Name: "attributes", Type: engine.KindIntArray},
		{Name: "num_records", Type: engine.KindInt},
	})
	if err != nil {
		return err
	}
	if err := mt.SetPrimaryKey("vid"); err != nil {
		return err
	}
	rt, err := vm.db.CreateTable(vm.rlistsName(), []engine.Column{
		{Name: "vid", Type: engine.KindInt},
		{Name: "rlist", Type: engine.KindBitmap},
	})
	if err != nil {
		return err
	}
	return rt.SetPrimaryKey("vid")
}

// load rebuilds the in-memory mirror from the system tables.
func (vm *versionManager) load() error {
	mt, err := vm.db.MustTable(vm.metaName())
	if err != nil {
		return err
	}
	rt, err := vm.db.MustTable(vm.rlistsName())
	if err != nil {
		return err
	}
	var infos []*VersionInfo
	mt.Scan(func(_ engine.RowID, row engine.Row) bool {
		info := &VersionInfo{
			ID:           vgraph.VersionID(row[0].I),
			CheckoutTime: time.Unix(0, row[2].I),
			CommitTime:   time.Unix(0, row[3].I),
			Message:      row[4].S,
			Attributes:   append([]int64(nil), row[5].A...),
			NumRecords:   int(row[6].I),
		}
		for _, p := range row[1].A {
			info.Parents = append(info.Parents, vgraph.VersionID(p))
		}
		infos = append(infos, info)
		return true
	})
	// Version ids are allocated densely in commit order.
	for i := 1; i < len(infos); i++ {
		for j := i; j > 0 && infos[j].ID < infos[j-1].ID; j-- {
			infos[j], infos[j-1] = infos[j-1], infos[j]
		}
	}
	for _, info := range infos {
		vm.infos[info.ID] = info
		vm.order = append(vm.order, info.ID)
		if info.ID >= vm.nextV {
			vm.nextV = info.ID + 1
		}
	}
	rt.Scan(func(_ engine.RowID, row engine.Row) bool {
		set := row[1].B
		if set == nil {
			// Snapshots written before the bitmap representation stored
			// rlists as int arrays; widen on load.
			set = bitmap.FromSlice(row[1].A)
		}
		vm.rlists[vgraph.VersionID(row[0].I)] = set
		return true
	})
	return nil
}

// allocVersion reserves the next version id.
func (vm *versionManager) allocVersion() vgraph.VersionID {
	v := vm.nextV
	vm.nextV++
	return v
}

// add records a committed version in both tables and the mirror.
func (vm *versionManager) add(info *VersionInfo, rlist []vgraph.RecordID) error {
	mt, err := vm.db.MustTable(vm.metaName())
	if err != nil {
		return err
	}
	rt, err := vm.db.MustTable(vm.rlistsName())
	if err != nil {
		return err
	}
	parents := make([]int64, len(info.Parents))
	for i, p := range info.Parents {
		parents[i] = int64(p)
	}
	_, err = mt.Insert(engine.Row{
		engine.IntValue(int64(info.ID)),
		engine.ArrayValue(parents),
		engine.IntValue(info.CheckoutTime.UnixNano()),
		engine.IntValue(info.CommitTime.UnixNano()),
		engine.StringValue(info.Message),
		engine.ArrayValue(append([]int64(nil), info.Attributes...)),
		engine.IntValue(int64(info.NumRecords)),
	})
	if err != nil {
		return err
	}
	set := bitmap.New()
	for _, r := range rlist {
		set.Add(int64(r))
	}
	set.Optimize()
	if _, err := rt.Insert(engine.Row{
		engine.IntValue(int64(info.ID)),
		engine.BitmapValue(set),
	}); err != nil {
		return err
	}
	vm.infos[info.ID] = info
	vm.order = append(vm.order, info.ID)
	vm.rlists[info.ID] = set
	return nil
}

func (vm *versionManager) info(v vgraph.VersionID) (*VersionInfo, error) {
	if i, ok := vm.infos[v]; ok {
		return i, nil
	}
	return nil, fmt.Errorf("core: %s: no version %d", vm.cvd, v)
}

// rlist materializes the record ids of a version as a fresh slice (callers
// may mutate it freely).
func (vm *versionManager) rlist(v vgraph.VersionID) ([]vgraph.RecordID, error) {
	set, err := vm.rlistSet(v)
	if err != nil {
		return nil, err
	}
	out := make([]vgraph.RecordID, 0, set.Cardinality())
	set.Iterate(func(r int64) bool {
		out = append(out, vgraph.RecordID(r))
		return true
	})
	return out, nil
}

// rlistSet returns the version's membership bitmap. The bitmap is shared and
// must not be mutated.
func (vm *versionManager) rlistSet(v vgraph.VersionID) (*bitmap.Bitmap, error) {
	if set, ok := vm.rlists[v]; ok {
		return set, nil
	}
	return nil, fmt.Errorf("core: %s: no version %d", vm.cvd, v)
}

// bipartite builds the version-record bipartite graph of the CVD, sharing
// the immutable membership bitmaps.
func (vm *versionManager) bipartite() *vgraph.Bipartite {
	b := vgraph.NewBipartite()
	for _, v := range vm.order {
		b.AddVersionSet(v, vm.rlists[v])
	}
	return b
}

// levels computes every version's depth (roots have level 1) straight from
// the metadata mirror. Commit order is a topological order, so one pass
// suffices — much cheaper than building the weighted version graph when only
// depths are needed (LCA tie-breaking).
func (vm *versionManager) levels() map[vgraph.VersionID]int {
	lv := make(map[vgraph.VersionID]int, len(vm.order))
	for _, v := range vm.order {
		best := 0
		for _, p := range vm.infos[v].Parents {
			if lv[p] > best {
				best = lv[p]
			}
		}
		lv[v] = best + 1
	}
	return lv
}

// graph builds the version graph with record-intersection edge weights.
func (vm *versionManager) graph() (*vgraph.Graph, error) {
	b := vm.bipartite()
	parents := make(map[vgraph.VersionID][]vgraph.VersionID, len(vm.order))
	for _, v := range vm.order {
		parents[v] = vm.infos[v].Parents
	}
	return b.Graph(parents)
}

func (vm *versionManager) drop() error {
	for _, n := range []string{vm.metaName(), vm.rlistsName()} {
		if vm.db.HasTable(n) {
			if err := vm.db.DropTable(n); err != nil {
				return err
			}
		}
	}
	return nil
}

// recordManager is in charge of record identity: allocating rids and
// remembering content hashes so commits can match unchanged rows against
// their parent versions (the no-cross-version-diff rule).
type recordManager struct {
	db  *engine.DB
	cvd string

	hashes map[vgraph.RecordID]RecordHash
	nextR  vgraph.RecordID
}

func (rm *recordManager) tableName() string { return rm.cvd + "__records" }

func newRecordManager(db *engine.DB, cvd string) *recordManager {
	return &recordManager{
		db:     db,
		cvd:    cvd,
		hashes: make(map[vgraph.RecordID]RecordHash),
		nextR:  1,
	}
}

func (rm *recordManager) init() error {
	t, err := rm.db.CreateTable(rm.tableName(), []engine.Column{
		{Name: "rid", Type: engine.KindInt},
		{Name: "h1", Type: engine.KindInt},
		{Name: "h2", Type: engine.KindInt},
	})
	if err != nil {
		return err
	}
	return t.SetPrimaryKey("rid")
}

func (rm *recordManager) load() error {
	t, err := rm.db.MustTable(rm.tableName())
	if err != nil {
		return err
	}
	t.Scan(func(_ engine.RowID, row engine.Row) bool {
		rid := vgraph.RecordID(row[0].I)
		rm.hashes[rid] = RecordHash{H1: uint64(row[1].I), H2: uint64(row[2].I)}
		if rid >= rm.nextR {
			rm.nextR = rid + 1
		}
		return true
	})
	return nil
}

// alloc registers a new record with its content hash.
func (rm *recordManager) alloc(h RecordHash) (vgraph.RecordID, error) {
	t, err := rm.db.MustTable(rm.tableName())
	if err != nil {
		return 0, err
	}
	rid := rm.nextR
	rm.nextR++
	if _, err := t.Insert(engine.Row{
		engine.IntValue(int64(rid)),
		engine.IntValue(int64(h.H1)),
		engine.IntValue(int64(h.H2)),
	}); err != nil {
		return 0, err
	}
	rm.hashes[rid] = h
	return rid, nil
}

// hashIndex builds a hash → rid map over the given records, used to match a
// committed table against its parent versions.
func (rm *recordManager) hashIndex(rids []vgraph.RecordID) map[RecordHash]vgraph.RecordID {
	out := make(map[RecordHash]vgraph.RecordID, len(rids))
	for _, rid := range rids {
		if h, ok := rm.hashes[rid]; ok {
			out[h] = rid
		}
	}
	return out
}

func (rm *recordManager) drop() error {
	if rm.db.HasTable(rm.tableName()) {
		return rm.db.DropTable(rm.tableName())
	}
	return nil
}

// Attribute describes one entry of the attribute table of Section 3.3
// (Figure 5b/c): any change of name or type yields a new entry.
type Attribute struct {
	ID   int64
	Name string
	Type engine.Kind
}

// attrManager maintains the attribute table and the CVD's current schema
// under the single-pool method.
type attrManager struct {
	db  *engine.DB
	cvd string

	attrs  map[int64]Attribute
	nextID int64
}

func (am *attrManager) tableName() string { return am.cvd + "__attrs" }

func newAttrManager(db *engine.DB, cvd string) *attrManager {
	return &attrManager{db: db, cvd: cvd, attrs: make(map[int64]Attribute), nextID: 1}
}

func (am *attrManager) init() error {
	t, err := am.db.CreateTable(am.tableName(), []engine.Column{
		{Name: "attr_id", Type: engine.KindInt},
		{Name: "attr_name", Type: engine.KindString},
		{Name: "data_type", Type: engine.KindString},
	})
	if err != nil {
		return err
	}
	return t.SetPrimaryKey("attr_id")
}

func (am *attrManager) load() error {
	t, err := am.db.MustTable(am.tableName())
	if err != nil {
		return err
	}
	var loadErr error
	t.Scan(func(_ engine.RowID, row engine.Row) bool {
		k, err := engine.KindFromName(row[2].S)
		if err != nil {
			loadErr = err
			return false
		}
		a := Attribute{ID: row[0].I, Name: row[1].S, Type: k}
		am.attrs[a.ID] = a
		if a.ID >= am.nextID {
			am.nextID = a.ID + 1
		}
		return true
	})
	return loadErr
}

// add registers a new attribute entry and returns its id.
func (am *attrManager) add(name string, k engine.Kind) (int64, error) {
	t, err := am.db.MustTable(am.tableName())
	if err != nil {
		return 0, err
	}
	id := am.nextID
	am.nextID++
	if _, err := t.Insert(engine.Row{
		engine.IntValue(id),
		engine.StringValue(name),
		engine.StringValue(k.String()),
	}); err != nil {
		return 0, err
	}
	am.attrs[id] = Attribute{ID: id, Name: name, Type: k}
	return id, nil
}

// find returns the id of an existing (name, type) entry, or 0.
func (am *attrManager) find(name string, k engine.Kind) int64 {
	for id, a := range am.attrs {
		if a.Name == name && a.Type == k {
			return id
		}
	}
	return 0
}

func (am *attrManager) get(id int64) (Attribute, bool) {
	a, ok := am.attrs[id]
	return a, ok
}

func (am *attrManager) drop() error {
	if am.db.HasTable(am.tableName()) {
		return am.db.DropTable(am.tableName())
	}
	return nil
}
