package core

import (
	"context"
	"fmt"

	"orpheusdb/internal/engine"
	"orpheusdb/internal/vgraph"
)

// Schema evolution (Section 3.3, single-pool method): the CVD keeps one
// physical pool of columns. New attributes are added with NULLs for old
// records; type conflicts widen the physical column to the more general type
// and add a fresh attribute-table entry; attribute deletions only update the
// version metadata. Each version's visible schema is its attribute-id list.

func (c *CVD) schemaTableName() string { return c.name + "__schema" }

// saveSchema persists the physical column order (attribute ids).
func (c *CVD) saveSchema() error {
	if c.db.HasTable(c.schemaTableName()) {
		if err := c.db.DropTable(c.schemaTableName()); err != nil {
			return err
		}
	}
	t, err := c.db.CreateTable(c.schemaTableName(), []engine.Column{
		{Name: "pos", Type: engine.KindInt},
		{Name: "attr_id", Type: engine.KindInt},
	})
	if err != nil {
		return err
	}
	for i, id := range c.schema {
		if _, err := t.Insert(engine.Row{engine.IntValue(int64(i)), engine.IntValue(id)}); err != nil {
			return err
		}
	}
	return nil
}

// loadSchema restores the physical column order; returns false when the CVD
// predates any schema change (no table saved).
func (c *CVD) loadSchema() (bool, error) {
	t := c.db.Table(c.schemaTableName())
	if t == nil {
		return false, nil
	}
	type entry struct {
		pos int64
		id  int64
	}
	var entries []entry
	t.Scan(func(_ engine.RowID, row engine.Row) bool {
		entries = append(entries, entry{row[0].I, row[1].I})
		return true
	})
	for i := 1; i < len(entries); i++ {
		for j := i; j > 0 && entries[j].pos < entries[j-1].pos; j-- {
			entries[j], entries[j-1] = entries[j-1], entries[j]
		}
	}
	c.schema = nil
	c.cols = nil
	for _, e := range entries {
		a, ok := c.am.get(e.id)
		if !ok {
			return false, fmt.Errorf("core: CVD %q: unknown attribute id %d", c.name, e.id)
		}
		c.schema = append(c.schema, e.id)
		c.cols = append(c.cols, engine.Column{Name: a.Name, Type: a.Type})
	}
	return true, nil
}

// CommitWithSchema commits rows whose schema (cols) may differ from the
// CVD's: missing attributes become NULL for the new version's records, new
// attributes are added to the pool, and conflicting types are widened. The
// new version's visible schema is exactly cols.
func (c *CVD) CommitWithSchema(cols []engine.Column, rows []engine.Row, parents []vgraph.VersionID, msg string) (vgraph.VersionID, error) {
	return c.CommitWithSchemaCtx(context.Background(), cols, rows, parents, msg)
}

// CommitWithSchemaCtx is CommitWithSchema with trace propagation (the commit
// phases contribute spans when ctx carries a trace).
func (c *CVD) CommitWithSchemaCtx(ctx context.Context, cols []engine.Column, rows []engine.Row, parents []vgraph.VersionID, msg string) (vgraph.VersionID, error) {
	for i, r := range rows {
		if len(r) != len(cols) {
			return 0, fmt.Errorf("core: %s: commit row %d has %d values, want %d", c.name, i, len(r), len(cols))
		}
	}
	// Resolve each incoming column to a physical position and an
	// attribute id, evolving the pool as needed.
	physPos := make([]int, len(cols)) // incoming col -> physical position
	visible := make([]int64, len(cols))
	for i, col := range cols {
		at := -1
		for j, pc := range c.cols {
			if pc.Name == col.Name {
				at = j
				break
			}
		}
		if at < 0 {
			// Brand-new attribute: extend the pool; old records get NULL.
			id, err := c.am.add(col.Name, col.Type)
			if err != nil {
				return 0, err
			}
			if err := c.model.AddColumn(col); err != nil {
				return 0, err
			}
			c.cols = append(c.cols, col)
			c.schema = append(c.schema, id)
			physPos[i] = len(c.cols) - 1
			visible[i] = id
			continue
		}
		physPos[i] = at
		if c.cols[at].Type == col.Type {
			visible[i] = c.schema[at]
			continue
		}
		// Type conflict: widen the pool column, register the new
		// (name, type) attribute entry.
		wide := engine.MoreGeneral(c.cols[at].Type, col.Type)
		id := c.am.find(col.Name, wide)
		if id == 0 {
			var err error
			id, err = c.am.add(col.Name, wide)
			if err != nil {
				return 0, err
			}
		}
		if wide != c.cols[at].Type {
			if err := c.model.AlterColumnType(col.Name, wide); err != nil {
				return 0, err
			}
			c.cols[at].Type = wide
			c.schema[at] = id
		}
		visible[i] = id
	}
	if err := c.saveSchema(); err != nil {
		return 0, err
	}

	// Re-shape rows onto the physical pool, widening values as needed.
	phys := make([]engine.Row, len(rows))
	for i, r := range rows {
		pr := make(engine.Row, len(c.cols))
		for j := range pr {
			pr[j] = engine.NullValue()
		}
		for j, v := range r {
			p := physPos[j]
			if !v.IsNull() && v.K != c.cols[p].Type {
				v = widenValue(v, c.cols[p].Type)
			}
			pr[p] = v
		}
		phys[i] = pr
	}

	vid, err := c.commitAt(ctx, phys, parents, msg, c.Clock(), c.Clock())
	if err != nil {
		return 0, err
	}
	// Record the version's visible schema.
	info := c.vm.infos[vid]
	info.Attributes = visible
	return vid, nil
}

// widenValue converts v to the wider kind k.
func widenValue(v engine.Value, k engine.Kind) engine.Value {
	switch k {
	case engine.KindFloat:
		return engine.FloatValue(v.AsFloat())
	case engine.KindString:
		return engine.StringValue(v.String())
	}
	return v
}

// VersionColumns returns the visible schema of a version: its attribute list
// resolved against the attribute table, in physical-pool order with
// positions.
func (c *CVD) VersionColumns(v vgraph.VersionID) ([]engine.Column, []int, error) {
	info, err := c.vm.info(v)
	if err != nil {
		return nil, nil, err
	}
	nameOf := func(id int64) (string, bool) {
		a, ok := c.am.get(id)
		return a.Name, ok
	}
	var cols []engine.Column
	var pos []int
	for _, id := range info.Attributes {
		name, ok := nameOf(id)
		if !ok {
			return nil, nil, fmt.Errorf("core: %s: unknown attribute id %d", c.name, id)
		}
		for j, pc := range c.cols {
			if pc.Name == name {
				cols = append(cols, pc)
				pos = append(pos, j)
				break
			}
		}
	}
	return cols, pos, nil
}

// CheckoutProjected materializes versions projected onto the union of their
// visible schemas (the merge rule of Section 3.3: the result includes all
// attributes of its parents).
func (c *CVD) CheckoutProjected(vids ...vgraph.VersionID) ([]engine.Column, []engine.Row, error) {
	rows, err := c.Checkout(vids...)
	if err != nil {
		return nil, nil, err
	}
	var cols []engine.Column
	var pos []int
	seen := make(map[string]bool)
	for _, v := range vids {
		vc, vp, err := c.VersionColumns(v)
		if err != nil {
			return nil, nil, err
		}
		for i, col := range vc {
			if !seen[col.Name] {
				seen[col.Name] = true
				cols = append(cols, col)
				pos = append(pos, vp[i])
			}
		}
	}
	out := make([]engine.Row, len(rows))
	for i, r := range rows {
		pr := make(engine.Row, len(pos))
		for j, p := range pos {
			pr[j] = r[p]
		}
		out[i] = pr
	}
	return cols, out, nil
}
