package core

import (
	"fmt"
	"sort"
	"testing"

	"orpheusdb/internal/engine"
	"orpheusdb/internal/vgraph"
)

// checkoutFingerprint canonicalizes a version's contents: sorted row strings,
// so layout changes that only reorder rows compare equal.
func checkoutFingerprint(t *testing.T, c *CVD, v vgraph.VersionID) []string {
	t.Helper()
	rows, err := c.Checkout(v)
	if err != nil {
		t.Fatalf("checkout %d: %v", v, err)
	}
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = fmt.Sprint(r)
	}
	sort.Strings(out)
	return out
}

func fingerprintAll(t *testing.T, c *CVD, vids []vgraph.VersionID) map[vgraph.VersionID][]string {
	t.Helper()
	out := make(map[vgraph.VersionID][]string, len(vids))
	for _, v := range vids {
		out[v] = checkoutFingerprint(t, c, v)
	}
	return out
}

func sameFingerprint(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestBatchedRepartitionPreservesCheckouts applies a planned batch sequence
// one batch at a time and verifies every intermediate layout is consistent
// (all versions checkout-able) and the final contents are unchanged.
func TestBatchedRepartitionPreservesCheckouts(t *testing.T) {
	c, vids := branchyCVD(t, 40)
	pm := c.Model().(PartitionedModel)
	before := fingerprintAll(t, c, vids)
	costBefore := pm.CheckoutCost()

	plan, err := c.PlanRepartition(2.0, 60)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Groups < 2 {
		t.Fatalf("plan produced %d groups", plan.Groups)
	}
	if len(plan.Batches) < plan.Groups {
		t.Fatalf("only %d batches for %d groups", len(plan.Batches), plan.Groups)
	}
	if last := plan.Batches[len(plan.Batches)-1]; last.Kind != PartitionBatchDropEmpty {
		t.Fatalf("final batch kind = %s, want drop-empty", last.Kind)
	}
	for i, b := range plan.Batches {
		moved, err := c.ApplyPartitionBatch(b)
		if err != nil {
			t.Fatalf("batch %d (%s): %v", i, b.Kind, err)
		}
		if (b.Kind == PartitionBatchPreload || b.Kind == PartitionBatchGC) && moved > 60 {
			t.Fatalf("batch %d (%s) moved %d rows, bound 60", i, b.Kind, moved)
		}
		// Every batch boundary is a consistent layout: spot-check a spread of
		// versions between batches, all of them at the end.
		for j := 0; j < len(vids); j += 7 {
			if _, err := c.Checkout(vids[j]); err != nil {
				t.Fatalf("after batch %d (%s): checkout %d: %v", i, b.Kind, vids[j], err)
			}
		}
	}
	after := fingerprintAll(t, c, vids)
	for _, v := range vids {
		if !sameFingerprint(before[v], after[v]) {
			t.Fatalf("version %d contents changed across batched migration", v)
		}
	}
	if pm.NumPartitions() != plan.Groups {
		t.Fatalf("physical partitions %d != planned groups %d", pm.NumPartitions(), plan.Groups)
	}
	if cost := pm.CheckoutCost(); cost >= costBefore {
		t.Fatalf("Cavg did not drop: %.0f -> %.0f", costBefore, cost)
	}
	st, ok := c.PartitionStatus()
	if !ok {
		t.Fatal("partitioned CVD reported no status")
	}
	if len(st.Partitions) != plan.Groups {
		t.Fatalf("status lists %d partitions, want %d", len(st.Partitions), plan.Groups)
	}
	var storage int64
	for _, p := range st.Partitions {
		if p.Versions == 0 {
			t.Fatalf("partition %d kept with no versions", p.ID)
		}
		storage += p.Records
	}
	if storage != st.StorageRecords {
		t.Fatalf("status storage %d != sum of partitions %d", st.StorageRecords, storage)
	}
}

// TestBatchedRepartitionDeterministic applies one plan to two identical CVDs
// and requires identical resulting layouts — the property WAL replay of the
// batch sequence depends on.
func TestBatchedRepartitionDeterministic(t *testing.T) {
	c1, vids := branchyCVD(t, 35)
	c2, _ := branchyCVD(t, 35)
	plan, err := c1.PlanRepartition(2.0, 40)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range plan.Batches {
		if _, err := c1.ApplyPartitionBatch(b); err != nil {
			t.Fatalf("c1 batch %d: %v", i, err)
		}
		if _, err := c2.ApplyPartitionBatch(b); err != nil {
			t.Fatalf("c2 batch %d: %v", i, err)
		}
	}
	pm1 := c1.Model().(PartitionedModel)
	pm2 := c2.Model().(PartitionedModel)
	if pm1.NumPartitions() != pm2.NumPartitions() {
		t.Fatalf("partition counts diverged: %d vs %d", pm1.NumPartitions(), pm2.NumPartitions())
	}
	for _, v := range vids {
		p1, _ := pm1.PartitionOf(v)
		p2, _ := pm2.PartitionOf(v)
		if p1 != p2 {
			t.Fatalf("placement of v%d diverged: %d vs %d", v, p1, p2)
		}
	}
	if pm1.StorageRecords() != pm2.StorageRecords() {
		t.Fatalf("storage diverged: %d vs %d", pm1.StorageRecords(), pm2.StorageRecords())
	}
}

// TestBatchedRepartitionUnderCommits interleaves commits with batch
// application: new versions placed mid-migration must survive the remaining
// batches (gc re-derives its needed set at apply time).
func TestBatchedRepartitionUnderCommits(t *testing.T) {
	c, vids := branchyCVD(t, 30)
	plan, err := c.PlanRepartition(2.0, 50)
	if err != nil {
		t.Fatal(err)
	}
	var midVids []vgraph.VersionID
	for i, b := range plan.Batches {
		if i == len(plan.Batches)/3 || i == 2*len(plan.Batches)/3 {
			parent := vids[len(vids)-1]
			rows, err := c.Checkout(parent)
			if err != nil {
				t.Fatal(err)
			}
			rows = append(rows, protRow(fmt.Sprintf("MID%d", i), "Q", 1, 0, 0))
			v, err := c.Commit(rows, []vgraph.VersionID{parent}, "mid-migration")
			if err != nil {
				t.Fatal(err)
			}
			midVids = append(midVids, v)
		}
		if _, err := c.ApplyPartitionBatch(b); err != nil {
			t.Fatalf("batch %d (%s): %v", i, b.Kind, err)
		}
	}
	for _, v := range append(append([]vgraph.VersionID(nil), vids...), midVids...) {
		if _, err := c.Checkout(v); err != nil {
			t.Fatalf("checkout %d after migration under commits: %v", v, err)
		}
	}
}

// TestPlanPartitionBatchesValidates rejects incomplete or duplicated
// groupings.
func TestPlanPartitionBatchesValidates(t *testing.T) {
	c, vids := branchyCVD(t, 10)
	pm := c.Model().(PartitionedModel)
	if _, err := pm.PlanPartitionBatches([][]vgraph.VersionID{vids[:5]}, 0); err == nil {
		t.Fatal("plan omitting versions accepted")
	}
	dup := [][]vgraph.VersionID{vids, {vids[0]}}
	if _, err := pm.PlanPartitionBatches(dup, 0); err == nil {
		t.Fatal("plan placing a version twice accepted")
	}
	bogus := [][]vgraph.VersionID{append(append([]vgraph.VersionID(nil), vids...), 9999)}
	if _, err := pm.PlanPartitionBatches(bogus, 0); err == nil {
		t.Fatal("plan naming unknown version accepted")
	}
}

// TestApplyPartitionBatchErrors exercises apply-side validation.
func TestApplyPartitionBatchErrors(t *testing.T) {
	c, vids := branchyCVD(t, 10)
	if _, err := c.ApplyPartitionBatch(PartitionBatch{Kind: PartitionBatchGC, Anchor: 9999}); err == nil {
		t.Fatal("gc with unresolvable anchor accepted")
	}
	if _, err := c.ApplyPartitionBatch(PartitionBatch{Kind: PartitionBatchKind(99)}); err == nil {
		t.Fatal("unknown batch kind accepted")
	}
	// An assign whose Members under-cover a named version must refuse rather
	// than corrupt the layout.
	under := PartitionBatch{
		Kind:     PartitionBatchAssign,
		Anchor:   0,
		Versions: []vgraph.VersionID{vids[len(vids)-1]},
		Members:  nil,
	}
	if _, err := c.ApplyPartitionBatch(under); err == nil {
		t.Fatal("under-covering assign accepted")
	}
	// Batches on a non-partitioned model refuse.
	db := engine.NewDB()
	plain, err := Init(db, "p", protCols(), InitOptions{Model: SplitByRlistModel})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plain.ApplyPartitionBatch(PartitionBatch{Kind: PartitionBatchDropEmpty}); err == nil {
		t.Fatal("batch on plain model accepted")
	}
	if _, ok := plain.PartitionStatus(); ok {
		t.Fatal("plain model reported partition status")
	}
}
