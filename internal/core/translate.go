package core

import (
	"fmt"

	"orpheusdb/internal/vgraph"
)

// Table 1 of the paper: the SQL each data model's checkout and commit
// translate to. The query translator emits these statements; the engine-level
// implementations in this package execute the equivalent physical plans. The
// strings are used by tests, the CLI's explain mode, and documentation.

// CheckoutSQL returns the SQL translation for checking out version vid of the
// CVD into table dst under the given model.
func CheckoutSQL(kind ModelKind, cvd, dst string, vid vgraph.VersionID) string {
	switch kind {
	case CombinedTableModel:
		return fmt.Sprintf(
			"SELECT * INTO %s FROM %s_combined WHERE ARRAY[%d] <@ vlist;",
			dst, cvd, vid)
	case SplitByVlistModel:
		return fmt.Sprintf(
			"SELECT * INTO %s FROM %s_vl_data, "+
				"(SELECT rid AS rid_tmp FROM %s_vl_version WHERE ARRAY[%d] <@ vlist) AS tmp "+
				"WHERE rid = rid_tmp;",
			dst, cvd, cvd, vid)
	case SplitByRlistModel, PartitionedRlistModel:
		return fmt.Sprintf(
			"SELECT * INTO %s FROM %s_rl_data, "+
				"(SELECT unnest(rlist) AS rid_tmp FROM %s_rl_version WHERE vid = %d) AS tmp "+
				"WHERE rid = rid_tmp;",
			dst, cvd, cvd, vid)
	case TablePerVersionModel:
		return fmt.Sprintf("SELECT * INTO %s FROM %s_tpv_v%d;", dst, cvd, vid)
	case DeltaModel:
		return fmt.Sprintf(
			"-- delta-based checkout of v%d traces the base chain via %s_delta_precedent, "+
				"discarding records seen in nearer deltas", vid, cvd)
	}
	return ""
}

// CommitSQL returns the SQL translation for committing staged table src back
// into the CVD as version vid under the given model.
func CommitSQL(kind ModelKind, cvd, src string, vid vgraph.VersionID) string {
	switch kind {
	case CombinedTableModel:
		return fmt.Sprintf(
			"UPDATE %s_combined SET vlist = vlist + %d WHERE rid IN (SELECT rid FROM %s);",
			cvd, vid, src)
	case SplitByVlistModel:
		return fmt.Sprintf(
			"UPDATE %s_vl_version SET vlist = vlist + %d WHERE rid IN (SELECT rid FROM %s);",
			cvd, vid, src)
	case SplitByRlistModel, PartitionedRlistModel:
		return fmt.Sprintf(
			"INSERT INTO %s_rl_version VALUES (%d, ARRAY[SELECT rid FROM %s]);",
			cvd, vid, src)
	case TablePerVersionModel:
		return fmt.Sprintf("SELECT * INTO %s_tpv_v%d FROM %s;", cvd, vid, src)
	case DeltaModel:
		return fmt.Sprintf(
			"-- delta-based commit of %s stores the diff from its base version "+
				"and inserts (vid=%d, base) into %s_delta_precedent", src, vid, cvd)
	}
	return ""
}
