package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"orpheusdb/internal/bitmap"
	"orpheusdb/internal/engine"
	"orpheusdb/internal/vgraph"
)

// Branches are the git-style named workflow over the version DAG: a branch is
// a named head version plus its lineage — the bitmap of the head and all its
// transitive ancestors. Lineage is persisted next to the head so branch
// containment checks ("is v on branch b?") and branch-to-branch merge-base
// discovery are single bitmap operations, never graph walks. The registry
// lives in the <cvd>__branches system table and is WAL-logged by the store
// like every other mutation.

// BranchInfo describes one named branch.
type BranchInfo struct {
	Name string
	// Head is the version the branch currently points at.
	Head vgraph.VersionID
	// CreatedAt is the branch creation time.
	CreatedAt time.Time
	// Lineage is the ancestry bitmap of Head: Head plus every transitive
	// ancestor, as version ids. Shared and immutable once loaded.
	Lineage *bitmap.Bitmap
}

// branchManager owns the branch registry of one CVD: the system table and an
// in-memory mirror.
type branchManager struct {
	db  *engine.DB
	cvd string

	branches map[string]*BranchInfo
}

func (bm *branchManager) tableName() string { return bm.cvd + "__branches" }

func newBranchManager(db *engine.DB, cvd string) *branchManager {
	return &branchManager{db: db, cvd: cvd, branches: make(map[string]*BranchInfo)}
}

func (bm *branchManager) init() error {
	t, err := bm.db.CreateTable(bm.tableName(), []engine.Column{
		{Name: "name", Type: engine.KindString},
		{Name: "head", Type: engine.KindInt},
		{Name: "created_t", Type: engine.KindInt},
		{Name: "lineage", Type: engine.KindBitmap},
	})
	if err != nil {
		return err
	}
	return t.SetPrimaryKey("name")
}

// load rebuilds the mirror; stores snapshotted before branches existed get
// the table created on the spot, so old CVDs gain branch support on open.
func (bm *branchManager) load() error {
	if !bm.db.HasTable(bm.tableName()) {
		return bm.init()
	}
	t, err := bm.db.MustTable(bm.tableName())
	if err != nil {
		return err
	}
	t.Scan(func(_ engine.RowID, row engine.Row) bool {
		bm.branches[row[0].S] = &BranchInfo{
			Name:      row[0].S,
			Head:      vgraph.VersionID(row[1].I),
			CreatedAt: time.Unix(0, row[2].I),
			Lineage:   membershipValue(row[3]),
		}
		return true
	})
	return nil
}

// validBranchName rejects names that would be ambiguous in version slots
// (pure integers) or unusable in the SQL/CLI/HTTP surfaces.
func validBranchName(name string) error {
	if name == "" {
		return fmt.Errorf("core: empty branch name")
	}
	allDigits := true
	for _, r := range name {
		if r < '0' || r > '9' {
			allDigits = false
		}
		if r == ',' || r == '/' || r == ' ' || r == '\t' || r == '\n' {
			return fmt.Errorf("core: branch name %q contains %q", name, r)
		}
	}
	if allDigits {
		return fmt.Errorf("core: branch name %q would be ambiguous with a version id", name)
	}
	return nil
}

// rowOf encodes a branch as its table row.
func branchRow(b *BranchInfo) engine.Row {
	return engine.Row{
		engine.StringValue(b.Name),
		engine.IntValue(int64(b.Head)),
		engine.IntValue(b.CreatedAt.UnixNano()),
		engine.BitmapValue(b.Lineage),
	}
}

// add persists a new branch.
func (bm *branchManager) add(b *BranchInfo) error {
	t, err := bm.db.MustTable(bm.tableName())
	if err != nil {
		return err
	}
	if _, err := t.Insert(branchRow(b)); err != nil {
		return err
	}
	bm.branches[b.Name] = b
	return nil
}

// rowID locates a branch's engine row.
func (bm *branchManager) rowID(name string) (*engine.Table, engine.RowID, error) {
	t, err := bm.db.MustTable(bm.tableName())
	if err != nil {
		return nil, 0, err
	}
	var id engine.RowID
	found := false
	t.Scan(func(rid engine.RowID, row engine.Row) bool {
		if row[0].S == name {
			id, found = rid, true
			return false
		}
		return true
	})
	if !found {
		return nil, 0, fmt.Errorf("core: %s: no branch %q", bm.cvd, name)
	}
	return t, id, nil
}

// update rewrites a branch's persisted row after a head advance.
func (bm *branchManager) update(b *BranchInfo) error {
	t, id, err := bm.rowID(b.Name)
	if err != nil {
		return err
	}
	if err := t.Update(id, branchRow(b)); err != nil {
		return err
	}
	bm.branches[b.Name] = b
	return nil
}

// remove deletes a branch from table and mirror.
func (bm *branchManager) remove(name string) error {
	t, id, err := bm.rowID(name)
	if err != nil {
		return err
	}
	t.Delete(id)
	delete(bm.branches, name)
	return nil
}

func (bm *branchManager) drop() error {
	if bm.db.HasTable(bm.tableName()) {
		return bm.db.DropTable(bm.tableName())
	}
	return nil
}

// CreateBranch registers a named branch pointing at head. Branch names must
// not be purely numeric (they share reference slots with version ids).
func (c *CVD) CreateBranch(name string, head vgraph.VersionID) (*BranchInfo, error) {
	return c.CreateBranchAt(name, head, c.Clock())
}

// CreateBranchAt is CreateBranch with an explicit creation timestamp (WAL
// replay re-creates branches with their recorded time).
func (c *CVD) CreateBranchAt(name string, head vgraph.VersionID, at time.Time) (*BranchInfo, error) {
	if err := validBranchName(name); err != nil {
		return nil, err
	}
	if _, ok := c.bm.branches[name]; ok {
		return nil, fmt.Errorf("core: %s: branch %q already exists", c.name, name)
	}
	if _, err := c.vm.info(head); err != nil {
		return nil, err
	}
	lineage, err := c.ancestrySet(head)
	if err != nil {
		return nil, err
	}
	b := &BranchInfo{Name: name, Head: head, CreatedAt: at, Lineage: lineage}
	if err := c.bm.add(b); err != nil {
		return nil, err
	}
	return b, nil
}

// Branch returns a branch by name.
func (c *CVD) Branch(name string) (*BranchInfo, error) {
	if b, ok := c.bm.branches[name]; ok {
		return b, nil
	}
	return nil, fmt.Errorf("core: %s: no branch %q", c.name, name)
}

// Branches lists the registered branches sorted by name.
func (c *CVD) Branches() []*BranchInfo {
	out := make([]*BranchInfo, 0, len(c.bm.branches))
	for _, b := range c.bm.branches {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// DeleteBranch removes a branch; the versions it pointed at are untouched.
func (c *CVD) DeleteBranch(name string) error {
	return c.bm.remove(name)
}

// AdvanceBranch moves a branch head to the given version and recomputes its
// lineage bitmap from the version graph.
func (c *CVD) AdvanceBranch(name string, to vgraph.VersionID) (*BranchInfo, error) {
	b, err := c.Branch(name)
	if err != nil {
		return nil, err
	}
	if _, err := c.vm.info(to); err != nil {
		return nil, err
	}
	lineage, err := c.ancestrySet(to)
	if err != nil {
		return nil, err
	}
	nb := &BranchInfo{Name: b.Name, Head: to, CreatedAt: b.CreatedAt, Lineage: lineage}
	if err := c.bm.update(nb); err != nil {
		return nil, err
	}
	return nb, nil
}

// ResolveRef resolves a version reference: a decimal version id or a branch
// name (which resolves to the branch head).
func (c *CVD) ResolveRef(ref string) (vgraph.VersionID, error) {
	ref = strings.TrimSpace(ref)
	if ref == "" {
		return 0, fmt.Errorf("core: %s: empty version reference", c.name)
	}
	allDigits := true
	for _, r := range ref {
		if r < '0' || r > '9' {
			allDigits = false
			break
		}
	}
	if allDigits {
		v, err := strconv.ParseInt(ref, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("core: %s: bad version reference %q", c.name, ref)
		}
		if _, err := c.vm.info(vgraph.VersionID(v)); err != nil {
			return 0, err
		}
		return vgraph.VersionID(v), nil
	}
	b, err := c.Branch(ref)
	if err != nil {
		return 0, err
	}
	return b.Head, nil
}

// ancestrySet builds the lineage bitmap of v: v plus all transitive
// ancestors, as version ids. A branch whose head is v supplies its persisted
// lineage directly — branch-to-branch merge-base discovery then costs one
// bitmap intersection, no walk at all. Otherwise the set is assembled from
// the metadata mirror's parent lists (no weighted graph is built).
func (c *CVD) ancestrySet(v vgraph.VersionID) (*bitmap.Bitmap, error) {
	for _, b := range c.bm.branches {
		if b.Head == v && b.Lineage != nil {
			return b.Lineage, nil
		}
	}
	if _, err := c.vm.info(v); err != nil {
		return nil, err
	}
	set := bitmap.New()
	stack := []vgraph.VersionID{v}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if set.Contains(int64(u)) {
			continue
		}
		set.Add(int64(u))
		info, err := c.vm.info(u)
		if err != nil {
			return nil, err
		}
		stack = append(stack, info.Parents...)
	}
	set.Optimize()
	return set, nil
}
