package core

import (
	"orpheusdb/internal/engine"
	"orpheusdb/internal/vgraph"
)

// splitByVlist separates data from versioning information (Approach 2,
// Figure 1c.i): a data table (rid, attrs...) and a versioning table
// (rid, vlist). The vlist is a compressed bitmap of version ids. Commit
// still pays a per-record update in the versioning table (the model's
// structural weakness the paper exposes); checkout selects rids whose vlist
// contains the version and joins them with the data table.
type splitByVlist struct {
	db  *engine.DB
	cvd string
}

func (m *splitByVlist) Kind() ModelKind { return SplitByVlistModel }

func (m *splitByVlist) dataName() string    { return m.cvd + "_vl_data" }
func (m *splitByVlist) versionName() string { return m.cvd + "_vl_version" }

func (m *splitByVlist) Init(cols []engine.Column) error {
	dt, err := m.db.CreateTable(m.dataName(), dataColumns(cols))
	if err != nil {
		return err
	}
	if err := dt.SetPrimaryKey("rid"); err != nil {
		return err
	}
	vt, err := m.db.CreateTable(m.versionName(), []engine.Column{
		{Name: "rid", Type: engine.KindInt},
		{Name: "vlist", Type: engine.KindBitmap},
	})
	if err != nil {
		return err
	}
	return vt.SetPrimaryKey("rid")
}

func (m *splitByVlist) Commit(vid vgraph.VersionID, _ []vgraph.VersionID, all []Record, fresh []Record) error {
	dt, err := m.db.MustTable(m.dataName())
	if err != nil {
		return err
	}
	vt, err := m.db.MustTable(m.versionName())
	if err != nil {
		return err
	}
	freshSet := make(map[vgraph.RecordID]bool, len(fresh))
	for _, r := range fresh {
		freshSet[r.RID] = true
	}
	// UPDATE versioningTable SET vlist = vlist + vj WHERE rid IN (...):
	// per-record updates via the rid primary-key index. Stored bitmaps are
	// immutable, so each touched vlist is cloned before the version is
	// added.
	ix := vt.Index("rid")
	vlistCol := vt.ColIndex("vlist")
	for _, r := range all {
		if freshSet[r.RID] {
			continue
		}
		ids := ix.Lookup(engine.IntValue(int64(r.RID)))
		for _, id := range ids {
			row := vt.Get(id)
			vl := membershipValue(row[vlistCol]).Clone()
			vl.Add(int64(vid))
			nr := engine.CloneRow(row)
			nr[vlistCol] = engine.BitmapValue(vl)
			if err := vt.Update(id, nr); err != nil {
				return err
			}
		}
	}
	for _, r := range fresh {
		if _, err := dt.Insert(rowWithRID(r)); err != nil {
			return err
		}
		_, err := vt.Insert(engine.Row{
			engine.IntValue(int64(r.RID)),
			engine.BitmapFromSlice([]int64{int64(vid)}),
		})
		if err != nil {
			return err
		}
	}
	return nil
}

func (m *splitByVlist) Checkout(vid vgraph.VersionID) ([]Record, error) {
	vt, err := m.db.MustTable(m.versionName())
	if err != nil {
		return nil, err
	}
	// SELECT rid FROM versioningTable WHERE vid ∈ vlist — a full scan of
	// the versioning table with bitmap membership probes...
	vlistCol := vt.ColIndex("vlist")
	var rids []int64
	vt.Scan(func(_ engine.RowID, row engine.Row) bool {
		if membershipValue(row[vlistCol]).Contains(int64(vid)) {
			rids = append(rids, row[0].I)
		}
		return true
	})
	// ...followed by a join with the data table.
	return m.FetchRecords(rids)
}

// FetchRecords joins the given record ids against the data table.
func (m *splitByVlist) FetchRecords(rids []int64) ([]Record, error) {
	dt, err := m.db.MustTable(m.dataName())
	if err != nil {
		return nil, err
	}
	rows, err := engine.JoinRids(dt, 0, rids, m.db.JoinMethodSetting())
	if err != nil {
		return nil, err
	}
	out := make([]Record, len(rows))
	for i, row := range rows {
		out[i] = recordFromRow(row)
	}
	return out, nil
}

func (m *splitByVlist) StorageBytes() int64 {
	var n int64
	if t := m.db.Table(m.dataName()); t != nil {
		n += t.SizeBytes()
	}
	return n + m.MembershipBytes()
}

// MembershipBytes reports the versioning-table (vlist) footprint.
func (m *splitByVlist) MembershipBytes() int64 {
	if t := m.db.Table(m.versionName()); t != nil {
		return t.SizeBytes()
	}
	return 0
}

func (m *splitByVlist) AddColumn(c engine.Column) error {
	dt, err := m.db.MustTable(m.dataName())
	if err != nil {
		return err
	}
	return dt.AddColumn(c)
}

func (m *splitByVlist) AlterColumnType(name string, k engine.Kind) error {
	dt, err := m.db.MustTable(m.dataName())
	if err != nil {
		return err
	}
	return dt.AlterColumnType(name, k)
}

func (m *splitByVlist) Drop() error {
	for _, n := range []string{m.dataName(), m.versionName()} {
		if m.db.HasTable(n) {
			if err := m.db.DropTable(n); err != nil {
				return err
			}
		}
	}
	return nil
}

var (
	_ DataModel       = (*splitByVlist)(nil)
	_ recordFetcher   = (*splitByVlist)(nil)
	_ membershipSized = (*splitByVlist)(nil)
)
