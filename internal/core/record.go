// Package core implements the OrpheusDB versioning layer: collaborative
// versioned datasets (CVDs), the five data models of Section 3 (a-table-per-
// version, combined-table, split-by-vlist, split-by-rlist, delta-based), the
// record/version/provenance managers, multi-version checkout with primary-key
// precedence, commit with the no-cross-version-diff rule, diff, and schema
// evolution. It sits as middleware over the internal/engine database, which —
// like PostgreSQL in the paper — is completely unaware of versioning.
package core

import (
	"hash/fnv"

	"orpheusdb/internal/engine"
	"orpheusdb/internal/vgraph"
)

// Record pairs an immutable record id with its data attributes (data columns
// only; no versioning attributes).
type Record struct {
	RID  vgraph.RecordID
	Data engine.Row
}

// RecordHash is a 128-bit content hash of a record's data attributes. Records
// within a CVD are immutable, so equal hashes identify "the same" record for
// the no-cross-version-diff commit rule.
type RecordHash struct {
	H1, H2 uint64
}

// HashRow computes the content hash of a row's data attributes.
func HashRow(r engine.Row) RecordHash {
	key := engine.EncodeKey(r...)
	a := fnv.New64a()
	a.Write([]byte(key))
	b := fnv.New64()
	b.Write([]byte{0x5f})
	b.Write([]byte(key))
	return RecordHash{H1: a.Sum64(), H2: b.Sum64()}
}
