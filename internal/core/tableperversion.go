package core

import (
	"fmt"

	"orpheusdb/internal/engine"
	"orpheusdb/internal/vgraph"
)

// tablePerVersion stores every version as its own table (Approach 5). It is
// checkout-optimal and storage-pathological: the paper keeps it as the
// yardstick both extremes are measured against.
type tablePerVersion struct {
	db       *engine.DB
	cvd      string
	cols     []engine.Column
	versions []vgraph.VersionID
}

func (m *tablePerVersion) Kind() ModelKind { return TablePerVersionModel }

func (m *tablePerVersion) tableName(vid vgraph.VersionID) string {
	return fmt.Sprintf("%s_tpv_v%d", m.cvd, vid)
}

func (m *tablePerVersion) Init(cols []engine.Column) error {
	m.cols = dataColumns(cols)
	return nil
}

func (m *tablePerVersion) Commit(vid vgraph.VersionID, _ []vgraph.VersionID, all []Record, _ []Record) error {
	t, err := m.db.CreateTable(m.tableName(vid), m.cols)
	if err != nil {
		return err
	}
	for _, r := range all {
		if _, err := t.Insert(rowWithRID(r)); err != nil {
			return err
		}
	}
	m.versions = append(m.versions, vid)
	return nil
}

func (m *tablePerVersion) Checkout(vid vgraph.VersionID) ([]Record, error) {
	t, err := m.db.MustTable(m.tableName(vid))
	if err != nil {
		return nil, fmt.Errorf("core: %s: no version %d: %w", m.cvd, vid, err)
	}
	out := make([]Record, 0, t.NumRows())
	t.Scan(func(_ engine.RowID, row engine.Row) bool {
		out = append(out, recordFromRow(row))
		return true
	})
	return out, nil
}

func (m *tablePerVersion) StorageBytes() int64 {
	var n int64
	for _, vid := range m.versions {
		if t := m.db.Table(m.tableName(vid)); t != nil {
			n += t.SizeBytes()
		}
	}
	return n
}

func (m *tablePerVersion) AddColumn(c engine.Column) error {
	m.cols = append(m.cols, c)
	for _, vid := range m.versions {
		if t := m.db.Table(m.tableName(vid)); t != nil {
			if err := t.AddColumn(c); err != nil {
				return err
			}
		}
	}
	return nil
}

func (m *tablePerVersion) AlterColumnType(name string, k engine.Kind) error {
	for i := range m.cols {
		if m.cols[i].Name == name {
			m.cols[i].Type = engine.MoreGeneral(m.cols[i].Type, k)
		}
	}
	for _, vid := range m.versions {
		if t := m.db.Table(m.tableName(vid)); t != nil {
			if err := t.AlterColumnType(name, k); err != nil {
				return err
			}
		}
	}
	return nil
}

func (m *tablePerVersion) Drop() error {
	for _, vid := range m.versions {
		name := m.tableName(vid)
		if m.db.HasTable(name) {
			if err := m.db.DropTable(name); err != nil {
				return err
			}
		}
	}
	m.versions = nil
	return nil
}
