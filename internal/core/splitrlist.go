package core

import (
	"fmt"

	"orpheusdb/internal/bitmap"
	"orpheusdb/internal/engine"
	"orpheusdb/internal/vgraph"
)

// splitByRlist is the model OrpheusDB adopts (Approach 3, Figure 1c.ii): a
// data table (rid, attrs...) and a versioning table (vid, rlist). Commit adds
// a single versioning tuple — no array appends — and checkout unnests the
// version's rlist and joins it with the data table. The rlist is stored as a
// compressed bitmap, so one versioning tuple costs O(runs) bytes for the
// dense record ranges commits typically produce.
type splitByRlist struct {
	db  *engine.DB
	cvd string
}

func (m *splitByRlist) Kind() ModelKind { return SplitByRlistModel }

func (m *splitByRlist) dataName() string    { return m.cvd + "_rl_data" }
func (m *splitByRlist) versionName() string { return m.cvd + "_rl_version" }

func (m *splitByRlist) Init(cols []engine.Column) error {
	dt, err := m.db.CreateTable(m.dataName(), dataColumns(cols))
	if err != nil {
		return err
	}
	if err := dt.SetPrimaryKey("rid"); err != nil {
		return err
	}
	vt, err := m.db.CreateTable(m.versionName(), []engine.Column{
		{Name: "vid", Type: engine.KindInt},
		{Name: "rlist", Type: engine.KindBitmap},
	})
	if err != nil {
		return err
	}
	return vt.SetPrimaryKey("vid")
}

func (m *splitByRlist) Commit(vid vgraph.VersionID, _ []vgraph.VersionID, all []Record, fresh []Record) error {
	dt, err := m.db.MustTable(m.dataName())
	if err != nil {
		return err
	}
	vt, err := m.db.MustTable(m.versionName())
	if err != nil {
		return err
	}
	for _, r := range fresh {
		if _, err := dt.Insert(rowWithRID(r)); err != nil {
			return err
		}
	}
	// INSERT INTO versioningTable VALUES (vid, <bitmap>) — one tuple.
	_, err = vt.Insert(engine.Row{
		engine.IntValue(int64(vid)),
		engine.BitmapFromSlice(ridsOf(all)),
	})
	return err
}

// RlistSet fetches the membership bitmap of a version via the vid
// primary-key index. The bitmap is shared and must not be mutated.
func (m *splitByRlist) RlistSet(vid vgraph.VersionID) (*bitmap.Bitmap, error) {
	vt, err := m.db.MustTable(m.versionName())
	if err != nil {
		return nil, err
	}
	ids := vt.Index("vid").Lookup(engine.IntValue(int64(vid)))
	if len(ids) == 0 {
		return nil, fmt.Errorf("core: %s: no version %d", m.cvd, vid)
	}
	return membershipValue(vt.Get(ids[0])[1]), nil
}

// Rlist fetches the record-id list of a version. The returned slice is a
// fresh copy: mutating it cannot corrupt the stored versioning tuple (the
// pre-bitmap implementation aliased the stored array).
func (m *splitByRlist) Rlist(vid vgraph.VersionID) ([]int64, error) {
	set, err := m.RlistSet(vid)
	if err != nil {
		return nil, err
	}
	return set.ToSlice(), nil
}

func (m *splitByRlist) Checkout(vid vgraph.VersionID) ([]Record, error) {
	set, err := m.RlistSet(vid)
	if err != nil {
		return nil, err
	}
	return m.FetchRecordSet(set)
}

// FetchRecords joins the given record ids against the data table — the same
// physical plan as checkout, but driven by any membership set (diffs,
// multi-version scans).
func (m *splitByRlist) FetchRecords(rids []int64) ([]Record, error) {
	dt, err := m.db.MustTable(m.dataName())
	if err != nil {
		return nil, err
	}
	// SELECT * INTO T' FROM dataTable, (SELECT unnest(rlist) ...) tmp
	// WHERE rid = rid_tmp — by default a hash join (Appendix D.1).
	rows, err := engine.JoinRids(dt, 0, rids, m.db.JoinMethodSetting())
	if err != nil {
		return nil, err
	}
	out := make([]Record, len(rows))
	for i, row := range rows {
		out[i] = recordFromRow(row)
	}
	return out, nil
}

// FetchRecordSet is FetchRecords driven by the membership bitmap itself: the
// scan probes the set in place, skipping both the rid materialization and
// the transient hash build, and splits into parallel page chunks on
// multi-core hosts.
func (m *splitByRlist) FetchRecordSet(set *bitmap.Bitmap) ([]Record, error) {
	dt, err := m.db.MustTable(m.dataName())
	if err != nil {
		return nil, err
	}
	rows, err := engine.JoinRidsSet(dt, 0, set, m.db.JoinMethodSetting())
	if err != nil {
		return nil, err
	}
	out := make([]Record, len(rows))
	for i, row := range rows {
		out[i] = recordFromRow(row)
	}
	return out, nil
}

func (m *splitByRlist) StorageBytes() int64 {
	var n int64
	if t := m.db.Table(m.dataName()); t != nil {
		n += t.SizeBytes()
	}
	return n + m.MembershipBytes()
}

// MembershipBytes reports the versioning-table footprint: the compressed
// bitmap membership, as opposed to record data.
func (m *splitByRlist) MembershipBytes() int64 {
	if t := m.db.Table(m.versionName()); t != nil {
		return t.SizeBytes()
	}
	return 0
}

func (m *splitByRlist) AddColumn(c engine.Column) error {
	dt, err := m.db.MustTable(m.dataName())
	if err != nil {
		return err
	}
	return dt.AddColumn(c)
}

func (m *splitByRlist) AlterColumnType(name string, k engine.Kind) error {
	dt, err := m.db.MustTable(m.dataName())
	if err != nil {
		return err
	}
	return dt.AlterColumnType(name, k)
}

func (m *splitByRlist) Drop() error {
	for _, n := range []string{m.dataName(), m.versionName()} {
		if m.db.HasTable(n) {
			if err := m.db.DropTable(n); err != nil {
				return err
			}
		}
	}
	return nil
}

var (
	_ DataModel        = (*splitByRlist)(nil)
	_ recordFetcher    = (*splitByRlist)(nil)
	_ recordSetFetcher = (*splitByRlist)(nil)
	_ membershipSized  = (*splitByRlist)(nil)
)
