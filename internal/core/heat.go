package core

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"orpheusdb/internal/vgraph"
)

// Heat tracks which versions of a CVD are actually accessed: lock-cheap
// counters recorded on the checkout/commit/merge paths, aggregated at read
// time into a heat table (top-K hot versions, per-branch checkout rates,
// cache hit ratio per version). The paper's partitioner assumes every
// version is equally likely to be checked out; Heat supplies the observed
// weights that let drift detection reflect real traffic instead.
//
// The write path is one RLock plus a few atomic adds when the version has
// been seen before; only a first access to a version takes the write lock.
// All methods are safe for concurrent use and nil receivers, mirroring the
// rest of the observability hooks.
type Heat struct {
	mu       sync.RWMutex
	versions map[vgraph.VersionID]*heatEntry

	checkouts atomic.Int64 // checkout ops (not per-version credits)
	hits      atomic.Int64 // checkout ops served from cache
	commits   atomic.Int64
	merges    atomic.Int64

	recent recentRing // per-version access credits (per-branch rate source)
	ops    recentRing // whole operations (ops/s source)

	// Clock supplies "now" for rate windows; replaceable for deterministic
	// tests.
	Clock func() time.Time
}

type heatEntry struct {
	checkouts atomic.Int64
	hits      atomic.Int64
	lastUnix  atomic.Int64 // unix nanoseconds of last access
}

// recentRing is a fixed lock-free log of recent version accesses, each entry
// a (unix-second, version) pair packed into one uint64. Readers scan all
// slots and window by the embedded second, which is what per-branch rates
// are computed from. Writes race benignly: a torn overwrite loses one sample
// of telemetry, nothing more.
type recentRing struct {
	idx   atomic.Uint64
	slots [1024]atomic.Uint64
}

func (r *recentRing) record(sec int64, v vgraph.VersionID) {
	i := r.idx.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(uint64(sec)<<24 | uint64(v)&0xffffff)
}

// scan invokes fn for every recorded access not older than window seconds.
func (r *recentRing) scan(nowSec, windowSec int64, fn func(sec int64, v vgraph.VersionID)) {
	for i := range r.slots {
		packed := r.slots[i].Load()
		if packed == 0 {
			continue
		}
		sec := int64(packed >> 24)
		if nowSec-sec >= windowSec {
			continue
		}
		fn(sec, vgraph.VersionID(packed&0xffffff))
	}
}

// NewHeat builds an empty tracker.
func NewHeat() *Heat {
	return &Heat{versions: make(map[vgraph.VersionID]*heatEntry)}
}

func (h *Heat) now() time.Time {
	if h.Clock != nil {
		return h.Clock()
	}
	return time.Now()
}

// entry returns the tracker for v, creating it under the write lock on first
// access.
func (h *Heat) entry(v vgraph.VersionID) *heatEntry {
	h.mu.RLock()
	e := h.versions[v]
	h.mu.RUnlock()
	if e != nil {
		return e
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if e = h.versions[v]; e == nil {
		e = &heatEntry{}
		h.versions[v] = e
	}
	return e
}

func (h *Heat) touch(vids []vgraph.VersionID, hit bool, now time.Time) {
	sec := now.Unix()
	nano := now.UnixNano()
	for _, v := range vids {
		e := h.entry(v)
		e.checkouts.Add(1)
		if hit {
			e.hits.Add(1)
		}
		e.lastUnix.Store(nano)
		h.recent.record(sec, v)
	}
}

// RecordCheckout notes one checkout operation over vids (empty for the
// all-versions view) and whether it was served from the checkout cache.
func (h *Heat) RecordCheckout(vids []vgraph.VersionID, hit bool) {
	if h == nil {
		return
	}
	h.checkouts.Add(1)
	if hit {
		h.hits.Add(1)
	}
	now := h.now()
	h.ops.record(now.Unix(), 0)
	h.touch(vids, hit, now)
}

// RecordCommit notes one commit; the parents are credited as accesses (a
// commit reads its parent's record set for hash matching).
func (h *Heat) RecordCommit(parents []vgraph.VersionID) {
	if h == nil {
		return
	}
	h.commits.Add(1)
	now := h.now()
	h.ops.record(now.Unix(), 0)
	h.touch(parents, false, now)
}

// RecordMerge notes one merge; both sides are credited as accesses.
func (h *Heat) RecordMerge(ours, theirs vgraph.VersionID) {
	if h == nil {
		return
	}
	h.merges.Add(1)
	now := h.now()
	h.ops.record(now.Unix(), 0)
	h.touch([]vgraph.VersionID{ours, theirs}, false, now)
}

// Weights returns per-version access counts (checkout credits), the shape
// partition.Online.SetAccessWeights consumes. Nil when nothing was recorded,
// so callers fall back to the paper's uniform assumption.
func (h *Heat) Weights() map[vgraph.VersionID]int64 {
	if h == nil {
		return nil
	}
	h.mu.RLock()
	defer h.mu.RUnlock()
	if len(h.versions) == 0 {
		return nil
	}
	out := make(map[vgraph.VersionID]int64, len(h.versions))
	for v, e := range h.versions {
		if n := e.checkouts.Load(); n > 0 {
			out[v] = n
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// rateWindowSec is the sliding window (seconds) behind the ops/s figures.
const rateWindowSec = 60

// VersionHeat is one row of the heat table.
type VersionHeat struct {
	Version    vgraph.VersionID `json:"version"`
	Checkouts  int64            `json:"checkouts"`
	CacheHits  int64            `json:"cache_hits"`
	HitRatio   float64          `json:"hit_ratio"`
	LastAccess int64            `json:"last_access_ms,omitempty"` // unix milliseconds, 0 if never
}

// BranchHeat is the observed access rate of one branch: checkouts crediting
// any version in the branch's lineage.
type BranchHeat struct {
	Name      string           `json:"name"`
	Head      vgraph.VersionID `json:"head"`
	Recent    int64            `json:"recent_checkouts"`
	PerSecond float64          `json:"checkouts_per_second"`
}

// HeatSnapshot is the aggregated heat table served on
// GET /api/v1/datasets/{name}/heat.
type HeatSnapshot struct {
	TrackedVersions int           `json:"tracked_versions"`
	Checkouts       int64         `json:"checkouts"`
	CacheHits       int64         `json:"cache_hits"`
	CacheHitRatio   float64       `json:"cache_hit_ratio"`
	Commits         int64         `json:"commits"`
	Merges          int64         `json:"merges"`
	OpsPerSecond    float64       `json:"ops_per_second"` // checkouts+commits+merges over the window
	WindowSeconds   int64         `json:"window_seconds"`
	TopVersions     []VersionHeat `json:"top_versions"`
	Branches        []BranchHeat  `json:"branches,omitempty"`
}

// Snapshot aggregates the counters: the topK hottest versions by checkout
// count, totals and cache hit ratio, the sliding-window op rate, and — when
// branches are supplied — per-branch checkout rates computed by joining the
// recent-access ring against each branch's lineage bitmap.
func (h *Heat) Snapshot(topK int, branches []*BranchInfo) HeatSnapshot {
	if h == nil {
		return HeatSnapshot{WindowSeconds: rateWindowSec}
	}
	now := h.now()
	snap := HeatSnapshot{
		Checkouts:     h.checkouts.Load(),
		CacheHits:     h.hits.Load(),
		Commits:       h.commits.Load(),
		Merges:        h.merges.Load(),
		WindowSeconds: rateWindowSec,
	}
	if snap.Checkouts > 0 {
		snap.CacheHitRatio = float64(snap.CacheHits) / float64(snap.Checkouts)
	}

	h.mu.RLock()
	snap.TrackedVersions = len(h.versions)
	rows := make([]VersionHeat, 0, len(h.versions))
	for v, e := range h.versions {
		r := VersionHeat{
			Version:   v,
			Checkouts: e.checkouts.Load(),
			CacheHits: e.hits.Load(),
		}
		if r.Checkouts > 0 {
			r.HitRatio = float64(r.CacheHits) / float64(r.Checkouts)
		}
		if n := e.lastUnix.Load(); n > 0 {
			r.LastAccess = n / int64(time.Millisecond)
		}
		rows = append(rows, r)
	}
	h.mu.RUnlock()

	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Checkouts != rows[j].Checkouts {
			return rows[i].Checkouts > rows[j].Checkouts
		}
		return rows[i].Version < rows[j].Version
	})
	if topK > 0 && len(rows) > topK {
		rows = rows[:topK]
	}
	snap.TopVersions = rows

	var windowedOps int64
	h.ops.scan(now.Unix(), rateWindowSec, func(int64, vgraph.VersionID) { windowedOps++ })
	snap.OpsPerSecond = float64(windowedOps) / float64(rateWindowSec)

	// Window the recent-access ring once, then attribute to branches by
	// lineage membership. A version on two branches credits both — lineages
	// overlap by construction, and the question each row answers is "how hot
	// is the history this branch can reach".
	perVersion := make(map[vgraph.VersionID]int64)
	h.recent.scan(now.Unix(), rateWindowSec, func(_ int64, v vgraph.VersionID) {
		perVersion[v]++
	})

	for _, b := range branches {
		bh := BranchHeat{Name: b.Name, Head: b.Head}
		for v, n := range perVersion {
			if b.Lineage != nil && b.Lineage.Contains(int64(v)) {
				bh.Recent += n
			}
		}
		bh.PerSecond = float64(bh.Recent) / float64(rateWindowSec)
		snap.Branches = append(snap.Branches, bh)
	}
	return snap
}
