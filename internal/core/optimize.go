package core

import (
	"fmt"
	"sort"
	"time"

	"orpheusdb/internal/bitmap"
	"orpheusdb/internal/engine"
	"orpheusdb/internal/partition"
	"orpheusdb/internal/vgraph"
)

// PartitionedModel is the extended interface of the partitioned split-by-
// rlist model, which the partition optimizer operates on.
type PartitionedModel interface {
	DataModel
	// NumPartitions returns the live partition count.
	NumPartitions() int
	// PartitionOf returns the physical partition holding a version.
	PartitionOf(v vgraph.VersionID) (int, bool)
	// PartitionRecords returns |Rk| for a physical partition.
	PartitionRecords(p int) int64
	// StorageRecords returns S = Σ|Rk|.
	StorageRecords() int64
	// CheckoutCost returns the current Cavg in records.
	CheckoutCost() float64
	// WeightedCheckoutCost returns Cavg reweighted by observed per-version
	// checkout frequencies (missing versions weigh 1; nil = CheckoutCost).
	WeightedCheckoutCost(freq map[vgraph.VersionID]int64) float64
	// SetOnlineParams configures online placement (δ*, γ in records).
	SetOnlineParams(deltaStar float64, gammaRecords int64)
	// ApplyPartitioning migrates to the given version groups.
	ApplyPartitioning(groups [][]vgraph.VersionID, naive bool) (*MigrationReport, error)
	// PlanPartitionBatches plans a bounded-batch migration to the groups.
	PlanPartitionBatches(groups [][]vgraph.VersionID, batchRows int64) ([]PartitionBatch, error)
	// ApplyPartitionBatch executes one planned batch.
	ApplyPartitionBatch(b PartitionBatch) (int64, error)
	// PartitionStatus snapshots the live layout.
	PartitionStatus() *PartitionStatus
}

// OptimizeResult reports one invocation of the partition optimizer.
type OptimizeResult struct {
	Delta         float64
	Gamma         int64
	Partitions    int
	EstStorage    int64
	EstCheckout   float64
	Migration     *MigrationReport
	MigrationTime time.Duration
	SolveTime     time.Duration
}

// Optimize runs LYRESPLIT under the storage budget γ = gammaFactor·|R| and
// migrates the CVD's partitioned model to the resulting layout (the
// `optimize` command of Section 2.2). The CVD must use the partitioned
// split-by-rlist model. naive selects rebuild-from-scratch migration.
func (c *CVD) Optimize(gammaFactor float64, naive bool) (*OptimizeResult, error) {
	pm, ok := c.model.(PartitionedModel)
	if !ok {
		return nil, fmt.Errorf("core: %s: optimize requires the %s model (have %s)",
			c.name, PartitionedRlistModel, c.model.Kind())
	}
	g, err := c.vm.graph()
	if err != nil {
		return nil, err
	}
	if g.Len() == 0 {
		return nil, fmt.Errorf("core: %s: nothing to optimize", c.name)
	}
	totalRecords := int64(c.rm.nextR - 1)
	gamma := int64(gammaFactor * float64(totalRecords))
	ls := &partition.LyreSplit{Tree: g.ToTree()}
	t0 := time.Now()
	res, err := ls.Solve(gamma)
	if err != nil {
		return nil, err
	}
	solveTime := time.Since(t0)
	t1 := time.Now()
	report, err := pm.ApplyPartitioning(res.Groups, naive)
	if err != nil {
		return nil, err
	}
	pm.SetOnlineParams(res.Delta, gamma)
	return &OptimizeResult{
		Delta:         res.Delta,
		Gamma:         gamma,
		Partitions:    len(res.Groups),
		EstStorage:    res.EstStorage,
		EstCheckout:   res.EstCheckout,
		Migration:     report,
		MigrationTime: time.Since(t1),
		SolveTime:     solveTime,
	}, nil
}

// reloadPartitionedState rebuilds the partitioned model's caches from its
// tables after a database reload.
func (m *partitionedRlist) reload(cols []engine.Column) error {
	m.cols = dataColumns(cols)
	m.partOf = make(map[vgraph.VersionID]int)
	m.rlists = make(map[vgraph.VersionID]*bitmap.Bitmap)
	m.partRecs = make(map[int]*bitmap.Bitmap)
	m.partIDs = nil
	mt, err := m.db.MustTable(m.mapName())
	if err != nil {
		return err
	}
	mt.Scan(func(_ engine.RowID, row engine.Row) bool {
		m.partOf[vgraph.VersionID(row[0].I)] = int(row[1].I)
		return true
	})
	seenPart := make(map[int]bool)
	for _, p := range m.partOf {
		seenPart[p] = true
	}
	// Partition 0 exists even before the first commit.
	if m.db.HasTable(m.dataName(0)) {
		seenPart[0] = true
	}
	for p := range seenPart {
		m.partIDs = append(m.partIDs, p)
	}
	// Keep the partition walk order stable across reloads: cross-partition
	// fetches visit partIDs in order, and WAL replay of migration batches must
	// reproduce the live walk exactly.
	sort.Ints(m.partIDs)
	for _, p := range m.partIDs {
		if p >= m.nextPart {
			m.nextPart = p + 1
		}
		recs := bitmap.New()
		dt, err := m.db.MustTable(m.dataName(p))
		if err != nil {
			return err
		}
		dt.Scan(func(_ engine.RowID, row engine.Row) bool {
			recs.Add(row[0].I)
			return true
		})
		recs.Optimize()
		m.partRecs[p] = recs
		m.storageRecs += recs.Cardinality()
		vt, err := m.db.MustTable(m.versionName(p))
		if err != nil {
			return err
		}
		vt.Scan(func(_ engine.RowID, row engine.Row) bool {
			set := row[1].B
			if set == nil {
				// Pre-bitmap snapshot compatibility.
				set = bitmap.FromSlice(row[1].A)
			}
			m.rlists[vgraph.VersionID(row[0].I)] = set
			return true
		})
	}
	m.totalRecords = m.countMaxRid()
	return nil
}

// MaintenanceResult reports one MaintainPartitions check.
type MaintenanceResult struct {
	// Cavg and BestCavg are the current and LYRESPLIT-optimal checkout
	// costs in records.
	Cavg, BestCavg float64
	// Migrated reports whether the tolerance factor was exceeded and a
	// migration ran; Optimize carries its details.
	Migrated bool
	Optimize *OptimizeResult
}

// MaintainPartitions implements the periodic check of Section 4.3: compute
// the current checkout cost Cavg of the partitioned layout, the best cost
// C*avg LYRESPLIT can reach under γ = gammaFactor·|R|, and migrate when
// Cavg > µ·C*avg. The OrpheusDB backend calls this after commits (or on the
// `optimize` command's schedule).
func (c *CVD) MaintainPartitions(gammaFactor, mu float64, naive bool) (*MaintenanceResult, error) {
	pm, ok := c.model.(PartitionedModel)
	if !ok {
		return nil, fmt.Errorf("core: %s: maintenance requires the %s model (have %s)",
			c.name, PartitionedRlistModel, c.model.Kind())
	}
	g, err := c.vm.graph()
	if err != nil {
		return nil, err
	}
	if g.Len() == 0 {
		return &MaintenanceResult{}, nil
	}
	totalRecords := int64(c.rm.nextR - 1)
	gamma := int64(gammaFactor * float64(totalRecords))
	ls := &partition.LyreSplit{Tree: g.ToTree()}
	res, err := ls.Solve(gamma)
	if err != nil {
		return nil, err
	}
	out := &MaintenanceResult{Cavg: pm.CheckoutCost(), BestCavg: res.EstCheckout}
	// Keep δ* and γ fresh for online placement even when no migration runs.
	pm.SetOnlineParams(res.Delta, gamma)
	if out.BestCavg <= 0 || out.Cavg <= mu*out.BestCavg {
		return out, nil
	}
	opt, err := c.Optimize(gammaFactor, naive)
	if err != nil {
		return nil, err
	}
	out.Migrated = true
	out.Optimize = opt
	return out, nil
}
