package core

import (
	"testing"

	"orpheusdb/internal/engine"
	"orpheusdb/internal/merge"
	"orpheusdb/internal/vgraph"
)

func branchCVD(t *testing.T) (*engine.DB, *CVD) {
	t.Helper()
	db := engine.NewDB()
	c, err := Init(db, "b", []engine.Column{
		{Name: "id", Type: engine.KindInt},
		{Name: "val", Type: engine.KindString},
	}, InitOptions{PrimaryKey: []string{"id"}})
	if err != nil {
		t.Fatal(err)
	}
	return db, c
}

func commitPairs(t *testing.T, c *CVD, parents []vgraph.VersionID, pairs ...any) vgraph.VersionID {
	t.Helper()
	var rows []engine.Row
	for i := 0; i < len(pairs); i += 2 {
		rows = append(rows, engine.Row{
			engine.IntValue(int64(pairs[i].(int))),
			engine.StringValue(pairs[i+1].(string)),
		})
	}
	v, err := c.Commit(rows, parents, "c")
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestBranchBackfillOnOpen: CVDs snapshotted before the branch registry
// existed gain the branches table when opened.
func TestBranchBackfillOnOpen(t *testing.T) {
	db, c := branchCVD(t)
	v1 := commitPairs(t, c, nil, 1, "a")
	// Simulate a pre-branch snapshot: the table simply is not there.
	if err := db.DropTable("b__branches"); err != nil {
		t.Fatal(err)
	}
	re, err := Open(db, "b")
	if err != nil {
		t.Fatalf("open without branches table: %v", err)
	}
	if got := re.Branches(); len(got) != 0 {
		t.Fatalf("backfilled registry not empty: %v", got)
	}
	if _, err := re.CreateBranch("main", v1); err != nil {
		t.Fatalf("create on backfilled registry: %v", err)
	}
	// And it persists through a regular reopen.
	re2, err := Open(db, "b")
	if err != nil {
		t.Fatal(err)
	}
	if b, err := re2.Branch("main"); err != nil || b.Head != v1 {
		t.Fatalf("reopened branch = %+v, %v", b, err)
	}
}

// TestMergeBaseSelectsDeepestAncestor: the LCA is the deepest common
// version, not just any shared root.
func TestMergeBaseSelectsDeepestAncestor(t *testing.T) {
	_, c := branchCVD(t)
	v1 := commitPairs(t, c, nil, 1, "a")
	v2 := commitPairs(t, c, []vgraph.VersionID{v1}, 1, "a", 2, "b")
	v3 := commitPairs(t, c, []vgraph.VersionID{v2}, 1, "a", 2, "b", 3, "c")
	v4 := commitPairs(t, c, []vgraph.VersionID{v2}, 1, "a", 2, "b", 4, "d")
	base, ok, err := c.MergeBase(v3, v4)
	if err != nil || !ok || base != v2 {
		t.Fatalf("MergeBase(%d,%d) = %d,%v,%v; want %d", v3, v4, base, ok, err, v2)
	}
}

// TestMergeDisjointRoots: versions with no shared ancestry merge against an
// empty base (everything on both sides is an addition).
func TestMergeDisjointRoots(t *testing.T) {
	_, c := branchCVD(t)
	v1 := commitPairs(t, c, nil, 1, "a")
	v2 := commitPairs(t, c, nil, 2, "b") // second root
	res, err := c.Merge(v1, v2, MergeOptions{Policy: merge.PolicyFail})
	if err != nil {
		t.Fatal(err)
	}
	if res.Base != 0 || res.Version == 0 {
		t.Fatalf("disjoint merge = %+v", res)
	}
	rows, err := c.Checkout(res.Version)
	if err != nil || len(rows) != 2 {
		t.Fatalf("disjoint merge checkout = %v, %v", rows, err)
	}
}

// TestBranchLineageSharing: lineage bitmaps returned by Branch are the
// persisted objects; advancing recomputes rather than mutating in place.
func TestBranchLineageAdvance(t *testing.T) {
	_, c := branchCVD(t)
	v1 := commitPairs(t, c, nil, 1, "a")
	v2 := commitPairs(t, c, []vgraph.VersionID{v1}, 1, "a", 2, "b")
	b, err := c.CreateBranch("main", v1)
	if err != nil {
		t.Fatal(err)
	}
	old := b.Lineage
	nb, err := c.AdvanceBranch("main", v2)
	if err != nil {
		t.Fatal(err)
	}
	if old.Cardinality() != 1 {
		t.Fatal("advance mutated the previous lineage bitmap")
	}
	if nb.Lineage.Cardinality() != 2 || !nb.Lineage.Contains(int64(v2)) {
		t.Fatalf("advanced lineage = %v", nb.Lineage.ToSlice())
	}
	if _, err := c.AdvanceBranch("ghost", v2); err == nil {
		t.Fatal("advance of unknown branch succeeded")
	}
	if _, err := c.AdvanceBranch("main", vgraph.VersionID(99)); err == nil {
		t.Fatal("advance to unknown version succeeded")
	}
}
