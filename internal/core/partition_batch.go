package core

import (
	"fmt"
	"sort"
	"time"

	"orpheusdb/internal/bitmap"
	"orpheusdb/internal/engine"
	"orpheusdb/internal/partition"
	"orpheusdb/internal/vgraph"
)

// Batched partition migration. A full LYRESPLIT migration can move millions
// of rows; executing it as one critical section would stall checkouts for the
// whole rebuild. Instead the migration is planned as a sequence of bounded
// batches, each of which transforms one consistent layout into another: after
// every batch, every version's rlist is fully covered by its partition's data
// table, so checkouts interleaved between batches always succeed.
//
// Batches are *anchor-addressed and deterministic from state*: a batch never
// names a physical partition id. It names an anchor version, and the target
// partition is resolved as the anchor's current partition at apply time
// (anchor 0 means "create a fresh partition"). Applying the same batch
// sequence to the same starting state therefore reproduces the same layout —
// which is exactly what WAL replay does after a crash mid-migration. Commits
// that land between batches only ever add new versions (existing versions are
// never remapped outside a batch), so a plan stays applicable under traffic:
// anchors keep resolving, garbage collection re-derives the needed set at
// apply time, and drop-empty only removes partitions no version lives in.
//
// Batch order within a plan: all assign/preload batches first (rows are only
// ever added, so every record stays fetchable from its old partition), then
// gc batches (which delete only rows no resident version needs), then a
// single drop-empty.

// PartitionBatchKind discriminates migration batch types.
type PartitionBatchKind uint8

const (
	// PartitionBatchAssign remaps Versions onto the anchor's partition
	// (anchor 0: a fresh partition), first inserting whatever subset of
	// Members the target's data table is missing.
	PartitionBatchAssign PartitionBatchKind = 1
	// PartitionBatchPreload copies the missing subset of Members into the
	// anchor's partition without remapping any version. It bounds the row
	// volume of a later oversized assign.
	PartitionBatchPreload PartitionBatchKind = 2
	// PartitionBatchGC deletes, from the anchor's partition, the subset of
	// Members that no version currently resident there needs. The needed set
	// is recomputed at apply time, so commits landing mid-migration are safe.
	PartitionBatchGC PartitionBatchKind = 3
	// PartitionBatchDropEmpty drops every partition no version maps to and
	// refreshes the record-count statistics. Always the final batch.
	PartitionBatchDropEmpty PartitionBatchKind = 4
)

// String names the kind for logs and status payloads.
func (k PartitionBatchKind) String() string {
	switch k {
	case PartitionBatchAssign:
		return "assign"
	case PartitionBatchPreload:
		return "preload"
	case PartitionBatchGC:
		return "gc"
	case PartitionBatchDropEmpty:
		return "drop-empty"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// PartitionBatch is one bounded, WAL-logged step of a layout migration.
type PartitionBatch struct {
	Kind   PartitionBatchKind
	Anchor vgraph.VersionID // target = anchor's partition; 0 = fresh (assign only)
	// Versions lists the versions an assign batch remaps.
	Versions []vgraph.VersionID
	// Members is the batch's record set: the coverage an assign target must
	// gain, the rows a preload stages, or a gc's deletion candidates.
	Members *bitmap.Bitmap
}

// chunkSet splits a record set into consecutive chunks of at most n values.
func chunkSet(set *bitmap.Bitmap, n int64) []*bitmap.Bitmap {
	if n <= 0 || set.Cardinality() <= n {
		return []*bitmap.Bitmap{set}
	}
	var out []*bitmap.Bitmap
	buf := make([]int64, 0, n)
	set.Iterate(func(v int64) bool {
		buf = append(buf, v)
		if int64(len(buf)) == n {
			out = append(out, bitmap.FromSorted(buf))
			buf = buf[:0]
		}
		return true
	})
	if len(buf) > 0 {
		out = append(out, bitmap.FromSorted(buf))
	}
	return out
}

// PlanPartitionBatches turns a target version grouping into an ordered batch
// sequence. batchRows bounds the records any single batch inserts or deletes
// (<= 0: unbounded). Planning is read-only; the plan is valid as long as no
// other migration runs, even with commits landing in between.
func (m *partitionedRlist) PlanPartitionBatches(groups [][]vgraph.VersionID, batchRows int64) ([]PartitionBatch, error) {
	seen := make(map[vgraph.VersionID]bool, len(m.partOf))
	for _, grp := range groups {
		for _, v := range grp {
			if _, ok := m.rlists[v]; !ok {
				return nil, fmt.Errorf("core: %s: plan names unknown version %d", m.cvd, v)
			}
			if seen[v] {
				return nil, fmt.Errorf("core: %s: plan places version %d twice", m.cvd, v)
			}
			seen[v] = true
		}
	}
	for v := range m.partOf {
		if !seen[v] {
			return nil, fmt.Errorf("core: %s: plan omits version %d", m.cvd, v)
		}
	}

	type groupPlan struct {
		versions []vgraph.VersionID
		want     *bitmap.Bitmap
		target   int              // current pid the group keeps, or -1 for fresh
		anchor   vgraph.VersionID // group member resident in target (seed for fresh)
	}
	plans := make([]groupPlan, 0, len(groups))
	claimed := make(map[int]bool, len(groups))
	for _, grp := range groups {
		gp := groupPlan{versions: append([]vgraph.VersionID(nil), grp...)}
		sort.Slice(gp.versions, func(i, j int) bool { return gp.versions[i] < gp.versions[j] })
		sets := make([]*bitmap.Bitmap, len(gp.versions))
		for i, v := range gp.versions {
			sets[i] = m.rlists[v]
		}
		gp.want = bitmap.OrAll(sets...)
		// Keep the resident partition with the largest record overlap; the
		// group can only keep a partition one of its versions lives in (the
		// assign batches need a resident anchor).
		gp.target = -1
		var bestOverlap int64 = -1
		for _, v := range gp.versions {
			pid := m.partOf[v]
			if claimed[pid] {
				continue
			}
			if ov := gp.want.AndCardinality(m.partRecs[pid]); ov > bestOverlap {
				gp.target, gp.anchor, bestOverlap = pid, v, ov
			}
		}
		if gp.target >= 0 {
			claimed[gp.target] = true
			// Anchor on the smallest resident version for determinism.
			for _, v := range gp.versions {
				if m.partOf[v] == gp.target {
					gp.anchor = v
					break
				}
			}
		} else {
			// Fresh partition: seed with the smallest-rlist version so the
			// unavoidable unbatchable first insert is as small as possible.
			seed := gp.versions[0]
			for _, v := range gp.versions[1:] {
				if m.rlists[v].Cardinality() < m.rlists[seed].Cardinality() {
					seed = v
				}
			}
			gp.anchor = seed
		}
		plans = append(plans, gp)
	}

	var batches []PartitionBatch
	for _, gp := range plans {
		var cover *bitmap.Bitmap
		rest := make([]vgraph.VersionID, 0, len(gp.versions))
		if gp.target >= 0 {
			cover = m.partRecs[gp.target].Clone()
			for _, v := range gp.versions {
				if m.partOf[v] != gp.target {
					rest = append(rest, v)
				}
			}
		} else {
			// Seed assign creates the partition and moves the seed version.
			seedSet := m.rlists[gp.anchor]
			batches = append(batches, PartitionBatch{
				Kind:     PartitionBatchAssign,
				Anchor:   0,
				Versions: []vgraph.VersionID{gp.anchor},
				Members:  seedSet,
			})
			cover = seedSet.Clone()
			for _, v := range gp.versions {
				if v != gp.anchor {
					rest = append(rest, v)
				}
			}
		}
		var curVers []vgraph.VersionID
		var curMembers *bitmap.Bitmap
		var curNew int64
		flush := func() {
			if len(curVers) == 0 {
				return
			}
			batches = append(batches, PartitionBatch{
				Kind:     PartitionBatchAssign,
				Anchor:   gp.anchor,
				Versions: curVers,
				Members:  curMembers,
			})
			curVers, curMembers, curNew = nil, nil, 0
		}
		for _, v := range rest {
			missing := bitmap.AndNot(m.rlists[v], cover)
			n := missing.Cardinality()
			if batchRows > 0 && n > batchRows {
				// Oversized version: stage its rows through preload batches
				// first, then assign it with nothing left to insert.
				flush()
				for _, chunk := range chunkSet(missing, batchRows) {
					batches = append(batches, PartitionBatch{
						Kind:    PartitionBatchPreload,
						Anchor:  gp.anchor,
						Members: chunk,
					})
				}
				n = 0
			} else if batchRows > 0 && len(curVers) > 0 && curNew+n > batchRows {
				flush()
			}
			curVers = append(curVers, v)
			curMembers = bitmap.Or(curMembers, m.rlists[v])
			curNew += n
			cover = bitmap.Or(cover, m.rlists[v])
		}
		flush()
	}
	// GC after all inserts: until here every record is still fetchable from
	// its pre-migration partition.
	for _, gp := range plans {
		if gp.target < 0 {
			continue
		}
		candidates := bitmap.AndNot(m.partRecs[gp.target], gp.want)
		if candidates.IsEmpty() {
			continue
		}
		for _, chunk := range chunkSet(candidates, batchRows) {
			batches = append(batches, PartitionBatch{
				Kind:    PartitionBatchGC,
				Anchor:  gp.anchor,
				Members: chunk,
			})
		}
	}
	batches = append(batches, PartitionBatch{Kind: PartitionBatchDropEmpty})
	return batches, nil
}

// anchorPartition resolves a batch's target partition from its anchor.
func (m *partitionedRlist) anchorPartition(anchor vgraph.VersionID) (int, error) {
	pid, ok := m.partOf[anchor]
	if !ok {
		return 0, fmt.Errorf("core: %s: batch anchor version %d has no partition", m.cvd, anchor)
	}
	return pid, nil
}

// ApplyPartitionBatch executes one migration batch against the live layout,
// returning the number of data rows inserted or deleted. The apply is a pure
// function of the batch and the current model state, which is what makes WAL
// replay of a logged batch sequence converge to the live layout.
func (m *partitionedRlist) ApplyPartitionBatch(b PartitionBatch) (int64, error) {
	switch b.Kind {
	case PartitionBatchAssign:
		return m.applyAssign(b)
	case PartitionBatchPreload:
		pid, err := m.anchorPartition(b.Anchor)
		if err != nil {
			return 0, err
		}
		return m.insertMissing(pid, b.Members)
	case PartitionBatchGC:
		return m.applyGC(b)
	case PartitionBatchDropEmpty:
		return 0, m.applyDropEmpty()
	}
	return 0, fmt.Errorf("core: %s: unknown partition batch kind %d", m.cvd, b.Kind)
}

// insertMissing copies the subset of want the partition's data table lacks
// from wherever it currently lives, returning the row count inserted.
func (m *partitionedRlist) insertMissing(pid int, want *bitmap.Bitmap) (int64, error) {
	missing := bitmap.AndNot(want, m.partRecs[pid])
	if missing.IsEmpty() {
		return 0, nil
	}
	rows, err := m.fetchRowsAcross(missing)
	if err != nil {
		return 0, err
	}
	dt, err := m.db.MustTable(m.dataName(pid))
	if err != nil {
		return 0, err
	}
	for _, row := range rows {
		if _, err := dt.Insert(row); err != nil {
			return 0, err
		}
	}
	m.partRecs[pid] = bitmap.Or(m.partRecs[pid], missing)
	m.storageRecs += missing.Cardinality()
	return int64(len(rows)), nil
}

func (m *partitionedRlist) applyAssign(b PartitionBatch) (int64, error) {
	var pid int
	if b.Anchor != 0 {
		p, err := m.anchorPartition(b.Anchor)
		if err != nil {
			return 0, err
		}
		pid = p
	} else {
		p, err := m.createPartition()
		if err != nil {
			return 0, err
		}
		pid = p
	}
	moved, err := m.insertMissing(pid, b.Members)
	if err != nil {
		return 0, err
	}
	vt, err := m.db.MustTable(m.versionName(pid))
	if err != nil {
		return 0, err
	}
	mt, err := m.db.MustTable(m.mapName())
	if err != nil {
		return 0, err
	}
	for _, v := range b.Versions {
		set, ok := m.rlists[v]
		if !ok {
			return 0, fmt.Errorf("core: %s: assign batch names unknown version %d", m.cvd, v)
		}
		if !bitmap.AndNot(set, m.partRecs[pid]).IsEmpty() {
			return 0, fmt.Errorf("core: %s: assign batch under-covers version %d", m.cvd, v)
		}
		oldPid := m.partOf[v]
		if oldPid == pid {
			continue
		}
		oldVt, err := m.db.MustTable(m.versionName(oldPid))
		if err != nil {
			return 0, err
		}
		oldVt.DeleteBatch(oldVt.Index("vid").Lookup(engine.IntValue(int64(v))))
		if _, err := vt.Insert(engine.Row{
			engine.IntValue(int64(v)),
			engine.BitmapValue(set),
		}); err != nil {
			return 0, err
		}
		mrow := engine.Row{engine.IntValue(int64(v)), engine.IntValue(int64(pid))}
		if ids := mt.Index("vid").Lookup(engine.IntValue(int64(v))); len(ids) > 0 {
			if err := mt.Update(ids[0], mrow); err != nil {
				return 0, err
			}
		} else if _, err := mt.Insert(mrow); err != nil {
			return 0, err
		}
		m.partOf[v] = pid
	}
	return moved, nil
}

func (m *partitionedRlist) applyGC(b PartitionBatch) (int64, error) {
	pid, err := m.anchorPartition(b.Anchor)
	if err != nil {
		return 0, err
	}
	// The needed set is derived from the partition's residents *now*, so
	// versions committed after planning keep their records.
	var needed []*bitmap.Bitmap
	for v, p := range m.partOf {
		if p == pid {
			needed = append(needed, m.rlists[v])
		}
	}
	del := bitmap.AndNot(bitmap.And(b.Members, m.partRecs[pid]), bitmap.OrAll(needed...))
	if del.IsEmpty() {
		return 0, nil
	}
	dt, err := m.db.MustTable(m.dataName(pid))
	if err != nil {
		return 0, err
	}
	var drop []engine.RowID
	pr := bitmap.NewProber(del)
	dt.Scan(func(id engine.RowID, row engine.Row) bool {
		if pr.Contains(row[0].I) {
			drop = append(drop, id)
		}
		return true
	})
	dt.DeleteBatch(drop)
	// Tombstones still occupy heap slots the checkout probe scan walks, so
	// a partition that repeatedly shed records would keep paying scan cost
	// for rows long gone. Once a quarter of the heap is dead, rewrite it.
	if dt.NumDeleted()*4 > dt.NumRows() {
		if err := dt.Compact(); err != nil {
			return 0, err
		}
	}
	m.partRecs[pid] = bitmap.AndNot(m.partRecs[pid], del)
	m.storageRecs -= del.Cardinality()
	return int64(len(drop)), nil
}

func (m *partitionedRlist) applyDropEmpty() error {
	if len(m.partOf) == 0 {
		return nil // keep the bootstrap partition
	}
	resident := make(map[int]bool, len(m.partIDs))
	for _, p := range m.partOf {
		resident[p] = true
	}
	for _, pid := range append([]int(nil), m.partIDs...) {
		if !resident[pid] {
			if err := m.dropPartition(pid); err != nil {
				return err
			}
		}
	}
	m.totalRecords = m.countMaxRid()
	return nil
}

// PartitionStat describes one live physical partition.
type PartitionStat struct {
	ID       int   `json:"id"`
	Versions int   `json:"versions"`
	Records  int64 `json:"records"`
}

// PartitionStatus snapshots the partitioned layout for status endpoints.
type PartitionStatus struct {
	Partitions     []PartitionStat `json:"partitions"`
	StorageRecords int64           `json:"storage_records"`
	TotalRecords   int64           `json:"total_records"`
	CheckoutCost   float64         `json:"avg_checkout_records"`
	DeltaStar      float64         `json:"delta_star"`
	GammaRecords   int64           `json:"gamma_records"`
}

// PartitionStatus snapshots the current layout.
func (m *partitionedRlist) PartitionStatus() *PartitionStatus {
	st := &PartitionStatus{
		StorageRecords: m.storageRecs,
		TotalRecords:   m.totalRecords,
		CheckoutCost:   m.CheckoutCost(),
		DeltaStar:      m.deltaStar,
		GammaRecords:   m.gammaRecords,
	}
	counts := make(map[int]int, len(m.partIDs))
	for _, p := range m.partOf {
		counts[p]++
	}
	for _, pid := range m.partIDs {
		st.Partitions = append(st.Partitions, PartitionStat{
			ID:       pid,
			Versions: counts[pid],
			Records:  m.partRecs[pid].Cardinality(),
		})
	}
	return st
}

// RepartitionPlan is a planned batched migration, ready to be executed one
// batch at a time under the dataset's critical section.
type RepartitionPlan struct {
	Delta       float64
	Gamma       int64
	Groups      int
	EstStorage  int64
	EstCheckout float64
	SolveTime   time.Duration
	Batches     []PartitionBatch
}

// Rows reports the total records the plan's batches will insert plus the gc
// candidates they may delete — an upper bound on rows moved.
func (p *RepartitionPlan) Rows() int64 {
	var n int64
	for _, b := range p.Batches {
		if b.Members != nil && b.Kind != PartitionBatchAssign {
			n += b.Members.Cardinality()
		}
	}
	return n
}

// planBatches turns a LYRESPLIT grouping into a RepartitionPlan.
func (c *CVD) planBatches(pm PartitionedModel, groups [][]vgraph.VersionID, batchRows int64) (*RepartitionPlan, error) {
	batches, err := pm.PlanPartitionBatches(groups, batchRows)
	if err != nil {
		return nil, err
	}
	return &RepartitionPlan{Groups: len(groups), Batches: batches}, nil
}

// PlanRepartition solves LYRESPLIT under γ = gammaFactor·|R| and plans the
// batched migration to the resulting grouping. Read-only.
func (c *CVD) PlanRepartition(gammaFactor float64, batchRows int64) (*RepartitionPlan, error) {
	pm, ok := c.model.(PartitionedModel)
	if !ok {
		return nil, fmt.Errorf("core: %s: repartition requires the %s model (have %s)",
			c.name, PartitionedRlistModel, c.model.Kind())
	}
	g, err := c.vm.graph()
	if err != nil {
		return nil, err
	}
	if g.Len() == 0 {
		return nil, fmt.Errorf("core: %s: nothing to repartition", c.name)
	}
	gamma := int64(gammaFactor * float64(int64(c.rm.nextR-1)))
	ls := &partition.LyreSplit{Tree: g.ToTree()}
	t0 := time.Now()
	res, err := ls.Solve(gamma)
	if err != nil {
		return nil, err
	}
	plan, err := c.planBatches(pm, res.Groups, batchRows)
	if err != nil {
		return nil, err
	}
	plan.Delta = res.Delta
	plan.Gamma = gamma
	plan.EstStorage = res.EstStorage
	plan.EstCheckout = res.EstCheckout
	plan.SolveTime = time.Since(t0)
	return plan, nil
}

// PlanRepartitionDelta plans the batched migration for a fixed tolerance δ
// (the partbench sweep entry; no storage budget search).
func (c *CVD) PlanRepartitionDelta(delta float64, batchRows int64) (*RepartitionPlan, error) {
	pm, ok := c.model.(PartitionedModel)
	if !ok {
		return nil, fmt.Errorf("core: %s: repartition requires the %s model (have %s)",
			c.name, PartitionedRlistModel, c.model.Kind())
	}
	g, err := c.vm.graph()
	if err != nil {
		return nil, err
	}
	if g.Len() == 0 {
		return nil, fmt.Errorf("core: %s: nothing to repartition", c.name)
	}
	ls := &partition.LyreSplit{Tree: g.ToTree()}
	t0 := time.Now()
	res := ls.Run(delta)
	plan, err := c.planBatches(pm, res.Groups, batchRows)
	if err != nil {
		return nil, err
	}
	plan.Delta = delta
	plan.EstStorage = res.EstStorage
	plan.EstCheckout = res.EstCheckout
	plan.SolveTime = time.Since(t0)
	return plan, nil
}

// ApplyPartitionBatch executes one planned batch against the live layout.
func (c *CVD) ApplyPartitionBatch(b PartitionBatch) (int64, error) {
	pm, ok := c.model.(PartitionedModel)
	if !ok {
		return 0, fmt.Errorf("core: %s: batch apply requires the %s model (have %s)",
			c.name, PartitionedRlistModel, c.model.Kind())
	}
	return pm.ApplyPartitionBatch(b)
}

// PartitionStatus snapshots the partitioned layout; ok is false for CVDs on
// other data models.
func (c *CVD) PartitionStatus() (*PartitionStatus, bool) {
	pm, ok := c.model.(PartitionedModel)
	if !ok {
		return nil, false
	}
	return pm.PartitionStatus(), true
}

// MaintenanceCheck computes the µ-drift trigger inputs without migrating:
// the current Cavg, the best C*avg LYRESPLIT reaches under γ = gammaFactor·|R|,
// and the resulting grouping (so a triggered caller can plan batches from it).
func (c *CVD) MaintenanceCheck(gammaFactor float64) (cavg, bestCavg float64, groups [][]vgraph.VersionID, err error) {
	pm, ok := c.model.(PartitionedModel)
	if !ok {
		return 0, 0, nil, fmt.Errorf("core: %s: maintenance requires the %s model (have %s)",
			c.name, PartitionedRlistModel, c.model.Kind())
	}
	g, err := c.vm.graph()
	if err != nil {
		return 0, 0, nil, err
	}
	if g.Len() == 0 {
		return 0, 0, nil, nil
	}
	gamma := int64(gammaFactor * float64(int64(c.rm.nextR-1)))
	ls := &partition.LyreSplit{Tree: g.ToTree()}
	res, err := ls.Solve(gamma)
	if err != nil {
		return 0, 0, nil, err
	}
	// Keep δ* and γ fresh for online placement on every check.
	pm.SetOnlineParams(res.Delta, gamma)
	return pm.CheckoutCost(), res.EstCheckout, res.Groups, nil
}
