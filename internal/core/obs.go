package core

import (
	"orpheusdb/internal/obs"
)

// Metrics holds the optional latency histograms a CVD observes into. All
// fields may be nil (obs histogram methods are nil-safe), so an
// uninstrumented CVD — library use, most tests — pays a nil field read per
// operation and nothing more.
type Metrics struct {
	// CheckoutHit/CheckoutMiss split end-to-end checkout latency by whether
	// the materialization was served from the checkout cache — the
	// distribution pair behind the paper's checkout-latency claims.
	CheckoutHit  *obs.Histogram
	CheckoutMiss *obs.Histogram
	// Commit observes core commit latency (hash matching + model write +
	// metadata). Merge latency is observed one layer up, by the store's
	// Merge wrapper, since a merge spans branch resolution the CVD cannot
	// see.
	Commit *obs.Histogram
}

// SetMetrics attaches the latency histograms observed by Checkout and
// Commit. Like SetCache, call it before the CVD is shared.
func (c *CVD) SetMetrics(m *Metrics) { c.metrics = m }

// SetHeat attaches the per-version access tracker credited by Checkout,
// MultiVersionCheckout, AllVersionsCheckout, Commit, and Merge. Like
// SetCache, call it before the CVD is shared.
func (c *CVD) SetHeat(h *Heat) { c.heat = h }

// Heat returns the attached access tracker (nil when none).
func (c *CVD) Heat() *Heat { return c.heat }

// observeCheckout routes one checkout duration to the hit or miss histogram.
func (c *CVD) observeCheckout(seconds float64, hit bool) {
	if c.metrics == nil {
		return
	}
	if hit {
		c.metrics.CheckoutHit.Observe(seconds)
	} else {
		c.metrics.CheckoutMiss.Observe(seconds)
	}
}
