package core

import (
	"fmt"
	"sort"

	"orpheusdb/internal/engine"
	"orpheusdb/internal/partition"
	"orpheusdb/internal/vgraph"
)

// PartitionedRlistModel is the hybrid representation of Section 4: the
// split-by-rlist layout broken into partitions so a checkout touches only the
// records of its own partition. It is what the partition optimizer migrates a
// CVD to.
const PartitionedRlistModel ModelKind = "partitioned-rlist"

// partitionedRlist stores one (data, versioning) table pair per partition,
// a version→partition map, and online-maintenance parameters (δ*, γ).
type partitionedRlist struct {
	db   *engine.DB
	cvd  string
	cols []engine.Column // rid + data attributes

	partOf   map[vgraph.VersionID]int
	partIDs  []int // live physical partition ids
	nextPart int
	rlists   map[vgraph.VersionID][]int64
	partRecs map[int]map[int64]bool

	// deltaStar and gammaRecords implement the online placement rule: a new
	// version opens its own partition when it shares at most δ*·|R| records
	// with its best parent and storage is under γ. Zeroes disable splitting
	// (all versions share partition 0) until Optimize sets them.
	deltaStar    float64
	gammaRecords int64
	totalRecords int64 // |R|: distinct records across the CVD
	storageRecs  int64 // S = Σ|Rk|
}

func (m *partitionedRlist) Kind() ModelKind { return PartitionedRlistModel }

func (m *partitionedRlist) dataName(p int) string {
	return fmt.Sprintf("%s_part%d_data", m.cvd, p)
}
func (m *partitionedRlist) versionName(p int) string {
	return fmt.Sprintf("%s_part%d_version", m.cvd, p)
}
func (m *partitionedRlist) mapName() string { return m.cvd + "__partmap" }

func (m *partitionedRlist) Init(cols []engine.Column) error {
	m.cols = dataColumns(cols)
	m.partOf = make(map[vgraph.VersionID]int)
	m.rlists = make(map[vgraph.VersionID][]int64)
	m.partRecs = make(map[int]map[int64]bool)
	t, err := m.db.CreateTable(m.mapName(), []engine.Column{
		{Name: "vid", Type: engine.KindInt},
		{Name: "pid", Type: engine.KindInt},
	})
	if err != nil {
		return err
	}
	if err := t.SetPrimaryKey("vid"); err != nil {
		return err
	}
	_, err = m.createPartition()
	return err
}

// createPartition allocates a new physical partition and returns its id.
func (m *partitionedRlist) createPartition() (int, error) {
	p := m.nextPart
	m.nextPart++
	dt, err := m.db.CreateTable(m.dataName(p), m.cols)
	if err != nil {
		return 0, err
	}
	if err := dt.SetPrimaryKey("rid"); err != nil {
		return 0, err
	}
	vt, err := m.db.CreateTable(m.versionName(p), []engine.Column{
		{Name: "vid", Type: engine.KindInt},
		{Name: "rlist", Type: engine.KindIntArray},
	})
	if err != nil {
		return 0, err
	}
	if err := vt.SetPrimaryKey("vid"); err != nil {
		return 0, err
	}
	m.partIDs = append(m.partIDs, p)
	m.partRecs[p] = make(map[int64]bool)
	return p, nil
}

func (m *partitionedRlist) dropPartition(p int) error {
	for _, n := range []string{m.dataName(p), m.versionName(p)} {
		if m.db.HasTable(n) {
			if err := m.db.DropTable(n); err != nil {
				return err
			}
		}
	}
	m.storageRecs -= int64(len(m.partRecs[p]))
	delete(m.partRecs, p)
	for i, id := range m.partIDs {
		if id == p {
			m.partIDs = append(m.partIDs[:i], m.partIDs[i+1:]...)
			break
		}
	}
	return nil
}

// SetOnlineParams configures the online placement rule (δ*, γ in records).
func (m *partitionedRlist) SetOnlineParams(deltaStar float64, gammaRecords int64) {
	m.deltaStar = deltaStar
	m.gammaRecords = gammaRecords
}

// NumPartitions returns the live partition count.
func (m *partitionedRlist) NumPartitions() int { return len(m.partIDs) }

// PartitionOf returns the physical partition holding a version.
func (m *partitionedRlist) PartitionOf(v vgraph.VersionID) (int, bool) {
	p, ok := m.partOf[v]
	return p, ok
}

// PartitionRecords returns |Rk| for a physical partition.
func (m *partitionedRlist) PartitionRecords(p int) int64 { return int64(len(m.partRecs[p])) }

// StorageRecords returns S = Σ|Rk| in records (the partitioning metric).
func (m *partitionedRlist) StorageRecords() int64 { return m.storageRecs }

// CheckoutCost returns the current Cavg = Σ|Vk||Rk| / n in records.
func (m *partitionedRlist) CheckoutCost() float64 {
	if len(m.partOf) == 0 {
		return 0
	}
	counts := make(map[int]int64, len(m.partIDs))
	for _, p := range m.partOf {
		counts[p]++
	}
	var num int64
	for p, n := range counts {
		num += n * int64(len(m.partRecs[p]))
	}
	return float64(num) / float64(len(m.partOf))
}

func (m *partitionedRlist) Commit(vid vgraph.VersionID, parents []vgraph.VersionID, all []Record, fresh []Record) error {
	rids := ridsOf(all)
	// Online placement (Section 4.3): join the best parent's partition
	// unless the overlap is small while storage headroom remains.
	target := -1
	if len(parents) > 0 {
		ridSet := make(map[int64]bool, len(rids))
		for _, r := range rids {
			ridSet[r] = true
		}
		var bestParent vgraph.VersionID
		var bestW int64 = -1
		for _, p := range parents {
			var w int64
			for _, r := range m.rlists[p] {
				if ridSet[r] {
					w++
				}
			}
			if w > bestW {
				bestParent, bestW = p, w
			}
		}
		openNew := m.deltaStar > 0 &&
			float64(bestW) <= m.deltaStar*float64(m.totalRecords) &&
			m.storageRecs < m.gammaRecords
		if !openNew {
			target = m.partOf[bestParent]
		}
	} else if len(m.partOf) == 0 && len(m.partIDs) > 0 {
		// First commit lands in the initial partition.
		target = m.partIDs[0]
	}
	if target < 0 {
		p, err := m.createPartition()
		if err != nil {
			return err
		}
		target = p
	}
	return m.storeVersion(target, vid, all, rids)
}

// storeVersion inserts the version's missing records and its rlist tuple
// into partition p.
func (m *partitionedRlist) storeVersion(p int, vid vgraph.VersionID, all []Record, rids []int64) error {
	dt, err := m.db.MustTable(m.dataName(p))
	if err != nil {
		return err
	}
	vt, err := m.db.MustTable(m.versionName(p))
	if err != nil {
		return err
	}
	recs := m.partRecs[p]
	for _, r := range all {
		rid := int64(r.RID)
		if recs[rid] {
			continue
		}
		if r.Data == nil {
			return fmt.Errorf("core: %s: partition %d missing data for record %d", m.cvd, p, rid)
		}
		if _, err := dt.Insert(rowWithRID(r)); err != nil {
			return err
		}
		recs[rid] = true
		m.storageRecs++
	}
	if _, err := vt.Insert(engine.Row{
		engine.IntValue(int64(vid)),
		engine.ArrayValue(rids),
	}); err != nil {
		return err
	}
	mt, err := m.db.MustTable(m.mapName())
	if err != nil {
		return err
	}
	if _, err := mt.Insert(engine.Row{
		engine.IntValue(int64(vid)),
		engine.IntValue(int64(p)),
	}); err != nil {
		return err
	}
	m.partOf[vid] = p
	m.rlists[vid] = rids
	for _, r := range rids {
		if r > m.totalRecords {
			m.totalRecords = r
		}
	}
	return nil
}

// countMaxRid recomputes |R| as the highest rid seen; rids are allocated
// densely by the record manager, so this matches the CVD-wide record count
// the online placement rule compares against.
func (m *partitionedRlist) countMaxRid() int64 {
	var maxRid int64
	for _, recs := range m.partRecs {
		for r := range recs {
			if r > maxRid {
				maxRid = r
			}
		}
	}
	return maxRid
}

func (m *partitionedRlist) Checkout(vid vgraph.VersionID) ([]Record, error) {
	p, ok := m.partOf[vid]
	if !ok {
		return nil, fmt.Errorf("core: %s: no version %d", m.cvd, vid)
	}
	dt, err := m.db.MustTable(m.dataName(p))
	if err != nil {
		return nil, err
	}
	vt, err := m.db.MustTable(m.versionName(p))
	if err != nil {
		return nil, err
	}
	ids := vt.Index("vid").Lookup(engine.IntValue(int64(vid)))
	if len(ids) == 0 {
		return nil, fmt.Errorf("core: %s: partition %d lost version %d", m.cvd, p, vid)
	}
	rids := vt.Get(ids[0])[1].A
	rows, err := engine.JoinRids(dt, 0, rids, m.db.JoinMethodSetting())
	if err != nil {
		return nil, err
	}
	out := make([]Record, len(rows))
	for i, row := range rows {
		out[i] = recordFromRow(row)
	}
	return out, nil
}

func (m *partitionedRlist) StorageBytes() int64 {
	var n int64
	for _, p := range m.partIDs {
		if t := m.db.Table(m.dataName(p)); t != nil {
			n += t.SizeBytes()
		}
		if t := m.db.Table(m.versionName(p)); t != nil {
			n += t.SizeBytes()
		}
	}
	return n
}

func (m *partitionedRlist) AddColumn(c engine.Column) error {
	m.cols = append(m.cols, c)
	for _, p := range m.partIDs {
		dt, err := m.db.MustTable(m.dataName(p))
		if err != nil {
			return err
		}
		if err := dt.AddColumn(c); err != nil {
			return err
		}
	}
	return nil
}

func (m *partitionedRlist) AlterColumnType(name string, k engine.Kind) error {
	for i := range m.cols {
		if m.cols[i].Name == name {
			m.cols[i].Type = engine.MoreGeneral(m.cols[i].Type, k)
		}
	}
	for _, p := range m.partIDs {
		dt, err := m.db.MustTable(m.dataName(p))
		if err != nil {
			return err
		}
		if err := dt.AlterColumnType(name, k); err != nil {
			return err
		}
	}
	return nil
}

func (m *partitionedRlist) Drop() error {
	for _, p := range append([]int(nil), m.partIDs...) {
		if err := m.dropPartition(p); err != nil {
			return err
		}
	}
	if m.db.HasTable(m.mapName()) {
		return m.db.DropTable(m.mapName())
	}
	return nil
}

// bipartite reconstructs the version-record graph from the rlist cache.
func (m *partitionedRlist) bipartite() *vgraph.Bipartite {
	b := vgraph.NewBipartite()
	vids := make([]vgraph.VersionID, 0, len(m.rlists))
	for v := range m.rlists {
		vids = append(vids, v)
	}
	sort.Slice(vids, func(i, j int) bool { return vids[i] < vids[j] })
	for _, v := range vids {
		rl := make([]vgraph.RecordID, len(m.rlists[v]))
		for i, r := range m.rlists[v] {
			rl[i] = vgraph.RecordID(r)
		}
		b.AddVersion(v, rl)
	}
	return b
}

// currentPartitioning snapshots the physical layout as a partition.Partitioning
// (partition indexes are positions in partIDs).
func (m *partitionedRlist) currentPartitioning() *partition.Partitioning {
	p := &partition.Partitioning{Of: make(map[vgraph.VersionID]int, len(m.partOf))}
	idx := make(map[int]int, len(m.partIDs))
	for i, pid := range m.partIDs {
		idx[pid] = i
		recs := make([]vgraph.RecordID, 0, len(m.partRecs[pid]))
		for r := range m.partRecs[pid] {
			recs = append(recs, vgraph.RecordID(r))
		}
		sort.Slice(recs, func(a, b int) bool { return recs[a] < recs[b] })
		p.Parts = append(p.Parts, partition.Part{
			Records:    recs,
			NumRecords: int64(len(recs)),
		})
	}
	for v, pid := range m.partOf {
		i := idx[pid]
		p.Of[v] = i
		p.Parts[i].Versions = append(p.Parts[i].Versions, v)
	}
	return p
}

// MigrationReport summarizes one physical migration.
type MigrationReport struct {
	Plan          *partition.MigrationPlan
	NewPartitions int
	RowsInserted  int64
	RowsDeleted   int64
}

// ApplyPartitioning migrates the physical layout to the given version
// groups. With naive=true every partition is rebuilt from scratch; otherwise
// the intelligent plan of Section 4.3 edits the closest existing partitions.
func (m *partitionedRlist) ApplyPartitioning(groups [][]vgraph.VersionID, naive bool) (*MigrationReport, error) {
	b := m.bipartite()
	next := partition.FromVersionGroups(b, groups)
	old := m.currentPartitioning()
	var plan *partition.MigrationPlan
	if naive {
		plan = partition.PlanNaiveMigration(next)
	} else {
		plan = partition.PlanMigration(b, old, next)
	}
	report := &MigrationReport{Plan: plan, NewPartitions: len(next.Parts)}

	// recLoc finds a live partition holding each record, for fetching rows.
	recLoc := make(map[int64]int, m.totalRecords)
	for _, pid := range m.partIDs {
		for r := range m.partRecs[pid] {
			recLoc[r] = pid
		}
	}
	fetch := func(rid int64) (engine.Row, error) {
		pid, ok := recLoc[rid]
		if !ok {
			return nil, fmt.Errorf("core: %s: record %d not found in any partition", m.cvd, rid)
		}
		dt, err := m.db.MustTable(m.dataName(pid))
		if err != nil {
			return nil, err
		}
		ids := dt.Index("rid").Lookup(engine.IntValue(rid))
		if len(ids) == 0 {
			return nil, fmt.Errorf("core: %s: record %d missing from partition %d", m.cvd, rid, pid)
		}
		return dt.Get(ids[0]), nil
	}

	newPartIDs := make([]int, len(next.Parts))
	newRecs := make([]map[int64]bool, len(next.Parts))
	reusedOld := make(map[int]bool)

	// Pass 1: reuse partitions per the plan (edits happen after all fetches
	// below are planned against the pre-migration layout, so fetch rows
	// eagerly for inserts).
	type pendingInsert struct {
		step partition.MigrationStep
		rows []engine.Row
	}
	var pending []pendingInsert
	for _, step := range plan.Steps {
		want := make(map[int64]bool, next.Parts[step.New].NumRecords)
		for _, r := range next.Parts[step.New].Records {
			want[int64(r)] = true
		}
		newRecs[step.New] = want
		var ins pendingInsert
		ins.step = step
		if step.Old >= 0 {
			oldPID := m.partIDs[step.Old]
			reusedOld[oldPID] = true
			newPartIDs[step.New] = oldPID
			have := m.partRecs[oldPID]
			for r := range want {
				if !have[r] {
					row, err := fetch(r)
					if err != nil {
						return nil, err
					}
					ins.rows = append(ins.rows, engine.CloneRow(row))
				}
			}
		} else {
			newPartIDs[step.New] = -1 // build from scratch
			for r := range want {
				row, err := fetch(r)
				if err != nil {
					return nil, err
				}
				ins.rows = append(ins.rows, engine.CloneRow(row))
			}
		}
		pending = append(pending, ins)
	}

	// Pass 2: apply edits.
	for i, ins := range pending {
		step := ins.step
		want := newRecs[step.New]
		if step.Old >= 0 {
			pid := newPartIDs[step.New]
			dt, err := m.db.MustTable(m.dataName(pid))
			if err != nil {
				return nil, err
			}
			// Delete rows the new partition no longer needs.
			var drop []engine.RowID
			dt.Scan(func(id engine.RowID, row engine.Row) bool {
				if !want[row[0].I] {
					drop = append(drop, id)
				}
				return true
			})
			dt.DeleteBatch(drop)
			report.RowsDeleted += int64(len(drop))
			for _, row := range ins.rows {
				if _, err := dt.Insert(row); err != nil {
					return nil, err
				}
			}
			report.RowsInserted += int64(len(ins.rows))
		} else {
			pid, err := m.createPartition()
			if err != nil {
				return nil, err
			}
			newPartIDs[step.New] = pid
			dt, err := m.db.MustTable(m.dataName(pid))
			if err != nil {
				return nil, err
			}
			for _, row := range ins.rows {
				if _, err := dt.Insert(row); err != nil {
					return nil, err
				}
			}
			report.RowsInserted += int64(len(ins.rows))
		}
		_ = i
	}

	// Drop old partitions with no successor.
	for _, pid := range append([]int(nil), m.partIDs...) {
		keep := false
		for _, np := range newPartIDs {
			if np == pid {
				keep = true
				break
			}
		}
		if !keep {
			if err := m.dropPartition(pid); err != nil {
				return nil, err
			}
		}
	}

	// Rebuild versioning tables and the version→partition map.
	m.partIDs = append([]int(nil), newPartIDs...)
	sort.Ints(m.partIDs)
	m.storageRecs = 0
	for i, pid := range newPartIDs {
		recs := make(map[int64]bool, len(newRecs[i]))
		for r := range newRecs[i] {
			recs[r] = true
		}
		m.partRecs[pid] = recs
		m.storageRecs += int64(len(recs))
		vtName := m.versionName(pid)
		if m.db.HasTable(vtName) {
			if err := m.db.DropTable(vtName); err != nil {
				return nil, err
			}
		}
		vt, err := m.db.CreateTable(vtName, []engine.Column{
			{Name: "vid", Type: engine.KindInt},
			{Name: "rlist", Type: engine.KindIntArray},
		})
		if err != nil {
			return nil, err
		}
		if err := vt.SetPrimaryKey("vid"); err != nil {
			return nil, err
		}
		for _, v := range next.Parts[i].Versions {
			if _, err := vt.Insert(engine.Row{
				engine.IntValue(int64(v)),
				engine.ArrayValue(m.rlists[v]),
			}); err != nil {
				return nil, err
			}
			m.partOf[v] = pid
		}
	}
	// Rewrite the persistent map.
	if m.db.HasTable(m.mapName()) {
		if err := m.db.DropTable(m.mapName()); err != nil {
			return nil, err
		}
	}
	mt, err := m.db.CreateTable(m.mapName(), []engine.Column{
		{Name: "vid", Type: engine.KindInt},
		{Name: "pid", Type: engine.KindInt},
	})
	if err != nil {
		return nil, err
	}
	if err := mt.SetPrimaryKey("vid"); err != nil {
		return nil, err
	}
	for v, pid := range m.partOf {
		if _, err := mt.Insert(engine.Row{
			engine.IntValue(int64(v)),
			engine.IntValue(int64(pid)),
		}); err != nil {
			return nil, err
		}
	}
	m.totalRecords = m.countMaxRid()
	return report, nil
}

var _ DataModel = (*partitionedRlist)(nil)
