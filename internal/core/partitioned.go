package core

import (
	"fmt"
	"sort"

	"orpheusdb/internal/bitmap"
	"orpheusdb/internal/engine"
	"orpheusdb/internal/partition"
	"orpheusdb/internal/vgraph"
)

// PartitionedRlistModel is the hybrid representation of Section 4: the
// split-by-rlist layout broken into partitions so a checkout touches only the
// records of its own partition. It is what the partition optimizer migrates a
// CVD to.
const PartitionedRlistModel ModelKind = "partitioned-rlist"

// partitionedRlist stores one (data, versioning) table pair per partition,
// a version→partition map, and online-maintenance parameters (δ*, γ).
// Version membership (rlists) and per-partition record coverage (partRecs)
// are compressed bitmaps: placement overlaps, migration deltas, and
// partition coverage are all bitmap algebra. rlists entries are immutable
// once stored; partRecs bitmaps are private to the model and mutated in
// place.
type partitionedRlist struct {
	db   *engine.DB
	cvd  string
	cols []engine.Column // rid + data attributes

	partOf   map[vgraph.VersionID]int
	partIDs  []int // live physical partition ids
	nextPart int
	rlists   map[vgraph.VersionID]*bitmap.Bitmap
	partRecs map[int]*bitmap.Bitmap

	// deltaStar and gammaRecords implement the online placement rule: a new
	// version opens its own partition when it shares at most δ*·|R| records
	// with its best parent and storage is under γ. Zeroes disable splitting
	// (all versions share partition 0) until Optimize sets them.
	deltaStar    float64
	gammaRecords int64
	totalRecords int64 // |R|: distinct records across the CVD
	storageRecs  int64 // S = Σ|Rk|
}

func (m *partitionedRlist) Kind() ModelKind { return PartitionedRlistModel }

func (m *partitionedRlist) dataName(p int) string {
	return fmt.Sprintf("%s_part%d_data", m.cvd, p)
}
func (m *partitionedRlist) versionName(p int) string {
	return fmt.Sprintf("%s_part%d_version", m.cvd, p)
}
func (m *partitionedRlist) mapName() string { return m.cvd + "__partmap" }

func (m *partitionedRlist) Init(cols []engine.Column) error {
	m.cols = dataColumns(cols)
	m.partOf = make(map[vgraph.VersionID]int)
	m.rlists = make(map[vgraph.VersionID]*bitmap.Bitmap)
	m.partRecs = make(map[int]*bitmap.Bitmap)
	t, err := m.db.CreateTable(m.mapName(), []engine.Column{
		{Name: "vid", Type: engine.KindInt},
		{Name: "pid", Type: engine.KindInt},
	})
	if err != nil {
		return err
	}
	if err := t.SetPrimaryKey("vid"); err != nil {
		return err
	}
	_, err = m.createPartition()
	return err
}

// createPartition allocates a new physical partition and returns its id.
func (m *partitionedRlist) createPartition() (int, error) {
	p := m.nextPart
	m.nextPart++
	dt, err := m.db.CreateTable(m.dataName(p), m.cols)
	if err != nil {
		return 0, err
	}
	if err := dt.SetPrimaryKey("rid"); err != nil {
		return 0, err
	}
	vt, err := m.db.CreateTable(m.versionName(p), []engine.Column{
		{Name: "vid", Type: engine.KindInt},
		{Name: "rlist", Type: engine.KindBitmap},
	})
	if err != nil {
		return 0, err
	}
	if err := vt.SetPrimaryKey("vid"); err != nil {
		return 0, err
	}
	m.partIDs = append(m.partIDs, p)
	m.partRecs[p] = bitmap.New()
	return p, nil
}

func (m *partitionedRlist) dropPartition(p int) error {
	for _, n := range []string{m.dataName(p), m.versionName(p)} {
		if m.db.HasTable(n) {
			if err := m.db.DropTable(n); err != nil {
				return err
			}
		}
	}
	m.storageRecs -= m.partRecs[p].Cardinality()
	delete(m.partRecs, p)
	for i, id := range m.partIDs {
		if id == p {
			m.partIDs = append(m.partIDs[:i], m.partIDs[i+1:]...)
			break
		}
	}
	return nil
}

// SetOnlineParams configures the online placement rule (δ*, γ in records).
func (m *partitionedRlist) SetOnlineParams(deltaStar float64, gammaRecords int64) {
	m.deltaStar = deltaStar
	m.gammaRecords = gammaRecords
}

// NumPartitions returns the live partition count.
func (m *partitionedRlist) NumPartitions() int { return len(m.partIDs) }

// PartitionOf returns the physical partition holding a version.
func (m *partitionedRlist) PartitionOf(v vgraph.VersionID) (int, bool) {
	p, ok := m.partOf[v]
	return p, ok
}

// PartitionRecords returns |Rk| for a physical partition.
func (m *partitionedRlist) PartitionRecords(p int) int64 { return m.partRecs[p].Cardinality() }

// StorageRecords returns S = Σ|Rk| in records (the partitioning metric).
func (m *partitionedRlist) StorageRecords() int64 { return m.storageRecs }

// CheckoutCost returns the current Cavg = Σ|Vk||Rk| / n in records.
func (m *partitionedRlist) CheckoutCost() float64 {
	if len(m.partOf) == 0 {
		return 0
	}
	counts := make(map[int]int64, len(m.partIDs))
	for _, p := range m.partOf {
		counts[p]++
	}
	var num int64
	for p, n := range counts {
		num += n * m.partRecs[p].Cardinality()
	}
	return float64(num) / float64(len(m.partOf))
}

// WeightedCheckoutCost returns Cw = Σ fi·|R(part(vi))| / Σ fi under observed
// per-version checkout frequencies (Appendix C.2); versions missing from
// freq default to weight 1, and a nil freq degenerates to CheckoutCost.
func (m *partitionedRlist) WeightedCheckoutCost(freq map[vgraph.VersionID]int64) float64 {
	if len(m.partOf) == 0 {
		return 0
	}
	var num, den int64
	for v, p := range m.partOf {
		f, ok := freq[v]
		if !ok {
			f = 1
		}
		num += f * m.partRecs[p].Cardinality()
		den += f
	}
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

func (m *partitionedRlist) Commit(vid vgraph.VersionID, parents []vgraph.VersionID, all []Record, fresh []Record) error {
	ridSet := bitmap.FromSlice(ridsOf(all))
	// Online placement (Section 4.3): join the best parent's partition
	// unless the overlap is small while storage headroom remains. Overlaps
	// are bitmap intersection cardinalities against each parent's rlist.
	target := -1
	if len(parents) > 0 {
		var bestParent vgraph.VersionID
		var bestW int64 = -1
		for _, p := range parents {
			if w := m.rlists[p].AndCardinality(ridSet); w > bestW {
				bestParent, bestW = p, w
			}
		}
		openNew := m.deltaStar > 0 &&
			float64(bestW) <= m.deltaStar*float64(m.totalRecords) &&
			m.storageRecs < m.gammaRecords
		if !openNew {
			target = m.partOf[bestParent]
		}
	} else if len(m.partOf) == 0 && len(m.partIDs) > 0 {
		// First commit lands in the initial partition.
		target = m.partIDs[0]
	}
	if target < 0 {
		p, err := m.createPartition()
		if err != nil {
			return err
		}
		target = p
	}
	return m.storeVersion(target, vid, all, ridSet)
}

// storeVersion inserts the version's missing records and its rlist tuple
// into partition p.
func (m *partitionedRlist) storeVersion(p int, vid vgraph.VersionID, all []Record, ridSet *bitmap.Bitmap) error {
	dt, err := m.db.MustTable(m.dataName(p))
	if err != nil {
		return err
	}
	vt, err := m.db.MustTable(m.versionName(p))
	if err != nil {
		return err
	}
	recs := m.partRecs[p]
	for _, r := range all {
		rid := int64(r.RID)
		if recs.Contains(rid) {
			continue
		}
		if r.Data == nil {
			return fmt.Errorf("core: %s: partition %d missing data for record %d", m.cvd, p, rid)
		}
		if _, err := dt.Insert(rowWithRID(r)); err != nil {
			return err
		}
		recs.Add(rid)
		m.storageRecs++
	}
	if _, err := vt.Insert(engine.Row{
		engine.IntValue(int64(vid)),
		engine.BitmapValue(ridSet),
	}); err != nil {
		return err
	}
	mt, err := m.db.MustTable(m.mapName())
	if err != nil {
		return err
	}
	if _, err := mt.Insert(engine.Row{
		engine.IntValue(int64(vid)),
		engine.IntValue(int64(p)),
	}); err != nil {
		return err
	}
	m.partOf[vid] = p
	m.rlists[vid] = ridSet
	if mx, ok := ridSet.Max(); ok && mx > m.totalRecords {
		m.totalRecords = mx
	}
	return nil
}

// countMaxRid recomputes |R| as the highest rid seen; rids are allocated
// densely by the record manager, so this matches the CVD-wide record count
// the online placement rule compares against.
func (m *partitionedRlist) countMaxRid() int64 {
	var maxRid int64
	for _, recs := range m.partRecs {
		if mx, ok := recs.Max(); ok && mx > maxRid {
			maxRid = mx
		}
	}
	return maxRid
}

func (m *partitionedRlist) Checkout(vid vgraph.VersionID) ([]Record, error) {
	p, ok := m.partOf[vid]
	if !ok {
		return nil, fmt.Errorf("core: %s: no version %d", m.cvd, vid)
	}
	dt, err := m.db.MustTable(m.dataName(p))
	if err != nil {
		return nil, err
	}
	vt, err := m.db.MustTable(m.versionName(p))
	if err != nil {
		return nil, err
	}
	ids := vt.Index("vid").Lookup(engine.IntValue(int64(vid)))
	if len(ids) == 0 {
		return nil, fmt.Errorf("core: %s: partition %d lost version %d", m.cvd, p, vid)
	}
	set := membershipValue(vt.Get(ids[0])[1])
	rows, err := engine.JoinRidsSet(dt, 0, set, m.db.JoinMethodSetting())
	if err != nil {
		return nil, err
	}
	out := make([]Record, len(rows))
	for i, row := range rows {
		out[i] = recordFromRow(row)
	}
	return out, nil
}

// FetchRecordSet materializes a membership set, probing each partition's data
// table with the sub-bitmap it covers; records duplicated across partitions
// are fetched once.
func (m *partitionedRlist) FetchRecordSet(set *bitmap.Bitmap) ([]Record, error) {
	remaining := set
	out := make([]Record, 0, set.Cardinality())
	for _, p := range m.partIDs {
		if remaining.IsEmpty() {
			break
		}
		sub := bitmap.And(remaining, m.partRecs[p])
		if sub.IsEmpty() {
			continue
		}
		dt, err := m.db.MustTable(m.dataName(p))
		if err != nil {
			return nil, err
		}
		rows, err := engine.JoinRidsSet(dt, 0, sub, m.db.JoinMethodSetting())
		if err != nil {
			return nil, err
		}
		for _, row := range rows {
			out = append(out, recordFromRow(row))
		}
		remaining = bitmap.AndNot(remaining, sub)
	}
	if !remaining.IsEmpty() {
		mn, _ := remaining.Min()
		return nil, fmt.Errorf("core: %s: record %d not found in any partition", m.cvd, mn)
	}
	return out, nil
}

// FetchRecords materializes the given record ids, joining against each
// partition that covers part of the set; records duplicated across
// partitions are fetched once.
func (m *partitionedRlist) FetchRecords(rids []int64) ([]Record, error) {
	return m.FetchRecordSet(bitmap.FromSlice(rids))
}

// fetchRowsAcross clones the data rows of a record set from the current
// layout, probing every partition that covers part of it. Migration batches
// use it to stage the rows a target partition is missing.
func (m *partitionedRlist) fetchRowsAcross(want *bitmap.Bitmap) ([]engine.Row, error) {
	remaining := want
	out := make([]engine.Row, 0, want.Cardinality())
	for _, pid := range m.partIDs {
		if remaining.IsEmpty() {
			break
		}
		sub := bitmap.And(remaining, m.partRecs[pid])
		if sub.IsEmpty() {
			continue
		}
		dt, err := m.db.MustTable(m.dataName(pid))
		if err != nil {
			return nil, err
		}
		rows, err := engine.JoinRidsSet(dt, 0, sub, m.db.JoinMethodSetting())
		if err != nil {
			return nil, err
		}
		for _, row := range rows {
			out = append(out, engine.CloneRow(row))
		}
		remaining = bitmap.AndNot(remaining, sub)
	}
	if !remaining.IsEmpty() {
		mn, _ := remaining.Min()
		return nil, fmt.Errorf("core: %s: record %d not found in any partition", m.cvd, mn)
	}
	return out, nil
}

func (m *partitionedRlist) StorageBytes() int64 {
	var n int64
	for _, p := range m.partIDs {
		if t := m.db.Table(m.dataName(p)); t != nil {
			n += t.SizeBytes()
		}
		if t := m.db.Table(m.versionName(p)); t != nil {
			n += t.SizeBytes()
		}
	}
	return n
}

func (m *partitionedRlist) AddColumn(c engine.Column) error {
	m.cols = append(m.cols, c)
	for _, p := range m.partIDs {
		dt, err := m.db.MustTable(m.dataName(p))
		if err != nil {
			return err
		}
		if err := dt.AddColumn(c); err != nil {
			return err
		}
	}
	return nil
}

func (m *partitionedRlist) AlterColumnType(name string, k engine.Kind) error {
	for i := range m.cols {
		if m.cols[i].Name == name {
			m.cols[i].Type = engine.MoreGeneral(m.cols[i].Type, k)
		}
	}
	for _, p := range m.partIDs {
		dt, err := m.db.MustTable(m.dataName(p))
		if err != nil {
			return err
		}
		if err := dt.AlterColumnType(name, k); err != nil {
			return err
		}
	}
	return nil
}

func (m *partitionedRlist) Drop() error {
	for _, p := range append([]int(nil), m.partIDs...) {
		if err := m.dropPartition(p); err != nil {
			return err
		}
	}
	if m.db.HasTable(m.mapName()) {
		return m.db.DropTable(m.mapName())
	}
	return nil
}

// bipartite reconstructs the version-record graph from the rlist cache,
// sharing the immutable membership bitmaps.
func (m *partitionedRlist) bipartite() *vgraph.Bipartite {
	b := vgraph.NewBipartite()
	vids := make([]vgraph.VersionID, 0, len(m.rlists))
	for v := range m.rlists {
		vids = append(vids, v)
	}
	sort.Slice(vids, func(i, j int) bool { return vids[i] < vids[j] })
	for _, v := range vids {
		b.AddVersionSet(v, m.rlists[v])
	}
	return b
}

// currentPartitioning snapshots the physical layout as a partition.Partitioning
// (partition indexes are positions in partIDs).
func (m *partitionedRlist) currentPartitioning() *partition.Partitioning {
	p := &partition.Partitioning{Of: make(map[vgraph.VersionID]int, len(m.partOf))}
	idx := make(map[int]int, len(m.partIDs))
	for i, pid := range m.partIDs {
		idx[pid] = i
		set := m.partRecs[pid].Clone()
		p.Parts = append(p.Parts, partition.Part{
			Set:        set,
			NumRecords: set.Cardinality(),
		})
	}
	for v, pid := range m.partOf {
		i := idx[pid]
		p.Of[v] = i
		p.Parts[i].Versions = append(p.Parts[i].Versions, v)
	}
	return p
}

// MigrationReport summarizes one physical migration.
type MigrationReport struct {
	Plan          *partition.MigrationPlan
	NewPartitions int
	RowsInserted  int64
	RowsDeleted   int64
}

// ApplyPartitioning migrates the physical layout to the given version
// groups. With naive=true every partition is rebuilt from scratch; otherwise
// the intelligent plan of Section 4.3 edits the closest existing partitions.
func (m *partitionedRlist) ApplyPartitioning(groups [][]vgraph.VersionID, naive bool) (*MigrationReport, error) {
	b := m.bipartite()
	next := partition.FromVersionGroups(b, groups)
	old := m.currentPartitioning()
	var plan *partition.MigrationPlan
	if naive {
		plan = partition.PlanNaiveMigration(next)
	} else {
		plan = partition.PlanMigration(b, old, next)
	}
	report := &MigrationReport{Plan: plan, NewPartitions: len(next.Parts)}

	newPartIDs := make([]int, len(next.Parts))
	newRecs := make([]*bitmap.Bitmap, len(next.Parts))

	// Pass 1: plan edits against the pre-migration layout, fetching the rows
	// each new partition is missing. The missing set is a bitmap difference
	// new \ old — O(|delta|), which is what makes intelligent migration
	// cheaper than rebuilds (Figures 14b/15b).
	type pendingInsert struct {
		step partition.MigrationStep
		rows []engine.Row
	}
	var pending []pendingInsert
	for _, step := range plan.Steps {
		want := next.Parts[step.New].Set
		newRecs[step.New] = want
		var ins pendingInsert
		ins.step = step
		var missing *bitmap.Bitmap
		if step.Old >= 0 {
			oldPID := m.partIDs[step.Old]
			newPartIDs[step.New] = oldPID
			missing = bitmap.AndNot(want, m.partRecs[oldPID])
		} else {
			newPartIDs[step.New] = -1 // build from scratch
			missing = want
		}
		rows, err := m.fetchRowsAcross(missing)
		if err != nil {
			return nil, err
		}
		ins.rows = rows
		pending = append(pending, ins)
	}

	// Pass 2: apply edits.
	for _, ins := range pending {
		step := ins.step
		want := newRecs[step.New]
		if step.Old >= 0 {
			pid := newPartIDs[step.New]
			dt, err := m.db.MustTable(m.dataName(pid))
			if err != nil {
				return nil, err
			}
			// Delete rows the new partition no longer needs.
			var drop []engine.RowID
			dt.Scan(func(id engine.RowID, row engine.Row) bool {
				if !want.Contains(row[0].I) {
					drop = append(drop, id)
				}
				return true
			})
			dt.DeleteBatch(drop)
			if dt.NumDeleted()*4 > dt.NumRows() {
				if err := dt.Compact(); err != nil {
					return nil, err
				}
			}
			report.RowsDeleted += int64(len(drop))
			for _, row := range ins.rows {
				if _, err := dt.Insert(row); err != nil {
					return nil, err
				}
			}
			report.RowsInserted += int64(len(ins.rows))
		} else {
			pid, err := m.createPartition()
			if err != nil {
				return nil, err
			}
			newPartIDs[step.New] = pid
			dt, err := m.db.MustTable(m.dataName(pid))
			if err != nil {
				return nil, err
			}
			for _, row := range ins.rows {
				if _, err := dt.Insert(row); err != nil {
					return nil, err
				}
			}
			report.RowsInserted += int64(len(ins.rows))
		}
	}

	// Drop old partitions with no successor.
	for _, pid := range append([]int(nil), m.partIDs...) {
		keep := false
		for _, np := range newPartIDs {
			if np == pid {
				keep = true
				break
			}
		}
		if !keep {
			if err := m.dropPartition(pid); err != nil {
				return nil, err
			}
		}
	}

	// Rebuild versioning tables and the version→partition map.
	m.partIDs = append([]int(nil), newPartIDs...)
	sort.Ints(m.partIDs)
	m.storageRecs = 0
	for i, pid := range newPartIDs {
		recs := newRecs[i].Clone()
		m.partRecs[pid] = recs
		m.storageRecs += recs.Cardinality()
		vtName := m.versionName(pid)
		if m.db.HasTable(vtName) {
			if err := m.db.DropTable(vtName); err != nil {
				return nil, err
			}
		}
		vt, err := m.db.CreateTable(vtName, []engine.Column{
			{Name: "vid", Type: engine.KindInt},
			{Name: "rlist", Type: engine.KindBitmap},
		})
		if err != nil {
			return nil, err
		}
		if err := vt.SetPrimaryKey("vid"); err != nil {
			return nil, err
		}
		for _, v := range next.Parts[i].Versions {
			if _, err := vt.Insert(engine.Row{
				engine.IntValue(int64(v)),
				engine.BitmapValue(m.rlists[v]),
			}); err != nil {
				return nil, err
			}
			m.partOf[v] = pid
		}
	}
	// Rewrite the persistent map.
	if m.db.HasTable(m.mapName()) {
		if err := m.db.DropTable(m.mapName()); err != nil {
			return nil, err
		}
	}
	mt, err := m.db.CreateTable(m.mapName(), []engine.Column{
		{Name: "vid", Type: engine.KindInt},
		{Name: "pid", Type: engine.KindInt},
	})
	if err != nil {
		return nil, err
	}
	if err := mt.SetPrimaryKey("vid"); err != nil {
		return nil, err
	}
	for v, pid := range m.partOf {
		if _, err := mt.Insert(engine.Row{
			engine.IntValue(int64(v)),
			engine.IntValue(int64(pid)),
		}); err != nil {
			return nil, err
		}
	}
	m.totalRecords = m.countMaxRid()
	return report, nil
}

// MembershipBytes reports the per-partition versioning tables plus the
// version→partition map footprint.
func (m *partitionedRlist) MembershipBytes() int64 {
	var n int64
	for _, p := range m.partIDs {
		if t := m.db.Table(m.versionName(p)); t != nil {
			n += t.SizeBytes()
		}
	}
	if t := m.db.Table(m.mapName()); t != nil {
		n += t.SizeBytes()
	}
	return n
}

var (
	_ DataModel        = (*partitionedRlist)(nil)
	_ recordFetcher    = (*partitionedRlist)(nil)
	_ recordSetFetcher = (*partitionedRlist)(nil)
	_ membershipSized  = (*partitionedRlist)(nil)
)
