package core

import (
	"fmt"

	"orpheusdb/internal/bitmap"
	"orpheusdb/internal/engine"
	"orpheusdb/internal/vgraph"
)

// ModelKind names one of the five data models of Section 3.
type ModelKind string

// The data models compared in Figure 3.
const (
	TablePerVersionModel ModelKind = "a-table-per-version"
	CombinedTableModel   ModelKind = "combined-table"
	SplitByVlistModel    ModelKind = "split-by-vlist"
	SplitByRlistModel    ModelKind = "split-by-rlist"
	DeltaModel           ModelKind = "delta-based"
)

// AllModelKinds lists the models in the paper's presentation order.
func AllModelKinds() []ModelKind {
	return []ModelKind{
		TablePerVersionModel,
		CombinedTableModel,
		SplitByVlistModel,
		SplitByRlistModel,
		DeltaModel,
	}
}

// DataModel is the storage representation of a CVD's versions and records
// inside the backing database. Implementations own their tables; the CVD
// middleware owns record identity, version metadata, and provenance.
type DataModel interface {
	// Kind identifies the model.
	Kind() ModelKind

	// Init creates the model's tables for a CVD whose data attributes are
	// cols (rid excluded; models that store rids add the column
	// themselves).
	Init(cols []engine.Column) error

	// Commit stores version vid. all lists every record in the version;
	// fresh lists the subset newly created by this commit (their Data rows
	// are not yet known to the model). parents are the version's parent
	// ids, needed by the delta model to choose its base.
	Commit(vid vgraph.VersionID, parents []vgraph.VersionID, all []Record, fresh []Record) error

	// Checkout returns every record of vid. For the array-based models
	// this is the operation Figure 3c measures.
	Checkout(vid vgraph.VersionID) ([]Record, error)

	// StorageBytes reports the model-owned storage including indexes
	// (Figure 3a).
	StorageBytes() int64

	// AddColumn extends the model's data schema with a new attribute;
	// existing records read as NULL (schema evolution, Section 3.3).
	AddColumn(c engine.Column) error

	// AlterColumnType widens a data attribute's type (Section 3.3).
	AlterColumnType(name string, k engine.Kind) error

	// Drop removes all model-owned tables.
	Drop() error
}

// membershipValue views a stored membership cell as a bitmap, widening the
// int-array payloads written by pre-bitmap snapshots so old stores keep
// reading correctly (the same fallback versionManager.load applies).
func membershipValue(v engine.Value) *bitmap.Bitmap {
	if v.B != nil {
		return v.B
	}
	if v.K == engine.KindIntArray || v.A != nil {
		return bitmap.FromSlice(v.A)
	}
	return bitmap.New()
}

// recordFetcher is an optional DataModel capability: materialize specific
// records by id without checking out any version. Models backed by a shared
// data table implement it with the same rid join checkout uses; the CVD's
// set-algebra operations (diff, multi-version scans) push membership bitmaps
// down to it so only result records touch the data table.
type recordFetcher interface {
	FetchRecords(rids []int64) ([]Record, error)
}

// recordSetFetcher is the bitmap-driven refinement of recordFetcher: the
// membership set is handed to the scan as-is, so implementations can probe it
// in place (no rid materialization, no transient hash table) and parallelize
// the scan. The CVD prefers this capability whenever a model offers it.
type recordSetFetcher interface {
	FetchRecordSet(set *bitmap.Bitmap) ([]Record, error)
}

// membershipSized is an optional DataModel capability: report how many bytes
// of the model's storage hold version membership (rlists/vlists) as opposed
// to record data. Backs the storage-breakdown endpoint.
type membershipSized interface {
	MembershipBytes() int64
}

// NewDataModel constructs the given model kind over db for the named CVD.
func NewDataModel(kind ModelKind, db *engine.DB, cvd string) (DataModel, error) {
	switch kind {
	case TablePerVersionModel:
		return &tablePerVersion{db: db, cvd: cvd}, nil
	case CombinedTableModel:
		return &combinedTable{db: db, cvd: cvd}, nil
	case SplitByVlistModel:
		return &splitByVlist{db: db, cvd: cvd}, nil
	case SplitByRlistModel:
		return &splitByRlist{db: db, cvd: cvd}, nil
	case DeltaModel:
		return &deltaModel{db: db, cvd: cvd}, nil
	case PartitionedRlistModel:
		return &partitionedRlist{db: db, cvd: cvd}, nil
	}
	return nil, fmt.Errorf("core: unknown data model %q", kind)
}

// dataColumns prefixes the data attributes with the rid column, the layout
// shared by the data tables of the split models.
func dataColumns(cols []engine.Column) []engine.Column {
	out := make([]engine.Column, 0, len(cols)+1)
	out = append(out, engine.Column{Name: "rid", Type: engine.KindInt})
	out = append(out, cols...)
	return out
}

// ridsOf extracts the record ids of a record list as int64s.
func ridsOf(recs []Record) []int64 {
	out := make([]int64, len(recs))
	for i, r := range recs {
		out[i] = int64(r.RID)
	}
	return out
}

// rowWithRID builds a storage row (rid, data...).
func rowWithRID(r Record) engine.Row {
	row := make(engine.Row, 0, len(r.Data)+1)
	row = append(row, engine.IntValue(int64(r.RID)))
	row = append(row, r.Data...)
	return row
}

// recordFromRow splits a storage row (rid, data...) back into a Record. The
// data slice aliases the stored row; callers must not mutate it.
func recordFromRow(row engine.Row) Record {
	return Record{RID: vgraph.RecordID(row[0].I), Data: row[1:]}
}
