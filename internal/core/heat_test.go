package core

import (
	"sync"
	"testing"
	"time"

	"orpheusdb/internal/bitmap"
	"orpheusdb/internal/cache"
	"orpheusdb/internal/engine"
	"orpheusdb/internal/vgraph"
)

func TestHeatNilReceiverSafe(t *testing.T) {
	var h *Heat
	h.RecordCheckout([]vgraph.VersionID{1}, true)
	h.RecordCommit([]vgraph.VersionID{1})
	h.RecordMerge(1, 2)
	if w := h.Weights(); w != nil {
		t.Fatalf("nil heat weights = %v, want nil", w)
	}
	snap := h.Snapshot(5, nil)
	if snap.Checkouts != 0 || snap.WindowSeconds == 0 {
		t.Fatalf("nil heat snapshot = %+v", snap)
	}
}

func TestHeatCountersAndWeights(t *testing.T) {
	h := NewHeat()
	now := time.Unix(1_700_000_000, 0)
	h.Clock = func() time.Time { return now }

	h.RecordCheckout([]vgraph.VersionID{1}, false)
	h.RecordCheckout([]vgraph.VersionID{1}, true)
	h.RecordCheckout([]vgraph.VersionID{1, 2}, false) // multi-version: one op, two credits
	h.RecordCommit([]vgraph.VersionID{2})
	h.RecordMerge(1, 3)

	snap := h.Snapshot(10, nil)
	if snap.Checkouts != 3 || snap.CacheHits != 1 || snap.Commits != 1 || snap.Merges != 1 {
		t.Fatalf("totals = %+v", snap)
	}
	if snap.CacheHitRatio != 1.0/3 {
		t.Fatalf("hit ratio = %g, want 1/3", snap.CacheHitRatio)
	}
	if snap.TrackedVersions != 3 {
		t.Fatalf("tracked = %d, want 3", snap.TrackedVersions)
	}
	// 5 operations inside the window.
	if want := 5.0 / float64(snap.WindowSeconds); snap.OpsPerSecond != want {
		t.Fatalf("ops/s = %g, want %g", snap.OpsPerSecond, want)
	}

	// Hottest first: v1 has 3 checkout credits + 1 merge credit.
	if len(snap.TopVersions) == 0 || snap.TopVersions[0].Version != 1 {
		t.Fatalf("top versions = %+v, want v1 first", snap.TopVersions)
	}
	if snap.TopVersions[0].Checkouts != 4 {
		t.Fatalf("v1 credits = %d, want 4 (3 checkouts + 1 merge)", snap.TopVersions[0].Checkouts)
	}
	if snap.TopVersions[0].CacheHits != 1 {
		t.Fatalf("v1 hits = %d, want 1", snap.TopVersions[0].CacheHits)
	}
	if ms := snap.TopVersions[0].LastAccess; ms != now.UnixNano()/int64(time.Millisecond) {
		t.Fatalf("v1 last access = %d", ms)
	}

	w := h.Weights()
	if w[1] != 4 || w[2] != 2 || w[3] != 1 {
		t.Fatalf("weights = %v, want {1:4 2:2 3:1}", w)
	}

	// topK truncation, deterministic tie-break by version id.
	if got := h.Snapshot(2, nil); len(got.TopVersions) != 2 {
		t.Fatalf("topK=2 returned %d rows", len(got.TopVersions))
	}
}

func TestHeatBranchAttributionAndWindow(t *testing.T) {
	h := NewHeat()
	base := time.Unix(1_700_000_000, 0)
	now := base
	h.Clock = func() time.Time { return now }

	// An old access outside the 60s window: counted in totals, not in rates.
	h.RecordCheckout([]vgraph.VersionID{1}, false)
	now = base.Add(200 * time.Second)
	h.RecordCheckout([]vgraph.VersionID{2}, false)
	h.RecordCheckout([]vgraph.VersionID{3}, false)

	branches := []*BranchInfo{
		{Name: "main", Head: 2, Lineage: bitmap.FromSlice([]int64{1, 2})},
		{Name: "exp", Head: 3, Lineage: bitmap.FromSlice([]int64{1, 3})},
		{Name: "idle", Head: 1, Lineage: bitmap.FromSlice([]int64{1})},
	}
	snap := h.Snapshot(10, branches)
	if snap.OpsPerSecond != 2.0/float64(snap.WindowSeconds) {
		t.Fatalf("ops/s = %g, want only the 2 windowed ops", snap.OpsPerSecond)
	}
	rates := map[string]int64{}
	for _, b := range snap.Branches {
		rates[b.Name] = b.Recent
	}
	// v2 is on main's lineage, v3 on exp's; the stale v1 access credits no one.
	if rates["main"] != 1 || rates["exp"] != 1 || rates["idle"] != 0 {
		t.Fatalf("branch rates = %v, want main:1 exp:1 idle:0", rates)
	}
	for _, b := range snap.Branches {
		if want := float64(b.Recent) / float64(snap.WindowSeconds); b.PerSecond != want {
			t.Fatalf("branch %s per-second = %g, want %g", b.Name, b.PerSecond, want)
		}
	}
}

func TestHeatConcurrentRecording(t *testing.T) {
	h := NewHeat()
	var wg sync.WaitGroup
	const workers, per = 8, 500
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				v := vgraph.VersionID(j % 7)
				h.RecordCheckout([]vgraph.VersionID{v}, j%2 == 0)
				if j%50 == 0 {
					h.RecordCommit([]vgraph.VersionID{v})
					_ = h.Weights()
					_ = h.Snapshot(3, nil)
				}
			}
		}(i)
	}
	wg.Wait()
	snap := h.Snapshot(10, nil)
	if snap.Checkouts != workers*per {
		t.Fatalf("checkouts = %d, want %d (atomic counters must not lose ops)", snap.Checkouts, workers*per)
	}
	var credits int64
	for _, w := range h.Weights() {
		credits += w
	}
	if want := int64(workers * per * 51 / 50); credits != want {
		t.Fatalf("version credits = %d, want %d", credits, want)
	}
}

// TestCVDRecordsHeat wires a real CVD: checkouts, commits, and merges must
// land in the attached tracker, including the cache-hit flag on the checkout
// fast path (a cache is attached so the second identical checkout hits).
func TestCVDRecordsHeat(t *testing.T) {
	db := engine.NewDB()
	c, err := Init(db, "prot", protCols(), InitOptions{
		Model:      SplitByRlistModel,
		PrimaryKey: []string{"protein1", "protein2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	h := NewHeat()
	c.SetHeat(h)
	c.SetCache(cache.New(1<<20, db.Stats()))
	v1, err := c.Commit([]engine.Row{
		protRow("A", "B", 0, 53, 0),
		protRow("A", "C", 0, 87, 0),
	}, nil, "v1")
	if err != nil {
		t.Fatal(err)
	}
	v2, err := c.Commit([]engine.Row{
		protRow("A", "B", 0, 53, 0),
		protRow("D", "E", 426, 0, 164),
	}, []vgraph.VersionID{v1}, "v2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Checkout(v1); err != nil { // miss
		t.Fatal(err)
	}
	if _, err := c.Checkout(v1); err != nil { // hit
		t.Fatal(err)
	}
	if _, err := c.Checkout(v2); err != nil {
		t.Fatal(err)
	}
	snap := h.Snapshot(10, c.Branches())
	if snap.Checkouts != 3 {
		t.Fatalf("checkouts = %d, want 3", snap.Checkouts)
	}
	if snap.CacheHits != 1 {
		t.Fatalf("cache hits = %d, want 1 (only the second checkout repeats)", snap.CacheHits)
	}
	if snap.Commits != 2 {
		t.Fatalf("commits = %d, want 2", snap.Commits)
	}
	w := h.Weights()
	// v1: 2 checkouts + 1 commit-parent credit.
	if w[v1] != 3 {
		t.Fatalf("v1 weight = %d, want 3", w[v1])
	}
	if w[v2] != 1 {
		t.Fatalf("v2 weight = %d, want 1", w[v2])
	}
	if c.Heat() != h {
		t.Fatal("Heat() accessor lost the tracker")
	}
}
