package core

import (
	"fmt"

	"orpheusdb/internal/bitmap"
	"orpheusdb/internal/engine"
	"orpheusdb/internal/vgraph"
)

// deltaModel stores each version as a table of modifications from a single
// base version (Approach 4): inserted records plus tombstoned deletions,
// with a precedent metadata table (vid, base) linking versions to their
// bases. Checkout traces the base chain to the root, discarding records seen
// in nearer deltas. As Section 3.1 notes, this model cannot support advanced
// versioning queries without reconstructing versions wholesale.
type deltaModel struct {
	db  *engine.DB
	cvd string
	// deltaCols is the per-delta-table schema: rid, attrs..., tombstone.
	deltaCols []engine.Column
	// rlists lets commit pick the parent sharing the most records as the
	// base (the paper's multi-parent rule) without reconstructing parents.
	// Membership is compared with bitmap intersections.
	rlists map[vgraph.VersionID]*bitmap.Bitmap
}

func (m *deltaModel) Kind() ModelKind { return DeltaModel }

func (m *deltaModel) deltaName(vid vgraph.VersionID) string {
	return fmt.Sprintf("%s_delta_v%d", m.cvd, vid)
}
func (m *deltaModel) precedentName() string { return m.cvd + "_delta_precedent" }

func (m *deltaModel) Init(cols []engine.Column) error {
	m.rlists = make(map[vgraph.VersionID]*bitmap.Bitmap)
	pt, err := m.db.CreateTable(m.precedentName(), []engine.Column{
		{Name: "vid", Type: engine.KindInt},
		{Name: "base", Type: engine.KindInt},
	})
	if err != nil {
		return err
	}
	// The tombstone column marks deletions.
	m.deltaCols = append(dataColumns(cols), engine.Column{Name: "tombstone", Type: engine.KindBool})
	return pt.SetPrimaryKey("vid")
}

func (m *deltaModel) Commit(vid vgraph.VersionID, parents []vgraph.VersionID, all []Record, fresh []Record) error {
	pt, err := m.db.MustTable(m.precedentName())
	if err != nil {
		return err
	}
	ridSet := bitmap.FromSlice(ridsOf(all))

	// Base = the parent sharing the most records with the new version
	// (storing deltas against multiple parents would complicate
	// reconstruction; the paper opts for the single-base solution). The
	// overlap is a bitmap intersection cardinality per parent.
	base := vgraph.VersionID(0)
	var bestCommon int64 = -1
	for _, p := range parents {
		if common := m.rlists[p].AndCardinality(ridSet); common > bestCommon {
			base, bestCommon = p, common
		}
	}

	dt, err := m.db.CreateTable(m.deltaName(vid), m.deltaCols)
	if err != nil {
		return err
	}
	baseSet := m.rlists[base]
	// Inserts: records in the version but not in the base.
	for _, r := range all {
		if baseSet.Contains(int64(r.RID)) {
			continue
		}
		row := rowWithRID(r)
		row = append(row, engine.BoolValue(false))
		if _, err := dt.Insert(row); err != nil {
			return err
		}
	}
	// Deletes: records in the base but not in the version (base \ version,
	// a bitmap difference), tombstoned with only the rid populated.
	var insertErr error
	bitmap.AndNot(baseSet, ridSet).Iterate(func(r int64) bool {
		row := make(engine.Row, len(m.deltaCols))
		row[0] = engine.IntValue(r)
		for i := 1; i < len(row)-1; i++ {
			row[i] = engine.NullValue()
		}
		row[len(row)-1] = engine.BoolValue(true)
		if _, err := dt.Insert(row); err != nil {
			insertErr = err
			return false
		}
		return true
	})
	if insertErr != nil {
		return insertErr
	}
	_, err = pt.Insert(engine.Row{engine.IntValue(int64(vid)), engine.IntValue(int64(base))})
	if err != nil {
		return err
	}
	m.rlists[vid] = ridSet
	return nil
}

func (m *deltaModel) Checkout(vid vgraph.VersionID) ([]Record, error) {
	pt, err := m.db.MustTable(m.precedentName())
	if err != nil {
		return nil, err
	}
	baseIx := pt.Index("vid")
	seen := make(map[vgraph.RecordID]bool)
	var out []Record
	tombCol := len(m.deltaCols) - 1
	cur := vid
	for cur != 0 {
		dt, err := m.db.MustTable(m.deltaName(cur))
		if err != nil {
			return nil, fmt.Errorf("core: %s: delta chain broken at v%d: %w", m.cvd, cur, err)
		}
		dt.Scan(func(_ engine.RowID, row engine.Row) bool {
			rid := vgraph.RecordID(row[0].I)
			if seen[rid] {
				return true
			}
			seen[rid] = true
			if !row[tombCol].Bool() {
				out = append(out, Record{RID: rid, Data: row[1:tombCol]})
			}
			return true
		})
		ids := baseIx.Lookup(engine.IntValue(int64(cur)))
		if len(ids) == 0 {
			break
		}
		cur = vgraph.VersionID(pt.Get(ids[0])[1].I)
	}
	return out, nil
}

func (m *deltaModel) StorageBytes() int64 {
	var n int64
	if t := m.db.Table(m.precedentName()); t != nil {
		n += t.SizeBytes()
	}
	for vid := range m.rlists {
		if t := m.db.Table(m.deltaName(vid)); t != nil {
			n += t.SizeBytes()
		}
	}
	return n
}

func (m *deltaModel) AddColumn(c engine.Column) error {
	// Insert the new attribute before the tombstone column for all future
	// delta tables; existing delta tables are rebuilt.
	tomb := m.deltaCols[len(m.deltaCols)-1]
	m.deltaCols = append(m.deltaCols[:len(m.deltaCols)-1], c, tomb)
	for vid := range m.rlists {
		t := m.db.Table(m.deltaName(vid))
		if t == nil {
			continue
		}
		if err := t.AddColumn(c); err != nil {
			return err
		}
		// Move tombstone back to the last position.
		if err := m.moveTombstoneLast(t, vid); err != nil {
			return err
		}
	}
	return nil
}

func (m *deltaModel) moveTombstoneLast(t *engine.Table, vid vgraph.VersionID) error {
	cols := t.Columns()
	ti := t.ColIndex("tombstone")
	if ti == len(cols)-1 {
		return nil
	}
	newCols := make([]engine.Column, 0, len(cols))
	for i, c := range cols {
		if i != ti {
			newCols = append(newCols, c)
		}
	}
	newCols = append(newCols, cols[ti])
	tmp := t.Name() + "__tmp"
	nt, err := m.db.CreateTable(tmp, newCols)
	if err != nil {
		return err
	}
	var insertErr error
	t.Scan(func(_ engine.RowID, row engine.Row) bool {
		nr := make(engine.Row, 0, len(row))
		for i, v := range row {
			if i != ti {
				nr = append(nr, v)
			}
		}
		nr = append(nr, row[ti])
		if _, err := nt.Insert(nr); err != nil {
			insertErr = err
			return false
		}
		return true
	})
	if insertErr != nil {
		return insertErr
	}
	name := t.Name()
	if err := m.db.DropTable(name); err != nil {
		return err
	}
	return m.db.RenameTable(tmp, name)
}

func (m *deltaModel) AlterColumnType(name string, k engine.Kind) error {
	for i := range m.deltaCols {
		if m.deltaCols[i].Name == name {
			m.deltaCols[i].Type = engine.MoreGeneral(m.deltaCols[i].Type, k)
		}
	}
	for vid := range m.rlists {
		if t := m.db.Table(m.deltaName(vid)); t != nil {
			if err := t.AlterColumnType(name, k); err != nil {
				return err
			}
		}
	}
	return nil
}

func (m *deltaModel) Drop() error {
	for vid := range m.rlists {
		name := m.deltaName(vid)
		if m.db.HasTable(name) {
			if err := m.db.DropTable(name); err != nil {
				return err
			}
		}
	}
	if m.db.HasTable(m.precedentName()) {
		if err := m.db.DropTable(m.precedentName()); err != nil {
			return err
		}
	}
	m.rlists = nil
	return nil
}

var _ DataModel = (*deltaModel)(nil)
