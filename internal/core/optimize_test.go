package core

import (
	"fmt"
	"math/rand"
	"testing"

	"orpheusdb/internal/engine"
	"orpheusdb/internal/vgraph"
)

// branchyCVD commits a mainline with periodic branches under the partitioned
// model, returning the CVD and all version ids.
func branchyCVD(t *testing.T, versions int) (*CVD, []vgraph.VersionID) {
	t.Helper()
	db := engine.NewDB()
	c, err := Init(db, "d", protCols(), InitOptions{Model: PartitionedRlistModel, PrimaryKey: []string{"protein1", "protein2"}})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	var rows []engine.Row
	next := 0
	add := func(n int) {
		for i := 0; i < n; i++ {
			rows = append(rows, protRow(fmt.Sprintf("P%05d", next), "Q", rng.Int63n(10), 0, 0))
			next++
		}
	}
	add(20)
	v, err := c.Commit(rows, nil, "root")
	if err != nil {
		t.Fatal(err)
	}
	vids := []vgraph.VersionID{v}
	for i := 1; i < versions; i++ {
		parent := vids[len(vids)-1]
		if i%5 == 0 {
			parent = vids[rng.Intn(len(vids))]
			rows, err = c.Checkout(parent)
			if err != nil {
				t.Fatal(err)
			}
		}
		add(5)
		v, err := c.Commit(rows, []vgraph.VersionID{parent}, "step")
		if err != nil {
			t.Fatal(err)
		}
		vids = append(vids, v)
	}
	return c, vids
}

func TestOptimizePartitionsAndPreservesCheckouts(t *testing.T) {
	c, vids := branchyCVD(t, 40)
	pm := c.Model().(PartitionedModel)
	if pm.NumPartitions() != 1 {
		t.Fatalf("pre-optimize partitions = %d", pm.NumPartitions())
	}
	// Snapshot all version contents.
	before := map[vgraph.VersionID]int{}
	for _, v := range vids {
		rows, err := c.Checkout(v)
		if err != nil {
			t.Fatal(err)
		}
		before[v] = len(rows)
	}
	res, err := c.Optimize(2.0, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Partitions < 2 {
		t.Fatalf("optimize produced %d partitions", res.Partitions)
	}
	if pm.NumPartitions() != res.Partitions {
		t.Fatalf("physical partitions %d != plan %d", pm.NumPartitions(), res.Partitions)
	}
	// Every checkout is unchanged.
	for _, v := range vids {
		rows, err := c.Checkout(v)
		if err != nil {
			t.Fatalf("checkout %d after optimize: %v", v, err)
		}
		if len(rows) != before[v] {
			t.Fatalf("v%d: %d rows after optimize, want %d", v, len(rows), before[v])
		}
	}
	// Storage within budget (in records).
	if pm.StorageRecords() > res.Gamma {
		t.Fatalf("S = %d exceeds γ = %d", pm.StorageRecords(), res.Gamma)
	}
	// A second optimize at the same budget is a near no-op.
	res2, err := c.Optimize(2.0, false)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Migration.Plan.TotalRecords > res.Migration.Plan.TotalRecords {
		t.Fatal("re-optimize moved more data than the first")
	}
}

func TestOptimizeNaiveMovesMore(t *testing.T) {
	cSmart, _ := branchyCVD(t, 30)
	cNaive, _ := branchyCVD(t, 30)
	smart, err := cSmart.Optimize(2.0, false)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := cNaive.Optimize(2.0, true)
	if err != nil {
		t.Fatal(err)
	}
	if smart.Migration.Plan.TotalRecords > naive.Migration.Plan.TotalRecords {
		t.Fatalf("intelligent migration moved %d records, naive %d",
			smart.Migration.Plan.TotalRecords, naive.Migration.Plan.TotalRecords)
	}
}

func TestOnlinePlacementAfterOptimize(t *testing.T) {
	c, vids := branchyCVD(t, 30)
	if _, err := c.Optimize(1.5, false); err != nil {
		t.Fatal(err)
	}
	pm := c.Model().(PartitionedModel)

	// With a low δ*, a commit whose overlap with its parent exceeds δ*·|R|
	// joins the parent's partition (the Section 4.3 rule).
	pm.SetOnlineParams(0.05, 1<<40)
	nBefore := pm.NumPartitions()
	// The mainline tip shares nearly all of |R| with its child.
	biggest := vids[0]
	var biggestN int
	for _, v := range vids {
		info, err := c.Info(v)
		if err != nil {
			t.Fatal(err)
		}
		if info.NumRecords > biggestN {
			biggest, biggestN = v, info.NumRecords
		}
	}
	rows, err := c.Checkout(biggest)
	if err != nil {
		t.Fatal(err)
	}
	v, err := c.Commit(rows, []vgraph.VersionID{biggest}, "online-join")
	if err != nil {
		t.Fatal(err)
	}
	pNew, ok := pm.PartitionOf(v)
	if !ok {
		t.Fatal("new version unplaced")
	}
	pParent, _ := pm.PartitionOf(biggest)
	if pNew != pParent {
		t.Fatalf("high-overlap commit went to partition %d, parent in %d", pNew, pParent)
	}
	if pm.NumPartitions() != nBefore {
		t.Fatal("partition count changed unexpectedly")
	}
	got, err := c.Checkout(v)
	if err != nil || len(got) != len(rows) {
		t.Fatalf("checkout new version: %d rows, %v", len(got), err)
	}

	// With δ* near 1 and storage headroom, a low-overlap commit opens its
	// own partition.
	pm.SetOnlineParams(0.99, 1<<40)
	small := []engine.Row{protRow("Z", "Z", 1, 1, 1)}
	v2, err := c.Commit(small, []vgraph.VersionID{v}, "online-split")
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := pm.PartitionOf(v2)
	if p2 == pNew {
		t.Fatal("low-overlap commit should open a new partition")
	}
	if _, err := c.Checkout(v2); err != nil {
		t.Fatal(err)
	}
}

func TestOptimizeRequiresPartitionedModel(t *testing.T) {
	db := engine.NewDB()
	c, err := Init(db, "d", protCols(), InitOptions{Model: SplitByRlistModel})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Commit([]engine.Row{protRow("A", "B", 1, 2, 3)}, nil, "v1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Optimize(2.0, false); err == nil {
		t.Fatal("optimize on non-partitioned model accepted")
	}
}

func TestOptimizeEmptyCVD(t *testing.T) {
	db := engine.NewDB()
	c, err := Init(db, "d", protCols(), InitOptions{Model: PartitionedRlistModel})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Optimize(2.0, false); err == nil {
		t.Fatal("optimize of empty CVD accepted")
	}
}

func TestPartitionedReloadKeepsLayout(t *testing.T) {
	c, vids := branchyCVD(t, 25)
	if _, err := c.Optimize(2.0, false); err != nil {
		t.Fatal(err)
	}
	pm := c.Model().(PartitionedModel)
	wantParts := pm.NumPartitions()

	path := t.TempDir() + "/s.gob"
	if err := c.db.Save(path); err != nil {
		t.Fatal(err)
	}
	db2, err := engine.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Open(db2, "d")
	if err != nil {
		t.Fatal(err)
	}
	pm2 := c2.Model().(PartitionedModel)
	if pm2.NumPartitions() != wantParts {
		t.Fatalf("partitions after reload = %d, want %d", pm2.NumPartitions(), wantParts)
	}
	for _, v := range vids {
		p1, _ := pm.PartitionOf(v)
		p2, ok := pm2.PartitionOf(v)
		if !ok || p1 != p2 {
			t.Fatalf("placement of v%d changed on reload", v)
		}
		if _, err := c2.Checkout(v); err != nil {
			t.Fatalf("checkout %d after reload: %v", v, err)
		}
	}
}

func TestCheckoutCostDropsAfterOptimize(t *testing.T) {
	c, _ := branchyCVD(t, 50)
	pm := c.Model().(PartitionedModel)
	before := pm.CheckoutCost()
	if _, err := c.Optimize(2.0, false); err != nil {
		t.Fatal(err)
	}
	after := pm.CheckoutCost()
	if after >= before {
		t.Fatalf("Cavg did not drop: %.0f -> %.0f", before, after)
	}
}

func TestOptimizeWeighted(t *testing.T) {
	c, vids := branchyCVD(t, 40)
	freq := c.RecencyWeights(0.25, 20)
	if len(freq) != len(vids) {
		t.Fatalf("weights for %d versions, want %d", len(freq), len(vids))
	}
	res, err := c.OptimizeWeighted(2.0, freq, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Partitions < 1 {
		t.Fatal("no partitions")
	}
	// All versions remain checkable.
	for _, v := range vids {
		if _, err := c.Checkout(v); err != nil {
			t.Fatalf("checkout %d: %v", v, err)
		}
	}
	// Hot (recent) versions should sit in partitions no larger than the
	// average cold partition.
	pm := c.Model().(PartitionedModel)
	var hotCost, coldCost, hotN, coldN int64
	for _, v := range vids {
		p, _ := pm.PartitionOf(v)
		if freq[v] > 1 {
			hotCost += pm.PartitionRecords(p)
			hotN++
		} else {
			coldCost += pm.PartitionRecords(p)
			coldN++
		}
	}
	if hotN == 0 || coldN == 0 {
		t.Fatal("weight split degenerate")
	}
	if hotCost/hotN > 2*(coldCost/coldN) {
		t.Fatalf("hot versions average %d records/partition vs cold %d",
			hotCost/hotN, coldCost/coldN)
	}
}

func TestOptimizeWeightedRequiresPartitionedModel(t *testing.T) {
	db := engine.NewDB()
	c, err := Init(db, "w", protCols(), InitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.OptimizeWeighted(2.0, nil, false); err == nil {
		t.Fatal("weighted optimize on plain model accepted")
	}
}

func TestMaintainPartitions(t *testing.T) {
	c, vids := branchyCVD(t, 40)
	// Fresh CVD: everything in one partition, so Cavg far exceeds the best.
	res, err := c.MaintainPartitions(2.0, 1.2, false)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Migrated {
		t.Fatalf("expected migration: Cavg=%.0f best=%.0f", res.Cavg, res.BestCavg)
	}
	// Immediately after, the layout is within tolerance.
	res2, err := c.MaintainPartitions(2.0, 1.2, false)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Migrated {
		t.Fatal("second maintenance should be a no-op")
	}
	if res2.Cavg > 1.2*res2.BestCavg+1e-6 {
		t.Fatalf("tolerance violated after migration: %.0f vs %.0f", res2.Cavg, res2.BestCavg)
	}
	for _, v := range vids {
		if _, err := c.Checkout(v); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMaintainPartitionsRequiresModel(t *testing.T) {
	db := engine.NewDB()
	c, err := Init(db, "m", protCols(), InitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.MaintainPartitions(2.0, 1.5, false); err == nil {
		t.Fatal("maintenance on plain model accepted")
	}
}
