package core

import (
	"fmt"
	"time"

	"orpheusdb/internal/partition"
	"orpheusdb/internal/vgraph"
)

// OptimizeWeighted is Optimize for the weighted checkout cost of Appendix
// C.2: freq gives each version's checkout frequency (missing versions weigh
// 1), so hot versions land in small partitions. Real workloads typically
// weight recent versions heavily.
func (c *CVD) OptimizeWeighted(gammaFactor float64, freq map[vgraph.VersionID]int64, naive bool) (*OptimizeResult, error) {
	pm, ok := c.model.(PartitionedModel)
	if !ok {
		return nil, fmt.Errorf("core: %s: optimize requires the %s model (have %s)",
			c.name, PartitionedRlistModel, c.model.Kind())
	}
	g, err := c.vm.graph()
	if err != nil {
		return nil, err
	}
	if g.Len() == 0 {
		return nil, fmt.Errorf("core: %s: nothing to optimize", c.name)
	}
	totalRecords := int64(c.rm.nextR - 1)
	gamma := int64(gammaFactor * float64(totalRecords))
	t0 := time.Now()
	res, err := partition.SolveWeighted(g.ToTree(), freq, gamma)
	if err != nil {
		return nil, err
	}
	solveTime := time.Since(t0)
	t1 := time.Now()
	report, err := pm.ApplyPartitioning(res.Groups, naive)
	if err != nil {
		return nil, err
	}
	pm.SetOnlineParams(res.Delta, gamma)
	return &OptimizeResult{
		Delta:         res.Delta,
		Gamma:         gamma,
		Partitions:    len(res.Groups),
		EstStorage:    res.EstStorage,
		EstCheckout:   res.EstCheckout,
		Migration:     report,
		MigrationTime: time.Since(t1),
		SolveTime:     solveTime,
	}, nil
}

// RecencyWeights builds a frequency map that weights the most recent
// versions of the CVD `hot`× more than the rest — the workload shape the
// paper suggests for the weighted case.
func (c *CVD) RecencyWeights(recentFraction float64, hot int64) map[vgraph.VersionID]int64 {
	if recentFraction <= 0 || recentFraction > 1 {
		recentFraction = 0.25
	}
	if hot < 1 {
		hot = 10
	}
	freq := make(map[vgraph.VersionID]int64, len(c.vm.order))
	cut := int(float64(len(c.vm.order)) * (1 - recentFraction))
	for i, v := range c.vm.order {
		if i >= cut {
			freq[v] = hot
		} else {
			freq[v] = 1
		}
	}
	return freq
}
