package core

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"time"

	"orpheusdb/internal/bitmap"
	"orpheusdb/internal/cache"
	"orpheusdb/internal/engine"
	"orpheusdb/internal/obs"
	"orpheusdb/internal/vgraph"
)

// CVD is a collaborative versioned dataset: one relation plus many versions
// of it, stored in the backing database under one of the Section 3 data
// models, with version metadata, record identity, and schema history managed
// by the middleware.
type CVD struct {
	db    *engine.DB
	name  string
	model DataModel
	// pk names the relation's primary-key attributes (may be empty). The
	// key holds within any single version, not across versions.
	pk []string
	// schema is the current attribute-id list (indexes into the attribute
	// table); cols caches the corresponding engine columns.
	schema []int64
	cols   []engine.Column

	vm *versionManager
	rm *recordManager
	am *attrManager
	bm *branchManager

	// cache, when set (SetCache), is consulted by Checkout,
	// MultiVersionCheckout, and AllVersionsCheckout before any bitmap
	// resolution or record fetch. The CVD only reads it: whoever attaches
	// the cache owns invalidation and must call InvalidateDataset inside
	// every mutator's critical section (the Store does, next to its WAL
	// append).
	cache *cache.Cache

	// metrics, when set (SetMetrics), receives checkout and commit latency
	// observations; individual histograms may be nil.
	metrics *Metrics

	// heat, when set (SetHeat), receives per-version access credits from the
	// checkout, commit, and merge paths (nil-safe, like metrics).
	heat *Heat

	// Clock supplies commit timestamps; replaceable for deterministic
	// tests.
	Clock func() time.Time
}

// catalogTable is the global registry of CVDs in a database.
const catalogTable = "__orpheus_cvds"

// ensureCatalog creates the CVD registry table if missing.
func ensureCatalog(db *engine.DB) (*engine.Table, error) {
	if t := db.Table(catalogTable); t != nil {
		return t, nil
	}
	return db.CreateTable(catalogTable, []engine.Column{
		{Name: "name", Type: engine.KindString},
		{Name: "model", Type: engine.KindString},
		{Name: "pk", Type: engine.KindString},
	})
}

// ListCVDs names the CVDs registered in db.
func ListCVDs(db *engine.DB) []string {
	t := db.Table(catalogTable)
	if t == nil {
		return nil
	}
	var names []string
	t.Scan(func(_ engine.RowID, row engine.Row) bool {
		names = append(names, row[0].S)
		return true
	})
	sort.Strings(names)
	return names
}

// InitOptions configures CVD creation.
type InitOptions struct {
	// Model selects the data model (default split-by-rlist, the paper's
	// choice).
	Model ModelKind
	// PrimaryKey names the relation's key attributes.
	PrimaryKey []string
}

// Init creates a new CVD with the given data attributes.
func Init(db *engine.DB, name string, cols []engine.Column, opts InitOptions) (*CVD, error) {
	if opts.Model == "" {
		opts.Model = SplitByRlistModel
	}
	cat, err := ensureCatalog(db)
	if err != nil {
		return nil, err
	}
	for _, existing := range ListCVDs(db) {
		if existing == name {
			return nil, fmt.Errorf("core: CVD %q already exists", name)
		}
	}
	for _, k := range opts.PrimaryKey {
		found := false
		for _, c := range cols {
			if c.Name == k {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("core: CVD %q: primary key column %q not in schema", name, k)
		}
	}
	model, err := NewDataModel(opts.Model, db, name)
	if err != nil {
		return nil, err
	}
	c := &CVD{
		db:    db,
		name:  name,
		model: model,
		pk:    append([]string(nil), opts.PrimaryKey...),
		vm:    newVersionManager(db, name),
		rm:    newRecordManager(db, name),
		am:    newAttrManager(db, name),
		bm:    newBranchManager(db, name),
		Clock: time.Now,
	}
	if err := c.vm.init(); err != nil {
		return nil, err
	}
	if err := c.rm.init(); err != nil {
		return nil, err
	}
	if err := c.am.init(); err != nil {
		return nil, err
	}
	if err := c.bm.init(); err != nil {
		return nil, err
	}
	for _, col := range cols {
		id, err := c.am.add(col.Name, col.Type)
		if err != nil {
			return nil, err
		}
		c.schema = append(c.schema, id)
		c.cols = append(c.cols, col)
	}
	if err := model.Init(cols); err != nil {
		return nil, err
	}
	pkList := ""
	for i, k := range opts.PrimaryKey {
		if i > 0 {
			pkList += ","
		}
		pkList += k
	}
	if _, err := cat.Insert(engine.Row{
		engine.StringValue(name),
		engine.StringValue(string(opts.Model)),
		engine.StringValue(pkList),
	}); err != nil {
		return nil, err
	}
	return c, nil
}

// Open loads an existing CVD from the database (e.g. after the CLI reloads a
// snapshot).
func Open(db *engine.DB, name string) (*CVD, error) {
	cat := db.Table(catalogTable)
	if cat == nil {
		return nil, fmt.Errorf("core: no CVDs in database")
	}
	var modelKind, pkList string
	found := false
	cat.Scan(func(_ engine.RowID, row engine.Row) bool {
		if row[0].S == name {
			modelKind, pkList = row[1].S, row[2].S
			found = true
			return false
		}
		return true
	})
	if !found {
		return nil, fmt.Errorf("core: no CVD %q", name)
	}
	model, err := NewDataModel(ModelKind(modelKind), db, name)
	if err != nil {
		return nil, err
	}
	c := &CVD{
		db:    db,
		name:  name,
		model: model,
		vm:    newVersionManager(db, name),
		rm:    newRecordManager(db, name),
		am:    newAttrManager(db, name),
		bm:    newBranchManager(db, name),
		Clock: time.Now,
	}
	if pkList != "" {
		start := 0
		for i := 0; i <= len(pkList); i++ {
			if i == len(pkList) || pkList[i] == ',' {
				c.pk = append(c.pk, pkList[start:i])
				start = i + 1
			}
		}
	}
	if err := c.vm.load(); err != nil {
		return nil, err
	}
	if err := c.rm.load(); err != nil {
		return nil, err
	}
	if err := c.am.load(); err != nil {
		return nil, err
	}
	if err := c.bm.load(); err != nil {
		return nil, err
	}
	// The physical pool is persisted once a schema change happens; static-
	// schema CVDs reconstruct it from the attribute table (whose entries
	// are then exactly the initial columns, in order).
	loaded, err := c.loadSchema()
	if err != nil {
		return nil, err
	}
	if !loaded {
		for id := int64(1); id < c.am.nextID; id++ {
			a, ok := c.am.get(id)
			if !ok {
				continue
			}
			c.schema = append(c.schema, id)
			c.cols = append(c.cols, engine.Column{Name: a.Name, Type: a.Type})
		}
	}
	if err := c.reloadModelState(); err != nil {
		return nil, err
	}
	return c, nil
}

// reloadModelState rebuilds model-internal caches that live outside model
// tables after a database reload.
func (c *CVD) reloadModelState() error {
	switch m := c.model.(type) {
	case *deltaModel:
		m.rlists = make(map[vgraph.VersionID]*bitmap.Bitmap, len(c.vm.rlists))
		m.deltaCols = append(dataColumns(c.cols), engine.Column{Name: "tombstone", Type: engine.KindBool})
		for v, rl := range c.vm.rlists {
			m.rlists[v] = rl
		}
	case *tablePerVersion:
		m.cols = dataColumns(c.cols)
		m.versions = append([]vgraph.VersionID(nil), c.vm.order...)
	case *partitionedRlist:
		return m.reload(c.cols)
	}
	return nil
}

// Name returns the CVD name.
func (c *CVD) Name() string { return c.name }

// Model returns the data model in use.
func (c *CVD) Model() DataModel { return c.model }

// Columns returns the CVD's current data attributes.
func (c *CVD) Columns() []engine.Column { return c.cols }

// PrimaryKey returns the relation's key attribute names.
func (c *CVD) PrimaryKey() []string { return c.pk }

// NumVersions returns the number of committed versions.
func (c *CVD) NumVersions() int { return len(c.vm.order) }

// Versions lists version ids in commit order.
func (c *CVD) Versions() []vgraph.VersionID { return c.vm.order }

// LatestVersion returns the most recently committed version id (0 if none).
func (c *CVD) LatestVersion() vgraph.VersionID {
	if len(c.vm.order) == 0 {
		return 0
	}
	return c.vm.order[len(c.vm.order)-1]
}

// Info returns a version's metadata.
func (c *CVD) Info(v vgraph.VersionID) (*VersionInfo, error) { return c.vm.info(v) }

// Rlist returns the record ids of a version as a fresh slice.
func (c *CVD) Rlist(v vgraph.VersionID) ([]vgraph.RecordID, error) { return c.vm.rlist(v) }

// RlistSet returns the version's membership bitmap. The bitmap is shared and
// must not be mutated.
func (c *CVD) RlistSet(v vgraph.VersionID) (*bitmap.Bitmap, error) { return c.vm.rlistSet(v) }

// VersionGraph builds the CVD's version graph.
func (c *CVD) VersionGraph() (*vgraph.Graph, error) { return c.vm.graph() }

// Bipartite builds the CVD's version-record bipartite graph.
func (c *CVD) Bipartite() *vgraph.Bipartite { return c.vm.bipartite() }

// Ancestors returns all transitive ancestors of v.
func (c *CVD) Ancestors(v vgraph.VersionID) ([]vgraph.VersionID, error) {
	g, err := c.vm.graph()
	if err != nil {
		return nil, err
	}
	if !g.Has(v) {
		return nil, fmt.Errorf("core: %s: no version %d", c.name, v)
	}
	return g.Ancestors(v), nil
}

// Descendants returns all transitive descendants of v.
func (c *CVD) Descendants(v vgraph.VersionID) ([]vgraph.VersionID, error) {
	g, err := c.vm.graph()
	if err != nil {
		return nil, err
	}
	if !g.Has(v) {
		return nil, fmt.Errorf("core: %s: no version %d", c.name, v)
	}
	return g.Descendants(v), nil
}

// StorageBytes reports the model-owned storage (Figure 3a's metric).
func (c *CVD) StorageBytes() int64 { return c.model.StorageBytes() }

// StorageBreakdown splits the model-owned storage into membership bytes
// (compressed rlist/vlist bitmaps and their tables) and data bytes, plus the
// middleware's own rlist table. Models without a separate membership
// structure report zero membership.
type StorageBreakdown struct {
	TotalBytes      int64 `json:"totalBytes"`
	DataBytes       int64 `json:"dataBytes"`
	MembershipBytes int64 `json:"membershipBytes"`
	// SystemMembershipBytes is the middleware rlist table (kept for every
	// model), reported separately from the model's own membership storage.
	SystemMembershipBytes int64 `json:"systemMembershipBytes"`
}

// StorageBreakdown reports where the CVD's bytes live.
func (c *CVD) StorageBreakdown() StorageBreakdown {
	out := StorageBreakdown{TotalBytes: c.model.StorageBytes()}
	if ms, ok := c.model.(membershipSized); ok {
		out.MembershipBytes = ms.MembershipBytes()
	}
	out.DataBytes = out.TotalBytes - out.MembershipBytes
	if t := c.db.Table(c.vm.rlistsName()); t != nil {
		out.SystemMembershipBytes = t.SizeBytes()
	}
	return out
}

// pkPositions resolves the primary-key attribute positions in the current
// schema.
func (c *CVD) pkPositions() []int {
	pos := make([]int, 0, len(c.pk))
	for _, k := range c.pk {
		for i, col := range c.cols {
			if col.Name == k {
				pos = append(pos, i)
				break
			}
		}
	}
	return pos
}

// Commit adds a new version built from rows (data attributes only, matching
// the current schema), derived from the given parents. Per the
// no-cross-version-diff rule, rows are matched only against the parents'
// records: unchanged rows keep their rid, anything else becomes a new
// record. Returns the new version id.
func (c *CVD) Commit(rows []engine.Row, parents []vgraph.VersionID, msg string) (vgraph.VersionID, error) {
	return c.CommitCtx(context.Background(), rows, parents, msg)
}

// CommitCtx is Commit with trace propagation: the phases — record hash
// matching against the parents, the model write, version metadata — each
// contribute a span when ctx carries a trace.
func (c *CVD) CommitCtx(ctx context.Context, rows []engine.Row, parents []vgraph.VersionID, msg string) (vgraph.VersionID, error) {
	return c.commitAt(ctx, rows, parents, msg, c.Clock(), c.Clock())
}

func (c *CVD) commitAt(ctx context.Context, rows []engine.Row, parents []vgraph.VersionID, msg string, checkoutT, commitT time.Time) (vgraph.VersionID, error) {
	start := time.Now()
	for _, p := range parents {
		if _, err := c.vm.info(p); err != nil {
			return 0, err
		}
	}
	for i, r := range rows {
		if len(r) != len(c.cols) {
			return 0, fmt.Errorf("core: %s: commit row %d has %d values, want %d", c.name, i, len(r), len(c.cols))
		}
	}
	// Primary-key constraint within the committed version.
	if pos := c.pkPositions(); len(pos) > 0 {
		seen := make(map[string]bool, len(rows))
		for i, r := range rows {
			vals := make([]engine.Value, len(pos))
			for j, p := range pos {
				vals[j] = r[p]
			}
			k := engine.EncodeKey(vals...)
			if seen[k] {
				return 0, fmt.Errorf("core: %s: commit row %d violates primary key", c.name, i)
			}
			seen[k] = true
		}
	}

	// Match rows against parent records by content hash. The candidate set
	// is the bitmap union of the parents' rlists (duplicates across parents
	// collapse for free).
	_, matchSpan := obs.StartSpan(ctx, "commit.match")
	parentSet := bitmap.New()
	for _, p := range parents {
		set, err := c.vm.rlistSet(p)
		if err != nil {
			return 0, err
		}
		parentSet.OrInPlace(set)
	}
	parentRids := make([]vgraph.RecordID, 0, parentSet.Cardinality())
	parentSet.Iterate(func(r int64) bool {
		parentRids = append(parentRids, vgraph.RecordID(r))
		return true
	})
	parentIndex := c.rm.hashIndex(parentRids)

	all := make([]Record, 0, len(rows))
	var fresh []Record
	usedRid := make(map[vgraph.RecordID]bool, len(rows))
	for _, r := range rows {
		h := HashRow(r)
		if rid, ok := parentIndex[h]; ok && !usedRid[rid] {
			usedRid[rid] = true
			all = append(all, Record{RID: rid, Data: r})
			continue
		}
		rid, err := c.rm.alloc(h)
		if err != nil {
			return 0, err
		}
		usedRid[rid] = true
		rec := Record{RID: rid, Data: r}
		all = append(all, rec)
		fresh = append(fresh, rec)
	}
	matchSpan.SetAttr("rows", strconv.Itoa(len(all)))
	matchSpan.SetAttr("fresh", strconv.Itoa(len(fresh)))
	matchSpan.End()

	vid := c.vm.allocVersion()
	_, modelSpan := obs.StartSpan(ctx, "commit.model")
	if err := c.model.Commit(vid, parents, all, fresh); err != nil {
		modelSpan.End()
		return 0, err
	}
	modelSpan.End()
	rlist := make([]vgraph.RecordID, len(all))
	for i, r := range all {
		rlist[i] = r.RID
	}
	info := &VersionInfo{
		ID:           vid,
		Parents:      append([]vgraph.VersionID(nil), parents...),
		CheckoutTime: checkoutT,
		CommitTime:   commitT,
		Message:      msg,
		Attributes:   append([]int64(nil), c.schema...),
		NumRecords:   len(all),
	}
	_, metaSpan := obs.StartSpan(ctx, "commit.meta")
	err := c.vm.add(info, rlist)
	metaSpan.End()
	if err != nil {
		return 0, err
	}
	if c.metrics != nil {
		c.metrics.Commit.ObserveDuration(time.Since(start))
	}
	c.heat.RecordCommit(parents)
	return vid, nil
}

// SetCache attaches the checkout cache consulted by Checkout,
// MultiVersionCheckout, and AllVersionsCheckout. Call it before the CVD is
// shared; the caller is responsible for invalidating the dataset's entries
// (cache.InvalidateDataset) inside every mutation's critical section.
func (c *CVD) SetCache(cc *cache.Cache) { c.cache = cc }

// cacheVids converts version ids to the cache key's int64 form.
func cacheVids(vids []vgraph.VersionID) []int64 {
	out := make([]int64, len(vids))
	for i, v := range vids {
		out[i] = int64(v)
	}
	return out
}

// cachedRows looks key up in the checkout cache (computing and caching on a
// miss) and returns the rows behind a fresh top-level slice, so callers may
// append to or reorder the result without aliasing the cached copy. The rows
// themselves stay shared and immutable, exactly like rows scanned straight
// out of the engine. The returned hit flag reports whether this call served
// from cache (false whenever the compute closure ran, even piggybacked on
// another caller's in-flight computation via singleflight). The lookup
// contributes a "checkout.cache" span when ctx carries a trace.
func (c *CVD) cachedRows(ctx context.Context, key string, vids []vgraph.VersionID, compute func(context.Context) ([]engine.Column, []engine.Row, error)) (_ []engine.Column, _ []engine.Row, hit bool, _ error) {
	ctx, span := obs.StartSpan(ctx, "checkout.cache")
	hit = true
	// Tag the entry with the versions it reads, so partition migrations can
	// invalidate exactly the entries they touched (nil tag = all versions,
	// used by the all-versions view).
	var tag *bitmap.Bitmap
	if len(vids) > 0 {
		tag = bitmap.FromSlice(cacheVids(vids))
	}
	e, err := c.cache.GetOrComputeTagged(c.name, key, tag, func() (cache.Entry, error) {
		hit = false
		cols, rows, err := compute(ctx)
		if err != nil {
			return cache.Entry{}, err
		}
		return cache.Entry{Cols: cols, Rows: rows}, nil
	})
	if span != nil {
		span.SetAttr("hit", strconv.FormatBool(hit))
		span.End()
	}
	if err != nil {
		return nil, nil, hit, err
	}
	return e.Cols, append([]engine.Row(nil), e.Rows...), hit, nil
}

// Checkout materializes the given versions as rows. With multiple versions,
// records are added in the precedence order listed: a record whose primary
// key was already added is omitted, so the result respects the key (Section
// 2.2). Without a primary key, duplicate rids are dropped but distinct
// records are all kept.
//
// When a cache is attached, the materialized record set is served from and
// retained in it, keyed by the canonical form of the version set (order is
// preserved in the key for multi-version requests, whose precedence rule
// makes order significant).
func (c *CVD) Checkout(vids ...vgraph.VersionID) ([]engine.Row, error) {
	return c.CheckoutCtx(context.Background(), vids...)
}

// CheckoutCtx is Checkout with trace propagation: when ctx carries a trace,
// the cache lookup, bitmap resolution, and record fetch each contribute a
// nested span, and the end-to-end latency lands in the hit or miss
// histogram (SetMetrics).
func (c *CVD) CheckoutCtx(ctx context.Context, vids ...vgraph.VersionID) ([]engine.Row, error) {
	start := time.Now()
	if c.cache == nil {
		rows, err := c.checkoutUncached(ctx, vids...)
		if err == nil {
			c.observeCheckout(time.Since(start).Seconds(), false)
			c.heat.RecordCheckout(vids, false)
		}
		return rows, err
	}
	key := cache.Key(c.name, cacheVids(vids), nil, true)
	_, rows, hit, err := c.cachedRows(ctx, key, vids, func(ctx context.Context) ([]engine.Column, []engine.Row, error) {
		rows, err := c.checkoutUncached(ctx, vids...)
		if err != nil {
			return nil, nil, err
		}
		return append([]engine.Column(nil), c.cols...), rows, nil
	})
	if err == nil {
		c.observeCheckout(time.Since(start).Seconds(), hit)
		c.heat.RecordCheckout(vids, hit)
	}
	return rows, err
}

// checkoutUncached is Checkout's materialization path: membership
// resolution (validating the versions and touching their rlist bitmaps),
// then the record fetch with rid/primary-key precedence dedup.
func (c *CVD) checkoutUncached(ctx context.Context, vids ...vgraph.VersionID) ([]engine.Row, error) {
	if len(vids) == 0 {
		return nil, fmt.Errorf("core: %s: checkout needs at least one version", c.name)
	}
	_, bitmapSpan := obs.StartSpan(ctx, "bitmap.resolve")
	for _, vid := range vids {
		if _, err := c.vm.info(vid); err != nil {
			bitmapSpan.End()
			return nil, err
		}
		if _, err := c.vm.rlistSet(vid); err != nil {
			bitmapSpan.End()
			return nil, err
		}
	}
	bitmapSpan.End()
	_, fetchSpan := obs.StartSpan(ctx, "record.fetch")
	defer fetchSpan.End()
	if len(vids) == 1 {
		// One version needs no precedence dedup: its rlist is a set (each
		// rid fetched once) and commit rejects duplicate primary keys
		// within a version, so the maps below could never drop a row. On
		// big checkouts the map builds cost more than the fetch itself.
		recs, err := c.model.Checkout(vids[0])
		if err != nil {
			return nil, err
		}
		out := make([]engine.Row, len(recs))
		for i := range recs {
			out[i] = recs[i].Data
		}
		fetchSpan.SetAttr("rows", strconv.Itoa(len(out)))
		return out, nil
	}
	pos := c.pkPositions()
	seenPK := make(map[string]bool)
	seenRid := make(map[vgraph.RecordID]bool)
	var out []engine.Row
	for _, vid := range vids {
		recs, err := c.model.Checkout(vid)
		if err != nil {
			return nil, err
		}
		for _, rec := range recs {
			if rec.RID != 0 && seenRid[rec.RID] {
				continue
			}
			if rec.RID != 0 {
				seenRid[rec.RID] = true
			}
			if len(pos) > 0 {
				vals := make([]engine.Value, len(pos))
				for j, p := range pos {
					vals[j] = rec.Data[p]
				}
				k := engine.EncodeKey(vals...)
				if seenPK[k] {
					continue
				}
				seenPK[k] = true
			}
			out = append(out, rec.Data)
		}
	}
	fetchSpan.SetAttr("rows", strconv.Itoa(len(out)))
	return out, nil
}

// Diff returns the records present in a but not b, and in b but not a — the
// standard differencing operation of Section 2.2. The two sides are bitmap
// differences of the versions' rlists, so only the |result| records are
// fetched from the data tables; neither version is materialized in full on
// models exposing record fetch.
func (c *CVD) Diff(a, b vgraph.VersionID) (onlyA, onlyB []engine.Row, err error) {
	sa, err := c.vm.rlistSet(a)
	if err != nil {
		return nil, nil, err
	}
	sb, err := c.vm.rlistSet(b)
	if err != nil {
		return nil, nil, err
	}
	onlyA, err = c.fetchRows(bitmap.AndNot(sa, sb), a)
	if err != nil {
		return nil, nil, err
	}
	onlyB, err = c.fetchRows(bitmap.AndNot(sb, sa), b)
	if err != nil {
		return nil, nil, err
	}
	return onlyA, onlyB, nil
}

// SetOp is a record-membership set operator applied between versions.
type SetOp uint8

// The membership operators of multi-version scans.
const (
	SetOpUnion SetOp = iota
	SetOpIntersect
	SetOpExcept
)

// Compile-time ties between SetOp values and the cache package's key
// operator codes (cache.Key canonicalizes commutative chains by these
// values; a drifted constant would silently merge non-equivalent scans).
var (
	_ = [1]struct{}{}[uint8(SetOpUnion)-cache.OpUnion]
	_ = [1]struct{}{}[uint8(SetOpIntersect)-cache.OpIntersect]
	_ = [1]struct{}{}[uint8(SetOpExcept)-cache.OpExcept]
)

// ParseSetOp maps the SQL keywords UNION/INTERSECT/EXCEPT onto SetOps.
func ParseSetOp(kw string) (SetOp, error) {
	switch kw {
	case "UNION", "union":
		return SetOpUnion, nil
	case "INTERSECT", "intersect":
		return SetOpIntersect, nil
	case "EXCEPT", "except":
		return SetOpExcept, nil
	}
	return 0, fmt.Errorf("core: unknown set operator %q", kw)
}

// MembershipSet evaluates a left-associative chain of record-set operations
// over version rlists: vids[0] op[0] vids[1] op[1] ... — pure bitmap algebra
// that never touches the data tables. len(ops) must be len(vids)-1.
func (c *CVD) MembershipSet(vids []vgraph.VersionID, ops []SetOp) (*bitmap.Bitmap, error) {
	if len(vids) == 0 {
		return nil, fmt.Errorf("core: %s: membership set needs at least one version", c.name)
	}
	if len(ops) != len(vids)-1 {
		return nil, fmt.Errorf("core: %s: %d versions need %d operators, have %d",
			c.name, len(vids), len(vids)-1, len(ops))
	}
	acc, err := c.vm.rlistSet(vids[0])
	if err != nil {
		return nil, err
	}
	for i, op := range ops {
		next, err := c.vm.rlistSet(vids[i+1])
		if err != nil {
			return nil, err
		}
		switch op {
		case SetOpUnion:
			acc = bitmap.Or(acc, next)
		case SetOpIntersect:
			acc = bitmap.And(acc, next)
		case SetOpExcept:
			acc = bitmap.AndNot(acc, next)
		default:
			return nil, fmt.Errorf("core: %s: unknown set operator %d", c.name, op)
		}
	}
	return acc, nil
}

// MultiVersionCheckout materializes the record set produced by a chain of
// version set operations (`VERSION v1 INTERSECT v2 ...` scans): membership
// is resolved with bitmap algebra first, and only the result records touch
// the data tables. The result is record-id algebra — no primary-key
// precedence is applied, since each record appears once.
//
// When a cache is attached it is consulted before bitmap resolution; keys
// canonicalize commutative chains (pure UNION, pure INTERSECT), so
// `VERSION 2 UNION 3` and `VERSION 3 UNION 2` share one entry.
func (c *CVD) MultiVersionCheckout(vids []vgraph.VersionID, ops []SetOp) ([]engine.Row, error) {
	return c.MultiVersionCheckoutCtx(context.Background(), vids, ops)
}

// MultiVersionCheckoutCtx is MultiVersionCheckout with trace propagation and
// hit/miss latency observation, mirroring CheckoutCtx.
func (c *CVD) MultiVersionCheckoutCtx(ctx context.Context, vids []vgraph.VersionID, ops []SetOp) ([]engine.Row, error) {
	start := time.Now()
	if c.cache == nil {
		rows, err := c.multiVersionCheckoutUncached(ctx, vids, ops)
		if err == nil {
			c.observeCheckout(time.Since(start).Seconds(), false)
			c.heat.RecordCheckout(vids, false)
		}
		return rows, err
	}
	opBytes := make([]uint8, len(ops))
	for i, op := range ops {
		opBytes[i] = uint8(op)
	}
	key := cache.Key(c.name, cacheVids(vids), opBytes, false)
	_, rows, hit, err := c.cachedRows(ctx, key, vids, func(ctx context.Context) ([]engine.Column, []engine.Row, error) {
		rows, err := c.multiVersionCheckoutUncached(ctx, vids, ops)
		if err != nil {
			return nil, nil, err
		}
		return append([]engine.Column(nil), c.cols...), rows, nil
	})
	if err == nil {
		c.observeCheckout(time.Since(start).Seconds(), hit)
		c.heat.RecordCheckout(vids, hit)
	}
	return rows, err
}

// multiVersionCheckoutUncached is MultiVersionCheckout's materialization
// path: bitmap algebra over the rlists, then one fetch of the surviving
// records.
func (c *CVD) multiVersionCheckoutUncached(ctx context.Context, vids []vgraph.VersionID, ops []SetOp) ([]engine.Row, error) {
	_, bitmapSpan := obs.StartSpan(ctx, "bitmap.resolve")
	for _, v := range vids {
		if _, err := c.vm.info(v); err != nil {
			bitmapSpan.End()
			return nil, err
		}
	}
	set, err := c.MembershipSet(vids, ops)
	if err != nil {
		bitmapSpan.End()
		return nil, err
	}
	if bitmapSpan != nil {
		bitmapSpan.SetAttr("records", strconv.FormatInt(set.Cardinality(), 10))
		bitmapSpan.End()
	}
	_, fetchSpan := obs.StartSpan(ctx, "record.fetch")
	defer fetchSpan.End()
	return c.fetchRows(set, vids...)
}

// AllVersionsCheckout materializes the all-versions view (`FROM CVD name` in
// SQL): a leading vid column followed by the data attributes, one row per
// (version, record) pair — the "table with versioned records" of Figure 1a,
// generated on the fly and cached like any other checkout.
func (c *CVD) AllVersionsCheckout() ([]engine.Column, []engine.Row, error) {
	return c.AllVersionsCheckoutCtx(context.Background())
}

// AllVersionsCheckoutCtx is AllVersionsCheckout with trace propagation and
// hit/miss latency observation.
func (c *CVD) AllVersionsCheckoutCtx(ctx context.Context) ([]engine.Column, []engine.Row, error) {
	start := time.Now()
	if c.cache == nil {
		cols, rows, err := c.allVersionsUncached(ctx)
		if err == nil {
			c.observeCheckout(time.Since(start).Seconds(), false)
			c.heat.RecordCheckout(nil, false)
		}
		return cols, rows, err
	}
	cols, rows, hit, err := c.cachedRows(ctx, cache.AllVersionsKey(c.name), nil, c.allVersionsUncached)
	if err == nil {
		c.observeCheckout(time.Since(start).Seconds(), hit)
		c.heat.RecordCheckout(nil, hit)
	}
	return cols, rows, err
}

func (c *CVD) allVersionsUncached(ctx context.Context) ([]engine.Column, []engine.Row, error) {
	cols := append([]engine.Column{{Name: "vid", Type: engine.KindInt}},
		append([]engine.Column(nil), c.cols...)...)
	var out []engine.Row
	for _, v := range c.vm.order {
		// Uncached per-version materialization on purpose: the aggregate
		// view is cached as one entry, and also inserting N per-version
		// entries would double-store every record and churn the LRU.
		rows, err := c.checkoutUncached(ctx, v)
		if err != nil {
			return nil, nil, err
		}
		for _, r := range rows {
			row := make(engine.Row, 0, len(r)+1)
			row = append(row, engine.IntValue(int64(v)))
			row = append(row, r...)
			out = append(out, row)
		}
	}
	return cols, out, nil
}

// fetchRows materializes the data rows of a membership set.
func (c *CVD) fetchRows(set *bitmap.Bitmap, hints ...vgraph.VersionID) ([]engine.Row, error) {
	recs, err := c.fetchRecords(set, hints...)
	if err != nil {
		return nil, err
	}
	rows := make([]engine.Row, len(recs))
	for i, r := range recs {
		rows[i] = r.Data
	}
	return rows, nil
}

// fetchRecords materializes the records of a membership set, rids included.
// Models exposing record fetch are driven directly; otherwise the hint
// versions (then every version) are checked out and filtered, subtracting
// covered records so each version is visited at most once.
func (c *CVD) fetchRecords(set *bitmap.Bitmap, hints ...vgraph.VersionID) ([]Record, error) {
	if set.IsEmpty() {
		return nil, nil
	}
	if f, ok := c.model.(recordSetFetcher); ok {
		return f.FetchRecordSet(set)
	}
	if f, ok := c.model.(recordFetcher); ok {
		return f.FetchRecords(set.ToSlice())
	}
	remaining := set
	var out []Record
	for _, v := range append(append([]vgraph.VersionID(nil), hints...), c.vm.order...) {
		if remaining.IsEmpty() {
			break
		}
		vset, err := c.vm.rlistSet(v)
		if err != nil || !remaining.Intersects(vset) {
			continue
		}
		recs, err := c.model.Checkout(v)
		if err != nil {
			return nil, err
		}
		for _, rec := range recs {
			if remaining.Contains(int64(rec.RID)) {
				out = append(out, rec)
			}
		}
		remaining = bitmap.AndNot(remaining, vset)
	}
	if !remaining.IsEmpty() {
		mn, _ := remaining.Min()
		return nil, fmt.Errorf("core: %s: record %d not reachable from any version", c.name, mn)
	}
	return out, nil
}

// Drop removes the CVD: model tables, system tables, and the catalog entry.
func (c *CVD) Drop() error {
	if err := c.model.Drop(); err != nil {
		return err
	}
	if err := c.vm.drop(); err != nil {
		return err
	}
	if err := c.rm.drop(); err != nil {
		return err
	}
	if err := c.am.drop(); err != nil {
		return err
	}
	if err := c.bm.drop(); err != nil {
		return err
	}
	cat := c.db.Table(catalogTable)
	if cat == nil {
		return nil
	}
	var drop []engine.RowID
	cat.Scan(func(id engine.RowID, row engine.Row) bool {
		if row[0].S == c.name {
			drop = append(drop, id)
		}
		return true
	})
	for _, id := range drop {
		cat.Delete(id)
	}
	return nil
}
