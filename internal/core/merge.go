package core

import (
	"context"
	"fmt"
	"strings"
	"time"

	"orpheusdb/internal/bitmap"
	"orpheusdb/internal/engine"
	"orpheusdb/internal/merge"
	"orpheusdb/internal/obs"
	"orpheusdb/internal/vgraph"
)

// Three-way merge over the version DAG (the branch workflow's defining
// operation): discover the lowest common ancestor, compute the merged record
// set with bitmap algebra, detect record-level primary-key conflicts on the
// changed slices only, and commit the result as a merge version with both
// sides as parents. Because every merged record already exists in one of the
// parents, the commit bypasses content-hash rematching and stores the exact
// record ids the bitmap formula produced — so the merge version's rlist is,
// by construction, the algebraic result.

// MergeOptions configures CVD.Merge.
type MergeOptions struct {
	// Policy resolves record-level conflicts (default merge.PolicyFail).
	Policy merge.Policy
	// Message is the merge version's commit message; a default naming both
	// sides is generated when empty.
	Message string
}

// MergeResult reports one merge.
type MergeResult struct {
	// Version is the resulting version: a fresh merge commit, Ours when
	// already up to date, Theirs on a fast-forward, 0 when PolicyFail
	// surfaced conflicts.
	Version      vgraph.VersionID
	Ours, Theirs vgraph.VersionID
	// Base is the lowest common ancestor (0 when the sides share no
	// ancestry and the merge ran against an empty base).
	Base vgraph.VersionID
	// UpToDate marks a no-op merge: Theirs is already an ancestor of Ours.
	UpToDate bool
	// FastForward marks a merge where Ours is an ancestor of Theirs: no
	// merge commit is needed, the result is Theirs itself.
	FastForward bool
	// Conflicts lists the keys both sides changed incompatibly; non-empty
	// with a zero Version means the merge was refused (PolicyFail).
	Conflicts []merge.Conflict
}

// ConflictError is returned when PolicyFail meets record-level conflicts.
// The failed MergeResult (with its conflict report) rides along.
type ConflictError struct {
	CVD    string
	Result *MergeResult
}

func (e *ConflictError) Error() string {
	keys := make([]string, 0, len(e.Result.Conflicts))
	for _, c := range e.Result.Conflicts {
		keys = append(keys, fmt.Sprintf("%s (%s)", c.Key, c.Kind()))
		if len(keys) == 5 && len(e.Result.Conflicts) > 5 {
			keys = append(keys, "...")
			break
		}
	}
	return fmt.Sprintf("core: %s: merge of %d into %d has %d conflict(s): %s",
		e.CVD, e.Result.Theirs, e.Result.Ours, len(e.Result.Conflicts), strings.Join(keys, ", "))
}

// Merge three-way-merges theirs into ours. Up-to-date and fast-forward cases
// produce no new version; otherwise the merged record set is committed with
// parents (ours, theirs). With PolicyFail and conflicts present the error is
// a *ConflictError carrying the report.
func (c *CVD) Merge(ours, theirs vgraph.VersionID, opts MergeOptions) (*MergeResult, error) {
	return c.MergeCtx(context.Background(), ours, theirs, opts)
}

// MergeCtx is Merge with trace propagation: LCA discovery, the bitmap merge
// formula (including record fetch and conflict detection), and the merge
// commit each contribute a span when ctx carries a trace.
func (c *CVD) MergeCtx(ctx context.Context, ours, theirs vgraph.VersionID, opts MergeOptions) (*MergeResult, error) {
	return c.mergeAt(ctx, ours, theirs, opts, c.Clock())
}

func (c *CVD) mergeAt(ctx context.Context, ours, theirs vgraph.VersionID, opts MergeOptions, at time.Time) (*MergeResult, error) {
	if _, err := c.vm.info(ours); err != nil {
		return nil, err
	}
	if _, err := c.vm.info(theirs); err != nil {
		return nil, err
	}
	res := &MergeResult{Ours: ours, Theirs: theirs}
	_, lcaSpan := obs.StartSpan(ctx, "merge.lca")
	ancO, err := c.ancestrySet(ours)
	if err != nil {
		lcaSpan.End()
		return nil, err
	}
	ancT, err := c.ancestrySet(theirs)
	if err != nil {
		lcaSpan.End()
		return nil, err
	}
	if ancO.Contains(int64(theirs)) {
		lcaSpan.End()
		res.Version, res.Base, res.UpToDate = ours, theirs, true
		return res, nil
	}
	if ancT.Contains(int64(ours)) {
		lcaSpan.End()
		res.Version, res.Base, res.FastForward = theirs, ours, true
		return res, nil
	}
	levels := c.vm.levels()
	base, ok := merge.LCAFromSets(ancO, ancT, func(v vgraph.VersionID) int { return levels[v] })
	lcaSpan.End()
	_, formulaSpan := obs.StartSpan(ctx, "merge.formula")
	baseSet := bitmap.New()
	if ok {
		res.Base = base
		if baseSet, err = c.vm.rlistSet(base); err != nil {
			formulaSpan.End()
			return nil, err
		}
	}
	oursSet, err := c.vm.rlistSet(ours)
	if err != nil {
		formulaSpan.End()
		return nil, err
	}
	theirsSet, err := c.vm.rlistSet(theirs)
	if err != nil {
		formulaSpan.End()
		return nil, err
	}
	pos := c.pkPositions()
	mres, err := merge.Merge(merge.Input{
		Base:   baseSet,
		Ours:   oursSet,
		Theirs: theirsSet,
		Keyed:  len(pos) > 0,
		Policy: opts.Policy,
		Fetch: func(set *bitmap.Bitmap) ([]merge.Record, error) {
			recs, err := c.fetchRecords(set, base, ours, theirs)
			if err != nil {
				return nil, err
			}
			out := make([]merge.Record, len(recs))
			for i, r := range recs {
				out[i] = merge.Record{RID: int64(r.RID), Row: r.Data}
				if len(pos) > 0 {
					vals := make([]engine.Value, len(pos))
					disp := make([]string, len(pos))
					for j, p := range pos {
						vals[j] = r.Data[p]
						disp[j] = r.Data[p].String()
					}
					out[i].Key = engine.EncodeKey(vals...)
					out[i].Display = strings.Join(disp, ",")
				}
			}
			return out, nil
		},
	})
	formulaSpan.End()
	if err != nil {
		return nil, err
	}
	res.Conflicts = mres.Conflicts
	if mres.Members == nil {
		return res, &ConflictError{CVD: c.name, Result: res}
	}
	_, commitSpan := obs.StartSpan(ctx, "merge.commit")
	vid, err := c.commitMerged(mres.Members, ours, theirs, opts, at)
	commitSpan.End()
	if err != nil {
		return nil, err
	}
	res.Version = vid
	c.heat.RecordMerge(ours, theirs)
	return res, nil
}

// commitMerged commits an exact record set as a merge version with parents
// (ours, theirs). All records already exist in a parent, so no fresh rows are
// handed to the model and no record ids are allocated: the version's rlist is
// precisely the merged bitmap.
func (c *CVD) commitMerged(members *bitmap.Bitmap, ours, theirs vgraph.VersionID, opts MergeOptions, at time.Time) (vgraph.VersionID, error) {
	all, err := c.fetchRecords(members, ours, theirs)
	if err != nil {
		return 0, err
	}
	// Defensive primary-key check: conflict resolution should leave exactly
	// one record per key, so a violation here is a merge-planner bug, not a
	// user error.
	if pos := c.pkPositions(); len(pos) > 0 {
		seen := make(map[string]bool, len(all))
		for _, r := range all {
			vals := make([]engine.Value, len(pos))
			for j, p := range pos {
				vals[j] = r.Data[p]
			}
			k := engine.EncodeKey(vals...)
			if seen[k] {
				return 0, fmt.Errorf("core: %s: merged record set violates primary key at %q", c.name, k)
			}
			seen[k] = true
		}
	}
	msg := opts.Message
	if msg == "" {
		msg = fmt.Sprintf("merge version %d into %d", theirs, ours)
	}
	parents := []vgraph.VersionID{ours, theirs}
	vid := c.vm.allocVersion()
	if err := c.model.Commit(vid, parents, all, nil); err != nil {
		return 0, err
	}
	rlist := make([]vgraph.RecordID, len(all))
	for i, r := range all {
		rlist[i] = r.RID
	}
	info := &VersionInfo{
		ID:           vid,
		Parents:      parents,
		CheckoutTime: at,
		CommitTime:   at,
		Message:      msg,
		Attributes:   append([]int64(nil), c.schema...),
		NumRecords:   len(all),
	}
	if err := c.vm.add(info, rlist); err != nil {
		return 0, err
	}
	return vid, nil
}

// MergeBase returns the lowest common ancestor of a and b (ok=false when
// they share no ancestry). Ancestry comes from persisted branch lineage
// bitmaps when a side is a branch head, from the metadata mirror otherwise.
func (c *CVD) MergeBase(a, b vgraph.VersionID) (vgraph.VersionID, bool, error) {
	ancA, err := c.ancestrySet(a)
	if err != nil {
		return 0, false, err
	}
	ancB, err := c.ancestrySet(b)
	if err != nil {
		return 0, false, err
	}
	levels := c.vm.levels()
	base, ok := merge.LCAFromSets(ancA, ancB, func(v vgraph.VersionID) int { return levels[v] })
	return base, ok, nil
}
