package core

import (
	"testing"
	"time"

	"orpheusdb/internal/engine"
	"orpheusdb/internal/vgraph"
)

func stagingCVD(t *testing.T) (*engine.DB, *CVD, vgraph.VersionID) {
	t.Helper()
	db := engine.NewDB()
	c, err := Init(db, "d", protCols(), InitOptions{PrimaryKey: []string{"protein1", "protein2"}})
	if err != nil {
		t.Fatal(err)
	}
	v1, err := c.Commit([]engine.Row{
		protRow("A", "B", 1, 2, 3),
		protRow("C", "D", 4, 5, 6),
	}, nil, "root")
	if err != nil {
		t.Fatal(err)
	}
	return db, c, v1
}

func TestCheckoutCommitTableFlow(t *testing.T) {
	db, c, v1 := stagingCVD(t)
	if err := c.CheckoutToTable("work", "alice", v1); err != nil {
		t.Fatal(err)
	}
	tab := db.Table("work")
	if tab == nil || tab.NumRows() != 2 {
		t.Fatal("staged table missing")
	}
	// Staged tables carry the relation's primary key.
	if len(tab.PrimaryKey()) != 2 {
		t.Fatal("staged table lost the primary key")
	}
	// Provenance recorded.
	p, err := LookupProvenance(db, "work")
	if err != nil {
		t.Fatal(err)
	}
	if p.CVD != "d" || p.User != "alice" || len(p.Parents) != 1 || p.Parents[0] != v1 {
		t.Fatalf("provenance: %+v", p)
	}
	// Edit and commit back.
	ids := tab.Index("rid")
	_ = ids
	var target engine.RowID
	tab.Scan(func(id engine.RowID, r engine.Row) bool {
		if r[0].S == "A" {
			target = id
			return false
		}
		return true
	})
	row := engine.CloneRow(tab.Get(target))
	row[4] = engine.IntValue(99)
	if err := tab.Update(target, row); err != nil {
		t.Fatal(err)
	}
	v2, err := c.CommitTable("work", "alice", "edited")
	if err != nil {
		t.Fatal(err)
	}
	info, err := c.Info(v2)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Parents) != 1 || info.Parents[0] != v1 {
		t.Fatalf("commit parents: %v", info.Parents)
	}
	// Table gone from the staging area.
	if db.HasTable("work") {
		t.Fatal("staged table not cleaned up")
	}
	if _, err := LookupProvenance(db, "work"); err == nil {
		t.Fatal("provenance not released")
	}
	// The edit created exactly one new record.
	rl1, _ := c.Rlist(v1)
	rl2, _ := c.Rlist(v2)
	if common := vgraph.IntersectSize(sortedRids(rl1), sortedRids(rl2)); common != 1 {
		t.Fatalf("common rids = %d, want 1", common)
	}
}

func TestAccessControl(t *testing.T) {
	db, c, v1 := stagingCVD(t)
	if err := c.CheckoutToTable("private", "bob", v1); err != nil {
		t.Fatal(err)
	}
	if err := CheckAccess(db, "private", "mallory"); err == nil {
		t.Fatal("foreign user allowed")
	}
	if err := CheckAccess(db, "private", "bob"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CommitTable("private", "mallory", "steal"); err == nil {
		t.Fatal("foreign commit allowed")
	}
	if _, err := c.CommitTable("private", "bob", "mine"); err != nil {
		t.Fatal(err)
	}
}

func TestCheckoutToExistingTableFails(t *testing.T) {
	db, c, v1 := stagingCVD(t)
	if _, err := db.CreateTable("taken", []engine.Column{{Name: "x", Type: engine.KindInt}}); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckoutToTable("taken", "alice", v1); err == nil {
		t.Fatal("overwrote existing table")
	}
}

func TestCommitTableWrongCVD(t *testing.T) {
	db, c, v1 := stagingCVD(t)
	c2, err := Init(db, "other", protCols(), InitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CheckoutToTable("w", "alice", v1); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.CommitTable("w", "alice", "cross"); err == nil {
		t.Fatal("cross-CVD commit allowed")
	}
}

func TestUsers(t *testing.T) {
	db := engine.NewDB()
	if err := CreateUser(db, "alice"); err != nil {
		t.Fatal(err)
	}
	if err := CreateUser(db, "alice"); err == nil {
		t.Fatal("duplicate user accepted")
	}
	if err := CreateUser(db, ""); err == nil {
		t.Fatal("empty user accepted")
	}
	if !UserExists(db, "alice") || UserExists(db, "bob") {
		t.Fatal("UserExists wrong")
	}
	if got := Users(db); len(got) != 1 || got[0] != "alice" {
		t.Fatalf("Users: %v", got)
	}
}

func TestListProvenance(t *testing.T) {
	db, c, v1 := stagingCVD(t)
	if err := c.CheckoutToTable("t1", "alice", v1); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckoutToTable("t2", "bob", v1); err != nil {
		t.Fatal(err)
	}
	if err := RecordProvenance(db, Provenance{
		Name: "f.csv", CVD: "d", Parents: []vgraph.VersionID{v1},
		User: "alice", CreatedAt: time.Now(), IsFile: true,
	}); err != nil {
		t.Fatal(err)
	}
	all := ListProvenance(db, "")
	if len(all) != 3 {
		t.Fatalf("all staged: %d", len(all))
	}
	alice := ListProvenance(db, "alice")
	if len(alice) != 2 {
		t.Fatalf("alice staged: %d", len(alice))
	}
}
