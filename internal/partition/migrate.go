package partition

import (
	"sort"

	"orpheusdb/internal/vgraph"
)

// MigrationStep maps one new partition onto its source: Old >= 0 means
// transform old partition Old by Deletes removals and Inserts additions;
// Old == -1 means build the partition from scratch (Inserts == |R'i|).
type MigrationStep struct {
	New, Old         int
	Inserts, Deletes int64
}

// MigrationPlan is the output of the migration planner; its total
// modification volume is the quantity Figures 14b/15b measure.
type MigrationPlan struct {
	Steps        []MigrationStep
	DroppedOld   []int // old partitions with no successor; dropped wholesale
	TotalRecords int64 // total inserts+deletes (the migration cost)
}

// PlanNaiveMigration rebuilds every new partition from scratch — the paper's
// naive baseline.
func PlanNaiveMigration(next *Partitioning) *MigrationPlan {
	plan := &MigrationPlan{}
	for i, part := range next.Parts {
		plan.Steps = append(plan.Steps, MigrationStep{New: i, Old: -1, Inserts: part.NumRecords})
		plan.TotalRecords += part.NumRecords
	}
	return plan
}

// PlanMigration is the intelligent migration of Section 4.3. For every new
// partition it estimates the modification cost |R'i \ Rj| + |Rj \ R'i|
// against each old partition using only version-level information (the
// records covered by the versions common to both), greedily assigns the
// cheapest pairs, and falls back to building from scratch when modification
// would cost more than |R'i|.
func PlanMigration(b *vgraph.Bipartite, old, next *Partitioning) *MigrationPlan {
	plan := &MigrationPlan{}
	type cand struct {
		newIdx, oldIdx int
		cost           int64
		inserts        int64
		deletes        int64
	}
	oldVersions := make([]map[vgraph.VersionID]bool, len(old.Parts))
	for j, part := range old.Parts {
		m := make(map[vgraph.VersionID]bool, len(part.Versions))
		for _, v := range part.Versions {
			m[v] = true
		}
		oldVersions[j] = m
	}
	var cands []cand
	for i, np := range next.Parts {
		for j, op := range old.Parts {
			var common []vgraph.VersionID
			for _, v := range np.Versions {
				if oldVersions[j][v] {
					common = append(common, v)
				}
			}
			if len(common) == 0 {
				continue
			}
			// Records of common versions live in both partitions; this
			// estimates the intersection without diffing the physical
			// record sets.
			inter := b.UnionSize(common)
			ins := np.NumRecords - inter
			del := op.NumRecords - inter
			if ins < 0 {
				ins = 0
			}
			if del < 0 {
				del = 0
			}
			cost := ins + del
			if cost >= np.NumRecords {
				continue // cheaper to build from scratch
			}
			cands = append(cands, cand{newIdx: i, oldIdx: j, cost: cost, inserts: ins, deletes: del})
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].cost != cands[b].cost {
			return cands[a].cost < cands[b].cost
		}
		if cands[a].newIdx != cands[b].newIdx {
			return cands[a].newIdx < cands[b].newIdx
		}
		return cands[a].oldIdx < cands[b].oldIdx
	})

	newDone := make([]bool, len(next.Parts))
	oldUsed := make([]bool, len(old.Parts))
	for _, c := range cands {
		if newDone[c.newIdx] || oldUsed[c.oldIdx] {
			continue
		}
		newDone[c.newIdx] = true
		oldUsed[c.oldIdx] = true
		plan.Steps = append(plan.Steps, MigrationStep{
			New: c.newIdx, Old: c.oldIdx, Inserts: c.inserts, Deletes: c.deletes,
		})
		plan.TotalRecords += c.inserts + c.deletes
	}
	for i, part := range next.Parts {
		if !newDone[i] {
			plan.Steps = append(plan.Steps, MigrationStep{New: i, Old: -1, Inserts: part.NumRecords})
			plan.TotalRecords += part.NumRecords
		}
	}
	for j := range old.Parts {
		if !oldUsed[j] {
			plan.DroppedOld = append(plan.DroppedOld, j)
		}
	}
	sort.Slice(plan.Steps, func(a, b int) bool { return plan.Steps[a].New < plan.Steps[b].New })
	return plan
}
