package partition

import (
	"fmt"

	"orpheusdb/internal/bitmap"
	"orpheusdb/internal/vgraph"
)

// Online incrementally maintains a partitioning as versions are committed
// (Section 4.3). Each commit either joins its best parent's partition or
// opens a new one, following the same intuition as LYRESPLIT; when the
// current checkout cost drifts beyond µ times the best cost LYRESPLIT can
// achieve under the storage budget, the migration engine is invoked.
type Online struct {
	// GammaFactor is γ/|R|: the storage budget as a multiple of the current
	// record count (e.g. 1.5 or 2).
	GammaFactor float64
	// Mu is the tolerance factor µ triggering migration.
	Mu float64
	// UseNaiveMigration switches to rebuild-from-scratch plans (baseline).
	UseNaiveMigration bool
	// RecomputeEvery controls how often C*avg is refreshed via LYRESPLIT
	// (1 = every commit, the paper's setting).
	RecomputeEvery int

	graph   *vgraph.Graph
	bip     *vgraph.Bipartite
	parents map[vgraph.VersionID][]vgraph.VersionID
	current *Partitioning
	// deltaStar is δ* from the last LYRESPLIT invocation.
	deltaStar float64
	bestCavg  float64
	commits   int

	// Migrations records every migration that occurred, in commit order.
	Migrations []MigrationEvent
}

// MigrationEvent records one triggered migration, including the layouts
// before and after so callers can replay (and time) the physical move.
type MigrationEvent struct {
	AtCommit   int
	Plan       *MigrationPlan
	CavgBefore float64
	CavgAfter  float64
	Prev, Next *Partitioning
}

// NewOnline creates an online maintainer with an empty CVD.
func NewOnline(gammaFactor, mu float64) *Online {
	return &Online{
		GammaFactor:    gammaFactor,
		Mu:             mu,
		RecomputeEvery: 1,
		graph:          vgraph.New(),
		bip:            vgraph.NewBipartite(),
		parents:        make(map[vgraph.VersionID][]vgraph.VersionID),
		current:        &Partitioning{Of: make(map[vgraph.VersionID]int)},
		deltaStar:      0.5,
	}
}

// Current returns the maintained partitioning.
func (o *Online) Current() *Partitioning { return o.current }

// Graph returns the version graph built so far.
func (o *Online) Graph() *vgraph.Graph { return o.graph }

// Bipartite returns the bipartite graph built so far.
func (o *Online) Bipartite() *vgraph.Bipartite { return o.bip }

// CheckoutCost returns the current Cavg.
func (o *Online) CheckoutCost() float64 { return o.current.CheckoutCost() }

// BestCheckoutCost returns C*avg from the last LYRESPLIT run.
func (o *Online) BestCheckoutCost() float64 { return o.bestCavg }

// Commit registers version v with its parents and record list, places it
// per the online rule, and triggers migration when the tolerance is
// exceeded. It reports whether a migration happened.
func (o *Online) Commit(v vgraph.VersionID, parents []vgraph.VersionID, rids []vgraph.RecordID) (bool, error) {
	o.bip.AddVersion(v, rids)
	ws := make([]int64, len(parents))
	for i, p := range parents {
		ws[i] = o.bip.CommonRecords(p, v)
	}
	if err := o.graph.AddVersion(v, parents, o.bip.Set(v).Cardinality(), ws); err != nil {
		return false, err
	}
	o.parents[v] = append([]vgraph.VersionID(nil), parents...)
	o.commits++

	o.place(v, parents, ws)

	if o.RecomputeEvery > 0 && o.commits%o.RecomputeEvery == 0 {
		if err := o.refreshBest(); err != nil {
			return false, err
		}
	}
	if o.Mu > 0 && o.bestCavg > 0 && o.current.CheckoutCost() > o.Mu*o.bestCavg {
		return true, o.migrate()
	}
	return false, nil
}

// place applies the online placement rule: join the best parent's partition
// unless the shared-record weight is below δ*·|R| while storage headroom
// remains, in which case a fresh partition is opened. Partition membership
// is folded in with bitmap unions.
func (o *Online) place(v vgraph.VersionID, parents []vgraph.VersionID, ws []int64) {
	set := o.bip.Set(v)
	bestParent := vgraph.VersionID(0)
	var bestW int64 = -1
	for i, p := range parents {
		if ws[i] > bestW {
			bestParent, bestW = p, ws[i]
		}
	}
	gamma := int64(o.GammaFactor * float64(o.bip.NumRecords()))
	s := o.current.StorageCost()
	newPartition := bestW < 0 ||
		(float64(bestW) <= o.deltaStar*float64(o.bip.NumRecords()) && s < gamma)
	if newPartition {
		// Online partitions carry membership as Set only; consumers that
		// need the materialized list (the physical replayer) fall back to
		// a bipartite union when Records is nil.
		idx := len(o.current.Parts)
		o.current.Parts = append(o.current.Parts, Part{
			Versions:   []vgraph.VersionID{v},
			Set:        set.Clone(),
			NumRecords: set.Cardinality(),
		})
		o.current.Of[v] = idx
		return
	}
	k := o.current.Of[bestParent]
	part := &o.current.Parts[k]
	part.Versions = append(part.Versions, v)
	merged := part.Set
	if merged == nil {
		merged = o.bip.UnionSet(part.Versions[:len(part.Versions)-1])
	}
	merged = bitmap.Or(merged, set)
	part.Set = merged
	part.Records = nil // stale after the merge; Set is authoritative
	part.NumRecords = merged.Cardinality()
	o.current.Of[v] = k
}

// refreshBest reruns LYRESPLIT under the current budget to update C*avg and
// δ*.
func (o *Online) refreshBest() error {
	gamma := int64(o.GammaFactor * float64(o.bip.NumRecords()))
	ls := &LyreSplit{Tree: o.graph.ToTree()}
	res, err := ls.Solve(gamma)
	if err != nil {
		return fmt.Errorf("partition: online: %w", err)
	}
	o.bestCavg = res.EstCheckout
	o.deltaStar = res.Delta
	return nil
}

// migrate reorganizes the current partitioning to LYRESPLIT's best grouping
// using the configured migration planner.
func (o *Online) migrate() error {
	gamma := int64(o.GammaFactor * float64(o.bip.NumRecords()))
	ls := &LyreSplit{Tree: o.graph.ToTree()}
	res, err := ls.Solve(gamma)
	if err != nil {
		return err
	}
	next := FromVersionGroups(o.bip, res.Groups)
	var plan *MigrationPlan
	if o.UseNaiveMigration {
		plan = PlanNaiveMigration(next)
	} else {
		plan = PlanMigration(o.bip, o.current, next)
	}
	ev := MigrationEvent{
		AtCommit:   o.commits,
		Plan:       plan,
		CavgBefore: o.current.CheckoutCost(),
		CavgAfter:  next.CheckoutCost(),
		Prev:       o.current,
		Next:       next,
	}
	o.Migrations = append(o.Migrations, ev)
	o.current = next
	o.deltaStar = res.Delta
	o.bestCavg = res.EstCheckout
	return nil
}
