package partition

import (
	"fmt"

	"orpheusdb/internal/bitmap"
	"orpheusdb/internal/vgraph"
)

// Online incrementally maintains a partitioning as versions are committed
// (Section 4.3). Each commit either joins its best parent's partition or
// opens a new one, following the same intuition as LYRESPLIT; when the
// current checkout cost drifts beyond µ times the best cost LYRESPLIT can
// achieve under the storage budget, the migration engine is invoked.
type Online struct {
	// GammaFactor is γ/|R|: the storage budget as a multiple of the current
	// record count (e.g. 1.5 or 2).
	GammaFactor float64
	// Mu is the tolerance factor µ triggering migration.
	Mu float64
	// UseNaiveMigration switches to rebuild-from-scratch plans (baseline).
	UseNaiveMigration bool
	// RecomputeEvery controls how often C*avg is refreshed via LYRESPLIT
	// (1 = every commit, the paper's setting).
	RecomputeEvery int

	graph   *vgraph.Graph
	bip     *vgraph.Bipartite
	parents map[vgraph.VersionID][]vgraph.VersionID
	current *Partitioning
	// deltaStar is δ* from the last LYRESPLIT invocation.
	deltaStar  float64
	bestCavg   float64
	bestGroups [][]vgraph.VersionID
	commits    int

	// weights holds observed per-version checkout frequencies
	// (SetAccessWeights); nil means the paper's uniform assumption.
	weights map[vgraph.VersionID]int64
	// bestWeightedCavg caches the weighted cost of bestGroups under weights
	// (-1 = stale, recomputed on demand).
	bestWeightedCavg float64

	// Migrations records every migration that occurred, in commit order.
	Migrations []MigrationEvent
}

// OptionsError reports an invalid Online configuration field. Callers match
// it with errors.As to distinguish configuration mistakes from runtime
// failures.
type OptionsError struct {
	Field  string
	Value  string
	Reason string
}

func (e *OptionsError) Error() string {
	return fmt.Sprintf("partition: online: invalid %s=%s: %s", e.Field, e.Value, e.Reason)
}

// Validate checks the maintainer's tuning fields. It catches in particular
// RecomputeEvery <= 0, which would otherwise either divide by zero or
// silently never refresh C*avg — leaving the µ-drift trigger dead.
func (o *Online) Validate() error {
	if o.RecomputeEvery <= 0 {
		return &OptionsError{
			Field:  "RecomputeEvery",
			Value:  fmt.Sprint(o.RecomputeEvery),
			Reason: "must be >= 1 (C*avg would never be refreshed and the drift trigger would never fire)",
		}
	}
	if o.GammaFactor < 1 {
		return &OptionsError{
			Field:  "GammaFactor",
			Value:  fmt.Sprintf("%g", o.GammaFactor),
			Reason: "must be >= 1 (the storage budget γ cannot be below |R|)",
		}
	}
	if o.Mu != 0 && o.Mu < 1 {
		return &OptionsError{
			Field:  "Mu",
			Value:  fmt.Sprintf("%g", o.Mu),
			Reason: "must be 0 (migration disabled) or >= 1 (a tolerance below 1 would migrate on every commit)",
		}
	}
	return nil
}

// MigrationEvent records one triggered migration, including the layouts
// before and after so callers can replay (and time) the physical move.
type MigrationEvent struct {
	AtCommit   int
	Plan       *MigrationPlan
	CavgBefore float64
	CavgAfter  float64
	Prev, Next *Partitioning
}

// NewOnline creates an online maintainer with an empty CVD.
func NewOnline(gammaFactor, mu float64) *Online {
	return &Online{
		GammaFactor:    gammaFactor,
		Mu:             mu,
		RecomputeEvery: 1,
		graph:          vgraph.New(),
		bip:            vgraph.NewBipartite(),
		parents:        make(map[vgraph.VersionID][]vgraph.VersionID),
		current:        &Partitioning{Of: make(map[vgraph.VersionID]int)},
		deltaStar:      0.5,
	}
}

// Current returns the maintained partitioning.
func (o *Online) Current() *Partitioning { return o.current }

// Graph returns the version graph built so far.
func (o *Online) Graph() *vgraph.Graph { return o.graph }

// Bipartite returns the bipartite graph built so far.
func (o *Online) Bipartite() *vgraph.Bipartite { return o.bip }

// CheckoutCost returns the current Cavg.
func (o *Online) CheckoutCost() float64 { return o.current.CheckoutCost() }

// BestCheckoutCost returns C*avg from the last LYRESPLIT run.
func (o *Online) BestCheckoutCost() float64 { return o.bestCavg }

// Commit registers version v with its parents and record list, places it
// per the online rule, and triggers migration when the tolerance is
// exceeded. It reports whether a migration happened.
func (o *Online) Commit(v vgraph.VersionID, parents []vgraph.VersionID, rids []vgraph.RecordID) (bool, error) {
	if err := o.Validate(); err != nil {
		return false, err
	}
	ws, err := o.register(v, parents, bitmap.FromSlice(recordIDsToInt64(rids)))
	if err != nil {
		return false, err
	}
	o.place(v, parents, ws)

	if o.commits%o.RecomputeEvery == 0 {
		if err := o.refreshBest(); err != nil {
			return false, err
		}
	}
	if o.Drifted(o.currentCost()) {
		return true, o.migrate()
	}
	return false, nil
}

// ObserveCommit registers a committed version without placing it in the
// shadow partitioning: the caller owns the physical layout (the store's
// partitioned model) and only wants the drift trigger — the version graph,
// the bipartite membership, and the periodic C*avg refresh. The membership
// set is shared, not copied; it must not be mutated afterwards.
func (o *Online) ObserveCommit(v vgraph.VersionID, parents []vgraph.VersionID, set *bitmap.Bitmap) error {
	if err := o.Validate(); err != nil {
		return err
	}
	if _, err := o.register(v, parents, set); err != nil {
		return err
	}
	if o.commits%o.RecomputeEvery == 0 {
		return o.refreshBest()
	}
	return nil
}

// register adds the version to the graph and bipartite membership, returning
// the parent-overlap weights.
func (o *Online) register(v vgraph.VersionID, parents []vgraph.VersionID, set *bitmap.Bitmap) ([]int64, error) {
	o.bip.AddVersionSet(v, set)
	ws := make([]int64, len(parents))
	for i, p := range parents {
		ws[i] = o.bip.CommonRecords(p, v)
	}
	if err := o.graph.AddVersion(v, parents, o.bip.Set(v).Cardinality(), ws); err != nil {
		return nil, err
	}
	o.parents[v] = append([]vgraph.VersionID(nil), parents...)
	o.commits++
	return ws, nil
}

// Drifted applies the µ trigger to a caller-supplied checkout cost: true when
// cavg exceeds µ times the best cost of the last LYRESPLIT refresh. With
// access weights attached (SetAccessWeights), the caller should supply a
// likewise-weighted current cost, and the comparison baseline becomes the
// weighted cost of the best grouping — so drift reflects the traffic the
// store actually serves, not the uniform assumption.
func (o *Online) Drifted(cavg float64) bool {
	best := o.BestCost()
	return o.Mu > 0 && best > 0 && cavg > o.Mu*best
}

// SetAccessWeights attaches observed per-version checkout frequencies (e.g.
// core.Heat.Weights); versions absent from w default to weight 1, and nil
// restores the uniform assumption. Not safe for use concurrent with Commit /
// ObserveCommit / Drifted — call it from the same goroutine that drives the
// maintainer, as the store's optimizer sweep does.
func (o *Online) SetAccessWeights(w map[vgraph.VersionID]int64) {
	o.weights = w
	o.bestWeightedCavg = -1
}

// AccessWeights returns the attached frequency map (nil when uniform).
func (o *Online) AccessWeights() map[vgraph.VersionID]int64 { return o.weights }

// BestCost returns the drift baseline: C*avg from the last LYRESPLIT refresh,
// reweighted by the attached access frequencies when present (cached until
// the weights or the best grouping change).
func (o *Online) BestCost() float64 {
	if o.weights == nil || len(o.bestGroups) == 0 {
		return o.bestCavg
	}
	if o.bestWeightedCavg < 0 {
		o.bestWeightedCavg = FromVersionGroups(o.bip, o.bestGroups).WeightedCheckoutCost(o.weights)
	}
	return o.bestWeightedCavg
}

// currentCost is the drift input for the self-placed (Commit) path: the
// maintained partitioning's cost under the attached weights, if any.
func (o *Online) currentCost() float64 {
	if o.weights == nil {
		return o.current.CheckoutCost()
	}
	return o.current.WeightedCheckoutCost(o.weights)
}

// BestGroups returns the version grouping of the last LYRESPLIT refresh (nil
// before the first refresh). The slice is shared; callers must not mutate it.
func (o *Online) BestGroups() [][]vgraph.VersionID { return o.bestGroups }

// DeltaStar returns δ* from the last LYRESPLIT refresh.
func (o *Online) DeltaStar() float64 { return o.deltaStar }

// Commits returns how many versions have been registered.
func (o *Online) Commits() int { return o.commits }

func recordIDsToInt64(rids []vgraph.RecordID) []int64 {
	out := make([]int64, len(rids))
	for i, r := range rids {
		out[i] = int64(r)
	}
	return out
}

// place applies the online placement rule: join the best parent's partition
// unless the shared-record weight is below δ*·|R| while storage headroom
// remains, in which case a fresh partition is opened. Partition membership
// is folded in with bitmap unions.
func (o *Online) place(v vgraph.VersionID, parents []vgraph.VersionID, ws []int64) {
	set := o.bip.Set(v)
	bestParent := vgraph.VersionID(0)
	var bestW int64 = -1
	for i, p := range parents {
		if ws[i] > bestW {
			bestParent, bestW = p, ws[i]
		}
	}
	gamma := int64(o.GammaFactor * float64(o.bip.NumRecords()))
	s := o.current.StorageCost()
	newPartition := bestW < 0 ||
		(float64(bestW) <= o.deltaStar*float64(o.bip.NumRecords()) && s < gamma)
	if newPartition {
		// Online partitions carry membership as Set only; consumers that
		// need the materialized list (the physical replayer) fall back to
		// a bipartite union when Records is nil.
		idx := len(o.current.Parts)
		o.current.Parts = append(o.current.Parts, Part{
			Versions:   []vgraph.VersionID{v},
			Set:        set.Clone(),
			NumRecords: set.Cardinality(),
		})
		o.current.Of[v] = idx
		return
	}
	k := o.current.Of[bestParent]
	part := &o.current.Parts[k]
	part.Versions = append(part.Versions, v)
	merged := part.Set
	if merged == nil {
		merged = o.bip.UnionSet(part.Versions[:len(part.Versions)-1])
	}
	merged = bitmap.Or(merged, set)
	part.Set = merged
	part.Records = nil // stale after the merge; Set is authoritative
	part.NumRecords = merged.Cardinality()
	o.current.Of[v] = k
}

// refreshBest reruns LYRESPLIT under the current budget to update C*avg and
// δ*.
func (o *Online) refreshBest() error {
	gamma := int64(o.GammaFactor * float64(o.bip.NumRecords()))
	ls := &LyreSplit{Tree: o.graph.ToTree()}
	res, err := ls.Solve(gamma)
	if err != nil {
		return fmt.Errorf("partition: online: %w", err)
	}
	o.bestCavg = res.EstCheckout
	o.deltaStar = res.Delta
	o.bestGroups = res.Groups
	o.bestWeightedCavg = -1
	return nil
}

// migrate reorganizes the current partitioning to LYRESPLIT's best grouping
// using the configured migration planner.
func (o *Online) migrate() error {
	gamma := int64(o.GammaFactor * float64(o.bip.NumRecords()))
	ls := &LyreSplit{Tree: o.graph.ToTree()}
	res, err := ls.Solve(gamma)
	if err != nil {
		return err
	}
	next := FromVersionGroups(o.bip, res.Groups)
	var plan *MigrationPlan
	if o.UseNaiveMigration {
		plan = PlanNaiveMigration(next)
	} else {
		plan = PlanMigration(o.bip, o.current, next)
	}
	ev := MigrationEvent{
		AtCommit:   o.commits,
		Plan:       plan,
		CavgBefore: o.current.CheckoutCost(),
		CavgAfter:  next.CheckoutCost(),
		Prev:       o.current,
		Next:       next,
	}
	o.Migrations = append(o.Migrations, ev)
	o.current = next
	o.deltaStar = res.Delta
	o.bestCavg = res.EstCheckout
	o.bestGroups = res.Groups
	o.bestWeightedCavg = -1
	return nil
}
