package partition

import (
	"math/rand"
	"testing"

	"orpheusdb/internal/vgraph"
)

// randomLineage builds a bipartite graph + parent map the way commits do:
// each version derives from a parent by dropping and adding records (records
// have connected lifetimes, per the no-cross-version-diff rule). With
// mergeProb > 0 some versions take two parents.
func randomLineage(n int, mergeProb float64, seed int64) (*vgraph.Bipartite, map[vgraph.VersionID][]vgraph.VersionID) {
	rng := rand.New(rand.NewSource(seed))
	b := vgraph.NewBipartite()
	parents := make(map[vgraph.VersionID][]vgraph.VersionID, n)
	var next vgraph.RecordID = 1
	fresh := func(k int) []vgraph.RecordID {
		out := make([]vgraph.RecordID, k)
		for i := range out {
			out[i] = next
			next++
		}
		return out
	}
	recs := map[vgraph.VersionID][]vgraph.RecordID{}
	b.AddVersion(1, fresh(10))
	recs[1] = b.Records(1)
	parents[1] = nil
	for v := vgraph.VersionID(2); v <= vgraph.VersionID(n); v++ {
		p := vgraph.VersionID(rng.Intn(int(v-1))) + 1
		cur := append([]vgraph.RecordID(nil), recs[p]...)
		ps := []vgraph.VersionID{p}
		if mergeProb > 0 && rng.Float64() < mergeProb && int(v) > 2 {
			q := vgraph.VersionID(rng.Intn(int(v-1))) + 1
			if q != p {
				seen := map[vgraph.RecordID]bool{}
				for _, r := range cur {
					seen[r] = true
				}
				for _, r := range recs[q] {
					if !seen[r] {
						cur = append(cur, r)
					}
				}
				ps = append(ps, q)
			}
		}
		// Drop a few, add a few.
		drop := rng.Intn(3)
		for i := 0; i < drop && len(cur) > 1; i++ {
			j := rng.Intn(len(cur))
			cur[j] = cur[len(cur)-1]
			cur = cur[:len(cur)-1]
		}
		cur = append(cur, fresh(1+rng.Intn(5))...)
		b.AddVersion(v, cur)
		recs[v] = b.Records(v)
		parents[v] = ps
	}
	return b, parents
}

func TestExtremesMatchObservations(t *testing.T) {
	b, _ := randomLineage(60, 0, 1)
	single := NewSinglePartition(b)
	if err := single.Validate(b); err != nil {
		t.Fatal(err)
	}
	// Observation 2: one partition minimizes storage at |R|.
	if single.StorageCost() != b.NumRecords() {
		t.Fatalf("single-partition S = %d, want %d", single.StorageCost(), b.NumRecords())
	}
	if single.CheckoutCost() != float64(b.NumRecords()) {
		t.Fatalf("single-partition Cavg = %f", single.CheckoutCost())
	}
	per := NewPartitionPerVersion(b)
	if err := per.Validate(b); err != nil {
		t.Fatal(err)
	}
	// Observation 1: a partition per version minimizes checkout at |E|/|V|.
	wantC := float64(b.NumEdges()) / float64(b.NumVersions())
	if per.CheckoutCost() != wantC {
		t.Fatalf("per-version Cavg = %f, want %f", per.CheckoutCost(), wantC)
	}
	if per.StorageCost() != b.NumEdges() {
		t.Fatalf("per-version S = %d, want %d", per.StorageCost(), b.NumEdges())
	}
	minS, minC := LowerBounds(b)
	if minS != b.NumRecords() || minC != wantC {
		t.Fatal("LowerBounds wrong")
	}
}

func TestValidateCatchesBrokenPartitionings(t *testing.T) {
	b, _ := randomLineage(20, 0, 2)
	p := NewSinglePartition(b)
	// Drop a version from the partitioning.
	p.Parts[0].Versions = p.Parts[0].Versions[1:]
	delete(p.Of, b.Versions()[0])
	if err := p.Validate(b); err == nil {
		t.Fatal("missing version not detected")
	}
	p = NewSinglePartition(b)
	// Remove a record the versions need.
	p.Parts[0].Records = p.Parts[0].Records[1:]
	if err := p.Validate(b); err == nil {
		t.Fatal("missing record not detected")
	}
	p = NewSinglePartition(b)
	// Duplicate version across partitions.
	p.Parts = append(p.Parts, Part{Versions: []vgraph.VersionID{b.Versions()[0]}})
	if err := p.Validate(b); err == nil {
		t.Fatal("duplicated version not detected")
	}
}

func TestVersionCheckoutCost(t *testing.T) {
	b, _ := randomLineage(30, 0, 3)
	p := NewPartitionPerVersion(b)
	for _, v := range b.Versions() {
		if got := p.VersionCheckoutCost(v); got != int64(len(b.Records(v))) {
			t.Fatalf("Ci for %d = %d, want %d", v, got, len(b.Records(v)))
		}
	}
	if p.VersionCheckoutCost(999) != 0 {
		t.Fatal("missing version should cost 0")
	}
}

func TestWeightedCheckoutCost(t *testing.T) {
	b, _ := randomLineage(10, 0, 4)
	p := NewSinglePartition(b)
	// All weights equal -> same as unweighted.
	freq := map[vgraph.VersionID]int64{}
	if p.WeightedCheckoutCost(freq) != p.CheckoutCost() {
		t.Fatal("uniform weighted cost should equal Cavg")
	}
	per := NewPartitionPerVersion(b)
	// Weight one version heavily: Cw approaches that version's |R(v)|.
	heavy := b.Versions()[3]
	freq[heavy] = 1_000_000
	cw := per.WeightedCheckoutCost(freq)
	want := float64(len(b.Records(heavy)))
	if cw < want*0.99 || cw > want*1.01 {
		t.Fatalf("Cw = %f, want ~%f", cw, want)
	}
}

func TestCloneIsDeep(t *testing.T) {
	b, _ := randomLineage(10, 0, 5)
	p := NewSinglePartition(b)
	q := p.Clone()
	q.Parts[0].Versions[0] = 999
	q.Parts[0].Records[0] = 999
	q.Of[b.Versions()[1]] = 7
	if p.Parts[0].Versions[0] == 999 || p.Parts[0].Records[0] == 999 {
		t.Fatal("clone shares slices")
	}
	if p.Of[b.Versions()[1]] == 7 {
		t.Fatal("clone shares map")
	}
}

func TestFromVersionGroups(t *testing.T) {
	b, _ := randomLineage(40, 0, 6)
	vs := b.Versions()
	groups := [][]vgraph.VersionID{vs[:20], vs[20:], nil}
	p := FromVersionGroups(b, groups)
	if len(p.Parts) != 2 {
		t.Fatalf("parts = %d (empty group should be dropped)", len(p.Parts))
	}
	if err := p.Validate(b); err != nil {
		t.Fatal(err)
	}
	// Groups() round trip covers every version once.
	total := 0
	for _, g := range p.Groups() {
		total += len(g)
	}
	if total != len(vs) {
		t.Fatalf("groups cover %d versions, want %d", total, len(vs))
	}
}
