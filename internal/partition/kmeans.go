package partition

import (
	"math/rand"
	"time"

	"orpheusdb/internal/vgraph"
)

// KMeans is the k-means-clustering baseline (Algorithm 5 of NScale, as
// adapted in Section 5.1): K random versions seed partitions whose centroids
// are record sets; versions join the centroid they share the most records
// with; in subsequent sweeps versions move wherever the total record count
// across partitions shrinks most, subject to the per-partition capacity BC.
// Like AGGLO it works on the bipartite graph, and its per-iteration
// version×centroid comparisons are what make it impractically slow.
type KMeans struct {
	B *vgraph.Bipartite
	// Iterations is the number of refinement sweeps (default 10, as in the
	// paper).
	Iterations int
	// Capacity is BC, the maximum records per partition (<=0 = unbounded,
	// the setting the paper evaluates).
	Capacity int64
	// Seed drives the initial centroid choice.
	Seed int64
	// Deadline, when non-zero, caps the run: refinement stops and the
	// current assignment is returned once it passes.
	Deadline time.Time
}

// Run clusters the versions into (at most) k partitions and returns the
// version groups.
func (km *KMeans) Run(k int) [][]vgraph.VersionID {
	versions := km.B.Versions()
	n := len(versions)
	if n == 0 {
		return nil
	}
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	iters := km.Iterations
	if iters <= 0 {
		iters = 10
	}

	rng := rand.New(rand.NewSource(km.Seed + 3))
	perm := rng.Perm(n)
	centroids := make([][]vgraph.RecordID, k)
	for i := 0; i < k; i++ {
		centroids[i] = append([]vgraph.RecordID(nil), km.B.Records(versions[perm[i]])...)
	}

	assign := make(map[vgraph.VersionID]int, n)
	members := make([][]vgraph.VersionID, k)

	// Initial assignment: nearest centroid by common-record count.
	sizes := make([]int64, k)
	for i := 0; i < k; i++ {
		sizes[i] = int64(len(centroids[i]))
	}
	expired := func() bool {
		return !km.Deadline.IsZero() && time.Now().After(km.Deadline)
	}
	for vi, v := range versions {
		recs := km.B.Records(v)
		if vi%64 == 0 && expired() {
			// Assign the rest round-robin so the grouping stays valid.
			for off, u := range versions[vi:] {
				assign[u] = (vi + off) % k
				members[(vi+off)%k] = append(members[(vi+off)%k], u)
			}
			break
		}
		best, bestCommon := 0, int64(-1)
		for c := 0; c < k; c++ {
			common := vgraph.IntersectSize(recs, centroids[c])
			if km.Capacity > 0 && sizes[c]+int64(len(recs))-common > km.Capacity {
				continue
			}
			if common > bestCommon {
				best, bestCommon = c, common
			}
		}
		assign[v] = best
		members[best] = append(members[best], v)
	}
	recompute := func() {
		for c := 0; c < k; c++ {
			centroids[c] = km.B.Union(members[c])
			sizes[c] = int64(len(centroids[c]))
		}
	}
	recompute()

	for it := 0; it < iters; it++ {
		if expired() {
			break
		}
		moved := false
		for vi, v := range versions {
			if vi%64 == 0 && expired() {
				break
			}
			recs := km.B.Records(v)
			cur := assign[v]
			// Added records if v joins partition c.
			bestC, bestAdd := cur, int64(len(recs))-vgraph.IntersectSize(recs, centroids[cur])
			for c := 0; c < k; c++ {
				if c == cur {
					continue
				}
				add := int64(len(recs)) - vgraph.IntersectSize(recs, centroids[c])
				if km.Capacity > 0 && sizes[c]+add > km.Capacity {
					continue
				}
				if add < bestAdd {
					bestC, bestAdd = c, add
				}
			}
			if bestC != cur {
				assign[v] = bestC
				moved = true
			}
		}
		for c := range members {
			members[c] = members[c][:0]
		}
		for _, v := range versions {
			members[assign[v]] = append(members[assign[v]], v)
		}
		recompute()
		if !moved {
			break
		}
	}

	var groups [][]vgraph.VersionID
	for c := 0; c < k; c++ {
		if len(members[c]) > 0 {
			groups = append(groups, append([]vgraph.VersionID(nil), members[c]...))
		}
	}
	return groups
}

// Solve binary-searches K to minimize checkout cost under the storage
// threshold γ: larger K means more partitions, more storage, and lower
// checkout cost.
func (km *KMeans) Solve(gamma int64) (*Partitioning, error) {
	lo, hi := 1, km.B.NumVersions()
	var best *Partitioning
	for iter := 0; iter < 20 && lo <= hi; iter++ {
		k := (lo + hi) / 2
		p := FromVersionGroups(km.B, km.Run(k))
		s := p.StorageCost()
		if s <= gamma {
			if best == nil || p.CheckoutCost() < best.CheckoutCost() {
				best = p
			}
			if 100*s >= 99*gamma {
				break
			}
			lo = k + 1
		} else {
			hi = k - 1
		}
	}
	if best == nil {
		best = NewSinglePartition(km.B)
	}
	return best, nil
}
