package partition

import (
	"math/rand"
	"sort"
	"time"

	"orpheusdb/internal/vgraph"
)

// Agglo is the agglomerative-clustering baseline (Algorithm 4 of NScale,
// as adapted in Section 5.1 of the OrpheusDB paper): partitions start as
// single versions, are ordered by min-hash shingles, and repeatedly merge
// with the following candidate sharing the most common shingles, subject to a
// per-partition record capacity BC and a sampled similarity threshold τ.
// Unlike LYRESPLIT it operates on the full version-record bipartite graph,
// which is what makes it slow.
type Agglo struct {
	B *vgraph.Bipartite
	// NumShingles is the min-hash signature width (default 16).
	NumShingles int
	// Lookahead is l, how many following partitions are merge candidates
	// (default 100, the paper's initial value).
	Lookahead int
	// Seed drives the sampled threshold and hash functions.
	Seed int64
	// Deadline, when non-zero, caps the run: clustering stops and returns
	// the current grouping once it passes (the paper capped baselines at
	// ten hours).
	Deadline time.Time
}

type aggloPart struct {
	versions []vgraph.VersionID
	records  []vgraph.RecordID
	sig      []uint64
	dead     bool
}

const minHashPrime = (1 << 61) - 1

// minHasher is a family of k linear hash functions for min-hash signatures.
type minHasher struct {
	a, b []uint64
}

func newMinHasher(k int, seed int64) *minHasher {
	rng := rand.New(rand.NewSource(seed))
	h := &minHasher{a: make([]uint64, k), b: make([]uint64, k)}
	for i := 0; i < k; i++ {
		h.a[i] = uint64(rng.Int63())%minHashPrime | 1
		h.b[i] = uint64(rng.Int63()) % minHashPrime
	}
	return h
}

func (h *minHasher) signature(recs []vgraph.RecordID) []uint64 {
	sig := make([]uint64, len(h.a))
	for i := range sig {
		sig[i] = ^uint64(0)
	}
	for _, r := range recs {
		x := uint64(r) + 0x9e3779b97f4a7c15
		for i := range sig {
			v := (h.a[i]*x + h.b[i]) % minHashPrime
			if v < sig[i] {
				sig[i] = v
			}
		}
	}
	return sig
}

// commonShingles counts positions where the two signatures agree — an
// estimator of Jaccard similarity scaled by signature width.
func commonShingles(a, b []uint64) int {
	n := 0
	for i := range a {
		if a[i] == b[i] {
			n++
		}
	}
	return n
}

// Run executes agglomerative clustering with partition capacity bc (maximum
// records per partition; <=0 means unbounded) and returns the version groups.
func (ag *Agglo) Run(bc int64) [][]vgraph.VersionID {
	k := ag.NumShingles
	if k <= 0 {
		k = 16
	}
	l := ag.Lookahead
	if l <= 0 {
		l = 100
	}
	h := newMinHasher(k, ag.Seed+1)

	parts := make([]*aggloPart, 0, ag.B.NumVersions())
	for _, v := range ag.B.Versions() {
		recs := append([]vgraph.RecordID(nil), ag.B.Records(v)...)
		parts = append(parts, &aggloPart{
			versions: []vgraph.VersionID{v},
			records:  recs,
			sig:      h.signature(recs),
		})
	}

	// Shingle-based ordering: sort partitions by signature.
	sortBySig := func(ps []*aggloPart) {
		sort.SliceStable(ps, func(i, j int) bool {
			a, b := ps[i].sig, ps[j].sig
			for x := range a {
				if a[x] != b[x] {
					return a[x] < b[x]
				}
			}
			return false
		})
	}
	sortBySig(parts)

	// Threshold τ via uniform sampling of partition pairs.
	tau := ag.sampleThreshold(parts, k)

	for {
		merged := false
		sortBySig(parts)
		for i := 0; i < len(parts); i++ {
			if !ag.Deadline.IsZero() && i%64 == 0 && time.Now().After(ag.Deadline) {
				break
			}
			if parts[i].dead {
				continue
			}
			bestJ, bestCommon := -1, tau
			for j, seen := i+1, 0; j < len(parts) && seen < l; j++ {
				if parts[j].dead {
					continue
				}
				seen++
				c := commonShingles(parts[i].sig, parts[j].sig)
				if c <= bestCommon {
					continue
				}
				if bc > 0 {
					sz := unionSizeSorted(parts[i].records, parts[j].records)
					if sz > bc {
						continue
					}
				}
				bestJ, bestCommon = j, c
			}
			if bestJ >= 0 {
				ag.merge(parts[i], parts[bestJ])
				parts[bestJ].dead = true
				merged = true
			}
		}
		if !merged || (!ag.Deadline.IsZero() && time.Now().After(ag.Deadline)) {
			merged = false
		}
		if !merged {
			break
		}
		live := parts[:0]
		for _, p := range parts {
			if !p.dead {
				live = append(live, p)
			}
		}
		parts = live
	}

	groups := make([][]vgraph.VersionID, 0, len(parts))
	for _, p := range parts {
		if !p.dead {
			groups = append(groups, p.versions)
		}
	}
	return groups
}

// sampleThreshold samples random partition pairs and returns the mean common
// shingle count, NScale's uniform-sampling threshold.
func (ag *Agglo) sampleThreshold(parts []*aggloPart, k int) int {
	if len(parts) < 2 {
		return 0
	}
	rng := rand.New(rand.NewSource(ag.Seed + 2))
	samples := 200
	if samples > len(parts)*(len(parts)-1)/2 {
		samples = len(parts) * (len(parts) - 1) / 2
	}
	total := 0
	for s := 0; s < samples; s++ {
		i := rng.Intn(len(parts))
		j := rng.Intn(len(parts))
		for j == i {
			j = rng.Intn(len(parts))
		}
		total += commonShingles(parts[i].sig, parts[j].sig)
	}
	if samples == 0 {
		return 0
	}
	return total / samples
}

func (ag *Agglo) merge(dst, src *aggloPart) {
	dst.versions = append(dst.versions, src.versions...)
	dst.records = unionSorted(dst.records, src.records)
	// The min-hash of a union is the elementwise min of the signatures, so
	// no rescan of the merged record set is needed.
	for i := range dst.sig {
		if src.sig[i] < dst.sig[i] {
			dst.sig[i] = src.sig[i]
		}
	}
}

// unionSorted merges two sorted distinct slices into a sorted distinct slice.
func unionSorted(a, b []vgraph.RecordID) []vgraph.RecordID {
	out := make([]vgraph.RecordID, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

func unionSizeSorted(a, b []vgraph.RecordID) int64 {
	return int64(len(a)+len(b)) - vgraph.IntersectSize(a, b)
}

// Solve binary-searches the capacity BC to satisfy the storage threshold γ
// (Problem 1), returning the grouping with the lowest checkout cost whose
// storage fits.
func (ag *Agglo) Solve(gamma int64) (*Partitioning, error) {
	lo, hi := int64(1), ag.B.NumEdges()
	var best *Partitioning
	for iter := 0; iter < 20 && lo <= hi; iter++ {
		bc := (lo + hi) / 2
		p := FromVersionGroups(ag.B, ag.Run(bc))
		s := p.StorageCost()
		if s <= gamma {
			if best == nil || p.CheckoutCost() < best.CheckoutCost() {
				best = p
			}
			if 100*s >= 99*gamma {
				break
			}
			// Under budget: smaller capacity keeps partitions apart,
			// spending more storage for lower checkout cost.
			hi = bc - 1
		} else {
			lo = bc + 1
		}
	}
	if best == nil {
		best = NewSinglePartition(ag.B)
	}
	return best, nil
}
