package partition

import (
	"errors"
	"testing"

	"orpheusdb/internal/bitmap"
	"orpheusdb/internal/vgraph"
)

func TestOnlineValidate(t *testing.T) {
	if err := NewOnline(2.0, 1.5).Validate(); err != nil {
		t.Fatalf("default construction invalid: %v", err)
	}
	if err := NewOnline(2.0, 0).Validate(); err != nil {
		t.Fatalf("mu=0 (migration disabled) should be valid: %v", err)
	}
	cases := []struct {
		name  string
		o     *Online
		field string
	}{
		{"recompute-zero", &Online{GammaFactor: 2, Mu: 1.5, RecomputeEvery: 0}, "RecomputeEvery"},
		{"recompute-negative", &Online{GammaFactor: 2, Mu: 1.5, RecomputeEvery: -3}, "RecomputeEvery"},
		{"gamma-below-one", &Online{GammaFactor: 0.5, Mu: 1.5, RecomputeEvery: 1}, "GammaFactor"},
		{"mu-below-one", &Online{GammaFactor: 2, Mu: 0.5, RecomputeEvery: 1}, "Mu"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.o.Validate()
			var oe *OptionsError
			if !errors.As(err, &oe) {
				t.Fatalf("want *OptionsError, got %v", err)
			}
			if oe.Field != tc.field {
				t.Fatalf("error names field %q, want %q", oe.Field, tc.field)
			}
			if oe.Error() == "" {
				t.Fatal("empty error message")
			}
		})
	}
}

// TestOnlineCommitRejectsInvalidOptions: a maintainer built by hand with
// RecomputeEvery=0 used to silently never refresh C*avg (the drift trigger
// never fired); now every entry point surfaces the typed error.
func TestOnlineCommitRejectsInvalidOptions(t *testing.T) {
	o := NewOnline(2.0, 1.5)
	o.RecomputeEvery = 0
	var oe *OptionsError
	if _, err := o.Commit(1, nil, []vgraph.RecordID{1, 2, 3}); !errors.As(err, &oe) {
		t.Fatalf("Commit with RecomputeEvery=0: want *OptionsError, got %v", err)
	}
	if err := o.ObserveCommit(1, nil, bitmap.FromSlice([]int64{1, 2, 3})); !errors.As(err, &oe) {
		t.Fatalf("ObserveCommit with RecomputeEvery=0: want *OptionsError, got %v", err)
	}
}

// TestObserveCommitFeedsTrigger drives the observe-mode feed the store's
// background optimizer uses: no shadow placement, but the version graph,
// C*avg, δ*, and the best grouping stay fresh.
func TestObserveCommitFeedsTrigger(t *testing.T) {
	o := NewOnline(2.0, 1.5)
	// A mainline plus a stale branch: every version keeps records [1..n*10].
	set := func(n int64) *bitmap.Bitmap {
		b := bitmap.New()
		for i := int64(1); i <= n; i++ {
			b.Add(i)
		}
		return b
	}
	if err := o.ObserveCommit(1, nil, set(10)); err != nil {
		t.Fatal(err)
	}
	for v := vgraph.VersionID(2); v <= 12; v++ {
		if err := o.ObserveCommit(v, []vgraph.VersionID{v - 1}, set(int64(v)*10)); err != nil {
			t.Fatal(err)
		}
	}
	if o.Commits() != 12 {
		t.Fatalf("Commits() = %d, want 12", o.Commits())
	}
	if o.BestCheckoutCost() <= 0 {
		t.Fatal("C*avg not refreshed by observe feed")
	}
	if o.BestGroups() == nil {
		t.Fatal("no best grouping after refresh")
	}
	if o.DeltaStar() <= 0 {
		t.Fatal("δ* not refreshed")
	}
	if len(o.Current().Parts) != 0 {
		t.Fatalf("observe mode placed versions: %d shadow partitions", len(o.Current().Parts))
	}
	// The trigger compares a caller-supplied Cavg against µ·C*avg.
	if o.Drifted(o.BestCheckoutCost()) {
		t.Fatal("cost at the optimum reported as drifted")
	}
	if !o.Drifted(10 * o.BestCheckoutCost()) {
		t.Fatal("10x the optimal cost not reported as drifted")
	}
}
