// Package partition implements the OrpheusDB partition optimizer (Section 4):
// the LYRESPLIT approximation algorithm, the NScale-derived AGGLO and KMEANS
// baselines, the cost model for storage and checkout, online maintenance of a
// partitioning as commits stream in, and the intelligent migration engine.
//
// Entry points: LyreSplit.Run partitions a version Tree under a target δ
// (storage bound (1+δ)^ℓ·|R|, checkout bound |E|/|V|/δ); FromVersionGroups
// turns its groups into a concrete Partitioning over the version-record
// bipartite graph; Online.Commit maintains a Partitioning incrementally and
// signals when checkout cost has drifted past µ× the achievable optimum; and
// PlanMigration/PlanNaiveMigration produce the delta steps that move the
// stored layout from one Partitioning to the next. Agglo and KMeans exist to
// reproduce the paper's baseline comparisons, not for production use.
package partition

import (
	"fmt"

	"orpheusdb/internal/bitmap"
	"orpheusdb/internal/vgraph"
)

// Partitioning assigns every version of a CVD to exactly one partition; a
// record may be duplicated across partitions (Section 4.1). Each partition
// physically stores all records of all its versions.
type Partitioning struct {
	Parts []Part
	// Of maps a version to its partition index in Parts.
	Of map[vgraph.VersionID]int
}

// Part is one partition: its versions and the distinct records they cover.
type Part struct {
	Versions []vgraph.VersionID
	// Set is the compressed membership of the partition's records. Treated
	// as immutable once assigned; may be nil when only the estimate is
	// known.
	Set *bitmap.Bitmap
	// Records is the materialized sorted record list; may be nil when only
	// Set (or only the estimate) is available.
	Records []vgraph.RecordID
	// NumRecords is |Rk|. It matches Set/Records when materialized, and
	// otherwise carries the version-graph estimate.
	NumRecords int64
}

// recordList materializes a record slice from a membership set.
func recordList(set *bitmap.Bitmap) []vgraph.RecordID {
	out := make([]vgraph.RecordID, 0, set.Cardinality())
	set.Iterate(func(r int64) bool {
		out = append(out, vgraph.RecordID(r))
		return true
	})
	return out
}

// newPart builds a fully materialized partition from a membership set.
func newPart(versions []vgraph.VersionID, set *bitmap.Bitmap) Part {
	return Part{
		Versions:   versions,
		Set:        set,
		Records:    recordList(set),
		NumRecords: set.Cardinality(),
	}
}

// NewSinglePartition places all versions of b into one partition — the
// storage-minimal extreme (Observation 2).
func NewSinglePartition(b *vgraph.Bipartite) *Partitioning {
	p := &Partitioning{Of: make(map[vgraph.VersionID]int, b.NumVersions())}
	vs := append([]vgraph.VersionID(nil), b.Versions()...)
	p.Parts = []Part{newPart(vs, b.UnionSet(vs))}
	for _, v := range vs {
		p.Of[v] = 0
	}
	return p
}

// NewPartitionPerVersion places every version in its own partition — the
// checkout-minimal extreme (Observation 1).
func NewPartitionPerVersion(b *vgraph.Bipartite) *Partitioning {
	p := &Partitioning{Of: make(map[vgraph.VersionID]int, b.NumVersions())}
	for i, v := range b.Versions() {
		p.Parts = append(p.Parts, newPart([]vgraph.VersionID{v}, b.Set(v).Clone()))
		p.Of[v] = i
	}
	return p
}

// FromVersionGroups builds a Partitioning from version groups, materializing
// each partition's record set from the bipartite graph via bitmap unions.
func FromVersionGroups(b *vgraph.Bipartite, groups [][]vgraph.VersionID) *Partitioning {
	p := &Partitioning{Of: make(map[vgraph.VersionID]int)}
	for _, g := range groups {
		if len(g) == 0 {
			continue
		}
		idx := len(p.Parts)
		p.Parts = append(p.Parts, newPart(append([]vgraph.VersionID(nil), g...), b.UnionSet(g)))
		for _, v := range g {
			p.Of[v] = idx
		}
	}
	return p
}

// Validate checks the structural invariants: every version of b appears in
// exactly one partition, and each partition's records cover the records of
// its versions.
func (p *Partitioning) Validate(b *vgraph.Bipartite) error {
	seen := make(map[vgraph.VersionID]int)
	for i, part := range p.Parts {
		for _, v := range part.Versions {
			if j, ok := seen[v]; ok {
				return fmt.Errorf("partition: version %d in partitions %d and %d", v, j, i)
			}
			seen[v] = i
			if p.Of[v] != i {
				return fmt.Errorf("partition: Of[%d]=%d but version listed in partition %d", v, p.Of[v], i)
			}
		}
	}
	for _, v := range b.Versions() {
		i, ok := seen[v]
		if !ok {
			return fmt.Errorf("partition: version %d unassigned", v)
		}
		part := p.Parts[i]
		want := b.Set(v).Cardinality()
		// Coverage check against whichever representation is materialized;
		// Records wins when callers have edited it directly.
		switch {
		case part.Records != nil:
			if n := vgraph.IntersectSize(part.Records, b.Records(v)); n != int64(len(b.Records(v))) {
				return fmt.Errorf("partition: partition %d missing %d records of version %d",
					i, int64(len(b.Records(v)))-n, v)
			}
		case part.Set != nil:
			if n := part.Set.AndCardinality(b.Set(v)); n != want {
				return fmt.Errorf("partition: partition %d missing %d records of version %d",
					i, want-n, v)
			}
		}
	}
	return nil
}

// StorageCost returns S = sum over partitions of |Rk| (Equation 4.1).
func (p *Partitioning) StorageCost() int64 {
	var s int64
	for _, part := range p.Parts {
		s += part.NumRecords
	}
	return s
}

// CheckoutCost returns Cavg = sum_k |Vk||Rk| / n (Equation 4.2).
func (p *Partitioning) CheckoutCost() float64 {
	var num, n int64
	for _, part := range p.Parts {
		num += int64(len(part.Versions)) * part.NumRecords
		n += int64(len(part.Versions))
	}
	if n == 0 {
		return 0
	}
	return float64(num) / float64(n)
}

// WeightedCheckoutCost returns Cw = sum_i fi*Ci / sum_i fi for the given
// per-version checkout frequencies (Appendix C.2). Versions missing from
// freq default to weight 1.
func (p *Partitioning) WeightedCheckoutCost(freq map[vgraph.VersionID]int64) float64 {
	var num, den int64
	for _, part := range p.Parts {
		for _, v := range part.Versions {
			f, ok := freq[v]
			if !ok {
				f = 1
			}
			num += f * part.NumRecords
			den += f
		}
	}
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// VersionCheckoutCost returns Ci = |Rk| for the partition holding v.
func (p *Partitioning) VersionCheckoutCost(v vgraph.VersionID) int64 {
	i, ok := p.Of[v]
	if !ok {
		return 0
	}
	return p.Parts[i].NumRecords
}

// Groups returns the version groups of the partitioning.
func (p *Partitioning) Groups() [][]vgraph.VersionID {
	out := make([][]vgraph.VersionID, len(p.Parts))
	for i, part := range p.Parts {
		out[i] = append([]vgraph.VersionID(nil), part.Versions...)
	}
	return out
}

// Clone deep-copies the partitioning.
func (p *Partitioning) Clone() *Partitioning {
	out := &Partitioning{Of: make(map[vgraph.VersionID]int, len(p.Of))}
	out.Parts = make([]Part, len(p.Parts))
	for i, part := range p.Parts {
		out.Parts[i] = Part{
			Versions:   append([]vgraph.VersionID(nil), part.Versions...),
			Records:    append([]vgraph.RecordID(nil), part.Records...),
			NumRecords: part.NumRecords,
		}
		if part.Set != nil {
			out.Parts[i].Set = part.Set.Clone()
		}
	}
	for v, i := range p.Of {
		out.Of[v] = i
	}
	return out
}

// LowerBounds returns the two extremes of Section 4.2: the minimum possible
// storage cost (|R|, one partition) and the minimum possible checkout cost
// (|E|/|V|, a partition per version).
func LowerBounds(b *vgraph.Bipartite) (minStorage int64, minCheckout float64) {
	minStorage = b.NumRecords()
	if b.NumVersions() > 0 {
		minCheckout = float64(b.NumEdges()) / float64(b.NumVersions())
	}
	return
}
