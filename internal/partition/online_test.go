package partition

import (
	"testing"

	"orpheusdb/internal/vgraph"
)

// streamLineage replays a random lineage through an Online maintainer.
func streamLineage(t *testing.T, o *Online, n int, mergeProb float64, seed int64) (int, *vgraph.Bipartite) {
	t.Helper()
	b, parents := randomLineage(n, mergeProb, seed)
	migrations := 0
	for _, v := range b.Versions() {
		recs := append([]vgraph.RecordID(nil), b.Records(v)...)
		m, err := o.Commit(v, parents[v], recs)
		if err != nil {
			t.Fatalf("commit %d: %v", v, err)
		}
		if m {
			migrations++
		}
	}
	return migrations, b
}

func TestOnlineMaintainsValidPartitioning(t *testing.T) {
	o := NewOnline(2.0, 1.5)
	_, b := streamLineage(t, o, 150, 0, 40)
	if err := o.Current().Validate(b); err != nil {
		t.Fatal(err)
	}
	if o.Graph().Len() != 150 {
		t.Fatalf("graph has %d versions", o.Graph().Len())
	}
	if o.Bipartite().NumVersions() != 150 {
		t.Fatalf("bipartite has %d versions", o.Bipartite().NumVersions())
	}
}

func TestOnlineMigrationKeepsCostNearBest(t *testing.T) {
	mu := 1.5
	o := NewOnline(2.0, mu)
	migrations, b := streamLineage(t, o, 200, 0, 41)
	if migrations != len(o.Migrations) {
		t.Fatalf("migration count mismatch: %d vs %d", migrations, len(o.Migrations))
	}
	// The tolerance invariant: after the stream, Cavg cannot exceed
	// µ·C*avg (migration would have fired).
	if best := o.BestCheckoutCost(); best > 0 {
		if o.CheckoutCost() > mu*best+1e-6 {
			t.Fatalf("Cavg %.1f exceeds µ·C* = %.1f", o.CheckoutCost(), mu*best)
		}
	}
	if err := o.Current().Validate(b); err != nil {
		t.Fatal(err)
	}
}

func TestOnlineSmallerMuMigratesMoreOften(t *testing.T) {
	tight := NewOnline(2.0, 1.05)
	loose := NewOnline(2.0, 2.5)
	mTight, _ := streamLineage(t, tight, 200, 0, 42)
	mLoose, _ := streamLineage(t, loose, 200, 0, 42)
	if mTight < mLoose {
		t.Fatalf("µ=1.05 migrated %d times, µ=2.5 %d times", mTight, mLoose)
	}
}

func TestOnlineZeroMuNeverMigrates(t *testing.T) {
	o := NewOnline(2.0, 0)
	m, _ := streamLineage(t, o, 100, 0, 43)
	if m != 0 {
		t.Fatalf("µ=0 migrated %d times", m)
	}
}

func TestOnlineWithMerges(t *testing.T) {
	o := NewOnline(2.0, 1.5)
	_, b := streamLineage(t, o, 150, 0.2, 44)
	if err := o.Current().Validate(b); err != nil {
		t.Fatal(err)
	}
}

func TestOnlineMigrationEventsCarryLayouts(t *testing.T) {
	o := NewOnline(1.5, 1.1)
	streamLineage(t, o, 200, 0, 45)
	if len(o.Migrations) == 0 {
		t.Skip("no migrations triggered at this seed")
	}
	for _, ev := range o.Migrations {
		if ev.Prev == nil || ev.Next == nil || ev.Plan == nil {
			t.Fatal("migration event missing layouts")
		}
		if ev.CavgAfter > ev.CavgBefore+1e-9 {
			t.Fatalf("migration worsened Cavg: %.1f -> %.1f", ev.CavgBefore, ev.CavgAfter)
		}
	}
}
