package partition

import (
	"testing"

	"orpheusdb/internal/vgraph"
)

func TestAggloProducesValidPartitionings(t *testing.T) {
	b, _ := randomLineage(80, 0, 20)
	ag := &Agglo{B: b, Seed: 1}
	for _, bc := range []int64{0, b.NumRecords() / 4, b.NumRecords(), b.NumEdges()} {
		groups := ag.Run(bc)
		p := FromVersionGroups(b, groups)
		if err := p.Validate(b); err != nil {
			t.Fatalf("BC=%d: %v", bc, err)
		}
		if bc > 0 {
			for i, part := range p.Parts {
				if part.NumRecords > bc && len(part.Versions) > 1 {
					t.Fatalf("BC=%d: partition %d has %d records", bc, i, part.NumRecords)
				}
			}
		}
	}
}

func TestAggloCapacityControlsMerging(t *testing.T) {
	b, _ := randomLineage(80, 0, 21)
	ag := &Agglo{B: b, Seed: 1}
	// A tiny capacity forbids merging; a huge one allows it.
	tiny := FromVersionGroups(b, ag.Run(1))
	huge := FromVersionGroups(b, ag.Run(b.NumEdges()))
	if len(huge.Parts) > len(tiny.Parts) {
		t.Fatalf("larger capacity produced more partitions (%d > %d)",
			len(huge.Parts), len(tiny.Parts))
	}
}

func TestAggloSolveMeetsGamma(t *testing.T) {
	b, _ := randomLineage(60, 0, 22)
	ag := &Agglo{B: b, Seed: 1}
	gamma := 2 * b.NumRecords()
	p, err := ag.Solve(gamma)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(b); err != nil {
		t.Fatal(err)
	}
	if p.StorageCost() > gamma {
		t.Fatalf("S = %d exceeds γ = %d", p.StorageCost(), gamma)
	}
}

func TestKMeansProducesValidPartitionings(t *testing.T) {
	b, _ := randomLineage(70, 0, 23)
	km := &KMeans{B: b, Seed: 1}
	for _, k := range []int{1, 2, 5, 20, 200} {
		p := FromVersionGroups(b, km.Run(k))
		if err := p.Validate(b); err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		if len(p.Parts) > k && k <= b.NumVersions() {
			t.Fatalf("K=%d produced %d partitions", k, len(p.Parts))
		}
	}
}

func TestKMeansKOneIsSinglePartition(t *testing.T) {
	b, _ := randomLineage(30, 0, 24)
	km := &KMeans{B: b, Seed: 1}
	p := FromVersionGroups(b, km.Run(1))
	if len(p.Parts) != 1 {
		t.Fatalf("K=1 produced %d partitions", len(p.Parts))
	}
	if p.StorageCost() != b.NumRecords() {
		t.Fatalf("K=1 storage = %d, want %d", p.StorageCost(), b.NumRecords())
	}
}

func TestKMeansSolveMeetsGamma(t *testing.T) {
	b, _ := randomLineage(50, 0, 25)
	km := &KMeans{B: b, Seed: 1}
	gamma := 2 * b.NumRecords()
	p, err := km.Solve(gamma)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(b); err != nil {
		t.Fatal(err)
	}
	if p.StorageCost() > gamma {
		t.Fatalf("S = %d exceeds γ = %d", p.StorageCost(), gamma)
	}
}

func TestKMeansRespectsCapacity(t *testing.T) {
	b, _ := randomLineage(40, 0, 26)
	cap := b.NumRecords()
	km := &KMeans{B: b, Seed: 1, Capacity: cap}
	p := FromVersionGroups(b, km.Run(4))
	if err := p.Validate(b); err != nil {
		t.Fatal(err)
	}
}

func TestKMeansEmpty(t *testing.T) {
	km := &KMeans{B: vgraph.NewBipartite(), Seed: 1}
	if groups := km.Run(3); groups != nil {
		t.Fatalf("empty input produced %v", groups)
	}
}

func TestLyreSplitDominatesBaselinesOnLineages(t *testing.T) {
	// The Figure 9 headline at property scale: under the same storage
	// budget, LYRESPLIT's checkout cost is within a whisker of (and usually
	// below) both baselines'.
	for seed := int64(0); seed < 3; seed++ {
		b, parents := randomLineage(100, 0, 30+seed)
		g, err := b.Graph(parents)
		if err != nil {
			t.Fatal(err)
		}
		gamma := 2 * b.NumRecords()
		ls := &LyreSplit{Tree: g.ToTree()}
		lsRes, err := ls.Solve(gamma)
		if err != nil {
			t.Fatal(err)
		}
		lsP := FromVersionGroups(b, lsRes.Groups)

		ag := &Agglo{B: b, Seed: seed}
		agP, err := ag.Solve(gamma)
		if err != nil {
			t.Fatal(err)
		}
		km := &KMeans{B: b, Seed: seed}
		kmP, err := km.Solve(gamma)
		if err != nil {
			t.Fatal(err)
		}
		slack := 1.10 // allow 10% noise at this tiny scale
		if lsP.CheckoutCost() > agP.CheckoutCost()*slack {
			t.Fatalf("seed %d: LYRESPLIT Cavg %.1f vs AGGLO %.1f",
				seed, lsP.CheckoutCost(), agP.CheckoutCost())
		}
		if lsP.CheckoutCost() > kmP.CheckoutCost()*slack {
			t.Fatalf("seed %d: LYRESPLIT Cavg %.1f vs KMEANS %.1f",
				seed, lsP.CheckoutCost(), kmP.CheckoutCost())
		}
	}
}
