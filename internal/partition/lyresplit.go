package partition

import (
	"fmt"
	"math"

	"orpheusdb/internal/vgraph"
)

// LyreSplit implements Algorithm 1 of the paper: a recursive split of the
// version tree guided only by version-graph aggregates, giving a
// ((1+δ)^ℓ, 1/δ)-approximation for Problem 1. It never touches record lists,
// which is why it is orders of magnitude faster than AGGLO/KMEANS.
type LyreSplit struct {
	Tree *vgraph.Tree

	// TotalAttrs and EdgeAttrs enable the schema-change-aware rule of
	// Appendix C.3: an edge is a split candidate when
	// a(vi,vj) * w(vi,vj) <= δ * TotalAttrs * |R|. When TotalAttrs is 0
	// the static-schema rule w <= δ|R| is used.
	TotalAttrs int
	EdgeAttrs  func(from, to vgraph.VersionID) int
}

// LyreSplitResult reports one run of the algorithm.
type LyreSplitResult struct {
	Delta  float64
	Groups [][]vgraph.VersionID
	// EstStorage and EstCheckout are the version-graph estimates of S and
	// Cavg for the produced grouping (records duplicated across cut edges
	// counted per Lemma 2).
	EstStorage  int64
	EstCheckout float64
	// Levels is ℓ, the recursion depth reached.
	Levels int
	// Cuts is the number of edges removed.
	Cuts int
}

// treeAgg holds per-subtree aggregates computed in one post-order pass.
type treeAgg struct {
	nodes []vgraph.VersionID
	nV    int64
	nE    int64 // bipartite edges = sum of R(v)
	nR    int64 // distinct records, via |R| = ΣR(v) - Σw(internal edges)
}

// Run executes LYRESPLIT with the given δ over every root of the tree and
// returns the resulting version groups with estimated costs.
func (ls *LyreSplit) Run(delta float64) *LyreSplitResult {
	if delta <= 0 {
		delta = 1e-9
	}
	res := &LyreSplitResult{Delta: delta}
	cuts := make(map[[2]vgraph.VersionID]bool)
	for _, root := range ls.Tree.Roots() {
		ls.split(root, delta, cuts, 0, res)
	}
	// Collect groups by walking each partition root (tree roots + cut
	// children).
	var roots []vgraph.VersionID
	roots = append(roots, ls.Tree.Roots()...)
	for e := range cuts {
		roots = append(roots, e[1])
	}
	var totalE, totalVR int64
	n := int64(ls.Tree.Graph.Len())
	for _, r := range roots {
		agg := ls.aggregate(r, cuts)
		res.Groups = append(res.Groups, agg.nodes)
		res.EstStorage += agg.nR
		totalVR += agg.nV * agg.nR
		totalE += agg.nE
	}
	if n > 0 {
		res.EstCheckout = float64(totalVR) / float64(n)
	}
	res.Cuts = len(cuts)
	return res
}

// split recursively applies lines 1-13 of Algorithm 1 to the partition
// rooted at root (bounded by the current cut set).
func (ls *LyreSplit) split(root vgraph.VersionID, delta float64, cuts map[[2]vgraph.VersionID]bool, level int, res *LyreSplitResult) {
	if level+1 > res.Levels {
		res.Levels = level + 1
	}
	agg := ls.aggregate(root, cuts)
	// Termination: |R| * |V| < |E| / δ means the whole partition already
	// satisfies the checkout bound of Lemma 1.
	if float64(agg.nR)*float64(agg.nV)*delta < float64(agg.nE) {
		return
	}
	e, ok := ls.pickEdge(root, cuts, delta, agg)
	if !ok {
		return
	}
	cuts[e] = true
	ls.split(root, delta, cuts, level+1, res)
	ls.split(e[1], delta, cuts, level+1, res)
}

// aggregate computes the partition aggregates for the subtree rooted at root,
// stopping at cut edges.
func (ls *LyreSplit) aggregate(root vgraph.VersionID, cuts map[[2]vgraph.VersionID]bool) treeAgg {
	var agg treeAgg
	g := ls.Tree.Graph
	stack := []vgraph.VersionID{root}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := g.Node(v)
		agg.nodes = append(agg.nodes, v)
		agg.nV++
		agg.nE += n.NumRecs
		if v == root {
			agg.nR += n.NumRecs
		} else {
			agg.nR += n.NumRecs - g.Weight(ls.Tree.Parent[v], v)
		}
		for _, c := range ls.Tree.Children(v) {
			if !cuts[[2]vgraph.VersionID{v, c}] {
				stack = append(stack, c)
			}
		}
	}
	return agg
}

// pickEdge selects the split edge among candidates Ω = {e : weight(e) ≤
// δ|R|}: the paper's heuristic minimizes the difference in version counts of
// the two sides, tie-broken on record balance.
func (ls *LyreSplit) pickEdge(root vgraph.VersionID, cuts map[[2]vgraph.VersionID]bool, delta float64, agg treeAgg) ([2]vgraph.VersionID, bool) {
	g := ls.Tree.Graph
	// One post-order pass computes subtree (V, R) for every node.
	subV := make(map[vgraph.VersionID]int64, len(agg.nodes))
	subR := make(map[vgraph.VersionID]int64, len(agg.nodes))
	var post func(v vgraph.VersionID)
	post = func(v vgraph.VersionID) {
		var nv, nr int64 = 1, g.Node(v).NumRecs
		for _, c := range ls.Tree.Children(v) {
			if cuts[[2]vgraph.VersionID{v, c}] {
				continue
			}
			post(c)
			nv += subV[c]
			nr += subR[c] - g.Weight(v, c)
		}
		subV[v] = nv
		subR[v] = nr
	}
	post(root)

	threshold := delta * float64(agg.nR)
	a := ls.TotalAttrs
	var best [2]vgraph.VersionID
	var bestVDiff, bestRDiff int64 = math.MaxInt64, math.MaxInt64
	found := false
	for _, v := range agg.nodes {
		if v == root {
			continue
		}
		p := ls.Tree.Parent[v]
		w := g.Weight(p, v)
		if a > 0 && ls.EdgeAttrs != nil {
			// Schema-aware rule (Appendix C.3).
			if float64(ls.EdgeAttrs(p, v))*float64(w) > delta*float64(a)*float64(agg.nR) {
				continue
			}
		} else if float64(w) > threshold {
			continue
		}
		v2, r2 := subV[v], subR[v]
		v1, r1 := agg.nV-v2, agg.nR-r2+w
		vd, rd := abs64(v1-v2), abs64(r1-r2)
		if vd < bestVDiff || (vd == bestVDiff && rd < bestRDiff) {
			best = [2]vgraph.VersionID{p, v}
			bestVDiff, bestRDiff = vd, rd
			found = true
		}
	}
	return best, found
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

// SolveResult reports the outcome of the binary search on δ (Appendix B).
type SolveResult struct {
	*LyreSplitResult
	Iterations int
}

// Solve finds, via binary search on δ, a partitioning whose estimated storage
// S satisfies 0.99γ ≤ S ≤ γ (Problem 1 with storage threshold γ), returning
// the feasible result with the most splits. The search space is
// [|E|/(|R||V|), 1]; larger δ yields more partitions, more storage, and lower
// checkout cost.
func (ls *LyreSplit) Solve(gamma int64) (*SolveResult, error) {
	g := ls.Tree.Graph
	var nR, nE int64
	n := int64(g.Len())
	for _, v := range g.Versions() {
		node := g.Node(v)
		nE += node.NumRecs
		if p, ok := ls.Tree.Parent[v]; ok {
			nR += node.NumRecs - g.Weight(p, v)
		} else {
			nR += node.NumRecs
		}
	}
	if n == 0 {
		return nil, fmt.Errorf("partition: lyresplit: empty version tree")
	}
	if gamma < nR {
		return nil, fmt.Errorf("partition: lyresplit: storage threshold %d below minimum %d", gamma, nR)
	}
	lo := float64(nE) / (float64(nR) * float64(n))
	hi := 1.0
	if lo > hi {
		lo = hi
	}
	var best *LyreSplitResult
	iters := 0
	for i := 0; i < 42; i++ {
		iters++
		mid := (lo + hi) / 2
		r := ls.Run(mid)
		if r.EstStorage <= gamma {
			if best == nil || r.EstCheckout < best.EstCheckout ||
				(r.EstCheckout == best.EstCheckout && r.EstStorage < best.EstStorage) {
				best = r
			}
			if 100*r.EstStorage >= 99*gamma {
				break
			}
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-12 {
			break
		}
	}
	if best == nil {
		// γ ≥ |R| guarantees the single-partition solution is feasible.
		best = ls.Run(lo)
		if best.EstStorage > gamma {
			best = &LyreSplitResult{Delta: lo, Groups: singleGroup(g), EstStorage: nR, EstCheckout: float64(nR)}
		}
	}
	return &SolveResult{LyreSplitResult: best, Iterations: iters}, nil
}

func singleGroup(g *vgraph.Graph) [][]vgraph.VersionID {
	return [][]vgraph.VersionID{append([]vgraph.VersionID(nil), g.Versions()...)}
}

// SolveWeighted handles the weighted checkout cost of Appendix C.2: it builds
// the expanded tree T' in which version vi appears freq[vi] times chained
// together, runs the binary search on T', and maps the grouping back,
// assigning each version to the partition with the fewest records among
// those holding its copies.
func SolveWeighted(t *vgraph.Tree, freq map[vgraph.VersionID]int64, gamma int64) (*SolveResult, error) {
	g := t.Graph
	// Expanded IDs are allocated past the maximum real ID.
	var maxID vgraph.VersionID
	for _, v := range g.Versions() {
		if v > maxID {
			maxID = v
		}
	}
	next := maxID + 1
	expanded := vgraph.New()
	// copyOf maps expanded IDs back to originals; chainEnd maps an original
	// to the last copy in its chain (children attach there).
	copyOf := make(map[vgraph.VersionID]vgraph.VersionID)
	chainEnd := make(map[vgraph.VersionID]vgraph.VersionID)
	for _, v := range g.Versions() {
		n := g.Node(v)
		f := freq[v]
		if f < 1 {
			f = 1
		}
		var parents []vgraph.VersionID
		var weights []int64
		if p, ok := t.Parent[v]; ok {
			parents = []vgraph.VersionID{chainEnd[p]}
			weights = []int64{g.Weight(p, v)}
		}
		// First copy keeps the original ID.
		if err := expanded.AddVersion(v, parents, n.NumRecs, weights); err != nil {
			return nil, err
		}
		copyOf[v] = v
		last := v
		for j := int64(1); j < f; j++ {
			id := next
			next++
			if err := expanded.AddVersion(id, []vgraph.VersionID{last}, n.NumRecs, []int64{n.NumRecs}); err != nil {
				return nil, err
			}
			copyOf[id] = v
			last = id
		}
		chainEnd[v] = last
	}
	et := expanded.ToTree()
	ls := &LyreSplit{Tree: et}
	res, err := ls.Solve(gamma)
	if err != nil {
		return nil, err
	}
	// Post-process: assign each original version to its smallest partition.
	type choice struct {
		group int
		size  int64
	}
	bestOf := make(map[vgraph.VersionID]choice)
	sizes := make([]int64, len(res.Groups))
	for i, grp := range res.Groups {
		// Estimate partition record count on the expanded tree.
		agg := ls.aggregateGroup(grp)
		sizes[i] = agg
	}
	for i, grp := range res.Groups {
		for _, ev := range grp {
			ov := copyOf[ev]
			if c, ok := bestOf[ov]; !ok || sizes[i] < c.size {
				bestOf[ov] = choice{group: i, size: sizes[i]}
			}
		}
	}
	groups := make([][]vgraph.VersionID, len(res.Groups))
	for _, v := range g.Versions() {
		c := bestOf[v]
		groups[c.group] = append(groups[c.group], v)
	}
	var out [][]vgraph.VersionID
	for _, grp := range groups {
		if len(grp) > 0 {
			out = append(out, grp)
		}
	}
	final := &LyreSplitResult{
		Delta:  res.Delta,
		Groups: out,
		Levels: res.Levels,
		Cuts:   res.Cuts,
	}
	return &SolveResult{LyreSplitResult: final, Iterations: res.Iterations}, nil
}

// aggregateGroup estimates the distinct-record count of an arbitrary version
// group using tree structure: records are summed as "new vs tree parent" for
// members whose parent is also in the group, full R(v) otherwise.
func (ls *LyreSplit) aggregateGroup(grp []vgraph.VersionID) int64 {
	in := make(map[vgraph.VersionID]bool, len(grp))
	for _, v := range grp {
		in[v] = true
	}
	var nR int64
	g := ls.Tree.Graph
	for _, v := range grp {
		n := g.Node(v)
		if p, ok := ls.Tree.Parent[v]; ok && in[p] {
			nR += n.NumRecs - g.Weight(p, v)
		} else {
			nR += n.NumRecs
		}
	}
	return nR
}
