package partition

import (
	"testing"

	"orpheusdb/internal/vgraph"
)

func migrationSetup(t *testing.T, seed int64) (*vgraph.Bipartite, *Partitioning, *Partitioning) {
	t.Helper()
	b, parents := randomLineage(120, 0, seed)
	g, err := b.Graph(parents)
	if err != nil {
		t.Fatal(err)
	}
	ls := &LyreSplit{Tree: g.ToTree()}
	oldRes := ls.Run(0.3)
	newRes := ls.Run(0.6)
	return b, FromVersionGroups(b, oldRes.Groups), FromVersionGroups(b, newRes.Groups)
}

func TestNaivePlanRebuildsEverything(t *testing.T) {
	b, _, next := migrationSetup(t, 50)
	plan := PlanNaiveMigration(next)
	if len(plan.Steps) != len(next.Parts) {
		t.Fatalf("steps = %d, want %d", len(plan.Steps), len(next.Parts))
	}
	var total int64
	for _, s := range plan.Steps {
		if s.Old != -1 {
			t.Fatal("naive plan reused a partition")
		}
		total += s.Inserts
	}
	if total != next.StorageCost() {
		t.Fatalf("naive inserts %d != S %d", total, next.StorageCost())
	}
	_ = b
}

func TestIntelligentPlanIsCheaper(t *testing.T) {
	// The Section 4.3 claim: the intelligent plan moves far fewer records
	// than rebuilding from scratch.
	for seed := int64(0); seed < 4; seed++ {
		b, old, next := migrationSetup(t, 60+seed)
		smart := PlanMigration(b, old, next)
		naive := PlanNaiveMigration(next)
		if smart.TotalRecords > naive.TotalRecords {
			t.Fatalf("seed %d: intelligent %d > naive %d records",
				seed, smart.TotalRecords, naive.TotalRecords)
		}
	}
}

func TestPlanCoversEveryNewPartitionOnce(t *testing.T) {
	b, old, next := migrationSetup(t, 70)
	plan := PlanMigration(b, old, next)
	seenNew := make(map[int]bool)
	seenOld := make(map[int]bool)
	for _, s := range plan.Steps {
		if seenNew[s.New] {
			t.Fatalf("new partition %d assigned twice", s.New)
		}
		seenNew[s.New] = true
		if s.Old >= 0 {
			if seenOld[s.Old] {
				t.Fatalf("old partition %d reused twice", s.Old)
			}
			seenOld[s.Old] = true
		}
	}
	if len(seenNew) != len(next.Parts) {
		t.Fatalf("plan covers %d of %d new partitions", len(seenNew), len(next.Parts))
	}
	// Dropped old partitions are exactly the unused ones.
	for _, d := range plan.DroppedOld {
		if seenOld[d] {
			t.Fatalf("dropped partition %d was also reused", d)
		}
	}
	if len(plan.DroppedOld)+len(seenOld) != len(old.Parts) {
		t.Fatal("old partitions unaccounted for")
	}
}

func TestPlanScratchWhenModificationTooExpensive(t *testing.T) {
	// A new partition with no common versions must be built from scratch.
	b := vgraph.NewBipartite()
	b.AddVersion(1, []vgraph.RecordID{1, 2})
	b.AddVersion(2, []vgraph.RecordID{3, 4})
	old := FromVersionGroups(b, [][]vgraph.VersionID{{1}})
	next := FromVersionGroups(b, [][]vgraph.VersionID{{2}})
	plan := PlanMigration(b, old, next)
	if len(plan.Steps) != 1 || plan.Steps[0].Old != -1 {
		t.Fatalf("expected scratch build, got %+v", plan.Steps)
	}
}

func TestPlanIdentityMigrationIsFree(t *testing.T) {
	b, old, _ := migrationSetup(t, 80)
	plan := PlanMigration(b, old, old)
	if plan.TotalRecords != 0 {
		t.Fatalf("identity migration moved %d records", plan.TotalRecords)
	}
}
