package partition

import (
	"math"
	"testing"

	"orpheusdb/internal/bitmap"
	"orpheusdb/internal/vgraph"
)

func seqSet(n int64) *bitmap.Bitmap {
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i + 1)
	}
	return bitmap.FromSlice(vals)
}

// TestAccessWeightsFlipDriftDecision pins the acceptance criterion for the
// heat → optimizer wiring: the same partitioning state drifts under the
// paper's uniform assumption but not once observed access frequencies say the
// traffic lives on the expensive version anyway (Appendix C.2's Cw).
func TestAccessWeightsFlipDriftDecision(t *testing.T) {
	o := NewOnline(2.0, 1.5)
	// v1 touches 10 records, v2 touches 100 (a superset lineage).
	o.bip.AddVersionSet(1, seqSet(10))
	o.bip.AddVersionSet(2, seqSet(100))

	// Best split keeps them apart: C*avg = (10 + 100) / 2 = 55.
	o.bestGroups = [][]vgraph.VersionID{{1}, {2}}
	o.bestCavg = 55
	o.bestWeightedCavg = -1

	// Current state collapsed both into one 100-record partition:
	// Cavg = (2 * 100) / 2 = 100.
	cur := FromVersionGroups(o.bip, [][]vgraph.VersionID{{1, 2}})
	o.current = cur

	// Uniform weights: 100 > µ·C*avg = 1.5·55 = 82.5 → drifted.
	if !o.Drifted(cur.CheckoutCost()) {
		t.Fatalf("uniform Cavg=%g best=%g: want drifted", cur.CheckoutCost(), o.BestCost())
	}

	// Observed heat: 99 of 100 checkouts hit v2, which costs 100 records in
	// ANY partitioning. The weighted best is (1·10 + 99·100)/100 = 99.1, so
	// the current layout is within tolerance — migration would churn records
	// for traffic that cannot get cheaper.
	w := map[vgraph.VersionID]int64{1: 1, 2: 99}
	o.SetAccessWeights(w)
	if got := o.BestCost(); math.Abs(got-99.1) > 1e-9 {
		t.Fatalf("weighted best cost = %g, want 99.1", got)
	}
	if o.Drifted(cur.WeightedCheckoutCost(o.AccessWeights())) {
		t.Fatalf("weighted Cw=%g best=%g: drift must clear under observed traffic",
			cur.WeightedCheckoutCost(w), o.BestCost())
	}

	// Dropping the weights restores the uniform verdict (and the cached
	// weighted baseline must not leak across the reset).
	o.SetAccessWeights(nil)
	if got := o.BestCost(); got != 55 {
		t.Fatalf("uniform best cost after reset = %g, want 55", got)
	}
	if !o.Drifted(cur.CheckoutCost()) {
		t.Fatal("uniform drift verdict lost after weight reset")
	}
}
