package partition

import (
	"math"
	"testing"

	"orpheusdb/internal/vgraph"
)

func lineageGraph(t *testing.T, n int, mergeProb float64, seed int64) (*vgraph.Bipartite, *vgraph.Graph) {
	t.Helper()
	b, parents := randomLineage(n, mergeProb, seed)
	g, err := b.Graph(parents)
	if err != nil {
		t.Fatal(err)
	}
	return b, g
}

func TestLyreSplitGuaranteesOnTrees(t *testing.T) {
	// Theorem 2: for any δ, LYRESPLIT yields Cavg < (1/δ)·|E|/|V| and
	// S ≤ (1+δ)^ℓ·|R|. On trees the version-graph estimates are exact, so
	// we check both the bound and the estimate-vs-exact agreement.
	for seed := int64(0); seed < 8; seed++ {
		b, g := lineageGraph(t, 120, 0, 100+seed)
		tree := g.ToTree()
		ls := &LyreSplit{Tree: tree}
		for _, delta := range []float64{0.1, 0.3, 0.5, 0.9} {
			res := ls.Run(delta)
			p := FromVersionGroups(b, res.Groups)
			if err := p.Validate(b); err != nil {
				t.Fatalf("seed %d δ=%.1f: %v", seed, delta, err)
			}
			bound := float64(b.NumEdges()) / float64(b.NumVersions()) / delta
			if got := p.CheckoutCost(); got >= bound+1e-9 {
				t.Fatalf("seed %d δ=%.1f: Cavg = %f ≥ bound %f", seed, delta, got, bound)
			}
			sBound := math.Pow(1+delta, float64(res.Levels)) * float64(b.NumRecords())
			if got := p.StorageCost(); float64(got) > sBound+1e-9 {
				t.Fatalf("seed %d δ=%.1f: S = %d > bound %f", seed, delta, got, sBound)
			}
			if res.EstStorage != p.StorageCost() {
				t.Fatalf("seed %d δ=%.1f: estimate %d != exact %d (trees must be exact)",
					seed, delta, res.EstStorage, p.StorageCost())
			}
			if math.Abs(res.EstCheckout-p.CheckoutCost()) > 1e-6 {
				t.Fatalf("seed %d δ=%.1f: est Cavg %f != exact %f",
					seed, delta, res.EstCheckout, p.CheckoutCost())
			}
		}
	}
}

func TestLyreSplitMonotoneInDelta(t *testing.T) {
	// Appendix B: larger δ cuts a superset of edges — more partitions, more
	// storage, less checkout.
	_, g := lineageGraph(t, 150, 0, 7)
	ls := &LyreSplit{Tree: g.ToTree()}
	var lastParts int
	var lastS int64
	lastC := math.Inf(1)
	for i, delta := range []float64{0.05, 0.2, 0.5, 1.0} {
		res := ls.Run(delta)
		if i > 0 {
			if len(res.Groups) < lastParts {
				t.Fatalf("δ=%.2f: partitions decreased (%d -> %d)", delta, lastParts, len(res.Groups))
			}
			if res.EstStorage < lastS {
				t.Fatalf("δ=%.2f: storage decreased", delta)
			}
			if res.EstCheckout > lastC+1e-9 {
				t.Fatalf("δ=%.2f: checkout increased", delta)
			}
		}
		lastParts, lastS, lastC = len(res.Groups), res.EstStorage, res.EstCheckout
	}
}

func TestLyreSplitDeltaOneIsPerVersion(t *testing.T) {
	// δ=1 satisfies |R||V| < |E|/δ only when every partition has one
	// version (|R(v)|·1 < |R(v)|/1 is false, so it splits until no
	// candidate edges remain). All shared edges have w ≤ |R|, so every edge
	// is a candidate and the result is a partition per version.
	_, g := lineageGraph(t, 60, 0, 8)
	ls := &LyreSplit{Tree: g.ToTree()}
	res := ls.Run(1.0)
	if len(res.Groups) != g.Len() {
		t.Fatalf("δ=1 produced %d partitions, want %d", len(res.Groups), g.Len())
	}
}

func TestSolveMeetsStorageThreshold(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		b, g := lineageGraph(t, 100, 0, 200+seed)
		ls := &LyreSplit{Tree: g.ToTree()}
		for _, factor := range []float64{1.2, 1.5, 2.0, 3.0} {
			gamma := int64(factor * float64(b.NumRecords()))
			res, err := ls.Solve(gamma)
			if err != nil {
				t.Fatalf("seed %d γ=%.1f|R|: %v", seed, factor, err)
			}
			if res.EstStorage > gamma {
				t.Fatalf("seed %d γ=%.1f|R|: S=%d exceeds γ=%d", seed, factor, res.EstStorage, gamma)
			}
			p := FromVersionGroups(b, res.Groups)
			if err := p.Validate(b); err != nil {
				t.Fatal(err)
			}
			// More budget must never hurt checkout cost (weak sanity).
			if factor == 3.0 {
				tight, err := ls.Solve(int64(1.2 * float64(b.NumRecords())))
				if err != nil {
					t.Fatal(err)
				}
				if res.EstCheckout > tight.EstCheckout+1e-9 {
					t.Fatalf("seed %d: more budget worsened checkout", seed)
				}
			}
		}
	}
}

func TestSolveRejectsInfeasibleGamma(t *testing.T) {
	b, g := lineageGraph(t, 50, 0, 9)
	ls := &LyreSplit{Tree: g.ToTree()}
	if _, err := ls.Solve(b.NumRecords() / 2); err == nil {
		t.Fatal("γ below |R| must be rejected")
	}
}

func TestSolveEmptyTree(t *testing.T) {
	ls := &LyreSplit{Tree: vgraph.New().ToTree()}
	if _, err := ls.Solve(10); err == nil {
		t.Fatal("empty tree must error")
	}
}

func TestLyreSplitOnDAG(t *testing.T) {
	// On DAGs the estimates count duplicated records |R̂| (Theorem 3):
	// exact storage is never larger than the estimate.
	for seed := int64(0); seed < 5; seed++ {
		b, g := lineageGraph(t, 120, 0.2, 300+seed)
		if g.IsTree() {
			continue
		}
		tree := g.ToTree()
		ls := &LyreSplit{Tree: tree}
		dup := tree.DupRecords(b)
		for _, delta := range []float64{0.2, 0.5} {
			res := ls.Run(delta)
			p := FromVersionGroups(b, res.Groups)
			if err := p.Validate(b); err != nil {
				t.Fatal(err)
			}
			if p.StorageCost() > res.EstStorage {
				t.Fatalf("exact S %d exceeds estimate %d", p.StorageCost(), res.EstStorage)
			}
			sBound := math.Pow(1+delta, float64(res.Levels)) * float64(b.NumRecords()+dup)
			if float64(p.StorageCost()) > sBound+1e-9 {
				t.Fatalf("S = %d > Theorem 3 bound %f", p.StorageCost(), sBound)
			}
		}
	}
}

func TestLyreSplitForest(t *testing.T) {
	// Multiple root commits form a forest; every root gets its own
	// partition tree.
	b := vgraph.NewBipartite()
	b.AddVersion(1, []vgraph.RecordID{1, 2})
	b.AddVersion(2, []vgraph.RecordID{10, 11})
	b.AddVersion(3, []vgraph.RecordID{1, 2, 3})
	g, err := b.Graph(map[vgraph.VersionID][]vgraph.VersionID{1: nil, 2: nil, 3: {1}})
	if err != nil {
		t.Fatal(err)
	}
	ls := &LyreSplit{Tree: g.ToTree()}
	res := ls.Run(0.5)
	p := FromVersionGroups(b, res.Groups)
	if err := p.Validate(b); err != nil {
		t.Fatal(err)
	}
}

func TestSolveWeighted(t *testing.T) {
	b, g := lineageGraph(t, 80, 0, 10)
	tree := g.ToTree()
	freq := map[vgraph.VersionID]int64{}
	// Recent versions checked out more often, as in real workloads.
	vs := b.Versions()
	for i, v := range vs {
		if i > len(vs)*3/4 {
			freq[v] = 10
		} else {
			freq[v] = 1
		}
	}
	gamma := 2 * b.NumRecords()
	res, err := SolveWeighted(tree, freq, 3*gamma)
	if err != nil {
		t.Fatal(err)
	}
	p := FromVersionGroups(b, res.Groups)
	if err := p.Validate(b); err != nil {
		t.Fatal(err)
	}
	// The weighted cost of the weighted solution should not exceed the
	// single-partition weighted cost.
	single := NewSinglePartition(b)
	if p.WeightedCheckoutCost(freq) > single.WeightedCheckoutCost(freq)+1e-9 {
		t.Fatal("weighted solve did not improve on the single partition")
	}
}

func TestSchemaAwareSplitting(t *testing.T) {
	// Appendix C.3: with per-edge attribute overlap, an edge with few
	// common attributes becomes a split candidate even when it shares many
	// records.
	b, g := lineageGraph(t, 60, 0, 11)
	tree := g.ToTree()
	plain := &LyreSplit{Tree: tree}
	resPlain := plain.Run(0.3)

	aware := &LyreSplit{
		Tree:       tree,
		TotalAttrs: 10,
		EdgeAttrs: func(from, to vgraph.VersionID) int {
			if to%2 == 0 {
				return 1 // schema change on even versions
			}
			return 10
		},
	}
	resAware := aware.Run(0.3)
	pa := FromVersionGroups(b, resAware.Groups)
	if err := pa.Validate(b); err != nil {
		t.Fatal(err)
	}
	if len(resAware.Groups) < len(resPlain.Groups) {
		t.Fatalf("schema-aware rule found fewer candidates (%d < %d)",
			len(resAware.Groups), len(resPlain.Groups))
	}
}

func TestLyreSplitDeterministic(t *testing.T) {
	_, g := lineageGraph(t, 100, 0, 12)
	ls := &LyreSplit{Tree: g.ToTree()}
	a := ls.Run(0.4)
	bRes := ls.Run(0.4)
	if len(a.Groups) != len(bRes.Groups) || a.EstStorage != bRes.EstStorage {
		t.Fatal("LYRESPLIT is not deterministic")
	}
}

func BenchmarkLyreSplitSolve(b *testing.B) {
	bip, parents := randomLineage(1000, 0, 13)
	g, err := bip.Graph(parents)
	if err != nil {
		b.Fatal(err)
	}
	tree := g.ToTree()
	gamma := 2 * bip.NumRecords()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ls := &LyreSplit{Tree: tree}
		if _, err := ls.Solve(gamma); err != nil {
			b.Fatal(err)
		}
	}
}
