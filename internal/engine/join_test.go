package engine

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// buildJoinTable creates a table of n rows keyed by rid, optionally clustered
// on rid or on a scrambled pk column.
func buildJoinTable(t *testing.T, n int, clusterOn string) (*DB, *Table) {
	t.Helper()
	db := NewDB()
	tab, err := db.CreateTable("data", []Column{
		{Name: "rid", Type: KindInt},
		{Name: "pk", Type: KindInt},
		{Name: "val", Type: KindInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	perm := rng.Perm(n)
	for i := 0; i < n; i++ {
		_, err := tab.Insert(Row{IntValue(int64(i)), IntValue(int64(perm[i])), IntValue(int64(i * 2))})
		if err != nil {
			t.Fatal(err)
		}
	}
	if clusterOn != "" {
		if err := tab.Cluster(clusterOn); err != nil {
			t.Fatal(err)
		}
	}
	if err := tab.CreateIndex("rid"); err != nil {
		t.Fatal(err)
	}
	return db, tab
}

func ridsOfRows(rows []Row) []int64 {
	out := make([]int64, len(rows))
	for i, r := range rows {
		out[i] = r[0].I
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestJoinMethodsAgree(t *testing.T) {
	for _, clusterOn := range []string{"rid", "pk"} {
		_, tab := buildJoinTable(t, 3000, clusterOn)
		rng := rand.New(rand.NewSource(4))
		for trial := 0; trial < 5; trial++ {
			k := 1 + rng.Intn(500)
			want := make([]int64, 0, k)
			seen := map[int64]bool{}
			for len(want) < k {
				r := rng.Int63n(3000)
				if !seen[r] {
					seen[r] = true
					want = append(want, r)
				}
			}
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			var results [][]int64
			for _, m := range []JoinMethod{HashJoin, MergeJoin, IndexNestedLoopJoin} {
				rows, err := JoinRids(tab, 0, want, m)
				if err != nil {
					t.Fatalf("%v on %s-clustered: %v", m, clusterOn, err)
				}
				got := ridsOfRows(rows)
				if len(got) != len(want) {
					t.Fatalf("%v on %s-clustered: %d rows, want %d", m, clusterOn, len(got), len(want))
				}
				results = append(results, got)
			}
			for i := 1; i < len(results); i++ {
				for j := range want {
					if results[i][j] != results[0][j] || results[0][j] != want[j] {
						t.Fatalf("method results disagree at %d", j)
					}
				}
			}
		}
	}
}

func TestJoinDuplicateRids(t *testing.T) {
	_, tab := buildJoinTable(t, 100, "rid")
	rows, err := JoinRids(tab, 0, []int64{5, 5, 7}, HashJoin)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("duplicates should yield one row each: got %d", len(rows))
	}
}

func TestJoinMissingRids(t *testing.T) {
	_, tab := buildJoinTable(t, 100, "rid")
	for _, m := range []JoinMethod{HashJoin, MergeJoin, IndexNestedLoopJoin} {
		rows, err := JoinRids(tab, 0, []int64{50, 5000}, m)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 1 {
			t.Fatalf("%v: got %d rows, want 1", m, len(rows))
		}
	}
}

func TestHashJoinCostLinearInTable(t *testing.T) {
	// The Appendix D.1 claim behind the checkout cost model: hash-join cost
	// is one sequential scan of the data table regardless of rlist size.
	db, tab := buildJoinTable(t, RowsPerPage*10, "rid")
	for _, k := range []int{10, 1000} {
		rids := make([]int64, k)
		for i := range rids {
			rids[i] = int64(i)
		}
		db.Stats().Reset()
		if _, err := JoinRids(tab, 0, rids, HashJoin); err != nil {
			t.Fatal(err)
		}
		snap := db.Stats().Snapshot()
		if snap.SeqPages != 10 {
			t.Fatalf("|rlist|=%d: SeqPages = %d, want 10", k, snap.SeqPages)
		}
		if snap.RandPages != 0 {
			t.Fatalf("|rlist|=%d: RandPages = %d, want 0", k, snap.RandPages)
		}
	}
}

func TestMergeJoinClusteredIsSequential(t *testing.T) {
	db, tab := buildJoinTable(t, RowsPerPage*8, "rid")
	db.Stats().Reset()
	if _, err := JoinRids(tab, 0, []int64{0, 100, 2000}, MergeJoin); err != nil {
		t.Fatal(err)
	}
	snap := db.Stats().Snapshot()
	// Ordered traversal of a rid-clustered heap: sequential pages, at most
	// one random fetch to land on the first page.
	if snap.RandPages > 1 {
		t.Fatalf("RandPages = %d on clustered merge join", snap.RandPages)
	}
}

func TestMergeJoinPKClusteredIsRandom(t *testing.T) {
	db, tab := buildJoinTable(t, RowsPerPage*8, "pk")
	db.Stats().Reset()
	if _, err := JoinRids(tab, 0, []int64{0, 100, 2000}, MergeJoin); err != nil {
		t.Fatal(err)
	}
	snap := db.Stats().Snapshot()
	// Following the rid index over a pk-clustered heap hops pages randomly:
	// the pathological plan of Figure 19e.
	if snap.RandPages < int64(RowsPerPage*4) {
		t.Fatalf("RandPages = %d; expected heavy random access", snap.RandPages)
	}
}

func TestINLJDenseDegradesToSequential(t *testing.T) {
	// When the probe list covers the table and the heap is rid-clustered,
	// sorted probes advance page by page: Appendix D.1's observation that
	// "random accesses are eventually reduced to a full sequential scan".
	db, tab := buildJoinTable(t, RowsPerPage*8, "rid")
	all := make([]int64, RowsPerPage*8)
	for i := range all {
		all[i] = int64(i)
	}
	db.Stats().Reset()
	if _, err := JoinRids(tab, 0, all, IndexNestedLoopJoin); err != nil {
		t.Fatal(err)
	}
	snap := db.Stats().Snapshot()
	if snap.RandPages > 1 || snap.SeqPages < 7 {
		t.Fatalf("dense INLJ: seq=%d rand=%d; want near-sequential", snap.SeqPages, snap.RandPages)
	}
}

func TestINLJSparseOnPKClusteredIsPerProbeRandom(t *testing.T) {
	db, tab := buildJoinTable(t, RowsPerPage*8, "pk")
	probes := []int64{1, 500, 1000, 1500}
	db.Stats().Reset()
	if _, err := JoinRids(tab, 0, probes, IndexNestedLoopJoin); err != nil {
		t.Fatal(err)
	}
	snap := db.Stats().Snapshot()
	if snap.RandPages < int64(len(probes))-1 {
		t.Fatalf("sparse INLJ on pk-clustered: rand=%d, want ~%d", snap.RandPages, len(probes))
	}
}

func TestINLJWithoutIndexFails(t *testing.T) {
	db := NewDB()
	tab, err := db.CreateTable("noix", []Column{{Name: "rid", Type: KindInt}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := JoinRids(tab, 0, []int64{1}, IndexNestedLoopJoin); err == nil {
		t.Fatal("INLJ without index should fail")
	}
}

func TestParseJoinMethod(t *testing.T) {
	for s, want := range map[string]JoinMethod{
		"hash": HashJoin, "merge-join": MergeJoin, "inlj": IndexNestedLoopJoin,
	} {
		got, err := ParseJoinMethod(s)
		if err != nil || got != want {
			t.Errorf("ParseJoinMethod(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseJoinMethod("quantum"); err == nil {
		t.Error("bad method accepted")
	}
	for _, m := range []JoinMethod{HashJoin, MergeJoin, IndexNestedLoopJoin, JoinMethod(9)} {
		if m.String() == "" {
			t.Error("empty String()")
		}
	}
}

func TestHashJoinGeneric(t *testing.T) {
	build := []Row{{IntValue(1), StringValue("a")}, {IntValue(2), StringValue("b")}}
	probe := []Row{{IntValue(2), StringValue("x")}, {IntValue(2), StringValue("y")}, {IntValue(3), StringValue("z")}}
	var got []string
	HashJoinGeneric(build, probe, []int{0}, []int{0}, nil, func(b, p Row) {
		got = append(got, fmt.Sprintf("%s%s", b[1].S, p[1].S))
	})
	sort.Strings(got)
	if len(got) != 2 || got[0] != "bx" || got[1] != "by" {
		t.Fatalf("generic join: %v", got)
	}
}
