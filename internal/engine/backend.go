package engine

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"
)

// Backend is the engine's pluggable storage substrate: where heap pages and
// the table catalog live when they are not resident in memory. The default
// engine (NewDB) has no backend — every page is resident and nothing below
// this interface runs, which is the original all-in-memory behaviour. With a
// backend attached (NewDBWithBackend, OpenDisk), tables keep only a working
// set of pages resident under a byte budget: cold pages fault in through
// ReadPage — a ranged point read, since page p covers rids [p·256, (p+1)·256)
// in insert order — and checkpoints flush dirty pages back instead of
// re-serializing the whole store.
//
// Writes follow the store's checkpoint discipline: every mutation between two
// checkpoints lives only in memory (and in the write-ahead log), and one
// FlushBackend call persists them as a single atomic batch sealed by Commit.
// A backend must guarantee that a crash between Commits exposes exactly the
// previous committed state on reopen — the disk implementation does this with
// commit frames and torn-tail truncation (see internal/engine/diskv).
type Backend interface {
	// Kind names the backend ("memory", "disk") for status surfaces.
	Kind() string

	// TableMetas lists the catalog: one TableMeta per committed table.
	TableMetas() ([]TableMeta, error)
	// PutTableMeta stages a catalog entry, keyed by TableMeta.ID.
	PutTableMeta(m TableMeta) error
	// DeleteTable stages removal of a table's catalog entry and its pages
	// [0, pages).
	DeleteTable(id uint64, pages int) error

	// WritePage stages one heap page.
	WritePage(table uint64, page int, pd *PageData) (int, error)
	// ReadPage fetches one heap page. Missing pages are an error — the
	// catalog said they exist.
	ReadPage(table uint64, page int) (*PageData, error)
	// DeletePage stages removal of one heap page (heap truncation after
	// Compact/Cluster shrank a table).
	DeletePage(table uint64, page int) error

	// GetMeta/PutMeta carry small store-level blobs (settings, WAL LSN,
	// table-id counter) outside the table catalog.
	GetMeta(key string) ([]byte, bool, error)
	PutMeta(key string, val []byte) error

	// Commit atomically seals everything staged since the last Commit.
	Commit() error
	// Maintain performs storage housekeeping (e.g. compaction of dead
	// frames) when worthwhile. Called after a successful Commit.
	Maintain() error
	// SizeBytes reports the backend's persistent footprint.
	SizeBytes() int64
	// Close releases the backend. The DB is unusable afterwards.
	Close() error
}

// TableMeta is a table's catalog entry: schema plus the heap geometry needed
// to reconstruct a cold table (page count, slot totals) without reading any
// page. Index and key definitions are declarations — the entries themselves
// are rebuilt by scanning on open, which is what keeps the backend a plain
// KV.
type TableMeta struct {
	ID        uint64
	Name      string
	Cols      []Column
	PK        []string
	Indexes   [][]string
	Clustered []string

	Pages int   // heap pages persisted
	NRows int   // total slots ever inserted (including tombstoned)
	NDel  int   // tombstoned slots
	Bytes int64 // live data bytes (maintained incrementally; SizeBytes source)
}

// PageData is one heap page in transit to or from a backend. Tombstoned
// slots are carried as an explicit liveness mask rather than nil rows so the
// codec never depends on an encoder's nil/empty conventions: Rows holds the
// live rows in slot order and len(Live) is the page's slot count.
type PageData struct {
	Live []bool
	Rows []Row
}

// pageDataFromSlots converts a resident page to its transit form.
func pageDataFromSlots(slots []Row) *PageData {
	pd := &PageData{Live: make([]bool, len(slots))}
	for i, r := range slots {
		if r != nil {
			pd.Live[i] = true
			pd.Rows = append(pd.Rows, r)
		}
	}
	return pd
}

// slots converts the transit form back to a resident page.
func (pd *PageData) slots() ([]Row, error) {
	out := make([]Row, len(pd.Live))
	j := 0
	for i, live := range pd.Live {
		if !live {
			continue
		}
		if j >= len(pd.Rows) {
			return nil, fmt.Errorf("engine: page data: %d live slots but %d rows", countLive(pd.Live), len(pd.Rows))
		}
		out[i] = pd.Rows[j]
		j++
	}
	if j != len(pd.Rows) {
		return nil, fmt.Errorf("engine: page data: %d live slots but %d rows", j, len(pd.Rows))
	}
	return out, nil
}

func countLive(live []bool) int {
	n := 0
	for _, l := range live {
		if l {
			n++
		}
	}
	return n
}

// encodePage serializes a page for a KV backend.
func encodePage(pd *PageData) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(pd); err != nil {
		return nil, fmt.Errorf("engine: encode page: %w", err)
	}
	return buf.Bytes(), nil
}

// encodeTableMeta serializes a catalog entry for a KV backend.
func encodeTableMeta(m TableMeta) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		return nil, fmt.Errorf("engine: encode table meta: %w", err)
	}
	return buf.Bytes(), nil
}

// decodeTableMeta is the inverse of encodeTableMeta.
func decodeTableMeta(data []byte) (TableMeta, error) {
	var m TableMeta
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&m); err != nil {
		return TableMeta{}, fmt.Errorf("engine: decode table meta: %w", err)
	}
	return m, nil
}

// decodePage is the inverse of encodePage.
func decodePage(data []byte) (*PageData, error) {
	var pd PageData
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&pd); err != nil {
		return nil, fmt.Errorf("engine: decode page: %w", err)
	}
	return &pd, nil
}

// MemBackend is the in-memory reference implementation of Backend: the
// engine's original map-per-table storage behind the same interface the disk
// backend implements. It exists for tests of the residency machinery (fault
// in, evict, flush) without disk I/O, and as the executable specification of
// the Backend contract. Rows are deep-copied across the boundary so aliasing
// bugs in the pager surface here too.
type MemBackend struct {
	mu    sync.RWMutex
	metas map[uint64]TableMeta
	pages map[uint64]map[int]*PageData
	meta  map[string][]byte
}

// NewMemBackend returns an empty in-memory backend.
func NewMemBackend() *MemBackend {
	return &MemBackend{
		metas: make(map[uint64]TableMeta),
		pages: make(map[uint64]map[int]*PageData),
		meta:  make(map[string][]byte),
	}
}

// Kind implements Backend.
func (b *MemBackend) Kind() string { return "memory" }

// TableMetas implements Backend.
func (b *MemBackend) TableMetas() ([]TableMeta, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]TableMeta, 0, len(b.metas))
	for _, m := range b.metas {
		out = append(out, m)
	}
	return out, nil
}

// PutTableMeta implements Backend.
func (b *MemBackend) PutTableMeta(m TableMeta) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	m.Cols = append([]Column(nil), m.Cols...)
	b.metas[m.ID] = m
	return nil
}

// DeleteTable implements Backend.
func (b *MemBackend) DeleteTable(id uint64, pages int) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.metas, id)
	delete(b.pages, id)
	return nil
}

// WritePage implements Backend.
func (b *MemBackend) WritePage(table uint64, page int, pd *PageData) (int, error) {
	cp := &PageData{Live: append([]bool(nil), pd.Live...), Rows: make([]Row, len(pd.Rows))}
	for i, r := range pd.Rows {
		cp.Rows[i] = CloneRow(r)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	tp := b.pages[table]
	if tp == nil {
		tp = make(map[int]*PageData)
		b.pages[table] = tp
	}
	tp[page] = cp
	return len(cp.Live)*8 + len(cp.Rows)*24, nil
}

// ReadPage implements Backend.
func (b *MemBackend) ReadPage(table uint64, page int) (*PageData, error) {
	b.mu.RLock()
	pd := b.pages[table][page]
	b.mu.RUnlock()
	if pd == nil {
		return nil, fmt.Errorf("engine: mem backend: no page %d/%d", table, page)
	}
	cp := &PageData{Live: append([]bool(nil), pd.Live...), Rows: make([]Row, len(pd.Rows))}
	for i, r := range pd.Rows {
		cp.Rows[i] = CloneRow(r)
	}
	return cp, nil
}

// DeletePage implements Backend.
func (b *MemBackend) DeletePage(table uint64, page int) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.pages[table], page)
	return nil
}

// GetMeta implements Backend.
func (b *MemBackend) GetMeta(key string) ([]byte, bool, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	v, ok := b.meta[key]
	return v, ok, nil
}

// PutMeta implements Backend.
func (b *MemBackend) PutMeta(key string, val []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.meta[key] = append([]byte(nil), val...)
	return nil
}

// Commit implements Backend (memory has no durability boundary).
func (b *MemBackend) Commit() error { return nil }

// Maintain implements Backend.
func (b *MemBackend) Maintain() error { return nil }

// SizeBytes implements Backend.
func (b *MemBackend) SizeBytes() int64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	var n int64
	for _, tp := range b.pages {
		for _, pd := range tp {
			n += int64(len(pd.Live)) * 8
			for _, r := range pd.Rows {
				n += rowBytes(r)
			}
		}
	}
	return n
}

// Close implements Backend.
func (b *MemBackend) Close() error { return nil }
