package engine

import (
	"fmt"
	"testing"
)

func testTable(t *testing.T, n int) (*DB, *Table) {
	t.Helper()
	db := NewDB()
	tab, err := db.CreateTable("t", []Column{
		{Name: "id", Type: KindInt},
		{Name: "name", Type: KindString},
		{Name: "score", Type: KindInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		_, err := tab.Insert(Row{IntValue(int64(i)), StringValue(fmt.Sprintf("n%d", i)), IntValue(int64(i % 10))})
		if err != nil {
			t.Fatal(err)
		}
	}
	return db, tab
}

func TestTableInsertScan(t *testing.T) {
	_, tab := testTable(t, 1000)
	if tab.NumRows() != 1000 {
		t.Fatalf("NumRows = %d", tab.NumRows())
	}
	wantPages := (1000 + RowsPerPage - 1) / RowsPerPage
	if tab.NumPages() != wantPages {
		t.Fatalf("NumPages = %d, want %d", tab.NumPages(), wantPages)
	}
	sum := int64(0)
	tab.Scan(func(_ RowID, r Row) bool {
		sum += r[0].I
		return true
	})
	if sum != 999*1000/2 {
		t.Fatalf("scan sum = %d", sum)
	}
}

func TestTableScanEarlyStop(t *testing.T) {
	_, tab := testTable(t, 100)
	count := 0
	tab.Scan(func(_ RowID, _ Row) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Fatalf("early stop visited %d rows", count)
	}
}

func TestTableGetUpdateDelete(t *testing.T) {
	_, tab := testTable(t, 10)
	var id RowID
	tab.Scan(func(rid RowID, r Row) bool {
		if r[0].I == 5 {
			id = rid
			return false
		}
		return true
	})
	got := tab.Get(id)
	if got == nil || got[0].I != 5 {
		t.Fatalf("Get: %v", got)
	}
	if err := tab.Update(id, Row{IntValue(5), StringValue("five"), IntValue(50)}); err != nil {
		t.Fatal(err)
	}
	if tab.Get(id)[1].S != "five" {
		t.Fatal("update not applied")
	}
	tab.Delete(id)
	if tab.Get(id) != nil {
		t.Fatal("delete not applied")
	}
	if tab.NumRows() != 9 {
		t.Fatalf("NumRows after delete = %d", tab.NumRows())
	}
}

func TestTableRowWidthValidation(t *testing.T) {
	_, tab := testTable(t, 0)
	if _, err := tab.Insert(Row{IntValue(1)}); err == nil {
		t.Fatal("short row accepted")
	}
	id, _ := tab.Insert(Row{IntValue(1), StringValue("a"), IntValue(2)})
	if err := tab.Update(id, Row{IntValue(1)}); err == nil {
		t.Fatal("short update accepted")
	}
}

func TestIndexLookup(t *testing.T) {
	_, tab := testTable(t, 500)
	if err := tab.CreateIndex("score"); err != nil {
		t.Fatal(err)
	}
	ix := tab.Index("score")
	ids := ix.Lookup(IntValue(3))
	if len(ids) != 50 {
		t.Fatalf("score=3 matched %d rows, want 50", len(ids))
	}
	for _, id := range ids {
		if tab.Get(id)[2].I != 3 {
			t.Fatal("index returned wrong row")
		}
	}
	if got := ix.Lookup(IntValue(99)); len(got) != 0 {
		t.Fatalf("missing key returned %d rows", len(got))
	}
}

func TestIndexMaintenance(t *testing.T) {
	_, tab := testTable(t, 50)
	if err := tab.CreateIndex("id"); err != nil {
		t.Fatal(err)
	}
	ix := tab.Index("id")
	ids := ix.Lookup(IntValue(7))
	if len(ids) != 1 {
		t.Fatal("setup")
	}
	// Update moves the key.
	if err := tab.Update(ids[0], Row{IntValue(1007), StringValue("x"), IntValue(0)}); err != nil {
		t.Fatal(err)
	}
	if len(ix.Lookup(IntValue(7))) != 0 {
		t.Fatal("stale index entry after update")
	}
	if len(ix.Lookup(IntValue(1007))) != 1 {
		t.Fatal("missing index entry after update")
	}
	// Delete removes the entry.
	tab.Delete(ix.Lookup(IntValue(1007))[0])
	if len(ix.Lookup(IntValue(1007))) != 0 {
		t.Fatal("stale index entry after delete")
	}
}

func TestIndexOrdered(t *testing.T) {
	_, tab := testTable(t, 300)
	if err := tab.CreateIndex("id"); err != nil {
		t.Fatal(err)
	}
	entries := tab.Index("id").Ordered()
	if len(entries) != 300 {
		t.Fatalf("entries = %d", len(entries))
	}
	for i := 1; i < len(entries); i++ {
		if entries[i-1].key > entries[i].key {
			t.Fatal("index not ordered")
		}
	}
}

func TestPrimaryKey(t *testing.T) {
	_, tab := testTable(t, 10)
	if err := tab.SetPrimaryKey("id"); err != nil {
		t.Fatal(err)
	}
	if err := tab.CheckPrimaryKey(); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Insert(Row{IntValue(3), StringValue("dup"), IntValue(0)}); err != nil {
		t.Fatal(err)
	}
	if err := tab.CheckPrimaryKey(); err == nil {
		t.Fatal("duplicate primary key not detected")
	}
	if err := tab.SetPrimaryKey("nope"); err == nil {
		t.Fatal("bad pk column accepted")
	}
}

func TestCluster(t *testing.T) {
	db, tab := testTable(t, 1000)
	if err := tab.CreateIndex("id"); err != nil {
		t.Fatal(err)
	}
	// Cluster on score: rows with equal score become contiguous.
	if err := tab.Cluster("score"); err != nil {
		t.Fatal(err)
	}
	if tab.ClusteredOn() != "score" {
		t.Fatalf("ClusteredOn = %q", tab.ClusteredOn())
	}
	last := int64(-1)
	tab.Scan(func(_ RowID, r Row) bool {
		if r[2].I < last {
			t.Fatal("heap not in clustered order")
		}
		last = r[2].I
		return true
	})
	// Indexes must survive clustering.
	if got := len(tab.Index("id").Lookup(IntValue(123))); got != 1 {
		t.Fatalf("index after cluster: %d", got)
	}
	_ = db
}

func TestAddColumnAndAlter(t *testing.T) {
	_, tab := testTable(t, 5)
	if err := tab.AddColumn(Column{Name: "extra", Type: KindFloat}); err != nil {
		t.Fatal(err)
	}
	if tab.ColIndex("extra") != 3 {
		t.Fatal("column not added")
	}
	tab.Scan(func(_ RowID, r Row) bool {
		if len(r) != 4 || !r[3].IsNull() {
			t.Fatal("old rows should read NULL")
		}
		return true
	})
	if err := tab.AddColumn(Column{Name: "extra", Type: KindInt}); err == nil {
		t.Fatal("duplicate column accepted")
	}
	// Widen score int -> float.
	if err := tab.AlterColumnType("score", KindFloat); err != nil {
		t.Fatal(err)
	}
	tab.Scan(func(_ RowID, r Row) bool {
		if r[2].K != KindFloat {
			t.Fatalf("score not widened: %v", r[2])
		}
		return true
	})
	// Narrowing must fail.
	if err := tab.AlterColumnType("name", KindInt); err == nil {
		t.Fatal("narrowing accepted")
	}
}

func TestStatsAccounting(t *testing.T) {
	db, tab := testTable(t, RowsPerPage*4)
	db.Stats().Reset()
	tab.Scan(func(_ RowID, _ Row) bool { return true })
	snap := db.Stats().Snapshot()
	if snap.SeqPages != 4 {
		t.Fatalf("SeqPages = %d, want 4", snap.SeqPages)
	}
	if snap.RowsScanned != int64(RowsPerPage*4) {
		t.Fatalf("RowsScanned = %d", snap.RowsScanned)
	}
	tab.Get(MakeRowID(2, 5))
	d := db.Stats().Since(snap)
	if d.RandPages != 1 {
		t.Fatalf("RandPages delta = %d", d.RandPages)
	}
	if d.IOCost() != RandCost {
		t.Fatalf("IOCost = %d", d.IOCost())
	}
}

func TestSizeBytes(t *testing.T) {
	_, tab := testTable(t, 100)
	s1 := tab.SizeBytes()
	if s1 <= 0 {
		t.Fatal("zero size")
	}
	if _, err := tab.Insert(Row{IntValue(1000), StringValue("more"), IntValue(1)}); err != nil {
		t.Fatal(err)
	}
	if tab.SizeBytes() <= s1 {
		t.Fatal("size did not grow")
	}
}

func TestRowIDPacking(t *testing.T) {
	id := MakeRowID(123456, 789)
	if id.Page() != 123456 || id.Slot() != 789 {
		t.Fatalf("roundtrip: page=%d slot=%d", id.Page(), id.Slot())
	}
}

func TestTableCompact(t *testing.T) {
	_, tab := testTable(t, 1000)
	if err := tab.CreateIndex("id"); err != nil {
		t.Fatal(err)
	}
	var drop []RowID
	tab.Scan(func(id RowID, r Row) bool {
		if r[0].I%3 != 0 {
			drop = append(drop, id)
		}
		return true
	})
	tab.DeleteBatch(drop)
	pagesBefore := tab.NumPages()
	if tab.NumDeleted() != len(drop) {
		t.Fatalf("NumDeleted = %d, want %d", tab.NumDeleted(), len(drop))
	}
	if err := tab.Compact(); err != nil {
		t.Fatal(err)
	}
	if tab.NumDeleted() != 0 {
		t.Fatalf("NumDeleted = %d after compact", tab.NumDeleted())
	}
	if tab.NumRows() != 334 { // 0,3,...,999
		t.Fatalf("NumRows = %d, want 334", tab.NumRows())
	}
	if tab.NumPages() >= pagesBefore {
		t.Fatalf("compact did not shrink the heap: %d pages", tab.NumPages())
	}
	// Scan order preserved, no tombstoned slots visited.
	prev := int64(-1)
	n := 0
	tab.Scan(func(_ RowID, r Row) bool {
		if r[0].I <= prev || r[0].I%3 != 0 {
			t.Fatalf("bad row %d after compact (prev %d)", r[0].I, prev)
		}
		prev = r[0].I
		n++
		return true
	})
	if n != 334 {
		t.Fatalf("scan visited %d rows", n)
	}
	// Indexes rebuilt over the new RowIDs.
	ids := tab.Index("id").Lookup(IntValue(999))
	if len(ids) != 1 {
		t.Fatalf("index lookup found %d rows", len(ids))
	}
	if got := tab.Get(ids[0]); got == nil || got[0].I != 999 {
		t.Fatalf("index points at %v", got)
	}
	// Compacting a clean table is a no-op.
	if err := tab.Compact(); err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 334 {
		t.Fatalf("second compact changed NumRows to %d", tab.NumRows())
	}
}
