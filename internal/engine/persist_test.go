package engine

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// buildPersistDB assembles a database exercising every feature the snapshot
// format must carry: settings, typed columns of all kinds, NULLs, primary
// keys, secondary (including composite) indexes, and a clustered layout.
func buildPersistDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	db.SetSetting("join_method", "merge")
	db.SetSetting("custom", "xyz")

	emp, err := db.CreateTable("emp", []Column{
		{Name: "id", Type: KindInt},
		{Name: "name", Type: KindString},
		{Name: "salary", Type: KindFloat},
		{Name: "active", Type: KindBool},
		{Name: "teams", Type: KindIntArray},
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := []Row{
		{IntValue(1), StringValue("ada"), FloatValue(100.5), BoolValue(true), ArrayValue([]int64{1, 2})},
		{IntValue(2), StringValue("bob"), FloatValue(90.25), BoolValue(false), ArrayValue([]int64{2})},
		{IntValue(3), StringValue("cyn"), NullValue(), BoolValue(true), ArrayValue(nil)},
	}
	if err := emp.InsertMany(rows); err != nil {
		t.Fatal(err)
	}
	if err := emp.SetPrimaryKey("id"); err != nil {
		t.Fatal(err)
	}
	if err := emp.CreateIndex("name"); err != nil {
		t.Fatal(err)
	}
	if err := emp.CreateIndex("active", "name"); err != nil {
		t.Fatal(err)
	}
	if err := emp.Cluster("id"); err != nil {
		t.Fatal(err)
	}

	// A second, plainer table ensures multi-table snapshots work.
	log, err := db.CreateTable("log", []Column{
		{Name: "seq", Type: KindInt},
		{Name: "msg", Type: KindString},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := log.InsertMany([]Row{
		{IntValue(10), StringValue("hello")},
		{IntValue(20), StringValue("world")},
	}); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db := buildPersistDB(t)
	path := filepath.Join(t.TempDir(), "snap.odb")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	re, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}

	// Settings survive.
	if got := re.Setting("join_method"); got != "merge" {
		t.Errorf("setting join_method = %q, want merge", got)
	}
	if got := re.Setting("custom"); got != "xyz" {
		t.Errorf("setting custom = %q, want xyz", got)
	}

	emp := re.Table("emp")
	if emp == nil {
		t.Fatal("table emp missing after reload")
	}
	// Schema and rows survive, with value kinds intact.
	if got, want := len(emp.Columns()), 5; got != want {
		t.Fatalf("emp columns = %d, want %d", got, want)
	}
	if emp.NumRows() != 3 {
		t.Fatalf("emp rows = %d, want 3", emp.NumRows())
	}
	var ada Row
	emp.Scan(func(_ RowID, r Row) bool {
		if r[0].I == 1 {
			ada = r
			return false
		}
		return true
	})
	if ada == nil {
		t.Fatal("row id=1 missing after reload")
	}
	if ada[1].S != "ada" || ada[2].F != 100.5 || !ada[3].Bool() {
		t.Errorf("row id=1 corrupted: %v", ada)
	}
	if len(ada[4].A) != 2 || ada[4].A[0] != 1 || ada[4].A[1] != 2 {
		t.Errorf("integer[] cell corrupted: %v", ada[4])
	}
	// The NULL salary stays NULL.
	emp.Scan(func(_ RowID, r Row) bool {
		if r[0].I == 3 && !r[2].IsNull() {
			t.Errorf("NULL cell became %v", r[2])
		}
		return true
	})

	// Primary key survives (and CheckPrimaryKey enforces it again).
	pk := emp.PrimaryKey()
	if len(pk) != 1 || emp.Columns()[pk[0]].Name != "id" {
		t.Errorf("primary key = %v, want [id]", pk)
	}
	if err := emp.CheckPrimaryKey(); err != nil {
		t.Errorf("CheckPrimaryKey on clean reload: %v", err)
	}
	if _, err := emp.Insert(Row{IntValue(1), StringValue("dup"), NullValue(), BoolValue(false), ArrayValue(nil)}); err != nil {
		t.Fatal(err)
	}
	if err := emp.CheckPrimaryKey(); err == nil {
		t.Error("duplicate primary key undetected after reload")
	}

	// Secondary indexes survive, including the composite one.
	if emp.Index("name") == nil {
		t.Error("index on (name) missing after reload")
	}
	if emp.Index("active", "name") == nil {
		t.Error("index on (active,name) missing after reload")
	}

	// Clustered layout survives.
	if got := emp.ClusteredOn(); got != "id" {
		t.Errorf("clustered on %q, want id", got)
	}

	// Second table intact.
	log := re.Table("log")
	if log == nil || log.NumRows() != 2 {
		t.Fatalf("table log missing or wrong size after reload")
	}
}

// TestSaveAtomicity checks the write-temp-then-rename contract: a failed
// save must not clobber an existing good snapshot, and no .tmp file is left
// behind after success.
func TestSaveAtomicity(t *testing.T) {
	db := buildPersistDB(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.odb")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Errorf("temp file left behind after save: %v", err)
	}
	// Saving into a directory that cannot be written fails without
	// touching the original.
	if err := db.Save(filepath.Join(dir, "missing", "snap.odb")); err == nil {
		t.Error("save into missing directory succeeded")
	}
	if _, err := Load(path); err != nil {
		t.Errorf("original snapshot unreadable after failed save: %v", err)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.odb")
	if err := os.WriteFile(path, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Error("loading garbage succeeded")
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.odb")); err == nil {
		t.Error("loading missing file succeeded")
	}
	// A missing file is an I/O problem, not corruption: the typed sentinel
	// must not be attached to it.
	if _, err := Load(filepath.Join(t.TempDir(), "missing.odb")); errors.Is(err, ErrCorruptSnapshot) {
		t.Error("missing file misreported as corrupt snapshot")
	}
}

// TestLoadCorruptSnapshotTyped runs damaged snapshot files through Load and
// asserts every decode failure wraps ErrCorruptSnapshot and returns no DB.
func TestLoadCorruptSnapshotTyped(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.odb")
	if err := buildPersistDB(t).Save(good); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	// (gob carries no checksum, so a bit flip inside a value's payload can
	// decode "successfully" to wrong data — only structural damage like
	// truncation or garbage is detectable, and those must be typed.)
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"garbage", []byte("not a snapshot at all")},
		{"truncated-header", raw[:3]},
		{"truncated-half", raw[:len(raw)/2]},
		{"truncated-tail", raw[:len(raw)-1]},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, tc.name+".odb")
			if err := os.WriteFile(path, tc.data, 0o644); err != nil {
				t.Fatal(err)
			}
			db, err := Load(path)
			if err == nil {
				t.Fatal("corrupt snapshot loaded without error")
			}
			if !errors.Is(err, ErrCorruptSnapshot) {
				t.Fatalf("error %v does not wrap ErrCorruptSnapshot", err)
			}
			if db != nil {
				t.Fatal("partially-initialized DB returned alongside error")
			}
		})
	}
}

// TestSnapshotWalLSNRoundTrip checks the WAL handoff: the applied-LSN marker
// travels through Snapshot -> WriteFile -> Load unchanged, and old snapshots
// without the field decode as zero.
func TestSnapshotWalLSNRoundTrip(t *testing.T) {
	db := buildPersistDB(t)
	db.SetWalLSN(41)
	db.AdvanceWalLSN(57)
	db.AdvanceWalLSN(12) // lower LSNs never regress the marker
	if got := db.WalLSN(); got != 57 {
		t.Fatalf("WalLSN = %d, want 57", got)
	}
	path := filepath.Join(t.TempDir(), "wal_lsn.gob")
	snap := db.Snapshot()
	if snap.WalLSN != 57 {
		t.Fatalf("snapshot WalLSN = %d, want 57", snap.WalLSN)
	}
	if err := snap.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := loaded.WalLSN(); got != 57 {
		t.Fatalf("loaded WalLSN = %d, want 57", got)
	}
}

// TestSnapshotByteSize checks the checkpoint-cost estimate: positive, grows
// with data, and lands within a small factor of the real serialized size.
func TestSnapshotByteSize(t *testing.T) {
	db := buildPersistDB(t)
	snap := db.Snapshot()
	est := snap.ByteSize()
	if est <= 0 {
		t.Fatalf("ByteSize = %d, want > 0", est)
	}

	small := NewDB().Snapshot()
	if small.ByteSize() >= est {
		t.Fatalf("empty snapshot estimate %d not below populated %d", small.ByteSize(), est)
	}

	path := filepath.Join(t.TempDir(), "size.gob")
	if err := snap.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	real := fi.Size()
	if est < real/8 || est > real*8 {
		t.Fatalf("ByteSize estimate %d too far from serialized size %d", est, real)
	}
}
