package engine

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull: "null", KindInt: "integer", KindFloat: "decimal",
		KindString: "string", KindBool: "boolean", KindIntArray: "integer[]",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestKindFromName(t *testing.T) {
	for name, want := range map[string]Kind{
		"int": KindInt, "INTEGER": KindInt, "bigint": KindInt,
		"float": KindFloat, "decimal": KindFloat, "numeric": KindFloat,
		"text": KindString, "varchar": KindString,
		"bool": KindBool, "boolean": KindBool,
		"int[]": KindIntArray, "integer[]": KindIntArray,
	} {
		got, err := KindFromName(name)
		if err != nil || got != want {
			t.Errorf("KindFromName(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := KindFromName("blob"); err == nil {
		t.Error("KindFromName(blob) should fail")
	}
}

func TestMoreGeneral(t *testing.T) {
	cases := []struct {
		a, b, want Kind
	}{
		{KindInt, KindFloat, KindFloat},
		{KindFloat, KindInt, KindFloat},
		{KindInt, KindString, KindString},
		{KindBool, KindInt, KindInt},
		{KindInt, KindInt, KindInt},
		{KindFloat, KindString, KindString},
	}
	for _, c := range cases {
		if got := MoreGeneral(c.a, c.b); got != c.want {
			t.Errorf("MoreGeneral(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{NullValue(), "NULL"},
		{IntValue(-7), "-7"},
		{FloatValue(2.5), "2.5"},
		{StringValue("hi"), "hi"},
		{BoolValue(true), "true"},
		{BoolValue(false), "false"},
		{ArrayValue([]int64{1, 2, 3}), "{1,2,3}"},
		{ArrayValue(nil), "{}"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestValueBoolAndFloat(t *testing.T) {
	if !IntValue(3).Bool() || IntValue(0).Bool() {
		t.Error("int truthiness wrong")
	}
	if !BoolValue(true).Bool() || BoolValue(false).Bool() {
		t.Error("bool truthiness wrong")
	}
	if NullValue().Bool() {
		t.Error("NULL should be false")
	}
	if IntValue(4).AsFloat() != 4 || FloatValue(2.5).AsFloat() != 2.5 {
		t.Error("AsFloat wrong")
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{IntValue(1), IntValue(2), -1},
		{IntValue(2), IntValue(2), 0},
		{FloatValue(1.5), IntValue(1), 1},
		{IntValue(1), FloatValue(1.0), 0},
		{NullValue(), IntValue(0), -1},
		{NullValue(), NullValue(), 0},
		{StringValue("a"), StringValue("b"), -1},
		{ArrayValue([]int64{1, 2}), ArrayValue([]int64{1, 3}), -1},
		{ArrayValue([]int64{1, 2}), ArrayValue([]int64{1, 2, 0}), -1},
		{ArrayValue([]int64{1, 2}), ArrayValue([]int64{1, 2}), 0},
		{BoolValue(true), IntValue(1), 0},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := Compare(c.b, c.a); got != -c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d (antisymmetry)", c.b, c.a, got, -c.want)
		}
	}
}

func TestArrayContains(t *testing.T) {
	if !ArrayContains(nil, []int64{1}) {
		t.Error("empty sub should be contained")
	}
	if ArrayContains([]int64{1}, nil) {
		t.Error("nothing contained in empty super")
	}
	if !ArrayContains([]int64{2, 3}, []int64{1, 2, 3, 4}) {
		t.Error("subset not detected")
	}
	if ArrayContains([]int64{2, 9}, []int64{1, 2, 3, 4}) {
		t.Error("non-subset accepted")
	}
	big := make([]int64, 100)
	for i := range big {
		big[i] = int64(i)
	}
	if !ArrayContains([]int64{0, 99}, big) || ArrayContains([]int64{100}, big) {
		t.Error("map-based path wrong")
	}
}

func TestArrayContainsQuick(t *testing.T) {
	// Property: ArrayContains(sub, super) agrees with a naive set check.
	f := func(sub, super []int64) bool {
		set := make(map[int64]bool, len(super))
		for _, x := range super {
			set[x] = true
		}
		want := true
		for _, x := range sub {
			if !set[x] {
				want = false
				break
			}
		}
		return ArrayContains(sub, super) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestArrayHasAndAppend(t *testing.T) {
	arr := []int64{5, 1, 9}
	if !ArrayHas(arr, 9) || ArrayHas(arr, 2) {
		t.Error("ArrayHas wrong")
	}
	sorted := []int64{1, 5, 9}
	if !SortedArrayHas(sorted, 5) || SortedArrayHas(sorted, 4) {
		t.Error("SortedArrayHas wrong")
	}
	out := ArrayAppend(arr, 7)
	if len(out) != 4 || out[3] != 7 {
		t.Error("ArrayAppend wrong")
	}
	if len(arr) != 3 {
		t.Error("ArrayAppend must not modify input")
	}
}

func TestEncodeKeyOrderPreservingInts(t *testing.T) {
	// Property: lexicographic order of encoded int keys matches numeric
	// order — required for ordered-index range behaviour.
	f := func(a, b int64) bool {
		ka := EncodeKey(IntValue(a))
		kb := EncodeKey(IntValue(b))
		switch {
		case a < b:
			return ka < kb
		case a > b:
			return ka > kb
		}
		return ka == kb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeKeyUnambiguous(t *testing.T) {
	// Different field splits must encode differently.
	a := EncodeKey(StringValue("ab"), StringValue("c"))
	b := EncodeKey(StringValue("a"), StringValue("bc"))
	if a == b {
		t.Error("composite keys collide across field boundaries")
	}
	if EncodeKey(IntValue(1)) == EncodeKey(StringValue("1")) {
		t.Error("kinds must disambiguate")
	}
}

func TestEncodeKeyEqualityQuick(t *testing.T) {
	// Property: equal rows encode equally; a random in-place perturbation
	// changes the encoding.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 300; i++ {
		row := randomRow(rng)
		same := CloneRow(row)
		if EncodeKey(row...) != EncodeKey(same...) {
			t.Fatal("clone encodes differently")
		}
		j := rng.Intn(len(row))
		mut := CloneRow(row)
		mut[j] = IntValue(rng.Int63())
		if Equal(row[j], mut[j]) {
			continue
		}
		if EncodeKey(row...) == EncodeKey(mut...) {
			t.Fatalf("mutation not reflected: %v vs %v", row, mut)
		}
	}
}

func randomRow(rng *rand.Rand) Row {
	n := 1 + rng.Intn(5)
	row := make(Row, n)
	for i := range row {
		switch rng.Intn(5) {
		case 0:
			row[i] = IntValue(rng.Int63n(1000))
		case 1:
			row[i] = FloatValue(rng.Float64())
		case 2:
			row[i] = StringValue(strings.Repeat("x", rng.Intn(4)))
		case 3:
			row[i] = BoolValue(rng.Intn(2) == 0)
		default:
			arr := make([]int64, rng.Intn(3))
			for j := range arr {
				arr[j] = rng.Int63n(10)
			}
			row[i] = ArrayValue(arr)
		}
	}
	return row
}

func TestCompareTotalOrderQuick(t *testing.T) {
	// Property: Compare sorts values consistently (transitivity via
	// sort.SliceIsSorted after sorting).
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		vals := make([]Value, 30)
		for i := range vals {
			vals[i] = randomRow(rng)[0]
		}
		sort.Slice(vals, func(i, j int) bool { return Compare(vals[i], vals[j]) < 0 })
		if !sort.SliceIsSorted(vals, func(i, j int) bool { return Compare(vals[i], vals[j]) < 0 }) {
			t.Fatal("Compare is not a consistent order")
		}
	}
}
