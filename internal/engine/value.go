// Package engine implements the embedded relational database substrate that
// OrpheusDB bolts onto. It plays the role PostgreSQL plays in the paper: typed
// columns including an integer-array type, page-based heap tables, hash and
// ordered indexes, physical clustering, and the three join algorithms
// (hash, merge, index-nested-loop) whose behaviour Appendix D.1 of the paper
// analyzes. All page accesses are accounted so experiments can report an I/O
// cost alongside wall-clock time.
package engine

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"orpheusdb/internal/bitmap"
)

// Kind enumerates the data types the engine supports.
type Kind uint8

// Supported kinds. IntArray is the array type the paper relies on for vlist
// and rlist attributes (PostgreSQL's int[]); Bitmap is its compressed
// replacement — a roaring-style set the versioning tables store membership
// in, combinable with O(chunk) set algebra instead of O(n) array scans.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
	KindIntArray
	KindBitmap
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "integer"
	case KindFloat:
		return "decimal"
	case KindString:
		return "string"
	case KindBool:
		return "boolean"
	case KindIntArray:
		return "integer[]"
	case KindBitmap:
		return "bitmap"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// KindFromName parses a type name as used in CREATE TABLE statements.
func KindFromName(name string) (Kind, error) {
	switch strings.ToLower(name) {
	case "int", "integer", "int4", "int8", "bigint":
		return KindInt, nil
	case "float", "decimal", "double", "real", "numeric", "float8":
		return KindFloat, nil
	case "string", "text", "varchar", "char":
		return KindString, nil
	case "bool", "boolean":
		return KindBool, nil
	case "int[]", "integer[]", "intarray":
		return KindIntArray, nil
	case "bitmap":
		return KindBitmap, nil
	}
	return KindNull, fmt.Errorf("engine: unknown type %q", name)
}

// MoreGeneral returns the more general of two kinds, following the paper's
// schema-evolution rule of widening conflicting attribute types (e.g.
// integer -> decimal -> string).
func MoreGeneral(a, b Kind) Kind {
	if a == b {
		return a
	}
	rank := func(k Kind) int {
		switch k {
		case KindNull:
			return 0
		case KindBool:
			return 1
		case KindInt:
			return 2
		case KindFloat:
			return 3
		case KindIntArray:
			return 4
		case KindBitmap:
			return 5
		case KindString:
			return 6
		}
		return 6
	}
	if rank(a) > rank(b) {
		return a
	}
	return b
}

// Value is a dynamically typed cell. The zero Value is NULL. Exactly one of
// the payload fields is meaningful, selected by K. Bool values are stored in
// I as 0/1. Bitmap payloads are shared, never copied: once a bitmap is
// stored in a row it is treated as immutable.
type Value struct {
	K Kind
	I int64
	F float64
	S string
	A []int64
	B *bitmap.Bitmap
}

// Convenience constructors.

// NullValue returns the NULL value.
func NullValue() Value { return Value{} }

// IntValue returns an integer value.
func IntValue(i int64) Value { return Value{K: KindInt, I: i} }

// FloatValue returns a decimal value.
func FloatValue(f float64) Value { return Value{K: KindFloat, F: f} }

// StringValue returns a string value.
func StringValue(s string) Value { return Value{K: KindString, S: s} }

// BoolValue returns a boolean value.
func BoolValue(b bool) Value {
	v := Value{K: KindBool}
	if b {
		v.I = 1
	}
	return v
}

// ArrayValue returns an integer-array value. The slice is not copied.
func ArrayValue(a []int64) Value { return Value{K: KindIntArray, A: a} }

// BitmapValue returns a compressed-bitmap value. The bitmap is not copied and
// must not be mutated afterwards. A nil bitmap stores as an empty set.
func BitmapValue(b *bitmap.Bitmap) Value {
	if b == nil {
		b = bitmap.New()
	}
	return Value{K: KindBitmap, B: b}
}

// BitmapFromSlice builds a bitmap value from record ids in any order.
func BitmapFromSlice(a []int64) Value { return BitmapValue(bitmap.FromSlice(a)) }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.K == KindNull }

// Bool reports the truth value of v (false for non-bool kinds except nonzero
// ints).
func (v Value) Bool() bool {
	switch v.K {
	case KindBool, KindInt:
		return v.I != 0
	case KindFloat:
		return v.F != 0
	}
	return false
}

// AsFloat converts numeric values to float64.
func (v Value) AsFloat() float64 {
	switch v.K {
	case KindInt, KindBool:
		return float64(v.I)
	case KindFloat:
		return v.F
	}
	return 0
}

// String renders the value for display.
func (v Value) String() string {
	switch v.K {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return v.S
	case KindBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	case KindIntArray:
		var b strings.Builder
		b.WriteByte('{')
		for i, x := range v.A {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.FormatInt(x, 10))
		}
		b.WriteByte('}')
		return b.String()
	case KindBitmap:
		// Render like an array so SQL results read the same whichever
		// membership representation the model stores.
		var b strings.Builder
		b.WriteByte('{')
		first := true
		v.B.Iterate(func(x int64) bool {
			if !first {
				b.WriteByte(',')
			}
			first = false
			b.WriteString(strconv.FormatInt(x, 10))
			return true
		})
		b.WriteByte('}')
		return b.String()
	}
	return "?"
}

// Compare orders two values. NULL sorts first. Mixed numeric kinds compare
// numerically; otherwise values of different kinds compare by kind.
func Compare(a, b Value) int {
	if a.K == KindNull || b.K == KindNull {
		switch {
		case a.K == b.K:
			return 0
		case a.K == KindNull:
			return -1
		default:
			return 1
		}
	}
	an := a.K == KindInt || a.K == KindFloat || a.K == KindBool
	bn := b.K == KindInt || b.K == KindFloat || b.K == KindBool
	if an && bn {
		af, bf := a.AsFloat(), b.AsFloat()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		}
		return 0
	}
	if a.K != b.K {
		if a.K < b.K {
			return -1
		}
		return 1
	}
	switch a.K {
	case KindString:
		return strings.Compare(a.S, b.S)
	case KindIntArray:
		for i := 0; i < len(a.A) && i < len(b.A); i++ {
			if a.A[i] != b.A[i] {
				if a.A[i] < b.A[i] {
					return -1
				}
				return 1
			}
		}
		switch {
		case len(a.A) < len(b.A):
			return -1
		case len(a.A) > len(b.A):
			return 1
		}
		return 0
	case KindBitmap:
		return compareBitmaps(a.B, b.B)
	}
	return 0
}

// compareBitmaps orders two bitmap sets lexicographically over their
// ascending elements, shorter-prefix first — consistent with the IntArray
// ordering for sorted arrays.
func compareBitmaps(x, y *bitmap.Bitmap) int {
	xs, ys := x.ToSlice(), y.ToSlice()
	for i := 0; i < len(xs) && i < len(ys); i++ {
		if xs[i] != ys[i] {
			if xs[i] < ys[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(xs) < len(ys):
		return -1
	case len(xs) > len(ys):
		return 1
	}
	return 0
}

// Equal reports whether two values are equal under Compare.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// ArrayContains reports whether every element of sub appears in super,
// mirroring PostgreSQL's `sub <@ super` containment operator.
func ArrayContains(sub, super []int64) bool {
	if len(sub) == 0 {
		return true
	}
	if len(super) == 0 {
		return false
	}
	if len(super) <= 8 {
		for _, x := range sub {
			found := false
			for _, y := range super {
				if x == y {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	set := make(map[int64]struct{}, len(super))
	for _, y := range super {
		set[y] = struct{}{}
	}
	for _, x := range sub {
		if _, ok := set[x]; !ok {
			return false
		}
	}
	return true
}

// ArrayHas reports whether arr contains x. If arr is known to be sorted,
// callers should prefer SortedArrayHas.
func ArrayHas(arr []int64, x int64) bool {
	for _, y := range arr {
		if y == x {
			return true
		}
	}
	return false
}

// SortedArrayHas reports whether sorted arr contains x via binary search.
func SortedArrayHas(arr []int64, x int64) bool {
	i := sort.Search(len(arr), func(i int) bool { return arr[i] >= x })
	return i < len(arr) && arr[i] == x
}

// ArrayAppend returns arr with x appended (PostgreSQL's vlist = vlist || x).
// A new slice is returned; the input is not modified.
func ArrayAppend(arr []int64, x int64) []int64 {
	out := make([]int64, len(arr)+1)
	copy(out, arr)
	out[len(arr)] = x
	return out
}

// Row is a tuple of values.
type Row []Value

// CloneRow returns a deep-enough copy of r (array payloads shared; they are
// treated as immutable once stored).
func CloneRow(r Row) Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// EncodeKey builds a composite key string from the given values, suitable for
// map keys and ordered indexes. The encoding is order-preserving per field
// for strings and unambiguous across fields.
func EncodeKey(vals ...Value) string {
	var b strings.Builder
	for i, v := range vals {
		if i > 0 {
			b.WriteByte(0)
		}
		b.WriteByte(byte(v.K))
		switch v.K {
		case KindInt, KindBool:
			// Fixed-width big-endian with sign bit flipped keeps
			// lexicographic order == numeric order.
			u := uint64(v.I) ^ (1 << 63)
			var buf [8]byte
			for j := 7; j >= 0; j-- {
				buf[j] = byte(u)
				u >>= 8
			}
			b.Write(buf[:])
		case KindFloat:
			b.WriteString(strconv.FormatFloat(v.F, 'g', -1, 64))
		case KindString:
			b.WriteString(v.S)
		case KindIntArray:
			for j, x := range v.A {
				if j > 0 {
					b.WriteByte(1)
				}
				b.WriteString(strconv.FormatInt(x, 10))
			}
		case KindBitmap:
			// Length-prefix the payload: serialized bitmaps may contain
			// the 0x00 field separator, and the prefix keeps the composite
			// encoding unambiguous across fields.
			data, _ := v.B.MarshalBinary()
			b.WriteString(strconv.Itoa(len(data)))
			b.WriteByte(':')
			b.Write(data)
		}
	}
	return b.String()
}
