package engine

import (
	"path/filepath"
	"testing"
)

func TestDBCatalog(t *testing.T) {
	db := NewDB()
	if _, err := db.CreateTable("a", []Column{{Name: "x", Type: KindInt}}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("a", []Column{{Name: "x", Type: KindInt}}); err == nil {
		t.Fatal("duplicate table accepted")
	}
	if _, err := db.CreateTable("empty", nil); err == nil {
		t.Fatal("zero-column table accepted")
	}
	if _, err := db.CreateTable("dup", []Column{{Name: "x", Type: KindInt}, {Name: "x", Type: KindInt}}); err == nil {
		t.Fatal("duplicate column accepted")
	}
	if !db.HasTable("a") || db.HasTable("b") {
		t.Fatal("HasTable wrong")
	}
	if _, err := db.MustTable("nope"); err == nil {
		t.Fatal("MustTable should fail")
	}
	if err := db.RenameTable("a", "b"); err != nil {
		t.Fatal(err)
	}
	if db.HasTable("a") || !db.HasTable("b") {
		t.Fatal("rename failed")
	}
	if err := db.RenameTable("nope", "c"); err == nil {
		t.Fatal("rename of missing table accepted")
	}
	if err := db.DropTable("b"); err != nil {
		t.Fatal(err)
	}
	if err := db.DropTable("b"); err == nil {
		t.Fatal("double drop accepted")
	}
}

func TestDBSettings(t *testing.T) {
	db := NewDB()
	if db.JoinMethodSetting() != HashJoin {
		t.Fatal("default join method should be hash")
	}
	db.SetSetting("join_method", "merge")
	if db.JoinMethodSetting() != MergeJoin {
		t.Fatal("setting not honored")
	}
	db.SetSetting("join_method", "bogus")
	if db.JoinMethodSetting() != HashJoin {
		t.Fatal("bad setting should fall back to hash")
	}
	if db.Setting("join_method") != "bogus" {
		t.Fatal("raw setting lost")
	}
}

func TestDBTableNamesSorted(t *testing.T) {
	db := NewDB()
	for _, n := range []string{"zeta", "alpha", "mid"} {
		if _, err := db.CreateTable(n, []Column{{Name: "x", Type: KindInt}}); err != nil {
			t.Fatal(err)
		}
	}
	names := db.TableNames()
	if len(names) != 3 || names[0] != "alpha" || names[2] != "zeta" {
		t.Fatalf("TableNames = %v", names)
	}
}

func TestPersistRoundTrip(t *testing.T) {
	db := NewDB()
	tab, err := db.CreateTable("data", []Column{
		{Name: "rid", Type: KindInt},
		{Name: "tag", Type: KindString},
		{Name: "vals", Type: KindIntArray},
		{Name: "w", Type: KindFloat},
		{Name: "ok", Type: KindBool},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		_, err := tab.Insert(Row{
			IntValue(int64(i)), StringValue("t"), ArrayValue([]int64{int64(i), int64(i + 1)}),
			FloatValue(float64(i) / 2), BoolValue(i%2 == 0),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := tab.SetPrimaryKey("rid"); err != nil {
		t.Fatal(err)
	}
	if err := tab.Cluster("rid"); err != nil {
		t.Fatal(err)
	}
	db.SetSetting("join_method", "merge")

	path := filepath.Join(t.TempDir(), "db.gob")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	db2, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	tab2 := db2.Table("data")
	if tab2 == nil || tab2.NumRows() != 300 {
		t.Fatal("rows lost")
	}
	if tab2.ClusteredOn() != "rid" {
		t.Fatalf("clustering lost: %q", tab2.ClusteredOn())
	}
	if len(tab2.PrimaryKey()) != 1 {
		t.Fatal("primary key lost")
	}
	if db2.JoinMethodSetting() != MergeJoin {
		t.Fatal("settings lost")
	}
	ids := tab2.Index("rid").Lookup(IntValue(42))
	if len(ids) != 1 {
		t.Fatal("index lost")
	}
	row := tab2.Get(ids[0])
	if row[2].A[1] != 43 || row[3].F != 21 || !row[4].Bool() {
		t.Fatalf("payload corrupted: %v", row)
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "absent.gob")); err == nil {
		t.Fatal("loading a missing file should fail")
	}
}

func TestTotalSizeBytes(t *testing.T) {
	db := NewDB()
	if db.TotalSizeBytes() != 0 {
		t.Fatal("empty db should have zero size")
	}
	tab, _ := db.CreateTable("x", []Column{{Name: "a", Type: KindInt}})
	for i := 0; i < 10; i++ {
		tab.Insert(Row{IntValue(int64(i))})
	}
	if db.TotalSizeBytes() <= 0 {
		t.Fatal("size should be positive")
	}
}
