package engine

import (
	"fmt"

	"orpheusdb/internal/engine/diskv"
)

// DiskBackend adapts the diskv append-only KV to the engine's Backend
// interface. Key layout inside the KV:
//
//	catalog/table/<id>   gob TableMeta, id as %016x
//	page/<id>/<page>     gob PageData, id %016x, page %08x
//	meta/settings        gob map[string]string
//	meta/lsn             uint64 big-endian WAL low-water mark
//	meta/nextid          uint64 big-endian table-id counter
//
// Table ids (not names) key the pages, so a rename is a catalog-only write.
// diskv stages Put/Delete until Commit seals them with a commit frame, which
// is exactly the atomic-checkpoint contract Backend requires.
type DiskBackend struct {
	kv *diskv.KV
}

// OpenDiskBackend opens (or creates) the single-file KV at path.
func OpenDiskBackend(path string) (*DiskBackend, error) {
	kv, err := diskv.Open(path)
	if err != nil {
		return nil, err
	}
	return &DiskBackend{kv: kv}, nil
}

func catalogKey(id uint64) string      { return fmt.Sprintf("catalog/table/%016x", id) }
func pageKey(id uint64, p int) string  { return fmt.Sprintf("page/%016x/%08x", id, p) }
func tablePagePrefix(id uint64) string { return fmt.Sprintf("page/%016x/", id) }

// Kind implements Backend.
func (b *DiskBackend) Kind() string { return "disk" }

// TableMetas implements Backend.
func (b *DiskBackend) TableMetas() ([]TableMeta, error) {
	var out []TableMeta
	for _, key := range b.kv.Keys("catalog/table/") {
		raw, ok, err := b.kv.Get(key)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		m, err := decodeTableMeta(raw)
		if err != nil {
			return nil, fmt.Errorf("engine: disk backend: %s: %w", key, err)
		}
		out = append(out, m)
	}
	return out, nil
}

// PutTableMeta implements Backend.
func (b *DiskBackend) PutTableMeta(m TableMeta) error {
	raw, err := encodeTableMeta(m)
	if err != nil {
		return err
	}
	return b.kv.Put(catalogKey(m.ID), raw)
}

// DeleteTable implements Backend.
func (b *DiskBackend) DeleteTable(id uint64, pages int) error {
	if err := b.kv.Delete(catalogKey(id)); err != nil {
		return err
	}
	for p := 0; p < pages; p++ {
		if err := b.kv.Delete(pageKey(id, p)); err != nil {
			return err
		}
	}
	// Pages beyond the caller's count (e.g. staged but never committed)
	// cannot exist: page keys are only ever staged together with their
	// catalog entry in one commit. Sweep the prefix anyway for safety.
	for _, key := range b.kv.Keys(tablePagePrefix(id)) {
		if err := b.kv.Delete(key); err != nil {
			return err
		}
	}
	return nil
}

// WritePage implements Backend.
func (b *DiskBackend) WritePage(table uint64, page int, pd *PageData) (int, error) {
	raw, err := encodePage(pd)
	if err != nil {
		return 0, err
	}
	if err := b.kv.Put(pageKey(table, page), raw); err != nil {
		return 0, err
	}
	return len(raw), nil
}

// ReadPage implements Backend.
func (b *DiskBackend) ReadPage(table uint64, page int) (*PageData, error) {
	raw, ok, err := b.kv.Get(pageKey(table, page))
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("engine: disk backend: missing page %016x/%08x", table, page)
	}
	return decodePage(raw)
}

// DeletePage implements Backend.
func (b *DiskBackend) DeletePage(table uint64, page int) error {
	return b.kv.Delete(pageKey(table, page))
}

// GetMeta implements Backend.
func (b *DiskBackend) GetMeta(key string) ([]byte, bool, error) { return b.kv.Get(key) }

// PutMeta implements Backend.
func (b *DiskBackend) PutMeta(key string, val []byte) error { return b.kv.Put(key, val) }

// Commit implements Backend: one fsynced commit frame seals the batch.
func (b *DiskBackend) Commit() error { return b.kv.Commit() }

// Maintain implements Backend: fold out garbage frames once overwrites have
// stranded enough of the file.
func (b *DiskBackend) Maintain() error {
	if !b.kv.ShouldCompact() {
		return nil
	}
	return b.kv.Compact()
}

// SizeBytes implements Backend.
func (b *DiskBackend) SizeBytes() int64 { return b.kv.Stats().FileBytes }

// Close implements Backend. Staged (uncommitted) writes are discarded.
func (b *DiskBackend) Close() error { return b.kv.Close() }

// Path returns the KV file path.
func (b *DiskBackend) Path() string { return b.kv.Path() }

// DiskOptions tunes OpenDisk.
type DiskOptions struct {
	// PageBudgetBytes caps the resident working set (0 = unlimited).
	PageBudgetBytes int64
}

// OpenDisk opens (or creates) a disk-backed database at path: heap pages and
// catalog live in the diskv file, and at most opts.PageBudgetBytes of pages
// are kept resident. The file is flocked until DB.CloseBackend.
func OpenDisk(path string, opts DiskOptions) (*DB, error) {
	b, err := OpenDiskBackend(path)
	if err != nil {
		return nil, err
	}
	db, err := OpenBackendDB(b, opts.PageBudgetBytes)
	if err != nil {
		b.Close()
		return nil, err
	}
	return db, nil
}

// IsDiskFile reports whether path holds a diskv-format store (as opposed to
// a gob snapshot). Missing files report false with no error.
func IsDiskFile(path string) (bool, error) {
	return diskv.Sniff(path)
}
