package engine

import (
	"fmt"
	"sync/atomic"
)

// RandCost is the modeled cost of a random page fetch relative to a
// sequential one. Appendix D.1 of the paper observes that large numbers of
// random accesses degrade to (and beyond) a full sequential scan; the planner
// uses this factor when choosing between index and sequential scans.
const RandCost = 50

// Stats accounts the I/O the engine performs. Counters are cumulative and
// safe for concurrent use; Reset or Snapshot+diff them around a measured
// region. One Stats instance is shared by all tables of a DB.
type Stats struct {
	SeqPages    atomic.Int64 // pages fetched as part of a sequential scan
	RandPages   atomic.Int64 // pages fetched via random access (index probes)
	RowsScanned atomic.Int64 // rows materialized from pages
	IndexProbes atomic.Int64 // index lookups performed
	HashBuilds  atomic.Int64 // rows inserted into transient hash tables

	// Checkpoint accounting: how many snapshot checkpoints ran and the
	// cumulative estimated snapshot bytes they captured (DBSnapshot.
	// ByteSize), so the cost of full-store persistence is observable next
	// to the I/O it competes with.
	Checkpoints     atomic.Int64
	CheckpointBytes atomic.Int64

	// Checkout-cache accounting (internal/cache mirrors its counters here
	// when wired to a Stats): hits serve materialized version record sets
	// without touching pages, misses fall through to the scans counted
	// above, evictions track byte-budget pressure.
	CacheHits      atomic.Int64
	CacheMisses    atomic.Int64
	CacheEvictions atomic.Int64

	// Branch/merge accounting (the store mirrors its branch registry and
	// three-way-merge activity here): branches created, merges attempted,
	// and record-level conflicts detected across all merges — resolved by
	// policy or surfaced under the fail policy alike.
	BranchCreates  atomic.Int64
	Merges         atomic.Int64
	MergeConflicts atomic.Int64

	// Partition-optimizer accounting (the store's background optimizer and
	// the manual optimize entry points mirror their activity here): completed
	// LYRESPLIT migrations, individual migration batches applied under the
	// dataset critical section, and record rows moved (inserted into or
	// deleted from partition data tables) by those batches.
	PartitionMigrations atomic.Int64
	PartitionBatches    atomic.Int64
	PartitionRowsMoved  atomic.Int64

	// Pager accounting (backend-attached engines only): cold heap pages
	// faulted in from the storage backend, resident pages evicted under
	// byte-budget pressure, and dirty pages written back by checkpoints.
	PageFaults    atomic.Int64
	PageEvictions atomic.Int64
	PagesFlushed  atomic.Int64
}

// StatSnapshot is an immutable copy of the counters.
type StatSnapshot struct {
	SeqPages    int64
	RandPages   int64
	RowsScanned int64
	IndexProbes int64
	HashBuilds  int64

	Checkpoints     int64
	CheckpointBytes int64

	CacheHits      int64
	CacheMisses    int64
	CacheEvictions int64

	BranchCreates  int64
	Merges         int64
	MergeConflicts int64

	PartitionMigrations int64
	PartitionBatches    int64
	PartitionRowsMoved  int64

	PageFaults    int64
	PageEvictions int64
	PagesFlushed  int64
}

// Snapshot copies the current counter values.
func (s *Stats) Snapshot() StatSnapshot {
	return StatSnapshot{
		SeqPages:    s.SeqPages.Load(),
		RandPages:   s.RandPages.Load(),
		RowsScanned: s.RowsScanned.Load(),
		IndexProbes: s.IndexProbes.Load(),
		HashBuilds:  s.HashBuilds.Load(),

		Checkpoints:     s.Checkpoints.Load(),
		CheckpointBytes: s.CheckpointBytes.Load(),

		CacheHits:      s.CacheHits.Load(),
		CacheMisses:    s.CacheMisses.Load(),
		CacheEvictions: s.CacheEvictions.Load(),

		BranchCreates:  s.BranchCreates.Load(),
		Merges:         s.Merges.Load(),
		MergeConflicts: s.MergeConflicts.Load(),

		PartitionMigrations: s.PartitionMigrations.Load(),
		PartitionBatches:    s.PartitionBatches.Load(),
		PartitionRowsMoved:  s.PartitionRowsMoved.Load(),

		PageFaults:    s.PageFaults.Load(),
		PageEvictions: s.PageEvictions.Load(),
		PagesFlushed:  s.PagesFlushed.Load(),
	}
}

// Reset zeroes all counters.
func (s *Stats) Reset() {
	s.SeqPages.Store(0)
	s.RandPages.Store(0)
	s.RowsScanned.Store(0)
	s.IndexProbes.Store(0)
	s.HashBuilds.Store(0)
	s.Checkpoints.Store(0)
	s.CheckpointBytes.Store(0)
	s.CacheHits.Store(0)
	s.CacheMisses.Store(0)
	s.CacheEvictions.Store(0)
	s.BranchCreates.Store(0)
	s.Merges.Store(0)
	s.MergeConflicts.Store(0)
	s.PartitionMigrations.Store(0)
	s.PartitionBatches.Store(0)
	s.PartitionRowsMoved.Store(0)
	s.PageFaults.Store(0)
	s.PageEvictions.Store(0)
	s.PagesFlushed.Store(0)
}

// Since returns the counter deltas accumulated after the given snapshot.
func (s *Stats) Since(prev StatSnapshot) StatSnapshot {
	cur := s.Snapshot()
	return StatSnapshot{
		SeqPages:    cur.SeqPages - prev.SeqPages,
		RandPages:   cur.RandPages - prev.RandPages,
		RowsScanned: cur.RowsScanned - prev.RowsScanned,
		IndexProbes: cur.IndexProbes - prev.IndexProbes,
		HashBuilds:  cur.HashBuilds - prev.HashBuilds,

		Checkpoints:     cur.Checkpoints - prev.Checkpoints,
		CheckpointBytes: cur.CheckpointBytes - prev.CheckpointBytes,

		CacheHits:      cur.CacheHits - prev.CacheHits,
		CacheMisses:    cur.CacheMisses - prev.CacheMisses,
		CacheEvictions: cur.CacheEvictions - prev.CacheEvictions,

		BranchCreates:  cur.BranchCreates - prev.BranchCreates,
		Merges:         cur.Merges - prev.Merges,
		MergeConflicts: cur.MergeConflicts - prev.MergeConflicts,

		PartitionMigrations: cur.PartitionMigrations - prev.PartitionMigrations,
		PartitionBatches:    cur.PartitionBatches - prev.PartitionBatches,
		PartitionRowsMoved:  cur.PartitionRowsMoved - prev.PartitionRowsMoved,

		PageFaults:    cur.PageFaults - prev.PageFaults,
		PageEvictions: cur.PageEvictions - prev.PageEvictions,
		PagesFlushed:  cur.PagesFlushed - prev.PagesFlushed,
	}
}

// IOCost is the modeled I/O cost in sequential-page units.
func (d StatSnapshot) IOCost() int64 {
	return d.SeqPages + RandCost*d.RandPages
}

// String formats the snapshot for logs and experiment output, covering every
// counter group: scan I/O, checkpointing, the checkout cache, and
// branch/merge activity.
func (d StatSnapshot) String() string {
	return fmt.Sprintf("seq=%d rand=%d rows=%d probes=%d hash=%d cost=%d"+
		" ckpt=%d ckptBytes=%d cacheHit=%d cacheMiss=%d cacheEvict=%d"+
		" branches=%d merges=%d conflicts=%d"+
		" partMigrations=%d partBatches=%d partRowsMoved=%d"+
		" pageFaults=%d pageEvictions=%d pagesFlushed=%d",
		d.SeqPages, d.RandPages, d.RowsScanned, d.IndexProbes, d.HashBuilds, d.IOCost(),
		d.Checkpoints, d.CheckpointBytes, d.CacheHits, d.CacheMisses, d.CacheEvictions,
		d.BranchCreates, d.Merges, d.MergeConflicts,
		d.PartitionMigrations, d.PartitionBatches, d.PartitionRowsMoved,
		d.PageFaults, d.PageEvictions, d.PagesFlushed)
}
