package engine

import (
	"os"
	"path/filepath"
	"testing"

	"orpheusdb/internal/bitmap"
)

func TestBitmapValueBasics(t *testing.T) {
	v := BitmapFromSlice([]int64{3, 1, 2})
	if v.K != KindBitmap {
		t.Fatalf("kind = %v", v.K)
	}
	if got := v.String(); got != "{1,2,3}" {
		t.Fatalf("String = %q", got)
	}
	if KindBitmap.String() != "bitmap" {
		t.Fatalf("kind name = %q", KindBitmap.String())
	}
	k, err := KindFromName("bitmap")
	if err != nil || k != KindBitmap {
		t.Fatalf("KindFromName: %v, %v", k, err)
	}
	// Nil bitmaps normalize to the empty set.
	if got := BitmapValue(nil).String(); got != "{}" {
		t.Fatalf("nil bitmap String = %q", got)
	}
}

func TestBitmapValueCompare(t *testing.T) {
	a := BitmapFromSlice([]int64{1, 2, 3})
	b := BitmapFromSlice([]int64{1, 2, 3})
	c := BitmapFromSlice([]int64{1, 2, 4})
	d := BitmapFromSlice([]int64{1, 2})
	if !Equal(a, b) {
		t.Fatal("equal bitmaps not Equal")
	}
	if Compare(a, c) >= 0 || Compare(c, a) <= 0 {
		t.Fatal("element ordering wrong")
	}
	if Compare(d, a) >= 0 {
		t.Fatal("prefix ordering wrong")
	}
	// Mixed kinds order by kind ordinal: bitmap is the last kind.
	if Compare(ArrayValue([]int64{9}), a) >= 0 {
		t.Fatal("array should sort before bitmap")
	}
	if Compare(StringValue("x"), a) >= 0 {
		t.Fatal("string should sort before bitmap")
	}
	if MoreGeneral(KindIntArray, KindBitmap) != KindBitmap {
		t.Fatal("MoreGeneral(array, bitmap)")
	}
	if MoreGeneral(KindBitmap, KindString) != KindString {
		t.Fatal("MoreGeneral(bitmap, string)")
	}
}

func TestBitmapColumnPersistRoundTrip(t *testing.T) {
	db := NewDB()
	tab, err := db.CreateTable("vt", []Column{
		{Name: "vid", Type: KindInt},
		{Name: "rlist", Type: KindBitmap},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.SetPrimaryKey("vid"); err != nil {
		t.Fatal(err)
	}
	sets := map[int64][]int64{
		1: {1, 2, 3, 1000000},
		2: nil,
		3: make([]int64, 0, 9000),
	}
	for v := int64(0); v < 9000; v++ {
		sets[3] = append(sets[3], v)
	}
	for vid, vals := range sets {
		if _, err := tab.Insert(Row{IntValue(vid), BitmapFromSlice(vals)}); err != nil {
			t.Fatal(err)
		}
	}

	path := filepath.Join(t.TempDir(), "db.bin")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	bt := back.Table("vt")
	if bt == nil {
		t.Fatal("table lost")
	}
	for vid, vals := range sets {
		ids := bt.Index("vid").Lookup(IntValue(vid))
		if len(ids) != 1 {
			t.Fatalf("vid %d: %d rows", vid, len(ids))
		}
		got := bt.Get(ids[0])[1]
		if got.K != KindBitmap {
			t.Fatalf("vid %d: kind %v after reload", vid, got.K)
		}
		want := bitmap.FromSlice(vals)
		if !got.B.Equal(want) {
			t.Fatalf("vid %d: contents changed across persist (%d vs %d values)",
				vid, got.B.Cardinality(), want.Cardinality())
		}
	}
	// SizeBytes accounts the serialized (compressed) footprint: the dense 9k
	// run must cost far less than 8 bytes per record.
	if sz := bt.SizeBytes(); sz > 3000 {
		t.Fatalf("bitmap column SizeBytes = %d, want compressed (<3000)", sz)
	}
	os.Remove(path)
}

func TestBitmapAlterColumnWidening(t *testing.T) {
	db := NewDB()
	tab, err := db.CreateTable("t", []Column{
		{Name: "id", Type: KindInt},
		{Name: "members", Type: KindIntArray},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Insert(Row{IntValue(1), ArrayValue([]int64{5, 3, 5})}); err != nil {
		t.Fatal(err)
	}
	if err := tab.AlterColumnType("members", KindBitmap); err != nil {
		t.Fatal(err)
	}
	var got Value
	tab.Scan(func(_ RowID, row Row) bool {
		got = row[1]
		return true
	})
	if got.K != KindBitmap || got.String() != "{3,5}" {
		t.Fatalf("widened value = %v %q", got.K, got.String())
	}
	if err := tab.AlterColumnType("members", KindIntArray); err == nil {
		t.Fatal("narrowing bitmap back to array must fail")
	}
}
