package engine

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestEncodeRangesBasics(t *testing.T) {
	cases := []struct {
		in   []int64
		want []int64
	}{
		{nil, nil},
		{[]int64{5}, []int64{5, 6}},
		{[]int64{1, 2, 3}, []int64{1, 4}},
		{[]int64{3, 1, 2}, []int64{1, 4}},
		{[]int64{1, 2, 2, 3}, []int64{1, 4}},
		{[]int64{1, 3, 5}, []int64{1, 2, 3, 4, 5, 6}},
		{[]int64{1, 2, 3, 7, 8, 20}, []int64{1, 4, 7, 9, 20, 21}},
	}
	for _, c := range cases {
		if got := EncodeRanges(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("EncodeRanges(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestRangesRoundTripQuick(t *testing.T) {
	// Property: decode(encode(xs)) equals sorted, deduplicated xs.
	f := func(raw []uint16) bool {
		xs := make([]int64, len(raw))
		for i, v := range raw {
			xs[i] = int64(v)
		}
		enc := EncodeRanges(xs)
		got := DecodeRanges(enc)
		seen := map[int64]bool{}
		var want []int64
		for _, x := range xs {
			if !seen[x] {
				seen[x] = true
				want = append(want, x)
			}
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return RangesLen(enc) == int64(len(want))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRangesContain(t *testing.T) {
	enc := EncodeRanges([]int64{1, 2, 3, 10, 11, 50})
	for _, x := range []int64{1, 2, 3, 10, 11, 50} {
		if !RangesContain(enc, x) {
			t.Errorf("missing %d", x)
		}
	}
	for _, x := range []int64{0, 4, 9, 12, 49, 51} {
		if RangesContain(enc, x) {
			t.Errorf("spurious %d", x)
		}
	}
	if RangesContain(nil, 1) {
		t.Error("empty encoding contains nothing")
	}
}

func TestRangeCompressionOnVersionLists(t *testing.T) {
	// The workload shape the paper appeals to: rlists of consecutively
	// allocated rids with occasional gaps compress heavily.
	rng := rand.New(rand.NewSource(9))
	rlist := make([]int64, 0, 10_000)
	next := int64(0)
	for len(rlist) < 10_000 {
		runLen := 50 + rng.Int63n(200)
		for i := int64(0); i < runLen; i++ {
			rlist = append(rlist, next)
			next++
		}
		next += 1 + rng.Int63n(5) // gap from records updated on a branch
	}
	ratio := RangeCompressionRatio(rlist)
	if ratio < 10 {
		t.Fatalf("run-heavy rlist compressed only %.1fx", ratio)
	}
	// Random ids barely compress.
	randIDs := make([]int64, 1000)
	for i := range randIDs {
		randIDs[i] = rng.Int63n(1 << 40)
	}
	if r := RangeCompressionRatio(randIDs); r > 1.0 {
		t.Fatalf("random ids compressed %.2fx", r)
	}
}
