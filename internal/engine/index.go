package engine

import (
	"sort"
	"sync"
)

// Index is an ordered (B-tree-like) secondary index mapping encoded column
// keys to row IDs. Lookups are binary searches over a sorted entry slice;
// inserts keep the slice sorted. This matches the access patterns the paper
// relies on: point lookups on vid / rid and ordered traversal for merge
// joins.
type Index struct {
	cols    []int
	mu      sync.Mutex // serializes lazy settling under concurrent readers
	entries []indexEntry
	dirty   int // number of unsorted tail entries awaiting merge
}

type indexEntry struct {
	key string
	id  RowID
}

// newIndex builds an empty index over the given column positions.
func newIndex(cols []int) *Index {
	return &Index{cols: append([]int(nil), cols...)}
}

// Len returns the number of entries.
func (ix *Index) Len() int { return len(ix.entries) }

// keyOf encodes the indexed columns of r.
func (ix *Index) keyOf(r Row) string {
	vals := make([]Value, len(ix.cols))
	for i, c := range ix.cols {
		vals[i] = r[c]
	}
	return EncodeKey(vals...)
}

// insert adds an entry. Insertions append to an unsorted tail which is merged
// lazily on the next lookup; bulk loads therefore cost O(n log n) total.
func (ix *Index) insert(r Row, id RowID) {
	ix.entries = append(ix.entries, indexEntry{key: ix.keyOf(r), id: id})
	ix.dirty++
}

// remove drops the entry for (r, id).
func (ix *Index) remove(r Row, id RowID) {
	ix.settle()
	key := ix.keyOf(r)
	i := sort.Search(len(ix.entries), func(i int) bool { return ix.entries[i].key >= key })
	for ; i < len(ix.entries) && ix.entries[i].key == key; i++ {
		if ix.entries[i].id == id {
			ix.entries = append(ix.entries[:i], ix.entries[i+1:]...)
			return
		}
	}
}

// removeIDs drops every entry whose row id is in the set, in one sweep.
func (ix *Index) removeIDs(drop map[RowID]bool) {
	ix.settle()
	out := ix.entries[:0]
	for _, e := range ix.entries {
		if !drop[e.id] {
			out = append(out, e)
		}
	}
	ix.entries = out
}

// settle sorts any unsorted tail into place. Entries only become dirty
// under a writer's exclusive dataset lock, but the first post-commit lookup
// may come from any of several concurrent readers, so the sort itself is
// serialized here.
func (ix *Index) settle() {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.dirty == 0 {
		return
	}
	sort.Slice(ix.entries, func(i, j int) bool { return ix.entries[i].key < ix.entries[j].key })
	ix.dirty = 0
}

// Lookup returns the row IDs whose key equals the encoding of vals.
func (ix *Index) Lookup(vals ...Value) []RowID {
	ix.settle()
	key := EncodeKey(vals...)
	i := sort.Search(len(ix.entries), func(i int) bool { return ix.entries[i].key >= key })
	var out []RowID
	for ; i < len(ix.entries) && ix.entries[i].key == key; i++ {
		out = append(out, ix.entries[i].id)
	}
	return out
}

// Ordered returns all entries in key order, for merge-join style traversal.
// The returned slice is the index's own storage; callers must not modify it.
func (ix *Index) Ordered() []indexEntry {
	ix.settle()
	return ix.entries
}

// OrderedIDs returns the row IDs in key order.
func (ix *Index) OrderedIDs() []RowID {
	ix.settle()
	out := make([]RowID, len(ix.entries))
	for i, e := range ix.entries {
		out[i] = e.id
	}
	return out
}
