package engine

import "sort"

// Range encoding (Buneman et al., referenced in Section 3.2 of the paper):
// rlist and vlist arrays are dominated by consecutive runs of ids, because
// commits allocate rids densely and versions inherit their parents' records.
// Encoding arrays as [start, end) pairs cuts the versioning-table footprint
// without changing any semantics. The CVD data models keep plain arrays in
// their hot paths; these helpers back the compressed accounting and are
// exercised by the compression ablation benchmark.

// EncodeRanges compresses a set of int64s into sorted, coalesced
// half-open [start, end) pairs, flattened as start0, end0, start1, end1, ...
// The input need not be sorted; duplicates collapse.
func EncodeRanges(xs []int64) []int64 {
	if len(xs) == 0 {
		return nil
	}
	sorted := append([]int64(nil), xs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	out := make([]int64, 0, 4)
	start, end := sorted[0], sorted[0]+1
	for _, x := range sorted[1:] {
		switch {
		case x < end:
			// duplicate
		case x == end:
			end++
		default:
			out = append(out, start, end)
			start, end = x, x+1
		}
	}
	return append(out, start, end)
}

// DecodeRanges expands [start, end) pairs back into the sorted id list.
func DecodeRanges(ranges []int64) []int64 {
	var n int64
	for i := 0; i+1 < len(ranges); i += 2 {
		n += ranges[i+1] - ranges[i]
	}
	out := make([]int64, 0, n)
	for i := 0; i+1 < len(ranges); i += 2 {
		for x := ranges[i]; x < ranges[i+1]; x++ {
			out = append(out, x)
		}
	}
	return out
}

// RangesLen returns the number of ids a range encoding covers, without
// decoding.
func RangesLen(ranges []int64) int64 {
	var n int64
	for i := 0; i+1 < len(ranges); i += 2 {
		n += ranges[i+1] - ranges[i]
	}
	return n
}

// RangesContain reports whether the encoding covers x, by binary search over
// the sorted pairs.
func RangesContain(ranges []int64, x int64) bool {
	lo, hi := 0, len(ranges)/2
	for lo < hi {
		mid := (lo + hi) / 2
		start, end := ranges[2*mid], ranges[2*mid+1]
		switch {
		case x < start:
			hi = mid
		case x >= end:
			lo = mid + 1
		default:
			return true
		}
	}
	return false
}

// RangeCompressionRatio reports plain-array size over range-encoded size for
// a given id list (≥1 means the encoding saves space).
func RangeCompressionRatio(xs []int64) float64 {
	if len(xs) == 0 {
		return 1
	}
	enc := EncodeRanges(xs)
	return float64(len(xs)) / float64(len(enc))
}
