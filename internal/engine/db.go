package engine

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// DB is the engine's catalog: a set of named tables sharing one Stats
// instance, plus session settings (e.g. the preferred join method). It is the
// stand-in for the PostgreSQL instance OrpheusDB wraps.
type DB struct {
	mu       sync.RWMutex
	tables   map[string]*Table
	settings map[string]string
	stats    Stats

	// walLSN is the last write-ahead-log sequence number whose effects are
	// reflected in this database. The store advances it after each logged
	// mutation; snapshots carry it so recovery knows where replay starts.
	walLSN atomic.Uint64

	// Storage-backend state (nil backend = pure in-memory engine; see
	// Backend and pager.go). residentBytes tracks the loaded working set
	// against pageBudget; evictQueue holds FIFO eviction candidates;
	// pendingDrops defers table removal to the next checkpoint so a crash
	// before it rolls the drop back together with the WAL.
	backend       Backend
	pageBudget    atomic.Int64
	residentBytes atomic.Int64
	evictMu       sync.Mutex
	evictQueue    []evictEntry
	nextTableID   atomic.Uint64
	pendingMu     sync.Mutex
	pendingDrops  []droppedTable
	backendErrMu  sync.Mutex
	backendErr    error
}

// droppedTable remembers a dropped table's backend footprint until the next
// checkpoint deletes it.
type droppedTable struct {
	id    uint64
	pages int
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{
		tables:   make(map[string]*Table),
		settings: make(map[string]string),
	}
}

// Stats returns the shared I/O counters.
func (db *DB) Stats() *Stats { return &db.stats }

// WalLSN returns the last WAL sequence number applied to this database.
func (db *DB) WalLSN() uint64 { return db.walLSN.Load() }

// SetWalLSN overwrites the applied-LSN marker (used when loading snapshots).
func (db *DB) SetWalLSN(lsn uint64) { db.walLSN.Store(lsn) }

// AdvanceWalLSN raises the applied-LSN marker to lsn if it is higher.
// Concurrent mutators on independent datasets may finish their WAL appends
// out of LSN order; the max is always correct because a snapshot is only
// captured while all mutators are quiesced.
func (db *DB) AdvanceWalLSN(lsn uint64) {
	for {
		cur := db.walLSN.Load()
		if lsn <= cur || db.walLSN.CompareAndSwap(cur, lsn) {
			return
		}
	}
}

// SetSetting stores a session setting (e.g. "join_method" = "hash").
func (db *DB) SetSetting(key, value string) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.settings[key] = value
}

// Setting fetches a session setting.
func (db *DB) Setting(key string) string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.settings[key]
}

// JoinMethodSetting returns the session's preferred join method, defaulting
// to hash join (the paper's standard choice).
func (db *DB) JoinMethodSetting() JoinMethod {
	s := db.Setting("join_method")
	if s == "" {
		return HashJoin
	}
	m, err := ParseJoinMethod(s)
	if err != nil {
		return HashJoin
	}
	return m
}

// CreateTable creates a table with the given columns.
func (db *DB) CreateTable(name string, cols []Column) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[name]; ok {
		return nil, fmt.Errorf("engine: table %q already exists", name)
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("engine: table %q needs at least one column", name)
	}
	seen := make(map[string]bool, len(cols))
	for _, c := range cols {
		if seen[c.Name] {
			return nil, fmt.Errorf("engine: table %q: duplicate column %q", name, c.Name)
		}
		seen[c.Name] = true
	}
	t := newTable(name, cols, &db.stats)
	if db.backend != nil {
		db.attachBackend(t)
	}
	db.tables[name] = t
	return t, nil
}

// Table returns the named table, or nil.
func (db *DB) Table(name string) *Table {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.tables[name]
}

// MustTable returns the named table or an error.
func (db *DB) MustTable(name string) (*Table, error) {
	if t := db.Table(name); t != nil {
		return t, nil
	}
	return nil, fmt.Errorf("engine: no table %q", name)
}

// DropTable removes the named table.
func (db *DB) DropTable(name string) error {
	db.mu.Lock()
	t, ok := db.tables[name]
	if !ok {
		db.mu.Unlock()
		return fmt.Errorf("engine: no table %q", name)
	}
	delete(db.tables, name)
	db.mu.Unlock()
	if db.backend != nil {
		t.resMu.Lock()
		persisted := t.persistedPages
		t.resMu.Unlock()
		db.pendingMu.Lock()
		db.pendingDrops = append(db.pendingDrops, droppedTable{t.id, persisted})
		db.pendingMu.Unlock()
		t.releaseResidency()
	}
	return nil
}

// HasTable reports whether the named table exists.
func (db *DB) HasTable(name string) bool { return db.Table(name) != nil }

// RenameTable renames a table.
func (db *DB) RenameTable(old, new string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[old]
	if !ok {
		return fmt.Errorf("engine: no table %q", old)
	}
	if _, ok := db.tables[new]; ok {
		return fmt.Errorf("engine: table %q already exists", new)
	}
	delete(db.tables, old)
	t.name = new
	db.tables[new] = t
	return nil
}

// TableNames lists tables in sorted order.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TotalSizeBytes sums the storage of all tables.
func (db *DB) TotalSizeBytes() int64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var n int64
	for _, t := range db.tables {
		n += t.SizeBytes()
	}
	return n
}
