package engine

import (
	"fmt"
	"sort"
	"sync"
)

// RowsPerPage is the heap page capacity. Together with Stats it forms the
// engine's I/O model: reading a page sequentially costs 1 unit, via random
// access RandCost units.
const RowsPerPage = 256

// Column describes one attribute of a table.
type Column struct {
	Name string
	Type Kind
}

// RowID locates a row within a table's heap: page index and slot, packed in
// an int64. RowIDs are stable (the engine never compacts pages) but become
// invalid after Cluster rewrites the heap.
type RowID int64

// MakeRowID packs page and slot.
func MakeRowID(page, slot int) RowID { return RowID(int64(page)<<16 | int64(slot)) }

// Page returns the page index.
func (r RowID) Page() int { return int(int64(r) >> 16) }

// Slot returns the slot within the page.
func (r RowID) Slot() int { return int(int64(r) & 0xffff) }

// Table is a page-based heap of rows with optional indexes and an optional
// physical clustering order. Tables are created via DB.CreateTable and are
// not safe for concurrent mutation; the DB serializes access.
type Table struct {
	name    string
	cols    []Column
	colIdx  map[string]int
	pages   [][]Row
	nrows   int
	ndel    int
	pk      []int             // positions of primary-key columns, may be empty
	indexes map[string]*Index // by column-list key
	cluster string            // column list the heap is physically ordered by
	stats   *Stats

	// Residency state for tables attached to a storage backend (see
	// Backend and pager.go). With a nil backend every page is resident and
	// none of this is used.
	backend        Backend
	db             *DB
	id             uint64
	resMu          sync.Mutex
	resident       []bool       // pages[p] is loaded
	pageBytes      []int64      // estimated bytes of each resident page
	dirty          map[int]bool // resident pages modified since last flush
	dataBytes      int64        // live row bytes across the whole heap
	persistedPages int          // page count in the backend's committed catalog
}

// newTable builds an empty table.
func newTable(name string, cols []Column, stats *Stats) *Table {
	t := &Table{
		name:    name,
		cols:    append([]Column(nil), cols...),
		colIdx:  make(map[string]int, len(cols)),
		indexes: make(map[string]*Index),
		stats:   stats,
	}
	for i, c := range cols {
		t.colIdx[c.Name] = i
	}
	return t
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Columns returns the table schema. Callers must not modify the slice.
func (t *Table) Columns() []Column { return t.cols }

// ColIndex returns the position of the named column, or -1.
func (t *Table) ColIndex(name string) int {
	if i, ok := t.colIdx[name]; ok {
		return i
	}
	return -1
}

// NumRows returns the number of live rows.
func (t *Table) NumRows() int { return t.nrows - t.ndel }

// NumDeleted returns the number of tombstoned slots still occupying heap
// pages (reclaimed by Compact).
func (t *Table) NumDeleted() int { return t.ndel }

// NumPages returns the number of heap pages.
func (t *Table) NumPages() int { return len(t.pages) }

// PrimaryKey returns the positions of the primary key columns.
func (t *Table) PrimaryKey() []int { return t.pk }

// SetPrimaryKey declares the primary key columns by name and builds a unique
// ordered index over them. It does not validate existing rows; use
// CheckPrimaryKey for that.
func (t *Table) SetPrimaryKey(names ...string) error {
	pk := make([]int, len(names))
	for i, n := range names {
		j := t.ColIndex(n)
		if j < 0 {
			return fmt.Errorf("engine: table %s: no column %q", t.name, n)
		}
		pk[i] = j
	}
	t.pk = pk
	return t.CreateIndex(names...)
}

// AddColumn appends a column; existing rows get NULL. This backs the paper's
// ALTER TABLE path for schema evolution.
func (t *Table) AddColumn(c Column) error {
	if t.ColIndex(c.Name) >= 0 {
		return fmt.Errorf("engine: table %s: column %q exists", t.name, c.Name)
	}
	t.cols = append(t.cols, c)
	t.colIdx[c.Name] = len(t.cols) - 1
	for pi := 0; pi < len(t.pages); pi++ {
		p := t.writablePage(pi)
		for i := range p {
			if p[i] != nil {
				p[i] = append(p[i], NullValue())
				t.noteRowDelta(pi, 1)
			}
		}
	}
	return nil
}

// AlterColumnType widens the named column to the given kind, converting
// stored values. Only widening conversions supported by MoreGeneral are
// allowed.
func (t *Table) AlterColumnType(name string, k Kind) error {
	i := t.ColIndex(name)
	if i < 0 {
		return fmt.Errorf("engine: table %s: no column %q", t.name, name)
	}
	old := t.cols[i].Type
	if MoreGeneral(old, k) != k {
		return fmt.Errorf("engine: table %s: cannot narrow %s from %s to %s", t.name, name, old, k)
	}
	t.cols[i].Type = k
	for pi := 0; pi < len(t.pages); pi++ {
		p := t.writablePage(pi)
		for j := range p {
			if p[j] == nil || p[j][i].IsNull() {
				continue
			}
			before := rowBytes(p[j])
			p[j][i] = convert(p[j][i], k)
			t.noteRowDelta(pi, rowBytes(p[j])-before)
		}
	}
	return nil
}

// convert coerces v to kind k (widening only).
func convert(v Value, k Kind) Value {
	if v.K == k || v.IsNull() {
		return v
	}
	switch k {
	case KindFloat:
		return FloatValue(v.AsFloat())
	case KindString:
		return StringValue(v.String())
	case KindBitmap:
		if v.K == KindIntArray {
			return BitmapFromSlice(v.A)
		}
	case KindInt:
		switch v.K {
		case KindFloat:
			return IntValue(int64(v.F))
		case KindBool:
			return IntValue(v.I)
		}
	}
	return v
}

// Insert appends a row and returns its RowID. The row is stored as given
// (not copied); callers must not mutate it afterwards. Indexes are
// maintained.
func (t *Table) Insert(r Row) (RowID, error) {
	if len(r) != len(t.cols) {
		return 0, fmt.Errorf("engine: table %s: row has %d values, want %d", t.name, len(r), len(t.cols))
	}
	var id RowID
	if t.backend == nil {
		if len(t.pages) == 0 || len(t.pages[len(t.pages)-1]) == RowsPerPage {
			t.pages = append(t.pages, make([]Row, 0, RowsPerPage))
		}
		p := len(t.pages) - 1
		t.pages[p] = append(t.pages[p], r)
		id = MakeRowID(p, len(t.pages[p])-1)
	} else {
		p, s := t.backendAppend(r, rowBytes(r))
		id = MakeRowID(p, s)
	}
	t.nrows++
	for _, ix := range t.indexes {
		ix.insert(r, id)
	}
	return id, nil
}

// InsertMany appends rows in bulk.
func (t *Table) InsertMany(rows []Row) error {
	for _, r := range rows {
		if _, err := t.Insert(r); err != nil {
			return err
		}
	}
	return nil
}

// Get fetches the row at id, charging a random page access. Returns nil for
// deleted slots.
func (t *Table) Get(id RowID) Row {
	p, s := id.Page(), id.Slot()
	if p < 0 || p >= len(t.pages) || s >= t.slotCount(p) {
		return nil
	}
	t.stats.RandPages.Add(1)
	r := t.page(p)[s]
	if r != nil {
		t.stats.RowsScanned.Add(1)
	}
	return r
}

// getNoCharge fetches a row without I/O accounting (for index maintenance).
func (t *Table) getNoCharge(id RowID) Row {
	p, s := id.Page(), id.Slot()
	if p < 0 || p >= len(t.pages) || s >= t.slotCount(p) {
		return nil
	}
	return t.page(p)[s]
}

// Scan iterates all live rows sequentially, charging one sequential page per
// page visited. The callback must not retain the row slice across calls if it
// mutates it. Iteration stops early if fn returns false.
func (t *Table) Scan(fn func(id RowID, r Row) bool) {
	for p := 0; p < len(t.pages); p++ {
		page := t.page(p)
		t.stats.SeqPages.Add(1)
		for s, r := range page {
			if r == nil {
				continue
			}
			t.stats.RowsScanned.Add(1)
			if !fn(MakeRowID(p, s), r) {
				return
			}
		}
	}
}

// Update replaces the row at id, maintaining indexes.
func (t *Table) Update(id RowID, r Row) error {
	if len(r) != len(t.cols) {
		return fmt.Errorf("engine: table %s: row has %d values, want %d", t.name, len(r), len(t.cols))
	}
	old := t.getNoCharge(id)
	if old == nil {
		return fmt.Errorf("engine: table %s: update of missing row %v", t.name, id)
	}
	for _, ix := range t.indexes {
		// Updates that leave the indexed key unchanged (e.g. appending a
		// version id to a vlist) skip index maintenance entirely.
		if ix.keyOf(old) == ix.keyOf(r) {
			continue
		}
		ix.remove(old, id)
		ix.insert(r, id)
	}
	t.writablePage(id.Page())[id.Slot()] = r
	t.noteRowDelta(id.Page(), rowBytes(r)-rowBytes(old))
	t.stats.RandPages.Add(1)
	return nil
}

// DeleteBatch tombstones many rows at once, sweeping each index a single
// time instead of splicing per row — the fast path for migrations and bulk
// DELETE statements.
func (t *Table) DeleteBatch(ids []RowID) {
	if len(ids) == 0 {
		return
	}
	drop := make(map[RowID]bool, len(ids))
	for _, id := range ids {
		if t.getNoCharge(id) != nil && !drop[id] {
			drop[id] = true
		}
	}
	for id := range drop {
		pg := t.writablePage(id.Page())
		t.noteRowDelta(id.Page(), -rowBytes(pg[id.Slot()]))
		pg[id.Slot()] = nil
	}
	t.ndel += len(drop)
	t.stats.RandPages.Add(int64(len(drop)))
	for _, ix := range t.indexes {
		ix.removeIDs(drop)
	}
}

// Delete tombstones the row at id.
func (t *Table) Delete(id RowID) {
	old := t.getNoCharge(id)
	if old == nil {
		return
	}
	for _, ix := range t.indexes {
		ix.remove(old, id)
	}
	t.writablePage(id.Page())[id.Slot()] = nil
	t.noteRowDelta(id.Page(), -rowBytes(old))
	t.ndel++
	t.stats.RandPages.Add(1)
}

// indexKeyName canonicalizes a column list.
func indexKeyName(names []string) string {
	k := ""
	for i, n := range names {
		if i > 0 {
			k += ","
		}
		k += n
	}
	return k
}

// CreateIndex builds an ordered index over the named columns. Creating an
// existing index is a no-op.
func (t *Table) CreateIndex(names ...string) error {
	key := indexKeyName(names)
	if _, ok := t.indexes[key]; ok {
		return nil
	}
	cols := make([]int, len(names))
	for i, n := range names {
		j := t.ColIndex(n)
		if j < 0 {
			return fmt.Errorf("engine: table %s: no column %q", t.name, n)
		}
		cols[i] = j
	}
	ix := newIndex(cols)
	for p := 0; p < len(t.pages); p++ {
		for s, r := range t.page(p) {
			if r != nil {
				ix.insert(r, MakeRowID(p, s))
			}
		}
	}
	t.indexes[key] = ix
	return nil
}

// Index returns the index over the named columns, or nil.
func (t *Table) Index(names ...string) *Index { return t.indexes[indexKeyName(names)] }

// ClusteredOn returns the column-list key the heap is physically ordered by,
// or "".
func (t *Table) ClusteredOn() string { return t.cluster }

// Cluster physically rewrites the heap in the order of the named columns,
// like PostgreSQL's CLUSTER. RowIDs change; indexes are rebuilt.
func (t *Table) Cluster(names ...string) error {
	cols := make([]int, len(names))
	for i, n := range names {
		j := t.ColIndex(n)
		if j < 0 {
			return fmt.Errorf("engine: table %s: no column %q", t.name, n)
		}
		cols[i] = j
	}
	rows := make([]Row, 0, t.NumRows())
	for p := 0; p < len(t.pages); p++ {
		for _, r := range t.page(p) {
			if r != nil {
				rows = append(rows, r)
			}
		}
	}
	sort.SliceStable(rows, func(i, j int) bool {
		for _, c := range cols {
			if cmp := Compare(rows[i][c], rows[j][c]); cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
	t.resetHeap()
	old := t.indexes
	t.indexes = make(map[string]*Index)
	for _, r := range rows {
		if _, err := t.Insert(r); err != nil {
			return err
		}
	}
	t.rebuildIndexes(old)
	t.cluster = indexKeyName(names)
	return nil
}

// rebuildIndexes replaces every index in old with one rebuilt from the
// current heap (used after Cluster/Compact invalidate all RowIDs).
func (t *Table) rebuildIndexes(old map[string]*Index) {
	for key := range old {
		ix := newIndex(old[key].cols)
		for p := 0; p < len(t.pages); p++ {
			for s, r := range t.page(p) {
				if r != nil {
					ix.insert(r, MakeRowID(p, s))
				}
			}
		}
		t.indexes[key] = ix
	}
}

// Compact rewrites the heap dropping tombstoned slots, preserving scan
// order. RowIDs change; indexes are rebuilt. Sequential scans pay per heap
// slot whether or not it is live, so a table that shrank (bulk deletes,
// migration GC) needs this for scan cost to track live rows again.
func (t *Table) Compact() error {
	if t.ndel == 0 {
		return nil
	}
	rows := make([]Row, 0, t.NumRows())
	for p := 0; p < len(t.pages); p++ {
		for _, r := range t.page(p) {
			if r != nil {
				rows = append(rows, r)
			}
		}
	}
	t.resetHeap()
	old := t.indexes
	t.indexes = make(map[string]*Index)
	for _, r := range rows {
		if _, err := t.Insert(r); err != nil {
			return err
		}
	}
	t.rebuildIndexes(old)
	return nil
}

// CheckPrimaryKey verifies that no two live rows share primary key values.
func (t *Table) CheckPrimaryKey() error {
	if len(t.pk) == 0 {
		return nil
	}
	seen := make(map[string]struct{}, t.NumRows())
	var dup string
	t.Scan(func(_ RowID, r Row) bool {
		vals := make([]Value, len(t.pk))
		for i, c := range t.pk {
			vals[i] = r[c]
		}
		k := EncodeKey(vals...)
		if _, ok := seen[k]; ok {
			dup = k
			return false
		}
		seen[k] = struct{}{}
		return true
	})
	if dup != "" {
		return fmt.Errorf("engine: table %s: duplicate primary key", t.name)
	}
	return nil
}

// SizeBytes estimates the storage footprint of the table including index
// entries, mirroring the paper's practice of counting index size in storage
// comparisons.
func (t *Table) SizeBytes() int64 {
	var n int64
	if t.backend != nil {
		// Walking the heap would fault every cold page in; the pager
		// maintains the live-byte total incrementally instead.
		t.resMu.Lock()
		n = t.dataBytes
		t.resMu.Unlock()
	} else {
		for _, page := range t.pages {
			for _, r := range page {
				if r == nil {
					continue
				}
				n += rowBytes(r)
			}
		}
	}
	for _, ix := range t.indexes {
		n += int64(ix.Len()) * 16 // key pointer + rowid, rough b-tree entry
	}
	return n
}

// rowBytes estimates the on-disk size of one row.
func rowBytes(r Row) int64 {
	var n int64 = 4 // header
	for _, v := range r {
		switch v.K {
		case KindInt, KindFloat:
			n += 8
		case KindBool:
			n++
		case KindString:
			n += int64(len(v.S)) + 4
		case KindIntArray:
			n += int64(len(v.A))*8 + 4
		case KindBitmap:
			n += v.B.SerializedSizeBytes()
		case KindNull:
			n++
		}
	}
	return n
}
