// Package diskv is a single-file, append-only key-value store: the disk
// substrate of the engine's pluggable storage backend. The engine maps its
// catalog to `catalog/table/<name>` keys and its heap pages to
// `page/<table>/<page#>` keys, so bitmap-driven checkouts of cold data become
// ranged point reads against this file.
//
// The format follows the WAL's torn-tail discipline rather than a
// write-in-place B-tree: every record is an appended, CRC-framed (key, value)
// pair, and the key→offset index is rebuilt by one sequential scan on open.
// Two properties make this a sound checkpoint target:
//
//   - Atomic batches. Appended frames are staged until a COMMIT frame seals
//     them. Open replays the file up to the last durable COMMIT and truncates
//     everything after it — a torn tail and a half-flushed checkpoint look
//     identical and both roll back cleanly to the previous checkpoint, which
//     the store's write-ahead log then replays over.
//   - Last-writer-wins keys. Overwritten and deleted frames become garbage;
//     Compact rewrites the live set into a fresh file and atomically renames
//     it into place (with its own COMMIT frame, so a crash mid-compaction
//     leaves the old file untouched).
//
// Reads are plain preads and may run concurrently with appends: an index
// entry never points into an unwritten region, and the fd swap during
// compaction is serialized by the store's lock.
package diskv

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"syscall"
)

// Magic identifies a diskv file. It is distinct from the gob snapshot format,
// so the store can sniff which backend a path holds.
var Magic = [4]byte{'O', 'D', 'K', 'V'}

const (
	formatVersion = 1
	headerLen     = 8 // magic + version + 3 reserved bytes

	kindPut    = 1
	kindDelete = 2
	kindCommit = 3

	// frameHeadLen is crc(4) + kind(1) + klen(2) + vlen(4).
	frameHeadLen = 11

	// MaxKeyLen bounds keys to the uint16 length field.
	MaxKeyLen = 1<<16 - 1
)

// ErrCorrupt marks a file whose committed prefix cannot be read — a bad
// header, an impossible frame, a CRC mismatch before the last commit point.
// Torn tails past the last commit are not corruption; Open repairs them.
var ErrCorrupt = errors.New("diskv: corrupt file")

type loc struct {
	valOff  int64 // offset of the value bytes
	vlen    uint32
	frameSz int64 // whole frame, for garbage accounting
}

// KV is one open store file. Get may run concurrently with Put/Delete/Commit
// from one writer goroutine; Compact and Close require external quiescence of
// writers (the engine serializes them under its checkpoint lock).
type KV struct {
	path string
	lock *os.File // flock on <path>.lock: one process per store

	mu       sync.RWMutex
	f        *os.File
	index    map[string]loc
	writeOff int64 // next append offset
	commit   int64 // offset just past the last COMMIT frame (durable point)
	staged   int   // frames appended since the last Commit
	garbage  int64 // bytes of dead frames in the committed region
	closed   bool
}

// Open opens (or creates) the store file at path, rebuilding the key index
// from the committed frame sequence and truncating any uncommitted or torn
// tail. The file is flocked via a sibling <path>.lock so two processes cannot
// interleave appends.
func Open(path string) (*KV, error) {
	lock, err := acquireLock(path + ".lock")
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		releaseLock(lock)
		return nil, fmt.Errorf("diskv: open %s: %w", path, err)
	}
	kv := &KV{path: path, lock: lock, f: f, index: make(map[string]loc)}
	if err := kv.recover(); err != nil {
		f.Close()
		releaseLock(lock)
		return nil, err
	}
	return kv, nil
}

// recover scans the file, rebuilding the index from the committed prefix and
// truncating everything after the last COMMIT frame.
func (kv *KV) recover() error {
	fi, err := kv.f.Stat()
	if err != nil {
		return fmt.Errorf("diskv: stat: %w", err)
	}
	if fi.Size() < headerLen {
		// New file, or one torn inside the header before its first sync:
		// either way there is no committed data; start fresh.
		if err := kv.writeHeader(); err != nil {
			return err
		}
		kv.writeOff, kv.commit = headerLen, headerLen
		return nil
	}
	var hdr [headerLen]byte
	if _, err := kv.f.ReadAt(hdr[:], 0); err != nil {
		return fmt.Errorf("diskv: read header: %w", err)
	}
	if [4]byte(hdr[:4]) != Magic {
		return fmt.Errorf("%w: %s: bad magic %q", ErrCorrupt, kv.path, hdr[:4])
	}
	if hdr[4] != formatVersion {
		return fmt.Errorf("%w: %s: unsupported version %d", ErrCorrupt, kv.path, hdr[4])
	}

	// Stage index updates per batch; only a COMMIT frame publishes them.
	staged := make(map[string]*loc) // nil loc = staged delete
	var stagedGarbage int64
	pos := int64(headerLen)
	size := fi.Size()
	var head [frameHeadLen]byte
	for pos+frameHeadLen <= size {
		if _, err := kv.f.ReadAt(head[:], pos); err != nil {
			break
		}
		wantCRC := binary.LittleEndian.Uint32(head[0:])
		kind := head[4]
		klen := int(binary.LittleEndian.Uint16(head[5:]))
		vlen := int64(binary.LittleEndian.Uint32(head[7:]))
		frameSz := int64(frameHeadLen) + int64(klen) + vlen
		if pos+frameSz > size {
			break // torn mid-frame
		}
		body := make([]byte, int(frameSz)-4) // kind..value, the CRC's coverage
		if _, err := kv.f.ReadAt(body, pos+4); err != nil {
			break
		}
		if crc32.ChecksumIEEE(body) != wantCRC {
			break // torn or bit-rotted tail; roll back to last commit
		}
		switch kind {
		case kindCommit:
			if klen != 0 || vlen != 0 {
				return fmt.Errorf("%w: %s: malformed commit frame at %d", ErrCorrupt, kv.path, pos)
			}
			for k, l := range staged {
				if old, ok := kv.index[k]; ok {
					kv.garbage += old.frameSz
					delete(kv.index, k)
				}
				if l != nil {
					kv.index[k] = *l
				}
			}
			kv.garbage += stagedGarbage
			staged = make(map[string]*loc)
			stagedGarbage = 0
			kv.commit = pos + frameSz
		case kindPut:
			key := string(body[7 : 7+klen])
			if prev := staged[key]; prev != nil {
				stagedGarbage += prev.frameSz
			}
			staged[key] = &loc{valOff: pos + frameHeadLen + int64(klen), vlen: uint32(vlen), frameSz: frameSz}
		case kindDelete:
			key := string(body[7 : 7+klen])
			if prev := staged[key]; prev != nil {
				stagedGarbage += prev.frameSz
			}
			staged[key] = nil
			stagedGarbage += frameSz // the tombstone itself is garbage once applied
		default:
			// An impossible kind before the commit point would be corruption,
			// but here it can only be tail garbage: stop scanning.
			pos = size // force the loop exit without advancing commit
		}
		if pos == size {
			break
		}
		pos += frameSz
	}
	// Discard the uncommitted / torn tail so the durable state is exactly the
	// last checkpoint the WAL knows about.
	if kv.commit == 0 {
		kv.commit = headerLen
	}
	if err := kv.f.Truncate(kv.commit); err != nil {
		return fmt.Errorf("diskv: truncate tail: %w", err)
	}
	kv.writeOff = kv.commit
	return nil
}

func (kv *KV) writeHeader() error {
	var hdr [headerLen]byte
	copy(hdr[:], Magic[:])
	hdr[4] = formatVersion
	if err := kv.f.Truncate(0); err != nil {
		return fmt.Errorf("diskv: init: %w", err)
	}
	if _, err := kv.f.WriteAt(hdr[:], 0); err != nil {
		return fmt.Errorf("diskv: init: %w", err)
	}
	return nil
}

// appendFrame writes one frame at the tail. Caller holds kv.mu.
func (kv *KV) appendFrame(kind byte, key string, val []byte) error {
	if kv.closed {
		return errors.New("diskv: use after Close")
	}
	if len(key) > MaxKeyLen {
		return fmt.Errorf("diskv: key too long (%d bytes)", len(key))
	}
	frame := make([]byte, frameHeadLen+len(key)+len(val))
	frame[4] = kind
	binary.LittleEndian.PutUint16(frame[5:], uint16(len(key)))
	binary.LittleEndian.PutUint32(frame[7:], uint32(len(val)))
	copy(frame[frameHeadLen:], key)
	copy(frame[frameHeadLen+len(key):], val)
	binary.LittleEndian.PutUint32(frame[0:], crc32.ChecksumIEEE(frame[4:]))
	if _, err := kv.f.WriteAt(frame, kv.writeOff); err != nil {
		return fmt.Errorf("diskv: append: %w", err)
	}
	kv.writeOff += int64(len(frame))
	return nil
}

// Put stages key=val. The write is not durable — and not visible to a
// reopened store — until Commit.
func (kv *KV) Put(key string, val []byte) error {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	valOff := kv.writeOff + frameHeadLen + int64(len(key))
	frameSz := int64(frameHeadLen) + int64(len(key)) + int64(len(val))
	if err := kv.appendFrame(kindPut, key, val); err != nil {
		return err
	}
	if old, ok := kv.index[key]; ok {
		kv.garbage += old.frameSz
	}
	kv.index[key] = loc{valOff: valOff, vlen: uint32(len(val)), frameSz: frameSz}
	kv.staged++
	return nil
}

// Delete stages removal of key. Missing keys are a no-op (no tombstone).
func (kv *KV) Delete(key string) error {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	old, ok := kv.index[key]
	if !ok {
		return nil
	}
	sz := int64(frameHeadLen) + int64(len(key))
	if err := kv.appendFrame(kindDelete, key, nil); err != nil {
		return err
	}
	kv.garbage += old.frameSz + sz
	delete(kv.index, key)
	kv.staged++
	return nil
}

// Commit seals every frame staged since the last Commit with a COMMIT frame
// and fsyncs. On return the batch is atomically durable: a crash at any
// point either preserves all of it or none of it.
func (kv *KV) Commit() error {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	if err := kv.appendFrame(kindCommit, "", nil); err != nil {
		return err
	}
	if err := kv.f.Sync(); err != nil {
		return fmt.Errorf("diskv: fsync: %w", err)
	}
	kv.commit = kv.writeOff
	kv.staged = 0
	return nil
}

// Get returns the value under key from the live index (staged writes
// included). The returned slice is freshly allocated.
func (kv *KV) Get(key string) ([]byte, bool, error) {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	if kv.closed {
		return nil, false, errors.New("diskv: use after Close")
	}
	l, ok := kv.index[key]
	if !ok {
		return nil, false, nil
	}
	buf := make([]byte, l.vlen)
	if _, err := kv.f.ReadAt(buf, l.valOff); err != nil {
		return nil, false, fmt.Errorf("diskv: read %q: %w", key, err)
	}
	return buf, true, nil
}

// Has reports whether key exists without reading its value.
func (kv *KV) Has(key string) bool {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	_, ok := kv.index[key]
	return ok
}

// Keys returns the sorted keys matching prefix ("" for all).
func (kv *KV) Keys(prefix string) []string {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	out := make([]string, 0, len(kv.index))
	for k := range kv.index {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Stats describes the file's occupancy.
type Stats struct {
	Keys         int
	FileBytes    int64
	GarbageBytes int64
}

// Stats snapshots occupancy counters.
func (kv *KV) Stats() Stats {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	return Stats{Keys: len(kv.index), FileBytes: kv.writeOff, GarbageBytes: kv.garbage}
}

// ShouldCompact reports whether dead frames dominate the file (≥ half the
// bytes past the header, with a floor so small files never churn).
func (kv *KV) ShouldCompact() bool {
	st := kv.Stats()
	payload := st.FileBytes - headerLen
	return payload >= 1<<20 && st.GarbageBytes*2 >= payload
}

// Compact rewrites the live key set into a fresh file and renames it over the
// store path. It must not run with staged (uncommitted) writes — the rewrite
// persists the index as one committed batch, which would silently commit
// them. Readers are blocked for the duration.
func (kv *KV) Compact() error {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	if kv.closed {
		return errors.New("diskv: use after Close")
	}
	if kv.staged != 0 {
		return errors.New("diskv: Compact with uncommitted writes")
	}
	tmpPath := kv.path + ".compact"
	tmp, err := os.Create(tmpPath)
	if err != nil {
		return fmt.Errorf("diskv: compact: %w", err)
	}
	cleanup := func() { tmp.Close(); os.Remove(tmpPath) }

	next := &KV{path: kv.path, f: tmp, index: make(map[string]loc, len(kv.index))}
	if err := next.writeHeader(); err != nil {
		cleanup()
		return err
	}
	next.writeOff = headerLen
	keys := make([]string, 0, len(kv.index))
	for k := range kv.index {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	buf := make([]byte, 0)
	for _, k := range keys {
		l := kv.index[k]
		if int64(cap(buf)) < int64(l.vlen) {
			buf = make([]byte, l.vlen)
		}
		buf = buf[:l.vlen]
		if _, err := kv.f.ReadAt(buf, l.valOff); err != nil {
			cleanup()
			return fmt.Errorf("diskv: compact read %q: %w", k, err)
		}
		valOff := next.writeOff + frameHeadLen + int64(len(k))
		frameSz := int64(frameHeadLen) + int64(len(k)) + int64(len(buf))
		if err := next.appendFrame(kindPut, k, buf); err != nil {
			cleanup()
			return err
		}
		next.index[k] = loc{valOff: valOff, vlen: l.vlen, frameSz: frameSz}
	}
	if err := next.appendFrame(kindCommit, "", nil); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("diskv: compact fsync: %w", err)
	}
	if err := os.Rename(tmpPath, kv.path); err != nil {
		cleanup()
		return fmt.Errorf("diskv: compact rename: %w", err)
	}
	if dir, err := os.Open(filepath.Dir(kv.path)); err == nil {
		dir.Sync()
		dir.Close()
	}
	kv.f.Close()
	kv.f = tmp
	kv.index = next.index
	kv.writeOff = next.writeOff
	kv.commit = next.writeOff
	kv.garbage = 0
	return nil
}

// Sync fsyncs the file without committing (rarely needed; Commit syncs).
func (kv *KV) Sync() error {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	if kv.closed {
		return nil
	}
	return kv.f.Sync()
}

// Close releases the file and its lock. Staged (uncommitted) writes are
// discarded by the next Open, mirroring a crash.
func (kv *KV) Close() error {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	if kv.closed {
		return nil
	}
	kv.closed = true
	err := kv.f.Close()
	releaseLock(kv.lock)
	kv.lock = nil
	return err
}

// Path returns the store file path.
func (kv *KV) Path() string { return kv.path }

// acquireLock takes a non-blocking advisory flock on lockPath, mirroring the
// WAL's one-process-per-log guard.
func acquireLock(lockPath string) (*os.File, error) {
	f, err := os.OpenFile(lockPath, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("diskv: lock: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("diskv: %s is in use by another process (flock: %w)", lockPath, err)
	}
	return f, nil
}

func releaseLock(f *os.File) {
	if f == nil {
		return
	}
	syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
	f.Close()
}

// Sniff reports whether the file at path starts with the diskv magic. Missing
// and short files report false with no error; the caller decides their fate.
func Sniff(path string) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, err
	}
	defer f.Close()
	var hdr [4]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return false, nil
	}
	return hdr == Magic, nil
}
