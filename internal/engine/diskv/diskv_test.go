package diskv

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func openT(t *testing.T, path string) *KV {
	t.Helper()
	kv, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return kv
}

func TestPutGetRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "kv.odb")
	kv := openT(t, path)
	defer kv.Close()
	for i := 0; i < 100; i++ {
		if err := kv.Put(fmt.Sprintf("k%03d", i), []byte(fmt.Sprintf("value-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := kv.Commit(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		v, ok, err := kv.Get(fmt.Sprintf("k%03d", i))
		if err != nil || !ok {
			t.Fatalf("Get k%03d: ok=%v err=%v", i, ok, err)
		}
		if want := fmt.Sprintf("value-%d", i); string(v) != want {
			t.Fatalf("k%03d = %q, want %q", i, v, want)
		}
	}
	if _, ok, _ := kv.Get("absent"); ok {
		t.Fatal("Get(absent) reported a value")
	}
}

func TestReopenSeesCommittedState(t *testing.T) {
	path := filepath.Join(t.TempDir(), "kv.odb")
	kv := openT(t, path)
	kv.Put("a", []byte("1"))
	kv.Put("b", []byte("2"))
	kv.Commit()
	kv.Put("a", []byte("updated"))
	kv.Delete("b")
	kv.Put("c", []byte("3"))
	kv.Commit()
	kv.Close()

	kv = openT(t, path)
	defer kv.Close()
	if v, ok, _ := kv.Get("a"); !ok || string(v) != "updated" {
		t.Fatalf("a = %q ok=%v, want updated", v, ok)
	}
	if _, ok, _ := kv.Get("b"); ok {
		t.Fatal("deleted key b survived reopen")
	}
	if v, ok, _ := kv.Get("c"); !ok || string(v) != "3" {
		t.Fatalf("c = %q ok=%v", v, ok)
	}
	if got := kv.Keys(""); len(got) != 2 || got[0] != "a" || got[1] != "c" {
		t.Fatalf("Keys = %v", got)
	}
}

func TestUncommittedBatchRollsBack(t *testing.T) {
	path := filepath.Join(t.TempDir(), "kv.odb")
	kv := openT(t, path)
	kv.Put("stable", []byte("v1"))
	kv.Commit()
	// Staged but never committed: a crash (Close without Commit) discards it.
	kv.Put("stable", []byte("v2"))
	kv.Put("extra", []byte("x"))
	kv.Close()

	kv = openT(t, path)
	defer kv.Close()
	if v, ok, _ := kv.Get("stable"); !ok || string(v) != "v1" {
		t.Fatalf("stable = %q ok=%v, want pre-batch v1", v, ok)
	}
	if _, ok, _ := kv.Get("extra"); ok {
		t.Fatal("uncommitted key survived reopen")
	}
}

// TestTornTailTruncates cuts the file at every byte offset inside the last
// batch and asserts each cut recovers to exactly the previous commit point —
// the same kill-point discipline the WAL tests apply.
func TestTornTailTruncates(t *testing.T) {
	dir := t.TempDir()
	ref := filepath.Join(dir, "ref.odb")
	kv := openT(t, ref)
	kv.Put("a", []byte("alpha"))
	kv.Commit()
	commitPoint := kv.Stats().FileBytes
	kv.Put("b", []byte("beta"))
	kv.Put("a", []byte("alpha2"))
	kv.Commit()
	kv.Close()
	data, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}

	for cut := commitPoint + 1; cut < int64(len(data)); cut++ {
		cutPath := filepath.Join(dir, fmt.Sprintf("cut%d.odb", cut))
		if err := os.WriteFile(cutPath, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		kv := openT(t, cutPath)
		if v, ok, _ := kv.Get("a"); !ok || string(v) != "alpha" {
			t.Fatalf("cut %d: a = %q ok=%v, want pre-crash alpha", cut, v, ok)
		}
		if _, ok, _ := kv.Get("b"); ok {
			t.Fatalf("cut %d: half-committed key b visible", cut)
		}
		if got := kv.Stats().FileBytes; got != commitPoint {
			t.Fatalf("cut %d: file not truncated to commit point: %d != %d", cut, got, commitPoint)
		}
		kv.Close()
	}
}

func TestCorruptHeaderRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "kv.odb")
	if err := os.WriteFile(path, []byte("NOTAKVFILE------"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("Open accepted a bad magic")
	}
}

func TestCompactDropsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "kv.odb")
	kv := openT(t, path)
	payload := bytes.Repeat([]byte("x"), 4096)
	for i := 0; i < 50; i++ {
		kv.Put("hot", payload) // each overwrite strands the previous frame
	}
	kv.Put("cold", []byte("keep"))
	kv.Commit()
	before := kv.Stats()
	if before.GarbageBytes == 0 {
		t.Fatal("overwrites produced no garbage")
	}
	if err := kv.Compact(); err != nil {
		t.Fatal(err)
	}
	after := kv.Stats()
	if after.GarbageBytes != 0 || after.FileBytes >= before.FileBytes {
		t.Fatalf("compact did not shrink: before=%+v after=%+v", before, after)
	}
	if v, ok, _ := kv.Get("hot"); !ok || !bytes.Equal(v, payload) {
		t.Fatal("hot value lost in compaction")
	}
	kv.Close()

	kv = openT(t, path)
	defer kv.Close()
	if v, ok, _ := kv.Get("cold"); !ok || string(v) != "keep" {
		t.Fatalf("cold = %q ok=%v after compact+reopen", v, ok)
	}
}

func TestCompactRefusesStagedWrites(t *testing.T) {
	kv := openT(t, filepath.Join(t.TempDir(), "kv.odb"))
	defer kv.Close()
	kv.Put("k", []byte("v"))
	if err := kv.Compact(); err == nil {
		t.Fatal("Compact accepted uncommitted writes")
	}
}

func TestFlockExcludesSecondOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "kv.odb")
	kv := openT(t, path)
	if _, err := Open(path); err == nil {
		t.Fatal("second Open of a locked store succeeded")
	}
	kv.Close()
	kv2 := openT(t, path) // lock released by Close
	kv2.Close()
}

func TestSniff(t *testing.T) {
	dir := t.TempDir()
	kvPath := filepath.Join(dir, "kv.odb")
	kv := openT(t, kvPath)
	kv.Commit()
	kv.Close()
	if ok, err := Sniff(kvPath); err != nil || !ok {
		t.Fatalf("Sniff(kv) = %v, %v", ok, err)
	}
	gobPath := filepath.Join(dir, "gob.odb")
	os.WriteFile(gobPath, []byte{0x1f, 0x8b, 0x00, 0x00}, 0o644)
	if ok, err := Sniff(gobPath); err != nil || ok {
		t.Fatalf("Sniff(gob) = %v, %v", ok, err)
	}
	if ok, err := Sniff(filepath.Join(dir, "missing")); err != nil || ok {
		t.Fatalf("Sniff(missing) = %v, %v", ok, err)
	}
}

func TestKeysPrefix(t *testing.T) {
	kv := openT(t, filepath.Join(t.TempDir(), "kv.odb"))
	defer kv.Close()
	kv.Put("page/t1/00000001", []byte("a"))
	kv.Put("page/t1/00000002", []byte("b"))
	kv.Put("page/t2/00000001", []byte("c"))
	kv.Put("catalog/table/t1", []byte("d"))
	kv.Commit()
	got := kv.Keys("page/t1/")
	if len(got) != 2 || got[0] != "page/t1/00000001" || got[1] != "page/t1/00000002" {
		t.Fatalf("Keys(page/t1/) = %v", got)
	}
}
