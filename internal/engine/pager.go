package engine

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"sort"
)

// The pager keeps a byte-budgeted working set of heap pages resident for
// tables attached to a Backend. Invariants:
//
//   - resMu guards a table's residency state: the pages slice headers,
//     resident/pageBytes/dirty and persistedPages. Row *elements* of a
//     resident page are written only by mutators, which the store serializes
//     against readers (dataset RW locks) and against checkpoints (ioMu).
//   - Dirty pages are pinned: eviction skips them, so a mutator that marked a
//     page dirty under resMu may keep appending to it without the lock.
//   - Lock order is evictMu → resMu. Fault-in therefore releases resMu
//     before notifying the evictor (noteLoad), never the other way around.
//   - Every page except the last holds exactly RowsPerPage slots (Insert
//     fills before it grows, Cluster/Compact rebuild through Insert), so slot
//     counts are arithmetic — no cold page is touched to answer bounds checks.

// evictEntry is one FIFO eviction candidate.
type evictEntry struct {
	t *Table
	p int
}

// attachBackend wires a freshly created table to the DB's backend.
func (db *DB) attachBackend(t *Table) {
	t.backend = db.backend
	t.db = db
	t.id = db.nextTableID.Add(1)
	t.dirty = make(map[int]bool)
}

// slotCount returns the slot count of page p. For backend tables this is
// arithmetic (the page may be cold); callers hold resMu or have the table
// quiesced.
func (t *Table) slotCount(p int) int {
	if t.backend == nil {
		return len(t.pages[p])
	}
	if p == len(t.pages)-1 {
		return t.nrows - p*RowsPerPage
	}
	return RowsPerPage
}

// page returns the slots of page p for reading, faulting it in from the
// backend if cold. The returned slice stays valid even if the page is evicted
// afterwards (eviction only drops the table's reference).
func (t *Table) page(p int) []Row {
	if t.backend == nil {
		return t.pages[p]
	}
	t.resMu.Lock()
	if t.resident[p] {
		pg := t.pages[p]
		t.resMu.Unlock()
		return pg
	}
	pg, loaded, ok := t.faultLocked(p)
	t.resMu.Unlock()
	if ok {
		t.db.noteLoad(t, p, loaded)
	}
	return pg
}

// writablePage faults page p in if needed and marks it dirty (pinning it
// against eviction) before returning its slots for element mutation.
func (t *Table) writablePage(p int) []Row {
	if t.backend == nil {
		return t.pages[p]
	}
	t.resMu.Lock()
	var pg []Row
	var loaded int64
	ok := true
	if t.resident[p] {
		pg = t.pages[p]
	} else {
		pg, loaded, ok = t.faultLocked(p)
	}
	if ok {
		t.dirty[p] = true
	}
	t.resMu.Unlock()
	if ok && loaded > 0 {
		t.db.noteLoad(t, p, loaded)
	}
	return pg
}

// faultLocked loads page p from the backend. Caller holds resMu. On success
// the page is installed resident and (slots, bytes, true) returned; the
// caller must pass bytes to db.noteLoad *after* releasing resMu. On failure
// the error is recorded on the DB (poisoning future checkpoints), and a
// zeroed page of the right geometry is returned un-installed so readers see
// bounds-safe tombstones instead of a panic.
func (t *Table) faultLocked(p int) ([]Row, int64, bool) {
	pd, err := t.backend.ReadPage(t.id, p)
	if err == nil {
		var slots []Row
		slots, err = pd.slots()
		if err == nil && len(slots) != t.slotCount(p) {
			err = fmt.Errorf("engine: table %s page %d: backend returned %d slots, want %d",
				t.name, p, len(slots), t.slotCount(p))
		}
		if err == nil {
			t.pages[p] = slots
			t.resident[p] = true
			var nbytes int64
			for _, r := range slots {
				if r != nil {
					nbytes += rowBytes(r)
				}
			}
			t.pageBytes[p] = nbytes
			t.stats.PageFaults.Add(1)
			return slots, nbytes, true
		}
	}
	t.db.setBackendErr(fmt.Errorf("engine: table %s page %d: %w", t.name, p, err))
	return make([]Row, t.slotCount(p)), 0, false
}

// backendAppend places row r (of rb estimated bytes) in the heap of a
// backend table, returning its page and slot.
func (t *Table) backendAppend(r Row, rb int64) (int, int) {
	t.resMu.Lock()
	p := len(t.pages) - 1
	var loaded int64
	grew := false
	if p < 0 || t.nrows-p*RowsPerPage == RowsPerPage {
		t.pages = append(t.pages, make([]Row, 0, RowsPerPage))
		t.resident = append(t.resident, true)
		t.pageBytes = append(t.pageBytes, 0)
		p++
		grew = true
	} else if !t.resident[p] {
		_, loaded, _ = t.faultLocked(p)
		// A read failure leaves the page un-installed; install the
		// placeholder so the append lands somewhere bounds-safe. The
		// recorded backend error blocks the next checkpoint from
		// persisting this state.
		if !t.resident[p] {
			t.pages[p] = make([]Row, t.slotCount(p), RowsPerPage)
			t.resident[p] = true
			t.pageBytes[p] = 0
			grew = true
		}
	}
	t.dirty[p] = true
	t.pages[p] = append(t.pages[p], r)
	s := len(t.pages[p]) - 1
	t.pageBytes[p] += rb
	t.dataBytes += rb
	t.resMu.Unlock()
	if grew || loaded > 0 {
		t.db.noteLoad(t, p, loaded+rb)
	} else {
		t.db.noteGrow(rb)
	}
	return p, s
}

// noteRowDelta accounts an in-place size change of a row on (already dirty)
// page p. No-op without a backend.
func (t *Table) noteRowDelta(p int, delta int64) {
	if t.backend == nil || delta == 0 {
		return
	}
	t.resMu.Lock()
	t.pageBytes[p] += delta
	t.dataBytes += delta
	t.resMu.Unlock()
	if delta > 0 {
		t.db.noteGrow(delta)
	} else {
		t.db.releaseBytes(-delta)
	}
}

// resetHeap drops the whole heap (Cluster/Compact rebuild it through Insert)
// and releases its resident bytes from the DB budget. The committed page
// count is remembered so the next flush deletes orphaned tail pages.
func (t *Table) resetHeap() {
	if t.backend == nil {
		t.pages = nil
		t.nrows = 0
		t.ndel = 0
		return
	}
	t.resMu.Lock()
	var freed int64
	for p, res := range t.resident {
		if res {
			freed += t.pageBytes[p]
		}
	}
	t.pages = nil
	t.resident = nil
	t.pageBytes = nil
	t.dirty = make(map[int]bool)
	t.nrows = 0
	t.ndel = 0
	t.dataBytes = 0
	t.resMu.Unlock()
	t.db.releaseBytes(freed)
}

// releaseResidency returns all of a dropped table's resident bytes to the
// budget; stale eviction-queue entries see resident=false and fall out.
func (t *Table) releaseResidency() {
	if t.backend == nil {
		return
	}
	t.resMu.Lock()
	var freed int64
	for p, res := range t.resident {
		if res {
			freed += t.pageBytes[p]
			t.resident[p] = false
			t.pages[p] = nil
			t.pageBytes[p] = 0
		}
	}
	t.resMu.Unlock()
	t.db.releaseBytes(freed)
}

// noteLoad records that page p of t became resident holding nbytes, enqueues
// it for eviction, and trims the working set back under budget. Never called
// with a resMu held (evictMu → resMu is the lock order).
func (db *DB) noteLoad(t *Table, p int, nbytes int64) {
	db.residentBytes.Add(nbytes)
	db.evictMu.Lock()
	db.evictQueue = append(db.evictQueue, evictEntry{t, p})
	db.evictMu.Unlock()
	db.maybeEvict()
}

// noteGrow records byte growth of an already-resident page.
func (db *DB) noteGrow(nbytes int64) {
	db.residentBytes.Add(nbytes)
	db.maybeEvict()
}

// releaseBytes returns freed bytes to the budget.
func (db *DB) releaseBytes(nbytes int64) {
	if nbytes != 0 {
		db.residentBytes.Add(-nbytes)
	}
}

// maybeEvict pops FIFO candidates until the working set fits the budget.
// Dirty pages are pinned (their entries drop out here and are re-enqueued
// when a checkpoint cleans them), so a pass over the whole queue may end
// still over budget — that is the contract: checkpoints, not eviction, are
// how dirty memory drains.
func (db *DB) maybeEvict() {
	budget := db.pageBudget.Load()
	if db.backend == nil || budget <= 0 {
		return
	}
	db.evictMu.Lock()
	defer db.evictMu.Unlock()
	attempts := len(db.evictQueue)
	for db.residentBytes.Load() > budget && attempts > 0 && len(db.evictQueue) > 0 {
		attempts--
		e := db.evictQueue[0]
		db.evictQueue = db.evictQueue[1:]
		if len(db.evictQueue) == 0 && cap(db.evictQueue) > 1024 {
			db.evictQueue = nil
		}
		e.t.resMu.Lock()
		if e.p >= len(e.t.resident) || !e.t.resident[e.p] || e.t.dirty[e.p] {
			e.t.resMu.Unlock()
			continue
		}
		freed := e.t.pageBytes[e.p]
		e.t.pages[e.p] = nil
		e.t.resident[e.p] = false
		e.t.pageBytes[e.p] = 0
		e.t.resMu.Unlock()
		db.residentBytes.Add(-freed)
		db.stats.PageEvictions.Add(1)
	}
}

// Backend returns the DB's storage backend, or nil for the pure in-memory
// engine.
func (db *DB) Backend() Backend { return db.backend }

// BackendKind names the storage backend ("memory" when none is attached).
func (db *DB) BackendKind() string {
	if db.backend == nil {
		return "memory"
	}
	return db.backend.Kind()
}

// ResidentBytes reports the bytes of heap pages currently held in memory.
// Without a backend this equals the whole store and is not tracked (0).
func (db *DB) ResidentBytes() int64 { return db.residentBytes.Load() }

// PageBudget returns the resident-set byte budget (0 = unlimited).
func (db *DB) PageBudget() int64 { return db.pageBudget.Load() }

// SetPageBudget sets the resident-set byte budget and immediately trims the
// working set to it. Zero disables eviction.
func (db *DB) SetPageBudget(n int64) {
	if n < 0 {
		n = 0
	}
	db.pageBudget.Store(n)
	db.maybeEvict()
}

// setBackendErr records the first backend I/O failure. The error is sticky:
// it poisons FlushBackend so a checkpoint can never commit state assembled
// from failed reads on top of good on-disk data.
func (db *DB) setBackendErr(err error) {
	db.backendErrMu.Lock()
	if db.backendErr == nil {
		db.backendErr = err
	}
	db.backendErrMu.Unlock()
}

// BackendErr returns the recorded backend I/O failure, if any.
func (db *DB) BackendErr() error {
	db.backendErrMu.Lock()
	defer db.backendErrMu.Unlock()
	return db.backendErr
}

// CloseBackend releases the backend without flushing (staged writes are
// discarded — crash semantics). The DB must not be used afterwards.
func (db *DB) CloseBackend() error {
	if db.backend == nil {
		return nil
	}
	return db.backend.Close()
}

// Backend meta keys for store-level state living outside the table catalog.
const (
	metaSettingsKey = "meta/settings"
	metaLSNKey      = "meta/lsn"
	metaNextIDKey   = "meta/nextid"
)

// meta assembles the table's catalog entry. Caller has the table quiesced.
func (t *Table) meta() TableMeta {
	m := TableMeta{
		ID:    t.id,
		Name:  t.name,
		Cols:  append([]Column(nil), t.cols...),
		Pages: len(t.pages),
		NRows: t.nrows,
		NDel:  t.ndel,
		Bytes: t.dataBytes,
	}
	for _, c := range t.pk {
		m.PK = append(m.PK, t.cols[c].Name)
	}
	for key := range t.indexes {
		m.Indexes = append(m.Indexes, splitIndexKey(key))
	}
	sort.Slice(m.Indexes, func(i, j int) bool {
		return indexKeyName(m.Indexes[i]) < indexKeyName(m.Indexes[j])
	})
	if t.cluster != "" {
		m.Clustered = splitIndexKey(t.cluster)
	}
	return m
}

// FlushBackend persists every mutation since the last flush — dirty pages,
// table catalog entries, settings, the WAL low-water mark — as one atomic
// backend commit, then lets the working set drain. It returns the estimated
// bytes written. The caller must have all mutators quiesced (the store holds
// ioMu exclusively); concurrent readers are safe. This is the disk engine's
// checkpoint: O(dirty) instead of the snapshot path's O(store).
func (db *DB) FlushBackend() (int64, error) {
	if db.backend == nil {
		return 0, nil
	}
	if err := db.BackendErr(); err != nil {
		return 0, fmt.Errorf("engine: flush refused, backend poisoned: %w", err)
	}

	db.mu.RLock()
	tables := make([]*Table, 0, len(db.tables))
	for _, name := range db.tableNamesLocked() {
		tables = append(tables, db.tables[name])
	}
	settings := make(map[string]string, len(db.settings))
	for k, v := range db.settings {
		settings[k] = v
	}
	db.mu.RUnlock()

	db.pendingMu.Lock()
	drops := db.pendingDrops
	db.pendingDrops = nil
	db.pendingMu.Unlock()
	restoreDrops := func() {
		db.pendingMu.Lock()
		db.pendingDrops = append(drops, db.pendingDrops...)
		db.pendingMu.Unlock()
	}

	var written int64
	for _, d := range drops {
		if err := db.backend.DeleteTable(d.id, d.pages); err != nil {
			restoreDrops()
			return written, err
		}
	}
	for _, t := range tables {
		n, err := t.flushPages(db.backend)
		written += n
		if err != nil {
			restoreDrops()
			return written, err
		}
		if err := db.backend.PutTableMeta(t.meta()); err != nil {
			restoreDrops()
			return written, err
		}
	}

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(settings); err != nil {
		restoreDrops()
		return written, fmt.Errorf("engine: flush settings: %w", err)
	}
	if err := db.backend.PutMeta(metaSettingsKey, buf.Bytes()); err != nil {
		restoreDrops()
		return written, err
	}
	var u64 [8]byte
	binary.BigEndian.PutUint64(u64[:], db.walLSN.Load())
	if err := db.backend.PutMeta(metaLSNKey, u64[:]); err != nil {
		restoreDrops()
		return written, err
	}
	binary.BigEndian.PutUint64(u64[:], db.nextTableID.Load())
	if err := db.backend.PutMeta(metaNextIDKey, u64[:]); err != nil {
		restoreDrops()
		return written, err
	}

	if err := db.backend.Commit(); err != nil {
		restoreDrops()
		return written, err
	}

	for _, t := range tables {
		t.markClean()
	}
	db.maybeEvict()
	if err := db.backend.Maintain(); err != nil {
		return written, err
	}
	return written, nil
}

// flushPages stages the table's dirty pages and truncated tail with the
// backend. Dirty flags are cleared only after the commit (markClean).
func (t *Table) flushPages(b Backend) (int64, error) {
	t.resMu.Lock()
	dirty := make([]int, 0, len(t.dirty))
	for p := range t.dirty {
		dirty = append(dirty, p)
	}
	sort.Ints(dirty)
	slices := make([][]Row, len(dirty))
	for i, p := range dirty {
		slices[i] = t.pages[p]
	}
	persisted, npages := t.persistedPages, len(t.pages)
	t.resMu.Unlock()

	var written int64
	for i, p := range dirty {
		n, err := b.WritePage(t.id, p, pageDataFromSlots(slices[i]))
		written += int64(n)
		if err != nil {
			return written, err
		}
		t.stats.PagesFlushed.Add(1)
	}
	for p := npages; p < persisted; p++ {
		if err := b.DeletePage(t.id, p); err != nil {
			return written, err
		}
	}
	return written, nil
}

// markClean clears dirty flags after a successful commit and hands the
// newly-clean pages to the evictor.
func (t *Table) markClean() {
	t.resMu.Lock()
	cleaned := make([]int, 0, len(t.dirty))
	for p := range t.dirty {
		cleaned = append(cleaned, p)
	}
	t.dirty = make(map[int]bool)
	t.persistedPages = len(t.pages)
	t.resMu.Unlock()
	sort.Ints(cleaned)
	t.db.evictMu.Lock()
	for _, p := range cleaned {
		t.db.evictQueue = append(t.db.evictQueue, evictEntry{t, p})
	}
	t.db.evictMu.Unlock()
}

// NewDBWithBackend returns an empty database whose heap pages live behind b,
// keeping at most budget bytes resident (0 = unlimited). Existing backend
// state is ignored; use OpenBackendDB to load it.
func NewDBWithBackend(b Backend, budget int64) *DB {
	db := NewDB()
	db.backend = b
	db.SetPageBudget(budget)
	return db
}

// OpenBackendDB materializes a database from a backend's committed state:
// the catalog supplies schema and heap geometry, pages stay cold until
// touched, and secondary structures (indexes, primary keys) are rebuilt by
// streaming scans under the page budget.
func OpenBackendDB(b Backend, budget int64) (*DB, error) {
	db := NewDBWithBackend(b, budget)

	if raw, ok, err := b.GetMeta(metaSettingsKey); err != nil {
		return nil, err
	} else if ok {
		if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&db.settings); err != nil {
			return nil, fmt.Errorf("engine: open backend settings: %w", err)
		}
	}
	if raw, ok, err := b.GetMeta(metaLSNKey); err != nil {
		return nil, err
	} else if ok && len(raw) == 8 {
		db.walLSN.Store(binary.BigEndian.Uint64(raw))
	}
	if raw, ok, err := b.GetMeta(metaNextIDKey); err != nil {
		return nil, err
	} else if ok && len(raw) == 8 {
		db.nextTableID.Store(binary.BigEndian.Uint64(raw))
	}

	metas, err := b.TableMetas()
	if err != nil {
		return nil, err
	}
	sort.Slice(metas, func(i, j int) bool { return metas[i].Name < metas[j].Name })
	for _, m := range metas {
		if _, ok := db.tables[m.Name]; ok {
			return nil, fmt.Errorf("engine: open backend: duplicate table %q", m.Name)
		}
		t := newTable(m.Name, m.Cols, &db.stats)
		t.backend = b
		t.db = db
		t.id = m.ID
		t.pages = make([][]Row, m.Pages)
		t.resident = make([]bool, m.Pages)
		t.pageBytes = make([]int64, m.Pages)
		t.dirty = make(map[int]bool)
		t.nrows = m.NRows
		t.ndel = m.NDel
		t.dataBytes = m.Bytes
		t.persistedPages = m.Pages
		db.tables[m.Name] = t
	}
	// Second pass once all tables exist: rebuild indexes (streaming scans
	// that respect the budget) and re-declare keys and clustering order —
	// declarations only, the heap is already physically ordered.
	for _, m := range metas {
		t := db.tables[m.Name]
		for _, names := range m.Indexes {
			if err := t.CreateIndex(names...); err != nil {
				return nil, err
			}
		}
		if len(m.PK) > 0 {
			if err := t.SetPrimaryKey(m.PK...); err != nil {
				return nil, err
			}
		}
		if len(m.Clustered) > 0 {
			t.cluster = indexKeyName(m.Clustered)
		}
	}
	if err := db.BackendErr(); err != nil {
		return nil, err
	}
	return db, nil
}
